// Package egd is the public face of a massively parallel framework for
// evolutionary game dynamics, reproducing "Massively Parallel Model of
// Evolutionary Game Dynamics" (Peters Randles et al., SC 2012).
//
// The framework models populations of Strategy Sets (SSets) — groups of
// agents sharing one memory-n Iterated Prisoner's Dilemma strategy, n up to
// six (4096 game states, 2^4096 pure strategies) — evolved by a Nature
// Agent through Fermi pairwise-comparison learning and random mutation. The
// parallel engine decomposes the work exactly as the paper's Blue Gene
// implementation does: rank 0 is the Nature Agent, the remaining ranks own
// block-distributed SSets, game play is communication-free, and population
// dynamics travel over broadcast and point-to-point messages (here, a
// goroutine-backed MPI-like runtime).
//
// Quick start:
//
//	cfg := egd.Config{Memory: 1, SSets: 64, Generations: 2000, Seed: 1}
//	res, err := egd.Run(cfg)
//
// Advanced users (custom observers, checkpointing, the performance model)
// can use the internal packages directly; this package covers the common
// flows with a flat, stable surface.
package egd

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/sim"
	"repro/internal/strategy"
)

// Config parameterises a simulation run. Zero values select the paper's
// defaults where one exists (see field comments).
type Config struct {
	// Memory is the strategy depth n in [1,6]. Required.
	Memory int
	// SSets is the number of Strategy Sets. Required (>= 2).
	SSets int
	// Generations is the number of evolution steps. Required (>= 0).
	Generations int
	// Rounds is the IPD match length (0 selects the paper's 200).
	Rounds int
	// ErrorRate is the per-move execution error probability (paper §III-E).
	ErrorRate float64
	// PCRate is the pairwise-comparison rate (0 selects the paper's 0.10;
	// use NoPC to disable learning entirely).
	PCRate float64
	// NoPC disables pairwise comparison (PCRate 0 means "default" because
	// of Go zero values, so disabling needs an explicit flag).
	NoPC bool
	// Mu is the mutation rate (0 selects the paper's 0.05; use NoMutation
	// to disable).
	Mu float64
	// NoMutation disables mutation.
	NoMutation bool
	// Beta is the Fermi selection intensity (0 selects 1.0).
	Beta float64
	// Mixed selects probabilistic strategies (the paper's Fig. 2 mode)
	// instead of pure bit-table strategies.
	Mixed bool
	// Seed drives all randomness; a given seed yields an identical
	// trajectory at any rank count.
	Seed uint64
	// Ranks selects the engine: 0 or 1 runs the sequential reference;
	// >= 2 runs the parallel engine with one Nature rank plus workers.
	Ranks int
	// FullRecompute replays every match every generation (the paper's
	// timing-study behaviour) instead of only on strategy change.
	FullRecompute bool
	// PaperFaithfulLookup uses the linear find_state search of the paper's
	// pseudo-code in the game inner loop (slower; for ablations).
	PaperFaithfulLookup bool
	// ExactPayoffs evaluates match-ups by the exact infinite-game Markov
	// payoff instead of sampling Rounds-round matches — the evaluation of
	// the original Nowak-Sigmund study. Removes all game sampling noise.
	ExactPayoffs bool
	// UnconditionalFermi drops the paper-text's teacher-strictly-better
	// gate and uses the standard Fermi process (Traulsen et al., the
	// paper's citation [15]): the learner may adopt a worse-scoring
	// teacher with probability below 1/2. This near-neutral drift is what
	// lets reciprocators bootstrap out of all-defect populations; the
	// Fig. 2 WSLS validation uses it.
	UnconditionalFermi bool
}

func (c Config) toSim() sim.Config {
	cfg := sim.DefaultConfig(c.Memory, c.SSets)
	cfg.Generations = c.Generations
	if c.Rounds > 0 {
		cfg.Rules.Rounds = c.Rounds
	}
	cfg.Rules.ErrorRate = c.ErrorRate
	if c.PCRate > 0 {
		cfg.PCRate = c.PCRate
	}
	if c.NoPC {
		cfg.PCRate = 0
	}
	if c.Mu > 0 {
		cfg.Mu = c.Mu
	}
	if c.NoMutation {
		cfg.Mu = 0
	}
	if c.Beta > 0 {
		cfg.Beta = c.Beta
	}
	if c.Mixed {
		cfg.Kind = sim.MixedStrategies
	}
	cfg.Seed = c.Seed
	cfg.FullRecompute = c.FullRecompute
	cfg.UseSearchEngine = c.PaperFaithfulLookup
	cfg.ExactPayoffs = c.ExactPayoffs
	cfg.AllowWorseAdoption = c.UnconditionalFermi
	return cfg
}

// SeriesPoint is one sampled (generation, value) observation.
type SeriesPoint struct {
	Generation int
	Value      float64
}

// Result summarises a run.
type Result struct {
	// Strategies holds each SSet's final strategy as its response string:
	// pure strategies as 0/1 over states ("0110" = memory-one WSLS), mixed
	// strategies as their nearest pure prefixed with '~'.
	Strategies []string
	// Fitness holds each SSet's final relative fitness (mean per-round
	// payoff over all opponents: 1 = all-defect, 3 = full cooperation
	// under the standard payoff).
	Fitness []float64
	// WSLSFraction is the share of final SSets whose strategy rounds to
	// Win-Stay Lose-Shift (the paper's Fig. 2 readout).
	WSLSFraction float64
	// DistinctStrategies counts distinct final strategies.
	DistinctStrategies int
	// MeanFitness samples population mean fitness over the run.
	MeanFitness []SeriesPoint
	// Cooperation samples the population mean cooperation probability.
	Cooperation []SeriesPoint
	// GamesPlayed, PCEvents, Adoptions, Mutations tally the run's work.
	GamesPlayed uint64
	PCEvents    uint64
	Adoptions   uint64
	Mutations   uint64
	// Elapsed is wall-clock duration; Ranks is the engine width used.
	Elapsed time.Duration
	Ranks   int
}

// Run executes the simulation described by cfg, sequentially (Ranks <= 1)
// or on the parallel engine (Ranks >= 2). Identical seeds give identical
// trajectories regardless of Ranks.
func Run(cfg Config) (*Result, error) {
	simCfg := cfg.toSim()
	var (
		res *sim.Result
		err error
	)
	if cfg.Ranks >= 2 {
		res, err = sim.RunParallel(simCfg, cfg.Ranks)
	} else {
		res, err = sim.RunSequential(simCfg)
	}
	if err != nil {
		return nil, err
	}
	return convertResult(simCfg, res), nil
}

func convertResult(cfg sim.Config, res *sim.Result) *Result {
	sp := strategy.NewSpace(cfg.Memory)
	out := &Result{
		Fitness:      res.FinalFitness,
		WSLSFraction: res.FractionNear(strategy.WSLS(sp)),
		GamesPlayed:  res.Counters.GamesPlayed,
		PCEvents:     res.Counters.PCEvents,
		Adoptions:    res.Counters.Adoptions,
		Mutations:    res.Counters.Mutations,
		Elapsed:      res.Elapsed,
		Ranks:        res.Ranks,
	}
	out.Strategies = make([]string, len(res.Final))
	for i, s := range res.Final {
		switch v := s.(type) {
		case *strategy.Pure:
			out.Strategies[i] = v.String()
		case *strategy.Mixed:
			out.Strategies[i] = "~" + v.NearestPure().String()
		}
	}
	out.DistinctStrategies = res.FinalAbundance().Distinct()
	out.MeanFitness = seriesPoints(res.MeanFitness.Len(), res.MeanFitness.At)
	out.Cooperation = seriesPoints(res.Cooperation.Len(), res.Cooperation.At)
	return out
}

func seriesPoints(n int, at func(int) (int, float64)) []SeriesPoint {
	out := make([]SeriesPoint, n)
	for i := range out {
		g, v := at(i)
		out[i] = SeriesPoint{Generation: g, Value: v}
	}
	return out
}

// Standing is one entrant's record in a classic-strategy tournament.
type Standing struct {
	// Name is the classic strategy's name (TFT, WSLS, ...).
	Name string
	// Score is the total payoff over all matches.
	Score float64
	// MeanPayoff is the per-round mean payoff.
	MeanPayoff float64
	// Cooperation is the fraction of the entrant's own moves that were C.
	Cooperation float64
}

// ClassicTournament plays an Axelrod-style round robin among the classic
// strategies (ALLC, ALLD, TFT, WSLS, GRIM, GTFT, and TF2T at memory >= 2)
// at the given memory depth and execution-error rate, returning standings
// best-first.
func ClassicTournament(memory int, errorRate float64, repeats int, seed uint64) ([]Standing, error) {
	if memory < 1 || memory > strategy.MaxMemory {
		return nil, fmt.Errorf("egd: memory %d out of [1,%d]", memory, strategy.MaxMemory)
	}
	sp := strategy.NewSpace(memory)
	names := []string{"ALLC", "ALLD", "TFT", "WSLS", "GRIM", "GTFT"}
	if memory >= 2 {
		names = append(names, "TF2T")
	}
	entrants := make([]game.Entrant, 0, len(names))
	for _, n := range names {
		s, err := strategy.Named(n, sp)
		if err != nil {
			return nil, err
		}
		entrants = append(entrants, game.Entrant{Name: n, Strategy: s})
	}
	rules := game.DefaultRules()
	rules.ErrorRate = errorRate
	standings, err := game.Tournament(rules, entrants, repeats, seed)
	if err != nil {
		return nil, err
	}
	out := make([]Standing, len(standings))
	for i, s := range standings {
		out[i] = Standing{Name: s.Name, Score: s.TotalScore, MeanPayoff: s.MeanPayoff, Cooperation: s.Cooperation}
	}
	return out, nil
}

// PaperTables renders the paper's analytic tables (I, III, IV, VIII) as
// formatted text keyed by name.
func PaperTables() map[string]string {
	return map[string]string{
		"table1": core.TableI().Format(),
		"table3": core.TableIII().Format(),
		"table4": core.TableIV().Format(),
		"table8": core.TableVIII([]int{1024, 2048, 4096, 8192, 16384, 32768}, []int{256, 512, 1024, 2048}).Format(),
	}
}

// ScalingTables renders the paper's modelled scaling artefacts (Table VI,
// Table VII, Figures 3-7) as formatted text keyed by name, using the
// paper-anchored calibration.
func ScalingTables() (map[string]string, error) {
	cal := core.DefaultCalibration()
	out := map[string]string{}
	add := func(name string, tbl *core.Table, err error) error {
		if err != nil {
			return err
		}
		out[name] = tbl.Format()
		return nil
	}
	t6, err := core.TableVI(cal)
	if err := add("table6", t6, err); err != nil {
		return nil, err
	}
	t7, err := core.TableVII(cal)
	if err := add("table7", t7, err); err != nil {
		return nil, err
	}
	f3, err := core.Fig3(cal)
	if err := add("fig3", f3, err); err != nil {
		return nil, err
	}
	f4, err := core.Fig4(cal, 2048)
	if err := add("fig4", f4, err); err != nil {
		return nil, err
	}
	f5, err := core.Fig5(cal)
	if err := add("fig5", f5, err); err != nil {
		return nil, err
	}
	f6, err := core.Fig6(cal)
	if err := add("fig6", f6, err); err != nil {
		return nil, err
	}
	f7, err := core.Fig7(cal, true)
	if err := add("fig7", f7, err); err != nil {
		return nil, err
	}
	return out, nil
}
