#!/usr/bin/env bash
# Multi-process chaos smoke for the wire transport: run the same seeded
# config three times through egdrun — fault-free, with a worker SIGKILLed
# mid-run, and with a worker SIGSTOPped through its own eviction — and
# assert that every deterministic summary line ("work:", fitness,
# cooperation, WSLS, distinct strategies) is byte-identical across runs.
# -full keeps GamesPlayed deterministic under eviction replay.
set -euo pipefail

cd "$(dirname "$0")/.."

GO=${GO:-go}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

SIM_FLAGS=(-np 4 -ssets 16 -gens 400 -rounds 20 -seed 7 -full)
EVICT_FLAGS=(-evict -heartbeat-every 25ms -heartbeat-misses 5)

echo "chaos-smoke: building egdrun"
$GO build -o "$TMP/egdrun" ./cmd/egdrun

strip_summary() { grep -v '^run:' "$1" > "$1.det"; }

echo "chaos-smoke: fault-free baseline"
"$TMP/egdrun" "${SIM_FLAGS[@]}" > "$TMP/clean.out"
strip_summary "$TMP/clean.out"

echo "chaos-smoke: SIGKILL worker 2 mid-run"
"$TMP/egdrun" "${SIM_FLAGS[@]}" "${EVICT_FLAGS[@]}" -chaos-kill 2@150ms > "$TMP/kill.out"
strip_summary "$TMP/kill.out"

echo "chaos-smoke: SIGSTOP worker 3 mid-run, SIGCONT after eviction"
"$TMP/egdrun" "${SIM_FLAGS[@]}" "${EVICT_FLAGS[@]}" -chaos-stop 3@150ms:2s > "$TMP/stop.out"
strip_summary "$TMP/stop.out"

fail=0
for chaos in kill stop; do
    if ! diff -u "$TMP/clean.out.det" "$TMP/$chaos.out.det"; then
        echo "chaos-smoke: FAIL: $chaos run diverged from the fault-free baseline" >&2
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    exit 1
fi

echo "chaos-smoke: PASS: chaos runs bit-identical to fault-free baseline"
cat "$TMP/clean.out.det"
