#!/usr/bin/env bash
# End-to-end smoke for the egdserve daemon over real HTTP: boot it on an
# ephemeral port, drive a job to completion, stream its SSE timeline, then
# pause a long run mid-flight, resume it, and assert its /result is
# byte-identical (minus job id and elapsed time) to the same spec run
# uninterrupted; SIGTERM then asserts a clean shutdown. A second, durable
# daemon (-data-dir) is kill -9'd mid-job and restarted over the same
# directory: recovery must resume the job from its checkpoint and produce
# the uninterrupted run's result, and a final SIGTERM must drain cleanly.
set -euo pipefail

cd "$(dirname "$0")/.."

GO=${GO:-go}
TMP=$(mktemp -d)
SERVE_PID=
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "serve-smoke: building egdserve"
$GO build -o "$TMP/egdserve" ./cmd/egdserve

wait_base() { # daemon log file -> sets BASE
    BASE=
    for _ in $(seq 1 100); do
        BASE=$(sed -n 's/^egdserve: listening on //p' "$1")
        [ -n "$BASE" ] && break
        sleep 0.1
    done
    if [ -z "$BASE" ]; then
        echo "serve-smoke: FAIL: daemon never came up" >&2
        cat "$1" >&2
        exit 1
    fi
}

"$TMP/egdserve" -addr 127.0.0.1:0 -workers 2 > "$TMP/serve.out" 2>&1 &
SERVE_PID=$!
wait_base "$TMP/serve.out"
echo "serve-smoke: daemon at $BASE"

curl -fsS "$BASE/healthz" > /dev/null

submit() { curl -fsS -X POST -d "$1" "$BASE/api/v1/jobs" | sed -n 's/.*"id": "\(j-[0-9-]*\)".*/\1/p'; }
state()  { curl -fsS "$BASE/api/v1/jobs/$1" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p'; }
gen()    { curl -fsS "$BASE/api/v1/jobs/$1" | sed -n 's/.*"generation": \([0-9]*\).*/\1/p'; }

wait_state() { # job id, wanted state
    for _ in $(seq 1 600); do
        s=$(state "$1")
        [ "$s" = "$2" ] && return 0
        case "$s" in failed|canceled)
            echo "serve-smoke: FAIL: job $1 settled as $s while waiting for $2" >&2
            curl -fsS "$BASE/api/v1/jobs/$1" >&2
            return 1;;
        esac
        sleep 0.05
    done
    echo "serve-smoke: FAIL: job $1 never reached $2 (last: $(state "$1"))" >&2
    return 1
}

echo "serve-smoke: small job runs to completion"
SMALL=$(submit '{"memory":1,"ssets":8,"generations":200,"rounds":20,"seed":7,"sample_stride":20}')
wait_state "$SMALL" done
curl -fsS "$BASE/api/v1/jobs/$SMALL/result" -o "$TMP/small.json"
grep -q '"final_fitness"' "$TMP/small.json"

echo "serve-smoke: SSE timeline replays for the finished job"
curl -fsS --max-time 30 -N "$BASE/api/v1/jobs/$SMALL/events" > "$TMP/sse.out"
grep -q '^event: sample' "$TMP/sse.out"
grep -q '"state":"done"' "$TMP/sse.out"

echo "serve-smoke: pause/resume parity against an uninterrupted run"
SPEC='{"memory":1,"ssets":12,"generations":6000,"rounds":100,"seed":99,"full_recompute":true}'
A=$(submit "$SPEC")
for _ in $(seq 1 400); do
    g=$(gen "$A")
    [ -n "$g" ] && [ "$g" -ge 100 ] && break
    sleep 0.02
done
curl -fsS -X POST "$BASE/api/v1/jobs/$A/pause" > /dev/null
wait_state "$A" paused
PAUSED_AT=$(gen "$A")
echo "serve-smoke: paused $A at generation $PAUSED_AT"
curl -fsS -X POST "$BASE/api/v1/jobs/$A/resume" > /dev/null
wait_state "$A" done
curl -fsS "$BASE/api/v1/jobs/$A/result" | grep -v '"id"\|"elapsed_seconds"' > "$TMP/paused.json"

B=$(submit "$SPEC")
wait_state "$B" done
curl -fsS "$BASE/api/v1/jobs/$B/result" | grep -v '"id"\|"elapsed_seconds"' > "$TMP/straight.json"

if ! diff -u "$TMP/straight.json" "$TMP/paused.json"; then
    echo "serve-smoke: FAIL: paused+resumed result diverged from the uninterrupted run" >&2
    exit 1
fi

echo "serve-smoke: daemon metrics cover the finished jobs"
curl -fsS "$BASE/metrics" | grep -q 'egd_server_jobs_finished_total{state="done"} 3'

echo "serve-smoke: SIGTERM shuts the daemon down cleanly"
kill -TERM "$SERVE_PID"
rc=0
wait "$SERVE_PID" || rc=$?
SERVE_PID=
if [ "$rc" -ne 0 ]; then
    echo "serve-smoke: FAIL: daemon exited with status $rc" >&2
    cat "$TMP/serve.out" >&2
    exit 1
fi
grep -q 'shutting down' "$TMP/serve.out"

echo "serve-smoke: durable daemon survives kill -9 with a bit-identical result"
DATA="$TMP/data"
"$TMP/egdserve" -addr 127.0.0.1:0 -workers 1 -data-dir "$DATA" -checkpoint-every 250 > "$TMP/serve2.out" 2>&1 &
SERVE_PID=$!
wait_base "$TMP/serve2.out"
echo "serve-smoke: durable daemon at $BASE (data dir $DATA)"

CSPEC='{"memory":1,"ssets":8,"generations":20000,"rounds":200,"seed":4242,"full_recompute":true}'
C=$(submit "$CSPEC")
wait_state "$C" done
curl -fsS "$BASE/api/v1/jobs/$C/result" | grep -v '"id"\|"elapsed_seconds"' > "$TMP/uninterrupted.json"

D=$(submit "$CSPEC")
for _ in $(seq 1 600); do
    g=$(gen "$D")
    [ -n "$g" ] && [ "$g" -ge 1000 ] && break
    sleep 0.02
done
echo "serve-smoke: kill -9 at generation $(gen "$D")"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=

"$TMP/egdserve" -addr 127.0.0.1:0 -workers 1 -data-dir "$DATA" -checkpoint-every 250 > "$TMP/serve3.out" 2>&1 &
SERVE_PID=$!
wait_base "$TMP/serve3.out"
grep -q 'clean shutdown false' "$TMP/serve3.out"
echo "serve-smoke: restarted daemon at $BASE, job $D recovering"
wait_state "$D" done
curl -fsS "$BASE/api/v1/jobs/$D/result" | grep -v '"id"\|"elapsed_seconds"' > "$TMP/recovered.json"
if ! diff -u "$TMP/uninterrupted.json" "$TMP/recovered.json"; then
    echo "serve-smoke: FAIL: post-crash result diverged from the uninterrupted run" >&2
    exit 1
fi
# Terminal results survive restarts (grep a downloaded copy: grep -q on a
# pipe closes it mid-transfer and fails curl under pipefail).
curl -fsS "$BASE/api/v1/jobs/$C/result" -o "$TMP/c-after-restart.json"
grep -q '"final_fitness"' "$TMP/c-after-restart.json"

echo "serve-smoke: SIGTERM drains the durable daemon cleanly"
kill -TERM "$SERVE_PID"
rc=0
wait "$SERVE_PID" || rc=$?
SERVE_PID=
if [ "$rc" -ne 0 ]; then
    echo "serve-smoke: FAIL: durable daemon exited with status $rc" >&2
    cat "$TMP/serve3.out" >&2
    exit 1
fi
grep -q 'drain complete, journal clean' "$TMP/serve3.out"

echo "serve-smoke: PASS"
