package egd_test

import (
	"fmt"

	egd "repro"
)

// The minimal flow: configure, run, inspect. Identical seeds give
// identical trajectories, so the output is stable.
func ExampleRun() {
	res, err := egd.Run(egd.Config{
		Memory:      1,
		SSets:       8,
		Generations: 200,
		Rounds:      50,
		Seed:        7,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("SSets:", len(res.Strategies))
	fmt.Println("ranks:", res.Ranks)
	fmt.Println("events consistent:", res.Adoptions <= res.PCEvents)
	// Output:
	// SSets: 8
	// ranks: 1
	// events consistent: true
}

// The parallel engine reproduces the sequential trajectory exactly.
func ExampleRun_parallel() {
	cfg := egd.Config{Memory: 1, SSets: 8, Generations: 100, Rounds: 20, Seed: 3}
	seq, err := egd.Run(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	cfg.Ranks = 3
	par, err := egd.Run(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	same := true
	for i := range seq.Strategies {
		if seq.Strategies[i] != par.Strategies[i] {
			same = false
		}
	}
	fmt.Println("identical final populations:", same)
	fmt.Println("games equal:", seq.GamesPlayed == par.GamesPlayed)
	// Output:
	// identical final populations: true
	// games equal: true
}

// Classic strategies in an Axelrod-style round robin. In a noise-free
// field the reciprocators tie at sustained mutual cooperation.
func ExampleClassicTournament() {
	standings, err := egd.ClassicTournament(1, 0, 3, 2012)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("entrants:", len(standings))
	fmt.Println("winner beats ALLD:", standings[0].Score > findScore(standings, "ALLD"))
	fmt.Println("ALLD cooperates never:", findCoop(standings, "ALLD") == 0)
	// Output:
	// entrants: 6
	// winner beats ALLD: true
	// ALLD cooperates never: true
}

func findScore(standings []egd.Standing, name string) float64 {
	for _, s := range standings {
		if s.Name == name {
			return s.Score
		}
	}
	return -1
}

func findCoop(standings []egd.Standing, name string) float64 {
	for _, s := range standings {
		if s.Name == name {
			return s.Cooperation
		}
	}
	return -1
}
