package egd

import (
	"os"
	"testing"

	"repro/internal/core"
)

// TestWSLSEmergenceLong reproduces the paper's Fig. 2 headline at reduced
// scale: from a random mixed population under 1% execution errors, the
// majority of SSets adopt Win-Stay Lose-Shift. The full validation
// (2×10^6 generations, >90% WSLS; see EXPERIMENTS.md) takes minutes, so
// this test is opt-in:
//
//	EGD_LONG=1 go test -run TestWSLSEmergenceLong -timeout 30m .
func TestWSLSEmergenceLong(t *testing.T) {
	if os.Getenv("EGD_LONG") == "" {
		t.Skip("set EGD_LONG=1 to run the long Fig. 2 validation")
	}
	cfg := core.WSLSValidationConfig(32, 2000000, 11)
	out, err := core.RunWSLSValidation(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("WSLS fraction %.3f, dominant cluster %.3f (WSLS: %v), %v elapsed",
		out.WSLSFraction, out.DominantFraction, out.DominantIsWSLS, out.Result.Elapsed)
	if out.WSLSFraction < 0.5 {
		t.Errorf("WSLS fraction %.3f, want > 0.5 (paper: 0.85)", out.WSLSFraction)
	}
	if !out.DominantIsWSLS {
		t.Error("dominant k-means cluster does not round to WSLS")
	}
}
