// Errorsweep: the paper's §III-E motivation, quantified two ways. First,
// the exact Markov-chain payoffs of classic strategy pairings as the
// execution-error rate grows — showing analytically why one mistake ruins
// Tit-For-Tat reciprocity but not Win-Stay Lose-Shift. Second, an
// evolutionary sweep: full simulations across error rates, tabulating how
// much cooperation the evolved populations sustain.
//
//	go run ./examples/errorsweep
package main

import (
	"fmt"
	"log"
	"strconv"

	"repro/internal/analysis"
	"repro/internal/game"
	"repro/internal/sim"
	"repro/internal/strategy"
	"repro/internal/sweep"
)

func main() {
	sp := strategy.NewSpace(1)
	payoff := game.StandardPayoff()
	rates := []float64{0, 0.001, 0.01, 0.05, 0.10}

	fmt.Println("exact self-play payoff per round vs execution-error rate")
	fmt.Println("(Markov stationary analysis; R=3 is sustained cooperation):")
	fmt.Printf("  %-8s", "error")
	names := []string{"TFT", "WSLS", "GTFT", "GRIM", "ALLC"}
	for _, n := range names {
		fmt.Printf(" %8s", n)
	}
	fmt.Println()
	for _, e := range rates {
		fmt.Printf("  %-8.3f", e)
		for _, n := range names {
			s, err := strategy.Named(n, sp)
			if err != nil {
				log.Fatal(err)
			}
			pi, _, err := analysis.MarkovPayoff(payoff, s, s, e)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %8.3f", pi)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("TFT self-play collapses toward 2.0 (the pair drifts through all")
	fmt.Println("four states after one slip); WSLS recovers in two rounds and GTFT")
	fmt.Println("forgives, so both hold near 3.0 at small error rates.")
	fmt.Println()

	// How exploitable is each nice strategy once errors open the door?
	alld := strategy.AllD(sp)
	fmt.Println("exact payoff against ALLD at 1% errors (resistance to exploitation):")
	for _, n := range names {
		s, _ := strategy.Named(n, sp)
		mine, theirs, err := analysis.MarkovPayoff(payoff, s, alld, 0.01)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s earns %.3f, ALLD earns %.3f\n", n, mine, theirs)
	}
	fmt.Println()

	// Evolutionary consequence: sweep full simulations across error rates.
	base := sim.DefaultConfig(1, 24)
	base.Generations = 20000
	base.Kind = sim.MixedStrategies
	base.AllowWorseAdoption = true
	base.Beta = 10
	base.PCRate = 1.0
	grid, err := sweep.Cross(base,
		[]string{"error", "seed"},
		[][]string{{"0", "0.01", "0.05", "0.15"}, {"1", "2", "3"}},
		func(cfg *sim.Config, name, value string) error {
			switch name {
			case "error":
				v, err := strconv.ParseFloat(value, 64)
				if err != nil {
					return err
				}
				cfg.Rules.ErrorRate = v
			case "seed":
				v, err := strconv.ParseUint(value, 10, 64)
				if err != nil {
					return err
				}
				cfg.Seed = v
			}
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evolutionary sweep: %d cells (24 SSets, 20k generations each)...\n", grid.Size())
	outcomes := grid.Run(0)

	fmt.Println("mean evolved cooperation probability by error rate (3 seeds):")
	byRate := map[string][]float64{}
	for _, o := range outcomes {
		if o.Err != nil {
			log.Fatal(o.Err)
		}
		r := o.Point.Labels["error"]
		byRate[r] = append(byRate[r], o.Cooperation)
	}
	for _, r := range []string{"0", "0.01", "0.05", "0.15"} {
		vals := byRate[r]
		mean := 0.0
		for _, v := range vals {
			mean += v
		}
		mean /= float64(len(vals))
		fmt.Printf("  error %-5s -> cooperation %.3f\n", r, mean)
	}
	fmt.Println()
	fmt.Println("heavy error rates erode evolved cooperation: reciprocity cannot")
	fmt.Println("distinguish exploitation from accident, the effect that makes")
	fmt.Println("memory (and strategies like WSLS) matter — the paper's motivation.")
}
