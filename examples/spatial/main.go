// Spatial: lattice-structured evolutionary games — the spatialised
// Prisoner's Dilemma the paper cites as the origin of its learning
// dynamics ([30]), in Nowak & May's classic form. A lone defector in a sea
// of cooperators grows an exactly symmetric kaleidoscope; random lattices
// in the chaos window converge to the famous ~0.318 cooperator fraction;
// and on the repeated-game lattice a small island of Tit-For-Tat holds out
// against ALLD — space protects cooperation where well-mixed populations
// cannot.
//
//	go run ./examples/spatial
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/game"
	"repro/internal/spatial"
	"repro/internal/strategy"
)

func main() {
	var (
		frames = flag.Int("frames", 3, "kaleidoscope frames to print")
		size   = flag.Int("size", 49, "kaleidoscope lattice size (odd)")
	)
	flag.Parse()

	// Part 1: the kaleidoscope.
	fmt.Printf("Nowak-May kaleidoscope: lone defector at b=1.85 on a %dx%d lattice\n\n", *size, *size)
	l, err := spatial.NewBinary(*size, *size, 1.85, 1.0, 1)
	if err != nil {
		log.Fatal(err)
	}
	l.SetCell(*size/2, *size/2, false)
	for f := 0; f < *frames; f++ {
		l.Run(5)
		fmt.Printf("generation %d, cooperation %.3f:\n%s\n", l.Generation(), l.CoopFraction(), l.Ascii())
	}

	// Part 2: the asymptote.
	fmt.Println("chaos-window asymptote (100x100, b=1.9):")
	// Very fragmented starts can collapse before clusters form (cooperation
	// needs a seed cluster to survive); moderately cooperative starts show
	// the universal asymptote.
	for _, start := range []float64{0.9, 0.6} {
		lat, err := spatial.NewBinary(100, 100, 1.9, start, 6)
		if err != nil {
			log.Fatal(err)
		}
		lat.Run(150)
		fmt.Printf("  start %.0f%% cooperators -> long-run %.3f (literature: ~0.318)\n",
			100*start, lat.CoopFraction())
	}
	fmt.Println()

	// Part 3: the repeated-game lattice.
	fmt.Println("spatial IPD: a 4x4 TFT island inside a 16x16 ALLD lattice, imitate-best:")
	sp := strategy.NewSpace(1)
	cfg := spatial.IPDConfig{W: 16, H: 16, Memory: 1, Seed: 3}
	cfg.Rules = game.DefaultRules()
	lat, err := spatial.NewIPD(cfg)
	if err != nil {
		log.Fatal(err)
	}
	alld, tft := strategy.AllD(sp), strategy.TFT(sp)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			lat.SetCell(x, y, alld)
		}
	}
	for y := 6; y < 10; y++ {
		for x := 6; x < 10; x++ {
			lat.SetCell(x, y, tft)
		}
	}
	for g := 0; g <= 12; g += 4 {
		fmt.Printf("  generation %2d: TFT holds %.1f%% of the lattice\n", g, 100*lat.FractionNear(tft))
		lat.Run(4)
	}
	fmt.Println()
	fmt.Println("in a well-mixed population this island would be eaten (TFT earns less")
	fmt.Println("than the surrounding defectors); on the lattice, TFT-TFT interior cells")
	fmt.Println("earn R against each other and anchor the cluster — the spatial")
	fmt.Println("reciprocity mechanism.")
}
