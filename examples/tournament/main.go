// Tournament: the Axelrod-style round robin that motivates the paper's
// §III — classic strategies meet in repeated Prisoner's Dilemma, first in a
// noise-free world (where Tit-For-Tat shines) and then with execution
// errors (where Win-Stay Lose-Shift overtakes it, the paper's §III-E).
//
//	go run ./examples/tournament
package main

import (
	"fmt"
	"log"

	egd "repro"
	"repro/internal/game"
	"repro/internal/strategy"
)

func show(title string, standings []egd.Standing) {
	fmt.Println(title)
	fmt.Printf("  %-6s  %10s  %8s  %6s\n", "name", "score", "payoff/r", "coop")
	for i, s := range standings {
		fmt.Printf("  %d. %-6s %10.0f  %8.3f  %5.1f%%\n",
			i+1, s.Name, s.Score, s.MeanPayoff, 100*s.Cooperation)
	}
	fmt.Println()
}

func main() {
	// Noise-free: reciprocators sustain mutual cooperation; ALLD exploits
	// only the unconditional cooperators.
	clean, err := egd.ClassicTournament(1, 0, 5, 2012)
	if err != nil {
		log.Fatal(err)
	}
	show("round robin, no errors (memory one, 200 rounds, 5 repeats):", clean)

	// 5% execution errors: a single mistaken defection locks TFT pairs
	// into vendettas, while WSLS recovers in two rounds.
	noisy, err := egd.ClassicTournament(1, 0.05, 5, 2012)
	if err != nil {
		log.Fatal(err)
	}
	show("round robin, 5% execution errors:", noisy)

	rank := func(standings []egd.Standing, name string) int {
		for i, s := range standings {
			if s.Name == name {
				return i + 1
			}
		}
		return 0
	}
	fmt.Printf("WSLS moved from rank %d (clean) to rank %d (noisy); TFT from %d to %d.\n",
		rank(clean, "WSLS"), rank(noisy, "WSLS"), rank(clean, "TFT"), rank(noisy, "TFT"))

	// Memory two admits Tit-For-Two-Tats, which forgives isolated errors.
	mem2, err := egd.ClassicTournament(2, 0.05, 5, 2012)
	if err != nil {
		log.Fatal(err)
	}
	show("memory two with 5% errors (TF2T joins the field):", mem2)

	// Axelrod's ecological follow-up: entrant shares evolve in proportion
	// to their score against the current mix. ALLD blooms on the
	// unconditional cooperators, then starves as its prey vanishes.
	sp := strategy.NewSpace(1)
	field := []game.Entrant{
		{Name: "ALLC-a", Strategy: strategy.AllC(sp)},
		{Name: "ALLC-b", Strategy: strategy.AllC(sp)},
		{Name: "ALLC-c", Strategy: strategy.AllC(sp)},
		{Name: "ALLD", Strategy: strategy.AllD(sp)},
		{Name: "TFT", Strategy: strategy.TFT(sp)},
		{Name: "WSLS", Strategy: strategy.WSLS(sp)},
	}
	eco, err := game.Ecological(game.DefaultRules(), field, 500, 2012)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ecological tournament (population shares over generations):")
	fmt.Printf("  %-5s", "gen")
	for _, n := range eco.Names {
		fmt.Printf(" %7s", n)
	}
	fmt.Println()
	for _, g := range []int{0, 10, 30, 60, 120, 500} {
		fmt.Printf("  %-5d", g)
		for _, s := range eco.Shares[g] {
			fmt.Printf(" %6.1f%%", 100*s)
		}
		fmt.Println()
	}
	winner, share := eco.Winner()
	fmt.Printf("ecological winner: %s with %.1f%% — the defector's bloom is transient.\n",
		winner, 100*share)
}
