// Memoryscaling: the mechanism behind the paper's Table VI and Fig. 4,
// measured on this machine. The per-round cost of the paper-faithful
// find_state lookup grows with the 4^n-entry state table, so deeper memory
// makes whole simulations dramatically slower while the optimised direct
// index barely notices; and on the parallel engine, deeper memory improves
// parallel efficiency because computation grows while communication does
// not (the paper's Fig. 3 observation).
//
//	go run ./examples/memoryscaling
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/game"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/strategy"
)

func timeMatches(mem int, useSearch bool, n int) time.Duration {
	sp := strategy.NewSpace(mem)
	master := rng.New(7)
	s0 := strategy.RandomPure(sp, master)
	s1 := strategy.RandomPure(sp, master)
	rules := game.DefaultRules()
	var eng *game.SearchEngine
	if useSearch {
		eng = game.NewSearchEngine(sp)
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if eng != nil {
			eng.Play(rules, s0, s1, master)
		} else {
			game.Play(rules, s0, s1, master)
		}
	}
	return time.Since(start) / time.Duration(n)
}

func main() {
	fmt.Println("per-match cost vs memory depth (200-round IPD, this host):")
	fmt.Printf("  %-8s %14s %14s %8s\n", "memory", "direct-index", "find_state", "ratio")
	var base time.Duration
	for mem := 1; mem <= 6; mem++ {
		reps := 2000 >> uint(mem) // keep total time bounded
		if reps < 5 {
			reps = 5
		}
		direct := timeMatches(mem, false, reps)
		search := timeMatches(mem, true, reps)
		if mem == 1 {
			base = search
		}
		fmt.Printf("  memory-%d %14v %14v %7.1fx\n", mem, direct, search, float64(search)/float64(base))
	}
	fmt.Println()
	fmt.Println("the find_state column is the paper's Fig. 4 growth: the state table")
	fmt.Println("has 4^n entries and each round scans it; the direct index is the")
	fmt.Println("ablation showing the lookup, not the game itself, is what scales.")
	fmt.Println()

	// Whole-simulation view (Table VI's rows, scaled to this host): fixed
	// population, paper timing mode, increasing memory.
	fmt.Println("full simulation runtime vs memory (32 SSets, 20 generations, full recompute):")
	for _, mem := range []int{1, 2, 3, 4, 5, 6} {
		cfg := sim.DefaultConfig(mem, 32)
		cfg.Generations = 20
		cfg.PCRate = 0.01
		cfg.FullRecompute = true
		cfg.Seed = 1
		res, err := sim.RunSequential(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  memory-%d: %10v  (%d matches)\n", mem, res.Elapsed.Round(time.Millisecond), res.Counters.GamesPlayed)
	}
	fmt.Println()

	// Parallel efficiency vs memory (Fig. 3's observation) on real ranks.
	workers := runtime.NumCPU()
	if workers > 8 {
		workers = 8
	}
	if workers < 2 {
		fmt.Println("single-CPU host: goroutine ranks interleave on one core, so")
		fmt.Println("measured speedup is not meaningful here. On a multicore host this")
		fmt.Println("section reports real parallel-engine speedup (see also")
		fmt.Println("`egdscale -measure`); engine correctness across rank counts is")
		fmt.Println("established by the bit-exact parity tests in internal/sim.")
		return
	}
	fmt.Printf("parallel engine speedup with %d workers (vs 1 worker):\n", workers)
	for _, mem := range []int{1, 6} {
		cfg := sim.DefaultConfig(mem, 64)
		cfg.Generations = 10
		cfg.PCRate = 0.01
		cfg.FullRecompute = true
		cfg.Rules.Rounds = 100
		cfg.Seed = 2
		one, err := sim.RunParallel(cfg, 2)
		if err != nil {
			log.Fatal(err)
		}
		many, err := sim.RunParallel(cfg, workers+1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  memory-%d: %6.2fx (%.3fs -> %.3fs)\n",
			mem, one.Elapsed.Seconds()/many.Elapsed.Seconds(),
			one.Elapsed.Seconds(), many.Elapsed.Seconds())
	}
	fmt.Println("deeper memory gives the workers more computation per broadcast,")
	fmt.Println("so efficiency holds or improves — the paper's Fig. 3.")
}
