// WSLS: the paper's Fig. 2 validation, scaled to a workstation. A
// population of probabilistic (mixed) memory-one strategies starts random;
// under execution errors, Fermi pairwise-comparison learning, and random
// mutation, natural selection discovers Win-Stay Lose-Shift — the
// Nowak-Sigmund result the paper reproduces on 2,048 Blue Gene/L
// processors with 5,000 SSets over 10^7 generations.
//
// The incremental fitness engine replays matches only when a strategy
// changes, so millions of generations run in minutes; pass -gens to push
// further toward the paper's scale.
//
//	go run ./examples/wsls [-ssets N] [-gens G] [-seed S]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/strategy"
)

func main() {
	var (
		ssets = flag.Int("ssets", 32, "Strategy Sets (paper: 5,000)")
		gens  = flag.Int("gens", 2000000, "generations (paper: 10^7)")
		seed  = flag.Uint64("seed", 11, "master seed")
		k     = flag.Int("k", 6, "k-means clusters for the Fig. 2 readout")
	)
	flag.Parse()

	cfg := core.WSLSValidationConfig(*ssets, *gens, *seed)
	sp := strategy.NewSpace(cfg.Memory)
	wsls := strategy.WSLS(sp)

	// Track the WSLS fraction trajectory, the quantity Fig. 2 visualises.
	stride := max(1, *gens/20)
	series, _ := stats.NewSeries(stride)
	cfg.Observer = sim.ObserverFunc(func(gen int, pop *sim.Population, ev sim.Events) {
		if gen%stride == 0 {
			series.Observe(gen, pop.FractionNear(wsls))
		}
	})

	fmt.Printf("evolving %d SSets of mixed memory-one strategies for %d generations\n", *ssets, *gens)
	fmt.Printf("(errors %.1f%%, PC rate %.2f, mutation %.2f, beta %.0f, unconditional Fermi)\n",
		100*cfg.Rules.ErrorRate, cfg.PCRate, cfg.Mu, cfg.Beta)

	out, err := core.RunWSLSValidation(cfg, *k)
	if err != nil {
		log.Fatal(err)
	}
	res := out.Result

	fmt.Printf("\ndone in %v: %d matches, %d learning events (%d adoptions), %d mutations\n",
		res.Elapsed.Round(1000000), res.Counters.GamesPlayed,
		res.Counters.PCEvents, res.Counters.Adoptions, res.Counters.Mutations)

	fmt.Println("\nWSLS fraction over time:")
	for i := 0; i < series.Len(); i++ {
		g, v := series.At(i)
		bar := int(v * 40)
		fmt.Printf("  gen %9d  %5.1f%%  %s\n", g, 100*v, repeat('#', bar))
	}

	fmt.Printf("\nfinal WSLS fraction: %.1f%% (paper's Fig. 2: 85%% after 10^7 generations at 5,000 SSets)\n",
		100*out.WSLSFraction)
	fmt.Printf("k-means dominant cluster: %.1f%% of SSets; centroid rounds to WSLS: %v\n",
		100*out.DominantFraction, out.DominantIsWSLS)

	// Fig. 2(b): the clustered population map.
	km, err := cluster.KMeans(cluster.StrategyVectors(res.Final), min(*k, len(res.Final)), 100, rng.New(*seed^0xF2))
	if err != nil {
		log.Fatal(err)
	}
	order := make([]int, len(res.Final))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := km.Assign[order[a]], km.Assign[order[b]]
		if km.Sizes[ca] != km.Sizes[cb] {
			return km.Sizes[ca] > km.Sizes[cb]
		}
		return ca < cb
	})
	sorted := make([]strategy.Strategy, len(order))
	for i, idx := range order {
		sorted[i] = res.Final[idx]
	}
	fmt.Println("\nfinal population, clustered (rows = SSets, cols = states CC,CD,DC,DD;")
	fmt.Println("'.' cooperate, '#' defect, digits = mixed deciles; WSLS rows read .##.):")
	fmt.Print(core.AsciiMap(sorted, 0))
}

func repeat(c byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}
