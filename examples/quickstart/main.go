// Quickstart: evolve a small population of memory-one strategies with the
// paper's default dynamics and print what natural selection produced.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	egd "repro"
)

func main() {
	// 64 Strategy Sets of pure memory-one strategies, evolved for 5,000
	// generations with the paper's rates: pairwise-comparison learning at
	// 0.10, mutation at 0.05, payoff f[R,S,T,P] = [3,0,4,1], 200-round
	// Iterated Prisoner's Dilemma matches.
	cfg := egd.Config{
		Memory:      1,
		SSets:       64,
		Generations: 5000,
		Seed:        42,
	}
	res, err := egd.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("evolved %d SSets for %d generations in %v\n",
		cfg.SSets, cfg.Generations, res.Elapsed.Round(1000000))
	fmt.Printf("work: %d IPD matches, %d learning events (%d adoptions), %d mutations\n",
		res.GamesPlayed, res.PCEvents, res.Adoptions, res.Mutations)
	fmt.Printf("final population: %d distinct strategies, WSLS fraction %.2f\n",
		res.DistinctStrategies, res.WSLSFraction)

	if n := len(res.MeanFitness); n > 0 {
		first, last := res.MeanFitness[0], res.MeanFitness[n-1]
		fmt.Printf("mean fitness: %.3f (gen %d) -> %.3f (gen %d)  [1 = all-defect, 3 = full cooperation]\n",
			first.Value, first.Generation, last.Value, last.Generation)
	}

	// The same seed on the parallel engine reproduces the exact trajectory.
	cfg.Ranks = 4
	par, err := egd.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	same := true
	for i := range res.Strategies {
		if res.Strategies[i] != par.Strategies[i] {
			same = false
			break
		}
	}
	fmt.Printf("parallel engine (%d ranks) reproduced the sequential trajectory: %v\n",
		cfg.Ranks, same)
}
