// Replicator: the Fig. 2 mechanism derived with exact payoffs — the
// analytic method of Nowak & Sigmund, whose study the paper's validation
// reproduces. Strategy *frequencies* evolve by deterministic replicator
// dynamics; every pairing's payoff comes from the exact Markov stationary
// distribution (internal/analysis), so there is no sampling noise at all.
//
// Two runs. The classic seeded competition — ALLC, ALLD, TFT, GTFT, GRIM,
// WSLS at equal shares under 1% execution errors — plays out the famous
// sequence: defectors feast on unconditional cooperators, reciprocators
// then starve the defectors, and once cooperation is re-established
// Win-Stay Lose-Shift out-earns Tit-For-Tat (which noise locks into
// vendettas) and takes the population. The second run starts from random
// strategies and shows why the *stochastic finite-population* dynamics of
// the agent engine matter: the deterministic limit has no drift, so a
// random soup collapses into a defecting trap and stays there — exactly the
// bootstrap problem the paper's pairwise-comparison process solves.
//
//	go run ./examples/replicator
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/replicator"
	"repro/internal/strategy"
)

func report(pop *replicator.Population, gen int, wsls *strategy.Pure) {
	fmt.Printf("%10d %7d %7.3f %9.3f %7.1f%%\n",
		gen, len(pop.Atoms()), pop.MeanCooperation(), pop.MeanFitness(), 100*pop.FractionNear(wsls))
}

func main() {
	var (
		gens = flag.Int("gens", 4000, "replicator generations per run")
		seed = flag.Uint64("seed", 4, "mutant-stream seed")
	)
	flag.Parse()

	sp := strategy.NewSpace(1)
	wsls := strategy.WSLS(sp)

	// Run 1: the classic field under errors, pure selection.
	fmt.Println("run 1: classic strategies at equal frequency, 1% errors, exact payoffs")
	fmt.Printf("%10s %7s %7s %9s %8s\n", "generation", "atoms", "coop", "meanPay", "WSLS")
	cfg := replicator.Config{
		ErrorRate:   0.01,
		Atoms:       6,
		Generations: *gens,
		MutateEvery: 0, // pure selection
		Selection:   1.0,
		Seed:        *seed,
	}
	seedStrategies := []strategy.Strategy{
		strategy.AllC(sp), strategy.AllD(sp), strategy.TFT(sp),
		strategy.GTFT(sp, 1.0/3.0), strategy.Grim(sp), strategy.WSLS(sp),
	}
	pop, err := replicator.NewFromStrategies(cfg, seedStrategies)
	if err != nil {
		log.Fatal(err)
	}
	step := max(1, *gens/10)
	err = pop.Run(func(gen int, p *replicator.Population) {
		if gen%step == 0 {
			report(p, gen, wsls)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	dom := pop.DominantAtom()
	fmt.Printf("winner: %s at %.1f%% — WSLS share %.1f%% (mean payoff %.3f)\n\n",
		dom.Strategy, 100*dom.Freq, 100*pop.FractionNear(wsls), pop.MeanFitness())

	// Run 2: random soup, mutants allowed — the deterministic trap.
	fmt.Println("run 2: random mixed strategies + rare mutants (deterministic limit)")
	fmt.Printf("%10s %7s %7s %9s %8s\n", "generation", "atoms", "coop", "meanPay", "WSLS")
	cfg2 := replicator.Config{
		ErrorRate:   0.01,
		Atoms:       20,
		Generations: *gens,
		MutantFreq:  0.002,
		MutateEvery: 50,
		Selection:   1.0,
		Seed:        *seed,
	}
	pop2, err := replicator.New(cfg2)
	if err != nil {
		log.Fatal(err)
	}
	err = pop2.Run(func(gen int, p *replicator.Population) {
		if gen%step == 0 {
			report(p, gen, wsls)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	dom2 := pop2.DominantAtom()
	var nearest string
	if m, ok := dom2.Strategy.(*strategy.Mixed); ok {
		nearest = m.NearestPure().String()
	}
	fmt.Printf("winner: rounds to %s at %.1f%% (mean payoff %.3f)\n\n", nearest, 100*dom2.Freq, pop2.MeanFitness())

	fmt.Println("run 1 shows the paper's validation mechanism with zero noise: under")
	fmt.Println("errors, WSLS absorbs the population once defectors starve. run 2 shows")
	fmt.Println("why finite-population stochastic dynamics (the agent engine, and the")
	fmt.Println("paper's Blue Gene runs) are needed from a cold start: deterministic")
	fmt.Println("replication cannot drift out of the defecting trap, while the Fermi")
	fmt.Println("pairwise-comparison process can — see examples/wsls.")
}
