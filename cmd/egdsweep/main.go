// Command egdsweep runs a grid of simulations over parameter ranges and
// prints one CSV row per cell — the parameter-study driver for questions
// like "at which error rate does cooperation collapse" or "which selection
// intensity lets WSLS emerge".
//
// Parameter flags take comma-separated value lists; the sweep is their
// cartesian product. Example:
//
//	egdsweep -ssets 32 -gens 50000 -mixed -fermi \
//	         -beta 1,3,10 -mu 0.01,0.05 -error 0.005,0.01,0.02 -seeds 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/sim"
	"repro/internal/sweep"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "egdsweep:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		memory  = flag.Int("memory", 1, "strategy memory depth")
		ssets   = flag.Int("ssets", 32, "number of Strategy Sets")
		gens    = flag.Int("gens", 10000, "generations per cell")
		rounds  = flag.Int("rounds", 200, "IPD rounds per match")
		mixed   = flag.Bool("mixed", false, "evolve mixed strategies")
		fermi   = flag.Bool("fermi", false, "unconditional Fermi adoption")
		pcrate  = flag.Float64("pcrate", sim.DefaultPCRate, "pairwise comparison rate")
		betas   = flag.String("beta", "1", "comma-separated selection intensities")
		mus     = flag.String("mu", "0.05", "comma-separated mutation rates")
		errs    = flag.String("error", "0", "comma-separated execution error rates")
		seeds   = flag.Int("seeds", 1, "number of seeds per parameter combination")
		workers = flag.Int("workers", 0, "concurrent cells (0 = NumCPU)")
	)
	flag.Parse()

	base := sim.DefaultConfig(*memory, *ssets)
	base.Generations = *gens
	base.Rules.Rounds = *rounds
	base.PCRate = *pcrate
	if *mixed {
		base.Kind = sim.MixedStrategies
	}
	base.AllowWorseAdoption = *fermi

	seedVals := make([]string, *seeds)
	for i := range seedVals {
		seedVals[i] = strconv.Itoa(i + 1)
	}
	grid, err := sweep.Cross(base,
		[]string{"beta", "mu", "error", "seed"},
		[][]string{split(*betas), split(*mus), split(*errs), seedVals},
		applyParam)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "egdsweep: %d cells x %d generations\n", grid.Size(), *gens)
	outcomes := grid.Run(*workers)
	fmt.Print(sweep.CSV(outcomes))
	return nil
}

func split(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func applyParam(cfg *sim.Config, name, value string) error {
	switch name {
	case "beta":
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return err
		}
		cfg.Beta = v
	case "mu":
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return err
		}
		cfg.Mu = v
	case "error":
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return err
		}
		cfg.Rules.ErrorRate = v
	case "seed":
		v, err := strconv.ParseUint(value, 10, 64)
		if err != nil {
			return err
		}
		cfg.Seed = v
	default:
		return fmt.Errorf("unknown parameter %q", name)
	}
	return nil
}
