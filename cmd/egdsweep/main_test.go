package main

import (
	"testing"

	"repro/internal/sim"
)

func TestSplit(t *testing.T) {
	cases := map[string][]string{
		"1,2,3":    {"1", "2", "3"},
		" 1 , 2 ":  {"1", "2"},
		"1":        {"1"},
		"1,,2":     {"1", "2"},
		",":        {},
		"0.1,0.05": {"0.1", "0.05"},
	}
	for in, want := range cases {
		got := split(in)
		if len(got) != len(want) {
			t.Errorf("split(%q) = %v, want %v", in, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("split(%q)[%d] = %q, want %q", in, i, got[i], want[i])
			}
		}
	}
}

func TestApplyParam(t *testing.T) {
	cfg := sim.DefaultConfig(1, 8)
	if err := applyParam(&cfg, "beta", "2.5"); err != nil || cfg.Beta != 2.5 {
		t.Fatalf("beta: %v %v", cfg.Beta, err)
	}
	if err := applyParam(&cfg, "mu", "0.2"); err != nil || cfg.Mu != 0.2 {
		t.Fatalf("mu: %v %v", cfg.Mu, err)
	}
	if err := applyParam(&cfg, "error", "0.05"); err != nil || cfg.Rules.ErrorRate != 0.05 {
		t.Fatalf("error: %v %v", cfg.Rules.ErrorRate, err)
	}
	if err := applyParam(&cfg, "seed", "99"); err != nil || cfg.Seed != 99 {
		t.Fatalf("seed: %v %v", cfg.Seed, err)
	}
	if err := applyParam(&cfg, "bogus", "1"); err == nil {
		t.Fatal("unknown param accepted")
	}
	for _, bad := range [][2]string{{"beta", "x"}, {"mu", "x"}, {"error", "x"}, {"seed", "-1"}} {
		if err := applyParam(&cfg, bad[0], bad[1]); err == nil {
			t.Fatalf("bad %s value accepted", bad[0])
		}
	}
}
