// Command egdscale regenerates the paper's scaling artefacts: the analytic
// tables (I, III, IV, VIII), the modelled Blue Gene projections (Tables
// VI-VII, Figures 3-7), and real strong/weak scaling measurements of the
// parallel engine on this host's cores.
//
// Examples:
//
//	egdscale -all                 # every table and figure, paper calibration
//	egdscale -table 6             # Table VI only
//	egdscale -fig 7 -fullsystem   # Fig. 7 including the 72-rack point
//	egdscale -host-calibrate      # calibrate the model from this host's engine
//	egdscale -measure             # real parallel-engine scaling on this host
//	egdscale -csv                 # emit CSV instead of aligned text
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/perfmodel"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "egdscale:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("egdscale", flag.ContinueOnError)
	var (
		all        = fs.Bool("all", false, "print every table and figure")
		table      = fs.Int("table", 0, "print one table (1,3,4,6,7,8)")
		fig        = fs.Int("fig", 0, "print one figure (3,4,5,6,7)")
		fullSystem = fs.Bool("fullsystem", false, "include the 72-rack 294,912-processor point in Fig. 7")
		hostCal    = fs.Bool("host-calibrate", false, "calibrate per-game costs from this host's engine instead of the paper anchor")
		measure    = fs.Bool("measure", false, "measure real parallel-engine scaling on this host")
		mappings   = fs.Bool("mappings", false, "run the rank-to-torus mapping study (paper future work)")
		knee       = fs.Bool("knee", false, "compute the SSets-per-processor efficiency knee (Fig. 5 rule of thumb)")
		csv        = fs.Bool("csv", false, "emit CSV instead of aligned text")
		fig4Procs  = fs.Int("fig4procs", 2048, "processor count for the Fig. 4 runtime column")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cal := core.DefaultCalibration()
	if *hostCal {
		rules := game.DefaultRules()
		hc, err := perfmodel.HostCalibration(rules, 20, true, 1)
		if err != nil {
			return err
		}
		cal = hc.Scaled(perfmodel.BlueGeneL())
		fmt.Fprintf(out, "# host calibration (search engine, scaled to BG/L clock): %v\n", cal.GameSeconds[1:])
	}

	emit := func(t *core.Table, err error) error {
		if err != nil {
			return err
		}
		if *csv {
			fmt.Fprintln(out, "# "+t.Title)
			fmt.Fprint(out, t.CSV())
		} else {
			fmt.Fprintln(out, t.Format())
		}
		return nil
	}

	printed := false
	want := func(kind string, n int) bool {
		if *all {
			return true
		}
		switch kind {
		case "table":
			return *table == n
		case "fig":
			return *fig == n
		}
		return false
	}

	if want("table", 1) {
		printed = true
		if err := emit(core.TableI(), nil); err != nil {
			return err
		}
	}
	if want("table", 3) {
		printed = true
		if err := emit(core.TableIII(), nil); err != nil {
			return err
		}
	}
	if want("table", 4) {
		printed = true
		if err := emit(core.TableIV(), nil); err != nil {
			return err
		}
	}
	if want("table", 6) {
		printed = true
		t, err := core.TableVI(cal)
		if err := emit(t, err); err != nil {
			return err
		}
	}
	if want("table", 7) {
		printed = true
		t, err := core.TableVII(cal)
		if err := emit(t, err); err != nil {
			return err
		}
	}
	if want("table", 8) {
		printed = true
		if err := emit(core.TableVIII(core.TableVIISSets(), []int{256, 512, 1024, 2048}), nil); err != nil {
			return err
		}
	}
	if want("fig", 3) {
		printed = true
		t, err := core.Fig3(cal)
		if err := emit(t, err); err != nil {
			return err
		}
	}
	if want("fig", 4) {
		printed = true
		t, err := core.Fig4(cal, *fig4Procs)
		if err := emit(t, err); err != nil {
			return err
		}
	}
	if want("fig", 5) {
		printed = true
		t, err := core.Fig5(cal)
		if err := emit(t, err); err != nil {
			return err
		}
	}
	if want("fig", 6) {
		printed = true
		t, err := core.Fig6(cal)
		if err := emit(t, err); err != nil {
			return err
		}
	}
	if want("fig", 7) {
		printed = true
		t, err := core.Fig7(cal, *fullSystem)
		if err := emit(t, err); err != nil {
			return err
		}
	}

	if *knee || *all {
		printed = true
		t := &core.Table{
			Title:   "Efficiency knee: minimum IPD matches/worker/generation for a >= target-efficiency doubling (Fig. 5 rule of thumb)",
			Columns: []string{"Machine", "Memory", "target 0.90", "target 0.95", "target 0.99"},
		}
		for _, mc := range []perfmodel.Machine{perfmodel.BlueGeneL(), perfmodel.BlueGeneP()} {
			for _, mem := range []int{1, 6} {
				row := []string{mc.Name, fmt.Sprintf("%d", mem)}
				for _, target := range []float64{0.90, 0.95, 0.99} {
					k, err := perfmodel.GamesKnee(mc, cal, mem, core.SmallStudyPCRate, target)
					if err != nil {
						return err
					}
					row = append(row, fmt.Sprintf("%.2f", k))
				}
				t.Rows = append(t.Rows, row)
			}
		}
		if err := emit(t, nil); err != nil {
			return err
		}
	}
	if *mappings || *all {
		printed = true
		t, err := core.MappingStudy()
		if err := emit(t, err); err != nil {
			return err
		}
	}
	if *measure || *all {
		printed = true
		if err := measureHost(out, *csv); err != nil {
			return err
		}
	}
	if !printed {
		fs.Usage()
		return fmt.Errorf("nothing selected; use -all, -table N, -fig N, or -measure")
	}
	return nil
}

// measureHost runs the real parallel engine across rank counts on this
// host and prints measured strong scaling — the non-projected counterpart
// of Figures 3/5/7.
func measureHost(out io.Writer, csv bool) error {
	cfg := sim.DefaultConfig(1, 96)
	cfg.Generations = 20
	cfg.PCRate = core.SmallStudyPCRate
	cfg.FullRecompute = true
	cfg.Rules.Rounds = 100
	cfg.Seed = 1
	rows, err := core.HostStrongScaling(cfg, core.DefaultHostRankCounts())
	if err != nil {
		return err
	}
	t := &core.Table{
		Title:   fmt.Sprintf("Measured strong scaling on this host (%d cores): memory-1, %d SSets, %d generations, full recompute", runtime.NumCPU(), cfg.NumSSets, cfg.Generations),
		Columns: []string{"Ranks", "Workers", "Seconds", "Speedup", "Efficiency"},
	}
	base := rows[0]
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Ranks),
			fmt.Sprintf("%d", r.Ranks-1),
			fmt.Sprintf("%.3f", r.Seconds),
			fmt.Sprintf("%.2f", base.Seconds/r.Seconds),
			fmt.Sprintf("%.3f", perfmodel.Efficiency(base.Ranks-1, base.Seconds, r.Ranks-1, r.Seconds)),
		})
	}
	if csv {
		fmt.Fprintln(out, "# "+t.Title)
		fmt.Fprint(out, t.CSV())
	} else {
		fmt.Fprintln(out, t.Format())
	}
	return nil
}
