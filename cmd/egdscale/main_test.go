package main

import (
	"strings"
	"testing"
)

// Smoke test of the analytic tables: they derive from the paper's
// closed-form counts, so they need no measurement and print instantly.
func TestRunTablesSmoke(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-table", "1"}, &out); err != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", err, out.String())
	}
	if got := out.String(); !strings.Contains(got, "Table") {
		t.Errorf("table output missing title:\n%s", got)
	}
}

// The modelled Blue Gene projection exercises the perfmodel path.
func TestRunProjectionSmoke(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-table", "6"}, &out); err != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"Table", "512"} {
		if !strings.Contains(got, want) {
			t.Errorf("projection output missing %q:\n%s", want, got)
		}
	}
}

func TestRunCSVSmoke(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-csv", "-table", "3"}, &out); err != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	if !strings.HasPrefix(got, "# ") {
		t.Errorf("CSV output missing commented title:\n%s", got)
	}
	if !strings.Contains(got, ",") {
		t.Errorf("CSV output has no comma-separated rows:\n%s", got)
	}
}

func TestRunNothingSelected(t *testing.T) {
	var out strings.Builder
	err := run(nil, &out)
	if err == nil || !strings.Contains(err.Error(), "nothing selected") {
		t.Fatalf("empty selection accepted: %v", err)
	}
}
