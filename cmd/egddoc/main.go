// Command egddoc is the repository's markdown link checker: it walks the
// tree for .md files and verifies that every relative link resolves to an
// existing file and that every fragment resolves to a GitHub-style heading
// anchor in its target document. External schemes (http, https, mailto) are
// skipped — CI must not depend on the network.
//
//	egddoc              check every .md under the current directory
//	egddoc -dir path    check a tree rooted elsewhere
//	egddoc README.md docs/KERNEL.md   check only the named files
//
// Exit status: 0 clean, 1 broken links, 2 operational error.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// linkPattern matches inline markdown links and images: [text](target).
// Nested brackets and reference-style links are out of scope — the repo's
// documentation uses inline links exclusively.
var linkPattern = regexp.MustCompile(`!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\))?[^()\s]*)\)`)

// problem is one broken link, reported egdlint-style as file:line: message.
type problem struct {
	file string
	line int
	msg  string
}

func (p problem) String() string {
	return fmt.Sprintf("%s:%d: %s", p.file, p.line, p.msg)
}

// doc is one parsed markdown file: its link occurrences and the set of
// GitHub-style anchors its headings generate.
type doc struct {
	links   []link
	anchors map[string]bool
}

type link struct {
	line   int
	target string
}

// parseDoc scans one markdown file, skipping fenced code blocks (``` or
// ~~~) so shell snippets containing [x](y) or # comments neither produce
// false links nor false anchors.
func parseDoc(path string) (*doc, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d := &doc{anchors: map[string]bool{}}
	seen := map[string]int{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	inFence := false
	fence := ""
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if inFence {
			if strings.HasPrefix(trimmed, fence) {
				inFence = false
			}
			continue
		}
		if strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "~~~") {
			inFence = true
			fence = trimmed[:3]
			continue
		}
		if strings.HasPrefix(trimmed, "#") {
			if a := headingAnchor(trimmed); a != "" {
				if n := seen[a]; n > 0 {
					d.anchors[fmt.Sprintf("%s-%d", a, n)] = true
				} else {
					d.anchors[a] = true
				}
				seen[a]++
			}
		}
		for _, m := range linkPattern.FindAllStringSubmatch(line, -1) {
			target := m[1]
			// Strip an optional link title: [t](file.md "title").
			if i := strings.IndexAny(target, " \t"); i >= 0 {
				target = target[:i]
			}
			target = strings.Trim(target, "<>")
			d.links = append(d.links, link{line: lineNo, target: target})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

// headingAnchor converts "## Some Heading!" to GitHub's anchor slug:
// lowercase, punctuation dropped, spaces and hyphens kept as hyphens.
func headingAnchor(line string) string {
	text := strings.TrimLeft(line, "#")
	if text == line || (text != "" && text[0] != ' ' && text[0] != '\t') {
		return "" // "#!/bin/sh"-style lines are not headings
	}
	text = strings.TrimSpace(text)
	// Inline code and link syntax contribute their text only.
	text = strings.NewReplacer("`", "", "[", "", "]", "").Replace(text)
	var b strings.Builder
	for _, r := range strings.ToLower(text) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		case r == ' ' || r == '\t':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// external reports whether the link target leaves the repository: URL
// schemes and protocol-relative references are not checked.
func external(target string) bool {
	for _, p := range []string{"http://", "https://", "mailto:", "ftp://", "//"} {
		if strings.HasPrefix(target, p) {
			return true
		}
	}
	return false
}

// collect walks root for .md files, skipping hidden directories and
// testdata fixtures (fixtures may deliberately contain broken links).
func collect(root string) ([]string, error) {
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "node_modules" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(name), ".md") {
			files = append(files, path)
		}
		return nil
	})
	sort.Strings(files)
	return files, err
}

// check verifies every link of every file. Cross-file fragment targets are
// parsed lazily and memoized, so linking into a file outside the checked
// set (e.g. a doc under internal/) still validates its anchors.
func check(root string, files []string) ([]problem, error) {
	parsed := map[string]*doc{}
	load := func(path string) (*doc, error) {
		if d, ok := parsed[path]; ok {
			return d, nil
		}
		d, err := parseDoc(path)
		if err != nil {
			return nil, err
		}
		parsed[path] = d
		return d, nil
	}
	var problems []problem
	for _, file := range files {
		d, err := load(file)
		if err != nil {
			return nil, err
		}
		rel := file
		if r, err := filepath.Rel(root, file); err == nil {
			rel = r
		}
		for _, l := range d.links {
			if external(l.target) || l.target == "" {
				continue
			}
			pathPart, frag, _ := strings.Cut(l.target, "#")
			targetFile := file
			if pathPart != "" {
				if strings.HasPrefix(pathPart, "/") {
					// Root-relative, GitHub-style: resolve against the repo root.
					targetFile = filepath.Join(root, filepath.FromSlash(pathPart))
				} else {
					targetFile = filepath.Join(filepath.Dir(file), filepath.FromSlash(pathPart))
				}
				info, err := os.Stat(targetFile)
				if err != nil {
					problems = append(problems, problem{rel, l.line, fmt.Sprintf("broken link %q: %s does not exist", l.target, pathPart)})
					continue
				}
				if frag != "" && info.IsDir() {
					problems = append(problems, problem{rel, l.line, fmt.Sprintf("broken link %q: fragment on a directory", l.target)})
					continue
				}
			}
			if frag == "" {
				continue
			}
			if !strings.EqualFold(filepath.Ext(targetFile), ".md") {
				continue // anchors into non-markdown files are viewer-defined
			}
			td, err := load(targetFile)
			if err != nil {
				return nil, err
			}
			if !td.anchors[strings.ToLower(frag)] {
				problems = append(problems, problem{rel, l.line, fmt.Sprintf("broken link %q: no heading anchor #%s in %s", l.target, frag, pathPart)})
			}
		}
	}
	return problems, nil
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("egddoc", flag.ContinueOnError)
	fs.SetOutput(errw)
	dir := fs.String("dir", ".", "repository root to resolve links against")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	files := fs.Args()
	if len(files) == 0 {
		var err error
		files, err = collect(*dir)
		if err != nil {
			fmt.Fprintln(errw, "egddoc:", err)
			return 2
		}
	} else {
		for i, f := range files {
			if !filepath.IsAbs(f) {
				files[i] = filepath.Join(*dir, f)
			}
		}
	}
	problems, err := check(*dir, files)
	if err != nil {
		fmt.Fprintln(errw, "egddoc:", err)
		return 2
	}
	for _, p := range problems {
		fmt.Fprintln(out, p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(out, "egddoc: %d broken link(s) in %d file(s) checked\n", len(problems), len(files))
		return 1
	}
	fmt.Fprintf(out, "egddoc: %d file(s) clean\n", len(files))
	return 0
}
