package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// A tree with valid relative links, heading anchors, external URLs and
// fenced code blocks lints clean.
func TestCleanTree(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "README.md", `# Top

See [the guide](docs/GUIDE.md) and [its setup](docs/GUIDE.md#setup-steps).
Self link: [below](#details). External: [site](https://example.com/x.md).

	[not a link in indented code? still fine](docs/GUIDE.md)

`+"```"+`
[broken inside fence](nope.md)
# not a heading
`+"```"+`

## Details
`)
	write(t, dir, "docs/GUIDE.md", `# Guide

## Setup Steps!

Back to [readme](../README.md#details).
`)
	var out, errw strings.Builder
	if code := run([]string{"-dir", dir}, &out, &errw); code != 0 {
		t.Fatalf("clean tree exited %d:\n%s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "clean") {
		t.Errorf("missing clean summary: %s", out.String())
	}
}

// Missing files and missing anchors are reported with file:line and the
// run exits 1.
func TestBrokenLinks(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "README.md", `# Top

[gone](docs/MISSING.md)
[bad anchor](#no-such-heading)
[bad cross anchor](OTHER.md#nope)
`)
	write(t, dir, "OTHER.md", "# Other\n")
	var out, errw strings.Builder
	code := run([]string{"-dir", dir}, &out, &errw)
	if code != 1 {
		t.Fatalf("broken tree exited %d:\n%s%s", code, out.String(), errw.String())
	}
	got := out.String()
	for _, want := range []string{
		"README.md:3", "MISSING.md does not exist",
		"README.md:4", "no heading anchor #no-such-heading",
		"README.md:5", "no heading anchor #nope",
		"3 broken link(s)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// Duplicate headings get GitHub's -1/-2 suffixes; inline code in headings
// contributes its text.
func TestAnchorSlugs(t *testing.T) {
	for heading, want := range map[string]string{
		"## Some Heading!":      "some-heading",
		"### `code` & symbols":  "code--symbols",
		"# A_b-c 9":             "a_b-c-9",
		"#notaheading":          "",
		"## [Linked](x.md) Hdr": "linkedxmd-hdr",
	} {
		if got := headingAnchor(heading); got != want {
			t.Errorf("headingAnchor(%q) = %q, want %q", heading, got, want)
		}
	}

	dir := t.TempDir()
	write(t, dir, "A.md", `# Dup

[first](#dup-1)
[second](#dup-2)

## Dup
## Dup
`)
	var out, errw strings.Builder
	if code := run([]string{"-dir", dir}, &out, &errw); code != 0 {
		t.Fatalf("duplicate-heading anchors broken:\n%s%s", out.String(), errw.String())
	}
}

// testdata directories are fixtures, not documentation: their broken
// links must not fail the repo check.
func TestSkipsTestdata(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "README.md", "# ok\n")
	write(t, dir, "testdata/FIXTURE.md", "[broken](missing.md)\n")
	write(t, dir, ".hidden/SECRET.md", "[broken](missing.md)\n")
	var out, errw strings.Builder
	if code := run([]string{"-dir", dir}, &out, &errw); code != 0 {
		t.Fatalf("testdata fixtures failed the check:\n%s%s", out.String(), errw.String())
	}
}

// Explicit file arguments check only those files but still resolve their
// targets relative to -dir.
func TestExplicitFiles(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "GOOD.md", "# g\n[ok](OTHER.md)\n")
	write(t, dir, "BAD.md", "[gone](nope.md)\n")
	write(t, dir, "OTHER.md", "# o\n")
	var out, errw strings.Builder
	if code := run([]string{"-dir", dir, "GOOD.md"}, &out, &errw); code != 0 {
		t.Fatalf("explicit clean file exited %d:\n%s%s", code, out.String(), errw.String())
	}
	out.Reset()
	if code := run([]string{"-dir", dir, "BAD.md"}, &out, &errw); code != 1 {
		t.Fatalf("explicit broken file exited %d:\n%s", code, out.String())
	}
}

// The real repository documentation must be link-clean — the same
// invariant the CI docs job enforces.
func TestRepoDocsLinkClean(t *testing.T) {
	var out, errw strings.Builder
	code := run([]string{"-dir", "../.."}, &out, &errw)
	if code == 2 {
		t.Fatalf("egddoc failed to run: %s", errw.String())
	}
	if code != 0 {
		t.Errorf("repository docs have broken links:\n%s", out.String())
	}
}
