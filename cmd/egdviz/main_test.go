package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// End-to-end smoke test of the fresh-run path: a small scaled Fig. 2
// validation must cluster, label the dominant strategy, and render the
// population map and PPM image.
func TestRunFreshSmoke(t *testing.T) {
	ppm := filepath.Join(t.TempDir(), "fig2.ppm")
	var out strings.Builder
	err := run([]string{
		"-run", "-ssets", "16", "-gens", "200", "-seed", "7", "-k", "4",
		"-rows", "8", "-ppm", ppm, "-cell", "2",
	}, &out)
	if err != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"fresh run: 16 SSets, 200 generations",
		"dominant cluster:",
		"cluster sizes:",
		"population map",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	img, err := os.ReadFile(ppm)
	if err != nil {
		t.Fatalf("PPM not written: %v", err)
	}
	if !strings.HasPrefix(string(img), "P6") {
		t.Errorf("PPM missing P6 magic, got %q", img[:min(8, len(img))])
	}
}

func TestRunNeedsInputSelection(t *testing.T) {
	var out strings.Builder
	err := run(nil, &out)
	if err == nil || !strings.Contains(err.Error(), "need -in FILE or -run") {
		t.Fatalf("no input selection accepted: %v", err)
	}
}

func TestRunMissingCheckpoint(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-in", filepath.Join(t.TempDir(), "missing.ckpt")}, &out)
	if err == nil {
		t.Fatal("missing checkpoint accepted")
	}
}
