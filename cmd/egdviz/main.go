// Command egdviz reproduces the paper's Fig. 2 population view: it loads a
// checkpoint written by egdsim (or runs a fresh WSLS validation), clusters
// the strategies with Lloyd k-means so prevalent strategies group together,
// and renders the population map — each row an SSet's strategy, each column
// a state, cooperation yellow ('.') and defection blue ('#') — as ASCII
// and/or a PPM image.
//
// Examples:
//
//	egdsim -ssets 100 -gens 20000 -mixed -error 0.01 -checkpoint pop.ckpt
//	egdviz -in pop.ckpt -ppm fig2.ppm
//	egdviz -run -ssets 64 -gens 5000        # fresh scaled Fig. 2 run
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/strategy"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "egdviz:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("egdviz", flag.ContinueOnError)
	var (
		in       = fs.String("in", "", "checkpoint file to visualise")
		doRun    = fs.Bool("run", false, "run a fresh scaled Fig. 2 validation instead of loading a checkpoint")
		ssets    = fs.Int("ssets", 64, "SSets for -run")
		gens     = fs.Int("gens", 5000, "generations for -run")
		seed     = fs.Uint64("seed", 1, "seed for -run and clustering")
		k        = fs.Int("k", 8, "k-means cluster count")
		ppmPath  = fs.String("ppm", "", "write the population map as a PPM image to this file")
		cellSize = fs.Int("cell", 4, "PPM pixels per strategy-table cell")
		maxRows  = fs.Int("rows", 64, "ASCII map row cap (0 = all)")
		noSort   = fs.Bool("nosort", false, "do not reorder rows by cluster (initial-population view)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var strategies []strategy.Strategy
	var memory int
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		snap, err := checkpoint.Read(f)
		if err != nil {
			return err
		}
		strategies = snap.Strategies
		memory = snap.Memory
		fmt.Fprintf(out, "loaded checkpoint: generation %d, %d SSets, memory-%d\n",
			snap.Generation, len(strategies), memory)
	case *doRun:
		cfg := core.WSLSValidationConfig(*ssets, *gens, *seed)
		res, err := core.RunWSLSValidation(cfg, *k)
		if err != nil {
			return err
		}
		strategies = res.Result.Final
		memory = cfg.Memory
		fmt.Fprintf(out, "fresh run: %d SSets, %d generations; WSLS fraction %.3f\n",
			*ssets, *gens, res.WSLSFraction)
	default:
		fs.Usage()
		return fmt.Errorf("need -in FILE or -run")
	}
	if len(strategies) == 0 {
		return fmt.Errorf("no strategies to visualise")
	}

	// Cluster and reorder rows so prevalent strategies band together, the
	// presentation Fig. 2(b) uses.
	kk := *k
	if kk > len(strategies) {
		kk = len(strategies)
	}
	km, err := cluster.KMeans(cluster.StrategyVectors(strategies), kk, 100, rng.New(*seed^0xF16))
	if err != nil {
		return err
	}
	order := make([]int, len(strategies))
	for i := range order {
		order[i] = i
	}
	if !*noSort {
		sort.SliceStable(order, func(a, b int) bool {
			ca, cb := km.Assign[order[a]], km.Assign[order[b]]
			if km.Sizes[ca] != km.Sizes[cb] {
				return km.Sizes[ca] > km.Sizes[cb]
			}
			return ca < cb
		})
	}
	sorted := make([]strategy.Strategy, len(strategies))
	for i, idx := range order {
		sorted[i] = strategies[idx]
	}

	idx, frac := km.DominantCluster()
	sp := strategy.NewSpace(memory)
	rounded, err := cluster.RoundCentroid(km.Centroids[idx], sp)
	if err != nil {
		return err
	}
	label := rounded.String()
	if rounded.Equal(strategy.WSLS(sp)) {
		label += " (WSLS)"
	}
	fmt.Fprintf(out, "dominant cluster: %.1f%% of SSets, centroid rounds to %s\n", 100*frac, label)
	fmt.Fprintf(out, "cluster sizes: %v (inertia %.3f, %d Lloyd iterations)\n", km.Sizes, km.Inertia, km.Iterations)

	fmt.Fprintln(out, "population map (rows = SSets by cluster, cols = states; '.'=C '#'=D):")
	fmt.Fprint(out, core.AsciiMap(sorted, *maxRows))

	if *ppmPath != "" {
		f, err := os.Create(*ppmPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := core.WritePPM(f, sorted, *cellSize); err != nil {
			return err
		}
		fmt.Fprintf(out, "image -> %s\n", *ppmPath)
	}
	return nil
}
