package main

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestRunServesAndShutsDown boots the daemon on an ephemeral port, drives one
// job through the HTTP API, and exercises the signal-driven shutdown path via
// the test hook.
func TestRunServesAndShutsDown(t *testing.T) {
	ready := make(chan string, 1)
	var shutdown func()
	testHookReady = func(addr string, stop func()) {
		shutdown = stop
		ready <- addr
	}
	defer func() { testHookReady = nil }()

	var out strings.Builder
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1"}, &out)
	}()

	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errCh:
		t.Fatalf("run exited before serving: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: got %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"memory":1,"ssets":8,"generations":30,"rounds":10,"seed":4}`))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit: got %d, id %q", resp.StatusCode, st.ID)
	}
	for i := 0; st.State != "done"; i++ {
		if i > 5000 {
			t.Fatalf("job %s never finished (state %s)", st.ID, st.State)
		}
		time.Sleep(2 * time.Millisecond)
		r, err := http.Get(base + "/api/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatalf("decoding status: %v", err)
		}
		r.Body.Close()
	}

	shutdown()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("run returned %v after shutdown", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never shut down")
	}
	if !strings.Contains(out.String(), "listening on") {
		t.Fatalf("startup banner missing from output %q", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-cal", "bogus"}, &out); err == nil {
		t.Fatal("run accepted an unknown calibration")
	}
	if err := run([]string{"-addr", "not-an-address"}, &out); err == nil {
		t.Fatal("run accepted an unparseable listen address")
	}
}
