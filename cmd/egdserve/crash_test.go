package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// Crash-recovery tests: a real egdserve process is started as a helper
// subprocess (the chaos-test idiom), killed with SIGKILL mid-job or drained
// with SIGTERM, and a daemon restarted over the same data directory must
// serve a /result identical — in every trajectory-determined field — to an
// uninterrupted run of the same spec.

const (
	helperEnv   = "EGDSERVE_CRASH_HELPER"
	dataDirEnv  = "EGDSERVE_DATA_DIR"
	addrFileEnv = "EGDSERVE_ADDR_FILE"
	// crashSpec must run long enough that the interruption lands mid-
	// trajectory: full_recompute pins per-generation cost, so ~30k
	// generations is seconds of work with a wide window past the first
	// few checkpoints.
	crashSpec       = `{"memory":1,"ssets":8,"generations":30000,"rounds":200,"seed":90125,"full_recompute":true}`
	crashCheckpoint = 500
)

// TestCrashDaemonHelper is the subprocess body, inert in a normal test run:
// it becomes a real egdserve daemon (durable mode, one worker) and writes
// its bound address where the parent can read it.
func TestCrashDaemonHelper(t *testing.T) {
	if os.Getenv(helperEnv) != "1" {
		t.Skip("helper process body; run via the crash tests")
	}
	addrFile := os.Getenv(addrFileEnv)
	testHookReady = func(addr string, shutdown func()) {
		os.WriteFile(addrFile, []byte(addr), 0o644) //nolint:errcheck // parent times out and fails the test
	}
	err := run([]string{
		"-addr", "127.0.0.1:0",
		"-workers", "1",
		"-data-dir", os.Getenv(dataDirEnv),
		"-checkpoint-every", fmt.Sprint(crashCheckpoint),
		"-drain-timeout", "60s",
	}, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper daemon:", err)
		os.Exit(1)
	}
}

// syncBuffer is a mutex-guarded output buffer: os/exec writes to it from
// its own goroutines while the tests poll String.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (sb *syncBuffer) Write(p []byte) (int, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Write(p)
}

func (sb *syncBuffer) String() string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.String()
}

// startHelperDaemon launches the subprocess daemon over dir and waits for
// its HTTP address.
func startHelperDaemon(t *testing.T, dir string) (*exec.Cmd, string, *syncBuffer) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(os.Args[0], "-test.run", "TestCrashDaemonHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		helperEnv+"=1",
		dataDirEnv+"="+dir,
		addrFileEnv+"="+addrFile,
	)
	var out syncBuffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting helper daemon: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			return cmd, "http://" + string(data), &out
		}
		time.Sleep(10 * time.Millisecond)
	}
	cmd.Process.Kill() //nolint:errcheck // already failing
	t.Fatalf("helper daemon never became ready; output:\n%s", out.String())
	return nil, "", nil
}

func getJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("decoding %s -> %q: %v", url, raw, err)
	}
	return m
}

func submitCrashSpec(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", strings.NewReader(crashSpec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	var st struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil || st.ID == "" {
		t.Fatalf("submit: status %d, decode err %v, id %q", resp.StatusCode, err, st.ID)
	}
	return st.ID
}

// waitMidRun polls until the job is running past a few durable checkpoints,
// so the interruption tests resume-from-checkpoint rather than
// restart-from-scratch.
func waitMidRun(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		m := getJSON(t, base+"/api/v1/jobs/"+id)
		state, _ := m["state"].(string)
		gen, _ := m["generation"].(float64)
		if state == "running" && gen >= 3*crashCheckpoint {
			return
		}
		if state == "done" || state == "failed" || state == "canceled" {
			t.Fatalf("job settled as %s before the interruption window", state)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never reached the interruption window")
}

// waitDone polls the restarted daemon until the job finishes, then returns
// its result with the wall-clock field removed.
func waitDone(t *testing.T, base, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		m := getJSON(t, base+"/api/v1/jobs/"+id)
		switch m["state"] {
		case "done":
			res := getJSON(t, base+"/api/v1/jobs/"+id+"/result")
			delete(res, "elapsed_seconds")
			return res
		case "failed", "canceled":
			t.Fatalf("job settled as %v (error %v)", m["state"], m["error"])
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never finished after restart")
	return nil
}

// crashBaseline computes the uninterrupted-run reference result once and
// shares it between the crash tests (it is deterministic by construction).
var crashBaseline struct {
	once sync.Once
	res  map[string]any
}

func baselineResult(t *testing.T) map[string]any {
	crashBaseline.once.Do(func() {
		dir := os.TempDir()
		tmp, err := os.MkdirTemp(dir, "egdserve-baseline")
		if err != nil {
			t.Fatalf("baseline tempdir: %v", err)
		}
		defer os.RemoveAll(tmp)
		cmd, base, out := startHelperDaemon(t, tmp)
		id := submitCrashSpec(t, base)
		res := waitDone(t, base, id)
		cmd.Process.Signal(syscall.SIGTERM) //nolint:errcheck // Wait below surfaces failures
		if err := cmd.Wait(); err != nil {
			t.Fatalf("baseline daemon exit: %v; output:\n%s", err, out.String())
		}
		crashBaseline.res = res
	})
	if crashBaseline.res == nil {
		t.Fatal("baseline computation failed in an earlier test")
	}
	return crashBaseline.res
}

// TestKill9RecoveryBitIdentical SIGKILLs the daemon mid-job. The journal
// says "running" with no clean marker; the restarted daemon must re-queue
// the job, resume it from its last durable checkpoint, and produce the
// uninterrupted run's result.
func TestKill9RecoveryBitIdentical(t *testing.T) {
	want := baselineResult(t)

	dir := t.TempDir()
	cmd, base, _ := startHelperDaemon(t, dir)
	id := submitCrashSpec(t, base)
	waitMidRun(t, base, id)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	cmd.Wait() //nolint:errcheck // killed: non-zero exit is the point

	cmd2, base2, out2 := startHelperDaemon(t, dir)
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM) //nolint:errcheck // best-effort cleanup
		cmd2.Wait()                          //nolint:errcheck // best-effort cleanup
	}()
	got := waitDone(t, base2, id)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-kill result differs from uninterrupted run\n got: %v\nwant: %v", got, want)
	}
	if !strings.Contains(out2.String(), "clean shutdown false") {
		t.Errorf("recovery log did not flag the unclean shutdown; output:\n%s", out2.String())
	}
}

// TestSIGTERMDrainResumesBitIdentical sends the daemon SIGTERM mid-job: it
// must drain (checkpoint the running job, park it queued, mark the journal
// clean) and exit zero; the restarted daemon finishes the job with the
// uninterrupted run's result.
func TestSIGTERMDrainResumesBitIdentical(t *testing.T) {
	want := baselineResult(t)

	dir := t.TempDir()
	cmd, base, out := startHelperDaemon(t, dir)
	id := submitCrashSpec(t, base)
	waitMidRun(t, base, id)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("drained daemon exited non-zero: %v; output:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "drain complete, journal clean") {
		t.Errorf("drain completion message missing; output:\n%s", out.String())
	}

	cmd2, base2, out2 := startHelperDaemon(t, dir)
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM) //nolint:errcheck // best-effort cleanup
		cmd2.Wait()                          //nolint:errcheck // best-effort cleanup
	}()
	if !strings.Contains(waitForRecoveryLine(out2), "clean shutdown true") {
		t.Errorf("restarted daemon did not report a clean journal; output:\n%s", out2.String())
	}
	got := waitDone(t, base2, id)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-drain result differs from uninterrupted run\n got: %v\nwant: %v", got, want)
	}
}

// waitForRecoveryLine waits for the helper's recovery summary to appear in
// its captured output (the daemon logs it before serving, but the pipe is
// asynchronous).
func waitForRecoveryLine(out *syncBuffer) string {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s := out.String(); strings.Contains(s, "recovered") {
			return s
		}
		time.Sleep(10 * time.Millisecond)
	}
	return out.String()
}
