// Command egdserve runs the multi-tenant simulation service: an HTTP/JSON
// daemon that queues submitted jobs, runs them on the sequential or
// parallel engine with a bounded worker pool, streams progress as
// Server-Sent Events, supports checkpoint-backed pause/resume/cancel, and
// serves the egd_* metrics catalog at /metrics. A perfmodel-driven
// admission controller prices every submission against the configured
// budgets, and per-tenant quotas plus token-bucket rate limits keep the
// service fair under heavy traffic (see docs/SERVICE.md).
//
// With -data-dir the job table is durable: every transition is journaled
// to an fsync'd write-ahead log and running jobs checkpoint to disk, so a
// crashed or drained daemon restarted over the same directory resumes
// interrupted jobs and finishes them bit-identically.
//
// Examples:
//
//	egdserve -addr :8080 -workers 4
//	egdserve -addr :8080 -data-dir /var/lib/egdserve -drain-timeout 60s
//	egdserve -addr 127.0.0.1:0 -workers 8 -max-job-seconds 3600 \
//	    -tenant-max-active 16 -tenant-rate 5 -tenant-burst 10 -cal host
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/game"
	"repro/internal/perfmodel"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "egdserve:", err)
		os.Exit(1)
	}
}

// testHookReady, when set by a test, receives the bound address and a
// shutdown trigger once the listener is serving.
var testHookReady func(addr string, shutdown func())

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("egdserve", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	workers := fs.Int("workers", 2, "concurrent simulation workers")
	queue := fs.Int("queue", 64, "pending-job queue depth")
	maxJobSeconds := fs.Float64("max-job-seconds", 0, "per-job modelled cost ceiling in seconds (0 = unlimited)")
	maxOutstanding := fs.Float64("max-outstanding-seconds", 0, "modelled cost budget across all non-terminal jobs (0 = unlimited)")
	tenantMaxActive := fs.Int("tenant-max-active", 0, "per-tenant active-job cap (0 = unlimited)")
	tenantRate := fs.Float64("tenant-rate", 0, "per-tenant submissions per second (0 = unlimited)")
	tenantBurst := fs.Int("tenant-burst", 0, "per-tenant submission burst (with -tenant-rate)")
	cal := fs.String("cal", "paper", "admission cost calibration: paper (deterministic) or host (measured)")
	dataDir := fs.String("data-dir", "", "durable job store directory: journal every job transition and recover interrupted jobs on restart (empty = in-memory only)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "with -data-dir, how long shutdown waits for running jobs to reach a generation boundary and checkpoint")
	checkpointEvery := fs.Int("checkpoint-every", 0, "with -data-dir, snapshot cadence in generations for jobs whose spec sets none (0 = 250)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cost := server.DefaultCostModel()
	switch *cal {
	case "paper":
	case "host":
		c, err := perfmodel.HostCalibration(game.DefaultRules(), 3, false, 1)
		if err != nil {
			return fmt.Errorf("host calibration: %w", err)
		}
		cost = server.CostModel{Cal: c, CalRounds: game.DefaultRounds}
	default:
		return fmt.Errorf("unknown calibration %q (want paper or host)", *cal)
	}

	srv, err := server.New(server.Options{
		Workers:               *workers,
		QueueDepth:            *queue,
		MaxJobSeconds:         *maxJobSeconds,
		MaxOutstandingSeconds: *maxOutstanding,
		Tenant: server.TenantLimits{
			MaxActive:  *tenantMaxActive,
			RatePerSec: *tenantRate,
			Burst:      *tenantBurst,
		},
		Cost:            cost,
		DataDir:         *dataDir,
		CheckpointEvery: *checkpointEvery,
		Log: func(format string, args ...any) {
			fmt.Fprintf(out, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if testHookReady != nil {
		testHookReady(ln.Addr().String(), stop)
	}
	fmt.Fprintf(out, "egdserve: listening on http://%s\n", ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	if *dataDir != "" {
		// Durable shutdown is a drain: running jobs stop at the next
		// generation boundary with a checkpoint on disk and are journaled
		// queued, the journal gets its clean marker, and the next boot
		// resumes every interrupted trajectory bit-identically.
		fmt.Fprintln(out, "egdserve: draining (running jobs checkpoint and park)")
		if err := srv.Drain(*drainTimeout); err != nil {
			fmt.Fprintln(out, "egdserve:", err)
		} else {
			fmt.Fprintln(out, "egdserve: drain complete, journal clean")
		}
	} else {
		fmt.Fprintln(out, "egdserve: shutting down")
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	return nil
}
