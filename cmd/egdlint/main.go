// Command egdlint is the multichecker for the egdlint analyzer suite:
// it enforces the MPI-usage and determinism invariants the reproduction
// depends on (see internal/lint/README.md).
//
//	egdlint ./...            lint every package of the module in cwd
//	egdlint -list            print the analyzers and their docs
//	egdlint -dir path ./...  lint a module rooted elsewhere
//
// Exit status: 0 clean, 1 findings, 2 operational error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("egdlint", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		list = fs.Bool("list", false, "print the analyzers and exit")
		dir  = fs.String("dir", ".", "directory to resolve package patterns in")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.RunAnalyzers(*dir, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(errw, "egdlint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(out, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(out, "egdlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
