// Command egdlint is the multichecker for the egdlint analyzer suite:
// it enforces the MPI-usage and determinism invariants the reproduction
// depends on (see internal/lint/README.md).
//
//	egdlint ./...            lint every package of the module in cwd
//	egdlint -list            print the analyzers and their docs
//	egdlint -dir path ./...  lint a module rooted elsewhere
//	egdlint -json ./...      machine-readable findings (one JSON array)
//	egdlint -run a,b ./...   run only the named analyzers (e.g. the docs
//	                         CI job runs -run pkgdoc)
//	egdlint -tests ./...     also lint _test.go files with the
//	                         SPMD-safety subset (hang-class analyzers)
//
// Exit status: 0 clean, 1 findings, 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the -json wire shape: stable field names for CI
// tooling (the problem matcher consumes the plain format; artifacts and
// scripts consume this one).
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// filterAnalyzers resolves a comma-separated -run list against the
// suite, preserving the suite's reporting order. An unknown name is an
// operational error (exit 2), not a silent no-op, so a typo in a CI job
// ("pkgdocs") fails the job instead of green-lighting unlinted code.
func filterAnalyzers(suite []*lint.Analyzer, names string) ([]*lint.Analyzer, error) {
	want := make(map[string]bool)
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		want[n] = true
	}
	var picked []*lint.Analyzer
	for _, a := range suite {
		if want[a.Name] {
			picked = append(picked, a)
			delete(want, a.Name)
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for _, n := range strings.Split(names, ",") {
			n = strings.TrimSpace(n)
			if want[n] {
				unknown = append(unknown, n)
				delete(want, n)
			}
		}
		return nil, fmt.Errorf("unknown analyzer(s) %s (see -list)", strings.Join(unknown, ", "))
	}
	if len(picked) == 0 {
		return nil, fmt.Errorf("-run selected no analyzers")
	}
	return picked, nil
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("egdlint", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		list     = fs.Bool("list", false, "print the analyzers and exit")
		dir      = fs.String("dir", ".", "directory to resolve package patterns in")
		asJSON   = fs.Bool("json", false, "emit findings as a JSON array instead of text")
		andTests = fs.Bool("tests", false, "also lint test files with the SPMD-safety analyzers")
		only     = fs.String("run", "", "comma-separated analyzer names to run (default: all; see -list)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.All()
	if *only != "" {
		picked, err := filterAnalyzers(analyzers, *only)
		if err != nil {
			fmt.Fprintln(errw, "egdlint:", err)
			return 2
		}
		analyzers = picked
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.RunAnalyzers(*dir, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(errw, "egdlint:", err)
		return 2
	}
	if *andTests {
		// Test files get only the hang-class analyzers: tests legitimately
		// use bare tag literals, discarded errors, and wall-clock time, but
		// an unmatched Send/Recv deadlocks a test run just like a rank.
		// Under -run, the test pass honours the same selection.
		testSuite := lint.SPMDSafety()
		if *only != "" {
			enabled := make(map[string]bool)
			for _, a := range analyzers {
				enabled[a.Name] = true
			}
			var kept []*lint.Analyzer
			for _, a := range testSuite {
				if enabled[a.Name] {
					kept = append(kept, a)
				}
			}
			testSuite = kept
		}
		if len(testSuite) > 0 {
			testFindings, err := lint.RunAnalyzersTests(*dir, patterns, testSuite)
			if err != nil {
				fmt.Fprintln(errw, "egdlint:", err)
				return 2
			}
			findings = append(findings, testFindings...)
		}
	}
	if *asJSON {
		enc := make([]jsonFinding, len(findings))
		for i, f := range findings {
			enc[i] = jsonFinding{
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Column:   f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			}
		}
		je := json.NewEncoder(out)
		je.SetIndent("", "  ")
		if err := je.Encode(enc); err != nil {
			fmt.Fprintln(errw, "egdlint:", err)
			return 2
		}
		if len(findings) > 0 {
			return 1
		}
		return 0
	}
	for _, f := range findings {
		fmt.Fprintln(out, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(out, "egdlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
