package main

import (
	"encoding/json"
	"os/exec"
	"strings"
	"testing"
)

func needGo(t *testing.T) {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}
}

func TestList(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("egdlint -list exited %d: %s", code, errw.String())
	}
	got := out.String()
	for _, name := range []string{"mpierrcheck", "mpirequest", "mpicollective", "mpitag", "mpisession", "determinism"} {
		if !strings.Contains(got, name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, got)
		}
	}
}

// The whole repository must lint clean: this is the same invariant
// `make lint` enforces in CI, kept under `go test` so a finding fails
// the ordinary test run too.
func TestRepoLintsClean(t *testing.T) {
	needGo(t)
	var out, errw strings.Builder
	code := run([]string{"-dir", "../..", "./..."}, &out, &errw)
	if code == 2 {
		t.Fatalf("egdlint failed to run: %s", errw.String())
	}
	if code != 0 {
		t.Errorf("egdlint found violations in the repo:\n%s", out.String())
	}
}

// Test files must lint clean too under the SPMD-safety subset: -tests
// is how CI keeps hang-class bugs out of the test suite itself.
func TestRepoTestFilesLintClean(t *testing.T) {
	needGo(t)
	var out, errw strings.Builder
	code := run([]string{"-dir", "../..", "-tests", "./..."}, &out, &errw)
	if code == 2 {
		t.Fatalf("egdlint -tests failed to run: %s", errw.String())
	}
	if code != 0 {
		t.Errorf("egdlint -tests found violations in the repo:\n%s", out.String())
	}
}

// -json emits one well-formed array with the stable field names CI
// tooling consumes, and keeps the findings-mean-exit-1 contract.
func TestJSONOutput(t *testing.T) {
	needGo(t)
	var out, errw strings.Builder
	code := run([]string{"-dir", "../../internal/lint/testdata/src", "-json", "./errcheck"}, &out, &errw)
	if code != 1 {
		t.Fatalf("expected exit 1 on dirty fixtures, got %d (stderr: %s)", code, errw.String())
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out.String()), &findings); err != nil {
		t.Fatalf("-json output is not a findings array: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("-json produced an empty array for dirty fixtures")
	}
	for _, f := range findings {
		if f.File == "" || f.Line <= 0 || f.Column <= 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("incomplete JSON finding: %+v", f)
		}
	}

	// A clean run still emits valid JSON: an empty array, exit 0.
	out.Reset()
	errw.Reset()
	code = run([]string{"-dir", "../..", "-json", "./internal/bitset"}, &out, &errw)
	if code != 0 {
		t.Fatalf("clean package exited %d: %s%s", code, out.String(), errw.String())
	}
	var empty []json.RawMessage
	if err := json.Unmarshal([]byte(out.String()), &empty); err != nil || len(empty) != 0 {
		t.Errorf("clean -json run should emit an empty array, got %q (err %v)", out.String(), err)
	}
}

// The fixture tree deliberately violates every analyzer; linting it
// must produce findings and exit 1, proving the binary's non-zero path.
func TestFixturesAreDirty(t *testing.T) {
	needGo(t)
	var out, errw strings.Builder
	code := run([]string{"-dir", "../../internal/lint/testdata/src", "./errcheck", "./tag"}, &out, &errw)
	if code != 1 {
		t.Fatalf("expected exit 1 on fixture packages, got %d (stderr: %s)", code, errw.String())
	}
	for _, want := range []string{"mpierrcheck", "mpitag", "finding(s)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("fixture lint output missing %q:\n%s", want, out.String())
		}
	}
}

// -run narrows the suite to the named analyzers: a fixture tree dirty
// for mpitag lints clean under -run mpierrcheck, and an unknown name is
// an operational error, not a silent no-op.
func TestRunFilter(t *testing.T) {
	needGo(t)
	var out, errw strings.Builder
	code := run([]string{"-dir", "../../internal/lint/testdata/src", "-run", "mpitag", "./tag"}, &out, &errw)
	if code != 1 {
		t.Fatalf("-run mpitag on dirty tag fixtures exited %d (stderr: %s)", code, errw.String())
	}
	if !strings.Contains(out.String(), "mpitag") {
		t.Errorf("filtered run missing mpitag findings:\n%s", out.String())
	}
	if strings.Contains(out.String(), "mpierrcheck") {
		t.Errorf("-run mpitag leaked other analyzers:\n%s", out.String())
	}

	out.Reset()
	errw.Reset()
	code = run([]string{"-dir", "../../internal/lint/testdata/src", "-run", "mpierrcheck", "./tag"}, &out, &errw)
	if code != 0 {
		t.Fatalf("-run mpierrcheck over tag fixtures exited %d:\n%s%s", code, out.String(), errw.String())
	}

	// The docs-CI invocation: pkgdoc alone over the real repo.
	out.Reset()
	errw.Reset()
	code = run([]string{"-dir", "../..", "-run", "pkgdoc", "./..."}, &out, &errw)
	if code != 0 {
		t.Errorf("-run pkgdoc over the repo exited %d:\n%s%s", code, out.String(), errw.String())
	}
}

func TestRunFilterUnknownName(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"-run", "pkgdocs", "./..."}, &out, &errw); code != 2 {
		t.Fatalf("unknown analyzer name exited %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "pkgdocs") {
		t.Errorf("error does not name the unknown analyzer: %s", errw.String())
	}
	out.Reset()
	errw.Reset()
	if code := run([]string{"-run", " , ", "./..."}, &out, &errw); code != 2 {
		t.Fatal("empty -run selection accepted")
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"-no-such-flag"}, &out, &errw); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}
