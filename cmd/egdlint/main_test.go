package main

import (
	"os/exec"
	"strings"
	"testing"
)

func needGo(t *testing.T) {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}
}

func TestList(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("egdlint -list exited %d: %s", code, errw.String())
	}
	got := out.String()
	for _, name := range []string{"mpierrcheck", "mpirequest", "mpicollective", "mpitag", "determinism"} {
		if !strings.Contains(got, name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, got)
		}
	}
}

// The whole repository must lint clean: this is the same invariant
// `make lint` enforces in CI, kept under `go test` so a finding fails
// the ordinary test run too.
func TestRepoLintsClean(t *testing.T) {
	needGo(t)
	var out, errw strings.Builder
	code := run([]string{"-dir", "../..", "./..."}, &out, &errw)
	if code == 2 {
		t.Fatalf("egdlint failed to run: %s", errw.String())
	}
	if code != 0 {
		t.Errorf("egdlint found violations in the repo:\n%s", out.String())
	}
}

// The fixture tree deliberately violates every analyzer; linting it
// must produce findings and exit 1, proving the binary's non-zero path.
func TestFixturesAreDirty(t *testing.T) {
	needGo(t)
	var out, errw strings.Builder
	code := run([]string{"-dir", "../../internal/lint/testdata/src", "./errcheck", "./tag"}, &out, &errw)
	if code != 1 {
		t.Fatalf("expected exit 1 on fixture packages, got %d (stderr: %s)", code, errw.String())
	}
	for _, want := range []string{"mpierrcheck", "mpitag", "finding(s)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("fixture lint output missing %q:\n%s", want, out.String())
		}
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"-no-such-flag"}, &out, &errw); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}
