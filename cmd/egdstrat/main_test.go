package main

import (
	"testing"

	"repro/internal/strategy"
)

func TestParseStrategyClassics(t *testing.T) {
	for _, name := range []string{"WSLS", "wsls", "tft", "ALLD"} {
		s, label, err := parseStrategy(name, 1)
		if err != nil {
			t.Fatalf("parseStrategy(%q): %v", name, err)
		}
		if s.Space().Memory() != 1 {
			t.Fatalf("%q: memory %d", name, s.Space().Memory())
		}
		if label == "custom" {
			t.Fatalf("%q parsed as custom", name)
		}
	}
}

func TestParseStrategyResponseString(t *testing.T) {
	s, label, err := parseStrategy("0110", 3) // length decides memory, not the flag
	if err != nil {
		t.Fatal(err)
	}
	if label != "custom" || s.Space().Memory() != 1 {
		t.Fatalf("label %q memory %d", label, s.Space().Memory())
	}
	p, ok := s.(*strategy.Pure)
	if !ok || !p.Equal(strategy.WSLS(strategy.NewSpace(1))) {
		t.Fatal("0110 should parse to memory-one WSLS")
	}
	// A memory-two string.
	s2, _, err := parseStrategy("0110011001100110", 1)
	if err != nil || s2.Space().Memory() != 2 {
		t.Fatalf("memory-2 parse: %v", err)
	}
}

func TestParseStrategyRejectsJunk(t *testing.T) {
	for _, bad := range []string{"", "01", "xyz", "0120", "BOGUSNAME"} {
		if _, _, err := parseStrategy(bad, 1); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
	// TF2T needs memory >= 2.
	if _, _, err := parseStrategy("TF2T", 1); err == nil {
		t.Fatal("TF2T at memory 1 accepted")
	}
	if _, _, err := parseStrategy("TF2T", 2); err != nil {
		t.Fatal("TF2T at memory 2 rejected")
	}
}
