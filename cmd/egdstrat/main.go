// Command egdstrat inspects a strategy: its response table, Axelrod-style
// behavioural traits (nice / retaliatory / forgiving), and its exact
// long-run payoffs against the classic field at a chosen error rate.
//
// The strategy may be a classic name or a 0/1 response string whose length
// determines the memory depth (4^n states), e.g. the memory-one WSLS is
// "0110" in this repository's binary state order CC,CD,DC,DD.
//
// Examples:
//
//	egdstrat WSLS
//	egdstrat -memory 2 GRIM
//	egdstrat -error 0.05 0110
//	egdstrat 0101100101101001   # an arbitrary memory-two strategy
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/game"
	"repro/internal/strategy"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "egdstrat:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		memory  = flag.Int("memory", 1, "memory depth for named classics")
		errRate = flag.Float64("error", 0.01, "execution error rate for the payoff table")
		popN    = flag.Int("n", 32, "population size for the fixation analysis")
		beta    = flag.Float64("beta", 1, "Fermi selection intensity for the fixation analysis")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return fmt.Errorf("need exactly one strategy (a classic name or a 0/1 response string)")
	}
	arg := flag.Arg(0)

	subject, name, err := parseStrategy(arg, *memory)
	if err != nil {
		return err
	}
	sp := subject.Space()
	fmt.Printf("strategy: %s (memory-%d, %d states)\n", name, sp.Memory(), sp.NumStates())

	if p, ok := subject.(*strategy.Pure); ok {
		fmt.Printf("response: %s\n", p)
		tr := strategy.AnalyzeTraits(p)
		fmt.Printf("traits:   %s\n", tr)
		fmt.Printf("opens:    %s; defects in %.0f%% of states\n", tr.FirstMove, 100*tr.DefectionRate)
	} else {
		fmt.Printf("response: %s (mixed)\n", subject)
	}

	if sp.Memory() == 1 {
		fmt.Println("\nresponse table:")
		for s := uint32(0); s < uint32(sp.NumStates()); s++ {
			fmt.Printf("  after %s: cooperate with probability %.2f\n",
				sp.DescribeState(s), subject.CooperateProb(s))
		}
	}

	// Exact payoffs against the classic field.
	fmt.Printf("\nexact long-run payoffs at %.1f%% errors (mine / theirs):\n", 100**errRate)
	payoff := game.StandardPayoff()
	opponents := []string{"ALLC", "ALLD", "TFT", "WSLS", "GRIM", "GTFT"}
	for _, on := range opponents {
		opp, err := strategy.Named(on, sp)
		if err != nil {
			continue
		}
		mine, theirs, err := analysis.MarkovPayoffN(payoff, subject, opp, *errRate)
		if err != nil {
			return err
		}
		verdict := "even"
		switch {
		case mine > theirs+1e-9:
			verdict = "wins"
		case mine < theirs-1e-9:
			verdict = "loses"
		}
		fmt.Printf("  vs %-5s %6.3f / %-6.3f  (%s)\n", on, mine, theirs, verdict)
	}
	selfPi, _, err := analysis.MarkovPayoffN(payoff, subject, subject, *errRate)
	if err != nil {
		return err
	}
	fmt.Printf("  self-play: %.3f  (3.000 = sustained cooperation)\n", selfPi)

	// Invasion analysis: would a lone copy of this strategy take over a
	// resident population, under the Fermi pairwise-comparison process?
	fmt.Printf("\nfixation probability of one mutant in %d residents (Fermi, beta %.1f; neutral = %.4f):\n",
		*popN-1, *beta, analysis.NeutralFixation(*popN))
	fcfg := analysis.FixationConfig{N: *popN, Beta: *beta, ErrorRate: *errRate}
	for _, on := range opponents {
		resident, err := strategy.Named(on, sp)
		if err != nil {
			continue
		}
		inv, err := analysis.AnalyzeInvasion(fcfg, subject, resident)
		if err != nil {
			return err
		}
		tag := ""
		if inv.Favoured {
			tag = "  <- favoured by selection"
		}
		fmt.Printf("  into %-5s %.4f%s\n", on, inv.Fixation, tag)
	}
	return nil
}

func parseStrategy(arg string, memory int) (strategy.Strategy, string, error) {
	upper := strings.ToUpper(arg)
	for _, n := range strategy.ClassicNames() {
		if upper == n {
			sp := strategy.NewSpace(memory)
			s, err := strategy.Named(n, sp)
			if err != nil {
				return nil, "", err
			}
			return s, n, nil
		}
	}
	p, err := strategy.ParsePure(arg)
	if err != nil {
		return nil, "", fmt.Errorf("%q is neither a classic name (%s) nor a valid response string: %v",
			arg, strings.Join(strategy.ClassicNames(), ", "), err)
	}
	return p, "custom", nil
}
