// Command egdrun launches a multi-process simulation: one worker process
// per rank, wired into a full mesh over unix sockets (default) or TCP by
// the mpi wire transport. Rank 0 hosts the Nature Agent and prints the
// deterministic run summary; egdrun itself supervises the fleet,
// attributes every worker's exit status, and — via the chaos flags — doses
// workers with real SIGKILL/SIGSTOP mid-run to exercise live eviction the
// way an unplugged node would.
//
// Examples:
//
//	egdrun -np 4 -ssets 32 -gens 2000
//	egdrun -np 4 -tcp 127.0.0.1:7700 -ssets 32 -gens 2000
//	egdrun -np 4 -evict -full -ssets 16 -gens 600 -chaos-kill 2@500ms
//	egdrun -np 4 -evict -full -chaos-stop 3@1s:2s   # SIGSTOP, 2s later SIGCONT
//
// A chaos-targeted worker is expected to die (or to discover its eviction
// and exit with an error); egdrun succeeds when rank 0 completes and every
// non-targeted worker exits cleanly.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/strategy"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "egdrun:", err)
		os.Exit(1)
	}
}

// chaosSpec is one scripted process-level fault: signal rank after delay,
// and (for SIGSTOP) resume it pause later.
type chaosSpec struct {
	rank  int
	delay time.Duration
	pause time.Duration // stop specs only: SIGCONT after this much frozen time
	stop  bool
}

// parseChaos parses "rank@delay" (kill) or "rank@delay:pause" (stop).
func parseChaos(spec string, stop bool) (chaosSpec, error) {
	cs := chaosSpec{stop: stop}
	rankStr, rest, ok := strings.Cut(spec, "@")
	if !ok {
		return cs, fmt.Errorf("chaos spec %q: want rank@delay", spec)
	}
	var err error
	if cs.rank, err = strconv.Atoi(rankStr); err != nil {
		return cs, fmt.Errorf("chaos spec %q: bad rank: %v", spec, err)
	}
	delayStr := rest
	if stop {
		var pauseStr string
		if delayStr, pauseStr, ok = strings.Cut(rest, ":"); ok {
			if cs.pause, err = time.ParseDuration(pauseStr); err != nil {
				return cs, fmt.Errorf("chaos spec %q: bad pause: %v", spec, err)
			}
		} else {
			cs.pause = 2 * time.Second
		}
	}
	if cs.delay, err = time.ParseDuration(delayStr); err != nil {
		return cs, fmt.Errorf("chaos spec %q: bad delay: %v", spec, err)
	}
	return cs, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("egdrun", flag.ContinueOnError)
	var (
		np      = fs.Int("np", 0, "number of worker processes (ranks); >= 2")
		sockDir = fs.String("sock", "", "unix-socket directory for the rank mesh (default: a temp dir)")
		tcpBase = fs.String("tcp", "", "use TCP instead of unix sockets: host:basePort (rank i listens on basePort+i)")
		timeout = fs.Duration("timeout", 10*time.Minute, "kill the fleet and fail if the run exceeds this")

		chaosKill = fs.String("chaos-kill", "", "SIGKILL specs 'rank@delay', comma-separated (requires -evict)")
		chaosStop = fs.String("chaos-stop", "", "SIGSTOP specs 'rank@delay:pause', comma-separated (requires -evict)")

		// Worker-process plumbing (internal; set by the launcher).
		worker = fs.Bool("worker", false, "internal: run as a single-rank worker process")
		rank   = fs.Int("rank", -1, "internal: this worker's rank")
		addrs  = fs.String("addrs", "", "internal: comma-separated rank addresses")
		netw   = fs.String("net", "unix", "internal: mesh network (unix or tcp)")
		job    = fs.String("job", "", "internal: job id shared by the fleet")

		// Simulation parameters (forwarded to every worker).
		memory   = fs.Int("memory", 1, "strategy memory depth n in [1,6]")
		ssets    = fs.Int("ssets", 64, "number of Strategy Sets")
		gens     = fs.Int("gens", 1000, "generations to simulate")
		rounds   = fs.Int("rounds", 200, "IPD rounds per match")
		seed     = fs.Uint64("seed", 1, "master random seed")
		mixed    = fs.Bool("mixed", false, "evolve probabilistic (mixed) strategies")
		full     = fs.Bool("full", false, "recompute all fitness every generation (paper timing mode)")
		evict    = fs.Bool("evict", false, "live rank eviction: heartbeat detection, communicator shrink")
		hbEvery  = fs.Duration("heartbeat-every", 0, "liveness tick interval for -evict (0 = engine default)")
		hbMisses = fs.Int("heartbeat-misses", 0, "missed ticks before -evict declares a rank dead (0 = engine default)")
		deadline = fs.Duration("worker-timeout", 0, "receive deadline turning a stalled rank into a detectable failure")
		inject   = fs.String("inject-fault", "", "scripted fault specs, ';'-separated (see internal/mpi.ParseFault)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := sim.DefaultConfig(*memory, *ssets)
	cfg.Generations = *gens
	cfg.Rules.Rounds = *rounds
	cfg.Seed = *seed
	if *mixed {
		cfg.Kind = sim.MixedStrategies
	}
	cfg.FullRecompute = *full
	cfg.Evict = *evict
	cfg.HeartbeatEvery = *hbEvery
	cfg.HeartbeatMisses = *hbMisses
	cfg.RecvTimeout = *deadline
	if *inject != "" {
		plan := mpi.NewFaultPlan()
		for _, spec := range strings.Split(*inject, ";") {
			if spec = strings.TrimSpace(spec); spec == "" {
				continue
			}
			f, err := mpi.ParseFault(spec)
			if err != nil {
				return err
			}
			plan.Add(f)
		}
		cfg.FaultPlan = plan
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	if *worker {
		return runWorker(cfg, *rank, strings.Split(*addrs, ","), *netw, *job, out)
	}

	if *np < 2 {
		return fmt.Errorf("-np must be >= 2 (Nature + workers), got %d", *np)
	}
	var chaos []chaosSpec
	for _, spec := range splitSpecs(*chaosKill) {
		cs, err := parseChaos(spec, false)
		if err != nil {
			return err
		}
		chaos = append(chaos, cs)
	}
	for _, spec := range splitSpecs(*chaosStop) {
		cs, err := parseChaos(spec, true)
		if err != nil {
			return err
		}
		chaos = append(chaos, cs)
	}
	for _, cs := range chaos {
		if cs.rank <= 0 || cs.rank >= *np {
			return fmt.Errorf("chaos target rank %d out of worker range [1,%d)", cs.rank, *np)
		}
		if !*evict {
			return fmt.Errorf("chaos flags need -evict (live recovery) to make sense")
		}
	}
	return launch(fs, *np, *sockDir, *tcpBase, *timeout, chaos, out)
}

func splitSpecs(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// launcherOnly names the flags that steer the launcher itself and must not
// be forwarded to worker processes.
var launcherOnly = map[string]bool{
	"np": true, "sock": true, "tcp": true, "timeout": true,
	"chaos-kill": true, "chaos-stop": true,
	"worker": true, "rank": true, "addrs": true, "net": true, "job": true,
}

// launch spawns one worker process per rank, runs the chaos schedule, and
// attributes every exit. Success requires rank 0 to complete and every
// non-targeted worker to exit 0.
func launch(fs *flag.FlagSet, np int, sockDir, tcpBase string, timeout time.Duration, chaos []chaosSpec, out io.Writer) error {
	self, err := os.Executable()
	if err != nil {
		return fmt.Errorf("locate own binary: %w", err)
	}
	network := "unix"
	addrs := make([]string, np)
	switch {
	case tcpBase != "":
		network = "tcp"
		host, portStr, ok := strings.Cut(tcpBase, ":")
		if !ok {
			return fmt.Errorf("-tcp %q: want host:basePort", tcpBase)
		}
		base, err := strconv.Atoi(portStr)
		if err != nil {
			return fmt.Errorf("-tcp %q: bad base port: %v", tcpBase, err)
		}
		for i := range addrs {
			addrs[i] = fmt.Sprintf("%s:%d", host, base+i)
		}
	default:
		dir := sockDir
		if dir == "" {
			if dir, err = os.MkdirTemp("", "egdrun-*"); err != nil {
				return err
			}
			defer os.RemoveAll(dir)
		}
		for i := range addrs {
			addrs[i] = filepath.Join(dir, fmt.Sprintf("rank-%d.sock", i))
		}
	}

	// Forward exactly the sim flags the user set; the mesh plumbing is ours.
	var fwd []string
	fs.Visit(func(f *flag.Flag) {
		if !launcherOnly[f.Name] {
			fwd = append(fwd, "-"+f.Name+"="+f.Value.String())
		}
	})
	jobID := fmt.Sprintf("egdrun-%d-%d", os.Getpid(), time.Now().UnixNano())

	cmds := make([]*exec.Cmd, np)
	for i := 0; i < np; i++ {
		args := append([]string{
			"-worker", "-rank", strconv.Itoa(i),
			"-net", network, "-addrs", strings.Join(addrs, ","), "-job", jobID,
		}, fwd...)
		cmd := exec.Command(self, args...)
		cmd.Stderr = os.Stderr
		if i == 0 {
			cmd.Stdout = out // the Nature rank owns the summary
		}
		if err := cmd.Start(); err != nil {
			for _, c := range cmds[:i] {
				c.Process.Kill()
			}
			return fmt.Errorf("spawn rank %d: %w", i, err)
		}
		cmds[i] = cmd
	}

	targeted := make(map[int]bool)
	for _, cs := range chaos {
		targeted[cs.rank] = true
		cs := cs
		time.AfterFunc(cs.delay, func() {
			sig, name := syscall.SIGKILL, "SIGKILL"
			if cs.stop {
				sig, name = syscall.SIGSTOP, "SIGSTOP"
			}
			fmt.Fprintf(os.Stderr, "egdrun: chaos: rank %d <- %s\n", cs.rank, name)
			cmds[cs.rank].Process.Signal(sig)
			if cs.stop {
				time.AfterFunc(cs.pause, func() {
					fmt.Fprintf(os.Stderr, "egdrun: chaos: rank %d <- SIGCONT\n", cs.rank)
					cmds[cs.rank].Process.Signal(syscall.SIGCONT)
				})
			}
		})
	}

	type exit struct {
		rank int
		err  error
	}
	done := make(chan exit, np)
	for i, cmd := range cmds {
		go func(rank int, cmd *exec.Cmd) { done <- exit{rank, cmd.Wait()} }(i, cmd)
	}
	exits := make(map[int]error, np)
	watchdog := time.After(timeout)
	for len(exits) < np {
		select {
		case e := <-done:
			exits[e.rank] = e.err
		case <-watchdog:
			for _, cmd := range cmds {
				cmd.Process.Kill()
			}
			return fmt.Errorf("fleet did not finish within %v", timeout)
		}
	}

	failed := 0
	for i := 0; i < np; i++ {
		status := describeExit(cmds[i])
		switch {
		case exits[i] == nil:
			fmt.Fprintf(os.Stderr, "egdrun: rank %d: %s\n", i, status)
		case targeted[i]:
			fmt.Fprintf(os.Stderr, "egdrun: rank %d: %s (chaos target)\n", i, status)
		default:
			fmt.Fprintf(os.Stderr, "egdrun: rank %d: %s\n", i, status)
			failed++
		}
	}
	if exits[0] != nil {
		return fmt.Errorf("rank 0 (Nature) failed: %s", describeExit(cmds[0]))
	}
	if failed > 0 {
		return fmt.Errorf("%d non-targeted worker(s) failed", failed)
	}
	return nil
}

// describeExit renders a finished worker's wait status, distinguishing
// clean exits, error exits, and signal deaths.
func describeExit(cmd *exec.Cmd) string {
	ps := cmd.ProcessState
	if ps == nil {
		return "no status"
	}
	if ws, ok := ps.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
		return fmt.Sprintf("killed by signal %d (%v)", int(ws.Signal()), ws.Signal())
	}
	if code := ps.ExitCode(); code != 0 {
		return fmt.Sprintf("exit %d", code)
	}
	return "exit 0"
}

// runWorker hosts one rank of the mesh: transport up, simulation through
// sim.RunWorker, and (on the Nature rank) the deterministic summary.
func runWorker(cfg sim.Config, rank int, addrs []string, network, job string, out io.Writer) error {
	if rank < 0 || rank >= len(addrs) {
		return fmt.Errorf("worker rank %d outside %d addresses", rank, len(addrs))
	}
	tr, err := mpi.NewNetTransport(mpi.NetConfig{
		Self:    rank,
		Size:    len(addrs),
		Network: network,
		Addrs:   addrs,
		Job:     job,
	})
	if err != nil {
		return err
	}
	res, err := sim.RunWorker(cfg, tr)
	if err != nil {
		return fmt.Errorf("rank %d: %w", rank, err)
	}
	if res != nil {
		printSummary(out, cfg, res)
	}
	return nil
}

// printSummary writes the run summary. Every line except "run:" is a pure
// function of the trajectory, so fault-free and chaos runs of the same
// seeded config diff clean on them (the CI smoke relies on this; use -full
// so eviction replay does not inflate GamesPlayed).
func printSummary(out io.Writer, cfg sim.Config, res *sim.Result) {
	fmt.Fprintf(out, "run: %d ranks finish, %d evictions, %.2fs\n",
		res.Ranks, res.Evictions, res.Elapsed.Seconds())
	fmt.Fprintf(out, "work: %d games, %d PC events, %d adoptions, %d mutations\n",
		res.Counters.GamesPlayed, res.Counters.PCEvents, res.Counters.Adoptions, res.Counters.Mutations)
	if g, v, ok := res.MeanFitness.Last(); ok {
		fmt.Fprintf(out, "final mean fitness (gen %d): %.4f  [1=all-defect .. 3=full cooperation]\n", g, v)
	}
	if g, v, ok := res.Cooperation.Last(); ok {
		fmt.Fprintf(out, "final cooperation probability (gen %d): %.4f\n", g, v)
	}
	sp := strategy.NewSpace(cfg.Memory)
	fmt.Fprintf(out, "WSLS fraction: %.3f\n", res.FractionNear(strategy.WSLS(sp)))
	fmt.Fprintf(out, "distinct strategies: %d of %d SSets\n", res.FinalAbundance().Distinct(), cfg.NumSSets)
}
