package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// End-to-end smoke test of the fault-tolerance surface with live eviction:
// a scripted worker kill under -evict must complete without a restart and
// report exactly one eviction in the fault-tolerance summary.
func TestRunEvictionSmoke(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	var out strings.Builder
	err := run([]string{
		"-memory", "1", "-ssets", "8", "-gens", "400", "-rounds", "20",
		"-ranks", "4", "-full", "-seed", "42",
		"-checkpoint-every", "100", "-checkpoint-file", ckpt,
		"-inject-fault", "rank=2,after=100",
		"-evict", "-heartbeat-every", "20ms", "-heartbeat-misses", "5",
	}, &out)
	if err != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"fault tolerance:",
		"0 restarts",
		"1 evictions",
		"eviction: rank 2",
		"3 ranks", // 4 launched, one evicted live
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// The same scripted kill without -evict takes the PR 1 path: one
// checkpoint restart, no evictions.
func TestRunRestartSmoke(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	var out strings.Builder
	err := run([]string{
		"-memory", "1", "-ssets", "8", "-gens", "400", "-rounds", "20",
		"-ranks", "4", "-full", "-seed", "42",
		"-checkpoint-every", "100", "-checkpoint-file", ckpt,
		"-inject-fault", "rank=2,after=100",
	}, &out)
	if err != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"fault tolerance:",
		"1 restarts",
		"0 evictions",
		"fault: rank 2",
		"recovery:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunEvictNeedsParallelEngine(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-gens", "10", "-evict"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-ranks >= 2") {
		t.Fatalf("sequential -evict accepted: %v", err)
	}
}

// -metrics writes a snapshot and prints the per-phase summary table.
func TestRunMetricsSmoke(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	var out strings.Builder
	err := run([]string{
		"-memory", "1", "-ssets", "10", "-gens", "100", "-rounds", "20",
		"-ranks", "3", "-seed", "7", "-metrics", path,
	}, &out)
	if err != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"phase summary",
		"game_play",
		"compute/comm split:",
		"metrics (json) -> " + path,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if len(snap.Counters) == 0 {
		t.Fatal("snapshot has no counters")
	}
}

// Two same-seed runs produce byte-identical snapshots once wall-clock
// fields are stripped — the determinism contract of -metrics output.
func TestRunMetricsDeterministic(t *testing.T) {
	capture := func(path string) []byte {
		var out strings.Builder
		err := run([]string{
			"-memory", "1", "-ssets", "10", "-gens", "150", "-rounds", "20",
			"-ranks", "4", "-seed", "11", "-metrics", path,
		}, &out)
		if err != nil {
			t.Fatalf("run failed: %v\noutput:\n%s", err, out.String())
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var snap metrics.Snapshot
		if err := json.Unmarshal(raw, &snap); err != nil {
			t.Fatal(err)
		}
		det, err := json.Marshal(snap.Deterministic())
		if err != nil {
			t.Fatal(err)
		}
		return det
	}
	dir := t.TempDir()
	a := capture(filepath.Join(dir, "a.json"))
	b := capture(filepath.Join(dir, "b.json"))
	if !bytes.Equal(a, b) {
		t.Fatalf("deterministic snapshots differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

// -metrics-format prom emits Prometheus text exposition format.
func TestRunMetricsPrometheusFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.prom")
	var out strings.Builder
	err := run([]string{
		"-memory", "1", "-ssets", "8", "-gens", "50", "-rounds", "20",
		"-ranks", "2", "-seed", "3", "-metrics", path, "-metrics-format", "prom",
	}, &out)
	if err != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", err, out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"# TYPE egd_games_played_total counter",
		`egd_comm_sent_messages_total{rank="0",tag="coll_bcast"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prom output missing %q", want)
		}
	}
}

func TestRunMetricsRejectsUnknownFormat(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-gens", "10", "-metrics", "x.json", "-metrics-format", "xml"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-metrics-format") {
		t.Fatalf("unknown format accepted: %v", err)
	}
}

// -payoff-cache keeps the trajectory identical and prints the cache
// summary line when metrics are on.
func TestRunPayoffCacheSmoke(t *testing.T) {
	dir := t.TempDir()
	capture := func(extra ...string) string {
		var out strings.Builder
		args := []string{
			"-memory", "1", "-ssets", "10", "-gens", "200", "-rounds", "20",
			"-full", "-seed", "9",
		}
		args = append(args, extra...)
		if err := run(args, &out); err != nil {
			t.Fatalf("run failed: %v\noutput:\n%s", err, out.String())
		}
		return out.String()
	}
	plain := capture()
	cached := capture("-payoff-cache", "-payoff-cache-size", "4096",
		"-metrics", filepath.Join(dir, "m.json"))
	if !strings.Contains(cached, "payoff cache:") {
		t.Errorf("cache summary line missing:\n%s", cached)
	}
	// The science output (final fitness, cooperation, abundance) must be
	// byte-identical with and without the cache; strip the metrics-only
	// lines from the cached run before comparing.
	tail := func(s string) string {
		i := strings.Index(s, "final mean fitness")
		if i < 0 {
			t.Fatalf("no final fitness line:\n%s", s)
		}
		s = s[i:]
		if j := strings.Index(s, "metrics ("); j >= 0 {
			s = s[:j]
		}
		return s
	}
	if tail(plain) != tail(cached) {
		t.Errorf("cache changed the science output:\n--- off ---\n%s\n--- on ---\n%s", tail(plain), tail(cached))
	}
}

func TestRunRejectsNegativeCacheSize(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-gens", "10", "-payoff-cache", "-payoff-cache-size", "-5"}, &out)
	if err == nil || !strings.Contains(err.Error(), "cache size") {
		t.Fatalf("negative cache size accepted: %v", err)
	}
}

// Sequential runs collect phase metrics too.
func TestRunMetricsSequential(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	var out strings.Builder
	err := run([]string{
		"-memory", "1", "-ssets", "8", "-gens", "50", "-rounds", "20",
		"-seed", "5", "-metrics", path,
	}, &out)
	if err != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "nature_step") {
		t.Errorf("sequential phase summary missing nature_step:\n%s", out.String())
	}
}
