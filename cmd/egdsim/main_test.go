package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// End-to-end smoke test of the fault-tolerance surface with live eviction:
// a scripted worker kill under -evict must complete without a restart and
// report exactly one eviction in the fault-tolerance summary.
func TestRunEvictionSmoke(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	var out strings.Builder
	err := run([]string{
		"-memory", "1", "-ssets", "8", "-gens", "400", "-rounds", "20",
		"-ranks", "4", "-full", "-seed", "42",
		"-checkpoint-every", "100", "-checkpoint-file", ckpt,
		"-inject-fault", "rank=2,after=100",
		"-evict", "-heartbeat-every", "20ms", "-heartbeat-misses", "5",
	}, &out)
	if err != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"fault tolerance:",
		"0 restarts",
		"1 evictions",
		"eviction: rank 2",
		"3 ranks", // 4 launched, one evicted live
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// The same scripted kill without -evict takes the PR 1 path: one
// checkpoint restart, no evictions.
func TestRunRestartSmoke(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	var out strings.Builder
	err := run([]string{
		"-memory", "1", "-ssets", "8", "-gens", "400", "-rounds", "20",
		"-ranks", "4", "-full", "-seed", "42",
		"-checkpoint-every", "100", "-checkpoint-file", ckpt,
		"-inject-fault", "rank=2,after=100",
	}, &out)
	if err != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"fault tolerance:",
		"1 restarts",
		"0 evictions",
		"fault: rank 2",
		"recovery:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunEvictNeedsParallelEngine(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-gens", "10", "-evict"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-ranks >= 2") {
		t.Fatalf("sequential -evict accepted: %v", err)
	}
}
