// Command egdsim runs one evolutionary game dynamics simulation and reports
// the outcome: the final strategy distribution, the WSLS fraction, fitness
// and cooperation trajectories, and (optionally) a per-generation CSV trace
// and a binary checkpoint of the final population.
//
// Examples:
//
//	egdsim -memory 1 -ssets 64 -gens 5000
//	egdsim -memory 1 -ssets 100 -gens 20000 -mixed -error 0.01 -beta 10
//	egdsim -memory 6 -ssets 32 -gens 100 -ranks 8 -full
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/strategy"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "egdsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		memory    = flag.Int("memory", 1, "strategy memory depth n in [1,6]")
		ssets     = flag.Int("ssets", 64, "number of Strategy Sets")
		gens      = flag.Int("gens", 1000, "generations to simulate")
		rounds    = flag.Int("rounds", 200, "IPD rounds per match (paper: 200)")
		errRate   = flag.Float64("error", 0, "per-move execution error probability")
		pcRate    = flag.Float64("pcrate", sim.DefaultPCRate, "pairwise comparison rate (paper: 0.10)")
		mu        = flag.Float64("mu", sim.DefaultMu, "mutation rate (paper: 0.05)")
		beta      = flag.Float64("beta", sim.DefaultBeta, "Fermi selection intensity")
		mixed     = flag.Bool("mixed", false, "evolve probabilistic (mixed) strategies")
		seed      = flag.Uint64("seed", 1, "master random seed")
		ranks     = flag.Int("ranks", 1, "1 = sequential; >= 2 = parallel engine (Nature + workers)")
		full      = flag.Bool("full", false, "recompute all fitness every generation (paper timing mode)")
		search    = flag.Bool("search", false, "use the paper-faithful linear find_state lookup")
		fermi     = flag.Bool("fermi", false, "unconditional Fermi adoption (no teacher-better gate; Traulsen et al.)")
		exact     = flag.Bool("exact", false, "exact infinite-game Markov payoffs instead of sampled matches")
		csvPath   = flag.String("trace", "", "write per-generation CSV trace to this file")
		ckpt      = flag.String("checkpoint", "", "write final population checkpoint to this file")
		resume    = flag.String("resume", "", "resume from a checkpoint file (continues its trajectory)")
		ckptEvery = flag.Int("checkpoint-every", 0, "also write the checkpoint every N generations (requires -checkpoint)")
		mapRows   = flag.Int("map", 0, "print an ASCII strategy map of up to this many SSets")
		top       = flag.Int("top", 5, "report the top-k most abundant final strategies")
	)
	flag.Parse()

	cfg := sim.DefaultConfig(*memory, *ssets)
	cfg.Generations = *gens
	cfg.Rules.Rounds = *rounds
	cfg.Rules.ErrorRate = *errRate
	cfg.PCRate = *pcRate
	cfg.Mu = *mu
	cfg.Beta = *beta
	if *mixed {
		cfg.Kind = sim.MixedStrategies
	}
	cfg.Seed = *seed
	cfg.FullRecompute = *full
	cfg.UseSearchEngine = *search
	cfg.AllowWorseAdoption = *fermi
	cfg.ExactPayoffs = *exact
	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			return err
		}
		snap, err := checkpoint.Read(f)
		f.Close()
		if err != nil {
			return err
		}
		if snap.Memory != *memory {
			return fmt.Errorf("checkpoint is memory-%d, flags say memory-%d", snap.Memory, *memory)
		}
		if len(snap.Strategies) != *ssets {
			return fmt.Errorf("checkpoint has %d SSets, flags say %d", len(snap.Strategies), *ssets)
		}
		cfg.InitialStrategies = snap.Strategies
		cfg.StartGeneration = int(snap.Generation)
		cfg.Seed = snap.Seed
		fmt.Printf("resuming from %s at generation %d (seed %d)\n", *resume, snap.Generation, snap.Seed)
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	var rec *trace.Recorder
	var observers []sim.Observer
	if *csvPath != "" {
		rec = trace.NewRecorder(100000)
		observers = append(observers, sim.ObserverFunc(func(gen int, pop *sim.Population, ev sim.Events) {
			rec.Add(trace.Record{
				Generation:  gen,
				Cooperation: pop.MeanCooperationProb(),
				Distinct:    pop.Abundance().Distinct(),
				PC:          ev.PCOccurred,
				Adopted:     ev.Adopted,
				Mutated:     ev.MutationOccurred,
			})
		}))
	}
	if *ckptEvery > 0 {
		if *ckpt == "" {
			return fmt.Errorf("-checkpoint-every requires -checkpoint FILE")
		}
		observers = append(observers, sim.ObserverFunc(func(gen int, pop *sim.Population, ev sim.Events) {
			if gen == 0 || gen%*ckptEvery != 0 {
				return
			}
			if err := writeCheckpoint(*ckpt, uint64(gen), cfg.Seed, *memory, pop.Snapshot(), nil); err != nil {
				fmt.Fprintf(os.Stderr, "egdsim: periodic checkpoint at gen %d: %v\n", gen, err)
			}
		}))
	}
	switch len(observers) {
	case 1:
		cfg.Observer = observers[0]
	default:
		if len(observers) > 1 {
			all := observers
			cfg.Observer = sim.ObserverFunc(func(gen int, pop *sim.Population, ev sim.Events) {
				for _, o := range all {
					o.Generation(gen, pop, ev)
				}
			})
		}
	}

	var (
		res *sim.Result
		err error
	)
	if *ranks >= 2 {
		res, err = sim.RunParallel(cfg, *ranks)
	} else {
		res, err = sim.RunSequential(cfg)
	}
	if err != nil {
		return err
	}

	fmt.Printf("run: memory-%d, %d SSets, %d generations, %d ranks, %.2fs\n",
		*memory, *ssets, *gens, res.Ranks, res.Elapsed.Seconds())
	fmt.Printf("population: %d agents (agents/SSet = #SSets), %d games/generation when fully replayed\n",
		cfg.PopulationSize(), cfg.GamesPerGeneration())
	fmt.Printf("work: %d games, %d PC events, %d adoptions, %d mutations\n",
		res.Counters.GamesPlayed, res.Counters.PCEvents, res.Counters.Adoptions, res.Counters.Mutations)
	if g, v, ok := res.MeanFitness.Last(); ok {
		fmt.Printf("final mean fitness (gen %d): %.4f  [1=all-defect .. 3=full cooperation]\n", g, v)
	}
	if g, v, ok := res.Cooperation.Last(); ok {
		fmt.Printf("final cooperation probability (gen %d): %.4f\n", g, v)
	}
	sp := strategy.NewSpace(*memory)
	fmt.Printf("WSLS fraction: %.3f\n", res.FractionNear(strategy.WSLS(sp)))
	fmt.Printf("distinct strategies: %d of %d SSets\n", res.FinalAbundance().Distinct(), *ssets)
	fmt.Println("most abundant strategies:")
	for _, line := range core.SortedAbundanceNames(res, *top) {
		fmt.Println("  ", line)
	}
	if *mapRows > 0 {
		fmt.Println("strategy map (rows = SSets, cols = states; '.'=C '#'=D):")
		fmt.Print(core.AsciiMap(res.Final, *mapRows))
	}

	if rec != nil {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("trace: %d records -> %s\n", rec.Len(), *csvPath)
	}
	if *ckpt != "" {
		if err := writeCheckpoint(*ckpt, uint64(cfg.StartGeneration+*gens), cfg.Seed, *memory, res.Final, res.FinalFitness); err != nil {
			return err
		}
		fmt.Printf("checkpoint -> %s\n", *ckpt)
	}
	return nil
}

// writeCheckpoint atomically-ish writes a snapshot (write then rename is
// unnecessary for this tool; a plain truncate-write keeps it simple).
func writeCheckpoint(path string, gen, seed uint64, memory int, strategies []strategy.Strategy, fitness []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	snap := &checkpoint.Snapshot{
		Generation: gen,
		Seed:       seed,
		Memory:     memory,
		Strategies: strategies,
		Fitness:    fitness,
	}
	return checkpoint.Write(f, snap)
}
