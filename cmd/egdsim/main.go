// Command egdsim runs one evolutionary game dynamics simulation and reports
// the outcome: the final strategy distribution, the WSLS fraction, fitness
// and cooperation trajectories, and (optionally) a per-generation CSV trace
// and a binary checkpoint of the final population.
//
// Examples:
//
//	egdsim -memory 1 -ssets 64 -gens 5000
//	egdsim -memory 1 -ssets 100 -gens 20000 -mixed -error 0.01 -beta 10
//	egdsim -memory 6 -ssets 32 -gens 100 -ranks 8 -full
//	egdsim -ssets 32 -gens 2000 -ranks 4 -checkpoint-every 100 \
//	    -checkpoint-file run.ckpt -inject-fault rank=2,after=500
//	egdsim -ssets 32 -gens 2000 -ranks 4 -evict -inject-fault rank=2,after=500
//	egdsim -ssets 32 -gens 1000 -ranks 4 -metrics run-metrics.json -pprof-cpu cpu.out
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/strategy"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "egdsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("egdsim", flag.ContinueOnError)
	var (
		memory    = fs.Int("memory", 1, "strategy memory depth n in [1,6]")
		ssets     = fs.Int("ssets", 64, "number of Strategy Sets")
		gens      = fs.Int("gens", 1000, "generations to simulate")
		rounds    = fs.Int("rounds", 200, "IPD rounds per match (paper: 200)")
		errRate   = fs.Float64("error", 0, "per-move execution error probability")
		pcRate    = fs.Float64("pcrate", sim.DefaultPCRate, "pairwise comparison rate (paper: 0.10)")
		mu        = fs.Float64("mu", sim.DefaultMu, "mutation rate (paper: 0.05)")
		beta      = fs.Float64("beta", sim.DefaultBeta, "Fermi selection intensity")
		mixed     = fs.Bool("mixed", false, "evolve probabilistic (mixed) strategies")
		seed      = fs.Uint64("seed", 1, "master random seed")
		ranks     = fs.Int("ranks", 1, "1 = sequential; >= 2 = parallel engine (Nature + workers)")
		full      = fs.Bool("full", false, "recompute all fitness every generation (paper timing mode)")
		search    = fs.Bool("search", false, "use the paper-faithful linear find_state lookup")
		fermi     = fs.Bool("fermi", false, "unconditional Fermi adoption (no teacher-better gate; Traulsen et al.)")
		exact     = fs.Bool("exact", false, "exact infinite-game Markov payoffs instead of sampled matches")
		payCache  = fs.Bool("payoff-cache", false, "memoize strategy-pair payoffs (bit-identical results; see docs/KERNEL.md)")
		payCacheN = fs.Int("payoff-cache-size", 0, "payoff cache entries per rank for -payoff-cache (0 = engine default)")
		csvPath   = fs.String("trace", "", "write per-generation CSV trace to this file")
		ckpt      = fs.String("checkpoint", "", "write final population checkpoint to this file")
		resume    = fs.String("resume", "", "resume from a checkpoint file (continues its trajectory)")
		ckptEvery = fs.Int("checkpoint-every", 0, "write a recovery checkpoint every N generations")
		ckptFile  = fs.String("checkpoint-file", "", "recovery checkpoint path for -checkpoint-every (default: the -checkpoint path)")
		inject    = fs.String("inject-fault", "", "scripted fault specs, ';'-separated, e.g. 'rank=2,after=500' (see internal/mpi.ParseFault)")
		restarts  = fs.Int("max-restarts", 3, "restart budget after rank failures (parallel engine; <= 0 disables recovery)")
		degrade   = fs.Bool("degrade", false, "on worker failure, restart on one fewer rank")
		deadline  = fs.Duration("worker-timeout", 0, "receive deadline that turns a stalled rank into a detectable failure (parallel engine)")
		evict     = fs.Bool("evict", false, "recover from worker failures live: heartbeat detection, communicator shrink, in-flight re-shard (parallel engine)")
		hbEvery   = fs.Duration("heartbeat-every", 0, "liveness tick interval for -evict (0 = engine default)")
		hbMisses  = fs.Int("heartbeat-misses", 0, "consecutive missed ticks before -evict declares a rank dead (0 = engine default)")
		minRanks  = fs.Int("min-ranks", 0, "smallest world -evict may shrink to before falling back to restart (0 = engine floor of 2)")
		mapRows   = fs.Int("map", 0, "print an ASCII strategy map of up to this many SSets")
		top       = fs.Int("top", 5, "report the top-k most abundant final strategies")
		metricsTo = fs.String("metrics", "", "collect run metrics (phase timers, per-rank comm accounting) and write a snapshot to this file")
		metricsFm = fs.String("metrics-format", "json", "metrics snapshot format: json or prom (Prometheus text exposition)")
		pprofCPU  = fs.String("pprof-cpu", "", "write a CPU profile of the run to this file")
		pprofMem  = fs.String("pprof-mem", "", "write a heap profile taken after the run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := sim.DefaultConfig(*memory, *ssets)
	cfg.Generations = *gens
	cfg.Rules.Rounds = *rounds
	cfg.Rules.ErrorRate = *errRate
	cfg.PCRate = *pcRate
	cfg.Mu = *mu
	cfg.Beta = *beta
	if *mixed {
		cfg.Kind = sim.MixedStrategies
	}
	cfg.Seed = *seed
	cfg.FullRecompute = *full
	cfg.UseSearchEngine = *search
	cfg.AllowWorseAdoption = *fermi
	cfg.ExactPayoffs = *exact
	cfg.PayoffCache = *payCache
	cfg.PayoffCacheSize = *payCacheN
	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			return err
		}
		snap, err := checkpoint.Read(f)
		f.Close()
		if err != nil {
			return err
		}
		if snap.Memory != *memory {
			return fmt.Errorf("checkpoint is memory-%d, flags say memory-%d", snap.Memory, *memory)
		}
		if len(snap.Strategies) != *ssets {
			return fmt.Errorf("checkpoint has %d SSets, flags say %d", len(snap.Strategies), *ssets)
		}
		cfg.InitialStrategies = snap.Strategies
		cfg.StartGeneration = int(snap.Generation)
		cfg.Seed = snap.Seed
		if snap.Counters != nil {
			cfg.BaseCounters = sim.Counters{
				GamesPlayed: snap.Counters.GamesPlayed,
				PCEvents:    snap.Counters.PCEvents,
				Adoptions:   snap.Counters.Adoptions,
				Mutations:   snap.Counters.Mutations,
			}
		}
		fmt.Fprintf(out, "resuming from %s at generation %d (seed %d)\n", *resume, snap.Generation, snap.Seed)
	}
	if *ranks < 2 && (*inject != "" || *degrade || *deadline > 0 || *evict) {
		return fmt.Errorf("-inject-fault, -degrade, -worker-timeout and -evict need the parallel engine (-ranks >= 2)")
	}
	if *ckptEvery > 0 {
		path := *ckptFile
		if path == "" {
			path = *ckpt
		}
		if path == "" {
			return fmt.Errorf("-checkpoint-every requires -checkpoint-file (or -checkpoint) FILE")
		}
		cfg.CheckpointEvery = *ckptEvery
		cfg.CheckpointSink = &sim.FileSink{Path: path}
	}
	if *inject != "" {
		plan := mpi.NewFaultPlan()
		for _, spec := range strings.Split(*inject, ";") {
			spec = strings.TrimSpace(spec)
			if spec == "" {
				continue
			}
			f, err := mpi.ParseFault(spec)
			if err != nil {
				return err
			}
			plan.Add(f)
		}
		cfg.FaultPlan = plan
	}
	cfg.RecvTimeout = *deadline
	cfg.Evict = *evict
	cfg.HeartbeatEvery = *hbEvery
	cfg.HeartbeatMisses = *hbMisses
	cfg.MinRanks = *minRanks
	cfg.Metrics = *metricsTo != ""
	if *metricsFm != "json" && *metricsFm != "prom" {
		return fmt.Errorf("-metrics-format must be json or prom, got %q", *metricsFm)
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	var rec *trace.Recorder
	var observers []sim.Observer
	if *csvPath != "" {
		rec = trace.NewRecorder(100000)
		observers = append(observers, sim.ObserverFunc(func(gen int, pop *sim.Population, ev sim.Events) {
			rec.Add(trace.Record{
				Generation:  gen,
				Cooperation: pop.MeanCooperationProb(),
				Distinct:    pop.Abundance().Distinct(),
				PC:          ev.PCOccurred,
				Adopted:     ev.Adopted,
				Mutated:     ev.MutationOccurred,
			})
		}))
	}
	switch len(observers) {
	case 1:
		cfg.Observer = observers[0]
	default:
		if len(observers) > 1 {
			all := observers
			cfg.Observer = sim.ObserverFunc(func(gen int, pop *sim.Population, ev sim.Events) {
				for _, o := range all {
					o.Generation(gen, pop, ev)
				}
			})
		}
	}

	resilient := cfg.FaultPlan != nil || cfg.CheckpointEvery > 0 || *degrade || cfg.RecvTimeout > 0 || cfg.Evict
	if cfg.CheckpointEvery > 0 || (resilient && *ranks >= 2) {
		cfg.EventLog = trace.NewEventLog()
	}
	if *pprofCPU != "" {
		f, err := os.Create(*pprofCPU)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("start CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	var (
		res *sim.Result
		err error
	)
	switch {
	case *ranks >= 2 && resilient:
		budget := *restarts
		if budget <= 0 {
			budget = -1 // RestartPolicy treats negative as "no restarts"
		}
		res, err = sim.RunParallelResilient(cfg, *ranks, sim.RestartPolicy{
			MaxRestarts: budget,
			Backoff:     100 * time.Millisecond,
			MaxBackoff:  2 * time.Second,
			Degrade:     *degrade,
		})
	case *ranks >= 2:
		res, err = sim.RunParallel(cfg, *ranks)
	default:
		res, err = sim.RunSequential(cfg)
	}
	if err != nil {
		return err
	}
	if *pprofCPU != "" {
		pprof.StopCPUProfile() // idempotent with the deferred stop
		fmt.Fprintf(out, "cpu profile -> %s\n", *pprofCPU)
	}
	if *pprofMem != "" {
		runtime.GC() // flush unreachable allocations so the heap profile reflects live data
		f, ferr := os.Create(*pprofMem)
		if ferr != nil {
			return ferr
		}
		if werr := pprof.WriteHeapProfile(f); werr != nil {
			f.Close()
			return fmt.Errorf("write heap profile: %w", werr)
		}
		if cerr := f.Close(); cerr != nil {
			return cerr
		}
		fmt.Fprintf(out, "heap profile -> %s\n", *pprofMem)
	}

	fmt.Fprintf(out, "run: memory-%d, %d SSets, %d generations, %d ranks, %.2fs\n",
		*memory, *ssets, *gens, res.Ranks, res.Elapsed.Seconds())
	fmt.Fprintf(out, "population: %d agents (agents/SSet = #SSets), %d games/generation when fully replayed\n",
		cfg.PopulationSize(), cfg.GamesPerGeneration())
	fmt.Fprintf(out, "work: %d games, %d PC events, %d adoptions, %d mutations\n",
		res.Counters.GamesPlayed, res.Counters.PCEvents, res.Counters.Adoptions, res.Counters.Mutations)
	if cfg.EventLog != nil {
		fmt.Fprintf(out, "fault tolerance: %d checkpoints, %d faults, %d recoveries, %d degradations, %d restarts, %d evictions\n",
			cfg.EventLog.Count(trace.EventCheckpoint), cfg.EventLog.Count(trace.EventFault),
			cfg.EventLog.Count(trace.EventRecovery), cfg.EventLog.Count(trace.EventDegrade),
			res.Restarts, res.Evictions)
		for _, e := range cfg.EventLog.Events() {
			if e.Kind == trace.EventCheckpoint {
				continue // one per cadence tick; the count above suffices
			}
			detail := strings.ReplaceAll(e.Detail, "\n", "; ") // errors.Join is multi-line
			fmt.Fprintf(out, "  %s: rank %d, attempt %d  %s\n", e.Kind, e.Rank, e.Attempt, detail)
		}
	}
	if res.Metrics != nil {
		printPhaseSummary(out, res)
	}
	if g, v, ok := res.MeanFitness.Last(); ok {
		fmt.Fprintf(out, "final mean fitness (gen %d): %.4f  [1=all-defect .. 3=full cooperation]\n", g, v)
	}
	if g, v, ok := res.Cooperation.Last(); ok {
		fmt.Fprintf(out, "final cooperation probability (gen %d): %.4f\n", g, v)
	}
	sp := strategy.NewSpace(*memory)
	fmt.Fprintf(out, "WSLS fraction: %.3f\n", res.FractionNear(strategy.WSLS(sp)))
	fmt.Fprintf(out, "distinct strategies: %d of %d SSets\n", res.FinalAbundance().Distinct(), *ssets)
	fmt.Fprintln(out, "most abundant strategies:")
	for _, line := range core.SortedAbundanceNames(res, *top) {
		fmt.Fprintln(out, "  ", line)
	}
	if *mapRows > 0 {
		fmt.Fprintln(out, "strategy map (rows = SSets, cols = states; '.'=C '#'=D):")
		fmt.Fprint(out, core.AsciiMap(res.Final, *mapRows))
	}

	if rec != nil {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.WriteCSV(f); err != nil {
			return err
		}
		fmt.Fprintf(out, "trace: %d records -> %s\n", rec.Len(), *csvPath)
	}
	if *ckpt != "" {
		if err := writeCheckpoint(*ckpt, uint64(cfg.StartGeneration+*gens), cfg.Seed, *memory, res); err != nil {
			return err
		}
		fmt.Fprintf(out, "checkpoint -> %s\n", *ckpt)
	}
	if *metricsTo != "" {
		if err := writeMetrics(*metricsTo, *metricsFm, res); err != nil {
			return err
		}
		fmt.Fprintf(out, "metrics (%s) -> %s\n", *metricsFm, *metricsTo)
	}
	return nil
}

// printPhaseSummary renders the per-phase wall-time table and the paper's
// Table-V-style compute/communication split.
func printPhaseSummary(out io.Writer, res *sim.Result) {
	totals := res.Metrics.PhaseTotals()
	var sum time.Duration
	for _, p := range totals {
		sum += time.Duration(p.Nanos)
	}
	fmt.Fprintln(out, "phase summary (wall time summed across ranks):")
	fmt.Fprintf(out, "  %-14s %10s %14s %7s\n", "phase", "calls", "time", "share")
	for _, p := range totals {
		share := 0.0
		if sum > 0 {
			share = 100 * float64(p.Nanos) / float64(sum)
		}
		fmt.Fprintf(out, "  %-14s %10d %14v %6.1f%%\n", p.Phase, p.Calls, time.Duration(p.Nanos).Round(time.Microsecond), share)
	}
	compute, comm, other := res.Metrics.ComputeCommSplit()
	if sum > 0 {
		fmt.Fprintf(out, "compute/comm split: compute %.1f%%, comm %.1f%%, other %.1f%%\n",
			100*float64(compute)/float64(sum), 100*float64(comm)/float64(sum), 100*float64(other)/float64(sum))
	}
	var cs game.CacheStats
	cached := false
	for _, p := range res.Metrics.Phases {
		if p.Cache != nil {
			cs.Merge(*p.Cache)
			cached = true
		}
	}
	if cached {
		fmt.Fprintf(out, "payoff cache: %d hits, %d misses (%.1f%% hit rate), %d evictions, %d entries resident\n",
			cs.Hits, cs.Misses, 100*cs.HitRate(), cs.Evictions, cs.Entries)
	}
}

// writeMetrics serialises the run's metric registry snapshot.
func writeMetrics(path, format string, res *sim.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	snap := res.MetricsRegistry().Snapshot()
	if format == "prom" {
		return metrics.WritePrometheus(f, snap)
	}
	return metrics.WriteJSON(f, snap)
}

// writeCheckpoint atomically-ish writes a final snapshot, counters included
// so a later -resume continues the cumulative work totals (write then rename
// is unnecessary for this tool; a plain truncate-write keeps it simple).
func writeCheckpoint(path string, gen, seed uint64, memory int, res *sim.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	snap := &checkpoint.Snapshot{
		Generation: gen,
		Seed:       seed,
		Memory:     memory,
		Strategies: res.Final,
		Fitness:    res.FinalFitness,
		Counters: &checkpoint.RunCounters{
			GamesPlayed: res.Counters.GamesPlayed,
			PCEvents:    res.Counters.PCEvents,
			Adoptions:   res.Counters.Adoptions,
			Mutations:   res.Counters.Mutations,
		},
	}
	return checkpoint.Write(f, snap)
}
