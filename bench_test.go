// Benchmarks regenerating the paper's evaluation artefacts, one per table
// and figure. Real-engine benches run scaled-down workloads (the shapes —
// growth with memory depth, quadratic growth with population, strong/weak
// scaling across ranks — are what reproduce; absolute seconds are this
// host's, not Blue Gene's). Model benches evaluate the calibrated Blue Gene
// projection, which regenerates the paper's actual numbers; see
// cmd/egdscale for the printed tables and EXPERIMENTS.md for the recorded
// comparison.
//
// Run everything:  go test -bench=. -benchmem
package egd

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/perfmodel"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/strategy"
)

// BenchmarkTableI_Payoff exercises the payoff matrix of Table I.
func BenchmarkTableI_Payoff(b *testing.B) {
	p := game.StandardPayoff()
	var acc float64
	for i := 0; i < b.N; i++ {
		m := strategy.Move(i & 1)
		o := strategy.Move((i >> 1) & 1)
		mine, _ := p.Score(m, o)
		acc += mine
	}
	_ = acc
}

// BenchmarkTableIII_EnumerateMemoryOne regenerates Table III's strategy
// enumeration.
func BenchmarkTableIII_EnumerateMemoryOne(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := len(strategy.EnumeratePure(strategy.NewSpace(1))); got != 16 {
			b.Fatalf("enumerated %d", got)
		}
	}
}

// BenchmarkTableIV_SpaceSizes regenerates Table IV's strategy-space sizes.
func BenchmarkTableIV_SpaceSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		total := 0
		for n := 1; n <= 6; n++ {
			total += strategy.NewSpace(n).NumStates()
		}
		if total != 4+16+64+256+1024+4096 {
			b.Fatal("state counts wrong")
		}
	}
}

// BenchmarkFig2_WSLSValidation runs a scaled Fig. 2 experiment end to end:
// mixed memory-one strategies with errors, evolved and k-means-clustered.
func BenchmarkFig2_WSLSValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.WSLSValidationConfig(32, 300, uint64(i))
		cfg.Rules.Rounds = 50
		out, err := core.RunWSLSValidation(cfg, 4)
		if err != nil {
			b.Fatal(err)
		}
		_ = out.WSLSFraction
	}
}

// BenchmarkTableV_ComputeCommBreakdown regenerates Table V's content — the
// per-phase compute/communication split of a parallel generation — from the
// observability layer's phase timers instead of external profiling. The
// custom metrics report each phase's share of total phase time in percent
// (compute = game play; comm = broadcasts, reductions, point-to-point
// fitness traffic), the split the paper derives for its Blue Gene runs.
func BenchmarkTableV_ComputeCommBreakdown(b *testing.B) {
	for _, ranks := range []int{2, 5, 9} {
		b.Run(fmt.Sprintf("ranks-%d", ranks), func(b *testing.B) {
			cfg := sim.DefaultConfig(1, 32)
			cfg.Generations = 5
			cfg.PCRate = core.SmallStudyPCRate
			cfg.FullRecompute = true
			cfg.Rules.Rounds = 50
			cfg.Seed = 10
			cfg.Metrics = true
			var compute, comm, other time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sim.RunParallel(cfg, ranks)
				if err != nil {
					b.Fatal(err)
				}
				dc, dm, do := res.Metrics.ComputeCommSplit()
				compute += dc
				comm += dm
				other += do
			}
			b.StopTimer()
			if total := compute + comm + other; total > 0 {
				b.ReportMetric(100*float64(compute)/float64(total), "compute-%")
				b.ReportMetric(100*float64(comm)/float64(total), "comm-%")
			}
		})
	}
}

// benchSim runs the real sequential engine in the paper's full-recompute
// timing mode.
func benchSim(b *testing.B, memory, ssets, gens int) {
	cfg := sim.DefaultConfig(memory, ssets)
	cfg.Generations = gens
	cfg.PCRate = core.SmallStudyPCRate
	cfg.FullRecompute = true
	cfg.Rules.Rounds = 50
	cfg.Seed = 9
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunSequential(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableVI_MemorySteps regenerates Table VI's rows: runtime growth
// as the memory depth increases at a fixed population.
func BenchmarkTableVI_MemorySteps(b *testing.B) {
	for mem := 1; mem <= 6; mem++ {
		b.Run(fmt.Sprintf("memory-%d", mem), func(b *testing.B) {
			benchSim(b, mem, 24, 10)
		})
	}
}

// BenchmarkTableVII_PopulationSize regenerates Table VII's rows: runtime
// growth (quadratic) as the SSet count increases.
func BenchmarkTableVII_PopulationSize(b *testing.B) {
	for _, ssets := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("ssets-%d", ssets), func(b *testing.B) {
			benchSim(b, 1, ssets, 10)
		})
	}
}

// BenchmarkFig3_StrongScalingMemory regenerates Fig. 3: parallel-engine
// strong scaling across rank counts at different memory depths.
func BenchmarkFig3_StrongScalingMemory(b *testing.B) {
	for _, mem := range []int{1, 3, 6} {
		for _, ranks := range []int{2, 3, 5, 9} {
			b.Run(fmt.Sprintf("memory-%d/ranks-%d", mem, ranks), func(b *testing.B) {
				cfg := sim.DefaultConfig(mem, 32)
				cfg.Generations = 5
				cfg.PCRate = core.SmallStudyPCRate
				cfg.FullRecompute = true
				cfg.Rules.Rounds = 50
				cfg.Seed = 10
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sim.RunParallel(cfg, ranks); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig4_RuntimeVsMemory regenerates Fig. 4's mechanism: the
// per-match cost of the paper-faithful find_state engine versus memory
// depth.
func BenchmarkFig4_RuntimeVsMemory(b *testing.B) {
	rules := game.DefaultRules()
	for mem := 1; mem <= 6; mem++ {
		b.Run(fmt.Sprintf("memory-%d", mem), func(b *testing.B) {
			sp := strategy.NewSpace(mem)
			master := rng.New(1)
			s0 := strategy.RandomPure(sp, master)
			s1 := strategy.RandomPure(sp, master)
			eng := game.NewSearchEngine(sp)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Play(rules, s0, s1, master)
			}
		})
	}
}

// BenchmarkFig5_StrongScalingPopulation regenerates Fig. 5: the efficiency
// benefit of more SSets per rank.
func BenchmarkFig5_StrongScalingPopulation(b *testing.B) {
	for _, ssets := range []int{16, 64} {
		for _, ranks := range []int{2, 5, 9} {
			b.Run(fmt.Sprintf("ssets-%d/ranks-%d", ssets, ranks), func(b *testing.B) {
				cfg := sim.DefaultConfig(1, ssets)
				cfg.Generations = 5
				cfg.PCRate = core.SmallStudyPCRate
				cfg.FullRecompute = true
				cfg.Rules.Rounds = 50
				cfg.Seed = 11
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sim.RunParallel(cfg, ranks); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig6_WeakScaling regenerates Fig. 6's construction on real
// ranks: the population grows with the rank count (fixed SSets per worker),
// so per-iteration time should stay near-flat.
func BenchmarkFig6_WeakScaling(b *testing.B) {
	const ssetsPerWorker = 8
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			cfg := sim.DefaultConfig(1, ssetsPerWorker*workers)
			cfg.Generations = 5
			cfg.PCRate = core.SmallStudyPCRate
			cfg.Rules.Rounds = 20
			cfg.Seed = 12
			// Incremental evaluation: per-generation work after warm-up is
			// proportional to strategy churn, the flat-work regime.
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunParallel(cfg, workers+1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7_LargeStrongScaling evaluates the Blue Gene/P projection
// behind Fig. 7 (model evaluation cost; the numbers themselves are printed
// by cmd/egdscale -fig 7).
func BenchmarkFig7_LargeStrongScaling(b *testing.B) {
	cal := perfmodel.PaperCalibration()
	for i := 0; i < b.N; i++ {
		if _, err := core.Fig7(cal, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableVIII_AgentsPerProcessor regenerates Table VIII.
func BenchmarkTableVIII_AgentsPerProcessor(b *testing.B) {
	ssets := core.TableVIISSets()
	procs := []int{256, 512, 1024, 2048}
	for i := 0; i < b.N; i++ {
		tbl := core.TableVIII(ssets, procs)
		if len(tbl.Rows) != len(ssets) {
			b.Fatal("table shape wrong")
		}
	}
}

// BenchmarkAblation_StateLookup contrasts the optimised O(1) state indexing
// with the paper-faithful linear search at memory six — the design choice
// DESIGN.md calls out as the source of Fig. 4's growth.
func BenchmarkAblation_StateLookup(b *testing.B) {
	rules := game.DefaultRules()
	sp := strategy.NewSpace(6)
	master := rng.New(2)
	s0 := strategy.RandomPure(sp, master)
	s1 := strategy.RandomPure(sp, master)
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			game.Play(rules, s0, s1, master)
		}
	})
	b.Run("search", func(b *testing.B) {
		eng := game.NewSearchEngine(sp)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Play(rules, s0, s1, master)
		}
	})
}

// BenchmarkAblation_EvaluationMode contrasts the paper's every-generation
// full fitness recompute against the incremental engine on the same
// trajectory.
func BenchmarkAblation_EvaluationMode(b *testing.B) {
	base := sim.DefaultConfig(1, 24)
	base.Generations = 50
	base.Rules.Rounds = 20
	base.Seed = 13
	b.Run("full-recompute", func(b *testing.B) {
		cfg := base
		cfg.FullRecompute = true
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunSequential(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		cfg := base
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunSequential(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_PayoffEvaluation contrasts the three match evaluators:
// sampled 200-round games (the paper's), the paper-faithful search-lookup
// variant, and the exact infinite-game Markov payoff (Nowak-Sigmund's).
func BenchmarkAblation_PayoffEvaluation(b *testing.B) {
	mk := func(mutate func(*sim.Config)) sim.Config {
		cfg := sim.DefaultConfig(1, 16)
		cfg.Generations = 30
		cfg.Kind = sim.MixedStrategies
		cfg.Rules.ErrorRate = 0.01
		cfg.Seed = 14
		mutate(&cfg)
		return cfg
	}
	for name, cfg := range map[string]sim.Config{
		"sampled-200": mk(func(c *sim.Config) {}),
		"search-200":  mk(func(c *sim.Config) { c.UseSearchEngine = true }),
		"exact":       mk(func(c *sim.Config) { c.ExactPayoffs = true }),
	} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunSequential(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_PayoffCache measures the pair-payoff memo
// (docs/KERNEL.md) on the workload it targets: a near-fixation population
// (mostly WSLS, one resident defector) under the paper's full-recompute
// timing mode, where almost every scheduled match repeats a behaviour pair
// the cache has already priced. Sub-benchmarks report the game_play phase
// time per run so the cached/uncached kernel cost can be compared directly
// (the BENCH_10.json headline); total ns/op also includes the phases the
// cache cannot touch (nature step, bookkeeping).
func BenchmarkAblation_PayoffCache(b *testing.B) {
	mkConfig := func(cache bool) sim.Config {
		cfg := sim.DefaultConfig(2, 24)
		cfg.Generations = 40
		cfg.FullRecompute = true
		cfg.Rules.Rounds = 200
		cfg.Seed = 15
		cfg.Metrics = true
		cfg.PayoffCache = cache
		sp := strategy.NewSpace(2)
		strats := make([]strategy.Strategy, 24)
		for i := range strats {
			strats[i] = strategy.WSLS(sp)
		}
		strats[0] = strategy.AllD(sp)
		cfg.InitialStrategies = strats
		return cfg
	}
	gamePlayNanos := func(res *sim.Result) int64 {
		for _, p := range res.Metrics.PhaseTotals() {
			if p.Phase == "game_play" {
				return p.Nanos
			}
		}
		return 0
	}
	for _, mode := range []struct {
		name  string
		cache bool
	}{{"cache-off", false}, {"cache-on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := mkConfig(mode.cache)
			var play int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sim.RunSequential(cfg)
				if err != nil {
					b.Fatal(err)
				}
				play += gamePlayNanos(res)
			}
			b.StopTimer()
			b.ReportMetric(float64(play)/float64(b.N), "game_play-ns/run")
		})
	}
}

// BenchmarkAblation_MutantGeneration prices random strategy generation —
// the Nature Agent's gen_new_strat — across the strategy representations.
func BenchmarkAblation_MutantGeneration(b *testing.B) {
	src := rng.New(3)
	sp := strategy.NewSpace(6)
	b.Run("pure-4096", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			strategy.RandomPure(sp, src)
		}
	})
	b.Run("mixed-4096", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			strategy.RandomMixed(sp, src)
		}
	})
}
