GO ?= go

.PHONY: all build test vet lint lint-json race strict fuzz bench docs chaos serve-smoke check clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# egdlint: the repo's own static analyzers for MPI-usage and
# determinism invariants (see internal/lint/README.md). -tests also
# loads _test.go files and runs the hang-class (SPMD-safety) subset
# over them. Exit 0 means every package honours them.
lint:
	$(GO) run ./cmd/egdlint -tests ./...

# Machine-readable findings for CI artifacts and tooling.
lint-json:
	$(GO) run ./cmd/egdlint -tests -json ./... > egdlint.json; \
	code=$$?; cat egdlint.json; exit $$code

# Race-detector pass over every package: the fault-injection, recovery,
# and eviction tests run scripted kills/stalls under -race, and the
# eviction-era packages (stats, trace, checkpoint) ride along.
race:
	$(GO) test -race ./...

# Strict payload accounting: unknown wire types panic instead of logging.
strict:
	$(GO) test -tags mpistrict ./internal/mpi ./internal/sim

# Short fuzz pass over every fuzz target that guards a parser: the
# checkpoint wire format, the fault-spec grammar, the trace CSV, the
# job-store journal replayer (arbitrary tail damage must never panic),
# and the egdlint allow-directive grammar.
fuzz:
	$(GO) test -fuzz=FuzzRead -fuzztime=10s ./internal/checkpoint
	$(GO) test -fuzz=FuzzParseFault -fuzztime=10s ./internal/mpi
	$(GO) test -fuzz=FuzzWireFrame -fuzztime=10s ./internal/mpi
	$(GO) test -fuzz=FuzzParseCSV -fuzztime=10s ./internal/trace
	$(GO) test -fuzz=FuzzJournalTail -fuzztime=10s ./internal/server
	$(GO) test -fuzz=FuzzDirective -fuzztime=10s ./internal/lint

# Multi-process chaos smoke: egdrun spawns a real worker fleet over unix
# sockets, runs a seeded config fault-free, then reruns it with one worker
# SIGKILLed and one SIGSTOPped mid-run, and asserts the deterministic
# summary lines are byte-identical (see scripts/chaos_smoke.sh).
chaos:
	./scripts/chaos_smoke.sh

# Service smoke: boot egdserve on an ephemeral port and drive the job
# lifecycle over real HTTP — submit, SSE stream, pause mid-run, resume,
# and assert the resumed /result matches an uninterrupted run's bit for
# bit; then kill -9 a durable (-data-dir) daemon mid-job, restart it over
# the same directory, and assert the recovered job's /result is identical
# too (see scripts/serve_smoke.sh).
serve-smoke:
	./scripts/serve_smoke.sh

# Single-iteration sweep of the paper-artefact benchmarks (bench_test.go)
# with allocation stats, streamed as test2json records to BENCH_10.json —
# the machine-readable artifact CI uploads. One iteration keeps the sweep
# minutes-scale; shapes (scaling curves, compute/comm split, the payoff
# cache's game_play speedup) survive, but absolute ns/op are noisy at
# -benchtime=1x. The cache ablation runs at 10 iterations on top so its
# headline ratio (docs/KERNEL.md) is stable enough to compare.
bench:
	$(GO) test -json -run '^$$' -bench . -benchmem -benchtime 1x . > BENCH_10.json
	$(GO) test -json -run '^$$' -bench 'Ablation_PayoffCache' -benchtime 10x . >> BENCH_10.json

# Documentation gate: package docs present on every exported symbol
# (the pkgdoc egdlint analyzer alone) and no broken relative links or
# heading anchors anywhere in the markdown tree (cmd/egddoc).
docs:
	$(GO) run ./cmd/egdlint -run pkgdoc ./...
	$(GO) run ./cmd/egddoc

check: vet lint
	$(GO) test -race ./...

clean:
	$(GO) clean ./...
