GO ?= go

.PHONY: all build test vet race strict fuzz check clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the concurrent packages, fault-injection and
# recovery tests included (they run scripted kills/stalls under -race).
race:
	$(GO) test -race ./internal/mpi ./internal/sim

# Strict payload accounting: unknown wire types panic instead of logging.
strict:
	$(GO) test -tags mpistrict ./internal/mpi ./internal/sim

fuzz:
	$(GO) test -fuzz=FuzzRead -fuzztime=10s ./internal/checkpoint

check: vet
	$(GO) test -race ./...

clean:
	$(GO) clean ./...
