package egd

import (
	"strings"
	"testing"
)

func quickConfig() Config {
	return Config{Memory: 1, SSets: 10, Generations: 50, Rounds: 20, Seed: 1}
}

func TestRunSequential(t *testing.T) {
	res, err := Run(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strategies) != 10 || len(res.Fitness) != 10 {
		t.Fatalf("sizes: %d strategies, %d fitness", len(res.Strategies), len(res.Fitness))
	}
	for i, s := range res.Strategies {
		if len(s) != 4 {
			t.Fatalf("strategy %d = %q, want 4-state response string", i, s)
		}
	}
	if res.Ranks != 1 {
		t.Fatalf("ranks = %d", res.Ranks)
	}
	if res.GamesPlayed == 0 {
		t.Fatal("no games played")
	}
	if len(res.MeanFitness) == 0 || len(res.Cooperation) == 0 {
		t.Fatal("series empty")
	}
	if res.DistinctStrategies < 1 || res.DistinctStrategies > 10 {
		t.Fatalf("distinct = %d", res.DistinctStrategies)
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	cfg := quickConfig()
	seq, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Ranks = 4
	par, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if par.Ranks != 4 {
		t.Fatalf("ranks = %d", par.Ranks)
	}
	for i := range seq.Strategies {
		if seq.Strategies[i] != par.Strategies[i] {
			t.Fatalf("strategy %d differs: %s vs %s", i, seq.Strategies[i], par.Strategies[i])
		}
	}
	if seq.GamesPlayed != par.GamesPlayed || seq.Adoptions != par.Adoptions {
		t.Fatal("counters differ between engines")
	}
}

func TestRunMixedMarksStrategies(t *testing.T) {
	cfg := quickConfig()
	cfg.Mixed = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Strategies {
		if !strings.HasPrefix(s, "~") {
			t.Fatalf("mixed strategy rendered as %q, want ~prefix", s)
		}
	}
}

func TestConfigDefaultsAndFlags(t *testing.T) {
	cfg := quickConfig()
	sc := cfg.toSim()
	if sc.PCRate != 0.10 || sc.Mu != 0.05 || sc.Beta != 1.0 || sc.Rules.Rounds != 20 {
		t.Fatalf("defaults wrong: %+v", sc)
	}
	cfg.NoPC = true
	cfg.NoMutation = true
	sc = cfg.toSim()
	if sc.PCRate != 0 || sc.Mu != 0 {
		t.Fatal("No* flags ignored")
	}
	cfg = quickConfig()
	cfg.PCRate = 0.3
	cfg.Mu = 0.2
	cfg.Beta = 5
	sc = cfg.toSim()
	if sc.PCRate != 0.3 || sc.Mu != 0.2 || sc.Beta != 5 {
		t.Fatal("explicit rates ignored")
	}
	cfg.PaperFaithfulLookup = true
	if !cfg.toSim().UseSearchEngine {
		t.Fatal("lookup flag ignored")
	}
}

func TestRunRejectsInvalid(t *testing.T) {
	if _, err := Run(Config{Memory: 0, SSets: 4, Generations: 1}); err == nil {
		t.Fatal("memory 0 accepted")
	}
	if _, err := Run(Config{Memory: 1, SSets: 1, Generations: 1}); err == nil {
		t.Fatal("1 SSet accepted")
	}
	if _, err := Run(Config{Memory: 1, SSets: 4, Generations: 1, Ranks: 99}); err == nil {
		t.Fatal("too many ranks accepted")
	}
}

func TestExactPayoffsFlag(t *testing.T) {
	cfg := quickConfig()
	cfg.ExactPayoffs = true
	cfg.Mixed = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.GamesPlayed == 0 {
		t.Fatal("no evaluations in exact mode")
	}
	// Exact + paper-faithful lookup is contradictory and must be rejected.
	cfg.PaperFaithfulLookup = true
	if _, err := Run(cfg); err == nil {
		t.Fatal("exact + search lookup accepted")
	}
}

func TestNoEvolutionWhenDisabled(t *testing.T) {
	cfg := quickConfig()
	cfg.NoPC = true
	cfg.NoMutation = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PCEvents != 0 || res.Mutations != 0 || res.Adoptions != 0 {
		t.Fatalf("evolution events despite disabling: %+v", res)
	}
}

func TestClassicTournament(t *testing.T) {
	standings, err := ClassicTournament(1, 0, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(standings) != 6 {
		t.Fatalf("%d entrants at memory 1", len(standings))
	}
	for i := 1; i < len(standings); i++ {
		if standings[i].Score > standings[i-1].Score {
			t.Fatal("standings unsorted")
		}
	}
	withTF2T, err := ClassicTournament(2, 0.01, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(withTF2T) != 7 {
		t.Fatalf("%d entrants at memory 2, want 7 (TF2T joins)", len(withTF2T))
	}
	if _, err := ClassicTournament(0, 0, 1, 1); err == nil {
		t.Fatal("memory 0 accepted")
	}
	if _, err := ClassicTournament(1, 0, 0, 1); err == nil {
		t.Fatal("0 repeats accepted")
	}
}

func TestWSLSBeatsTFTUnderNoise(t *testing.T) {
	standings, err := ClassicTournament(1, 0.05, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, s := range standings {
		pos[s.Name] = i
	}
	if pos["WSLS"] > pos["TFT"] {
		t.Fatalf("TFT (rank %d) beat WSLS (rank %d) under 5%% errors", pos["TFT"], pos["WSLS"])
	}
}

func TestPaperTables(t *testing.T) {
	tables := PaperTables()
	for _, key := range []string{"table1", "table3", "table4", "table8"} {
		txt, ok := tables[key]
		if !ok || txt == "" {
			t.Fatalf("missing %s", key)
		}
	}
	if !strings.Contains(tables["table4"], "2^4096") {
		t.Fatal("table 4 missing memory-six count")
	}
}

func TestScalingTables(t *testing.T) {
	tables, err := ScalingTables()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"table6", "table7", "fig3", "fig4", "fig5", "fig6", "fig7"} {
		txt, ok := tables[key]
		if !ok || txt == "" {
			t.Fatalf("missing %s", key)
		}
	}
	// The modelled Table VI anchor: memory-one at P=128 is 26.5s.
	if !strings.Contains(tables["table6"], "26.5") {
		t.Fatalf("table6 lost the paper anchor:\n%s", tables["table6"])
	}
}
