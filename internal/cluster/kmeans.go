// Package cluster implements Lloyd's k-means algorithm with k-means++
// seeding, used — as in the paper's Fig. 2 — to group the final population's
// strategies so that prevalent strategies (e.g. WSLS) stand out.
//
// Points are strategy response vectors: each strategy becomes the vector of
// its per-state cooperation probabilities (0/1 for pure strategies), so
// Euclidean distance is the natural dissimilarity.
package cluster

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/strategy"
)

// Result is the outcome of a k-means run.
type Result struct {
	// Centroids are the k cluster centres.
	Centroids [][]float64
	// Assign maps each input point to its cluster index.
	Assign []int
	// Sizes counts points per cluster.
	Sizes []int
	// Inertia is the total within-cluster squared distance.
	Inertia float64
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
}

// KMeans clusters the points into k groups. maxIter bounds the Lloyd
// iterations (convergence usually comes earlier); src drives the k-means++
// seeding. Points must be non-empty, equal-length vectors with k in
// [1, len(points)].
func KMeans(points [][]float64, k, maxIter int, src *rng.Source) (*Result, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("cluster: no points")
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, fmt.Errorf("cluster: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: point %d has dimension %d, want %d", i, len(p), dim)
		}
	}
	if k < 1 || k > len(points) {
		return nil, fmt.Errorf("cluster: k=%d out of [1,%d]", k, len(points))
	}
	if maxIter < 1 {
		return nil, fmt.Errorf("cluster: maxIter %d < 1", maxIter)
	}

	centroids := seedPlusPlus(points, k, src)
	assign := make([]int, len(points))
	sizes := make([]int, k)
	res := &Result{}
	for iter := 0; iter < maxIter; iter++ {
		res.Iterations = iter + 1
		// Assignment step.
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, cen := range centroids {
				if d := sqDist(p, cen); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best || iter == 0 {
				changed = changed || assign[i] != best
				assign[i] = best
			}
		}
		if iter > 0 && !changed {
			break
		}
		// Update step.
		for c := range centroids {
			for d := range centroids[c] {
				centroids[c][d] = 0
			}
			sizes[c] = 0
		}
		for i, p := range points {
			c := assign[i]
			sizes[c]++
			for d, v := range p {
				centroids[c][d] += v
			}
		}
		for c := range centroids {
			if sizes[c] == 0 {
				// Re-seed an empty cluster on the point farthest from its
				// centroid, the standard Lloyd repair.
				far, farD := 0, -1.0
				for i, p := range points {
					if d := sqDist(p, centroids[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				copy(centroids[c], points[far])
				continue
			}
			inv := 1.0 / float64(sizes[c])
			for d := range centroids[c] {
				centroids[c][d] *= inv
			}
		}
	}
	// Final bookkeeping.
	for c := range sizes {
		sizes[c] = 0
	}
	inertia := 0.0
	for i, p := range points {
		best, bestD := 0, math.Inf(1)
		for c, cen := range centroids {
			if d := sqDist(p, cen); d < bestD {
				best, bestD = c, d
			}
		}
		assign[i] = best
		sizes[best]++
		inertia += bestD
	}
	res.Centroids = centroids
	res.Assign = assign
	res.Sizes = sizes
	res.Inertia = inertia
	return res, nil
}

// seedPlusPlus picks k initial centroids with k-means++ (first uniform,
// subsequent proportional to squared distance from the nearest chosen).
func seedPlusPlus(points [][]float64, k int, src *rng.Source) [][]float64 {
	dim := len(points[0])
	centroids := make([][]float64, 0, k)
	first := src.Intn(len(points))
	centroids = append(centroids, cloneVec(points[first], dim))
	d2 := make([]float64, len(points))
	for i, p := range points {
		d2[i] = sqDist(p, centroids[0])
	}
	for len(centroids) < k {
		total := 0.0
		for _, d := range d2 {
			total += d
		}
		var pick int
		if total <= 0 {
			// All points coincide with chosen centroids; pick uniformly.
			pick = src.Intn(len(points))
		} else {
			r := src.Float64() * total
			cum := 0.0
			pick = len(points) - 1
			for i, d := range d2 {
				cum += d
				if cum >= r {
					pick = i
					break
				}
			}
		}
		c := cloneVec(points[pick], dim)
		centroids = append(centroids, c)
		for i, p := range points {
			if d := sqDist(p, c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}

func cloneVec(v []float64, dim int) []float64 {
	out := make([]float64, dim)
	copy(out, v)
	return out
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// StrategyVectors converts strategies to their cooperation-probability
// vectors, the point representation Fig. 2 clusters (rows = SSets,
// columns = states).
func StrategyVectors(strategies []strategy.Strategy) [][]float64 {
	out := make([][]float64, len(strategies))
	for i, s := range strategies {
		n := s.Space().NumStates()
		v := make([]float64, n)
		for st := 0; st < n; st++ {
			v[st] = s.CooperateProb(uint32(st))
		}
		out[i] = v
	}
	return out
}

// DominantCluster returns the index and population fraction of the largest
// cluster — Fig. 2's "85% of all SSets have adopted [WSLS]" readout.
func (r *Result) DominantCluster() (idx int, fraction float64) {
	total := 0
	for c, n := range r.Sizes {
		total += n
		if n > r.Sizes[idx] {
			idx = c
		}
	}
	if total == 0 {
		return 0, 0
	}
	return idx, float64(r.Sizes[idx]) / float64(total)
}

// RoundCentroid snaps a centroid to the nearest pure strategy in the given
// space, identifying which classic (if any) a cluster converged to.
func RoundCentroid(centroid []float64, sp strategy.Space) (*strategy.Pure, error) {
	if len(centroid) != sp.NumStates() {
		return nil, fmt.Errorf("cluster: centroid dimension %d != %d states", len(centroid), sp.NumStates())
	}
	return strategy.MixedFromProbs(sp, centroid).NearestPure(), nil
}
