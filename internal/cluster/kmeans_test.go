package cluster

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/strategy"
)

// threeBlobs makes three well-separated 2D clusters.
func threeBlobs(src *rng.Source, perBlob int) ([][]float64, []int) {
	centres := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	pts := make([][]float64, 0, 3*perBlob)
	labels := make([]int, 0, 3*perBlob)
	for c, cen := range centres {
		for i := 0; i < perBlob; i++ {
			pts = append(pts, []float64{cen[0] + src.Normal()*0.5, cen[1] + src.Normal()*0.5})
			labels = append(labels, c)
		}
	}
	return pts, labels
}

func TestKMeansRecoversBlobs(t *testing.T) {
	src := rng.New(1)
	pts, labels := threeBlobs(src, 40)
	res, err := KMeans(pts, 3, 100, src)
	if err != nil {
		t.Fatal(err)
	}
	// Every true blob must map to exactly one k-means cluster.
	mapping := map[int]map[int]int{}
	for i, l := range labels {
		if mapping[l] == nil {
			mapping[l] = map[int]int{}
		}
		mapping[l][res.Assign[i]]++
	}
	used := map[int]bool{}
	for blob, assigned := range mapping {
		best, bestN := -1, 0
		total := 0
		for c, n := range assigned {
			total += n
			if n > bestN {
				best, bestN = c, n
			}
		}
		if float64(bestN)/float64(total) < 0.95 {
			t.Fatalf("blob %d split across clusters: %v", blob, assigned)
		}
		if used[best] {
			t.Fatalf("two blobs mapped to cluster %d", best)
		}
		used[best] = true
	}
	if res.Inertia <= 0 {
		t.Fatal("inertia should be positive for noisy blobs")
	}
}

func TestKMeansK1(t *testing.T) {
	src := rng.New(2)
	pts := [][]float64{{1, 1}, {3, 3}, {5, 5}}
	res, err := KMeans(pts, 1, 10, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sizes[0] != 3 {
		t.Fatalf("sizes = %v", res.Sizes)
	}
	if math.Abs(res.Centroids[0][0]-3) > 1e-12 || math.Abs(res.Centroids[0][1]-3) > 1e-12 {
		t.Fatalf("centroid = %v, want mean (3,3)", res.Centroids[0])
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	src := rng.New(3)
	pts := [][]float64{{0}, {5}, {10}, {20}}
	res, err := KMeans(pts, 4, 50, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-9 {
		t.Fatalf("k=n inertia = %v, want 0", res.Inertia)
	}
	seen := map[int]bool{}
	for _, a := range res.Assign {
		if seen[a] {
			t.Fatal("two points share a cluster at k=n")
		}
		seen[a] = true
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	src := rng.New(4)
	pts := [][]float64{{1, 2}, {1, 2}, {1, 2}, {1, 2}}
	res, err := KMeans(pts, 2, 10, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Fatalf("identical points inertia = %v", res.Inertia)
	}
}

func TestKMeansValidation(t *testing.T) {
	src := rng.New(5)
	if _, err := KMeans(nil, 1, 10, src); err == nil {
		t.Fatal("empty points accepted")
	}
	if _, err := KMeans([][]float64{{}}, 1, 10, src); err == nil {
		t.Fatal("zero-dim accepted")
	}
	if _, err := KMeans([][]float64{{1}, {1, 2}}, 1, 10, src); err == nil {
		t.Fatal("ragged points accepted")
	}
	if _, err := KMeans([][]float64{{1}}, 2, 10, src); err == nil {
		t.Fatal("k > n accepted")
	}
	if _, err := KMeans([][]float64{{1}}, 0, 10, src); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KMeans([][]float64{{1}}, 1, 0, src); err == nil {
		t.Fatal("maxIter 0 accepted")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	pts, _ := threeBlobs(rng.New(6), 30)
	a, err := KMeans(pts, 3, 100, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(pts, 3, 100, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed, different clustering")
		}
	}
	if a.Inertia != b.Inertia {
		t.Fatal("same seed, different inertia")
	}
}

func TestKMeansInertiaNonIncreasingInK(t *testing.T) {
	// More clusters can only reduce (or keep) the best within-cluster
	// scatter; verify across a k sweep with shared data.
	pts, _ := threeBlobs(rng.New(9), 25)
	prev := 1e18
	for k := 1; k <= 6; k++ {
		res, err := KMeans(pts, k, 100, rng.New(10))
		if err != nil {
			t.Fatal(err)
		}
		// Lloyd is a local optimiser, so allow small non-monotonic wiggle
		// from unlucky seeding; large inversions indicate a bug.
		if res.Inertia > prev*1.10 {
			t.Fatalf("k=%d inertia %v far above k=%d inertia %v", k, res.Inertia, k-1, prev)
		}
		if res.Inertia < prev {
			prev = res.Inertia
		}
	}
}

func TestStrategyVectors(t *testing.T) {
	sp := strategy.NewSpace(1)
	vecs := StrategyVectors([]strategy.Strategy{
		strategy.WSLS(sp),
		strategy.MixedFromProbs(sp, []float64{0.25, 0.5, 0.75, 1.0}),
	})
	if len(vecs) != 2 {
		t.Fatalf("%d vectors", len(vecs))
	}
	// WSLS (binary order 0110 over defection) cooperates in states 0,3.
	want := []float64{1, 0, 0, 1}
	for i, w := range want {
		if vecs[0][i] != w {
			t.Fatalf("WSLS vector = %v", vecs[0])
		}
	}
	if vecs[1][0] != 0.25 || vecs[1][3] != 1.0 {
		t.Fatalf("mixed vector = %v", vecs[1])
	}
}

func TestDominantCluster(t *testing.T) {
	r := &Result{Sizes: []int{10, 85, 5}}
	idx, frac := r.DominantCluster()
	if idx != 1 || frac != 0.85 {
		t.Fatalf("dominant = %d (%v)", idx, frac)
	}
	empty := &Result{Sizes: []int{0}}
	if _, f := empty.DominantCluster(); f != 0 {
		t.Fatal("empty dominant fraction nonzero")
	}
}

func TestRoundCentroid(t *testing.T) {
	sp := strategy.NewSpace(1)
	p, err := RoundCentroid([]float64{0.9, 0.2, 0.1, 0.8}, sp)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(strategy.WSLS(sp)) {
		t.Fatalf("centroid rounded to %v, want WSLS", p)
	}
	if _, err := RoundCentroid([]float64{1, 2}, sp); err == nil {
		t.Fatal("wrong dimension accepted")
	}
}

// End-to-end: cluster a synthetic "final population" that is 85% WSLS plus
// noise, the exact Fig. 2 readout path.
func TestFig2Readout(t *testing.T) {
	sp := strategy.NewSpace(1)
	src := rng.New(8)
	var strategies []strategy.Strategy
	wsls := strategy.WSLS(sp)
	for i := 0; i < 85; i++ {
		// WSLS with small probabilistic jitter.
		m := strategy.MixedFromProbs(sp, []float64{1, 0, 0, 1})
		strategies = append(strategies, strategy.PerturbMixed(m, 0.05, src))
	}
	for i := 0; i < 15; i++ {
		strategies = append(strategies, strategy.RandomMixed(sp, src))
	}
	res, err := KMeans(StrategyVectors(strategies), 4, 100, src)
	if err != nil {
		t.Fatal(err)
	}
	idx, frac := res.DominantCluster()
	if frac < 0.7 {
		t.Fatalf("dominant cluster holds %v of the population, want >= 0.7", frac)
	}
	rounded, err := RoundCentroid(res.Centroids[idx], sp)
	if err != nil {
		t.Fatal(err)
	}
	if !rounded.Equal(wsls) {
		t.Fatalf("dominant centroid rounds to %v, want WSLS", rounded)
	}
}
