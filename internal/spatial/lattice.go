// Package spatial implements lattice-structured evolutionary games — the
// spatialised Prisoner's Dilemma the paper cites as the source of its
// learning dynamics ([30]) and a classic extension direction for
// agent-based game frameworks (Nowak & May's spatial chaos).
//
// Two models are provided:
//
//   - Binary: Nowak & May's deterministic one-shot spatial PD. Each cell is
//     a cooperator or defector, earns the summed payoff of games against
//     its Moore neighbourhood (and itself), then every cell synchronously
//     adopts the strategy of its best-scoring neighbour. With the canonical
//     payoff (R=1, P=S=0, T=b) the dynamics pass from cooperator-dominated
//     through dynamic coexistence ("spatial chaos", 1.8 < b < 2) to
//     defector-dominated as b grows; in the chaos window the cooperator
//     fraction converges to the famous ~0.318 asymptote on large lattices,
//     and a lone defector seeds the exact-symmetric kaleidoscope patterns
//     (both reproduced by the tests).
//
//   - IPD: each cell holds a full memory-n strategy and plays the Iterated
//     Prisoner's Dilemma against its neighbours each generation, then
//     imitates its best-scoring neighbour — the spatial counterpart of the
//     paper's well-mixed SSet dynamics.
package spatial

import (
	"fmt"
	"strings"

	"repro/internal/game"
	"repro/internal/rng"
	"repro/internal/strategy"
)

// Binary is the Nowak-May one-shot spatial game.
type Binary struct {
	w, h  int
	b     float64 // temptation payoff; R=1, S=P=0
	cells []bool  // true = cooperator
	next  []bool
	score []float64
	gen   int
}

// NewBinary creates a w×h toroidal lattice with each cell independently a
// cooperator with probability coopFrac, drawn from seed.
func NewBinary(w, h int, b, coopFrac float64, seed uint64) (*Binary, error) {
	if w < 3 || h < 3 {
		return nil, fmt.Errorf("spatial: lattice %dx%d too small (need >= 3x3)", w, h)
	}
	if b <= 1 {
		return nil, fmt.Errorf("spatial: temptation b=%v must exceed R=1", b)
	}
	if coopFrac < 0 || coopFrac > 1 {
		return nil, fmt.Errorf("spatial: cooperator fraction %v out of [0,1]", coopFrac)
	}
	l := &Binary{
		w: w, h: h, b: b,
		cells: make([]bool, w*h),
		next:  make([]bool, w*h),
		score: make([]float64, w*h),
	}
	src := rng.New(seed)
	for i := range l.cells {
		l.cells[i] = src.Bernoulli(coopFrac)
	}
	return l, nil
}

// SetCell overrides one cell (used to seed single-defector experiments).
func (l *Binary) SetCell(x, y int, cooperator bool) {
	l.cells[l.idx(x, y)] = cooperator
}

// Cell reports whether (x, y) cooperates.
func (l *Binary) Cell(x, y int) bool { return l.cells[l.idx(x, y)] }

// Generation returns the number of completed steps.
func (l *Binary) Generation() int { return l.gen }

func (l *Binary) idx(x, y int) int {
	x = ((x % l.w) + l.w) % l.w
	y = ((y % l.h) + l.h) % l.h
	return y*l.w + x
}

// neighbourhood lists the Moore neighbourhood offsets plus self.
var neighbourhood = [9][2]int{
	{-1, -1}, {0, -1}, {1, -1},
	{-1, 0}, {0, 0}, {1, 0},
	{-1, 1}, {0, 1}, {1, 1},
}

// Step advances one synchronous generation: score every cell against its
// neighbourhood, then every cell copies its best-scoring neighbour
// (including itself; deterministic tie-break prefers keeping the current
// strategy, then scan order — Nowak & May's convention up to tie-breaks).
func (l *Binary) Step() {
	// Scoring: one-shot PD against the 8 neighbours and self; with R=1,
	// S=P=0, T=b, a cell's score is (#cooperating partners) for a
	// cooperator and b*(#cooperating partners) for a defector.
	for y := 0; y < l.h; y++ {
		for x := 0; x < l.w; x++ {
			i := y*l.w + x
			coopPartners := 0
			for _, d := range neighbourhood {
				if l.cells[l.idx(x+d[0], y+d[1])] {
					coopPartners++
				}
			}
			if l.cells[i] {
				l.score[i] = float64(coopPartners)
			} else {
				l.score[i] = l.b * float64(coopPartners)
			}
		}
	}
	// Imitation: adopt the strategy of the best-scoring neighbourhood
	// member. The tie-break must not depend on scan order or the
	// kaleidoscope patterns lose their exact symmetry, so compare the best
	// cooperator score against the best defector score and let cooperation
	// win exact ties — a position-independent rule.
	for y := 0; y < l.h; y++ {
		for x := 0; x < l.w; x++ {
			i := y*l.w + x
			bestC, bestD := -1.0, -1.0
			for _, d := range neighbourhood {
				j := l.idx(x+d[0], y+d[1])
				if l.cells[j] {
					if l.score[j] > bestC {
						bestC = l.score[j]
					}
				} else if l.score[j] > bestD {
					bestD = l.score[j]
				}
			}
			l.next[i] = bestC >= bestD
		}
	}
	l.cells, l.next = l.next, l.cells
	l.gen++
}

// Run advances n generations.
func (l *Binary) Run(n int) {
	for i := 0; i < n; i++ {
		l.Step()
	}
}

// CoopFraction returns the cooperating share of cells.
func (l *Binary) CoopFraction() float64 {
	n := 0
	for _, c := range l.cells {
		if c {
			n++
		}
	}
	return float64(n) / float64(len(l.cells))
}

// Ascii renders the lattice ('.' cooperator, '#' defector).
func (l *Binary) Ascii() string {
	var sb strings.Builder
	sb.Grow((l.w + 1) * l.h)
	for y := 0; y < l.h; y++ {
		for x := 0; x < l.w; x++ {
			if l.cells[y*l.w+x] {
				sb.WriteByte('.')
			} else {
				sb.WriteByte('#')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// IPD is the lattice of full IPD strategies with imitate-best dynamics.
type IPD struct {
	w, h   int
	rules  game.Rules
	cells  []strategy.Strategy
	next   []strategy.Strategy
	score  []float64
	src    *rng.Source
	space  strategy.Space
	gen    int
	mu     float64 // per-cell per-generation mutation probability
	mixed  bool
	master *rng.Source
}

// IPDConfig parameterises the lattice IPD model.
type IPDConfig struct {
	// W, H are the toroidal lattice dimensions (>= 3 each).
	W, H int
	// Memory is the strategy depth.
	Memory int
	// Rules are the per-match IPD parameters (zero = paper defaults).
	Rules game.Rules
	// Mu is the per-cell per-generation probability of a random mutation.
	Mu float64
	// Mixed selects probabilistic strategies.
	Mixed bool
	// Seed drives initialisation, game sampling, and mutation.
	Seed uint64
}

// NewIPD builds a lattice of random strategies.
func NewIPD(cfg IPDConfig) (*IPD, error) {
	if cfg.W < 3 || cfg.H < 3 {
		return nil, fmt.Errorf("spatial: lattice %dx%d too small", cfg.W, cfg.H)
	}
	if cfg.Memory < 1 || cfg.Memory > strategy.MaxMemory {
		return nil, fmt.Errorf("spatial: memory %d out of range", cfg.Memory)
	}
	if cfg.Rules == (game.Rules{}) {
		cfg.Rules = game.DefaultRules()
	}
	if err := cfg.Rules.Validate(); err != nil {
		return nil, err
	}
	if cfg.Mu < 0 || cfg.Mu > 1 {
		return nil, fmt.Errorf("spatial: mutation rate %v out of [0,1]", cfg.Mu)
	}
	sp := strategy.NewSpace(cfg.Memory)
	l := &IPD{
		w: cfg.W, h: cfg.H,
		rules:  cfg.Rules,
		cells:  make([]strategy.Strategy, cfg.W*cfg.H),
		next:   make([]strategy.Strategy, cfg.W*cfg.H),
		score:  make([]float64, cfg.W*cfg.H),
		space:  sp,
		mu:     cfg.Mu,
		mixed:  cfg.Mixed,
		master: rng.New(cfg.Seed),
	}
	l.src = l.master.Derive(0x5A7)
	for i := range l.cells {
		if cfg.Mixed {
			l.cells[i] = strategy.RandomMixed(sp, l.src)
		} else {
			l.cells[i] = strategy.RandomPure(sp, l.src)
		}
	}
	return l, nil
}

func (l *IPD) idx(x, y int) int {
	x = ((x % l.w) + l.w) % l.w
	y = ((y % l.h) + l.h) % l.h
	return y*l.w + x
}

// SetCell overrides one cell's strategy.
func (l *IPD) SetCell(x, y int, s strategy.Strategy) { l.cells[l.idx(x, y)] = s.Clone() }

// Cell returns the strategy at (x, y) (shared; do not mutate).
func (l *IPD) Cell(x, y int) strategy.Strategy { return l.cells[l.idx(x, y)] }

// Generation returns completed steps.
func (l *IPD) Generation() int { return l.gen }

// Step advances one generation: each cell plays its 8 neighbours, scores
// the mean per-round payoff, then synchronously imitates its best
// neighbour; finally mutation may replace cells with fresh random
// strategies.
func (l *IPD) Step() {
	for y := 0; y < l.h; y++ {
		for x := 0; x < l.w; x++ {
			i := y*l.w + x
			total := 0.0
			games := 0
			for _, d := range neighbourhood {
				if d[0] == 0 && d[1] == 0 {
					continue
				}
				j := l.idx(x+d[0], y+d[1])
				src := l.master.Derive(0x9A3, uint64(l.gen), uint64(i), uint64(j))
				res := game.Play(l.rules, l.cells[i], l.cells[j], src)
				total += res.Mean0()
				games++
			}
			l.score[i] = total / float64(games)
		}
	}
	for y := 0; y < l.h; y++ {
		for x := 0; x < l.w; x++ {
			i := y*l.w + x
			best := l.score[i]
			bestStrat := l.cells[i]
			for _, d := range neighbourhood {
				j := l.idx(x+d[0], y+d[1])
				if l.score[j] > best {
					best = l.score[j]
					bestStrat = l.cells[j]
				}
			}
			l.next[i] = bestStrat
		}
	}
	// Materialise copies only where the strategy actually changes;
	// imitation shares immutable strategy values otherwise.
	for i := range l.next {
		if l.next[i] != l.cells[i] {
			l.next[i] = l.next[i].Clone()
		}
	}
	l.cells, l.next = l.next, l.cells
	if l.mu > 0 {
		mutSrc := l.master.Derive(0xB07, uint64(l.gen))
		for i := range l.cells {
			if mutSrc.Bernoulli(l.mu) {
				if l.mixed {
					l.cells[i] = strategy.RandomMixed(l.space, mutSrc)
				} else {
					l.cells[i] = strategy.RandomPure(l.space, mutSrc)
				}
			}
		}
	}
	l.gen++
}

// Run advances n generations.
func (l *IPD) Run(n int) {
	for i := 0; i < n; i++ {
		l.Step()
	}
}

// FractionNear returns the share of cells whose strategy rounds to ref.
func (l *IPD) FractionNear(ref *strategy.Pure) float64 {
	n := 0
	for _, s := range l.cells {
		switch v := s.(type) {
		case *strategy.Pure:
			if v.Equal(ref) {
				n++
			}
		case *strategy.Mixed:
			if v.NearestPure().Equal(ref) {
				n++
			}
		}
	}
	return float64(n) / float64(len(l.cells))
}

// MeanCooperationProb returns the lattice-wide mean cooperation
// probability over all states.
func (l *IPD) MeanCooperationProb() float64 {
	total := 0.0
	states := l.space.NumStates()
	for _, s := range l.cells {
		for st := 0; st < states; st++ {
			total += s.CooperateProb(uint32(st))
		}
	}
	return total / float64(len(l.cells)*states)
}

// Ascii renders the lattice by each cell's opening move ('.' C, '#' D).
func (l *IPD) Ascii() string {
	var sb strings.Builder
	init := l.space.InitialState()
	for y := 0; y < l.h; y++ {
		for x := 0; x < l.w; x++ {
			if l.cells[y*l.w+x].CooperateProb(init) >= 0.5 {
				sb.WriteByte('.')
			} else {
				sb.WriteByte('#')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
