package spatial

import (
	"strings"
	"testing"

	"repro/internal/game"
	"repro/internal/strategy"
)

func TestNewBinaryValidation(t *testing.T) {
	if _, err := NewBinary(2, 10, 1.9, 0.5, 1); err == nil {
		t.Fatal("tiny lattice accepted")
	}
	if _, err := NewBinary(10, 10, 0.9, 0.5, 1); err == nil {
		t.Fatal("b <= 1 accepted")
	}
	if _, err := NewBinary(10, 10, 1.9, 1.5, 1); err == nil {
		t.Fatal("bad coop fraction accepted")
	}
}

func TestBinaryInitialFraction(t *testing.T) {
	l, err := NewBinary(60, 60, 1.9, 0.7, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := l.CoopFraction()
	if f < 0.6 || f > 0.8 {
		t.Fatalf("initial coop fraction %v, want ~0.7", f)
	}
}

func TestBinaryAllCooperatorsStable(t *testing.T) {
	l, _ := NewBinary(20, 20, 1.9, 1.0, 3)
	l.Run(20)
	if l.CoopFraction() != 1 {
		t.Fatal("uniform cooperation destabilised itself")
	}
	if l.Generation() != 20 {
		t.Fatalf("generation %d", l.Generation())
	}
}

func TestBinaryAllDefectorsStable(t *testing.T) {
	l, _ := NewBinary(20, 20, 1.9, 0.0, 3)
	l.Run(20)
	if l.CoopFraction() != 0 {
		t.Fatal("uniform defection destabilised itself")
	}
}

func TestBinaryLowTemptationCooperatorsPrevail(t *testing.T) {
	// b < 8/5: even a 50/50 start consolidates into strong cooperation.
	l, _ := NewBinary(40, 40, 1.3, 0.5, 4)
	l.Run(100)
	if f := l.CoopFraction(); f < 0.8 {
		t.Fatalf("coop fraction %v at b=1.3, want > 0.8", f)
	}
}

func TestBinaryHighTemptationDefectorsPrevail(t *testing.T) {
	// b well above 2: defection sweeps.
	l, _ := NewBinary(40, 40, 2.6, 0.9, 5)
	l.Run(100)
	if f := l.CoopFraction(); f > 0.05 {
		t.Fatalf("coop fraction %v at b=2.6, want near 0", f)
	}
}

func TestBinaryChaosRegimeCoexistence(t *testing.T) {
	// Nowak & May's dynamic coexistence in the 1.8 < b < 2 window: on a
	// large enough lattice the cooperator fraction converges to the famous
	// ~0.318 asymptote regardless of the starting mix. (Small lattices
	// suffer wrap-around interference and can collapse — a finite-size
	// effect, not a dynamics property.)
	for _, start := range []float64{0.9, 0.6} {
		l, _ := NewBinary(100, 100, 1.9, start, 6)
		l.Run(150)
		f := l.CoopFraction()
		if f < 0.2 || f > 0.45 {
			t.Errorf("coop fraction %v at b=1.9 from %v start; want ~0.318", f, start)
		}
	}
}

func TestBinarySingleDefectorKaleidoscopeSymmetry(t *testing.T) {
	// A lone defector in a sea of cooperators inside the coexistence
	// window grows a four-fold symmetric pattern (the famous
	// kaleidoscope). The dynamics are deterministic, so symmetry must be
	// exact. The lattice must be large enough that the pattern has not
	// wrapped around within the probed horizon.
	const n = 69 // odd, centre cell exists
	l, _ := NewBinary(n, n, 1.85, 1.0, 7)
	l.SetCell(n/2, n/2, false)
	l.Run(20)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			// Reflect through the centre.
			if l.Cell(x, y) != l.Cell(n-1-x, y) || l.Cell(x, y) != l.Cell(x, n-1-y) {
				t.Fatalf("pattern lost symmetry at (%d,%d) after %d steps", x, y, l.Generation())
			}
		}
	}
	f := l.CoopFraction()
	if f == 1 {
		t.Fatal("lone defector died out at b=1.85; it should spread")
	}
	if f < 0.3 {
		t.Fatalf("defection swept (%v cooperation) at b=1.85; should coexist", f)
	}
}

func TestBinaryDeterministic(t *testing.T) {
	a, _ := NewBinary(30, 30, 1.9, 0.5, 8)
	b, _ := NewBinary(30, 30, 1.9, 0.5, 8)
	a.Run(50)
	b.Run(50)
	for y := 0; y < 30; y++ {
		for x := 0; x < 30; x++ {
			if a.Cell(x, y) != b.Cell(x, y) {
				t.Fatal("identical seeds diverged")
			}
		}
	}
}

func TestBinaryAscii(t *testing.T) {
	l, _ := NewBinary(4, 3, 1.9, 1.0, 9)
	l.SetCell(1, 1, false)
	art := l.Ascii()
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 3 || lines[1] != ".#.." {
		t.Fatalf("ascii = %q", art)
	}
}

func TestIPDValidation(t *testing.T) {
	if _, err := NewIPD(IPDConfig{W: 2, H: 5, Memory: 1}); err == nil {
		t.Fatal("tiny lattice accepted")
	}
	if _, err := NewIPD(IPDConfig{W: 5, H: 5, Memory: 0}); err == nil {
		t.Fatal("memory 0 accepted")
	}
	if _, err := NewIPD(IPDConfig{W: 5, H: 5, Memory: 1, Mu: 2}); err == nil {
		t.Fatal("mu 2 accepted")
	}
	bad := IPDConfig{W: 5, H: 5, Memory: 1}
	bad.Rules = game.Rules{Payoff: game.Payoff{R: 1, S: 2, T: 3, P: 4}, Rounds: 5}
	if _, err := NewIPD(bad); err == nil {
		t.Fatal("bad rules accepted")
	}
}

func TestIPDTFTIslandRepelsDefectors(t *testing.T) {
	// Seed a lattice of ALLD with a TFT block: inside the block TFT pairs
	// earn R while ALLD earns ~P, so the reciprocator island must survive
	// imitate-best dynamics.
	sp := strategy.NewSpace(1)
	cfg := IPDConfig{W: 12, H: 12, Memory: 1, Seed: 10}
	cfg.Rules = game.DefaultRules()
	cfg.Rules.Rounds = 50
	l, err := NewIPD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	alld := strategy.AllD(sp)
	tft := strategy.TFT(sp)
	for y := 0; y < 12; y++ {
		for x := 0; x < 12; x++ {
			l.SetCell(x, y, alld)
		}
	}
	for y := 4; y < 8; y++ {
		for x := 4; x < 8; x++ {
			l.SetCell(x, y, tft)
		}
	}
	l.Run(10)
	if f := l.FractionNear(tft); f < 0.1 {
		t.Fatalf("TFT island collapsed to %v", f)
	}
}

func TestIPDAllDInvadesAllC(t *testing.T) {
	// A defector cell in an unconditional-cooperator lattice earns T from
	// every neighbour and must spread under imitate-best.
	sp := strategy.NewSpace(1)
	cfg := IPDConfig{W: 9, H: 9, Memory: 1, Seed: 11}
	cfg.Rules = game.DefaultRules()
	cfg.Rules.Rounds = 20
	l, err := NewIPD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	allc := strategy.AllC(sp)
	for y := 0; y < 9; y++ {
		for x := 0; x < 9; x++ {
			l.SetCell(x, y, allc)
		}
	}
	l.SetCell(4, 4, strategy.AllD(sp))
	before := l.FractionNear(strategy.AllD(sp))
	l.Run(4)
	after := l.FractionNear(strategy.AllD(sp))
	if after <= before {
		t.Fatalf("ALLD did not spread: %v -> %v", before, after)
	}
}

func TestIPDMutationChurns(t *testing.T) {
	cfg := IPDConfig{W: 8, H: 8, Memory: 1, Mu: 0.5, Seed: 12}
	cfg.Rules = game.DefaultRules()
	cfg.Rules.Rounds = 10
	l, err := NewIPD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l.Run(3)
	// With heavy mutation the lattice cannot be uniform.
	first := l.Cell(0, 0)
	uniform := true
	for y := 0; y < 8 && uniform; y++ {
		for x := 0; x < 8; x++ {
			if !l.Cell(x, y).Equal(first) {
				uniform = false
				break
			}
		}
	}
	if uniform {
		t.Fatal("heavy mutation left a uniform lattice")
	}
}

func TestIPDDeterministic(t *testing.T) {
	mk := func() *IPD {
		cfg := IPDConfig{W: 7, H: 7, Memory: 1, Mu: 0.1, Mixed: true, Seed: 13}
		cfg.Rules = game.DefaultRules()
		cfg.Rules.Rounds = 10
		cfg.Rules.ErrorRate = 0.01
		l, err := NewIPD(cfg)
		if err != nil {
			t.Fatal(err)
		}
		l.Run(5)
		return l
	}
	a, b := mk(), mk()
	for y := 0; y < 7; y++ {
		for x := 0; x < 7; x++ {
			if !a.Cell(x, y).Equal(b.Cell(x, y)) {
				t.Fatal("identical seeds diverged")
			}
		}
	}
}

func TestIPDMetricsAndAscii(t *testing.T) {
	cfg := IPDConfig{W: 5, H: 5, Memory: 1, Seed: 14}
	l, err := NewIPD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := l.MeanCooperationProb()
	if m < 0 || m > 1 {
		t.Fatalf("mean coop prob %v", m)
	}
	art := l.Ascii()
	if strings.Count(art, "\n") != 5 {
		t.Fatalf("ascii rows: %q", art)
	}
	if l.Generation() != 0 {
		t.Fatal("fresh lattice has nonzero generation")
	}
}
