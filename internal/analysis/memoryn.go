package analysis

import (
	"fmt"
	"math"

	"repro/internal/game"
	"repro/internal/strategy"
)

// MarkovPayoffN returns the exact expected per-round payoffs of the
// infinitely repeated game between two strategies of any memory depth n,
// under execution errors. The joint process is a Markov chain over the
// 4^n states of player 0's view; each state has only four successors (the
// joint move), so the chain is sparse and power iteration costs O(4^n)
// per step even at memory six.
//
// As with the memory-one MarkovPayoff, fully deterministic play is resolved
// exactly by cycle detection, and stochastic play by burn-in plus Cesàro
// averaging from the all-cooperate initial state.
func MarkovPayoffN(payoff game.Payoff, s0, s1 strategy.Strategy, errRate float64) (pi0, pi1 float64, err error) {
	sp := s0.Space()
	if s1.Space() != sp {
		return 0, 0, fmt.Errorf("analysis: mismatched strategy spaces")
	}
	// Negated comparison so NaN (for which both bounds are false) is
	// rejected rather than silently poisoning the chain.
	if !(errRate >= 0 && errRate <= 1) {
		return 0, 0, fmt.Errorf("analysis: error rate %v out of [0,1]", errRate)
	}
	n := sp.NumStates()

	// Per-state effective cooperation probabilities for both players.
	p0 := make([]float64, n)
	p1 := make([]float64, n)
	deterministic := true
	for s := 0; s < n; s++ {
		p0[s] = effectiveCoopProb(s0, uint32(s), errRate)
		p1[s] = effectiveCoopProb(s1, sp.Opposing(uint32(s)), errRate)
		if (p0[s] != 0 && p0[s] != 1) || (p1[s] != 0 && p1[s] != 1) {
			deterministic = false
		}
	}

	// successor[s][m] is the next state from s under joint move m
	// (m = my<<1|opp).
	succ := make([][4]uint32, n)
	for s := 0; s < n; s++ {
		for m := 0; m < 4; m++ {
			succ[s][m] = sp.NextState(uint32(s), strategy.Move(m>>1), strategy.Move(m&1))
		}
	}
	perState0 := [4]float64{payoff.R, payoff.S, payoff.T, payoff.P}
	perState1 := [4]float64{payoff.R, payoff.T, payoff.S, payoff.P}
	// movePr returns the probability of joint move m in state s.
	movePr := func(s, m int) float64 {
		pm := p0[s]
		if m>>1 == 1 {
			pm = 1 - p0[s]
		}
		po := p1[s]
		if m&1 == 1 {
			po = 1 - p1[s]
		}
		return pm * po
	}

	if deterministic {
		// Exact cycle detection on the joint-state walk.
		seen := make(map[uint32]int, 64)
		var path []uint32
		st := sp.InitialState()
		for {
			if first, ok := seen[st]; ok {
				var c0, c1 float64
				cycle := path[first:]
				for _, cs := range cycle {
					m := deterministicMove(p0[cs])<<1 | deterministicMove(p1[cs])
					c0 += perState0[m]
					c1 += perState1[m]
				}
				return c0 / float64(len(cycle)), c1 / float64(len(cycle)), nil
			}
			seen[st] = len(path)
			path = append(path, st)
			m := deterministicMove(p0[st])<<1 | deterministicMove(p1[st])
			st = succ[st][m]
		}
	}

	// Stochastic: sparse power iteration with early convergence, then
	// Cesàro averaging if the chain is slow-mixing.
	cur := make([]float64, n)
	next := make([]float64, n)
	cur[sp.InitialState()] = 1
	step := func() {
		for i := range next {
			next[i] = 0
		}
		for s := 0; s < n; s++ {
			if cur[s] == 0 {
				continue
			}
			for m := 0; m < 4; m++ {
				if pr := movePr(s, m); pr > 0 {
					next[succ[s][m]] += cur[s] * pr
				}
			}
		}
		cur, next = next, cur
	}
	expected := func(dist []float64) (e0, e1 float64) {
		for s := 0; s < n; s++ {
			if dist[s] == 0 {
				continue
			}
			for m := 0; m < 4; m++ {
				pr := movePr(s, m)
				e0 += dist[s] * pr * perState0[m]
				e1 += dist[s] * pr * perState1[m]
			}
		}
		return e0, e1
	}

	const burnin = 1 << 13
	for t := 0; t < burnin; t++ {
		prev := append([]float64(nil), cur...)
		step()
		if t%16 == 15 {
			d := 0.0
			for i := range cur {
				d += math.Abs(cur[i] - prev[i])
			}
			if d < 1e-13 {
				pi0, pi1 = expected(cur)
				return pi0, pi1, nil
			}
		}
	}
	var a0, a1 float64
	const horizon = 1 << 15
	for t := 0; t < horizon; t++ {
		e0, e1 := expected(cur)
		a0 += e0
		a1 += e1
		step()
	}
	return a0 / horizon, a1 / horizon, nil
}

func deterministicMove(coopProb float64) int {
	if coopProb >= 1 {
		return 0
	}
	return 1
}
