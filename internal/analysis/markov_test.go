package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/game"
	"repro/internal/rng"
	"repro/internal/strategy"
)

var payoff = game.StandardPayoff()

func sp1() strategy.Space { return strategy.NewSpace(1) }

func TestMarkovKnownMatchups(t *testing.T) {
	cases := []struct {
		name     string
		s0, s1   strategy.Strategy
		pi0, pi1 float64
	}{
		{"ALLC vs ALLC", strategy.AllC(sp1()), strategy.AllC(sp1()), 3, 3},
		{"ALLD vs ALLC", strategy.AllD(sp1()), strategy.AllC(sp1()), 4, 0},
		{"ALLD vs ALLD", strategy.AllD(sp1()), strategy.AllD(sp1()), 1, 1},
		{"TFT vs TFT", strategy.TFT(sp1()), strategy.TFT(sp1()), 3, 3},
		{"WSLS vs WSLS", strategy.WSLS(sp1()), strategy.WSLS(sp1()), 3, 3},
		// WSLS vs ALLD alternates C and D: payoffs average (0+1)/2 vs (4+1)/2.
		{"WSLS vs ALLD", strategy.WSLS(sp1()), strategy.AllD(sp1()), 0.5, 2.5},
	}
	for _, c := range cases {
		pi0, pi1, err := MarkovPayoff(payoff, c.s0, c.s1, 0)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if math.Abs(pi0-c.pi0) > 1e-6 || math.Abs(pi1-c.pi1) > 1e-6 {
			t.Errorf("%s: payoffs (%v,%v), want (%v,%v)", c.name, pi0, pi1, c.pi0, c.pi1)
		}
	}
}

func TestMarkovValidation(t *testing.T) {
	if _, _, err := MarkovPayoff(payoff, strategy.AllC(strategy.NewSpace(2)), strategy.AllC(strategy.NewSpace(2)), 0); err == nil {
		t.Fatal("memory-2 accepted")
	}
	if _, _, err := MarkovPayoff(payoff, strategy.AllC(sp1()), strategy.AllC(strategy.NewSpace(2)), 0); err == nil {
		t.Fatal("mismatched spaces accepted")
	}
	if _, _, err := MarkovPayoff(payoff, strategy.AllC(sp1()), strategy.AllC(sp1()), 1.5); err == nil {
		t.Fatal("error rate 1.5 accepted")
	}
}

func TestMarkovErrorsDegradeTFTNotWSLS(t *testing.T) {
	// The paper's §III-E claim, exactly: under errors TFT self-play payoff
	// collapses toward the alternating average while WSLS self-play stays
	// near R.
	tft := strategy.TFT(sp1())
	wsls := strategy.WSLS(sp1())
	const e = 0.01
	tftPi, _, err := MarkovPayoff(payoff, tft, tft, e)
	if err != nil {
		t.Fatal(err)
	}
	wslsPi, _, err := MarkovPayoff(payoff, wsls, wsls, e)
	if err != nil {
		t.Fatal(err)
	}
	if wslsPi <= tftPi {
		t.Fatalf("WSLS self-play %v should exceed TFT self-play %v at 1%% errors", wslsPi, tftPi)
	}
	if wslsPi < 2.8 {
		t.Fatalf("WSLS self-play payoff %v, want near 3", wslsPi)
	}
	// TFT with errors: the pair spends equal time in all four states in
	// the limit of the error-driven chain -> payoff -> 2.0.
	if math.Abs(tftPi-2.0) > 0.1 {
		t.Fatalf("TFT self-play payoff %v, want near 2.0", tftPi)
	}
}

func TestMarkovMatchesSampledEngine(t *testing.T) {
	// Ground truth vs the sampled engine: long sampled matches converge to
	// the Markov payoff for random mixed strategies with errors.
	master := rng.New(3)
	rules := game.DefaultRules()
	rules.Rounds = 200000
	rules.ErrorRate = 0.02
	for trial := 0; trial < 5; trial++ {
		s0 := strategy.RandomMixed(sp1(), master)
		s1 := strategy.RandomMixed(sp1(), master)
		exact0, exact1, err := MarkovPayoff(rules.Payoff, s0, s1, rules.ErrorRate)
		if err != nil {
			t.Fatal(err)
		}
		res := game.Play(rules, s0, s1, master)
		if math.Abs(res.Mean0()-exact0) > 0.02 || math.Abs(res.Mean1()-exact1) > 0.02 {
			t.Errorf("trial %d: sampled (%v,%v) vs exact (%v,%v)",
				trial, res.Mean0(), res.Mean1(), exact0, exact1)
		}
	}
}

func TestMarkovPayoffSumProperty(t *testing.T) {
	// Joint payoff per round is bounded by [2P', 2R] envelope: between the
	// worst (both sucker/punish mix) and best joint outcomes: in [1+0, 3+3].
	f := func(seed uint64) bool {
		master := rng.New(seed)
		s0 := strategy.RandomMixed(sp1(), master)
		s1 := strategy.RandomMixed(sp1(), master)
		pi0, pi1, err := MarkovPayoff(payoff, s0, s1, 0.01)
		if err != nil {
			return false
		}
		sum := pi0 + pi1
		return sum >= 2*payoff.P-1e-9 && sum <= 2*payoff.R+1e-9 || sum >= payoff.S+payoff.T-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMarkovSymmetry(t *testing.T) {
	f := func(seed uint64) bool {
		master := rng.New(seed)
		s0 := strategy.RandomMixed(sp1(), master)
		s1 := strategy.RandomMixed(sp1(), master)
		a0, a1, err := MarkovPayoff(payoff, s0, s1, 0.05)
		if err != nil {
			return false
		}
		b0, b1, err := MarkovPayoff(payoff, s1, s0, 0.05)
		if err != nil {
			return false
		}
		return math.Abs(a0-b1) < 1e-6 && math.Abs(a1-b0) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMarkovNearPeriodicChainCesaro(t *testing.T) {
	// A "flip" strategy oscillates CC -> DD -> CC deterministically; with a
	// vanishing error rate the chain is nearly periodic, the fixed-point
	// fast path cannot converge, and the Cesàro fallback must deliver the
	// period average: payoffs (R + P)/2 = 2.
	sp := sp1()
	flip := strategy.PureFromMoves(sp, []strategy.Move{
		strategy.Defect,    // CC -> D
		strategy.Cooperate, // CD
		strategy.Cooperate, // DC
		strategy.Cooperate, // DD -> C
	})
	pi0, pi1, err := MarkovPayoff(payoff, flip, flip, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi0-2) > 0.01 || math.Abs(pi1-2) > 0.01 {
		t.Fatalf("near-periodic self-play payoffs (%v,%v), want ~2", pi0, pi1)
	}
	// The generalised sparse chain must agree.
	n0, n1, err := MarkovPayoffN(payoff, flip, flip, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(n0-2) > 0.01 || math.Abs(n1-2) > 0.01 {
		t.Fatalf("sparse near-periodic payoffs (%v,%v), want ~2", n0, n1)
	}
}

func TestExactPureKnownMatchups(t *testing.T) {
	for _, mem := range []int{1, 2, 3} {
		sp := strategy.NewSpace(mem)
		pi0, pi1, err := ExactPure(payoff, strategy.TFT(sp), strategy.AllD(sp))
		if err != nil {
			t.Fatal(err)
		}
		// Long-run: TFT defects forever after round 1 -> cycle payoff (1,1).
		if pi0 != 1 || pi1 != 1 {
			t.Errorf("memory %d TFT vs ALLD long-run (%v,%v), want (1,1)", mem, pi0, pi1)
		}
		pi0, pi1, err = ExactPure(payoff, strategy.WSLS(sp), strategy.AllD(sp))
		if err != nil {
			t.Fatal(err)
		}
		if pi0 != 0.5 || pi1 != 2.5 {
			t.Errorf("memory %d WSLS vs ALLD long-run (%v,%v), want (0.5,2.5)", mem, pi0, pi1)
		}
	}
}

func TestExactPureMatchesMarkovMemoryOne(t *testing.T) {
	master := rng.New(5)
	for trial := 0; trial < 50; trial++ {
		s0 := strategy.RandomPure(sp1(), master)
		s1 := strategy.RandomPure(sp1(), master)
		c0, c1, err := ExactPure(payoff, s0, s1)
		if err != nil {
			t.Fatal(err)
		}
		m0, m1, err := MarkovPayoff(payoff, s0, s1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(c0-m0) > 1e-6 || math.Abs(c1-m1) > 1e-6 {
			t.Fatalf("trial %d: cycle (%v,%v) vs markov (%v,%v)", trial, c0, c1, m0, m1)
		}
	}
}

func TestExactPureMatchesLongSampledGame(t *testing.T) {
	// For any memory depth, a long sampled game's mean converges to the
	// cycle average (transient contributions vanish).
	master := rng.New(6)
	rules := game.DefaultRules()
	rules.Rounds = 100000
	for _, mem := range []int{2, 4, 6} {
		sp := strategy.NewSpace(mem)
		s0 := strategy.RandomPure(sp, master)
		s1 := strategy.RandomPure(sp, master)
		e0, e1, err := ExactPure(rules.Payoff, s0, s1)
		if err != nil {
			t.Fatal(err)
		}
		res := game.Play(rules, s0, s1, master)
		if math.Abs(res.Mean0()-e0) > 0.01 || math.Abs(res.Mean1()-e1) > 0.01 {
			t.Errorf("memory %d: sampled (%v,%v) vs exact (%v,%v)", mem, res.Mean0(), res.Mean1(), e0, e1)
		}
	}
}

func TestExactPureMismatchedSpaces(t *testing.T) {
	if _, _, err := ExactPure(payoff, strategy.AllC(sp1()), strategy.AllC(strategy.NewSpace(2))); err == nil {
		t.Fatal("mismatched spaces accepted")
	}
}

func TestCooperationRatePure(t *testing.T) {
	r, err := CooperationRatePure(strategy.AllC(sp1()), strategy.AllC(sp1()))
	if err != nil || r != 1 {
		t.Fatalf("ALLC self coop rate %v (%v)", r, err)
	}
	r, err = CooperationRatePure(strategy.AllD(sp1()), strategy.AllD(sp1()))
	if err != nil || r != 0 {
		t.Fatalf("ALLD self coop rate %v", r)
	}
	// WSLS vs ALLD: WSLS alternates C/D, ALLD never cooperates -> 1/4.
	r, err = CooperationRatePure(strategy.WSLS(sp1()), strategy.AllD(sp1()))
	if err != nil || r != 0.25 {
		t.Fatalf("WSLS vs ALLD coop rate %v, want 0.25", r)
	}
	if _, err := CooperationRatePure(strategy.AllC(sp1()), strategy.AllC(strategy.NewSpace(2))); err == nil {
		t.Fatal("mismatched spaces accepted")
	}
}

func BenchmarkMarkovPayoff(b *testing.B) {
	s0 := strategy.GTFT(sp1(), 1.0/3.0)
	s1 := strategy.WSLS(sp1())
	for i := 0; i < b.N; i++ {
		if _, _, err := MarkovPayoff(payoff, s0, s1, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactPureMemory6(b *testing.B) {
	sp := strategy.NewSpace(6)
	master := rng.New(7)
	s0 := strategy.RandomPure(sp, master)
	s1 := strategy.RandomPure(sp, master)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ExactPure(payoff, s0, s1); err != nil {
			b.Fatal(err)
		}
	}
}
