// Package analysis provides exact (non-sampled) evaluation of Iterated
// Prisoner's Dilemma match-ups.
//
// For memory-one strategies — pure or mixed, with or without execution
// errors — a match is a Markov chain over the four joint states
// {CC, CD, DC, DD}; its stationary distribution gives the exact long-run
// per-round payoff. This is the analytic machinery behind the
// Nowak-Sigmund Win-Stay Lose-Shift study the paper validates against
// (Fig. 2), and it serves as ground truth for the sampled game engine in
// tests and ablations.
//
// For pure strategies of any memory depth without errors, play is
// eventually periodic; ExactPure detects the cycle and returns the exact
// long-run payoff without simulating every round.
package analysis

import (
	"fmt"
	"math"

	"repro/internal/game"
	"repro/internal/strategy"
)

// effectiveCoopProb returns the probability the executed move is C in the
// given state, folding the per-move execution error into the strategy's
// intended cooperation probability.
func effectiveCoopProb(s strategy.Strategy, state uint32, errRate float64) float64 {
	p := s.CooperateProb(state)
	return p*(1-errRate) + (1-p)*errRate
}

// MarkovPayoff returns the exact expected per-round payoffs (to s0 and s1)
// of the infinitely repeated game between two memory-one strategies under
// the given payoff matrix and execution-error rate.
//
// With errRate > 0 (or strictly mixed strategies) the chain is ergodic and
// the stationary distribution is unique. For deterministic error-free play
// the chain may be periodic or multi-recurrent; MarkovPayoff then averages
// over the trajectory from the all-cooperate initial state, matching the
// game engine's convention.
func MarkovPayoff(payoff game.Payoff, s0, s1 strategy.Strategy, errRate float64) (pi0, pi1 float64, err error) {
	sp := s0.Space()
	if sp.Memory() != 1 {
		return 0, 0, fmt.Errorf("analysis: MarkovPayoff needs memory-one strategies, got memory-%d", sp.Memory())
	}
	if s1.Space() != sp {
		return 0, 0, fmt.Errorf("analysis: mismatched strategy spaces")
	}
	if errRate < 0 || errRate > 1 {
		return 0, 0, fmt.Errorf("analysis: error rate %v out of [0,1]", errRate)
	}

	// Transition matrix over joint states from player 0's view:
	// 0=CC, 1=CD, 2=DC, 3=DD (my move << 1 | opp move).
	var T [4][4]float64
	for from := uint32(0); from < 4; from++ {
		p0 := effectiveCoopProb(s0, from, errRate)
		p1 := effectiveCoopProb(s1, sp.Opposing(from), errRate)
		for my := 0; my < 2; my++ {
			for opp := 0; opp < 2; opp++ {
				pm := p0
				if my == 1 {
					pm = 1 - p0
				}
				po := p1
				if opp == 1 {
					po = 1 - p1
				}
				to := uint32(my<<1 | opp)
				T[from][to] = pm * po
			}
		}
	}

	dist, err := stationary(T)
	if err != nil {
		return 0, 0, err
	}
	payoffs0 := [4]float64{payoff.R, payoff.S, payoff.T, payoff.P}
	payoffs1 := [4]float64{payoff.R, payoff.T, payoff.S, payoff.P}
	for st := 0; st < 4; st++ {
		pi0 += dist[st] * payoffs0[st]
		pi1 += dist[st] * payoffs1[st]
	}
	return pi0, pi1, nil
}

// stationary computes the long-run (Cesàro) state distribution of the
// chain started from the all-cooperate state (index 0), the engines'
// convention.
//
// Fully deterministic chains (every transition probability 0 or 1) are
// walked exactly: the trajectory enters a cycle within four steps and the
// limit is the uniform distribution over that cycle. Chains with any
// genuine randomness mix geometrically, so a burn-in followed by a long
// Cesàro average converges to the limit distribution to well below the
// 1e-9 level the payoff arithmetic needs.
func stationary(T [4][4]float64) ([4]float64, error) {
	if det, dist := deterministicLimit(T); det {
		return dist, nil
	}
	cur := [4]float64{1, 0, 0, 0}
	step := func() {
		var next [4]float64
		for from := 0; from < 4; from++ {
			if cur[from] == 0 {
				continue
			}
			for to := 0; to < 4; to++ {
				next[to] += cur[from] * T[from][to]
			}
		}
		cur = next
	}
	// Ergodic fast path: iterate to the fixed point and return it as soon
	// as the distribution stops moving (geometric convergence for chains
	// with genuine randomness).
	const burnin = 1 << 13
	for t := 0; t < burnin; t++ {
		prev := cur
		step()
		if t%8 == 7 {
			d := math.Abs(cur[0]-prev[0]) + math.Abs(cur[1]-prev[1]) +
				math.Abs(cur[2]-prev[2]) + math.Abs(cur[3]-prev[3])
			if d < 1e-14 {
				return cur, nil
			}
		}
	}
	// Slow-mixing or near-periodic: Cesàro average over a long horizon.
	var avg [4]float64
	const horizon = 1 << 16
	for t := 0; t < horizon; t++ {
		for i := 0; i < 4; i++ {
			avg[i] += cur[i]
		}
		step()
	}
	total := 0.0
	for i := 0; i < 4; i++ {
		avg[i] /= horizon
		total += avg[i]
	}
	if math.Abs(total-1) > 1e-9 {
		return avg, fmt.Errorf("analysis: distribution mass %v != 1", total)
	}
	return avg, nil
}

// deterministicLimit checks whether the chain is fully deterministic
// (every row is a unit vector); if so it walks the trajectory from state 0
// and returns the exact uniform distribution over the entered cycle.
func deterministicLimit(T [4][4]float64) (bool, [4]float64) {
	var next [4]int
	for from := 0; from < 4; from++ {
		found := -1
		for to := 0; to < 4; to++ {
			switch T[from][to] {
			case 1:
				found = to
			case 0:
			default:
				return false, [4]float64{}
			}
		}
		if found < 0 {
			return false, [4]float64{}
		}
		next[from] = found
	}
	visitedAt := [4]int{-1, -1, -1, -1}
	path := make([]int, 0, 5)
	st := 0
	for visitedAt[st] < 0 {
		visitedAt[st] = len(path)
		path = append(path, st)
		st = next[st]
	}
	cycle := path[visitedAt[st]:]
	var dist [4]float64
	for _, s := range cycle {
		dist[s] += 1.0 / float64(len(cycle))
	}
	return true, dist
}

// ExactPure returns the exact long-run mean per-round payoffs of
// deterministic, error-free play between two pure strategies of any memory
// depth, by detecting the inevitable state cycle. Play from the
// all-cooperate view is a deterministic walk on at most 4^n joint states,
// so it enters a cycle within 4^n steps; the long-run payoff is the cycle
// average.
func ExactPure(payoff game.Payoff, s0, s1 *strategy.Pure) (pi0, pi1 float64, err error) {
	sp := s0.Space()
	if s1.Space() != sp {
		return 0, 0, fmt.Errorf("analysis: mismatched strategy spaces")
	}
	type joint struct{ a, b uint32 }
	seen := make(map[joint]int) // joint state -> step index when first seen
	var pay0, pay1 []float64

	stA, stB := sp.InitialState(), sp.InitialState()
	for step := 0; ; step++ {
		j := joint{stA, stB}
		if first, ok := seen[j]; ok {
			// Cycle covers steps [first, step); average its payoffs.
			var c0, c1 float64
			n := step - first
			for i := first; i < step; i++ {
				c0 += pay0[i]
				c1 += pay1[i]
			}
			return c0 / float64(n), c1 / float64(n), nil
		}
		seen[j] = step
		m0 := s0.MoveAt(stA)
		m1 := s1.MoveAt(stB)
		f0, f1 := payoff.Score(m0, m1)
		pay0 = append(pay0, f0)
		pay1 = append(pay1, f1)
		stA = sp.NextState(stA, m0, m1)
		stB = sp.NextState(stB, m1, m0)
	}
}

// CooperationRatePure returns the exact long-run fraction of cooperative
// moves in deterministic error-free play between two pure strategies.
func CooperationRatePure(s0, s1 *strategy.Pure) (float64, error) {
	sp := s0.Space()
	if s1.Space() != sp {
		return 0, fmt.Errorf("analysis: mismatched strategy spaces")
	}
	type joint struct{ a, b uint32 }
	seen := make(map[joint]int)
	var coops []float64

	stA, stB := sp.InitialState(), sp.InitialState()
	for step := 0; ; step++ {
		j := joint{stA, stB}
		if first, ok := seen[j]; ok {
			var c float64
			n := step - first
			for i := first; i < step; i++ {
				c += coops[i]
			}
			return c / float64(2*n), nil
		}
		seen[j] = step
		m0 := s0.MoveAt(stA)
		m1 := s1.MoveAt(stB)
		c := 0.0
		if m0 == strategy.Cooperate {
			c++
		}
		if m1 == strategy.Cooperate {
			c++
		}
		coops = append(coops, c)
		stA = sp.NextState(stA, m0, m1)
		stB = sp.NextState(stB, m1, m0)
	}
}
