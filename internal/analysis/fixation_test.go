package analysis

import (
	"math"
	"testing"

	"repro/internal/strategy"
)

func TestNeutralFixationBenchmark(t *testing.T) {
	if NeutralFixation(10) != 0.1 {
		t.Fatal("neutral benchmark wrong")
	}
	// A mutant identical in payoff terms to the resident (TFT vs ALLC in a
	// noise-free world: both always cooperate) must fixate at exactly 1/N
	// for any beta.
	cfg := FixationConfig{N: 8, Beta: 2}
	rho, err := FixationProbability(cfg, strategy.TFT(sp1()), strategy.AllC(sp1()))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-1.0/8) > 1e-12 {
		t.Fatalf("neutral fixation = %v, want 1/8", rho)
	}
}

func TestFixationFavoursALLDInvadingALLC(t *testing.T) {
	cfg := FixationConfig{N: 6, Beta: 0.5}
	out, err := AnalyzeInvasion(cfg, strategy.AllD(sp1()), strategy.AllC(sp1()))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Favoured {
		t.Fatal("ALLD invading ALLC should be favoured")
	}
	// Constant payoff gap delta = 1.6 per round gives the closed form
	// rho = 1/(1 + sum_{j=1..5} exp(-0.8 j)).
	want := 0.0
	for j := 1; j <= 5; j++ {
		want += math.Exp(-0.8 * float64(j))
	}
	want = 1 / (1 + want)
	if math.Abs(out.Fixation-want) > 1e-9 {
		t.Fatalf("fixation = %v, closed form %v", out.Fixation, want)
	}
}

func TestFixationDisfavoursALLDInvadingTFT(t *testing.T) {
	// TFT residents punish: ALLD earns ~P against them while they earn ~R
	// among themselves, so the lone defector's fixation must fall below
	// neutral.
	cfg := FixationConfig{N: 10, Beta: 1}
	out, err := AnalyzeInvasion(cfg, strategy.AllD(sp1()), strategy.TFT(sp1()))
	if err != nil {
		t.Fatal(err)
	}
	if out.Favoured {
		t.Fatalf("ALLD invading TFT favoured (rho=%v, neutral=%v)", out.Fixation, out.Neutral)
	}
}

func TestFixationBetaZeroIsNeutral(t *testing.T) {
	cfg := FixationConfig{N: 12, Beta: 0}
	rho, err := FixationProbability(cfg, strategy.AllD(sp1()), strategy.AllC(sp1()))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-1.0/12) > 1e-12 {
		t.Fatalf("beta-0 fixation %v, want 1/12", rho)
	}
}

func TestFixationStrongSelectionExtremes(t *testing.T) {
	// Strong selection: a strongly favoured mutant fixates almost surely;
	// a strongly disfavoured one almost never (underflow path returns 0).
	cfg := FixationConfig{N: 20, Beta: 50}
	up, err := FixationProbability(cfg, strategy.AllD(sp1()), strategy.AllC(sp1()))
	if err != nil {
		t.Fatal(err)
	}
	if up < 0.999 {
		t.Fatalf("strongly favoured fixation %v", up)
	}
	down, err := FixationProbability(cfg, strategy.AllC(sp1()), strategy.AllD(sp1()))
	if err != nil {
		t.Fatal(err)
	}
	if down > 1e-6 {
		t.Fatalf("strongly disfavoured fixation %v", down)
	}
}

func TestFixationErrorsShiftWSLSvsTFT(t *testing.T) {
	// Without errors WSLS and TFT coexist neutrally-ish (both sustain
	// cooperation); with errors WSLS self-play is better than TFT
	// self-play, so WSLS invading TFT becomes favoured.
	noErr := FixationConfig{N: 10, Beta: 5}
	withErr := FixationConfig{N: 10, Beta: 5, ErrorRate: 0.01}
	a, err := FixationProbability(noErr, strategy.WSLS(sp1()), strategy.TFT(sp1()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := FixationProbability(withErr, strategy.WSLS(sp1()), strategy.TFT(sp1()))
	if err != nil {
		t.Fatal(err)
	}
	if b <= a {
		t.Fatalf("errors should raise WSLS's fixation into TFT: %v -> %v", a, b)
	}
	if b <= NeutralFixation(10) {
		t.Fatalf("WSLS into TFT under errors should be favoured: %v", b)
	}
}

func TestFixationValidation(t *testing.T) {
	if _, err := FixationProbability(FixationConfig{N: 1, Beta: 1}, strategy.AllC(sp1()), strategy.AllD(sp1())); err == nil {
		t.Fatal("N=1 accepted")
	}
	if _, err := FixationProbability(FixationConfig{N: 4, Beta: -1}, strategy.AllC(sp1()), strategy.AllD(sp1())); err == nil {
		t.Fatal("negative beta accepted")
	}
	if _, err := FixationProbability(FixationConfig{N: 4, Beta: 1, ErrorRate: 2}, strategy.AllC(sp1()), strategy.AllD(sp1())); err == nil {
		t.Fatal("bad error rate accepted")
	}
	if _, err := FixationProbability(FixationConfig{N: 4, Beta: 1}, strategy.AllC(sp1()), strategy.AllC(strategy.NewSpace(2))); err == nil {
		t.Fatal("mismatched spaces accepted")
	}
}
