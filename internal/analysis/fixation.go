package analysis

import (
	"fmt"
	"math"

	"repro/internal/game"
	"repro/internal/strategy"
)

// Fixation analysis for the pairwise-comparison (Fermi) process the paper's
// population dynamics implement: a finite population of N SSets holding two
// strategies — k mutants and N-k residents — where each step picks a random
// (teacher, learner) pair and the learner adopts with the Fermi probability
// of Equation 1. The mutant's fixation probability has the standard
// birth-death closed form
//
//	rho = 1 / (1 + sum_{j=1..N-1} prod_{k=1..N-1<=j} T-(k)/T+(k))
//
// with T-(k)/T+(k) = exp(-beta * (pi_M(k) - pi_R(k))) for the
// unconditional Fermi rule. Payoffs pi_M(k), pi_R(k) are the exact
// frequency-dependent Markov payoffs at mutant count k, so the whole
// quantity is analytic — and checked against the agent engine in tests.

// FixationConfig parameterises the analysis.
type FixationConfig struct {
	// Payoff is the PD matrix (zero selects the standard one).
	Payoff game.Payoff
	// ErrorRate is the execution-error rate folded into the exact payoffs.
	ErrorRate float64
	// N is the population size (>= 2).
	N int
	// Beta is the Fermi selection intensity (>= 0).
	Beta float64
}

func (c *FixationConfig) validate() error {
	if c.Payoff == (game.Payoff{}) {
		c.Payoff = game.StandardPayoff()
	}
	if err := c.Payoff.Validate(); err != nil {
		return err
	}
	if c.ErrorRate < 0 || c.ErrorRate > 1 {
		return fmt.Errorf("analysis: error rate %v out of [0,1]", c.ErrorRate)
	}
	if c.N < 2 {
		return fmt.Errorf("analysis: population %d < 2", c.N)
	}
	if c.Beta < 0 {
		return fmt.Errorf("analysis: beta %v < 0", c.Beta)
	}
	return nil
}

// payoffsAt returns the mean payoffs of mutant and resident individuals
// when k of N hold the mutant strategy, excluding self-interaction (each
// SSet plays the other N-1), from the exact pairwise Markov payoffs.
func payoffsAt(cfg FixationConfig, mm, mr, rm, rr float64, k int) (piM, piR float64) {
	n := float64(cfg.N)
	kk := float64(k)
	piM = (kk-1)*mm/(n-1) + (n-kk)*mr/(n-1)
	piR = kk*rm/(n-1) + (n-kk-1)*rr/(n-1)
	return piM, piR
}

// FixationProbability returns the probability that a single mutant playing
// `mutant` fixates in a population of N-1 residents playing `resident`
// under the unconditional Fermi pairwise-comparison process.
func FixationProbability(cfg FixationConfig, mutant, resident strategy.Strategy) (float64, error) {
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	if mutant.Space() != resident.Space() {
		return 0, fmt.Errorf("analysis: mismatched strategy spaces")
	}
	// The four pairwise exact payoffs.
	mm, _, err := MarkovPayoffN(cfg.Payoff, mutant, mutant, cfg.ErrorRate)
	if err != nil {
		return 0, err
	}
	mr, rm, err := MarkovPayoffN(cfg.Payoff, mutant, resident, cfg.ErrorRate)
	if err != nil {
		return 0, err
	}
	rr, _, err := MarkovPayoffN(cfg.Payoff, resident, resident, cfg.ErrorRate)
	if err != nil {
		return 0, err
	}
	// rho = 1 / (1 + sum_j prod_{k<=j} exp(-beta*(piM(k)-piR(k)))).
	// Work in log space to avoid under/overflow at large beta or N.
	sum := 1.0
	logProd := 0.0
	for j := 1; j <= cfg.N-1; j++ {
		piM, piR := payoffsAt(cfg, mm, mr, rm, rr, j)
		logProd += -cfg.Beta * (piM - piR)
		if logProd > 700 {
			// The product diverges: fixation probability underflows to ~0.
			return 0, nil
		}
		sum += math.Exp(logProd)
	}
	return 1 / sum, nil
}

// NeutralFixation returns the neutral benchmark 1/N: a mutant with no
// selective difference fixates with this probability. Comparing
// FixationProbability against it classifies the mutant as favoured or
// disfavoured by selection.
func NeutralFixation(n int) float64 { return 1 / float64(n) }

// InvasionAnalysis reports, for a mutant-resident pair, the fixation
// probability, the neutral benchmark, and whether selection favours the
// invasion.
type InvasionAnalysis struct {
	Fixation float64
	Neutral  float64
	Favoured bool
}

// AnalyzeInvasion runs FixationProbability and classifies the result.
func AnalyzeInvasion(cfg FixationConfig, mutant, resident strategy.Strategy) (InvasionAnalysis, error) {
	rho, err := FixationProbability(cfg, mutant, resident)
	if err != nil {
		return InvasionAnalysis{}, err
	}
	neutral := NeutralFixation(cfg.N)
	return InvasionAnalysis{Fixation: rho, Neutral: neutral, Favoured: rho > neutral}, nil
}
