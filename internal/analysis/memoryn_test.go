package analysis

import (
	"math"
	"testing"

	"repro/internal/game"
	"repro/internal/rng"
	"repro/internal/strategy"
)

func TestMarkovPayoffNMatchesMemoryOne(t *testing.T) {
	// At memory one, the generalised chain must agree with the dense
	// four-state implementation for random mixed strategies and errors.
	master := rng.New(21)
	for trial := 0; trial < 20; trial++ {
		s0 := strategy.RandomMixed(sp1(), master)
		s1 := strategy.RandomMixed(sp1(), master)
		a0, a1, err := MarkovPayoff(payoff, s0, s1, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		b0, b1, err := MarkovPayoffN(payoff, s0, s1, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a0-b0) > 1e-6 || math.Abs(a1-b1) > 1e-6 {
			t.Fatalf("trial %d: dense (%v,%v) vs sparse (%v,%v)", trial, a0, a1, b0, b1)
		}
	}
}

func TestMarkovPayoffNMatchesExactPure(t *testing.T) {
	// Deterministic play at any memory: the generalised chain's cycle
	// detection must agree with ExactPure.
	master := rng.New(22)
	for _, mem := range []int{1, 2, 3, 4, 6} {
		sp := strategy.NewSpace(mem)
		for trial := 0; trial < 5; trial++ {
			s0 := strategy.RandomPure(sp, master)
			s1 := strategy.RandomPure(sp, master)
			a0, a1, err := ExactPure(payoff, s0, s1)
			if err != nil {
				t.Fatal(err)
			}
			b0, b1, err := MarkovPayoffN(payoff, s0, s1, 0)
			if err != nil {
				t.Fatal(err)
			}
			if a0 != b0 || a1 != b1 {
				t.Fatalf("memory %d trial %d: (%v,%v) vs (%v,%v)", mem, trial, a0, a1, b0, b1)
			}
		}
	}
}

func TestMarkovPayoffNHigherMemoryWithErrors(t *testing.T) {
	// Memory-two WSLS self-play under errors must stay near R (the same
	// error-correction property as memory one), validated against a long
	// sampled game.
	sp := strategy.NewSpace(2)
	wsls := strategy.WSLS(sp)
	e0, e1, err := MarkovPayoffN(payoff, wsls, wsls, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e0-e1) > 1e-9 {
		t.Fatalf("symmetric self-play asymmetric: %v vs %v", e0, e1)
	}
	if e0 < 2.85 {
		t.Fatalf("memory-2 WSLS self-play payoff %v, want near 3", e0)
	}
	rules := game.DefaultRules()
	rules.Rounds = 400000
	rules.ErrorRate = 0.01
	res := game.Play(rules, wsls, wsls, rng.New(5))
	if math.Abs(res.Mean0()-e0) > 0.02 {
		t.Fatalf("sampled %v vs exact %v", res.Mean0(), e0)
	}
}

func TestMarkovPayoffNRandomMixedMemoryThreeMatchesSampled(t *testing.T) {
	sp := strategy.NewSpace(3)
	master := rng.New(23)
	s0 := strategy.RandomMixed(sp, master)
	s1 := strategy.RandomMixed(sp, master)
	e0, e1, err := MarkovPayoffN(payoff, s0, s1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	rules := game.DefaultRules()
	rules.Rounds = 400000
	rules.ErrorRate = 0.05
	res := game.Play(rules, s0, s1, master)
	if math.Abs(res.Mean0()-e0) > 0.02 || math.Abs(res.Mean1()-e1) > 0.02 {
		t.Fatalf("sampled (%v,%v) vs exact (%v,%v)", res.Mean0(), res.Mean1(), e0, e1)
	}
}

func TestMarkovPayoffNValidation(t *testing.T) {
	if _, _, err := MarkovPayoffN(payoff, strategy.AllC(sp1()), strategy.AllC(strategy.NewSpace(2)), 0); err == nil {
		t.Fatal("mismatched spaces accepted")
	}
	if _, _, err := MarkovPayoffN(payoff, strategy.AllC(sp1()), strategy.AllC(sp1()), -0.1); err == nil {
		t.Fatal("negative error rate accepted")
	}
}

func TestMarkovPayoffNMemorySixDeterministic(t *testing.T) {
	// Memory six, deterministic: should terminate promptly via cycle
	// detection over at most 4096 joint states.
	sp := strategy.NewSpace(6)
	master := rng.New(24)
	s0 := strategy.RandomPure(sp, master)
	s1 := strategy.RandomPure(sp, master)
	pi0, pi1, err := MarkovPayoffN(payoff, s0, s1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pi0 < 0 || pi0 > 4 || pi1 < 0 || pi1 > 4 {
		t.Fatalf("payoffs out of range: %v, %v", pi0, pi1)
	}
}

func BenchmarkMarkovPayoffNMemory6Stochastic(b *testing.B) {
	sp := strategy.NewSpace(6)
	master := rng.New(25)
	s0 := strategy.RandomMixed(sp, master)
	s1 := strategy.RandomMixed(sp, master)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MarkovPayoffN(payoff, s0, s1, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}
