package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// reservedTagBase mirrors mpi.internalTagBase: tags at or above it are
// reserved for the collectives' internal protocol.
const reservedTagBase = 1 << 30

// MPITag flags magic tag literals and tag constants outside the user
// range in point-to-point calls.
//
// Comm.checkUserTag rejects tags outside [0, 1<<30) at runtime, but a
// bare `c.Send(dst, 3, ...)` still compiles and silently collides with
// any other site using 3. Tags are protocol identifiers: they must be
// named constants, declared once, below the reserved collective range.
// The mpi package's own wildcards (AnyTag, AnySource) are exempt.
var MPITag = &Analyzer{
	Name: "mpitag",
	Doc:  "user tags must be named constants inside [0, 1<<30); no magic int literals; wire frame kinds unique and in-range",
	Run:  runMPITag,
}

func runMPITag(pass *Pass) error {
	checkWireKinds(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, method, ok := mpiMethod(pass.TypesInfo, call)
			if !ok || recv != "Comm" {
				return true
			}
			idx, tagged := taggedOps[method]
			if !tagged || idx >= len(call.Args) {
				return true
			}
			checkTagExpr(pass, method, call.Args[idx])
			return true
		})
	}
	return nil
}

func checkTagExpr(pass *Pass, method string, tag ast.Expr) {
	tv, ok := pass.TypesInfo.Types[tag]
	if !ok || tv.Value == nil {
		return // dynamic tag: its named-constant parts are checked where declared
	}
	mpiConst, namedConst := constProvenance(pass, tag)
	if mpiConst {
		return // the mpi package's own AnyTag/AnySource wildcards
	}
	if !namedConst {
		pass.Reportf(tag.Pos(), "magic tag literal in %s; declare a named tag constant", method)
		return
	}
	if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact && (v < 0 || v >= reservedTagBase) {
		pass.Reportf(tag.Pos(), "tag constant %d in %s is outside the user range [0, 1<<30)", v, method)
	}
}

// constProvenance reports whether the expression references a constant
// declared in the mpi package itself, and whether it references any
// named constant at all (as opposed to being built purely of literals).
func constProvenance(pass *Pass, e ast.Expr) (mpiConst, namedConst bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		c, ok := pass.TypesInfo.Uses[id].(*types.Const)
		if !ok {
			return true
		}
		namedConst = true
		if c.Pkg() != nil && c.Pkg().Name() == "mpi" {
			mpiConst = true
		}
		return true
	})
	return mpiConst, namedConst
}

// checkWireKinds audits the wire protocol's frame-kind constants (the
// mpi transport's `frameKind` enum). Frame kinds are wire-format bytes:
// each must be unique (a collision silently misroutes frames on the
// receiving side), nonzero (0 is the decoder's "invalid" reserve), and
// the `frameKindEnd` sentinel — the decoder's upper bound — must sit
// exactly one past the highest kind, or newly added kinds would be
// rejected on the wire while still being sent.
func checkWireKinds(pass *Pass) {
	type kindConst struct {
		name string
		val  int64
		pos  token.Pos
	}
	var kinds []kindConst
	var end *kindConst
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if !ok || named.Obj().Name() != "frameKind" {
			continue
		}
		v, exact := constant.Int64Val(constant.ToInt(c.Val()))
		if !exact {
			continue
		}
		kc := kindConst{name: name, val: v, pos: c.Pos()}
		if name == "frameKindEnd" {
			end = &kc
		} else {
			kinds = append(kinds, kc)
		}
	}
	if len(kinds) == 0 {
		return
	}
	// Report in declaration order, attributing a collision to the later
	// declaration (the earlier one owned the value first).
	sort.Slice(kinds, func(i, j int) bool { return kinds[i].pos < kinds[j].pos })
	first := make(map[int64]string)
	var max int64
	for _, k := range kinds {
		if k.val == 0 {
			pass.Reportf(k.pos, "wire frame kind %s has value 0 (reserved for \"invalid\" on the wire)", k.name)
			continue
		}
		if k.val > 255 {
			pass.Reportf(k.pos, "wire frame kind %s value %d does not fit the protocol's uint8 kind byte", k.name, k.val)
			continue
		}
		if owner, dup := first[k.val]; dup {
			pass.Reportf(k.pos, "wire frame kind %s duplicates value %d of %s", k.name, k.val, owner)
			continue
		}
		first[k.val] = k.name
		if k.val > max {
			max = k.val
		}
	}
	if end != nil && end.val != max+1 {
		pass.Reportf(end.pos, "frameKindEnd is %d, want %d (one past the highest wire frame kind)", end.val, max+1)
	}
}
