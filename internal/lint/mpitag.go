package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// reservedTagBase mirrors mpi.internalTagBase: tags at or above it are
// reserved for the collectives' internal protocol.
const reservedTagBase = 1 << 30

// MPITag flags magic tag literals and tag constants outside the user
// range in point-to-point calls.
//
// Comm.checkUserTag rejects tags outside [0, 1<<30) at runtime, but a
// bare `c.Send(dst, 3, ...)` still compiles and silently collides with
// any other site using 3. Tags are protocol identifiers: they must be
// named constants, declared once, below the reserved collective range.
// The mpi package's own wildcards (AnyTag, AnySource) are exempt.
var MPITag = &Analyzer{
	Name: "mpitag",
	Doc:  "user tags must be named constants inside [0, 1<<30); no magic int literals",
	Run:  runMPITag,
}

func runMPITag(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, method, ok := mpiMethod(pass.TypesInfo, call)
			if !ok || recv != "Comm" {
				return true
			}
			idx, tagged := taggedOps[method]
			if !tagged || idx >= len(call.Args) {
				return true
			}
			checkTagExpr(pass, method, call.Args[idx])
			return true
		})
	}
	return nil
}

func checkTagExpr(pass *Pass, method string, tag ast.Expr) {
	tv, ok := pass.TypesInfo.Types[tag]
	if !ok || tv.Value == nil {
		return // dynamic tag: its named-constant parts are checked where declared
	}
	mpiConst, namedConst := constProvenance(pass, tag)
	if mpiConst {
		return // the mpi package's own AnyTag/AnySource wildcards
	}
	if !namedConst {
		pass.Reportf(tag.Pos(), "magic tag literal in %s; declare a named tag constant", method)
		return
	}
	if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact && (v < 0 || v >= reservedTagBase) {
		pass.Reportf(tag.Pos(), "tag constant %d in %s is outside the user range [0, 1<<30)", v, method)
	}
}

// constProvenance reports whether the expression references a constant
// declared in the mpi package itself, and whether it references any
// named constant at all (as opposed to being built purely of literals).
func constProvenance(pass *Pass, e ast.Expr) (mpiConst, namedConst bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		c, ok := pass.TypesInfo.Uses[id].(*types.Const)
		if !ok {
			return true
		}
		namedConst = true
		if c.Pkg() != nil && c.Pkg().Name() == "mpi" {
			mpiConst = true
		}
		return true
	})
	return mpiConst, namedConst
}
