package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// MPISession is the cross-rank session-typing analyzer: within one
// function it splits the control-flow graph at Rank()/OrigRank()-
// conditioned branches into per-rank-role sides, collects each side's
// point-to-point operations (Send/Isend/Recv/RecvTimeout/Irecv) with
// their resolved tag constants, and reports a tag that one role sends
// with no receive on any peer role — or receives with no send. At
// runtime that asymmetry is not an error value but a hang: the sender
// parks on a full channel or the receiver on an empty inbox, and with
// the wire transport it is a cross-process stall only chaos tests can
// flake into view.
//
// The check is conservative, trading false negatives for zero false
// positives on protocol code it cannot fully see:
//
//   - Only operations under a rank-conditioned guard are checked;
//     unconditioned operations run on every rank and serve as match
//     material for either side.
//   - Dynamic tags (tagBase+w) and the mpi package's AnyTag wildcard
//     match anything and are never themselves flagged, mirroring
//     mpitag's resolution rules.
//   - A function that hands a Comm (or World) to code outside its own
//     inline view — any callee other than an mpi method, a function
//     literal, or a local closure variable — is skipped entirely: the
//     peer's half of the protocol may live in the callee.
//   - Two operations on the same role side pair with each other only
//     when the role can span several ranks (e.g. the `Rank() != 0` arm,
//     where workers may exchange among themselves); a role pinned to a
//     single rank cannot meet itself.
var MPISession = &Analyzer{
	Name: "mpisession",
	Doc:  "point-to-point tags sent on one side of a Rank() branch must be received on a peer side",
	Run:  runMPISession,
}

func runMPISession(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkSession(pass, fn)
		}
	}
	return nil
}

// sessionOp is one point-to-point operation with its protocol identity.
type sessionOp struct {
	call   *ast.CallExpr
	method string
	send   bool
	role   []Guard  // the rank-conditioned guards this op runs under
	wild   bool     // dynamic tag or AnyTag: matches anything, never flagged
	tagVal int64    // resolved tag constant (when !wild)
	tagStr string   // tag expression as written, for the diagnostic
	peer   ast.Expr // dst (sends) / src (receives)
}

// sessionUnit is one function body in the inline view: the declared
// function or a nested literal, with the rank guards active at the
// literal's definition site (a closure defined under a rank branch runs
// there too — the same assumption mpicollective makes).
type sessionUnit struct {
	body *ast.BlockStmt
	base []Guard
}

func checkSession(pass *Pass, fn *ast.FuncDecl) {
	rankVars := collectRankVars(pass, fn.Body)
	closures := closureVars(pass, fn.Body)

	var ops []sessionOp
	escaped := false
	units := []sessionUnit{{body: fn.Body}}
	for len(units) > 0 {
		u := units[0]
		units = units[1:]
		g := NewCFG(u.body, pass.TypesInfo)
		reach := g.ReachableBlocks()
		for _, blk := range g.Blocks {
			if !reach[blk] {
				continue // dead code neither checks nor satisfies a session
			}
			role := append(append([]Guard(nil), u.base...), rankGuards(pass, rankVars, blk.Guards)...)
			for _, node := range blk.Nodes {
				ast.Inspect(node, func(m ast.Node) bool {
					if m == nil {
						return false
					}
					if fl, ok := m.(*ast.FuncLit); ok {
						units = append(units, sessionUnit{body: fl.Body, base: role})
						return false // the literal's body is its own unit
					}
					switch m := m.(type) {
					case *ast.CallExpr:
						recv, method, isMPI := mpiMethod(pass.TypesInfo, m)
						if isMPI {
							if recv == "Comm" {
								if op, ok := p2pOp(pass, m, method, role); ok {
									ops = append(ops, op)
								}
							}
							return true
						}
						if commEscapes(pass, closures, m) {
							escaped = true
						}
					case *ast.ReturnStmt:
						for _, r := range m.Results {
							if isCommValue(pass, r) {
								escaped = true
							}
						}
					}
					return true
				})
			}
		}
	}
	if escaped {
		return
	}

	for _, op := range ops {
		if len(op.role) == 0 || op.wild {
			continue
		}
		if hasPeerMatch(pass, rankVars, op, ops) {
			continue
		}
		toFrom, want := "to", "receive"
		if !op.send {
			toFrom, want = "from", "send"
		}
		pass.Reportf(op.call.Pos(),
			"%s of tag %s %s %s on the %s side has no matching %s on any peer rank's side (cross-rank hang)",
			op.method, op.tagStr, toFrom, types.ExprString(op.peer), roleString(op.role), want)
	}
}

// p2pOp classifies a Comm method call as a point-to-point operation and
// resolves its tag the way mpitag does: constant value when provable,
// wildcard for AnyTag and for dynamic tagBase+w expressions.
func p2pOp(pass *Pass, call *ast.CallExpr, method string, role []Guard) (sessionOp, bool) {
	var send bool
	switch method {
	case "Send", "Isend":
		send = true
	case "Recv", "RecvTimeout", "Irecv":
	default:
		return sessionOp{}, false
	}
	if len(call.Args) < 2 {
		return sessionOp{}, false
	}
	op := sessionOp{
		call:   call,
		method: method,
		send:   send,
		role:   role,
		peer:   call.Args[0],
	}
	tag := call.Args[1]
	tv, ok := pass.TypesInfo.Types[tag]
	if !ok || tv.Value == nil {
		op.wild = true // dynamic tag: conservatively matches anything
		return op, true
	}
	if mpiConst, _ := constProvenance(pass, tag); mpiConst {
		op.wild = true // the mpi package's own AnyTag wildcard
		return op, true
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	if !exact {
		op.wild = true
		return op, true
	}
	op.tagVal = v
	op.tagStr = types.ExprString(tag)
	return op, true
}

// hasPeerMatch reports whether some opposite-direction operation can
// meet op at runtime: compatible tag, and either a different role side
// or the same side when that side can span several ranks.
func hasPeerMatch(pass *Pass, rankVars map[types.Object]bool, op sessionOp, ops []sessionOp) bool {
	for i := range ops {
		other := &ops[i]
		if other.send == op.send {
			continue
		}
		if !other.wild && !op.wild && other.tagVal != op.tagVal {
			continue
		}
		if sameRole(op.role, other.role) && roleSingleRank(pass, rankVars, op.role) {
			continue // a role pinned to one rank cannot meet itself
		}
		return true
	}
	return false
}

// sameRole reports whether two guard stacks name the same branch arms.
func sameRole(a, b []Guard) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Stmt != b[i].Stmt || a[i].Branch != b[i].Branch {
			return false
		}
	}
	return true
}

// roleSingleRank reports whether any guard in the role pins the rank to
// one constant value (the `Rank() == 0` arm, the `Rank() != 0` else,
// a single-constant switch case).
func roleSingleRank(pass *Pass, rankVars map[types.Object]bool, role []Guard) bool {
	for _, g := range role {
		if guardSingleRank(pass, rankVars, g) {
			return true
		}
	}
	return false
}

func guardSingleRank(pass *Pass, rankVars map[types.Object]bool, g Guard) bool {
	switch g.Stmt.(type) {
	case *ast.IfStmt:
		be, ok := g.Cond.(*ast.BinaryExpr)
		if !ok {
			return false
		}
		var other ast.Expr
		switch {
		case isRankExpr(pass, rankVars, be.X):
			other = be.Y
		case isRankExpr(pass, rankVars, be.Y):
			other = be.X
		default:
			return false
		}
		if tv, ok := pass.TypesInfo.Types[other]; !ok || tv.Value == nil {
			return false
		}
		return (be.Op == token.EQL && g.Branch == 0) || (be.Op == token.NEQ && g.Branch == 1)
	case *ast.SwitchStmt:
		if !isRankExpr(pass, rankVars, g.Cond) || len(g.Cases) != 1 {
			return false // default clause or multi-value case spans ranks
		}
		tv, ok := pass.TypesInfo.Types[g.Cases[0]]
		return ok && tv.Value != nil
	}
	return false
}

// isRankExpr reports whether e reads the rank itself: a Rank() or
// OrigRank() call, or a variable assigned from one.
func isRankExpr(pass *Pass, rankVars map[types.Object]bool, e ast.Expr) bool {
	if isRankCall(pass, e) {
		return true
	}
	id, ok := e.(*ast.Ident)
	return ok && rankVars[pass.TypesInfo.Uses[id]]
}

// rankGuards keeps the guards whose branch decision reads the rank.
func rankGuards(pass *Pass, rankVars map[types.Object]bool, guards []Guard) []Guard {
	var out []Guard
	for _, g := range guards {
		if g.Cond != nil && mentionsRank(pass, rankVars, g.Cond) {
			out = append(out, g)
			continue
		}
		for _, e := range g.Cases {
			if mentionsRank(pass, rankVars, e) {
				out = append(out, g)
				break
			}
		}
	}
	return out
}

// roleString renders the innermost rank guard for the diagnostic.
func roleString(role []Guard) string {
	g := role[len(role)-1]
	switch g.Stmt.(type) {
	case *ast.IfStmt:
		if g.Branch == 1 {
			return "!(" + types.ExprString(g.Cond) + ")"
		}
		return types.ExprString(g.Cond)
	case *ast.SwitchStmt:
		if len(g.Cases) == 0 {
			return "default (switch " + types.ExprString(g.Cond) + ")"
		}
		s := "case "
		for i, e := range g.Cases {
			if i > 0 {
				s += ", "
			}
			s += types.ExprString(e)
		}
		return s + " (switch " + types.ExprString(g.Cond) + ")"
	case *ast.ForStmt:
		if g.Cond != nil {
			return "for " + types.ExprString(g.Cond)
		}
	}
	return "rank-conditioned"
}

// closureVars collects local variables bound to function literals:
// calls through them stay inside the function's inline view.
func closureVars(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		asgn, ok := n.(*ast.AssignStmt)
		if !ok || len(asgn.Lhs) != len(asgn.Rhs) {
			return true
		}
		for i, rhs := range asgn.Rhs {
			if _, isLit := rhs.(*ast.FuncLit); !isLit {
				continue
			}
			id, ok := asgn.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				vars[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				vars[obj] = true
			}
		}
		return true
	})
	return vars
}

// commEscapes reports whether call hands a Comm or World to code
// outside the function's inline view: any callee other than an mpi
// method (checked by the caller), a function literal, or a local
// variable bound to one.
func commEscapes(pass *Pass, closures map[types.Object]bool, call *ast.CallExpr) bool {
	fun := call.Fun
	for {
		p, ok := fun.(*ast.ParenExpr)
		if !ok {
			break
		}
		fun = p.X
	}
	switch fun := fun.(type) {
	case *ast.FuncLit:
		return false
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[fun]; obj != nil && closures[obj] {
			return false
		}
	}
	for _, arg := range call.Args {
		if isCommValue(pass, arg) {
			return true
		}
	}
	return false
}

// isCommValue reports whether e has (a pointer to) the mpi package's
// Comm or World type.
func isCommValue(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	switch namedMPIType(t) {
	case "Comm", "World":
		return true
	}
	return false
}
