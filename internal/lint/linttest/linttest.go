// Package linttest is an analysistest-style harness for egdlint
// analyzers: it runs one analyzer over fixture packages under
// testdata/src and compares the findings against `// want "regexp"`
// comments in the fixture sources.
//
// Fixture packages live in a self-contained module (testdata/src/go.mod,
// module "fixtures") so the loader resolves them with the ordinary go
// tooling; the fake fixtures/mpi package stands in for repro/internal/mpi,
// which the analyzers match structurally (package name + type name)
// rather than by import path. //egdlint:allow directives are honoured,
// so negative fixtures exercise the suppression path too.
package linttest

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// wantRe matches the trailing expectation comment: // want "rx" "rx" ...
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
	raw  string
}

// Run applies the analyzer to each named fixture package (a directory
// under testdata/src) and reports mismatches between findings and the
// fixtures' want comments through t.
func Run(t *testing.T, a *lint.Analyzer, pkgs ...string) {
	t.Helper()
	dir := filepath.Join("testdata", "src")
	patterns := make([]string, len(pkgs))
	for i, p := range pkgs {
		patterns[i] = "./" + p
	}
	findings, err := lint.RunAnalyzers(dir, patterns, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	var wants []*expectation
	for _, p := range pkgs {
		files, err := filepath.Glob(filepath.Join(dir, p, "*.go"))
		if err != nil || len(files) == 0 {
			t.Fatalf("no fixture files for %s (%v)", p, err)
		}
		for _, f := range files {
			ws, err := parseWants(f)
			if err != nil {
				t.Fatalf("parsing wants in %s: %v", f, err)
			}
			wants = append(wants, ws...)
		}
	}

	matched := make([]bool, len(findings))
	for _, w := range wants {
		found := false
		for i, f := range findings {
			if matched[i] || filepath.Base(f.Pos.Filename) != w.file || f.Pos.Line != w.line {
				continue
			}
			if w.re.MatchString(f.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: no %s finding matching %q", w.file, w.line, a.Name, w.raw)
		}
	}
	for i, f := range findings {
		if !matched[i] {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

// parseWants extracts the expectations from one fixture file.
func parseWants(path string) ([]*expectation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var wants []*expectation
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		m := wantRe.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		rest := strings.TrimSpace(m[1])
		for rest != "" {
			q, err := strconv.QuotedPrefix(rest)
			if err != nil {
				break // trailing prose after the quoted patterns
			}
			raw, err := strconv.Unquote(q)
			if err != nil {
				return nil, err
			}
			re, err := regexp.Compile(raw)
			if err != nil {
				return nil, err
			}
			wants = append(wants, &expectation{
				file: filepath.Base(path),
				line: line,
				re:   re,
				raw:  raw,
			})
			rest = strings.TrimSpace(rest[len(q):])
		}
	}
	return wants, sc.Err()
}
