// Package mpi is a compile-only stand-in for repro/internal/mpi: the
// egdlint analyzers identify the MPI layer structurally (a package
// named "mpi" declaring Comm/World/Request), so fixtures exercise them
// without importing the real runtime.
package mpi

import "time"

const (
	AnySource = -1
	AnyTag    = -1
)

// Message mirrors mpi.Message.
type Message struct {
	Source, Tag int
	Payload     any
}

// Op mirrors the reduction operator enum.
type Op int

// OpSum mirrors mpi.OpSum.
const OpSum Op = 0

// World mirrors mpi.World.
type World struct{}

// NewWorld mirrors mpi.NewWorld.
func NewWorld(n int) *World { return &World{} }

// Run mirrors World.Run.
func (w *World) Run(body func(*Comm) error) error { return nil }

// Shrink mirrors World.Shrink.
func (w *World) Shrink(survivors []int) (*World, error) { return nil, nil }

// Comm mirrors mpi.Comm.
type Comm struct{}

func (c *Comm) Rank() int     { return 0 }
func (c *Comm) OrigRank() int { return 0 }
func (c *Comm) Size() int     { return 1 }

func (c *Comm) Send(dst, tag int, payload any) error { return nil }
func (c *Comm) Recv(src, tag int) (Message, error)   { return Message{}, nil }
func (c *Comm) RecvTimeout(src, tag int, timeout time.Duration) (Message, error) {
	return Message{}, nil
}

func (c *Comm) Bcast(root int, payload any) (any, error)               { return nil, nil }
func (c *Comm) NaiveBcast(root int, payload any) (any, error)          { return nil, nil }
func (c *Comm) Reduce(root int, value float64, op Op) (float64, error) { return 0, nil }
func (c *Comm) Allreduce(value float64, op Op) (float64, error)        { return 0, nil }
func (c *Comm) ReduceSlice(root int, v []float64, op Op) ([]float64, error) {
	return nil, nil
}
func (c *Comm) Gather(root int, payload any) ([]any, error) { return nil, nil }
func (c *Comm) Allgather(payload any) ([]any, error)        { return nil, nil }
func (c *Comm) Scatter(root int, payloads []any) (any, error) {
	return nil, nil
}
func (c *Comm) Barrier() error                        { return nil }
func (c *Comm) Agree() ([]int, error)                 { return nil, nil }
func (c *Comm) Shrink(survivors []int) (*Comm, error) { return nil, nil }

// Isend mirrors Comm.Isend.
func (c *Comm) Isend(dst, tag int, payload any) *Request { return &Request{} }

// Irecv mirrors Comm.Irecv.
func (c *Comm) Irecv(src, tag int) *Request { return &Request{} }

// Request mirrors mpi.Request.
type Request struct{}

// Wait mirrors Request.Wait.
func (r *Request) Wait() (Message, error) { return Message{}, nil }

// Cancel mirrors Request.Cancel.
func (r *Request) Cancel() {}
