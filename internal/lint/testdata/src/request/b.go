// Control-flow shapes for mpirequest's all-paths reasoning: a request
// settled on one path can still leak on another.
package request

import "fixtures/mpi"

// earlyReturnLeak waits on the happy path but leaks on the early return
// — the false-negative class the single-use check missed.
func earlyReturnLeak(c *mpi.Comm, flag bool) error {
	r := c.Irecv(0, tagData) // want `\*mpi\.Request from Irecv is not settled on every path`
	if flag {
		return nil
	}
	_, err := r.Wait()
	return err
}

// loopContinueLeak skips the Wait whenever the continue fires, leaking
// that iteration's request.
func loopContinueLeak(c *mpi.Comm, n int) {
	for i := 0; i < n; i++ {
		r := c.Irecv(i, tagData) // want `\*mpi\.Request from Irecv is not settled on every path`
		if i%2 == 0 {
			continue
		}
		_, _ = r.Wait()
	}
}

// switchLeak settles in every written case but falls past the switch
// when no case matches.
func switchLeak(c *mpi.Comm, mode int) {
	r := c.Irecv(0, tagData) // want `\*mpi\.Request from Irecv is not settled on every path`
	switch mode {
	case 0:
		_, _ = r.Wait()
	case 1:
		r.Cancel()
	}
}

// bothArms settles on every branch. Clean.
func bothArms(c *mpi.Comm, flag bool) {
	r := c.Irecv(0, tagData)
	if flag {
		_, _ = r.Wait()
	} else {
		r.Cancel()
	}
}

// fatalPathExcused: a path that dies in panic cannot leak. Clean.
func fatalPathExcused(c *mpi.Comm, err error) {
	r := c.Irecv(0, tagData)
	if err != nil {
		panic(err)
	}
	_, _ = r.Wait()
}

// deferredCancel settles at the defer statement: every later path —
// including the early return — runs the deferred Cancel. Clean.
func deferredCancel(c *mpi.Comm, flag bool) {
	r := c.Irecv(0, tagData)
	defer r.Cancel()
	if flag {
		return
	}
}

// capturedAssign publishes the request into a variable declared outside
// the closure: the outer function settles it after the closure returns.
// Clean.
func capturedAssign(c *mpi.Comm) {
	var req *mpi.Request
	post := func() {
		req = c.Irecv(0, tagData)
	}
	post()
	_, _ = req.Wait()
}

// splitSettle escapes on one path and waits on the other; both count.
// Clean.
func splitSettle(c *mpi.Comm, sink chan *mpi.Request, flag bool) {
	r := c.Irecv(0, tagData)
	if flag {
		sink <- r
		return
	}
	_, _ = r.Wait()
}
