// Fixtures for mpirequest: every *mpi.Request from Isend/Irecv must
// reach Wait or Cancel, escape the function, or be annotated.
package request

import "fixtures/mpi"

const tagData = 3

func bad(c *mpi.Comm) {
	c.Irecv(0, tagData)           // want `\*mpi\.Request from Irecv dropped`
	c.Isend(1, tagData, "x")      // want `\*mpi\.Request from Isend dropped`
	_ = c.Irecv(0, tagData)       // want `\*mpi\.Request from Irecv assigned to _`
	leaked := c.Irecv(0, tagData) // want `\*mpi\.Request from Irecv never reaches Wait or Cancel`
	_ = leaked.Wait               // method value is not a call; the request still leaks
}

func good(c *mpi.Comm) error {
	r := c.Irecv(0, tagData)
	msg, err := r.Wait()
	if err != nil {
		return err
	}
	_ = msg

	cancelled := c.Irecv(mpi.AnySource, mpi.AnyTag)
	cancelled.Cancel()

	sent := c.Isend(1, tagData, "x")
	if _, err := sent.Wait(); err != nil {
		return err
	}
	return nil
}

// escaping requests are assumed to be completed by whoever holds them.
func escapes(c *mpi.Comm, sink chan *mpi.Request) *mpi.Request {
	pending := make([]*mpi.Request, 0, 2)
	r := c.Irecv(0, tagData)
	pending = append(pending, r)
	sink <- pending[0]
	returned := c.Irecv(1, tagData)
	return returned
}

// waitAll shows settlement through a closure.
func waitAll(c *mpi.Comm) error {
	r := c.Irecv(0, tagData)
	finish := func() error {
		_, err := r.Wait()
		return err
	}
	return finish()
}

func annotated(c *mpi.Comm) {
	// The world's shutdown releases unmatched Irecvs; this probe is fire
	// and forget by design.
	c.Irecv(mpi.AnySource, mpi.AnyTag) //egdlint:allow mpirequest released by world shutdown, probe is fire-and-forget
}
