package main // want `command package has no doc comment`

func main() {}
