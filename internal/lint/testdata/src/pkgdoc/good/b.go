package good

func alsoUnused() {}
