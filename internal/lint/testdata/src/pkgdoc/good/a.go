// Package good is documented in the canonical form, so the analyzer
// stays silent — including for the comment-free second file.
package good

func unused() {}
