// Documents the package without godoc's canonical opening. // want `package comment for wrongform must start "Package wrongform"`
package wrongform

func unused() {}
