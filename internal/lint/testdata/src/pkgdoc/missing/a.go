package missing // want `package missing has no package comment`

func unused() {}
