// Fixtures for determinism: inside a deterministic package, wall-clock
// reads, the process-global math/rand state, and order-sensitive map
// iteration all break bit-reproducibility.
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // want `time\.Now reads the wall clock in a deterministic package`
	return time.Since(start) // want `time\.Since reads the wall clock in a deterministic package`
}

func globalRand() int {
	rand.Shuffle(3, func(i, j int) {}) // want `global rand\.Shuffle in a deterministic package`
	return rand.Intn(10)               // want `global rand\.Intn in a deterministic package`
}

func seededRand(seed int64) float64 {
	src := rand.New(rand.NewSource(seed)) // constructors over explicit seeds are fine
	return src.Float64()
}

func mapOrderFeedsOutput(m map[string]int) {
	for k, v := range m { // want `map iteration order feeds computation in a deterministic package`
		fmt.Println(k, v)
	}
}

func mapOrderFeedsFloatSum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `map iteration order feeds computation in a deterministic package`
		total += v // float accumulation order changes the rounding
	}
	return total
}

func sortedIteration(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // collect-then-sort restores a canonical order
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return out
}

func orderInsensitive(m map[string]int) (int, bool) {
	count := 0
	found := false
	for _, v := range m {
		if v > 0 {
			count++
			found = true
		}
	}
	for k := range m {
		if len(k) == 0 {
			delete(m, k)
		}
	}
	return count, found
}

func annotated(m map[string]int) {
	// Debug dump: goes to a log humans read, not into the trajectory.
	for k := range m { //egdlint:allow determinism debug dump, output not part of the trajectory
		fmt.Println(k)
	}
}
