// Fixtures for mpitag's wire-protocol audit: frame-kind constants are
// wire-format bytes — unique, nonzero, within uint8 — and the
// frameKindEnd sentinel sits one past the highest kind.
package mpi

type frameKind uint8

const (
	frameData frameKind = 1 + iota
	frameBeat
	frameGoodbye
)

const (
	frameZero  frameKind = 0 // want `wire frame kind frameZero has value 0`
	frameClash frameKind = 2 // want `wire frame kind frameClash duplicates value 2 of frameBeat`
)

const frameKindEnd = frameGoodbye + 2 // want `frameKindEnd is 5, want 4`
