// Fixtures for mpisession: point-to-point tags sent on one side of a
// Rank() branch must be received on a peer side, or the ranks deadlock.
package session

import (
	"time"

	"fixtures/mpi"
)

const (
	tagFitness = 1
	tagRows    = 2
	tagExtra   = 7
)

// engineMirror mirrors internal/sim's RunParallel split: Nature (rank 0)
// receives exactly what every worker sends. Symmetric, so clean.
func engineMirror(c *mpi.Comm, rows []int) {
	if c.Rank() == 0 {
		for w := 1; w < c.Size(); w++ {
			_, _ = c.Recv(mpi.AnySource, tagFitness)
			_, _ = c.Recv(w, tagRows)
		}
	} else {
		_ = c.Send(0, tagFitness, 1.0)
		_ = c.Send(0, tagRows, rows)
	}
}

// natureOrphanRecv is engineMirror with the worker's tagRows send
// dropped — the mutation the analyzer exists to catch: Nature blocks on
// an inbox no one feeds.
func natureOrphanRecv(c *mpi.Comm) {
	if c.Rank() == 0 {
		_, _ = c.Recv(1, tagFitness)
		_, _ = c.Recv(1, tagRows) // want `Recv of tag tagRows from 1 .* no matching send on any peer rank's side`
	} else {
		_ = c.Send(0, tagFitness, 1.0)
	}
}

// workerOrphanSend is the opposite mutation: Nature's receive is gone,
// so the worker's Send parks on a full channel forever.
func workerOrphanSend(c *mpi.Comm) {
	if c.Rank() == 0 {
		_, _ = c.Recv(1, tagFitness)
	} else {
		_ = c.Send(0, tagFitness, 1.0)
		_ = c.Send(0, tagRows, nil) // want `Send of tag tagRows to 0 .* no matching receive on any peer rank's side`
	}
}

// selfSession puts both halves on the rank-0 side: a role pinned to one
// rank cannot meet itself, so both operations hang.
func selfSession(c *mpi.Comm) {
	if c.Rank() == 0 {
		_ = c.Send(1, tagExtra, nil) // want `Send of tag tagExtra .* no matching receive`
		_, _ = c.Recv(1, tagExtra)   // want `Recv of tag tagExtra .* no matching send`
	}
}

// workerExchange is the same shape on the != 0 side, which spans several
// ranks: workers may exchange among themselves. Clean.
func workerExchange(c *mpi.Comm) {
	if c.Rank() != 0 {
		_ = c.Send((c.Rank()%2)+1, tagExtra, nil)
		_, _ = c.Recv(mpi.AnySource, tagExtra)
	}
}

// switchRoles: switch-on-rank clauses pair like if/else arms, and a
// single-constant case is a pinned rank.
func switchRoles(c *mpi.Comm) {
	switch c.Rank() {
	case 0:
		_, _ = c.Recv(mpi.AnySource, tagFitness)
		_, _ = c.Recv(mpi.AnySource, tagExtra) // want `Recv of tag tagExtra .* no matching send`
	default:
		_ = c.Send(0, tagFitness, nil)
	}
}

// loopSession: operations inside loop bodies still pair across sides —
// the loop condition is not a rank guard. Clean.
func loopSession(c *mpi.Comm) {
	if c.Rank() == 0 {
		for w := 1; w < c.Size(); w++ {
			_, _ = c.Recv(w, tagRows)
		}
	} else {
		_ = c.Send(0, tagRows, nil)
	}
}

// asyncPair: Isend/Irecv and RecvTimeout participate like their
// blocking forms. Clean.
func asyncPair(c *mpi.Comm, d time.Duration) {
	if c.Rank() == 0 {
		r := c.Irecv(1, tagFitness)
		_, _ = r.Wait()
		_, _ = c.RecvTimeout(1, tagRows, d)
	} else {
		r := c.Isend(0, tagFitness, nil)
		_, _ = r.Wait()
		_ = c.Send(0, tagRows, nil)
	}
}

// closureSide: a closure defined under a rank branch runs on that side;
// its orphan receive is still the rank-0 side's obligation.
func closureSide(c *mpi.Comm) {
	if c.Rank() == 0 {
		recv := func() {
			_, _ = c.Recv(1, tagExtra) // want `Recv of tag tagExtra .* no matching send`
		}
		recv()
	}
}

// dynamicTags: a computed tag (tagBase+w, as the real engine shards
// row exchanges) matches anything — exactly mpitag's resolution rule.
func dynamicTags(c *mpi.Comm, base int) {
	if c.Rank() == 0 {
		for w := 1; w < c.Size(); w++ {
			_, _ = c.Recv(w, base+w)
		}
	}
}

// wildcardTag: AnyTag receives are match-all and never flagged.
func wildcardTag(c *mpi.Comm) {
	if c.Rank() == 0 {
		_, _ = c.Recv(mpi.AnySource, mpi.AnyTag)
	}
}

// escapes hands the comm to a helper: the peer's half of the protocol
// may live there, so the whole function is skipped.
func escapes(c *mpi.Comm) {
	if c.Rank() == 0 {
		_, _ = c.Recv(1, tagExtra)
	}
	helper(c)
}

func helper(c *mpi.Comm) {}

// returned: a comm flowing out through a return escapes the same way.
func returned(c *mpi.Comm) *mpi.Comm {
	if c.Rank() == 0 {
		_, _ = c.Recv(1, tagExtra)
	}
	return c
}

// deadSide: operations in unreachable code neither check nor satisfy a
// session. Clean — the orphan receive can never run.
func deadSide(c *mpi.Comm) {
	if c.Rank() == 0 {
		return
		_, _ = c.Recv(1, tagExtra)
	}
}

// annotated: a deliberate half-session silenced with a reason (the peer
// half lives in another binary).
func annotated(c *mpi.Comm) {
	if c.Rank() == 0 {
		_ = c.Send(1, tagExtra, nil) //egdlint:allow mpisession peer half lives in the launcher binary
	}
}
