// Fixtures for mpicollective: collective operations lexically inside a
// branch conditioned on Rank() are the classic SPMD deadlock.
package collective

import "fixtures/mpi"

func bad(c *mpi.Comm) error {
	if c.Rank() == 0 {
		if _, err := c.Bcast(0, "state"); err != nil { // want `collective mpi\.Comm\.Bcast inside a branch conditioned on Rank\(\)`
			return err
		}
	}
	if c.Rank() != 0 {
		return nil
	} else {
		if err := c.Barrier(); err != nil { // want `collective mpi\.Comm\.Barrier inside a branch conditioned on Rank\(\)`
			return err
		}
	}
	return nil
}

func badViaVariable(c *mpi.Comm) error {
	rank := c.Rank()
	if rank > 0 {
		_, err := c.Reduce(0, 1.0, mpi.OpSum) // want `collective mpi\.Comm\.Reduce inside a branch conditioned on Rank\(\)`
		return err
	}
	switch rank {
	case 0:
		if err := c.Barrier(); err != nil { // want `collective mpi\.Comm\.Barrier inside a branch conditioned on Rank\(\)`
			return err
		}
	}
	for i := 0; i < c.Rank(); i++ {
		if _, err := c.Allgather(i); err != nil { // want `collective mpi\.Comm\.Allgather inside a branch conditioned on Rank\(\)`
			return err
		}
	}
	return nil
}

// good: every rank reaches the same collectives in the same order;
// rank-dependent branches hold only local work and point-to-point calls.
func good(c *mpi.Comm) error {
	if _, err := c.Bcast(0, "state"); err != nil {
		return err
	}
	sum := 0.0
	if c.Rank() != 0 {
		sum = float64(c.Rank())
		if err := c.Send(0, 1, "partial"); err != nil {
			return err
		}
	}
	if _, err := c.Allreduce(sum, mpi.OpSum); err != nil {
		return err
	}
	for gen := 0; gen < 10; gen++ { // loop bound independent of rank
		if err := c.Barrier(); err != nil {
			return err
		}
	}
	return c.Barrier()
}

// annotated: symmetry is maintained manually across both arms.
func annotated(c *mpi.Comm) error {
	if c.Rank() == 0 {
		//egdlint:allow mpicollective workers enter the same Barrier in their own arm
		return c.Barrier()
	}
	//egdlint:allow mpicollective nature enters the same Barrier in its arm
	return c.Barrier()
}
