// Fixtures for mpierrcheck: discarded results of mpi communication
// calls must be flagged; checked, propagated, or annotated results must
// not.
package errcheck

import "fixtures/mpi"

const tagData = 7

func bad(c *mpi.Comm, w *mpi.World, r *mpi.Request) {
	c.Barrier()                                   // want `result of mpi\.Comm\.Barrier discarded`
	c.Send(1, tagData, "x")                       // want `result of mpi\.Comm\.Send discarded`
	c.Bcast(0, nil)                               // want `result of mpi\.Comm\.Bcast discarded`
	c.Agree()                                     // want `result of mpi\.Comm\.Agree discarded`
	r.Wait()                                      // want `result of mpi\.Request\.Wait discarded`
	w.Run(func(c *mpi.Comm) error { return nil }) // want `result of mpi\.World\.Run discarded`

	_ = c.Barrier()              // want `error result of mpi\.Comm\.Barrier assigned to _`
	msg, _ := c.Recv(0, tagData) // want `error result of mpi\.Comm\.Recv assigned to _`
	_ = msg

	go c.Barrier()    // want `go statement discards the result of mpi\.Comm\.Barrier`
	defer c.Barrier() // want `defer statement discards the result of mpi\.Comm\.Barrier`
}

func good(c *mpi.Comm, w *mpi.World) error {
	if err := c.Barrier(); err != nil {
		return err
	}
	v, err := c.Bcast(0, nil)
	if err != nil {
		return err
	}
	_ = v // discarding the payload is fine; only the error carries the signal
	if _, err := c.Recv(0, tagData); err != nil {
		return err
	}
	surv, err := c.Agree()
	if err != nil || len(surv) == 0 {
		return err
	}
	return c.Send(1, tagData, "x")
}

func annotated(c *mpi.Comm) {
	// Best-effort drain on the shutdown path: peers may already be gone.
	c.Barrier() //egdlint:allow mpierrcheck best-effort barrier on shutdown, peers may be gone
}
