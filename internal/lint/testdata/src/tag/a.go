// Fixtures for mpitag: point-to-point tags must be named constants in
// the user range [0, 1<<30); bare literals collide silently.
package tag

import "fixtures/mpi"

const (
	tagFitness  = 1
	tagRows     = 2
	tagBase     = 100
	tagDerived  = tagBase + 1
	tagReserved = 1 << 30 // collides with the collectives' internal tags
	tagNegative = -3
)

func bad(c *mpi.Comm) error {
	if err := c.Send(1, 7, "x"); err != nil { // want `magic tag literal in Send`
		return err
	}
	if _, err := c.Recv(0, 2); err != nil { // want `magic tag literal in Recv`
		return err
	}
	r := c.Irecv(0, 1+2) // want `magic tag literal in Irecv`
	r.Cancel()
	if err := c.Send(1, tagReserved, "x"); err != nil { // want `tag constant 1073741824 in Send is outside the user range`
		return err
	}
	return c.Send(1, tagNegative, "x") // want `tag constant -3 in Send is outside the user range`
}

func good(c *mpi.Comm) error {
	if err := c.Send(1, tagFitness, "x"); err != nil {
		return err
	}
	if _, err := c.Recv(0, tagRows); err != nil {
		return err
	}
	if _, err := c.Recv(mpi.AnySource, mpi.AnyTag); err != nil { // wildcards are the mpi package's own constants
		return err
	}
	if err := c.Send(1, tagDerived, "x"); err != nil { // arithmetic over named constants is fine
		return err
	}
	for w := 0; w < c.Size(); w++ {
		if err := c.Send(w, tagBase+w, "x"); err != nil { // dynamic tag built from a named base
			return err
		}
	}
	r := c.Irecv(0, tagFitness)
	if _, err := r.Wait(); err != nil {
		return err
	}
	return nil
}

func annotated(c *mpi.Comm) error {
	// Wire-compat probe: the peer protocol fixes this value.
	return c.Send(1, 9, "probe") //egdlint:allow mpitag wire-compat probe value fixed by peer protocol
}
