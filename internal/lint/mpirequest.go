package lint

import (
	"go/ast"
	"go/types"
)

// MPIRequest flags *mpi.Request values from Isend/Irecv that never
// reach Wait or Cancel.
//
// An Irecv that is neither waited nor cancelled parks a goroutine on
// the rank's inbox until the world shuts down — exactly the leak PR 1
// fixed in the shutdown path — and an unwaited Isend discards the
// delivery error. The check is conservative: a request that escapes
// the function (returned, stored, passed along, appended) is assumed
// to be completed elsewhere and is not flagged.
var MPIRequest = &Analyzer{
	Name: "mpirequest",
	Doc:  "every *mpi.Request from Isend/Irecv must reach Wait or Cancel",
	Run:  runMPIRequest,
}

func runMPIRequest(pass *Pass) error {
	for _, f := range pass.Files {
		checkRequestsInFile(pass, f)
	}
	return nil
}

type requestUse struct {
	def     ast.Node // statement that created the request
	method  string   // Isend or Irecv
	settled bool     // reached Wait/Cancel or escaped the function
}

func checkRequestsInFile(pass *Pass, f *ast.File) {
	requests := make(map[types.Object]*requestUse)

	// Pass 1: find request definitions and immediately-dropped requests.
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if method, ok := requestCall(pass, n.X); ok {
				pass.Reportf(n.Pos(), "*mpi.Request from %s dropped; it must reach Wait or Cancel", method)
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				method, ok := requestCall(pass, rhs)
				if !ok || i >= len(n.Lhs) {
					continue
				}
				id, isIdent := n.Lhs[i].(*ast.Ident)
				if !isIdent {
					continue // stored into a field/slice: escapes
				}
				if id.Name == "_" {
					pass.Reportf(rhs.Pos(), "*mpi.Request from %s assigned to _; it must reach Wait or Cancel", method)
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj != nil && requests[obj] == nil {
					requests[obj] = &requestUse{def: n, method: method}
				}
			}
		}
		return true
	})
	if len(requests) == 0 {
		return
	}

	// Pass 2: classify every use of each request variable. A use as the
	// receiver of Wait or Cancel settles it; any non-receiver use means
	// it escapes and is settled elsewhere; a use only as the receiver of
	// other methods settles nothing.
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		req := requests[pass.TypesInfo.Uses[id]]
		if req == nil {
			return true
		}
		parent := stack[len(stack)-2]
		if asgn, ok := parent.(*ast.AssignStmt); ok {
			for _, lhs := range asgn.Lhs {
				if lhs == ast.Expr(id) {
					return true // assignment target, not a consuming use
				}
			}
		}
		if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == ast.Expr(id) {
			if sel.Sel.Name == "Wait" || sel.Sel.Name == "Cancel" {
				// Only an actual call settles it; a method value does not.
				if len(stack) >= 3 {
					if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && call.Fun == ast.Expr(sel) {
						req.settled = true
					}
				}
			}
			return true
		}
		// Appears outside a selector: returned, passed, stored, compared —
		// assume whoever holds it completes it.
		req.settled = true
		return true
	})

	for _, req := range requests {
		if !req.settled {
			pass.Reportf(req.def.Pos(), "*mpi.Request from %s never reaches Wait or Cancel", req.method)
		}
	}
}

// requestCall reports whether e is a call to Comm.Isend or Comm.Irecv.
func requestCall(pass *Pass, e ast.Expr) (method string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", false
	}
	recv, name, isMPI := mpiMethod(pass.TypesInfo, call)
	if !isMPI || recv != "Comm" || (name != "Isend" && name != "Irecv") {
		return "", false
	}
	return name, true
}
