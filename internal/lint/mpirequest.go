package lint

import (
	"go/ast"
	"go/types"
)

// MPIRequest flags *mpi.Request values from Isend/Irecv that can reach
// a function exit without Wait or Cancel.
//
// An Irecv that is neither waited nor cancelled parks a goroutine on
// the rank's inbox until the world shuts down — exactly the leak PR 1
// fixed in the shutdown path — and an unwaited Isend discards the
// delivery error. The check reasons over the control-flow graph: the
// request must reach a settling use on *every* path from its creation
// to the function exit, so a Wait that an early return or a loop
// continue can skip is flagged even though some path does settle it.
//
// Remaining approximations, all conservative in the no-false-positive
// direction: a request that escapes the function (returned, passed,
// stored, appended, captured by a closure) is assumed to be completed
// by whoever holds it; paths that cannot return (panic, os.Exit,
// log.Fatal, t.Fatal) are excused; a deferred Wait settles at the
// defer statement's position rather than at function exit; and
// re-assigning a live request variable in a loop is not flagged as
// overwriting the previous request.
var MPIRequest = &Analyzer{
	Name: "mpirequest",
	Doc:  "every *mpi.Request from Isend/Irecv must reach Wait or Cancel on every path",
	Run:  runMPIRequest,
}

func runMPIRequest(pass *Pass) error {
	for _, f := range pass.Files {
		// Each function body — declared or literal — is its own graph.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkRequestPaths(pass, n.Body)
				}
			case *ast.FuncLit:
				checkRequestPaths(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

type requestDef struct {
	stmt   ast.Node // statement that created the request
	obj    types.Object
	method string // Isend or Irecv
}

func checkRequestPaths(pass *Pass, body *ast.BlockStmt) {
	var defs []requestDef

	// Pass 1 over this unit only (nested function literals are their own
	// units): immediately-dropped requests and tracked definitions.
	unitInspect(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if method, ok := requestCall(pass, n.X); ok {
				pass.Reportf(n.Pos(), "*mpi.Request from %s dropped; it must reach Wait or Cancel", method)
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				method, ok := requestCall(pass, rhs)
				if !ok || i >= len(n.Lhs) {
					continue
				}
				id, isIdent := n.Lhs[i].(*ast.Ident)
				if !isIdent {
					continue // stored into a field/slice: escapes
				}
				if id.Name == "_" {
					pass.Reportf(rhs.Pos(), "*mpi.Request from %s assigned to _; it must reach Wait or Cancel", method)
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil {
					continue
				}
				if obj.Pos() < body.Pos() || obj.Pos() >= body.End() {
					// Assigned to a variable declared outside this unit (a
					// captured or package-level var): published, like a store
					// into a field — whoever reads it settles it.
					continue
				}
				defs = append(defs, requestDef{stmt: n, obj: obj, method: method})
			}
		}
	})
	if len(defs) == 0 {
		return
	}

	g := NewCFG(body, pass.TypesInfo)
	seen := make(map[types.Object]bool)
	for _, def := range defs {
		if seen[def.obj] {
			continue // re-assigned in a loop: one report per variable
		}
		seen[def.obj] = true
		settles := func(n ast.Node) bool { return nodeSettles(pass, n, def.obj) }
		if g.EveryPathHits(def.stmt, settles) {
			continue
		}
		if nodeSettles(pass, body, def.obj) {
			// Settled somewhere, but not on every path: the early-return /
			// loop-skip leak class.
			pass.Reportf(def.stmt.Pos(),
				"*mpi.Request from %s is not settled on every path: a path reaches return before Wait or Cancel",
				def.method)
		} else {
			pass.Reportf(def.stmt.Pos(), "*mpi.Request from %s never reaches Wait or Cancel", def.method)
		}
	}
}

// unitInspect walks n, skipping nested function literals: they are
// separate analysis units with their own control-flow graphs.
func unitInspect(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		visit(m)
		return true
	})
}

// nodeSettles reports whether node n settles the request held by obj: a
// Wait/Cancel call on it, any escaping use (returned, passed, stored,
// appended, compared), or capture by a nested function literal (whoever
// holds the closure is assumed to complete it). A bare method value
// (r.Wait without the call) settles nothing, and assignment targets are
// not uses.
func nodeSettles(pass *Pass, n ast.Node, obj types.Object) bool {
	settled := false
	var stack []ast.Node
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if settled {
			return false // prune: nothing pushed, so nothing to pop
		}
		stack = append(stack, m)
		if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			if identSettles(stack, id) {
				settled = true
			}
		}
		return true
	})
	return settled
}

// identSettles classifies one appearance of a request variable given
// the ancestor stack (stack[len(stack)-1] == id).
func identSettles(stack []ast.Node, id *ast.Ident) bool {
	if len(stack) < 2 {
		return false
	}
	for _, anc := range stack[:len(stack)-1] {
		if _, ok := anc.(*ast.FuncLit); ok {
			return true // captured by a closure: escapes
		}
	}
	parent := stack[len(stack)-2]
	if asgn, ok := parent.(*ast.AssignStmt); ok {
		for _, lhs := range asgn.Lhs {
			if lhs == ast.Expr(id) {
				return false // assignment target, not a consuming use
			}
		}
	}
	if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == ast.Expr(id) {
		if sel.Sel.Name == "Wait" || sel.Sel.Name == "Cancel" {
			// Only an actual call settles it; a method value does not.
			if len(stack) >= 3 {
				if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && call.Fun == ast.Expr(sel) {
					return true
				}
			}
		}
		return false // receiver of some other method: settles nothing
	}
	// Appears outside a selector: returned, passed, stored, compared —
	// assume whoever holds it completes it.
	return true
}

// requestCall reports whether e is a call to Comm.Isend or Comm.Irecv.
func requestCall(pass *Pass, e ast.Expr) (method string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", false
	}
	recv, name, isMPI := mpiMethod(pass.TypesInfo, call)
	if !isMPI || recv != "Comm" || (name != "Isend" && name != "Irecv") {
		return "", false
	}
	return name, true
}
