package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseDirectiveFile runs collectDirectives over one source string.
func parseDirectiveFile(t *testing.T, src string) (allowSet, []Finding, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	allows, findings := collectDirectives(fset, []*ast.File{f}, knownRules())
	return allows, findings, fset
}

func at(line int) token.Position {
	return token.Position{Filename: "d.go", Line: line}
}

// A trailing directive suppresses its own line; a standalone one the
// line immediately below — and only that line: the window must not leak
// two lines down or across a block boundary.
func TestDirectiveSuppressionWindow(t *testing.T) {
	src := `package p

func f() {
	g() //egdlint:allow mpitag trailing form covers this line
}

func g() {
	//egdlint:allow mpitag standalone form covers the next line
	g()
	g()
}
`
	allows, findings, _ := parseDirectiveFile(t, src)
	if len(findings) != 0 {
		t.Fatalf("well-formed directives produced findings: %v", findings)
	}
	// Trailing: line 4 carries the directive, so lines 4 and 5 are in its
	// window; the flagged statement is on 4.
	if !allows.allowed("mpitag", at(4)) {
		t.Error("trailing directive does not cover its own line")
	}
	// Standalone on line 8 covers 8 and 9 (the statement below) but not
	// 10: a second statement is outside the window.
	if !allows.allowed("mpitag", at(9)) {
		t.Error("standalone directive does not cover the line below")
	}
	if allows.allowed("mpitag", at(10)) {
		t.Error("window leaks two lines below the directive")
	}
	// The closing brace boundary: line 5 is inside the trailing window by
	// the line arithmetic, but line 6 (the blank between functions) and
	// anything in g's body before its own directive are not.
	if allows.allowed("mpitag", at(6)) || allows.allowed("mpitag", at(7)) {
		t.Error("window crossed the function boundary")
	}
	// The directive names mpitag only; other rules stay live on the line.
	if allows.allowed("mpisession", at(4)) {
		t.Error("suppression bled into a rule the directive did not name")
	}
}

// Each malformed shape yields exactly one "directive" finding; the new
// mpisession name is part of the vocabulary.
func TestDirectiveMalformed(t *testing.T) {
	src := `package p

//egdlint:allow
//egdlint:allow nosuchrule with a reason
//egdlint:allow mpirequest
//egdlint:allow mpisession valid: suppresses the line below
var x int
`
	allows, findings, _ := parseDirectiveFile(t, src)
	if len(findings) != 3 {
		t.Fatalf("got %d directive findings, want 3: %v", len(findings), findings)
	}
	wants := []struct {
		line int
		frag string
	}{
		{3, "needs a rule name and a reason"},
		{4, `unknown rule "nosuchrule"`},
		{5, "mpirequest needs a reason"},
	}
	for i, w := range wants {
		f := findings[i]
		if f.Analyzer != "directive" {
			t.Errorf("finding %d analyzer = %q, want directive", i, f.Analyzer)
		}
		if f.Pos.Line != w.line || !strings.Contains(f.Message, w.frag) {
			t.Errorf("finding %d = %d:%q, want line %d containing %q", i, f.Pos.Line, f.Message, w.line, w.frag)
		}
	}
	if !allows.allowed("mpisession", at(7)) {
		t.Error("valid mpisession directive in the same file was dropped")
	}
}

// The directive vocabulary is every registered analyzer, independent of
// the subset a run enables: knownRules must cover All().
func TestKnownRulesCoversAllAnalyzers(t *testing.T) {
	known := knownRules()
	for _, a := range All() {
		if !known[a.Name] {
			t.Errorf("knownRules missing %q", a.Name)
		}
	}
	for _, a := range SPMDSafety() {
		if !known[a.Name] {
			t.Errorf("knownRules missing SPMD analyzer %q", a.Name)
		}
	}
}
