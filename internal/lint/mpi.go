package lint

import (
	"go/ast"
	"go/types"
)

// Shared recognition helpers: the analyzers identify the MPI layer
// structurally — a method on a named type Comm, World, or Request whose
// defining package is called "mpi" — rather than by import path, so the
// same analyzers work against repro/internal/mpi and against the fake
// mpi package the testdata fixtures declare.

// mpiMethod reports the receiver type name and method name when call is
// a method call on one of the mpi package's named types (through any
// level of pointerness).
func mpiMethod(info *types.Info, call *ast.CallExpr) (recv, method string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return "", "", false
	}
	named := namedMPIType(s.Recv())
	if named == "" {
		return "", "", false
	}
	return named, sel.Sel.Name, true
}

// namedMPIType returns the type's name when it is (a pointer to) a
// named type declared in a package called "mpi", and "" otherwise.
func namedMPIType(t types.Type) string {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "mpi" {
		return ""
	}
	return obj.Name()
}

// errReturning lists the Comm/World/Request methods whose (usually
// final) error result carries the fault-tolerance signal: typed errors
// like RankFailedError and ErrRevoked surface only here, so dropping
// one silently disables recovery.
var errReturning = map[string]map[string]bool{
	"Comm": setOf("Send", "Recv", "RecvTimeout", "Bcast", "NaiveBcast", "Reduce",
		"Allreduce", "ReduceSlice", "Gather", "Allgather", "Scatter",
		"Barrier", "Agree", "Shrink"),
	"World":   setOf("Run", "Shrink"),
	"Request": setOf("Wait"),
}

// collectives lists the operations every rank must execute in the same
// order — the SPMD symmetry Blue Gene's collective network assumes.
var collectives = setOf("Bcast", "NaiveBcast", "Reduce", "Allreduce", "ReduceSlice",
	"Gather", "Allgather", "Scatter", "Barrier", "Agree", "Shrink")

// taggedOps maps point-to-point operations to the index of their tag
// argument.
var taggedOps = map[string]int{
	"Send":        1,
	"Isend":       1,
	"Recv":        1,
	"RecvTimeout": 1,
	"Irecv":       1,
}

func setOf(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}
