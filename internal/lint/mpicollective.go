package lint

import (
	"go/ast"
	"go/types"
)

// MPICollective flags collective operations inside branches conditioned
// on the caller's rank — the classic SPMD deadlock.
//
// The paper's Blue Gene target runs collectives on a dedicated network
// that assumes every rank reaches every collective in the same order;
// this runtime's collectives likewise rendezvous all ranks. A Bcast
// under `if c.Rank() == 0` therefore blocks rank 0 against peers that
// never entered the call. Rank-dependent *work* belongs in branches;
// rank-dependent *collective sequences* do not. Sites where symmetry is
// maintained across both arms can annotate with //egdlint:allow.
var MPICollective = &Analyzer{
	Name: "mpicollective",
	Doc:  "collective mpi calls must not sit inside branches conditioned on Rank()",
	Run:  runMPICollective,
}

func runMPICollective(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			rankVars := collectRankVars(pass, fn.Body)
			walkConditioned(pass, rankVars, fn.Body, false)
		}
	}
	return nil
}

// collectRankVars finds variables assigned from Rank()/OrigRank() calls
// in the function, so `rank := c.Rank(); if rank == 0 { ... }` is
// recognised as well as the inline comparison.
func collectRankVars(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		asgn, ok := n.(*ast.AssignStmt)
		if !ok || len(asgn.Lhs) != len(asgn.Rhs) {
			return true
		}
		for i, rhs := range asgn.Rhs {
			if !isRankCall(pass, rhs) {
				continue
			}
			if id, ok := asgn.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					vars[obj] = true
				} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
					vars[obj] = true
				}
			}
		}
		return true
	})
	return vars
}

func isRankCall(pass *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	recv, method, ok := mpiMethod(pass.TypesInfo, call)
	return ok && recv == "Comm" && (method == "Rank" || method == "OrigRank")
}

// mentionsRank reports whether the expression reads the rank, directly
// or through a variable previously assigned from Rank().
func mentionsRank(pass *Pass, rankVars map[types.Object]bool, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isRankCall(pass, n) {
				found = true
			}
		case *ast.Ident:
			if rankVars[pass.TypesInfo.Uses[n]] {
				found = true
			}
		}
		return !found
	})
	return found
}

// walkConditioned descends the statement tree tracking whether the
// current position is lexically inside a rank-conditioned branch, and
// reports any collective reached while it is.
func walkConditioned(pass *Pass, rankVars map[types.Object]bool, n ast.Node, conditioned bool) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.IfStmt:
		walkConditioned(pass, rankVars, n.Init, conditioned)
		inspectExpr(pass, rankVars, n.Cond, conditioned)
		branchCond := conditioned || mentionsRank(pass, rankVars, n.Cond)
		walkConditioned(pass, rankVars, n.Body, branchCond)
		walkConditioned(pass, rankVars, n.Else, branchCond)
	case *ast.SwitchStmt:
		walkConditioned(pass, rankVars, n.Init, conditioned)
		tagCond := n.Tag != nil && mentionsRank(pass, rankVars, n.Tag)
		if n.Tag != nil {
			inspectExpr(pass, rankVars, n.Tag, conditioned)
		}
		for _, stmt := range n.Body.List {
			cc := stmt.(*ast.CaseClause)
			caseCond := conditioned || tagCond
			for _, e := range cc.List {
				inspectExpr(pass, rankVars, e, conditioned)
				if mentionsRank(pass, rankVars, e) {
					caseCond = true
				}
			}
			for _, s := range cc.Body {
				walkConditioned(pass, rankVars, s, caseCond)
			}
		}
	case *ast.ForStmt:
		walkConditioned(pass, rankVars, n.Init, conditioned)
		loopCond := conditioned
		if n.Cond != nil {
			inspectExpr(pass, rankVars, n.Cond, conditioned)
			loopCond = loopCond || mentionsRank(pass, rankVars, n.Cond)
		}
		walkConditioned(pass, rankVars, n.Post, loopCond)
		walkConditioned(pass, rankVars, n.Body, loopCond)
	case *ast.BlockStmt:
		for _, s := range n.List {
			walkConditioned(pass, rankVars, s, conditioned)
		}
	case *ast.LabeledStmt:
		walkConditioned(pass, rankVars, n.Stmt, conditioned)
	case *ast.RangeStmt:
		inspectExpr(pass, rankVars, n.X, conditioned)
		walkConditioned(pass, rankVars, n.Body, conditioned)
	case *ast.SelectStmt:
		walkConditioned(pass, rankVars, n.Body, conditioned)
	case *ast.CommClause:
		for _, s := range n.Body {
			walkConditioned(pass, rankVars, s, conditioned)
		}
	case *ast.TypeSwitchStmt:
		walkConditioned(pass, rankVars, n.Body, conditioned)
	case *ast.CaseClause:
		for _, s := range n.Body {
			walkConditioned(pass, rankVars, s, conditioned)
		}
	case ast.Stmt:
		inspectStmt(pass, rankVars, n, conditioned)
	}
}

// inspectStmt scans a leaf statement (assignments, expressions, go,
// defer, return, declarations) for collective calls, including inside
// any function literals it contains: a closure defined under a rank
// branch usually runs there too.
func inspectStmt(pass *Pass, rankVars map[types.Object]bool, s ast.Stmt, conditioned bool) {
	ast.Inspect(s, func(n ast.Node) bool {
		reportIfCollective(pass, n, conditioned)
		return true
	})
}

func inspectExpr(pass *Pass, rankVars map[types.Object]bool, e ast.Expr, conditioned bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		reportIfCollective(pass, n, conditioned)
		return true
	})
}

func reportIfCollective(pass *Pass, n ast.Node, conditioned bool) {
	if !conditioned {
		return
	}
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return
	}
	recv, method, ok := mpiMethod(pass.TypesInfo, call)
	if ok && (recv == "Comm" || recv == "World") && collectives[method] {
		pass.Reportf(call.Pos(), "collective mpi.%s.%s inside a branch conditioned on Rank(); every rank must execute the same collective sequence", recv, method)
	}
}
