package lint_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/lint"
)

// buildCFG type-checks src (a function body wrapped in a fixed harness
// of marker functions), builds the CFG of function f, and returns it
// with the tools to locate marker calls.
type cfgHarness struct {
	t    *testing.T
	g    *lint.CFG
	body *ast.BlockStmt
}

func buildCFG(t *testing.T, body string) *cfgHarness {
	t.Helper()
	src := `package p

func start()      {}
func hit()        {}
func other()      {}
func cond() bool  { return false }
func choice() int { return 0 }

func f() {
` + body + `
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default(), Error: func(error) {}}
	// Ignore type errors (e.g. unreachable markers): the builder only
	// needs the AST plus whatever info resolved.
	_, _ = conf.Check("p", fset, []*ast.File{file}, info)

	var fn *ast.FuncDecl
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			fn = fd
		}
	}
	if fn == nil {
		t.Fatal("no function f in harness source")
	}
	return &cfgHarness{t: t, g: lint.NewCFG(fn.Body, info), body: fn.Body}
}

// marker returns the ExprStmt calling the named marker function.
func (h *cfgHarness) marker(name string) ast.Node {
	h.t.Helper()
	var found ast.Node
	ast.Inspect(h.body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		if call, ok := es.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name && found == nil {
				found = es
			}
		}
		return true
	})
	if found == nil {
		h.t.Fatalf("no call to %s in harness body", name)
	}
	return found
}

// calls reports whether node n (or a child) calls the named function.
func calls(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
					found = true
				}
			}
			return !found
		})
		return found
	}
}

func (h *cfgHarness) everyPathHits(fromMarker, hitMarker string) bool {
	h.t.Helper()
	return h.g.EveryPathHits(h.marker(fromMarker), calls(hitMarker))
}

func TestEveryPathHitsLinear(t *testing.T) {
	h := buildCFG(t, `
	start()
	other()
	hit()
`)
	if !h.everyPathHits("start", "hit") {
		t.Error("straight-line hit not proven")
	}
	if h.everyPathHits("hit", "start") {
		t.Error("hit before from-node should not count")
	}
}

func TestEveryPathHitsEarlyReturn(t *testing.T) {
	h := buildCFG(t, `
	start()
	if cond() {
		return
	}
	hit()
`)
	if h.everyPathHits("start", "hit") {
		t.Error("early return skips hit; must not be proven")
	}
}

func TestEveryPathHitsBothArms(t *testing.T) {
	h := buildCFG(t, `
	start()
	if cond() {
		hit()
		return
	}
	hit()
`)
	if !h.everyPathHits("start", "hit") {
		t.Error("hit on both arms should be proven")
	}
}

func TestEveryPathHitsFatalExcused(t *testing.T) {
	h := buildCFG(t, `
	start()
	if cond() {
		panic("dies before hit")
	}
	hit()
`)
	if !h.everyPathHits("start", "hit") {
		t.Error("a path that panics cannot reach the exit; it is excused")
	}
}

func TestEveryPathHitsLoopContinue(t *testing.T) {
	h := buildCFG(t, `
	for i := 0; i < 3; i++ {
		start()
		if cond() {
			continue
		}
		hit()
	}
`)
	if h.everyPathHits("start", "hit") {
		t.Error("continue path exits the loop without hit; must not be proven")
	}
}

func TestEveryPathHitsLoopBreakAfter(t *testing.T) {
	h := buildCFG(t, `
	start()
	for i := 0; i < 3; i++ {
		if cond() {
			break
		}
	}
	hit()
`)
	if !h.everyPathHits("start", "hit") {
		t.Error("both loop exits (break, condition) flow into hit")
	}
}

func TestEveryPathHitsSwitch(t *testing.T) {
	h := buildCFG(t, `
	start()
	switch choice() {
	case 0:
		hit()
	case 1:
		hit()
	}
`)
	if h.everyPathHits("start", "hit") {
		t.Error("no default: control can fall past every case")
	}

	h = buildCFG(t, `
	start()
	switch choice() {
	case 0:
		hit()
	default:
		hit()
	}
`)
	if !h.everyPathHits("start", "hit") {
		t.Error("default present and every clause hits; should be proven")
	}
}

func TestEveryPathHitsFallthrough(t *testing.T) {
	h := buildCFG(t, `
	switch choice() {
	case 0:
		start()
		fallthrough
	case 1:
		hit()
	default:
	}
`)
	if !h.everyPathHits("start", "hit") {
		t.Error("fallthrough chains case 0 into case 1's hit")
	}
}

func TestEveryPathHitsSelect(t *testing.T) {
	h := buildCFG(t, `
	ch := make(chan int)
	start()
	select {
	case <-ch:
		hit()
	case v := <-ch:
		_ = v
		hit()
	}
`)
	if !h.everyPathHits("start", "hit") {
		t.Error("a select without default blocks until a clause runs; both hit")
	}
}

func TestEveryPathHitsLabeledBreak(t *testing.T) {
	h := buildCFG(t, `
outer:
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			start()
			if cond() {
				break outer
			}
		}
		hit()
	}
`)
	if h.everyPathHits("start", "hit") {
		t.Error("break outer skips the inner-loop epilogue hit")
	}
}

func TestReaches(t *testing.T) {
	h := buildCFG(t, `
	start()
	if cond() {
		return
	}
	hit()
	other()
`)
	if !h.g.Reaches(h.marker("start"), h.marker("hit")) {
		t.Error("start reaches hit on the fall-through path")
	}
	if !h.g.Reaches(h.marker("hit"), h.marker("other")) {
		t.Error("same-block ordering: hit precedes other")
	}
	if h.g.Reaches(h.marker("other"), h.marker("start")) {
		t.Error("no back edge: other must not reach start")
	}
}

func TestReachableBlocksPrunesDeadCode(t *testing.T) {
	h := buildCFG(t, `
	start()
	return
	hit()
`)
	blk, ok := h.g.Find(h.marker("hit"))
	if !ok {
		t.Fatal("dead statement not indexed")
	}
	if h.g.ReachableBlocks()[blk] {
		t.Error("statement after return must be unreachable")
	}
	ent, ok := h.g.Find(h.marker("start"))
	if !ok {
		t.Fatal("entry statement not indexed")
	}
	if !h.g.ReachableBlocks()[ent] {
		t.Error("entry statement must be reachable")
	}
}

func TestGuardsCarryBranchArms(t *testing.T) {
	h := buildCFG(t, `
	if cond() {
		start()
	} else {
		hit()
	}
	other()
`)
	thenBlk, ok := h.g.Find(h.marker("start"))
	if !ok {
		t.Fatal("then-arm statement not indexed")
	}
	elseBlk, ok := h.g.Find(h.marker("hit"))
	if !ok {
		t.Fatal("else-arm statement not indexed")
	}
	afterBlk, ok := h.g.Find(h.marker("other"))
	if !ok {
		t.Fatal("merge statement not indexed")
	}
	if n := len(thenBlk.Guards); n != 1 || thenBlk.Guards[0].Branch != 0 {
		t.Errorf("then arm guards = %+v, want one guard with Branch 0", thenBlk.Guards)
	}
	if n := len(elseBlk.Guards); n != 1 || elseBlk.Guards[0].Branch != 1 {
		t.Errorf("else arm guards = %+v, want one guard with Branch 1", elseBlk.Guards)
	}
	if len(afterBlk.Guards) != 0 {
		t.Errorf("merge block guards = %+v, want none", afterBlk.Guards)
	}
	if thenBlk.Guards[0].Stmt != elseBlk.Guards[0].Stmt {
		t.Error("both arms must share the same branching statement")
	}
	if !strings.Contains(types.ExprString(thenBlk.Guards[0].Cond), "cond()") {
		t.Errorf("guard condition = %s, want the if condition", types.ExprString(thenBlk.Guards[0].Cond))
	}
}
