package lint

// All returns the full egdlint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		MPIErrCheck,
		MPIRequest,
		MPICollective,
		MPITag,
		MPISession,
		Determinism,
		PkgDoc,
	}
}

// SPMDSafety returns the analyzers whose findings are hangs or
// divergence rather than style: the subset worth running over test
// files too (see RunAnalyzersTests).
func SPMDSafety() []*Analyzer {
	return []*Analyzer{
		MPIRequest,
		MPICollective,
		MPISession,
	}
}

// knownRules is the directive vocabulary: every registered analyzer
// name is a valid //egdlint:allow rule regardless of which subset a
// particular run enables, so a file annotated for the full suite does
// not trip "unknown rule" findings under -tests.
func knownRules() map[string]bool {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	return known
}
