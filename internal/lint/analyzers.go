package lint

// All returns the full egdlint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		MPIErrCheck,
		MPIRequest,
		MPICollective,
		MPITag,
		Determinism,
		PkgDoc,
	}
}
