package lint_test

import (
	"os/exec"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// The fixture harness shells out to `go list -export`; skip everywhere
// the go tool itself is unavailable.
func needGo(t *testing.T) {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}
}

func TestMPIErrCheck(t *testing.T) {
	needGo(t)
	linttest.Run(t, lint.MPIErrCheck, "errcheck")
}

func TestMPIRequest(t *testing.T) {
	needGo(t)
	linttest.Run(t, lint.MPIRequest, "request")
}

func TestMPISession(t *testing.T) {
	needGo(t)
	linttest.Run(t, lint.MPISession, "session")
}

func TestMPICollective(t *testing.T) {
	needGo(t)
	linttest.Run(t, lint.MPICollective, "collective")
}

func TestMPITag(t *testing.T) {
	needGo(t)
	linttest.Run(t, lint.MPITag, "tag", "wirekind")
}

func TestPkgDoc(t *testing.T) {
	needGo(t)
	linttest.Run(t, lint.PkgDoc,
		"pkgdoc/missing", "pkgdoc/wrongform", "pkgdoc/good", "pkgdoc/mainmissing")
}

func TestDeterminism(t *testing.T) {
	needGo(t)
	old := lint.DeterministicPaths
	lint.DeterministicPaths = append(append([]string(nil), old...), "fixtures/determinism")
	defer func() { lint.DeterministicPaths = old }()
	linttest.Run(t, lint.Determinism, "determinism")
}

// The determinism analyzer must stay silent outside the configured
// deterministic packages: the same fixture loaded without registering
// its path yields no findings.
func TestDeterminismScopedToConfiguredPackages(t *testing.T) {
	needGo(t)
	findings, err := lint.RunAnalyzers("testdata/src", []string{"./determinism"},
		[]*lint.Analyzer{lint.Determinism})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Analyzer == "determinism" {
			t.Errorf("finding outside deterministic packages: %s", f)
		}
	}
}
