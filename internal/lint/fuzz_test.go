package lint

import (
	"strings"
	"testing"
)

// FuzzDirective holds the //egdlint:allow parser to its contract: it
// never panics, a well-formed directive yields a known rule and no
// problem, and every malformed one yields exactly one problem message
// (the "directive" finding collectDirectives reports) and no rule —
// never both, never neither.
func FuzzDirective(f *testing.F) {
	f.Add("//egdlint:allow mpisession peer half lives in the launcher binary")
	f.Add("//egdlint:allow determinism wall-clock is display-only here")
	f.Add("//egdlint:allow")
	f.Add("//egdlint:allow ")
	f.Add("//egdlint:allow mpirequest")
	f.Add("//egdlint:allow nosuchrule because reasons")
	f.Add("//egdlint:allow\t\tmpitag odd spacing")
	f.Add("//egdlint:allow \x00 binary junk \xff")
	f.Add("//egdlint:allowmpitag no space after prefix")
	f.Fuzz(func(t *testing.T, text string) {
		known := knownRules()
		rule, problem, ok := parseDirective(text, known)
		if ok {
			if problem != "" {
				t.Fatalf("parseDirective(%q) ok but with problem %q", text, problem)
			}
			if !known[rule] {
				t.Fatalf("parseDirective(%q) accepted unknown rule %q", text, rule)
			}
			return
		}
		if rule != "" {
			t.Fatalf("parseDirective(%q) rejected but returned rule %q", text, rule)
		}
		if problem == "" {
			t.Fatalf("parseDirective(%q) rejected without a problem message", text)
		}
		if strings.ContainsAny(problem, "\n\r") {
			t.Fatalf("parseDirective(%q) problem spans lines: %q", text, problem)
		}
	})
}
