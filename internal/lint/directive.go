package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces a suppression comment. Grammar:
//
//	//egdlint:allow <rule> <reason...>
//
// The directive suppresses findings of analyzer <rule> on its own line
// and on the line immediately below it (so it works both as a trailing
// comment and as a standalone comment above the flagged statement).
// The reason is mandatory: an allow without one is itself a finding.
const directivePrefix = "//egdlint:allow"

// allowSet records, per file and line, which analyzers are suppressed.
type allowSet map[string]map[int]map[string]bool // filename -> line -> rule

func (s allowSet) add(file string, line int, rule string) {
	byLine := s[file]
	if byLine == nil {
		byLine = make(map[int]map[string]bool)
		s[file] = byLine
	}
	for _, l := range []int{line, line + 1} {
		if byLine[l] == nil {
			byLine[l] = make(map[string]bool)
		}
		byLine[l][rule] = true
	}
}

func (s allowSet) allowed(rule string, pos token.Position) bool {
	return s[pos.Filename][pos.Line][rule]
}

// collectDirectives scans every comment in the package for
// //egdlint:allow directives. It returns the suppression set plus
// findings for malformed directives: a missing reason or an unknown
// rule name (both under the pseudo-analyzer "directive", which cannot
// itself be suppressed).
func collectDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool) (allowSet, []Finding) {
	allows := make(allowSet)
	var findings []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rule, problem, ok := parseDirective(c.Text, known)
				if !ok {
					findings = append(findings, Finding{Analyzer: "directive", Pos: pos, Message: problem})
					continue
				}
				allows.add(pos.Filename, pos.Line, rule)
			}
		}
	}
	return allows, findings
}

// parseDirective parses one //egdlint:allow comment (text includes the
// prefix). It either returns the suppressed rule (ok) or exactly one
// problem message for the "directive" pseudo-analyzer (!ok) — never
// both, never neither: the fuzz target FuzzDirective holds it to that.
func parseDirective(text string, known map[string]bool) (rule, problem string, ok bool) {
	rest := strings.TrimPrefix(text, directivePrefix)
	fields := strings.Fields(rest)
	switch {
	case len(fields) == 0:
		return "", "egdlint:allow needs a rule name and a reason", false
	case !known[fields[0]]:
		return "", "egdlint:allow names unknown rule " + quote(fields[0]), false
	case len(fields) < 2:
		return "", "egdlint:allow " + fields[0] + " needs a reason", false
	}
	return fields[0], "", true
}

func quote(s string) string { return `"` + s + `"` }
