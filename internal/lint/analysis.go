// Package lint is egdlint: a suite of static analyzers enforcing the
// MPI-usage and determinism invariants the paper's reproduction depends
// on — every rank executes the same collective sequence (Blue Gene's
// collective network assumes SPMD symmetry) and the game/population
// dynamics are bit-reproducible from seeded RNG streams (live-eviction
// replay recovers bit-identically only because of it).
//
// The package is a self-contained, stdlib-only reimplementation of the
// subset of golang.org/x/tools/go/analysis that the suite needs: the
// container has no module proxy access, so the x/tools dependency is
// gated out and the Analyzer/Pass surface below mirrors its API shape.
// Porting an analyzer to the real framework is a mechanical change of
// import paths.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check, mirroring analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// //egdlint:allow directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package,
// mirroring analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a diagnostic resolved to a file position and tagged with
// the analyzer that produced it.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// RunAnalyzers loads the packages matched by patterns (resolved in dir)
// and applies every analyzer to each, honouring //egdlint:allow
// suppression directives. Findings come back sorted by position.
// Malformed directives (missing reason, unknown rule) are themselves
// reported under the pseudo-analyzer "directive".
func RunAnalyzers(dir string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	fset, pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	return runOnPackages(fset, pkgs, analyzers, "")
}

// RunAnalyzersTests loads each package's in-package test variant
// (production files plus TestGoFiles type-checked together) and applies
// the analyzers — callers pass SPMDSafety(), not All(): test files
// legitimately use bare tag literals, discarded errors, and wall-clock
// time, but an unmatched Send/Recv or an unwaited Request in a test is
// the same hang it is in production. Findings are filtered to _test.go
// files; the production files were already covered by the plain run.
func RunAnalyzersTests(dir string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	fset, pkgs, err := LoadTests(dir, patterns)
	if err != nil {
		return nil, err
	}
	return runOnPackages(fset, pkgs, analyzers, "_test.go")
}

func runOnPackages(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, fileSuffix string) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		fs, err := runOnPackage(fset, pkg, analyzers)
		if err != nil {
			return nil, err
		}
		for _, f := range fs {
			if fileSuffix != "" && !strings.HasSuffix(f.Pos.Filename, fileSuffix) {
				continue
			}
			findings = append(findings, f)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// runOnPackage applies the analyzers to one loaded package and filters
// the diagnostics through its allow directives.
func runOnPackage(fset *token.FileSet, pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	// The directive vocabulary is every registered rule, not just the
	// analyzers this run enables: an allow for a suite-run analyzer must
	// not become an "unknown rule" finding under a subset run.
	allows, findings := collectDirectives(fset, pkg.Files, knownRules())
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		pass.report = func(d Diagnostic) {
			pos := fset.Position(d.Pos)
			if allows.allowed(a.Name, pos) {
				return
			}
			findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	return findings, nil
}
