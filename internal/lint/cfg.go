package lint

// cfg.go is the suite's intra-function control-flow layer: basic blocks
// over go/ast with branch, loop, defer, and labeled-jump edges, built
// per function body (function literals are separate graphs — a closure
// is its own function). Two query families sit on top:
//
//   - all-paths: EveryPathHits — must every execution from a statement
//     to the function's exit pass a node satisfying a predicate? This
//     is what lets mpirequest prove a *Request reaches Wait/Cancel on
//     every path, not just on one.
//   - any-path: Reaches / ReachableBlocks — plain reachability, used to
//     prune dead code before an analyzer trusts an operation to run.
//
// Each block also carries its guard stack: the branch decisions (if
// condition + arm, switch tag + case, loop condition) lexically active
// when the block was created. mpisession reads the guards to slice a
// function into per-rank-role sides of a Rank() branch.
//
// The builder is deliberately conservative where exactness is costly:
// guard stacks are lexical (code after an `if { return }` merge carries
// the pre-branch guards, not the negated condition), and a block ending
// in a call that provably never returns (panic, os.Exit, log.Fatal*,
// runtime.Goexit, testing's Fatal/FailNow/Skip family) is marked Fatal
// and excused from all-paths queries — a path that dies cannot leak.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry  *Block
	Exit   *Block // single synthetic exit; reached by return and fall-through
	Blocks []*Block

	index map[ast.Node]blockPos
	reach map[*Block]bool // lazily computed entry-reachability
}

type blockPos struct {
	b *Block
	i int
}

// Block is a basic block: statements and condition expressions that
// execute in sequence, with control entering only at the top.
type Block struct {
	Index  int
	Nodes  []ast.Node
	Succs  []*Block
	Guards []Guard
	// Fatal marks a block whose last node is a call that never returns
	// (panic, os.Exit, t.Fatal, ...): control does not reach Exit.
	Fatal bool
}

// Guard is one branch decision on a block's guard stack.
type Guard struct {
	// Stmt is the branching statement: *ast.IfStmt, *ast.SwitchStmt,
	// *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.ForStmt, *ast.RangeStmt.
	Stmt ast.Stmt
	// Branch is the arm index: 0 = then / loop body, 1 = else; for
	// switch and select it is the clause index in source order.
	Branch int
	// Cond is the if/for condition or the switch tag (nil when absent).
	Cond ast.Expr
	// Cases holds a switch clause's case expressions (nil for default
	// clauses and for non-switch guards).
	Cases []ast.Expr
}

// NewCFG builds the control-flow graph of body. info may be nil; when
// present it sharpens never-returns detection (testing.T receivers).
// Nested function literals are not descended into — their statements
// belong to their own graphs.
func NewCFG(body *ast.BlockStmt, info *types.Info) *CFG {
	b := &cfgBuilder{
		g:      &CFG{index: make(map[ast.Node]blockPos)},
		info:   info,
		labels: make(map[string]*Block),
	}
	b.g.Exit = b.newBlock(nil) // created first so Index 0 is the exit
	b.g.Entry = b.newBlock(nil)
	b.cur = b.g.Entry
	b.stmts(body.List)
	b.link(b.cur, b.g.Exit)
	return b.g
}

// Find returns the block holding node n, if n was recorded in the graph.
func (g *CFG) Find(n ast.Node) (*Block, bool) {
	p, ok := g.index[n]
	return p.b, ok
}

// ReachableBlocks returns the set of blocks reachable from Entry.
func (g *CFG) ReachableBlocks() map[*Block]bool {
	if g.reach != nil {
		return g.reach
	}
	g.reach = make(map[*Block]bool)
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if g.reach[blk] {
			continue
		}
		g.reach[blk] = true
		stack = append(stack, blk.Succs...)
	}
	return g.reach
}

// Reaches reports whether any path leads from node `from` to node `to`.
// Nodes in the same block are ordered by position in the block.
func (g *CFG) Reaches(from, to ast.Node) bool {
	pf, ok := g.index[from]
	if !ok {
		return false
	}
	pt, ok := g.index[to]
	if !ok {
		return false
	}
	if pf.b == pt.b && pt.i > pf.i {
		return true
	}
	seen := map[*Block]bool{}
	stack := append([]*Block(nil), pf.b.Succs...)
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[blk] {
			continue
		}
		seen[blk] = true
		if blk == pt.b {
			return true
		}
		stack = append(stack, blk.Succs...)
	}
	return false
}

// EveryPathHits reports whether every execution path from node `from`
// (exclusive) to the function's exit passes at least one node for which
// hit returns true. Paths that terminate in a Fatal block (panic,
// os.Exit, ...) or loop forever never reach the exit and are excused.
// An unindexed `from` returns false — the conservative answer for the
// "is this obligation provably met" question the callers ask.
func (g *CFG) EveryPathHits(from ast.Node, hit func(ast.Node) bool) bool {
	p, ok := g.index[from]
	if !ok {
		return false
	}
	// visited marks blocks whose full scan (from node 0) is underway or
	// done without the branch having been pruned by a hit; re-entering
	// one means a cycle, which never reaches the exit on its own.
	visited := map[*Block]bool{}
	var walk func(blk *Block, start int) bool
	walk = func(blk *Block, start int) bool {
		for i := start; i < len(blk.Nodes); i++ {
			if hit(blk.Nodes[i]) {
				return true
			}
		}
		if blk.Fatal {
			return true
		}
		if blk == g.Exit {
			return false
		}
		for _, s := range blk.Succs {
			if visited[s] {
				continue
			}
			visited[s] = true
			if !walk(s, 0) {
				return false
			}
		}
		return true
	}
	return walk(p.b, p.i+1)
}

type cfgBuilder struct {
	g    *CFG
	info *types.Info
	cur  *Block

	// breaks/continues are the enclosing jump targets, innermost last;
	// an empty label matches the innermost, a named one its loop/switch.
	breaks    []jumpTarget
	continues []jumpTarget
	labels    map[string]*Block // goto targets, created on demand
	fallTo    *Block            // fallthrough target within a switch clause
	// pendingLabel names the label attached to the next loop/switch, so
	// labeled break/continue resolve to it.
	pendingLabel string
}

type jumpTarget struct {
	label string
	block *Block
}

func (b *cfgBuilder) newBlock(guards []Guard) *Block {
	blk := &Block{Index: len(b.g.Blocks), Guards: guards}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// dead starts a fresh unreachable block (no predecessors) after a
// terminating statement, so construction can continue uniformly.
func (b *cfgBuilder) dead(guards []Guard) *Block {
	return b.newBlock(guards)
}

func (b *cfgBuilder) link(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *cfgBuilder) add(n ast.Node) {
	b.addTo(b.cur, n)
}

func (b *cfgBuilder) addTo(blk *Block, n ast.Node) {
	if n == nil {
		return
	}
	if _, ok := b.g.index[n]; ok {
		return
	}
	b.g.index[n] = blockPos{blk, len(blk.Nodes)}
	blk.Nodes = append(blk.Nodes, n)
}

// pushGuard returns a copy of guards extended by g; copies keep sibling
// arms from sharing backing arrays.
func pushGuard(guards []Guard, g Guard) []Guard {
	out := make([]Guard, len(guards)+1)
	copy(out, guards)
	out[len(guards)] = g
	return out
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	// A label pending from a LabeledStmt applies only to the statement
	// immediately following it; consume it here and hand it to the
	// breakable constructs below.
	label := b.pendingLabel
	b.pendingLabel = ""

	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
	case *ast.BlockStmt:
		b.stmts(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, label)
	case *ast.RangeStmt:
		b.rangeStmt(s, label)
	case *ast.SwitchStmt:
		b.switchStmt(s, label)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, label)
	case *ast.SelectStmt:
		b.selectStmt(s, label)
	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name, b.cur.Guards)
		b.link(b.cur, lb)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.link(b.cur, b.g.Exit)
		b.cur = b.dead(b.cur.Guards)
	case *ast.ExprStmt:
		b.add(s)
		if b.neverReturns(s.X) {
			b.cur.Fatal = true
			b.cur = b.dead(b.cur.Guards)
		}
	default:
		// Assignments, declarations, defer/go, send, inc/dec: straight-line.
		b.add(s)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	base := cond.Guards
	after := b.newBlock(base)

	then := b.newBlock(pushGuard(base, Guard{Stmt: s, Branch: 0, Cond: s.Cond}))
	b.link(cond, then)
	b.cur = then
	b.stmt(s.Body)
	b.link(b.cur, after)

	if s.Else != nil {
		els := b.newBlock(pushGuard(base, Guard{Stmt: s, Branch: 1, Cond: s.Cond}))
		b.link(cond, els)
		b.cur = els
		b.stmt(s.Else)
		b.link(b.cur, after)
	} else {
		b.link(cond, after)
	}
	b.cur = after
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	base := b.cur.Guards
	head := b.newBlock(base)
	b.link(b.cur, head)
	if s.Cond != nil {
		b.addTo(head, s.Cond)
	}
	bodyGuards := pushGuard(base, Guard{Stmt: s, Branch: 0, Cond: s.Cond})
	body := b.newBlock(bodyGuards)
	after := b.newBlock(base)
	latch := b.newBlock(bodyGuards) // continue target: post statement, back edge
	b.link(head, body)
	if s.Cond != nil {
		b.link(head, after)
	}
	if s.Post != nil {
		b.addTo(latch, s.Post)
	}
	b.link(latch, head)

	b.breaks = append(b.breaks, jumpTarget{label, after})
	b.continues = append(b.continues, jumpTarget{label, latch})
	b.cur = body
	b.stmt(s.Body)
	b.link(b.cur, latch)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	b.add(s.X)
	base := b.cur.Guards
	head := b.newBlock(base)
	b.link(b.cur, head)
	body := b.newBlock(pushGuard(base, Guard{Stmt: s, Branch: 0}))
	after := b.newBlock(base)
	b.link(head, body)
	b.link(head, after)

	b.breaks = append(b.breaks, jumpTarget{label, after})
	b.continues = append(b.continues, jumpTarget{label, head})
	b.cur = body
	b.stmt(s.Body)
	b.link(b.cur, head)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.cur = after
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	b.caseClauses(s, s.Tag, s.Body.List, label, true)
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	b.caseClauses(s, nil, s.Body.List, label, false)
}

// caseClauses wires a (type) switch: head fans out to one block per
// clause; a missing default adds the fall-past edge; fallthrough (value
// switches only) chains clause bodies.
func (b *cfgBuilder) caseClauses(s ast.Stmt, tag ast.Expr, clauses []ast.Stmt, label string, allowFall bool) {
	head := b.cur
	base := head.Guards
	after := b.newBlock(base)
	blks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		blks[i] = b.newBlock(pushGuard(base, Guard{Stmt: s, Branch: i, Cond: tag, Cases: cc.List}))
		b.link(head, blks[i])
		for _, e := range cc.List {
			b.addTo(blks[i], e)
		}
	}
	if !hasDefault {
		b.link(head, after)
	}
	b.breaks = append(b.breaks, jumpTarget{label, after})
	savedFall := b.fallTo
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		b.fallTo = nil
		if allowFall && i+1 < len(blks) {
			b.fallTo = blks[i+1]
		}
		b.cur = blks[i]
		b.stmts(cc.Body)
		b.link(b.cur, after)
	}
	b.fallTo = savedFall
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	base := head.Guards
	after := b.newBlock(base)
	hasDefault := false
	blks := make([]*Block, len(s.Body.List))
	for i, cl := range s.Body.List {
		cc := cl.(*ast.CommClause)
		if cc.Comm == nil {
			hasDefault = true
		}
		blks[i] = b.newBlock(pushGuard(base, Guard{Stmt: s, Branch: i}))
		b.link(head, blks[i])
		if cc.Comm != nil {
			b.addTo(blks[i], cc.Comm)
		}
	}
	// Without a default a select blocks until some clause fires, so the
	// only paths out run through a clause body — no head->after edge.
	_ = hasDefault
	b.breaks = append(b.breaks, jumpTarget{label, after})
	for i, cl := range s.Body.List {
		cc := cl.(*ast.CommClause)
		b.cur = blks[i]
		b.stmts(cc.Body)
		b.link(b.cur, after)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		b.link(b.cur, findTarget(b.breaks, label))
	case token.CONTINUE:
		b.link(b.cur, findTarget(b.continues, label))
	case token.GOTO:
		b.link(b.cur, b.labelBlock(label, b.cur.Guards))
	case token.FALLTHROUGH:
		b.link(b.cur, b.fallTo)
	}
	b.cur = b.dead(b.cur.Guards)
}

func findTarget(stack []jumpTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

func (b *cfgBuilder) labelBlock(name string, guards []Guard) *Block {
	if blk, ok := b.labels[name]; ok {
		if blk.Guards == nil {
			blk.Guards = guards
		}
		return blk
	}
	blk := b.newBlock(guards)
	b.labels[name] = blk
	return blk
}

// fatalFuncs lists package-level functions that never return, keyed by
// package path then name.
var fatalFuncs = map[string]map[string]bool{
	"os":      setOf("Exit"),
	"log":     setOf("Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln"),
	"runtime": setOf("Goexit"),
}

// fatalTestMethods lists methods on testing's T/B/F that stop the
// calling goroutine (the test function) without returning.
var fatalTestMethods = setOf("Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow")

// neverReturns reports whether e is a call that provably does not
// return: panic, a fatalFuncs entry, or a fatal testing method.
func (b *cfgBuilder) neverReturns(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if b.info == nil {
			return false
		}
		if obj, ok := b.info.Uses[fun.Sel].(*types.Func); ok && obj.Pkg() != nil {
			if sel := b.info.Selections[fun]; sel == nil {
				// Package-qualified call: match by package path + name.
				return fatalFuncs[obj.Pkg().Path()][obj.Name()]
			} else if sel.Kind() == types.MethodVal {
				// Method call: testing.T/B/F's Fatal family.
				if obj.Pkg().Path() == "testing" && fatalTestMethods[fun.Sel.Name] {
					return true
				}
			}
		}
	}
	return false
}
