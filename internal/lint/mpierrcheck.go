package lint

import (
	"go/ast"
)

// MPIErrCheck flags discarded results of mpi communication calls.
//
// Every Comm/World/Request operation reports rank failure through its
// error result — RankFailedError from a poisoned endpoint, ErrRevoked
// after an eviction, ErrRecvTimeout from a stalled peer. Discarding one
// silently turns a detectable failure into a hang or a corrupted
// trajectory, so the result must be consumed: checked, returned, or
// suppressed with an explicit //egdlint:allow mpierrcheck directive at
// a site that can justify it.
var MPIErrCheck = &Analyzer{
	Name: "mpierrcheck",
	Doc:  "mpi Comm/World/Request results must not be discarded: the typed errors carry the fault-tolerance signal",
	Run:  runMPIErrCheck,
}

func runMPIErrCheck(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if recv, method, ok := errReturningCall(pass, n.X); ok {
					pass.Reportf(n.Pos(), "result of mpi.%s.%s discarded; its error carries the fault-tolerance signal", recv, method)
				}
			case *ast.GoStmt:
				if recv, method, ok := errReturningCall(pass, n.Call); ok {
					pass.Reportf(n.Pos(), "go statement discards the result of mpi.%s.%s", recv, method)
				}
			case *ast.DeferStmt:
				if recv, method, ok := errReturningCall(pass, n.Call); ok {
					pass.Reportf(n.Pos(), "defer statement discards the result of mpi.%s.%s", recv, method)
				}
			case *ast.AssignStmt:
				checkAssignDiscard(pass, n)
			}
			return true
		})
	}
	return nil
}

// errReturningCall reports whether e is a call to an error-returning
// mpi method.
func errReturningCall(pass *Pass, e ast.Expr) (recv, method string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	recv, method, isMPI := mpiMethod(pass.TypesInfo, call)
	if !isMPI || !errReturning[recv][method] {
		return "", "", false
	}
	return recv, method, true
}

// checkAssignDiscard flags assignments that blank out the error result
// of an mpi call: `_ = c.Barrier()`, `msg, _ := c.Recv(...)`, and the
// paired form `a, _ := f(), c.Send(...)`. The error is always the final
// result, so only the last corresponding LHS position matters.
func checkAssignDiscard(pass *Pass, n *ast.AssignStmt) {
	if len(n.Rhs) == 1 {
		recv, method, ok := errReturningCall(pass, n.Rhs[0])
		if !ok {
			return
		}
		if isBlank(n.Lhs[len(n.Lhs)-1]) {
			pass.Reportf(n.Pos(), "error result of mpi.%s.%s assigned to _; check it instead", recv, method)
		}
		return
	}
	for i, rhs := range n.Rhs {
		if i >= len(n.Lhs) || !isBlank(n.Lhs[i]) {
			continue
		}
		if recv, method, ok := errReturningCall(pass, rhs); ok {
			pass.Reportf(rhs.Pos(), "error result of mpi.%s.%s assigned to _; check it instead", recv, method)
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
