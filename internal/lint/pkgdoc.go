package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// PkgDoc requires every package to carry a package-level doc comment.
// Non-main packages must use godoc's canonical "Package <name> ..."
// opening so the generated documentation index reads uniformly; main
// packages may open however they like (the repo's convention is
// "Command <name> ..."), but must say something. A missing comment is
// reported once, at the package clause of the package's first file in
// filename order, so the finding is stable across load orders.
var PkgDoc = &Analyzer{
	Name: "pkgdoc",
	Doc:  "every package must have a package comment; non-main packages in godoc's \"Package <name>\" form",
	Run:  runPkgDoc,
}

func runPkgDoc(pass *Pass) error {
	var docs []*ast.File
	for _, f := range pass.Files {
		if f.Doc != nil {
			docs = append(docs, f)
		}
	}
	name := ""
	if len(pass.Files) > 0 {
		name = pass.Files[0].Name.Name
	}
	if len(docs) == 0 {
		if pos := firstPackageClause(pass); pos != token.NoPos {
			if name == "main" {
				pass.Reportf(pos, "command package has no doc comment; document the command (\"Command <name> ...\")")
			} else {
				pass.Reportf(pos, "package %s has no package comment; document it in godoc's \"Package %s ...\" form", name, name)
			}
		}
		return nil
	}
	if name == "main" {
		return nil
	}
	want := "Package " + name
	for _, f := range docs {
		text := f.Doc.Text()
		if !strings.HasPrefix(text, want+" ") && !strings.HasPrefix(text, want+"\n") &&
			strings.TrimRight(text, "\n") != want {
			pass.Reportf(f.Doc.Pos(), "package comment for %s must start %q", name, want)
		}
	}
	return nil
}

// firstPackageClause returns the position of the package clause in the
// package's first file by filename, NoPos for an empty package.
func firstPackageClause(pass *Pass) token.Pos {
	best := token.NoPos
	bestName := ""
	for _, f := range pass.Files {
		fname := pass.Fset.Position(f.Package).Filename
		if best == token.NoPos || fname < bestName {
			best, bestName = f.Package, fname
		}
	}
	return best
}
