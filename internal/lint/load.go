package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed, and type-checked target package.
type Package struct {
	Path      string
	Name      string
	Dir       string
	GoFiles   []string
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the slice of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns (relative to dir) with the go tool, then
// parses and type-checks each matched package from source. Imports are
// satisfied from the compiler export data `go list -export` produces,
// so loading works offline and never re-type-checks dependencies —
// the same strategy x/tools' unitchecker uses under `go vet`.
//
// Only non-test GoFiles are loaded: the invariants egdlint enforces
// protect the simulation's production ranks; tests exercise the fault
// paths with patterns (bare literals, discarded results) the analyzers
// would have to special-case.
func Load(dir string, patterns []string) (*token.FileSet, []*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}

	exports := make(map[string]string, len(listed))
	var targets []*listedPackage
	for _, p := range listed {
		if p.Error != nil && !p.DepOnly {
			return nil, nil, fmt.Errorf("lint: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(exp)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, p := range targets {
		if p.Name == "main" && len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := typeCheck(fset, imp, p)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return fset, pkgs, nil
}

func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Export,DepOnly,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %w\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var listed []*listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		listed = append(listed, &p)
	}
	return listed, nil
}

func typeCheck(fset *token.FileSet, imp types.Importer, p *listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", p.ImportPath, err)
	}
	return &Package{
		Path:      p.ImportPath,
		Name:      p.Name,
		Dir:       p.Dir,
		GoFiles:   p.GoFiles,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
