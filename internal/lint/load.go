package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed, and type-checked target package.
type Package struct {
	Path      string
	Name      string
	Dir       string
	GoFiles   []string
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the slice of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	ForTest    string // set on test variants: the import path under test
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns (relative to dir) with the go tool, then
// parses and type-checks each matched package from source. Imports are
// satisfied from the compiler export data `go list -export` produces,
// so loading works offline and never re-type-checks dependencies —
// the same strategy x/tools' unitchecker uses under `go vet`.
//
// Only non-test GoFiles are loaded: the invariants egdlint enforces
// protect the simulation's production ranks; tests exercise the fault
// paths with patterns (bare literals, discarded results) the analyzers
// would have to special-case. LoadTests opts test files in for the
// analyzers whose findings are hangs rather than style.
func Load(dir string, patterns []string) (*token.FileSet, []*Package, error) {
	return load(dir, patterns, false)
}

// LoadTests is Load in test mode: `go list -test` adds each package's
// in-package test variant (production files plus TestGoFiles, compiled
// as one package), and those variants replace the plain packages as
// targets. External _test packages are skipped — their imports resolve
// against test-variant export data the offline loader does not build —
// and this repo keeps its test files in-package.
func LoadTests(dir string, patterns []string) (*token.FileSet, []*Package, error) {
	return load(dir, patterns, true)
}

func load(dir string, patterns []string, tests bool) (*token.FileSet, []*Package, error) {
	listed, err := goList(dir, patterns, tests)
	if err != nil {
		return nil, nil, err
	}

	exports := make(map[string]string, len(listed))
	var targets []*listedPackage
	for _, p := range listed {
		if p.Error != nil && !p.DepOnly {
			return nil, nil, fmt.Errorf("lint: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			// A test variant's ImportPath carries a " [pkg.test]" suffix;
			// imports in source always name the plain path, so key by it and
			// keep the plain package's export when both appear.
			key, _, isVariant := strings.Cut(p.ImportPath, " [")
			if _, dup := exports[key]; !dup || !isVariant {
				exports[key] = p.Export
			}
		}
		if p.DepOnly {
			continue
		}
		if tests {
			// Keep only in-package test variants (ForTest set, package name
			// without the _test suffix): they hold the TestGoFiles.
			if p.ForTest == "" || strings.HasSuffix(p.Name, "_test") || strings.HasSuffix(p.ImportPath, ".test") {
				continue
			}
			variant := *p
			if i := strings.Index(variant.ImportPath, " ["); i >= 0 {
				variant.ImportPath = variant.ImportPath[:i]
			}
			targets = append(targets, &variant)
			continue
		}
		targets = append(targets, p)
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(exp)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, p := range targets {
		if p.Name == "main" && len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := typeCheck(fset, imp, p)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return fset, pkgs, nil
}

func goList(dir string, patterns []string, tests bool) ([]*listedPackage, error) {
	args := []string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,ForTest,GoFiles,Export,DepOnly,Error",
	}
	if tests {
		args = append(args, "-test")
	}
	args = append(append(args, "--"), patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %w\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var listed []*listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		listed = append(listed, &p)
	}
	return listed, nil
}

func typeCheck(fset *token.FileSet, imp types.Importer, p *listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", p.ImportPath, err)
	}
	return &Package{
		Path:      p.ImportPath,
		Name:      p.Name,
		Dir:       p.Dir,
		GoFiles:   p.GoFiles,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
