package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterministicPaths lists the package import paths whose computation
// must be bit-reproducible from seeded RNG streams. The parallel
// engine's exactness guarantee — and live eviction's one-generation
// replay, which recovers *bit-identical* results after a rank death —
// hold only while these packages take no input from wall clocks,
// process-global RNGs, or map iteration order. The job service rides on
// the same guarantee: a paused job's resumed segment must replay the
// exact trajectory an uninterrupted run would have taken, so the server
// package obeys the same rules (its token-bucket clock is an annotated
// exception that never feeds a trajectory).
var DeterministicPaths = []string{
	"repro/internal/sim",
	"repro/internal/game",
	"repro/internal/strategy",
	"repro/internal/rng",
	"repro/internal/analysis",
	"repro/internal/replicator",
	"repro/internal/server",
}

// Determinism forbids nondeterministic inputs in the deterministic
// packages: wall-clock reads (time.Now/Since/Until), the process-global
// math/rand generators (seeded implicitly, shared across goroutines),
// and `range` over maps whose body feeds computation or output.
//
// Map iteration is allowed when the body is visibly order-insensitive:
// deleting entries, integer counting, constant stores, or collecting
// keys that a later sort call puts back in a canonical order. Anything
// else — float accumulation, output, early exit — must iterate sorted
// keys instead, or carry an //egdlint:allow determinism directive
// (legitimate wall-clock sites such as heartbeats and elapsed-time
// traces use the same escape).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "deterministic packages must not read wall clocks, global math/rand, or unsorted map iteration order",
	Run:  runDeterminism,
}

// forbiddenTimeFuncs read the wall clock.
var forbiddenTimeFuncs = setOf("Now", "Since", "Until")

// randConstructors build explicitly-seeded generators and stay legal;
// every other package-level math/rand function draws from the hidden
// global state.
var randConstructors = setOf("New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8")

func runDeterminism(pass *Pass) error {
	if !isDeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				checkForbiddenFunc(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, f, n)
			}
			return true
		})
	}
	return nil
}

func isDeterministicPkg(path string) bool {
	for _, p := range DeterministicPaths {
		if path == p {
			return true
		}
	}
	return false
}

func checkForbiddenFunc(pass *Pass, id *ast.Ident) {
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn on a seeded source) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if forbiddenTimeFuncs[fn.Name()] {
			pass.Reportf(id.Pos(), "time.%s reads the wall clock in a deterministic package; thread timestamps in from the caller", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			pass.Reportf(id.Pos(), "global %s.%s in a deterministic package; draw from a seeded rng stream instead", pathBase(fn.Pkg().Path()), fn.Name())
		}
	}
}

func pathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}

// checkMapRange flags a range over a map unless every statement in the
// body is order-insensitive.
func checkMapRange(pass *Pass, file *ast.File, n *ast.RangeStmt) {
	t := pass.TypesInfo.Types[n.X].Type
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if orderInsensitiveBlock(pass, file, n, n.Body.List) {
		return
	}
	pass.Reportf(n.Pos(), "map iteration order feeds computation in a deterministic package; iterate sorted keys")
}

func orderInsensitiveBlock(pass *Pass, file *ast.File, rng *ast.RangeStmt, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if !orderInsensitiveStmt(pass, file, rng, s) {
			return false
		}
	}
	return true
}

// orderInsensitiveStmt recognises the body forms whose result cannot
// depend on iteration order:
//
//   - delete(m, k)                      set subtraction commutes
//   - n++ / n += k (integer)            integer addition commutes exactly
//     (float accumulation does not: rounding depends on order)
//   - x = <constant>                    idempotent store
//   - keys = append(keys, k)            only when a later sort.* /
//     slices.Sort* call re-canonicalises keys
//   - if <cond> { <allowed forms> }     guarded versions of the above
//   - continue
func orderInsensitiveStmt(pass *Pass, file *ast.File, rng *ast.RangeStmt, s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "delete" && pass.TypesInfo.Uses[id] == types.Universe.Lookup("delete")
	case *ast.IncDecStmt:
		return isIntegerExpr(pass, s.X)
	case *ast.AssignStmt:
		return orderInsensitiveAssign(pass, file, rng, s)
	case *ast.IfStmt:
		if s.Init != nil || s.Else != nil {
			return false
		}
		return orderInsensitiveBlock(pass, file, rng, s.Body.List)
	case *ast.BranchStmt:
		return s.Tok.String() == "continue"
	}
	return false
}

func orderInsensitiveAssign(pass *Pass, file *ast.File, rng *ast.RangeStmt, s *ast.AssignStmt) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	lhs, rhs := s.Lhs[0], s.Rhs[0]
	switch s.Tok.String() {
	case "+=", "-=", "|=", "&=", "^=":
		return isIntegerExpr(pass, lhs)
	case "=":
		// Idempotent constant store (`found = true`).
		if tv, ok := pass.TypesInfo.Types[rhs]; ok && tv.Value != nil {
			return true
		}
		return sortedAppend(pass, file, rng, lhs, rhs)
	}
	return false
}

func isIntegerExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// sortedAppend recognises `keys = append(keys, ...)` where the same
// variable is later passed to a sort.* or slices.* call after the range
// statement, restoring a canonical order.
func sortedAppend(pass *Pass, file *ast.File, rng *ast.RangeStmt, lhs, rhs ast.Expr) bool {
	lid, ok := lhs.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[lid]
	if obj == nil {
		obj = pass.TypesInfo.Defs[lid]
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return false
	}
	fid, ok := call.Fun.(*ast.Ident)
	if !ok || fid.Name != "append" || pass.TypesInfo.Uses[fid] != types.Universe.Lookup("append") {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	if base, ok := call.Args[0].(*ast.Ident); !ok || pass.TypesInfo.Uses[base] != obj {
		return false
	}
	// Look for a later sort over the same variable anywhere in the file.
	sorted := false
	ast.Inspect(file, func(n ast.Node) bool {
		if sorted {
			return false
		}
		c, ok := n.(*ast.CallExpr)
		if !ok || c.Pos() < rng.End() {
			return true
		}
		sel, ok := c.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pkg, isPkg := pass.TypesInfo.Uses[pkgID].(*types.PkgName); !isPkg ||
			(pkg.Imported().Path() != "sort" && pkg.Imported().Path() != "slices") {
			return true
		}
		for _, arg := range c.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if aid, ok := an.(*ast.Ident); ok && pass.TypesInfo.Uses[aid] == obj {
					sorted = true
				}
				return !sorted
			})
		}
		return true
	})
	return sorted
}
