// Package sweep runs grids of simulation configurations concurrently and
// tabulates outcome metrics — the workhorse behind parameter studies such
// as "cooperation versus error rate" or "WSLS emergence versus selection
// intensity" that domain scientists run on frameworks like the paper's.
package sweep

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/sim"
	"repro/internal/strategy"
)

// Point is one grid cell: a named parameter assignment and its config.
type Point struct {
	// Labels identifies the cell, e.g. {"beta": "1", "mu": "0.05"}.
	Labels map[string]string
	// Config is the fully specified simulation configuration.
	Config sim.Config
}

// Outcome is the measured result of one grid cell.
type Outcome struct {
	Point Point
	// MeanFitness is the final sampled population mean fitness.
	MeanFitness float64
	// Cooperation is the final sampled mean cooperation probability.
	Cooperation float64
	// WSLSFraction is the share of final SSets rounding to WSLS.
	WSLSFraction float64
	// Distinct is the number of distinct final strategies.
	Distinct int
	// Seconds is the run's wall-clock time.
	Seconds float64
	// Err records a failed run; other fields are zero when non-nil.
	Err error
}

// Grid is an immutable set of points to run.
type Grid struct {
	points []Point
}

// NewGrid builds a grid from explicit points.
func NewGrid(points []Point) *Grid { return &Grid{points: points} }

// Size returns the number of cells.
func (g *Grid) Size() int { return len(g.points) }

// Cross builds the cartesian product of parameter values, applying each
// combination to a copy of base via apply. Parameter order follows names.
func Cross(base sim.Config, names []string, values [][]string, apply func(cfg *sim.Config, name, value string) error) (*Grid, error) {
	if len(names) != len(values) {
		return nil, fmt.Errorf("sweep: %d names for %d value lists", len(names), len(values))
	}
	for i, vs := range values {
		if len(vs) == 0 {
			return nil, fmt.Errorf("sweep: empty value list for %q", names[i])
		}
	}
	var points []Point
	idx := make([]int, len(names))
	for {
		cfg := base
		labels := make(map[string]string, len(names))
		for d, name := range names {
			v := values[d][idx[d]]
			labels[name] = v
			if err := apply(&cfg, name, v); err != nil {
				return nil, fmt.Errorf("sweep: applying %s=%s: %w", name, v, err)
			}
		}
		points = append(points, Point{Labels: labels, Config: cfg})
		// Odometer increment.
		d := len(idx) - 1
		for d >= 0 {
			idx[d]++
			if idx[d] < len(values[d]) {
				break
			}
			idx[d] = 0
			d--
		}
		if d < 0 {
			break
		}
	}
	return &Grid{points: points}, nil
}

// Run executes every cell, at most workers concurrently (0 selects
// NumCPU), and returns outcomes in grid order. Individual run failures are
// recorded in the outcome rather than aborting the sweep.
func (g *Grid) Run(workers int) []Outcome {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	out := make([]Outcome, len(g.points))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, p := range g.points {
		wg.Add(1)
		go func(i int, p Point) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i] = runPoint(p)
		}(i, p)
	}
	wg.Wait()
	return out
}

func runPoint(p Point) Outcome {
	res, err := sim.RunSequential(p.Config)
	if err != nil {
		return Outcome{Point: p, Err: err}
	}
	o := Outcome{
		Point:        p,
		WSLSFraction: res.FractionNear(strategy.WSLS(strategy.NewSpace(p.Config.Memory))),
		Distinct:     res.FinalAbundance().Distinct(),
		Seconds:      res.Elapsed.Seconds(),
	}
	if _, v, ok := res.MeanFitness.Last(); ok {
		o.MeanFitness = v
	}
	if _, v, ok := res.Cooperation.Last(); ok {
		o.Cooperation = v
	}
	return o
}

// CSV tabulates outcomes with one row per cell: the label columns in
// sorted name order followed by the metric columns.
func CSV(outcomes []Outcome) string {
	if len(outcomes) == 0 {
		return ""
	}
	names := make([]string, 0, len(outcomes[0].Point.Labels))
	for n := range outcomes[0].Point.Labels {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString(strings.Join(names, ","))
	sb.WriteString(",mean_fitness,cooperation,wsls_fraction,distinct,seconds,error\n")
	for _, o := range outcomes {
		for _, n := range names {
			sb.WriteString(o.Point.Labels[n])
			sb.WriteByte(',')
		}
		errStr := ""
		if o.Err != nil {
			errStr = strings.ReplaceAll(o.Err.Error(), ",", ";")
		}
		fmt.Fprintf(&sb, "%.6g,%.6g,%.6g,%d,%.3f,%s\n",
			o.MeanFitness, o.Cooperation, o.WSLSFraction, o.Distinct, o.Seconds, errStr)
	}
	return sb.String()
}
