package sweep

import (
	"errors"
	"strconv"
	"strings"
	"testing"

	"repro/internal/sim"
)

func baseCfg() sim.Config {
	cfg := sim.DefaultConfig(1, 8)
	cfg.Generations = 30
	cfg.Rules.Rounds = 10
	cfg.Seed = 1
	return cfg
}

func applyParam(cfg *sim.Config, name, value string) error {
	switch name {
	case "beta":
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return err
		}
		cfg.Beta = v
		return nil
	case "mu":
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return err
		}
		cfg.Mu = v
		return nil
	case "seed":
		v, err := strconv.ParseUint(value, 10, 64)
		if err != nil {
			return err
		}
		cfg.Seed = v
		return nil
	}
	return errors.New("unknown parameter " + name)
}

func TestCrossProducesAllCombinations(t *testing.T) {
	g, err := Cross(baseCfg(),
		[]string{"beta", "mu"},
		[][]string{{"0.5", "1", "2"}, {"0.01", "0.05"}},
		applyParam)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 6 {
		t.Fatalf("grid size %d, want 6", g.Size())
	}
	seen := map[string]bool{}
	for _, p := range g.points {
		seen[p.Labels["beta"]+"/"+p.Labels["mu"]] = true
	}
	if len(seen) != 6 {
		t.Fatalf("only %d distinct label pairs", len(seen))
	}
	// Applied values must reach the configs.
	found := false
	for _, p := range g.points {
		if p.Labels["beta"] == "2" && p.Config.Beta == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("beta=2 not applied to config")
	}
}

func TestCrossValidation(t *testing.T) {
	if _, err := Cross(baseCfg(), []string{"a"}, nil, applyParam); err == nil {
		t.Fatal("mismatched lists accepted")
	}
	if _, err := Cross(baseCfg(), []string{"a"}, [][]string{{}}, applyParam); err == nil {
		t.Fatal("empty values accepted")
	}
	if _, err := Cross(baseCfg(), []string{"bogus"}, [][]string{{"1"}}, applyParam); err == nil {
		t.Fatal("unknown parameter accepted")
	}
	if _, err := Cross(baseCfg(), []string{"beta"}, [][]string{{"x"}}, applyParam); err == nil {
		t.Fatal("unparseable value accepted")
	}
}

func TestRunProducesOutcomes(t *testing.T) {
	g, err := Cross(baseCfg(),
		[]string{"seed"},
		[][]string{{"1", "2", "3", "4"}},
		applyParam)
	if err != nil {
		t.Fatal(err)
	}
	outs := g.Run(2)
	if len(outs) != 4 {
		t.Fatalf("%d outcomes", len(outs))
	}
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("cell %d failed: %v", i, o.Err)
		}
		if o.MeanFitness <= 0 || o.MeanFitness > 4 {
			t.Fatalf("cell %d mean fitness %v", i, o.MeanFitness)
		}
		if o.Distinct < 1 || o.Distinct > 8 {
			t.Fatalf("cell %d distinct %d", i, o.Distinct)
		}
		if o.Seconds < 0 {
			t.Fatalf("cell %d negative time", i)
		}
	}
	// Outcomes stay aligned with grid order.
	for i, o := range outs {
		if o.Point.Labels["seed"] != g.points[i].Labels["seed"] {
			t.Fatal("outcome order does not match grid order")
		}
	}
}

func TestRunRecordsFailures(t *testing.T) {
	bad := baseCfg()
	bad.Memory = 0 // invalid
	g := NewGrid([]Point{{Labels: map[string]string{"case": "bad"}, Config: bad}})
	outs := g.Run(1)
	if outs[0].Err == nil {
		t.Fatal("invalid config did not record an error")
	}
}

func TestRunDefaultWorkers(t *testing.T) {
	g := NewGrid([]Point{{Labels: map[string]string{"case": "one"}, Config: baseCfg()}})
	outs := g.Run(0)
	if len(outs) != 1 || outs[0].Err != nil {
		t.Fatalf("default-worker run failed: %+v", outs)
	}
}

func TestCSVOutput(t *testing.T) {
	g, err := Cross(baseCfg(),
		[]string{"beta"},
		[][]string{{"1", "2"}},
		applyParam)
	if err != nil {
		t.Fatal(err)
	}
	outs := g.Run(1)
	csv := CSV(outs)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d CSV lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "beta,mean_fitness") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,") || !strings.HasPrefix(lines[2], "2,") {
		t.Fatalf("rows out of order: %q %q", lines[1], lines[2])
	}
	if CSV(nil) != "" {
		t.Fatal("empty outcomes should give empty CSV")
	}
}

func TestCSVEscapesErrorCommas(t *testing.T) {
	outs := []Outcome{{
		Point: Point{Labels: map[string]string{"x": "1"}},
		Err:   errors.New("boom, with comma"),
	}}
	csv := CSV(outs)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if strings.Count(lines[1], ",") != strings.Count(lines[0], ",") {
		t.Fatalf("comma in error broke CSV row: %q", lines[1])
	}
}

func TestDeterministicOutcomes(t *testing.T) {
	g, _ := Cross(baseCfg(), []string{"seed"}, [][]string{{"9"}}, applyParam)
	a := g.Run(1)[0]
	b := g.Run(4)[0]
	if a.MeanFitness != b.MeanFitness || a.WSLSFraction != b.WSLSFraction || a.Distinct != b.Distinct {
		t.Fatal("same cell, different outcomes across worker counts")
	}
}
