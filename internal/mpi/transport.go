package mpi

import (
	"fmt"
	"sync/atomic"
)

// Transport is the delivery seam under the runtime's point-to-point layer
// (and therefore under the collectives, which are built purely from
// point-to-point sends and receives). Comm.send validates, fences, counts,
// and accounts a message, then hands the envelope to the world's transport
// for delivery into the destination rank's inbox.
//
// The default transport is the in-process mailbox delivery the runtime has
// always used: a direct enqueue into the destination inbox, bit-identical
// to the pre-transport behaviour. NetTransport (tcp.go) replaces it for
// worlds whose ranks live in separate processes.
type Transport interface {
	// Deliver routes one envelope to rank dst of world w. Ranks are dense
	// within w (which may be a shrunk sub-world); payload ownership passes
	// to the transport. Deliver is buffered-send semantics: it returns
	// once the message is enqueued for (eventual, reliable) delivery, not
	// once it is received.
	Deliver(w *World, src, dst, tag int, payload any) error
}

// procTransport is the in-process default: every rank of the world lives
// in this process, so delivery is a direct inbox enqueue.
type procTransport struct{}

// Deliver implements Transport by enqueueing into the destination inbox.
func (procTransport) Deliver(w *World, src, dst, tag int, payload any) error {
	w.boxes[dst].put(envelope{source: src, tag: tag, payload: payload})
	return nil
}

// TransportStats is a networked transport's live counter set: the
// observable evidence of the retry/backoff machinery working (reconnects,
// resends, duplicate suppression) plus gross frame traffic. All fields are
// atomically updated; read them through Snapshot.
type TransportStats struct {
	FramesSent  atomic.Uint64
	FramesRecv  atomic.Uint64
	BytesSent   atomic.Uint64
	BytesRecv   atomic.Uint64
	BeatsSent   atomic.Uint64
	BeatsRecv   atomic.Uint64
	Resends     atomic.Uint64
	DupsDropped atomic.Uint64
	Reconnects  atomic.Uint64
	Redials     atomic.Uint64
	DecodeErrs  atomic.Uint64
}

// TransportSnapshot is a point-in-time copy of TransportStats: a plain
// value, safe to serialise, compare, and export into a metrics registry.
// All counts are per-process (the hosting rank's view of the wire).
type TransportSnapshot struct {
	// FramesSent / FramesRecv / BytesSent / BytesRecv are gross wire
	// traffic, including control frames and resends.
	FramesSent uint64 `json:"frames_sent"`
	FramesRecv uint64 `json:"frames_recv"`
	BytesSent  uint64 `json:"bytes_sent"`
	BytesRecv  uint64 `json:"bytes_recv"`
	// BeatsSent / BeatsRecv count wire heartbeats (eviction mode only).
	BeatsSent uint64 `json:"beats_sent,omitempty"`
	BeatsRecv uint64 `json:"beats_recv,omitempty"`
	// Resends counts reliable frames retransmitted after a reconnect.
	Resends uint64 `json:"resends,omitempty"`
	// DupsDropped counts reliable frames discarded by the receiver's
	// sequence-number duplicate suppression.
	DupsDropped uint64 `json:"dups_dropped,omitempty"`
	// Reconnects counts connections re-established after a failure;
	// Redials counts individual dial attempts during backoff.
	Reconnects uint64 `json:"reconnects,omitempty"`
	Redials    uint64 `json:"redials,omitempty"`
	// DecodeErrs counts frames whose payload failed to decode (dropped).
	DecodeErrs uint64 `json:"decode_errs,omitempty"`
}

// WireBytes models the snapshot's size for the communication counters
// when it crosses the wire itself (metrics gathers).
func (TransportSnapshot) WireBytes() uint64 { return 11 * 8 }

// Snapshot copies the counters.
func (s *TransportStats) Snapshot() TransportSnapshot {
	return TransportSnapshot{
		FramesSent:  s.FramesSent.Load(),
		FramesRecv:  s.FramesRecv.Load(),
		BytesSent:   s.BytesSent.Load(),
		BytesRecv:   s.BytesRecv.Load(),
		BeatsSent:   s.BeatsSent.Load(),
		BeatsRecv:   s.BeatsRecv.Load(),
		Resends:     s.Resends.Load(),
		DupsDropped: s.DupsDropped.Load(),
		Reconnects:  s.Reconnects.Load(),
		Redials:     s.Redials.Load(),
		DecodeErrs:  s.DecodeErrs.Load(),
	}
}

// key names this world in wire frames: the root world is "", a shrunk
// sub-world is its survivor list — exactly the registry key Shrink caches
// it under, so both sides of a connection resolve the same sub-world from
// the same sorted survivor set.
func (w *World) key() string {
	if w.orig == nil {
		return ""
	}
	return fmt.Sprint(w.orig)
}

// TransportStats returns the networked transport's counter snapshot, or
// nil for an in-process world.
func (w *World) TransportStats() *TransportSnapshot {
	r := w.rootW()
	if nt, ok := r.tr.(*NetTransport); ok {
		s := nt.stats.Snapshot()
		return &s
	}
	return nil
}
