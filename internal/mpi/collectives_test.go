package mpi

import (
	"fmt"
	"math"
	"sync/atomic"
	"testing"
)

var worldSizes = []int{1, 2, 3, 4, 5, 8, 13, 16, 32}

func TestBcastAllSizesAllRoots(t *testing.T) {
	for _, size := range worldSizes {
		for root := 0; root < size; root += max(1, size/3) {
			w := NewWorld(size)
			err := w.Run(func(c *Comm) error {
				var payload any
				if c.Rank() == root {
					payload = []float64{3.5, float64(root)}
				}
				got, err := c.Bcast(root, payload)
				if err != nil {
					return err
				}
				v, ok := got.([]float64)
				if !ok || len(v) != 2 || v[0] != 3.5 || v[1] != float64(root) {
					return fmt.Errorf("rank %d got %v", c.Rank(), got)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("size %d root %d: %v", size, root, err)
			}
		}
	}
}

func TestBcastSequenceDifferentRoots(t *testing.T) {
	// Back-to-back broadcasts with different roots must stay correctly
	// matched even when fast ranks race ahead.
	w := NewWorld(8)
	err := w.Run(func(c *Comm) error {
		for iter := 0; iter < 50; iter++ {
			root := iter % c.Size()
			var p any
			if c.Rank() == root {
				p = iter * 100
			}
			got, err := c.Bcast(root, p)
			if err != nil {
				return err
			}
			if got.(int) != iter*100 {
				return fmt.Errorf("iter %d: rank %d got %v", iter, c.Rank(), got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceSum(t *testing.T) {
	for _, size := range worldSizes {
		w := NewWorld(size)
		want := float64(size*(size-1)) / 2
		err := w.Run(func(c *Comm) error {
			got, err := c.Reduce(0, float64(c.Rank()), OpSum)
			if err != nil {
				return err
			}
			if c.Rank() == 0 && got != want {
				return fmt.Errorf("sum = %v, want %v", got, want)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
	}
}

func TestReduceMaxMinNonZeroRoot(t *testing.T) {
	w := NewWorld(7)
	err := w.Run(func(c *Comm) error {
		mx, err := c.Reduce(3, float64(c.Rank()), OpMax)
		if err != nil {
			return err
		}
		if c.Rank() == 3 && mx != 6 {
			return fmt.Errorf("max = %v", mx)
		}
		mn, err := c.Reduce(3, float64(c.Rank())+10, OpMin)
		if err != nil {
			return err
		}
		if c.Rank() == 3 && mn != 10 {
			return fmt.Errorf("min = %v", mn)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduce(t *testing.T) {
	for _, size := range []int{1, 2, 5, 16} {
		w := NewWorld(size)
		want := float64(size * 2)
		err := w.Run(func(c *Comm) error {
			got, err := c.Allreduce(2, OpSum)
			if err != nil {
				return err
			}
			if got != want {
				return fmt.Errorf("rank %d: allreduce = %v, want %v", c.Rank(), got, want)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
	}
}

func TestReduceSlice(t *testing.T) {
	w := NewWorld(6)
	err := w.Run(func(c *Comm) error {
		vals := []float64{float64(c.Rank()), 1, -float64(c.Rank())}
		got, err := c.ReduceSlice(2, vals, OpSum)
		if err != nil {
			return err
		}
		if c.Rank() == 2 {
			want := []float64{15, 6, -15}
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-12 {
					return fmt.Errorf("got %v, want %v", got, want)
				}
			}
		} else if got != nil {
			return fmt.Errorf("non-root got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceSliceLengthMismatch(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		vals := make([]float64, 2+c.Rank())
		_, err := c.ReduceSlice(0, vals, OpSum)
		if c.Rank() == 0 && err == nil {
			return fmt.Errorf("length mismatch not detected")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherAllRoots(t *testing.T) {
	for _, size := range []int{1, 2, 4, 9} {
		for root := 0; root < size; root += max(1, size/2) {
			w := NewWorld(size)
			err := w.Run(func(c *Comm) error {
				got, err := c.Gather(root, c.Rank()*c.Rank())
				if err != nil {
					return err
				}
				if c.Rank() != root {
					if got != nil {
						return fmt.Errorf("non-root got %v", got)
					}
					return nil
				}
				for i, v := range got {
					if v.(int) != i*i {
						return fmt.Errorf("slot %d = %v", i, v)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("size %d root %d: %v", size, root, err)
			}
		}
	}
}

func TestAllgather(t *testing.T) {
	w := NewWorld(5)
	err := w.Run(func(c *Comm) error {
		got, err := c.Allgather(fmt.Sprintf("r%d", c.Rank()))
		if err != nil {
			return err
		}
		if len(got) != 5 {
			return fmt.Errorf("len %d", len(got))
		}
		for i, v := range got {
			if v.(string) != fmt.Sprintf("r%d", i) {
				return fmt.Errorf("slot %d = %v", i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatter(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) error {
		var parts []any
		if c.Rank() == 1 {
			parts = []any{10, 11, 12, 13}
		}
		got, err := c.Scatter(1, parts)
		if err != nil {
			return err
		}
		if got.(int) != 10+c.Rank() {
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterWrongLength(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			_, err := c.Scatter(0, []any{1})
			if err == nil {
				return fmt.Errorf("short scatter accepted")
			}
			return fmt.Errorf("expected failure")
		}
		_, err := c.Scatter(0, nil)
		return err
	})
	if err == nil {
		t.Fatal("expected propagated failure")
	}
}

func TestBarrierOrdering(t *testing.T) {
	// No rank may pass barrier k+1's entry before all ranks passed k.
	const iters = 20
	w := NewWorld(8)
	var phase atomic.Int64
	var entered [iters]atomic.Int64
	err := w.Run(func(c *Comm) error {
		for k := 0; k < iters; k++ {
			entered[k].Add(1)
			if err := c.Barrier(); err != nil {
				return err
			}
			// After the barrier, every rank must observe all 8 entries.
			if got := entered[k].Load(); got != 8 {
				return fmt.Errorf("barrier %d released with %d entries", k, got)
			}
			phase.Store(int64(k))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSingleRank(t *testing.T) {
	w := NewWorld(1)
	if err := w.Run(func(c *Comm) error { return c.Barrier() }); err != nil {
		t.Fatal(err)
	}
}

func TestNaiveBcastMatchesBcast(t *testing.T) {
	w := NewWorld(9)
	err := w.Run(func(c *Comm) error {
		var p any
		if c.Rank() == 4 {
			p = 77
		}
		got, err := c.NaiveBcast(4, p)
		if err != nil {
			return err
		}
		if got.(int) != 77 {
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMixedCollectiveSequence(t *testing.T) {
	// Interleave different collectives in the same program order on every
	// rank: the exact pattern the simulation engine uses per generation.
	w := NewWorld(8)
	err := w.Run(func(c *Comm) error {
		for gen := 0; gen < 30; gen++ {
			pair, err := c.Bcast(0, func() any {
				if c.Rank() == 0 {
					return []int{gen % 8, (gen + 3) % 8}
				}
				return nil
			}())
			if err != nil {
				return err
			}
			sel := pair.([]int)
			if sel[0] != gen%8 {
				return fmt.Errorf("gen %d: bad pair %v", gen, sel)
			}
			total, err := c.Allreduce(float64(c.Rank()), OpSum)
			if err != nil {
				return err
			}
			if total != 28 {
				return fmt.Errorf("gen %d: allreduce %v", gen, total)
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveCounters(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) error {
		_, err := c.Bcast(0, func() any {
			if c.Rank() == 0 {
				return 1
			}
			return nil
		}())
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.CollectiveOps != 4 { // each rank counts its participation
		t.Errorf("collective ops = %d, want 4", st.CollectiveOps)
	}
	if st.PointToPointMessages != 3 { // binomial tree: P-1 messages total
		t.Errorf("bcast used %d messages, want 3", st.PointToPointMessages)
	}
}

func BenchmarkBcastTree64(b *testing.B)  { benchBcast(b, 64, false) }
func BenchmarkBcastNaive64(b *testing.B) { benchBcast(b, 64, true) }

func benchBcast(b *testing.B, size int, naive bool) {
	w := NewWorld(size)
	payload := make([]float64, 128)
	b.ResetTimer()
	err := w.Run(func(c *Comm) error {
		for i := 0; i < b.N; i++ {
			var p any
			if c.Rank() == 0 {
				p = payload
			}
			var err error
			if naive {
				_, err = c.NaiveBcast(0, p)
			} else {
				_, err = c.Bcast(0, p)
			}
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkBarrier16(b *testing.B) {
	w := NewWorld(16)
	err := w.Run(func(c *Comm) error {
		for i := 0; i < b.N; i++ {
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
