package mpi

import (
	"fmt"
	"strings"
	"testing"
)

// FuzzParseFault drives the -inject-fault spec parser with arbitrary input,
// guarding two properties: it never panics, and every accepted spec
// round-trips — re-rendering the parsed Fault as a spec and parsing it again
// yields field-identical results, so nothing is silently mis-parsed or
// dropped. Seeds are the README / doc-comment examples.
func FuzzParseFault(f *testing.F) {
	for _, seed := range []string{
		"rank=3,after=500",
		"rank=1,after=10,kind=drop,count=3",
		"rank=2,after=5,kind=delay,delay=50ms",
		"rank=0,after=2,kind=collective",
		"rank=0",
		"rank=7,after=1,kind=kill",
		" rank=4 , after=9 ",
		"rank=1,kind=delay,delay=1h2m3s",
		"rank=-1",
		"after=5",
		"rank=1,count=0",
		"rank=1,kind=delay",
		"rank=1,kind=warp",
		"rank=1,,after=2",
		"rank=01,after=007",
		"rank=1=2",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		fault, err := ParseFault(spec)
		if err != nil {
			if fault != nil {
				t.Fatalf("ParseFault(%q) returned both a fault and %v", spec, err)
			}
			return
		}
		if fault == nil {
			t.Fatalf("ParseFault(%q) returned nil, nil", spec)
		}
		// Invariants the rest of the fault machinery relies on.
		if fault.Rank < 0 {
			t.Fatalf("ParseFault(%q) accepted negative rank %d", spec, fault.Rank)
		}
		if fault.Kind == DelaySends && fault.Delay <= 0 {
			t.Fatalf("ParseFault(%q) accepted kind=delay with delay %v", spec, fault.Delay)
		}
		if fault.Delay < 0 {
			t.Fatalf("ParseFault(%q) accepted negative delay %v", spec, fault.Delay)
		}
		// Round-trip: render the parsed fault canonically and re-parse.
		// (Fault holds an atomic and must not be copied; compare fields.)
		canon := fmt.Sprintf("rank=%d,after=%d,kind=%s", fault.Rank, fault.After, fault.Kind)
		if fault.Count > 0 {
			canon += fmt.Sprintf(",count=%d", fault.Count)
		}
		if fault.Delay > 0 {
			canon += fmt.Sprintf(",delay=%s", fault.Delay)
		}
		again, err := ParseFault(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, spec, err)
		}
		if again.Rank != fault.Rank || again.Kind != fault.Kind ||
			again.After != fault.After || again.Count != fault.Count ||
			again.Delay != fault.Delay {
			t.Fatalf("round-trip mismatch for %q: %+v vs %+v via %q",
				spec, faultFields(fault), faultFields(again), canon)
		}
		// A spec with no kind= field must default to kill: anything else
		// would silently change what an operator's fault plan does.
		if !strings.Contains(spec, "kind") && fault.Kind != KillAfterSends {
			t.Fatalf("ParseFault(%q) defaulted to kind %v, want kill", spec, fault.Kind)
		}
	})
}

// faultFields formats the comparable fields of a Fault for diagnostics
// (Fault itself embeds an atomic and is not copyable or printable).
func faultFields(f *Fault) string {
	return fmt.Sprintf("{rank=%d kind=%s after=%d count=%d delay=%s}",
		f.Rank, f.Kind, f.After, f.Count, f.Delay)
}
