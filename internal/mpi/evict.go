package mpi

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the runtime's live-recovery layer, modelled on MPI's
// User-Level Failure Mitigation (ULFM) proposal: instead of tearing the whole
// world down when a rank dies (the abort path Run takes by default), an
// eviction-enabled world detects the death with a heartbeat failure
// detector, revokes every communicator the dead rank belonged to so blocked
// survivors unwind promptly, lets the survivors reach agreement on the
// surviving-rank set (Comm.Agree), and builds a dense sub-communicator from
// the survivors (Comm.Shrink) on which the computation continues. The dead
// rank's operation counters, traffic totals, and fault-plan identity are
// preserved: sub-worlds route all accounting to the root world indexed by
// original rank, so "rank 2's 500th send" names the same event before and
// after a shrink.

// ErrRevoked is the sentinel matched by operations on a communicator that
// has been revoked after a member rank failed. The concrete error also
// matches ErrAborted (so pre-eviction unwind code keeps working) and carries
// the *RankFailedError naming the dead rank for errors.As.
var ErrRevoked = errors.New("mpi: communicator revoked")

// Default heartbeat parameters for EnableEviction.
const (
	DefaultHeartbeatEvery  = 20 * time.Millisecond
	DefaultHeartbeatMisses = 3
)

// Eviction records one rank declared failed by the detector.
type Eviction struct {
	// Rank is the failed rank, in root-world (original) numbering.
	Rank int
	// Err is the failure cause: the rank's own exit error when it died
	// observably, or a missed-heartbeat diagnosis.
	Err error
}

// agreeRound is one rendezvous of the Agree collective. Rounds are keyed by
// a per-rank sequence number: every live rank's Nth Agree call joins round
// N, which stays aligned because the recovery protocol performs exactly one
// Agree per rank per failure epoch.
type agreeRound struct {
	arrived map[int]bool
	result  []int
}

// EnableEviction switches the world from abort-on-failure to live-eviction
// semantics and arms the heartbeat failure detector: each rank's runtime
// emits a liveness tick every `every`; a monitor declares a rank dead after
// `misses` consecutive missed deadlines (non-positive arguments select
// DefaultHeartbeatEvery / DefaultHeartbeatMisses). On a declared failure
// every communicator containing the dead rank is revoked — pending and
// future operations on it fail with an error matching ErrRevoked — and
// survivors are expected to call Agree then Shrink and continue on the
// sub-communicator. Run then returns nil as long as every rank that was NOT
// evicted finished cleanly. Must be called before Run, on the root world.
func (w *World) EnableEviction(every time.Duration, misses int) {
	if w.root != nil {
		panic("mpi: EnableEviction on a shrunk sub-world; enable on the root")
	}
	if every <= 0 {
		every = DefaultHeartbeatEvery
	}
	if misses <= 0 {
		misses = DefaultHeartbeatMisses
	}
	w.evict = true
	w.hbEvery = every
	w.hbMisses = misses
	w.econd = sync.NewCond(&w.emu)
	w.lastBeat = make([]atomic.Int64, w.size)
	w.done = make([]bool, w.size)
	w.finishedOK = make([]bool, w.size)
	w.exitErr = make([]error, w.size)
	w.exited = make([]chan struct{}, w.size)
	for i := range w.exited {
		w.exited[i] = make(chan struct{})
	}
	w.failedP = make([]atomic.Pointer[RankFailedError], w.size)
	w.agreeSeq = make([]int, w.size)
	w.agreeRounds = make(map[int]*agreeRound)
}

// Evictions returns the ranks declared failed so far, in detection order.
func (w *World) Evictions() []Eviction {
	r := w.rootW()
	if !r.evict {
		return nil
	}
	r.emu.Lock()
	defer r.emu.Unlock()
	return append([]Eviction(nil), r.evictions...)
}

// Evictions returns the eviction record of the root world this comm
// descends from — usable from inside Run to attribute recoveries.
func (c *Comm) Evictions() []Eviction { return c.world.Evictions() }

// rankExited records a rank leaving Run's body in eviction mode. The rank's
// heartbeat stops with it; if it exited with a genuine error the monitor
// will declare it failed once the deadline lapses.
func (w *World) rankExited(rank int, err error) {
	w.emu.Lock()
	w.done[rank] = true
	w.finishedOK[rank] = err == nil
	w.exitErr[rank] = err
	w.emu.Unlock()
	close(w.exited[rank])
	w.econd.Broadcast()
}

// startHeartbeat launches the per-rank beat emitters and the failure
// monitor; the returned function stops them. Nil when eviction is off.
// Timing uses a monotonic offset from hbStart so wall-clock jumps cannot
// fake a missed deadline.
func (w *World) startHeartbeat() func() {
	if !w.evict {
		return nil
	}
	w.hbStart = time.Now()
	stop := make(chan struct{})
	var hwg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		hwg.Add(1)
		go func(rank int) {
			defer hwg.Done()
			t := time.NewTicker(w.hbEvery)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-w.exited[rank]:
					return
				case <-t.C:
					w.lastBeat[rank].Store(int64(time.Since(w.hbStart)))
					w.noteHeartbeat(rank)
				}
			}
		}(r)
	}
	hwg.Add(1)
	go func() {
		defer hwg.Done()
		t := time.NewTicker(w.hbEvery)
		defer t.Stop()
		deadline := time.Duration(w.hbMisses) * w.hbEvery
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				w.monitorTick(deadline)
			}
		}
	}()
	return func() {
		close(stop)
		hwg.Wait()
	}
}

// monitorTick scans for ranks whose heartbeat has gone stale past the
// deadline and declares them failed. A rank that finished cleanly, or that
// is merely unwinding on someone else's failure (its exit error matches
// ErrAborted/ErrRevoked), is not a failure — evicting a cascading survivor
// would pollute the eviction record during teardown.
func (w *World) monitorTick(deadline time.Duration) {
	now := time.Since(w.hbStart)
	for r := 0; r < w.size; r++ {
		if w.failedP[r].Load() != nil {
			continue
		}
		w.emu.Lock()
		fin := w.finishedOK[r]
		exitErr := w.exitErr[r]
		w.emu.Unlock()
		if fin {
			continue
		}
		if exitErr != nil && (errors.Is(exitErr, ErrRevoked) || errors.Is(exitErr, ErrAborted)) {
			continue
		}
		last := time.Duration(w.lastBeat[r].Load())
		if now-last < deadline {
			continue
		}
		cause := exitErr
		if cause == nil {
			cause = fmt.Errorf("mpi: missed %d heartbeats (deadline %v)", w.hbMisses, deadline)
		}
		w.markFailed(r, cause)
	}
}

// markFailed declares an original rank dead: records the eviction, wakes
// Agree waiters, and revokes every communicator the rank belongs to. The
// first declaration for a rank wins; duplicates are no-ops.
func (w *World) markFailed(orig int, cause error) {
	rf := &RankFailedError{Rank: orig, Err: cause}
	if !w.failedP[orig].CompareAndSwap(nil, rf) {
		return
	}
	w.emu.Lock()
	w.evictions = append(w.evictions, Eviction{Rank: orig, Err: cause})
	w.emu.Unlock()
	w.econd.Broadcast()
	for _, sub := range w.allWorlds() {
		if sub.contains(orig) {
			sub.revokeWith(rf)
		}
	}
	w.netAgreeKick()
}

// revokeWith marks this communicator revoked on behalf of the failed rank
// and releases every blocked receive on it. The cause is published before
// the flag so revokeErr never observes the flag without a cause.
func (w *World) revokeWith(rf *RankFailedError) {
	w.revokeCause.CompareAndSwap(nil, fmt.Errorf("%w (rank %d down): %w", ErrRevoked, rf.Rank, rf))
	if w.revoked.CompareAndSwap(false, true) {
		err := w.revokeCause.Load().(error)
		for _, ib := range w.boxes {
			ib.finish(err)
		}
	}
}

// revokeErr returns the revocation error when this communicator has been
// revoked, nil otherwise. The error matches ErrRevoked and ErrAborted, and
// errors.As recovers the *RankFailedError naming the dead rank.
func (w *World) revokeErr() error {
	if !w.revoked.Load() {
		return nil
	}
	return w.revokeCause.Load().(error)
}

// sendFence fails sends touching a failed rank fast (ULFM's poisoned
// endpoints): a Send to a dead rank would otherwise buffer silently forever,
// and a dead rank's counter identity must not advance. Ranks are original.
func (w *World) sendFence(src, dst int) error {
	if rf := w.failedP[src].Load(); rf != nil {
		return fmt.Errorf("mpi: send from failed rank %d: %w", src, rf)
	}
	if rf := w.failedP[dst].Load(); rf != nil {
		return fmt.Errorf("mpi: send to failed rank %d: %w", dst, rf)
	}
	return nil
}

// resolveEvicted computes Run's verdict in eviction mode: success as long as
// every rank that was not evicted finished cleanly — an evicted rank's death
// was, by definition, recovered from. Otherwise the per-rank errors are
// joined in rank order, evicted ranks contributing their recorded
// *RankFailedError so the supervisor can attribute the failure.
func (w *World) resolveEvicted(errs []error) error {
	clean := true
	for r := 0; r < w.size; r++ {
		if w.failedP[r].Load() == nil && errs[r] != nil {
			clean = false
			break
		}
	}
	if clean {
		return nil
	}
	var joined []error
	for r := 0; r < w.size; r++ {
		if rf := w.failedP[r].Load(); rf != nil {
			joined = append(joined, rf)
			continue
		}
		if errs[r] == nil {
			continue
		}
		if errors.Is(errs[r], ErrAborted) {
			joined = append(joined, fmt.Errorf("mpi: rank %d: %w", r, errs[r]))
		} else {
			joined = append(joined, &RankFailedError{Rank: r, Err: errs[r]})
		}
	}
	return errors.Join(joined...)
}

// Agree is the fault-tolerant agreement collective (ULFM's
// MPIX_Comm_agree): every live rank that calls it receives the same
// surviving-rank set — the ranks that reached this agreement round and have
// not been declared failed — in original-rank numbering, sorted ascending.
// It completes once every rank of the ROOT world has either arrived, been
// declared failed, or exited, so a rank that dies mid-protocol cannot block
// it (the heartbeat monitor's declaration unblocks the round).
//
// Rounds align by call count: each rank's Nth Agree joins round N. The
// recovery protocol must therefore perform exactly one Agree per failure
// epoch on every survivor, whichever communicator it entered the epoch on.
func (c *Comm) Agree() ([]int, error) {
	return c.world.rootW().agree(c.world.origOf(c.rank))
}

func (w *World) agree(orig int) ([]int, error) {
	if !w.evict {
		return nil, errors.New("mpi: Agree needs EnableEviction")
	}
	if w.self >= 0 {
		return w.agreeNet(orig)
	}
	w.emu.Lock()
	defer w.emu.Unlock()
	if rf := w.failedP[orig].Load(); rf != nil {
		return nil, fmt.Errorf("mpi: rank %d cannot join agreement: %w", orig, rf)
	}
	round := w.agreeSeq[orig]
	w.agreeSeq[orig]++
	rd := w.agreeRounds[round]
	if rd == nil {
		rd = &agreeRound{arrived: make(map[int]bool)}
		w.agreeRounds[round] = rd
	}
	rd.arrived[orig] = true
	w.econd.Broadcast()
	for rd.result == nil {
		if w.agreeComplete(rd) {
			var res []int
			for r := 0; r < w.size; r++ {
				if rd.arrived[r] && w.failedP[r].Load() == nil {
					res = append(res, r)
				}
			}
			rd.result = res
			w.econd.Broadcast()
			break
		}
		w.econd.Wait()
	}
	return append([]int(nil), rd.result...), nil
}

// agreeComplete reports whether every root-world rank is accounted for:
// arrived at this round, declared failed, or exited. Callers hold emu.
func (w *World) agreeComplete(rd *agreeRound) bool {
	for r := 0; r < w.size; r++ {
		if rd.arrived[r] || w.done[r] || w.failedP[r].Load() != nil {
			continue
		}
		return false
	}
	return true
}

// Shrink builds the dense sub-communicator over the given survivors
// (original-rank numbering; ULFM's MPIX_Comm_shrink). Every rank calling
// Shrink with the same survivor set — normally the set Agree returned —
// receives the same sub-world: results are cached, so the collective is
// really a rendezvous on the root's registry. New-rank numbering is the
// survivors sorted ascending; counters, traffic totals, and the fault plan
// keep routing to the root under original numbering.
//
// A survivor that has already been declared failed fails the call; a failure
// declared concurrently with the call revokes the new sub-world immediately,
// so the caller's next operation on it fails with ErrRevoked and the
// recovery protocol runs another epoch.
func (w *World) Shrink(survivors []int) (*World, error) {
	root := w.rootW()
	if len(survivors) == 0 {
		return nil, errors.New("mpi: Shrink needs at least one survivor")
	}
	sorted := append([]int(nil), survivors...)
	sort.Ints(sorted)
	for i, r := range sorted {
		if r < 0 || r >= root.size {
			return nil, fmt.Errorf("mpi: Shrink survivor %d out of range [0,%d)", r, root.size)
		}
		if i > 0 && sorted[i-1] == r {
			return nil, fmt.Errorf("mpi: Shrink survivor %d duplicated", r)
		}
		if root.evict {
			if rf := root.failedP[r].Load(); rf != nil {
				return nil, fmt.Errorf("mpi: Shrink survivor %d has failed: %w", r, rf)
			}
		}
	}
	key := fmt.Sprint(sorted)
	root.wmu.Lock()
	if sub, ok := root.subs[key]; ok {
		root.wmu.Unlock()
		return sub, nil
	}
	sub := &World{
		size:        len(sorted),
		boxes:       make([]*inbox, len(sorted)),
		root:        root,
		orig:        sorted,
		recvTimeout: root.recvTimeout,
	}
	for i := range sub.boxes {
		sub.boxes[i] = newInbox()
	}
	root.subs[key] = sub
	root.worlds = append(root.worlds, sub)
	// Wire frames that raced ahead of this Shrink land now, inside the
	// registry lock, so they order before anything routed afterwards.
	root.flushPendingWire(key, sub)
	root.wmu.Unlock()
	// A Shrink racing past the end of Run builds a world no send can ever
	// reach: finish its inboxes immediately so a receive on it fails fast
	// with ErrShutdown instead of hanging until the receive deadline.
	if root.shut.Load() {
		for _, ib := range sub.boxes {
			ib.finish(ErrShutdown)
		}
	}
	// Close the race with a markFailed that snapshotted the registry before
	// this sub-world was registered: re-check every member now that the
	// registry holds it.
	if root.evict {
		for _, r := range sorted {
			if rf := root.failedP[r].Load(); rf != nil {
				sub.revokeWith(rf)
			}
		}
	}
	if root.aborted.Load() {
		cause := root.abortCause()
		for _, ib := range sub.boxes {
			ib.finish(cause)
		}
	}
	return sub, nil
}

// Shrink returns this rank's handle on the sub-communicator over survivors
// (see World.Shrink). It fails if the calling rank is not itself a survivor.
func (c *Comm) Shrink(survivors []int) (*Comm, error) {
	sub, err := c.world.Shrink(survivors)
	if err != nil {
		return nil, err
	}
	my := c.world.origOf(c.rank)
	for i, r := range sub.orig {
		if r == my {
			return &Comm{world: sub, rank: i}, nil
		}
	}
	return nil, fmt.Errorf("mpi: rank %d is not among the survivors %v", my, survivors)
}

// OrigRank returns this rank's original (root-world) rank: identical to
// Rank until a Shrink renumbers the survivors.
func (c *Comm) OrigRank() int { return c.world.origOf(c.rank) }

// Group returns the communicator's members as original ranks, indexed by
// this communicator's dense rank numbering.
func (c *Comm) Group() []int {
	if c.world.orig == nil {
		g := make([]int, c.world.size)
		for i := range g {
			g[i] = i
		}
		return g
	}
	return append([]int(nil), c.world.orig...)
}

// Distributed agreement. On a networked world the shared-memory rendezvous
// above is unavailable, so Agree is coordinated by rank 0: every survivor
// announces its arrival at its next round over the wire (frameAgree), rank
// 0 resolves the round once every root-world rank is accounted for —
// arrived, exited (goodbye received), or declared failed — and replies
// with the surviving-rank set (frameAgreeResult). Rounds align by call
// count exactly as in the in-process protocol. Rank 0 is a single point of
// coordination; if it dies, workers fail their Agree with its
// *RankFailedError and the application falls back to checkpoint-restart —
// the same degradation the engine already takes when Nature dies.

// netAgreeRound is one wire-coordinated agreement round at rank 0.
type netAgreeRound struct {
	arrived map[int]bool
	replied map[int]bool
	result  []int
}

// agreeNet runs one agreement round from the hosted rank's side.
func (w *World) agreeNet(orig int) ([]int, error) {
	nt, ok := w.tr.(*NetTransport)
	if !ok {
		return nil, errors.New("mpi: networked Agree without a NetTransport")
	}
	w.emu.Lock()
	if rf := w.failedP[orig].Load(); rf != nil {
		w.emu.Unlock()
		return nil, fmt.Errorf("mpi: rank %d cannot join agreement: %w", orig, rf)
	}
	round := w.agreeSeq[orig]
	w.agreeSeq[orig]++
	if orig == 0 {
		rd := w.netRoundLocked(round)
		rd.arrived[0] = true
		w.econd.Broadcast()
		res, replies := w.netResolveLocked(rd)
		for res == nil {
			w.econd.Wait()
			res, replies = w.netResolveLocked(rd)
		}
		w.emu.Unlock()
		for _, dst := range replies {
			_ = nt.sendAgreeResult(dst, round, res)
		}
		return append([]int(nil), res...), nil
	}
	w.emu.Unlock()
	if err := nt.sendAgree(round); err != nil {
		return nil, fmt.Errorf("mpi: rank %d cannot reach agreement coordinator: %w", orig, err)
	}
	w.emu.Lock()
	defer w.emu.Unlock()
	for {
		if res, ok := w.netResults[round]; ok {
			return append([]int(nil), res...), nil
		}
		if rf := w.failedP[0].Load(); rf != nil {
			return nil, fmt.Errorf("mpi: agreement coordinator failed: %w", rf)
		}
		if w.done[0] {
			return nil, errors.New("mpi: agreement coordinator exited before resolving the round")
		}
		w.econd.Wait()
	}
}

// netRoundLocked returns (creating if needed) the coordinator's state for
// a round. Callers hold emu.
func (w *World) netRoundLocked(round int) *netAgreeRound {
	if w.netRounds == nil {
		w.netRounds = make(map[int]*netAgreeRound)
	}
	rd := w.netRounds[round]
	if rd == nil {
		rd = &netAgreeRound{arrived: make(map[int]bool), replied: make(map[int]bool)}
		w.netRounds[round] = rd
	}
	return rd
}

// netResolveLocked advances one coordinator round: resolves it when every
// root-world rank is accounted for, and returns the result plus the
// arrived remote ranks not yet replied to (the caller sends the replies
// outside the lock). A rank that arrived but was since declared failed
// still gets a reply — it is excluded from the result, and discovering
// that at Shrink is how a wrongly-revived process (SIGCONT after its
// eviction) learns it must exit. Callers hold emu.
func (w *World) netResolveLocked(rd *netAgreeRound) (res []int, replies []int) {
	if rd.result == nil {
		for r := 0; r < w.size; r++ {
			if rd.arrived[r] || w.done[r] || w.failedP[r].Load() != nil {
				continue
			}
			return nil, nil
		}
		out := []int{}
		for r := 0; r < w.size; r++ {
			if rd.arrived[r] && w.failedP[r].Load() == nil {
				out = append(out, r)
			}
		}
		rd.result = out
		w.econd.Broadcast()
	}
	for r := range rd.arrived {
		if r != 0 && !rd.replied[r] {
			rd.replied[r] = true
			replies = append(replies, r)
		}
	}
	return rd.result, replies
}

// netAgreeArrive records a remote survivor reaching a round (frameAgree at
// rank 0) and replies if the round resolves.
func (w *World) netAgreeArrive(orig, round int) {
	if !w.evict || w.self != 0 || orig <= 0 || orig >= w.size {
		return
	}
	nt, ok := w.tr.(*NetTransport)
	if !ok {
		return
	}
	w.emu.Lock()
	rd := w.netRoundLocked(round)
	rd.arrived[orig] = true
	w.econd.Broadcast()
	res, replies := w.netResolveLocked(rd)
	w.emu.Unlock()
	for _, dst := range replies {
		_ = nt.sendAgreeResult(dst, round, res)
	}
}

// netAgreeResult records a resolved round at a worker (frameAgreeResult).
func (w *World) netAgreeResult(round int, survivors []int) {
	if !w.evict || w.self <= 0 {
		return
	}
	if survivors == nil {
		survivors = []int{}
	}
	w.emu.Lock()
	if w.netResults == nil {
		w.netResults = make(map[int][]int)
	}
	w.netResults[round] = survivors
	w.emu.Unlock()
	w.econd.Broadcast()
}

// netAgreeKick re-evaluates every pending coordinator round after a
// liveness event (a rank declared failed or exited): the event may be
// exactly what a round was waiting for.
func (w *World) netAgreeKick() {
	if !w.evict || w.self != 0 {
		return
	}
	nt, ok := w.tr.(*NetTransport)
	if !ok {
		return
	}
	type reply struct {
		dst, round int
		res        []int
	}
	var outs []reply
	w.emu.Lock()
	for round, rd := range w.netRounds {
		res, replies := w.netResolveLocked(rd)
		for _, dst := range replies {
			outs = append(outs, reply{dst: dst, round: round, res: res})
		}
	}
	w.emu.Unlock()
	for _, o := range outs {
		_ = nt.sendAgreeResult(o.dst, o.round, o.res)
	}
}
