package mpi

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

// TestMetricsRoundTripMatchesPayloadAccounting sends one payload of
// every modelled wire type across a two-rank world and asserts the
// per-rank byte counters agree with the payloadBytes model — the same
// accounting the mpistrict build enforces at the type level — and with
// the world's coarse totals.
func TestMetricsRoundTripMatchesPayloadAccounting(t *testing.T) {
	payloads := []any{
		[]byte{1, 2, 3},
		[]uint64{1, 2},
		[]float64{1, 2, 3, 4},
		[]int{5},
		[]uint32{6, 7, 8},
		"hello",
		3.14,
		uint64(9),
		true,
		[2]int{1, 2},
	}
	var wantBytes uint64
	for _, p := range payloads {
		wantBytes += payloadBytes(p)
	}

	w := NewWorld(2)
	w.EnableMetrics()
	const tag = 7
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			for _, p := range payloads {
				if err := c.Send(1, tag, p); err != nil {
					return err
				}
			}
			return nil
		}
		for range payloads {
			if _, err := c.Recv(0, tag); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	snaps := w.CommMetricsSnapshot()
	if len(snaps) != 2 {
		t.Fatalf("got %d rank snapshots, want 2", len(snaps))
	}
	sender, receiver := snaps[0], snaps[1]
	if sender.SentMsgs != uint64(len(payloads)) || sender.SentBytes != wantBytes {
		t.Errorf("sender sent %d msgs / %d bytes, want %d / %d",
			sender.SentMsgs, sender.SentBytes, len(payloads), wantBytes)
	}
	if receiver.RecvMsgs != uint64(len(payloads)) || receiver.RecvBytes != wantBytes {
		t.Errorf("receiver got %d msgs / %d bytes, want %d / %d",
			receiver.RecvMsgs, receiver.RecvBytes, len(payloads), wantBytes)
	}
	// The per-rank accounting and the world totals are two views of the
	// same traffic.
	stats := w.Stats()
	if sender.SentMsgs != stats.PointToPointMessages || sender.SentBytes != stats.PointToPointBytes {
		t.Errorf("per-rank (%d msgs, %d bytes) != world totals (%d, %d)",
			sender.SentMsgs, sender.SentBytes, stats.PointToPointMessages, stats.PointToPointBytes)
	}
	// Everything travelled on one tag.
	want := []TagTraffic{{Tag: tag, Msgs: uint64(len(payloads)), Bytes: wantBytes}}
	if !reflect.DeepEqual(sender.SentByTag, want) {
		t.Errorf("sender per-tag = %+v, want %+v", sender.SentByTag, want)
	}
	if !reflect.DeepEqual(receiver.RecvByTag, want) {
		t.Errorf("receiver per-tag = %+v, want %+v", receiver.RecvByTag, want)
	}
}

// TestMetricsCollectiveAccounting checks per-op invocation counts and
// that wall time accumulates.
func TestMetricsCollectiveAccounting(t *testing.T) {
	w := NewWorld(4)
	w.EnableMetrics()
	err := w.Run(func(c *Comm) error {
		if _, err := c.Bcast(0, 1.0); err != nil {
			return err
		}
		if _, err := c.Bcast(0, 2.0); err != nil {
			return err
		}
		if _, err := c.Reduce(0, float64(c.Rank()), OpSum); err != nil {
			return err
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range w.CommMetricsSnapshot() {
		byOp := map[string]CollectiveStat{}
		for _, cs := range s.Collectives {
			byOp[cs.Op] = cs
		}
		if byOp["bcast"].Calls != 2 {
			t.Errorf("rank %d: bcast calls = %d, want 2", s.Rank, byOp["bcast"].Calls)
		}
		if byOp["reduce"].Calls != 1 || byOp["barrier"].Calls != 1 {
			t.Errorf("rank %d: reduce/barrier calls = %d/%d, want 1/1",
				s.Rank, byOp["reduce"].Calls, byOp["barrier"].Calls)
		}
		if byOp["bcast"].Nanos < 0 {
			t.Errorf("rank %d: negative bcast time", s.Rank)
		}
	}
}

// TestMetricsDisabledByDefault: no accounting, nil handles, zero cost
// paths exercised.
func TestMetricsDisabledByDefault(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Metrics() != nil {
			t.Error("Metrics() non-nil without EnableMetrics")
		}
		if c.Rank() == 0 {
			return c.Send(1, 1, []float64{1})
		}
		_, err := c.Recv(0, 1)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if snaps := w.CommMetricsSnapshot(); snaps != nil {
		t.Fatalf("snapshot without EnableMetrics: %+v", snaps)
	}
}

// TestMetricsSurviveShrink: accounting keeps original-rank identity
// across an eviction-mode shrink.
func TestMetricsSurviveShrink(t *testing.T) {
	w := NewWorld(3)
	w.EnableMetrics()
	w.EnableEviction(5*time.Millisecond, 2)
	const tag = 3
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 2 {
			return errors.New("deliberate death") // dies immediately
		}
		// Survivors: agree, shrink, then exchange one message on the
		// sub-communicator.
		surv, err := c.Agree()
		if err != nil {
			return err
		}
		nc, err := c.Shrink(surv)
		if err != nil {
			return err
		}
		if nc.Rank() == 0 {
			if err := nc.Send(1, tag, []uint64{1, 2, 3}); err != nil {
				return err
			}
		} else {
			if _, err := nc.Recv(0, tag); err != nil {
				return err
			}
		}
		// Stay resident until the detector has declared rank 2 failed, so
		// Run's verdict sees an eviction rather than an unexplained error.
		for len(c.Evictions()) == 0 {
			time.Sleep(time.Millisecond)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snaps := w.CommMetricsSnapshot()
	if !snaps[2].Evicted {
		t.Error("rank 2 not marked evicted")
	}
	if snaps[0].SentBytes != 24 {
		t.Errorf("rank 0 sent %d bytes on the sub-world, want 24", snaps[0].SentBytes)
	}
	if snaps[1].RecvBytes != 24 {
		t.Errorf("rank 1 received %d bytes on the sub-world, want 24", snaps[1].RecvBytes)
	}
	if snaps[0].Heartbeats == 0 && snaps[1].Heartbeats == 0 {
		t.Error("no heartbeats recorded in eviction mode")
	}
}

// TestMetricsIrecvAccounted: the non-blocking receive path books
// received traffic too.
func TestMetricsIrecvAccounted(t *testing.T) {
	w := NewWorld(2)
	w.EnableMetrics()
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, []float64{1, 2})
		}
		req := c.Irecv(0, 1)
		_, err := req.Wait()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	s := w.CommMetricsSnapshot()[1]
	if s.RecvMsgs != 1 || s.RecvBytes != 16 {
		t.Errorf("Irecv accounting = %d msgs / %d bytes, want 1 / 16", s.RecvMsgs, s.RecvBytes)
	}
}
