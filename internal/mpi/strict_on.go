//go:build mpistrict

package mpi

// strictPayloadSizes is true under the mpistrict build tag: sending a
// payload type without a modelled wire size panics, so the communication
// counters the perf model depends on cannot silently drift.
const strictPayloadSizes = true
