package mpi

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the cross-process transport: a full-mesh TCP or unix-socket
// backend hardened for real failure. Each process hosts exactly one rank
// of the world; the mesh is wired lower-rank-dials-higher with a
// handshake (rank identity, world size, job id, protocol version) on every
// connection. Reliability is built from three mechanisms:
//
//   - per-frame write deadlines, so a wedged peer cannot block the sender;
//   - reconnect with capped exponential backoff plus jitter, so a severed
//     connection heals without a thundering redial;
//   - per-peer sequence numbers with cumulative acks, resend-on-reconnect,
//     and receiver-side duplicate suppression, so a frame in flight across
//     a connection loss is delivered exactly once.
//
// Failure surfaces through the runtime's existing machinery: wire
// heartbeats feed the eviction layer's failure detector, a goodbye frame
// attributes a peer's exit (clean vs. error), and a peer that stays
// unreachable past the redial budget is declared failed — flowing into
// Agree/Shrink live eviction exactly as an injected fault does.

// NetConfig parameterises a NetTransport. Self, Size, Network, and Addrs
// are required; zero durations select the defaults below.
type NetConfig struct {
	// Self is the original rank this process hosts.
	Self int
	// Size is the world size; len(Addrs) must equal it.
	Size int
	// Network is "unix" or "tcp".
	Network string
	// Addrs[i] is the listen address of the process hosting rank i.
	Addrs []string
	// Job is an opaque run identity checked at handshake, so a stray
	// worker from another launch cannot join the mesh.
	Job string
	// DialTimeout bounds one dial attempt.
	DialTimeout time.Duration
	// WriteTimeout is the per-frame write deadline.
	WriteTimeout time.Duration
	// RetryBase and RetryCap shape the reconnect backoff: the delay starts
	// at RetryBase, doubles per attempt, is capped at RetryCap, and gets
	// up to 50% uniform jitter added.
	RetryBase time.Duration
	RetryCap  time.Duration
	// RetryBudget is the total time a broken connection may spend
	// redialing before the peer is declared lost.
	RetryBudget time.Duration
	// StartupBudget is the dial budget while wiring the initial mesh
	// (workers of one launch start at different times).
	StartupBudget time.Duration
	// Linger bounds the post-run drain: how long Shutdown waits for peers
	// to acknowledge outstanding frames and say goodbye.
	Linger time.Duration
}

// Default NetConfig durations.
const (
	DefaultDialTimeout   = 1 * time.Second
	DefaultWriteTimeout  = 2 * time.Second
	DefaultRetryBase     = 10 * time.Millisecond
	DefaultRetryCap      = 500 * time.Millisecond
	DefaultRetryBudget   = 3 * time.Second
	DefaultStartupBudget = 10 * time.Second
	DefaultLinger        = 5 * time.Second
)

func (c *NetConfig) norm() error {
	if c.Size < 1 {
		return fmt.Errorf("mpi: net world size %d < 1", c.Size)
	}
	if c.Self < 0 || c.Self >= c.Size {
		return fmt.Errorf("mpi: net self rank %d out of [0,%d)", c.Self, c.Size)
	}
	if c.Network != "unix" && c.Network != "tcp" {
		return fmt.Errorf("mpi: net network %q (want unix or tcp)", c.Network)
	}
	if len(c.Addrs) != c.Size {
		return fmt.Errorf("mpi: %d addrs for %d ranks", len(c.Addrs), c.Size)
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = DefaultWriteTimeout
	}
	if c.RetryBase <= 0 {
		c.RetryBase = DefaultRetryBase
	}
	if c.RetryCap <= 0 {
		c.RetryCap = DefaultRetryCap
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = DefaultRetryBudget
	}
	if c.StartupBudget <= 0 {
		c.StartupBudget = DefaultStartupBudget
	}
	if c.Linger <= 0 {
		c.Linger = DefaultLinger
	}
	return nil
}

// NetTransport is the TCP/unix-socket Transport. Create with
// NewNetTransport, attach a world with NewNetWorld, wire the mesh with
// Start, run the hosted rank with World.RunLocal.
type NetTransport struct {
	cfg   NetConfig
	world *World
	ln    net.Listener
	peers []*peer
	stats TransportStats

	closed atomic.Bool
	stopCh chan struct{}
	wg     sync.WaitGroup
}

// NewNetTransport validates cfg and builds the (not yet wired) transport.
func NewNetTransport(cfg NetConfig) (*NetTransport, error) {
	if err := cfg.norm(); err != nil {
		return nil, err
	}
	t := &NetTransport{cfg: cfg, stopCh: make(chan struct{})}
	t.peers = make([]*peer, cfg.Size)
	for r := 0; r < cfg.Size; r++ {
		if r == cfg.Self {
			continue
		}
		p := &peer{t: t, rank: r, dialer: cfg.Self < r}
		p.cond = sync.NewCond(&p.mu)
		t.peers[r] = p
	}
	return t, nil
}

// Self returns the original rank this transport's process hosts.
func (t *NetTransport) Self() int { return t.cfg.Self }

// Size returns the world size the transport was configured with.
func (t *NetTransport) Size() int { return t.cfg.Size }

// Stats returns the live counter set (read with Snapshot).
func (t *NetTransport) Stats() *TransportStats { return &t.stats }

// bind attaches the transport to its root world (NewNetWorld).
func (t *NetTransport) bind(w *World) { t.world = w }

// Start listens on the hosted rank's address and wires the mesh: this
// side dials every higher rank (with backoff, within StartupBudget) and
// accepts connections from every lower rank. It returns once every peer
// is connected, or with the first wiring error.
func (t *NetTransport) Start() error {
	if t.world == nil {
		return errors.New("mpi: NetTransport.Start before NewNetWorld")
	}
	addr := t.cfg.Addrs[t.cfg.Self]
	if t.cfg.Network == "unix" {
		// A stale socket file from a previous run blocks the bind.
		_ = os.Remove(addr)
	}
	ln, err := net.Listen(t.cfg.Network, addr)
	if err != nil {
		return fmt.Errorf("mpi: rank %d listen %s %s: %w", t.cfg.Self, t.cfg.Network, addr, err)
	}
	t.ln = ln
	t.wg.Add(1)
	go t.acceptLoop()

	errCh := make(chan error, t.cfg.Size)
	var dials sync.WaitGroup
	for r := t.cfg.Self + 1; r < t.cfg.Size; r++ {
		dials.Add(1)
		go func(p *peer) {
			defer dials.Done()
			errCh <- p.dialOnce(t.cfg.StartupBudget)
		}(t.peers[r])
	}
	dials.Wait()
	close(errCh)
	for e := range errCh {
		if e != nil {
			return e
		}
	}
	// Wait for every lower rank to dial in.
	deadline := time.Now().Add(t.cfg.StartupBudget)
	for r := 0; r < t.cfg.Self; r++ {
		if err := t.peers[r].waitConnected(deadline); err != nil {
			return err
		}
	}
	return nil
}

// acceptLoop admits incoming connections: each must open with a valid
// hello (protocol version is checked by the frame decoder itself).
func (t *NetTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			if t.closed.Load() {
				return
			}
			select {
			case <-t.stopCh:
				return
			default:
				continue
			}
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.handleIncoming(conn)
		}()
	}
}

func (t *NetTransport) handleIncoming(conn net.Conn) {
	_ = conn.SetReadDeadline(time.Now().Add(t.cfg.DialTimeout + t.cfg.WriteTimeout))
	f, err := readFrame(conn)
	if err != nil || f.Kind != frameHello {
		conn.Close()
		return
	}
	hv, err := decodePayload(f.Payload)
	if err != nil {
		conn.Close()
		return
	}
	hello, ok := hv.(helloMsg)
	if !ok || hello.Size != t.cfg.Size || hello.Job != t.cfg.Job ||
		hello.Rank < 0 || hello.Rank >= t.cfg.Self {
		// Identity mismatch, or a violation of the lower-rank-dials-higher
		// convention: reject before the connection joins the mesh.
		conn.Close()
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	if err := t.writeHandshake(conn, frameWelcome); err != nil {
		conn.Close()
		return
	}
	t.peers[hello.Rank].install(conn)
}

// writeHandshake sends this side's identity as a hello or welcome frame.
func (t *NetTransport) writeHandshake(conn net.Conn, kind frameKind) error {
	body, err := encodePayload(helloMsg{Rank: t.cfg.Self, Size: t.cfg.Size, Job: t.cfg.Job})
	if err != nil {
		return err
	}
	return t.writeFrame(conn, &frame{Kind: kind, Src: int32(t.cfg.Self), Payload: body})
}

// writeFrame encodes and writes one frame under the per-frame deadline.
func (t *NetTransport) writeFrame(conn net.Conn, f *frame) error {
	b, err := encodeFrame(f)
	if err != nil {
		return err
	}
	if err := conn.SetWriteDeadline(time.Now().Add(t.cfg.WriteTimeout)); err != nil {
		return err
	}
	if _, err := conn.Write(b); err != nil {
		return err
	}
	t.stats.FramesSent.Add(1)
	t.stats.BytesSent.Add(uint64(len(b)))
	return nil
}

// Deliver implements Transport: loopback envelopes go straight to the
// local inbox (sharing the payload by reference, like the in-process
// transport); remote envelopes are encoded and sent reliably.
func (t *NetTransport) Deliver(w *World, src, dst, tag int, payload any) error {
	origDst := w.origOf(dst)
	if origDst == t.cfg.Self {
		w.boxes[dst].put(envelope{source: src, tag: tag, payload: payload})
		return nil
	}
	body, err := encodePayload(payload)
	if err != nil {
		return err
	}
	return t.peers[origDst].sendReliable(&frame{
		Kind: frameData, Src: int32(src), Dst: int32(dst), Tag: int64(tag),
		World: w.key(), Payload: body,
	})
}

// Beat broadcasts one liveness tick to every peer (transient: a beat lost
// with a broken connection is simply the next deadline's problem).
func (t *NetTransport) Beat() {
	f := &frame{Kind: frameBeat, Src: int32(t.cfg.Self)}
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		// An evicted peer is dead to the group: stop feeding its failure
		// detector, so a zombie (e.g. SIGSTOP'd through its own eviction,
		// then resumed) sees the survivors go stale and unwinds instead of
		// waiting forever on a communicator it is no longer part of.
		if t.world != nil && t.world.rankFailedNow(p.rank) {
			continue
		}
		if p.sendTransient(f) {
			t.stats.BeatsSent.Add(1)
		}
	}
}

// sendAgree announces this rank's arrival at an agreement round to the
// coordinating rank 0.
func (t *NetTransport) sendAgree(round int) error {
	return t.peers[0].sendReliable(&frame{
		Kind: frameAgree, Src: int32(t.cfg.Self), Seq: 0, Tag: int64(round),
	})
}

// sendAgreeResult delivers a resolved agreement round to a survivor.
func (t *NetTransport) sendAgreeResult(dst, round int, survivors []int) error {
	body, err := encodePayload(agreeResultMsg{Round: round, Survivors: survivors})
	if err != nil {
		return err
	}
	return t.peers[dst].sendReliable(&frame{
		Kind: frameAgreeResult, Src: int32(t.cfg.Self), Dst: int32(dst), Tag: int64(round), Payload: body,
	})
}

// Shutdown announces the hosted rank's exit to every reachable peer,
// drains outstanding frames within the linger budget, and tears the mesh
// down. It is the clean half of exit attribution: a peer that receives
// the goodbye knows whether this rank finished OK or with which error; a
// peer that never does will diagnose a vanished rank from its silence.
func (t *NetTransport) Shutdown(status error) {
	msg := goodbyeMsg{OK: status == nil}
	if status != nil {
		msg.Err = status.Error()
		msg.Cascade = errors.Is(status, ErrAborted) || errors.Is(status, ErrRevoked)
	}
	body, encErr := encodePayload(msg)
	for _, p := range t.peers {
		if p == nil || encErr != nil {
			continue
		}
		p.mu.Lock()
		skip := p.done || p.lost
		p.mu.Unlock()
		if skip {
			continue
		}
		_ = p.sendReliable(&frame{Kind: frameGoodbye, Src: int32(t.cfg.Self), Payload: body})
	}
	deadline := time.Now().Add(t.cfg.Linger)
	for _, p := range t.peers {
		if p != nil {
			p.drain(deadline)
		}
	}
	t.close()
}

// close releases every connection and the listener without a goodbye
// (Shutdown's final step, and the test harness's simulated hard crash).
func (t *NetTransport) close() {
	if !t.closed.CompareAndSwap(false, true) {
		return
	}
	close(t.stopCh)
	if t.ln != nil {
		t.ln.Close()
	}
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
			p.conn = nil
		}
		p.cond.Broadcast()
		p.mu.Unlock()
	}
	t.wg.Wait()
	if t.cfg.Network == "unix" {
		_ = os.Remove(t.cfg.Addrs[t.cfg.Self])
	}
}

// DropConns severs every live connection without telling the peers — the
// chaos harness's network cut. The reliability layer (redial with backoff
// on the dialing side, resend of unacked frames, duplicate suppression)
// must recover transparently.
func (t *NetTransport) DropConns() {
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
		}
		p.mu.Unlock()
	}
}

// peer is the per-remote-rank endpoint: one connection (replaced on
// reconnect), the reliable-send queue, and the receive-side sequence
// state for duplicate suppression.
type peer struct {
	t      *NetTransport
	rank   int
	dialer bool // this side dials (lower rank dials higher)

	mu   sync.Mutex
	cond *sync.Cond
	conn net.Conn
	// sendSeq numbers reliable frames; unacked holds them, ascending,
	// until the peer's cumulative ack covers them.
	sendSeq uint64
	unacked []*frame
	// lastRecv is the highest reliable sequence processed from this peer:
	// anything at or below it is a duplicate (a resend racing an ack).
	lastRecv uint64
	// done: peer said goodbye. lost: peer declared unreachable after the
	// redial budget. redialing: a backoff loop is in flight.
	done      bool
	lost      bool
	redialing bool
	everConn  bool
}

// waitConnected blocks until the peer's first connection is installed.
func (p *peer) waitConnected(deadline time.Time) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.conn == nil {
		if p.t.closed.Load() {
			return errors.New("mpi: transport closed while wiring mesh")
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("mpi: rank %d never connected within the startup budget", p.rank)
		}
		p.mu.Unlock()
		time.Sleep(5 * time.Millisecond)
		p.mu.Lock()
	}
	return nil
}

// dialOnce dials the peer within budget, performing the hello/welcome
// handshake, with capped exponential backoff plus jitter between
// attempts. Used both for initial wiring and for reconnects.
func (p *peer) dialOnce(budget time.Duration) error {
	t := p.t
	deadline := time.Now().Add(budget)
	backoff := t.cfg.RetryBase
	for {
		if t.closed.Load() {
			return errors.New("mpi: transport closed")
		}
		p.mu.Lock()
		stop := p.done || p.lost
		p.mu.Unlock()
		if stop || t.world.rankFailedNow(p.rank) {
			return nil
		}
		conn, err := net.DialTimeout(t.cfg.Network, t.cfg.Addrs[p.rank], t.cfg.DialTimeout)
		if err == nil {
			err = p.handshake(conn)
			if err == nil {
				p.install(conn)
				return nil
			}
			conn.Close()
		}
		t.stats.Redials.Add(1)
		if time.Now().After(deadline) {
			return fmt.Errorf("mpi: rank %d unreachable at %s after %v of redials: %w",
				p.rank, t.cfg.Addrs[p.rank], budget, err)
		}
		// Full jitter on the upper half keeps simultaneous redials from
		// synchronising into a thundering herd.
		sleep := backoff/2 + time.Duration(rand.Int64N(int64(backoff/2)+1))
		time.Sleep(sleep)
		backoff *= 2
		if backoff > t.cfg.RetryCap {
			backoff = t.cfg.RetryCap
		}
	}
}

// handshake runs the dialer side: hello out, welcome back, identity
// checked.
func (p *peer) handshake(conn net.Conn) error {
	t := p.t
	if err := t.writeHandshake(conn, frameHello); err != nil {
		return err
	}
	_ = conn.SetReadDeadline(time.Now().Add(t.cfg.DialTimeout + t.cfg.WriteTimeout))
	f, err := readFrame(conn)
	if err != nil {
		return err
	}
	if f.Kind != frameWelcome {
		return fmt.Errorf("mpi: handshake with rank %d: got %v, want welcome", p.rank, f.Kind)
	}
	hv, err := decodePayload(f.Payload)
	if err != nil {
		return err
	}
	hello, ok := hv.(helloMsg)
	if !ok || hello.Rank != p.rank || hello.Size != t.cfg.Size || hello.Job != t.cfg.Job {
		return fmt.Errorf("mpi: handshake with rank %d: identity mismatch", p.rank)
	}
	_ = conn.SetReadDeadline(time.Time{})
	return nil
}

// install adopts a fresh connection: the previous one (if any) is closed,
// a read loop is spawned, and every unacked reliable frame is resent in
// sequence order — the receiver's duplicate suppression discards the ones
// that did arrive before the cut.
func (p *peer) install(conn net.Conn) {
	p.mu.Lock()
	if p.t.closed.Load() {
		p.mu.Unlock()
		conn.Close()
		return
	}
	if p.conn != nil {
		p.conn.Close()
	}
	p.conn = conn
	if p.everConn {
		p.t.stats.Reconnects.Add(1)
	}
	p.everConn = true
	resend := append([]*frame(nil), p.unacked...)
	for _, f := range resend {
		if err := p.t.writeFrame(conn, f); err != nil {
			break
		}
	}
	if len(resend) > 0 {
		p.t.stats.Resends.Add(uint64(len(resend)))
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	p.t.wg.Add(1)
	go func() {
		defer p.t.wg.Done()
		p.readLoop(conn)
	}()
}

// sendReliable queues a sequenced frame and transmits it on the live
// connection; a broken connection only delays it (resend-on-reconnect
// delivers). It errors only when the peer can never receive it.
func (p *peer) sendReliable(f *frame) error {
	p.mu.Lock()
	if p.lost {
		p.mu.Unlock()
		return fmt.Errorf("mpi: rank %d is unreachable", p.rank)
	}
	if p.t.closed.Load() {
		p.mu.Unlock()
		return errors.New("mpi: transport closed")
	}
	p.sendSeq++
	f.Seq = p.sendSeq
	p.unacked = append(p.unacked, f)
	conn := p.conn
	var err error
	if conn != nil {
		err = p.t.writeFrame(conn, f)
	}
	p.mu.Unlock()
	if conn == nil || err != nil {
		p.connBroken(conn)
	}
	return nil
}

// sendTransient writes an unsequenced frame on the live connection if
// there is one; losses are acceptable by construction.
func (p *peer) sendTransient(f *frame) bool {
	p.mu.Lock()
	conn := p.conn
	p.mu.Unlock()
	if conn == nil {
		p.connBroken(nil)
		return false
	}
	if err := p.t.writeFrame(conn, f); err != nil {
		p.connBroken(conn)
		return false
	}
	return true
}

// connBroken retires a failed connection (idempotently) and, on the
// dialing side, starts the backoff reconnect loop. The accepting side
// waits for the dialer to come back; if the peer is truly gone, the
// heartbeat failure detector — not the transport — declares it.
func (p *peer) connBroken(conn net.Conn) {
	t := p.t
	if t.closed.Load() {
		return
	}
	p.mu.Lock()
	if conn != nil {
		if p.conn != conn {
			p.mu.Unlock()
			return
		}
		conn.Close()
		p.conn = nil
	}
	startRedial := p.dialer && !p.redialing && !p.done && !p.lost && p.conn == nil
	if startRedial {
		p.redialing = true
	}
	p.mu.Unlock()
	if !startRedial {
		return
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		err := p.dialOnce(t.cfg.RetryBudget)
		p.mu.Lock()
		p.redialing = false
		p.mu.Unlock()
		if err != nil && !t.closed.Load() {
			p.markLost(err)
		}
	}()
}

// markLost declares the peer unreachable: the world turns this into a
// rank failure (eviction mode) or an abort.
func (p *peer) markLost(err error) {
	p.mu.Lock()
	if p.lost || p.done {
		p.mu.Unlock()
		return
	}
	p.lost = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.t.world.peerLost(p.rank, err)
}

// handleAck prunes the reliable queue through the cumulative ack.
func (p *peer) handleAck(cum uint64) {
	p.mu.Lock()
	i := 0
	for i < len(p.unacked) && p.unacked[i].Seq <= cum {
		i++
	}
	if i > 0 {
		p.unacked = append(p.unacked[:0], p.unacked[i:]...)
	}
	if len(p.unacked) == 0 {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// drain waits until the peer has acknowledged every reliable frame and
// announced its own exit (or been declared lost), bounded by deadline.
func (p *peer) drain(deadline time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.lost || (p.done && len(p.unacked) == 0) {
			return
		}
		if time.Now().After(deadline) {
			return
		}
		p.mu.Unlock()
		time.Sleep(2 * time.Millisecond)
		p.mu.Lock()
	}
}

// readLoop decodes frames off one connection and dispatches them.
// Reliable frames pass through duplicate suppression (a resend racing the
// ack it already earned) and strict in-order sequencing; a sequence gap
// means the streams diverged, so the connection is dropped and the
// resend machinery re-synchronises.
func (p *peer) readLoop(conn net.Conn) {
	t := p.t
	br := bufio.NewReader(conn)
	for {
		f, err := readFrame(br)
		if err != nil {
			if !errors.Is(err, io.EOF) && !isClosedConn(err) {
				t.stats.DecodeErrs.Add(1)
			}
			p.connBroken(conn)
			return
		}
		t.stats.FramesRecv.Add(1)
		t.stats.BytesRecv.Add(uint64(frameHeaderLen + len(f.World) + len(f.Payload)))
		if !f.Kind.reliable() {
			switch f.Kind {
			case frameAck:
				p.handleAck(f.Seq)
			case frameBeat:
				t.stats.BeatsRecv.Add(1)
				t.world.noteRemoteBeat(p.rank)
			}
			continue
		}
		p.mu.Lock()
		if f.Seq <= p.lastRecv {
			p.mu.Unlock()
			t.stats.DupsDropped.Add(1)
			p.writeAck(conn)
			continue
		}
		if f.Seq != p.lastRecv+1 {
			p.mu.Unlock()
			p.connBroken(conn)
			return
		}
		p.lastRecv = f.Seq
		p.mu.Unlock()
		p.writeAck(conn)
		p.dispatch(f)
	}
}

// writeAck sends the cumulative ack for everything processed so far.
func (p *peer) writeAck(conn net.Conn) {
	p.mu.Lock()
	cum := p.lastRecv
	p.mu.Unlock()
	if err := p.t.writeFrame(conn, &frame{Kind: frameAck, Src: int32(p.t.cfg.Self), Seq: cum}); err != nil {
		p.connBroken(conn)
	}
}

// dispatch routes one de-duplicated reliable frame into the world.
func (p *peer) dispatch(f *frame) {
	t := p.t
	switch f.Kind {
	case frameData:
		v, err := decodePayload(f.Payload)
		if err != nil {
			t.stats.DecodeErrs.Add(1)
			return
		}
		t.world.deliverRemote(f.World, int(f.Src), int(f.Dst), int(f.Tag), v)
	case frameGoodbye:
		v, err := decodePayload(f.Payload)
		if err != nil {
			t.stats.DecodeErrs.Add(1)
			return
		}
		gb, ok := v.(goodbyeMsg)
		if !ok {
			t.stats.DecodeErrs.Add(1)
			return
		}
		p.mu.Lock()
		p.done = true
		p.cond.Broadcast()
		p.mu.Unlock()
		t.world.peerExited(p.rank, gb.OK, gb.Err, gb.Cascade)
	case frameAgree:
		t.world.netAgreeArrive(p.rank, int(f.Tag))
	case frameAgreeResult:
		v, err := decodePayload(f.Payload)
		if err != nil {
			t.stats.DecodeErrs.Add(1)
			return
		}
		res, ok := v.(agreeResultMsg)
		if !ok {
			t.stats.DecodeErrs.Add(1)
			return
		}
		t.world.netAgreeResult(res.Round, res.Survivors)
	}
}

// isClosedConn reports the "use of closed network connection" error shape
// produced by closing a conn out from under its reader.
func isClosedConn(err error) bool {
	if errors.Is(err, net.ErrClosed) {
		return true
	}
	return err != nil && strings.Contains(err.Error(), "use of closed network connection")
}
