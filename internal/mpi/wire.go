package mpi

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
)

// This file is the wire half of the transport layer: a length-prefixed
// binary frame format carrying the runtime's point-to-point envelopes,
// liveness beats, and recovery-protocol messages between processes, plus
// the gob-based payload codec that serialises envelope payloads. The frame
// header is hand-rolled (fixed layout, explicit bounds) in the style of
// internal/checkpoint's snapshot format: a decoder fed truncated or
// hostile bytes must error — never panic, never allocate unbounded memory.

// wireMagic identifies an egd wire frame ("EGDW").
const wireMagic = 0x45474457

// wireVersion is the protocol version negotiated at handshake; a peer
// speaking a different version is rejected before any data flows.
const wireVersion = 1

// Frame size limits enforced by the decoder before allocating: a length
// field beyond these is a corrupt or hostile frame, not a big message.
const (
	maxWorldKeyLen  = 1 << 10 // sub-world keys are short survivor lists
	maxFramePayload = 1 << 26 // 64 MiB bounds any legitimate sim payload
)

// frameKind discriminates wire frames. Reliable kinds (frameData,
// frameGoodbye, frameAgree, frameAgreeResult) carry per-peer sequence
// numbers, are resent after a reconnect, and are dup-dropped by the
// receiver; transient kinds (beats, acks, handshake) are fire-and-forget.
type frameKind uint8

const (
	// frameData carries one point-to-point envelope: dense src/dst ranks
	// within the sub-world named by the frame's world key, a tag, and a
	// gob-encoded payload.
	frameData frameKind = 1 + iota
	// frameBeat is a liveness tick from the hosting rank's heartbeat
	// emitter; receipt refreshes the sender's entry in the local failure
	// detector.
	frameBeat
	// frameGoodbye announces the sender's rank leaving Run, carrying its
	// exit status so survivors attribute the departure (clean shutdown vs.
	// error exit vs. silent disappearance).
	frameGoodbye
	// frameAgree is a survivor's arrival at an agreement round, sent to
	// the coordinating rank 0.
	frameAgree
	// frameAgreeResult is rank 0's resolution of an agreement round: the
	// surviving-rank set.
	frameAgreeResult
	// frameAck is a cumulative acknowledgement: every reliable frame with
	// sequence number <= Seq has been processed by the sender of the ack.
	frameAck
	// frameHello opens a connection: rank identity, world size, job id,
	// and protocol version (in the header) are checked before the
	// connection joins the mesh.
	frameHello
	// frameWelcome accepts a hello, echoing the acceptor's identity.
	frameWelcome
)

// frameKindEnd is one past the last valid frame kind (decoder bound).
const frameKindEnd = frameWelcome + 1

func (k frameKind) String() string {
	switch k {
	case frameData:
		return "data"
	case frameBeat:
		return "beat"
	case frameGoodbye:
		return "goodbye"
	case frameAgree:
		return "agree"
	case frameAgreeResult:
		return "agree_result"
	case frameAck:
		return "ack"
	case frameHello:
		return "hello"
	case frameWelcome:
		return "welcome"
	}
	return fmt.Sprintf("frameKind(%d)", uint8(k))
}

// reliable reports whether the kind is sequenced, resent after reconnect,
// and dup-suppressed at the receiver.
func (k frameKind) reliable() bool {
	switch k {
	case frameData, frameGoodbye, frameAgree, frameAgreeResult:
		return true
	}
	return false
}

// frame is one wire message. Src and Dst are dense ranks within the
// sub-world named by World ("" is the root world), except for transport-
// level kinds (beat, goodbye, hello, ack) where Src is the sender's
// original rank and World is empty.
type frame struct {
	Kind    frameKind
	Seq     uint64
	Src     int32
	Dst     int32
	Tag     int64
	World   string
	Payload []byte
}

// frameHeaderLen is the fixed-size prefix of an encoded frame:
// magic(4) version(2) kind(1) pad(1) seq(8) src(4) dst(4) tag(8)
// worldLen(2) payloadLen(4).
const frameHeaderLen = 38

// appendFrame encodes f onto buf and returns the extended slice.
func appendFrame(buf []byte, f *frame) ([]byte, error) {
	if len(f.World) > maxWorldKeyLen {
		return nil, fmt.Errorf("mpi: wire frame world key %d bytes exceeds %d", len(f.World), maxWorldKeyLen)
	}
	if len(f.Payload) > maxFramePayload {
		return nil, fmt.Errorf("mpi: wire frame payload %d bytes exceeds %d", len(f.Payload), maxFramePayload)
	}
	if f.Kind == 0 || f.Kind >= frameKindEnd {
		return nil, fmt.Errorf("mpi: wire frame kind %d invalid", uint8(f.Kind))
	}
	var h [frameHeaderLen]byte
	binary.BigEndian.PutUint32(h[0:], wireMagic)
	binary.BigEndian.PutUint16(h[4:], wireVersion)
	h[6] = uint8(f.Kind)
	h[7] = 0
	binary.BigEndian.PutUint64(h[8:], f.Seq)
	binary.BigEndian.PutUint32(h[16:], uint32(f.Src))
	binary.BigEndian.PutUint32(h[20:], uint32(f.Dst))
	binary.BigEndian.PutUint64(h[24:], uint64(f.Tag))
	binary.BigEndian.PutUint16(h[32:], uint16(len(f.World)))
	binary.BigEndian.PutUint32(h[34:], uint32(len(f.Payload)))
	buf = append(buf, h[:]...)
	buf = append(buf, f.World...)
	buf = append(buf, f.Payload...)
	return buf, nil
}

// encodeFrame encodes f into a fresh buffer.
func encodeFrame(f *frame) ([]byte, error) {
	return appendFrame(make([]byte, 0, frameHeaderLen+len(f.World)+len(f.Payload)), f)
}

// readFrame decodes one frame from r. Length fields are bounds-checked
// before any allocation, so a hostile stream cannot force an oversized
// buffer; any malformed header errors out without consuming the rest of
// the stream coherently (callers drop the connection).
func readFrame(r io.Reader) (*frame, error) {
	var h [frameHeaderLen]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return nil, err
	}
	return readFrameBody(h, r)
}

// decodeFrameBytes decodes one frame from a byte slice (the fuzz and test
// entry point), requiring the slice to contain exactly one frame.
func decodeFrameBytes(b []byte) (*frame, error) {
	r := bytes.NewReader(b)
	f, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("mpi: wire frame has %d trailing bytes", r.Len())
	}
	return f, nil
}

func readFrameBody(h [frameHeaderLen]byte, r io.Reader) (*frame, error) {
	if m := binary.BigEndian.Uint32(h[0:]); m != wireMagic {
		return nil, fmt.Errorf("mpi: wire frame magic %#x (want %#x)", m, uint32(wireMagic))
	}
	if v := binary.BigEndian.Uint16(h[4:]); v != wireVersion {
		return nil, fmt.Errorf("mpi: wire protocol version %d (want %d)", v, wireVersion)
	}
	kind := frameKind(h[6])
	if kind == 0 || kind >= frameKindEnd {
		return nil, fmt.Errorf("mpi: wire frame kind %d invalid", h[6])
	}
	if h[7] != 0 {
		return nil, fmt.Errorf("mpi: wire frame pad byte %#x nonzero", h[7])
	}
	wkLen := int(binary.BigEndian.Uint16(h[32:]))
	payLen := int(binary.BigEndian.Uint32(h[34:]))
	if wkLen > maxWorldKeyLen {
		return nil, fmt.Errorf("mpi: wire frame world key %d bytes exceeds %d", wkLen, maxWorldKeyLen)
	}
	if payLen > maxFramePayload {
		return nil, fmt.Errorf("mpi: wire frame payload %d bytes exceeds %d", payLen, maxFramePayload)
	}
	f := &frame{
		Kind: kind,
		Seq:  binary.BigEndian.Uint64(h[8:]),
		Src:  int32(binary.BigEndian.Uint32(h[16:])),
		Dst:  int32(binary.BigEndian.Uint32(h[20:])),
		Tag:  int64(binary.BigEndian.Uint64(h[24:])),
	}
	rest := make([]byte, wkLen+payLen)
	if _, err := io.ReadFull(r, rest); err != nil {
		return nil, err
	}
	f.World = string(rest[:wkLen])
	if payLen > 0 {
		f.Payload = rest[wkLen:]
	}
	return f, nil
}

// wirePayload wraps an envelope payload so gob serialises the interface
// value (concrete type name + value) rather than a fixed struct shape.
type wirePayload struct {
	V any
}

// RegisterWirePayload registers a payload type with the wire codec's gob
// layer. Every concrete type an application sends through a networked
// world must be registered identically in every process before the world
// runs; unregistered types fail at encode time on the sender.
func RegisterWirePayload(v any) { gob.Register(v) }

func init() {
	// The runtime's own cross-wire payload vocabulary: the scalar and
	// slice types payloadBytes models, the aggregate shapes collectives
	// produce, and the transport's control-message bodies.
	for _, v := range []any{
		int(0), int32(0), int64(0), uint32(0), uint64(0),
		float64(0), bool(false), string(""),
		[]byte(nil), []int(nil), []uint32(nil), []uint64(nil), []float64(nil),
		[]any(nil), [2]int{},
		helloMsg{}, goodbyeMsg{}, agreeResultMsg{},
	} {
		gob.Register(v)
	}
}

// encodePayload serialises an envelope payload for a data frame. A nil
// payload encodes to an empty body.
func encodePayload(v any) ([]byte, error) {
	if v == nil {
		return nil, nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&wirePayload{V: v}); err != nil {
		return nil, fmt.Errorf("mpi: encode wire payload %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// decodePayload deserialises a data-frame body. Gob decoding of hostile
// bytes can panic deep in reflection; the recover guard converts any such
// panic into an error so a malformed frame can never take the receive
// loop down.
func decodePayload(b []byte) (v any, err error) {
	if len(b) == 0 {
		return nil, nil
	}
	defer func() {
		if p := recover(); p != nil {
			v, err = nil, fmt.Errorf("mpi: decode wire payload panicked: %v", p)
		}
	}()
	var wp wirePayload
	if derr := gob.NewDecoder(bytes.NewReader(b)).Decode(&wp); derr != nil {
		return nil, fmt.Errorf("mpi: decode wire payload: %w", derr)
	}
	return wp.V, nil
}

// helloMsg is the handshake body: the dialing (or answering) process
// identifies the rank it hosts, the world size it was configured with,
// and the job id, all of which must match the receiving side's view.
type helloMsg struct {
	Rank int
	Size int
	Job  string
}

// goodbyeMsg is the goodbye body: the sender's exit status. Cascade marks
// an error exit that was itself caused by another rank's failure (the
// error matched ErrAborted/ErrRevoked), so receivers do not attribute an
// independent failure to a rank that merely unwound.
type goodbyeMsg struct {
	OK      bool
	Err     string
	Cascade bool
}

// agreeResultMsg is the agreement-resolution body.
type agreeResultMsg struct {
	Round     int
	Survivors []int
}
