package mpi

import "fmt"

// Collective tags. Each collective call site within an SPMD program must be
// reached by all ranks in the same order (the MPI rule); a per-world epoch
// counter would not survive interleaving, so tags encode the collective kind
// and ranks rendezvous by kind. Non-overtaking delivery per (source, tag)
// keeps successive collectives of the same kind ordered.
const (
	tagBcast = internalTagBase + iota
	tagReduce
	tagGather
	tagBarrierUp
	tagBarrierDown
	tagScatter
)

// enterCollective accounts one collective entry for this rank and consults
// the fault plan: a scripted FailCollective fault makes the rank fail here
// with ErrInjectedFault, modelling a node dying inside a collective.
func (c *Comm) enterCollective() error {
	root := c.world.rootW()
	orig := c.world.origOf(c.rank)
	root.collOps.Add(1)
	n := root.collCounts[orig].Add(1)
	if p := root.plan; p != nil && p.onCollective(orig, n) {
		return fmt.Errorf("mpi: rank %d failed at collective %d: %w", orig, n, ErrInjectedFault)
	}
	return nil
}

// Bcast broadcasts root's payload to every rank along a binomial tree
// (log2 P rounds — the collective-network pattern the paper leans on).
// Every rank receives the broadcast value; root receives its own payload
// argument back. Non-root ranks may pass nil.
func (c *Comm) Bcast(root int, payload any) (any, error) {
	if err := c.checkRank(root); err != nil {
		return nil, err
	}
	if stop := c.collTimer("bcast"); stop != nil {
		defer stop()
	}
	if err := c.enterCollective(); err != nil {
		return nil, err
	}
	size := c.world.size
	if size == 1 {
		return payload, nil
	}
	vrank := (c.rank - root + size) % size
	value := payload
	// Standard binomial tree: at round `mask`, virtual ranks below mask hold
	// the data and send it to vrank+mask; ranks in [mask, 2*mask) receive
	// from their (unique, pinned) parent vrank-mask. Pinning the source —
	// rather than wildcard-receiving — keeps back-to-back collectives with
	// different roots correctly matched via per-(source,tag) FIFO order.
	for mask := 1; mask < size; mask <<= 1 {
		if vrank < mask {
			child := vrank + mask
			if child < size {
				dst := (child + root) % size
				if err := c.send(dst, tagBcast, value); err != nil {
					return nil, err
				}
			}
		} else if vrank < mask<<1 {
			parent := (vrank - mask + root) % size
			msg, err := c.recv(parent, tagBcast)
			if err != nil {
				return nil, err
			}
			value = msg.Payload
		}
	}
	return value, nil
}

// Op is a reduction operator.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
)

func (o Op) apply(a, b float64) float64 {
	switch o {
	case OpSum:
		return a + b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	}
	panic(fmt.Sprintf("mpi: unknown op %d", int(o)))
}

// Reduce combines every rank's value with op; the result is returned at
// root (other ranks get 0). Binomial-tree reduction, log2 P rounds.
func (c *Comm) Reduce(root int, value float64, op Op) (float64, error) {
	if err := c.checkRank(root); err != nil {
		return 0, err
	}
	if stop := c.collTimer("reduce"); stop != nil {
		defer stop()
	}
	if err := c.enterCollective(); err != nil {
		return 0, err
	}
	size := c.world.size
	vrank := (c.rank - root + size) % size
	acc := value
	mask := 1
	for mask < size {
		if vrank&mask != 0 {
			parent := ((vrank &^ mask) + root) % size
			if err := c.send(parent, tagReduce, acc); err != nil {
				return 0, err
			}
			break
		}
		peer := vrank | mask
		if peer < size {
			msg, err := c.recv((peer+root)%size, tagReduce)
			if err != nil {
				return 0, err
			}
			acc = op.apply(acc, msg.Payload.(float64))
		}
		mask <<= 1
	}
	if c.rank == root {
		return acc, nil
	}
	return 0, nil
}

// Allreduce combines every rank's value with op and returns the result on
// all ranks (Reduce to rank 0 followed by Bcast).
func (c *Comm) Allreduce(value float64, op Op) (float64, error) {
	red, err := c.Reduce(0, value, op)
	if err != nil {
		return 0, err
	}
	out, err := c.Bcast(0, red)
	if err != nil {
		return 0, err
	}
	return out.(float64), nil
}

// ReduceSlice element-wise reduces equal-length float64 slices to root.
// Non-root ranks receive nil.
func (c *Comm) ReduceSlice(root int, values []float64, op Op) ([]float64, error) {
	if err := c.checkRank(root); err != nil {
		return nil, err
	}
	if stop := c.collTimer("reduce_slice"); stop != nil {
		defer stop()
	}
	if err := c.enterCollective(); err != nil {
		return nil, err
	}
	size := c.world.size
	vrank := (c.rank - root + size) % size
	acc := make([]float64, len(values))
	copy(acc, values)
	mask := 1
	for mask < size {
		if vrank&mask != 0 {
			parent := ((vrank &^ mask) + root) % size
			if err := c.send(parent, tagReduce, acc); err != nil {
				return nil, err
			}
			break
		}
		peer := vrank | mask
		if peer < size {
			msg, err := c.recv((peer+root)%size, tagReduce)
			if err != nil {
				return nil, err
			}
			other := msg.Payload.([]float64)
			if len(other) != len(acc) {
				return nil, fmt.Errorf("mpi: ReduceSlice length mismatch %d vs %d", len(other), len(acc))
			}
			for i := range acc {
				acc[i] = op.apply(acc[i], other[i])
			}
		}
		mask <<= 1
	}
	if c.rank == root {
		return acc, nil
	}
	return nil, nil
}

// Gather collects every rank's payload at root, indexed by rank. Non-root
// ranks receive nil.
func (c *Comm) Gather(root int, payload any) ([]any, error) {
	if err := c.checkRank(root); err != nil {
		return nil, err
	}
	if stop := c.collTimer("gather"); stop != nil {
		defer stop()
	}
	if err := c.enterCollective(); err != nil {
		return nil, err
	}
	if c.rank != root {
		if err := c.send(root, tagGather, payload); err != nil {
			return nil, err
		}
		return nil, nil
	}
	// Receive exactly one message per source: a wildcard here could steal a
	// fast rank's contribution to the *next* Gather while a slow rank's
	// contribution to this one is still in flight.
	out := make([]any, c.world.size)
	out[root] = payload
	for src := 0; src < c.world.size; src++ {
		if src == root {
			continue
		}
		msg, err := c.recv(src, tagGather)
		if err != nil {
			return nil, err
		}
		out[src] = msg.Payload
	}
	return out, nil
}

// Allgather collects every rank's payload on all ranks (Gather + Bcast).
func (c *Comm) Allgather(payload any) ([]any, error) {
	gathered, err := c.Gather(0, payload)
	if err != nil {
		return nil, err
	}
	out, err := c.Bcast(0, gathered)
	if err != nil {
		return nil, err
	}
	return out.([]any), nil
}

// Scatter distributes root's per-rank payloads; rank i receives
// payloads[i]. Non-root ranks pass nil.
func (c *Comm) Scatter(root int, payloads []any) (any, error) {
	if err := c.checkRank(root); err != nil {
		return nil, err
	}
	if stop := c.collTimer("scatter"); stop != nil {
		defer stop()
	}
	if err := c.enterCollective(); err != nil {
		return nil, err
	}
	if c.rank == root {
		if len(payloads) != c.world.size {
			return nil, fmt.Errorf("mpi: Scatter needs %d payloads, got %d", c.world.size, len(payloads))
		}
		for dst := 0; dst < c.world.size; dst++ {
			if dst == root {
				continue
			}
			if err := c.send(dst, tagScatter, payloads[dst]); err != nil {
				return nil, err
			}
		}
		return payloads[root], nil
	}
	msg, err := c.recv(root, tagScatter)
	if err != nil {
		return nil, err
	}
	return msg.Payload, nil
}

// Barrier blocks until every rank has entered it: an up-sweep to rank 0
// followed by a broadcast release (dissemination would be fewer rounds; the
// tree matches the Blue Gene collective network the paper describes).
func (c *Comm) Barrier() error {
	if stop := c.collTimer("barrier"); stop != nil {
		defer stop()
	}
	if err := c.enterCollective(); err != nil {
		return err
	}
	size := c.world.size
	vrank := c.rank
	// Up-sweep: each node waits for its binomial-tree children then signals
	// its parent.
	for mask := 1; mask < size; mask <<= 1 {
		if vrank&mask != 0 {
			if err := c.send(vrank&^mask, tagBarrierUp, nil); err != nil {
				return err
			}
			break
		}
		peer := vrank | mask
		if peer < size {
			if _, err := c.recv(peer, tagBarrierUp); err != nil {
				return err
			}
		}
	}
	// Down-sweep release along the same binomial tree.
	for mask := 1; mask < size; mask <<= 1 {
		if vrank < mask {
			child := vrank + mask
			if child < size {
				if err := c.send(child, tagBarrierDown, nil); err != nil {
					return err
				}
			}
		} else if vrank < mask<<1 {
			if _, err := c.recv(vrank-mask, tagBarrierDown); err != nil {
				return err
			}
		}
	}
	return nil
}

// NaiveBcast is the ablation comparator for Bcast: root sends size-1
// individual messages. Same result, O(P) serial sends instead of O(log P)
// rounds; the ablation bench quantifies the difference the collective tree
// makes.
func (c *Comm) NaiveBcast(root int, payload any) (any, error) {
	if err := c.checkRank(root); err != nil {
		return nil, err
	}
	if stop := c.collTimer("naive_bcast"); stop != nil {
		defer stop()
	}
	if err := c.enterCollective(); err != nil {
		return nil, err
	}
	if c.rank == root {
		for dst := 0; dst < c.world.size; dst++ {
			if dst == root {
				continue
			}
			if err := c.send(dst, tagBcast, payload); err != nil {
				return nil, err
			}
		}
		return payload, nil
	}
	msg, err := c.recv(root, tagBcast)
	if err != nil {
		return nil, err
	}
	return msg.Payload, nil
}
