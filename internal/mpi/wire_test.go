package mpi

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestWireFrameRoundTrip(t *testing.T) {
	frames := []*frame{
		{Kind: frameData, Seq: 1, Src: 2, Dst: 0, Tag: 7, World: "", Payload: []byte("hello")},
		{Kind: frameData, Seq: 42, Src: 0, Dst: 3, Tag: 1 << 30, World: "[0 1 3]", Payload: nil},
		{Kind: frameBeat, Src: 1},
		{Kind: frameGoodbye, Seq: 9, Src: 3, Payload: []byte{1, 2, 3}},
		{Kind: frameAgree, Seq: 5, Src: 2, Tag: 0},
		{Kind: frameAgreeResult, Seq: 6, Src: 0, Dst: 2, Tag: 1, Payload: []byte("x")},
		{Kind: frameAck, Seq: 1234567},
		{Kind: frameHello, Src: 1, Payload: []byte("id")},
		{Kind: frameWelcome, Src: 2},
	}
	for _, f := range frames {
		b, err := encodeFrame(f)
		if err != nil {
			t.Fatalf("encode %v: %v", f.Kind, err)
		}
		got, err := decodeFrameBytes(b)
		if err != nil {
			t.Fatalf("decode %v: %v", f.Kind, err)
		}
		if got.Kind != f.Kind || got.Seq != f.Seq || got.Src != f.Src ||
			got.Dst != f.Dst || got.Tag != f.Tag || got.World != f.World ||
			!bytes.Equal(got.Payload, f.Payload) {
			t.Fatalf("round trip %v: got %+v want %+v", f.Kind, got, f)
		}
	}
}

func TestWireFrameStreamed(t *testing.T) {
	var buf bytes.Buffer
	want := []*frame{
		{Kind: frameData, Seq: 1, Src: 0, Dst: 1, Tag: 3, Payload: []byte("a")},
		{Kind: frameAck, Seq: 1},
		{Kind: frameData, Seq: 2, Src: 0, Dst: 1, Tag: 3, World: "[0 1]", Payload: []byte("bb")},
	}
	for _, f := range want {
		b, err := encodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
	}
	for i, f := range want {
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Kind != f.Kind || got.Seq != f.Seq || !bytes.Equal(got.Payload, f.Payload) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, f)
		}
	}
	if _, err := readFrame(&buf); !errors.Is(err, io.EOF) {
		t.Fatalf("after stream end: %v, want EOF", err)
	}
}

func TestWireFrameEncodeRejectsInvalid(t *testing.T) {
	if _, err := encodeFrame(&frame{Kind: 0}); err == nil {
		t.Fatal("kind 0 encoded")
	}
	if _, err := encodeFrame(&frame{Kind: frameKindEnd}); err == nil {
		t.Fatal("out-of-range kind encoded")
	}
	if _, err := encodeFrame(&frame{Kind: frameData, World: strings.Repeat("x", maxWorldKeyLen+1)}); err == nil {
		t.Fatal("oversized world key encoded")
	}
	if _, err := encodeFrame(&frame{Kind: frameData, Payload: make([]byte, maxFramePayload+1)}); err == nil {
		t.Fatal("oversized payload encoded")
	}
}

func TestWireFrameDecodeRejectsCorruption(t *testing.T) {
	good, err := encodeFrame(&frame{Kind: frameData, Seq: 1, Src: 0, Dst: 1, Tag: 2, Payload: []byte("payload")})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mut func(b []byte) []byte) {
		b := mut(append([]byte(nil), good...))
		if _, err := decodeFrameBytes(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	corrupt("bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b })
	corrupt("bad version", func(b []byte) []byte { b[5] = 99; return b })
	corrupt("bad kind", func(b []byte) []byte { b[6] = 200; return b })
	corrupt("truncated header", func(b []byte) []byte { return b[:frameHeaderLen-1] })
	corrupt("truncated body", func(b []byte) []byte { return b[:len(b)-3] })
	corrupt("trailing garbage", func(b []byte) []byte { return append(b, 0xAB) })
	corrupt("oversized world len", func(b []byte) []byte {
		binary.BigEndian.PutUint16(b[32:], maxWorldKeyLen+1)
		return b
	})
	corrupt("oversized payload len", func(b []byte) []byte {
		binary.BigEndian.PutUint32(b[34:], maxFramePayload+1)
		return b
	})
	corrupt("payload len beyond body", func(b []byte) []byte {
		binary.BigEndian.PutUint32(b[34:], 1<<20)
		return b
	})
}

// FuzzWireFrame hammers the frame decoder with arbitrary bytes: it must
// return an error or a frame that re-encodes to the identical bytes —
// never panic, and never allocate beyond the declared length limits (the
// bounds checks run before any allocation).
func FuzzWireFrame(f *testing.F) {
	seed, _ := encodeFrame(&frame{Kind: frameData, Seq: 3, Src: 1, Dst: 0, Tag: 5, World: "[0 1]", Payload: []byte("p")})
	f.Add(seed)
	f.Add(seed[:frameHeaderLen])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, frameHeaderLen))
	big := append([]byte(nil), seed...)
	binary.BigEndian.PutUint32(big[34:], 1<<31)
	f.Add(big)
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := decodeFrameBytes(data)
		if err != nil {
			return
		}
		re, err := encodeFrame(fr)
		if err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", re, data)
		}
	})
}

func TestWirePayloadRoundTrip(t *testing.T) {
	for _, v := range []any{
		int(7), float64(3.5), "s", []float64{1, 2}, []int{3, 4}, [2]int{5, 6},
		true, []byte{9}, []any{int(1), "two"},
		helloMsg{Rank: 1, Size: 4, Job: "j"},
		goodbyeMsg{OK: false, Err: "boom", Cascade: true},
		agreeResultMsg{Round: 2, Survivors: []int{0, 2}},
	} {
		b, err := encodePayload(v)
		if err != nil {
			t.Fatalf("encode %T: %v", v, err)
		}
		got, err := decodePayload(b)
		if err != nil {
			t.Fatalf("decode %T: %v", v, err)
		}
		switch want := v.(type) {
		case []float64:
			g := got.([]float64)
			for i := range want {
				if g[i] != want[i] {
					t.Fatalf("%T: got %v want %v", v, got, v)
				}
			}
		case []int:
			g := got.([]int)
			for i := range want {
				if g[i] != want[i] {
					t.Fatalf("%T: got %v want %v", v, got, v)
				}
			}
		case []byte:
			if !bytes.Equal(got.([]byte), want) {
				t.Fatalf("%T: got %v want %v", v, got, v)
			}
		case []any:
			g := got.([]any)
			for i := range want {
				if g[i] != want[i] {
					t.Fatalf("%T: got %v want %v", v, got, v)
				}
			}
		case agreeResultMsg:
			g := got.(agreeResultMsg)
			if g.Round != want.Round || len(g.Survivors) != len(want.Survivors) {
				t.Fatalf("%T: got %v want %v", v, got, v)
			}
			for i := range want.Survivors {
				if g.Survivors[i] != want.Survivors[i] {
					t.Fatalf("%T: got %v want %v", v, got, v)
				}
			}
		default:
			if got != v {
				t.Fatalf("%T: got %v want %v", v, got, v)
			}
		}
	}
	// Nil payloads travel as empty bodies.
	b, err := encodePayload(nil)
	if err != nil || b != nil {
		t.Fatalf("nil payload: %v %v", b, err)
	}
	if got, err := decodePayload(nil); err != nil || got != nil {
		t.Fatalf("nil body: %v %v", got, err)
	}
	// Garbage bodies error rather than panic.
	if _, err := decodePayload([]byte{0xde, 0xad, 0xbe, 0xef}); err == nil {
		t.Fatal("garbage payload decoded")
	}
}
