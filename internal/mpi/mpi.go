// Package mpi is a message-passing runtime with MPI-like semantics whose
// ranks are goroutines. It is the substrate on which the parallel
// evolutionary-game engine runs, standing in for the C/MPI layer the paper
// used on Blue Gene/L and /P.
//
// Semantics follow MPI where it matters for the algorithm:
//
//   - Send is buffered (never blocks); Recv blocks until a matching message
//     (by source and tag, with wildcards) arrives. Messages from the same
//     (source, tag) pair are non-overtaking.
//   - Isend/Irecv return Requests completed by Wait, modelling the paper's
//     non-blocking point-to-point fitness returns over the torus.
//   - Bcast, Reduce, Allreduce, Gather, Allgather, and Barrier are
//     collectives implemented over binomial trees of point-to-point
//     messages, modelling the Blue Gene collective network the paper uses
//     for pair-selection announcements and global strategy updates.
//
// The runtime counts messages and bytes per rank; the perfmodel package uses
// these counts to project communication cost onto the Blue Gene machine
// models.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// internalTagBase marks tags reserved for collectives; user tags must be
// non-negative and below this value.
const internalTagBase = 1 << 30

// ErrAborted is returned by communication calls after any rank in the world
// has failed, so surviving ranks unwind instead of deadlocking.
var ErrAborted = errors.New("mpi: world aborted")

// Message is a received envelope.
type Message struct {
	Source  int
	Tag     int
	Payload any
}

// envelope is the in-flight form of a message.
type envelope struct {
	source  int
	tag     int
	payload any
}

// inbox is one rank's mailbox: an unbounded matching queue.
type inbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []envelope
	aborted bool
}

func newInbox() *inbox {
	ib := &inbox{}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

func (ib *inbox) put(e envelope) {
	ib.mu.Lock()
	ib.queue = append(ib.queue, e)
	ib.mu.Unlock()
	ib.cond.Broadcast()
}

func (ib *inbox) abort() {
	ib.mu.Lock()
	ib.aborted = true
	ib.mu.Unlock()
	ib.cond.Broadcast()
}

// take removes and returns the first message matching (src, tag); it blocks
// until one arrives or the world aborts. The AnyTag wildcard matches user
// tags only — collective-protocol messages live in their own context, as in
// MPI, so a wildcard receive can never steal a broadcast or barrier packet.
func (ib *inbox) take(src, tag int) (envelope, error) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for {
		for i, e := range ib.queue {
			tagOK := e.tag == tag || (tag == AnyTag && e.tag < internalTagBase)
			if tagOK && (src == AnySource || e.source == src) {
				ib.queue = append(ib.queue[:i], ib.queue[i+1:]...)
				return e, nil
			}
		}
		if ib.aborted {
			return envelope{}, ErrAborted
		}
		ib.cond.Wait()
	}
}

// Stats aggregates communication counters across a world.
type Stats struct {
	PointToPointMessages uint64
	PointToPointBytes    uint64
	CollectiveOps        uint64
}

// World is a set of ranks that can communicate. Create with NewWorld, run an
// SPMD function on every rank with Run.
type World struct {
	size    int
	boxes   []*inbox
	p2pMsgs atomic.Uint64
	p2pByte atomic.Uint64
	collOps atomic.Uint64
	aborted atomic.Bool
}

// NewWorld creates a world with the given number of ranks. It panics if
// size < 1.
func NewWorld(size int) *World {
	if size < 1 {
		panic(fmt.Sprintf("mpi: world size %d < 1", size))
	}
	w := &World{size: size, boxes: make([]*inbox, size)}
	for i := range w.boxes {
		w.boxes[i] = newInbox()
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Stats returns the accumulated communication counters.
func (w *World) Stats() Stats {
	return Stats{
		PointToPointMessages: w.p2pMsgs.Load(),
		PointToPointBytes:    w.p2pByte.Load(),
		CollectiveOps:        w.collOps.Load(),
	}
}

// Run executes body once per rank, each on its own goroutine, and waits for
// all to finish. If any rank returns an error or panics, the world is
// aborted (pending and future Recvs fail with ErrAborted) and Run returns
// the first error encountered.
func (w *World) Run(body func(c *Comm) error) error {
	var wg sync.WaitGroup
	errs := make([]error, w.size)
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
					w.abort()
				}
			}()
			if err := body(&Comm{world: w, rank: rank}); err != nil {
				errs[rank] = fmt.Errorf("mpi: rank %d: %w", rank, err)
				w.abort()
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (w *World) abort() {
	if w.aborted.CompareAndSwap(false, true) {
		for _, ib := range w.boxes {
			ib.abort()
		}
	}
}

// Comm is one rank's communication handle.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this rank's index in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

func (c *Comm) checkRank(r int) error {
	if r < 0 || r >= c.world.size {
		return fmt.Errorf("mpi: rank %d out of range [0,%d)", r, c.world.size)
	}
	return nil
}

func (c *Comm) checkUserTag(tag int) error {
	if tag < 0 || tag >= internalTagBase {
		return fmt.Errorf("mpi: user tag %d out of range [0,%d)", tag, internalTagBase)
	}
	return nil
}

// send delivers without tag validation (collectives use internal tags).
func (c *Comm) send(dst, tag int, payload any) error {
	if err := c.checkRank(dst); err != nil {
		return err
	}
	if c.world.aborted.Load() {
		return ErrAborted
	}
	c.world.p2pMsgs.Add(1)
	c.world.p2pByte.Add(payloadBytes(payload))
	c.world.boxes[dst].put(envelope{source: c.rank, tag: tag, payload: payload})
	return nil
}

// Send delivers payload to dst with the given tag. It is buffered: it
// returns as soon as the message is enqueued. The payload is shared by
// reference; senders must not mutate it afterwards.
func (c *Comm) Send(dst, tag int, payload any) error {
	if err := c.checkUserTag(tag); err != nil {
		return err
	}
	return c.send(dst, tag, payload)
}

// Recv blocks until a message matching (src, tag) arrives. Use AnySource /
// AnyTag as wildcards.
func (c *Comm) Recv(src, tag int) (Message, error) {
	if src != AnySource {
		if err := c.checkRank(src); err != nil {
			return Message{}, err
		}
	}
	if tag != AnyTag {
		if err := c.checkUserTag(tag); err != nil {
			return Message{}, err
		}
	}
	return c.recv(src, tag)
}

func (c *Comm) recv(src, tag int) (Message, error) {
	e, err := c.world.boxes[c.rank].take(src, tag)
	if err != nil {
		return Message{}, err
	}
	return Message{Source: e.source, Tag: e.tag, Payload: e.payload}, nil
}

// Request is a pending non-blocking operation.
type Request struct {
	done chan struct{}
	msg  Message
	err  error
}

// Wait blocks until the operation completes and returns its result. For
// completed Isends the Message is zero-valued.
func (r *Request) Wait() (Message, error) {
	<-r.done
	return r.msg, r.err
}

// Isend starts a non-blocking send. With this runtime's buffered sends it
// completes immediately; the Request form is kept so the algorithm code
// reads like its MPI original.
func (c *Comm) Isend(dst, tag int, payload any) *Request {
	r := &Request{done: make(chan struct{})}
	r.err = c.Send(dst, tag, payload)
	close(r.done)
	return r
}

// Irecv starts a non-blocking receive completed by Wait.
func (c *Comm) Irecv(src, tag int) *Request {
	r := &Request{done: make(chan struct{})}
	go func() {
		r.msg, r.err = c.Recv(src, tag)
		close(r.done)
	}()
	return r
}

// payloadBytes estimates the wire size of a payload for the communication
// counters (and hence the perf model).
func payloadBytes(p any) uint64 {
	switch v := p.(type) {
	case nil:
		return 0
	case []byte:
		return uint64(len(v))
	case []uint64:
		return uint64(8 * len(v))
	case []float64:
		return uint64(8 * len(v))
	case []int:
		return uint64(8 * len(v))
	case []uint32:
		return uint64(4 * len(v))
	case string:
		return uint64(len(v))
	case float64, int, uint64, int64, uint32, int32:
		return 8
	case bool, uint8, int8:
		return 1
	case Sizer:
		return v.WireBytes()
	default:
		return 8
	}
}

// Sizer lets payload types report their modelled wire size to the
// communication counters.
type Sizer interface {
	WireBytes() uint64
}
