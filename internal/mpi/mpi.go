// Package mpi is a message-passing runtime with MPI-like semantics whose
// ranks are goroutines. It is the substrate on which the parallel
// evolutionary-game engine runs, standing in for the C/MPI layer the paper
// used on Blue Gene/L and /P.
//
// Semantics follow MPI where it matters for the algorithm:
//
//   - Send is buffered (never blocks); Recv blocks until a matching message
//     (by source and tag, with wildcards) arrives. Messages from the same
//     (source, tag) pair are non-overtaking.
//   - Isend/Irecv return Requests completed by Wait, modelling the paper's
//     non-blocking point-to-point fitness returns over the torus.
//   - Bcast, Reduce, Allreduce, Gather, Allgather, and Barrier are
//     collectives implemented over binomial trees of point-to-point
//     messages, modelling the Blue Gene collective network the paper uses
//     for pair-selection announcements and global strategy updates.
//
// The runtime counts messages and bytes per rank; the perfmodel package uses
// these counts to project communication cost onto the Blue Gene machine
// models.
package mpi

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// internalTagBase marks tags reserved for collectives; user tags must be
// non-negative and below this value.
const internalTagBase = 1 << 30

// ErrAborted is the sentinel that communication calls match after any rank
// in the world has failed, so surviving ranks unwind instead of
// deadlocking. The concrete error returned is a *RankFailedError naming the
// first failed rank; errors.Is(err, ErrAborted) remains true for it.
var ErrAborted = errors.New("mpi: world aborted")

// Message is a received envelope.
type Message struct {
	Source  int
	Tag     int
	Payload any
}

// envelope is the in-flight form of a message.
type envelope struct {
	source  int
	tag     int
	payload any
}

// inbox is one rank's mailbox: an unbounded matching queue.
type inbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []envelope
	// done, when non-nil, is the terminal error blocked takes return after
	// exhausting queued matches: the abort cause (who failed) or
	// ErrShutdown once every rank has left Run.
	done error
}

func newInbox() *inbox {
	ib := &inbox{}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

func (ib *inbox) put(e envelope) {
	ib.mu.Lock()
	ib.queue = append(ib.queue, e)
	ib.mu.Unlock()
	ib.cond.Broadcast()
}

// finish sets the terminal error for blocked takes; the first cause wins.
func (ib *inbox) finish(cause error) {
	ib.mu.Lock()
	if ib.done == nil {
		ib.done = cause
	}
	ib.mu.Unlock()
	ib.cond.Broadcast()
}

// take removes and returns the first message matching (src, tag); it blocks
// until one arrives, the optional timeout expires, the optional cancel flag
// is raised, or the world ends (abort or shutdown). The AnyTag wildcard
// matches user tags only — collective-protocol messages live in their own
// context, as in MPI, so a wildcard receive can never steal a broadcast or
// barrier packet.
func (ib *inbox) take(src, tag int, timeout time.Duration, cancelled *bool) (envelope, error) {
	var expired bool
	if timeout > 0 {
		t := time.AfterFunc(timeout, func() {
			ib.mu.Lock()
			expired = true
			ib.mu.Unlock()
			ib.cond.Broadcast()
		})
		defer t.Stop()
	}
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for {
		for i, e := range ib.queue {
			tagOK := e.tag == tag || (tag == AnyTag && e.tag < internalTagBase)
			if tagOK && (src == AnySource || e.source == src) {
				ib.queue = append(ib.queue[:i], ib.queue[i+1:]...)
				return e, nil
			}
		}
		if ib.done != nil {
			return envelope{}, ib.done
		}
		if expired {
			return envelope{}, ErrRecvTimeout
		}
		if cancelled != nil && *cancelled {
			return envelope{}, ErrRecvCancelled
		}
		ib.cond.Wait()
	}
}

// Stats aggregates communication counters across a world.
type Stats struct {
	PointToPointMessages uint64
	PointToPointBytes    uint64
	CollectiveOps        uint64
}

// World is a set of ranks that can communicate. Create with NewWorld, run an
// SPMD function on every rank with Run. Shrink derives sub-worlds from a
// survivor set after a failure; sub-worlds share the original (root) world's
// counters, fault plan, and failure bookkeeping, all indexed by original
// rank, so scripted faults and statistics stay meaningful across a shrink.
type World struct {
	size    int
	boxes   []*inbox
	p2pMsgs atomic.Uint64
	p2pByte atomic.Uint64
	collOps atomic.Uint64
	aborted atomic.Bool
	// cause is the abort cause (a *RankFailedError), stored once by the
	// CAS winner of abortWith.
	cause atomic.Value
	// sendCounts / collCounts are the per-rank operation counters fault
	// plans key off; deterministic for a deterministic SPMD program.
	// Indexed by original rank; sub-worlds route here, so "rank 2's 500th
	// send" keeps meaning the same event before and after a shrink.
	sendCounts []atomic.Uint64
	collCounts []atomic.Uint64
	// plan, when non-nil, scripts deterministic fault injection.
	plan *FaultPlan
	// recvTimeout, when non-zero, bounds every blocking receive.
	recvTimeout time.Duration
	// commMetrics, when non-nil, is the per-original-rank communication
	// accounting EnableMetrics armed (see metrics.go). Root world only;
	// sub-worlds route through rootW.
	commMetrics []*RankMetrics

	// tr delivers envelopes (the transport seam; see transport.go). The
	// in-process mailbox transport on ordinary worlds; a NetTransport when
	// the world's ranks live in separate processes. Root world only.
	tr Transport
	// self is the original rank this process hosts on a networked world,
	// -1 on in-process worlds (every rank is local). Root world only.
	self int
	// shut latches once shutdown has released pending receives: a Shrink
	// racing past the end of Run must finish its new inboxes immediately
	// rather than leave receivers hanging until their deadline.
	shut atomic.Bool
	// pendingWire buffers wire envelopes addressed to sub-worlds this
	// process has not built with Shrink yet (see net.go). Guarded by wmu.
	pendingWire map[string][]pendingEnv

	// root is the original world this sub-world was shrunk from (nil on the
	// root itself); orig maps this world's dense ranks to original ranks
	// (nil on the root: the identity).
	root *World
	orig []int
	// revoked marks a world unusable after a member rank was declared
	// failed (ULFM's revocation): every pending and future operation on it
	// fails with an error matching ErrRevoked and carrying the
	// *RankFailedError cause.
	revoked     atomic.Bool
	revokeCause atomic.Value

	// wmu guards the registry of this root world and all its sub-worlds
	// (abort, shutdown, and revocation fan out over it).
	wmu    sync.Mutex
	worlds []*World
	subs   map[string]*World

	// Eviction-mode state; see evict.go. Zero unless EnableEviction.
	evict       bool
	hbEvery     time.Duration
	hbMisses    int
	hbStart     time.Time
	emu         sync.Mutex
	econd       *sync.Cond
	lastBeat    []atomic.Int64
	done        []bool
	finishedOK  []bool
	exitErr     []error
	exited      []chan struct{}
	failedP     []atomic.Pointer[RankFailedError]
	evictions   []Eviction
	agreeSeq    []int
	agreeRounds map[int]*agreeRound
	// Networked-world agreement state (see evict.go): the coordinator's
	// round registry at rank 0, resolved results at the other ranks.
	// Guarded by emu.
	netRounds  map[int]*netAgreeRound
	netResults map[int][]int
}

// NewWorld creates a world with the given number of ranks. It panics if
// size < 1.
func NewWorld(size int) *World {
	if size < 1 {
		panic(fmt.Sprintf("mpi: world size %d < 1", size))
	}
	w := &World{
		size:       size,
		boxes:      make([]*inbox, size),
		sendCounts: make([]atomic.Uint64, size),
		collCounts: make([]atomic.Uint64, size),
		subs:       make(map[string]*World),
		tr:         procTransport{},
		self:       -1,
	}
	w.worlds = []*World{w}
	for i := range w.boxes {
		w.boxes[i] = newInbox()
	}
	return w
}

// rootW returns the original world this one descends from (itself when it is
// the root).
func (w *World) rootW() *World {
	if w.root != nil {
		return w.root
	}
	return w
}

// origOf maps one of this world's dense ranks to its original rank.
func (w *World) origOf(rank int) int {
	if w.orig == nil {
		return rank
	}
	return w.orig[rank]
}

// contains reports whether the original rank is a member of this world.
func (w *World) contains(orig int) bool {
	if w.orig == nil {
		return orig >= 0 && orig < w.size
	}
	for _, r := range w.orig {
		if r == orig {
			return true
		}
	}
	return false
}

// allWorlds snapshots the root's registry: the root world plus every
// sub-world Shrink has created.
func (w *World) allWorlds() []*World {
	r := w.rootW()
	r.wmu.Lock()
	defer r.wmu.Unlock()
	return append([]*World(nil), r.worlds...)
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Stats returns the accumulated communication counters. Sub-worlds report
// the root's totals: traffic is accounted for the whole logical run.
func (w *World) Stats() Stats {
	r := w.rootW()
	return Stats{
		PointToPointMessages: r.p2pMsgs.Load(),
		PointToPointBytes:    r.p2pByte.Load(),
		CollectiveOps:        r.collOps.Load(),
	}
}

// Run executes body once per rank, each on its own goroutine, and waits for
// all to finish. If any rank returns an error or panics, the world is
// aborted: pending and future receives on surviving ranks fail with a
// *RankFailedError naming the first rank that died (which still matches
// ErrAborted under errors.Is). Run joins every rank's error with
// errors.Join, in rank order, so a cascading abort cannot mask the root
// cause. A rank whose own error is not itself an abort echo is wrapped in
// *RankFailedError; survivors unwinding on the abort are wrapped as plain
// cascade errors. After all ranks return, receives still pending (leaked
// Irecvs) are released with ErrShutdown.
func (w *World) Run(body func(c *Comm) error) error {
	if w.root != nil {
		panic("mpi: Run on a shrunk sub-world; run the root world")
	}
	if w.self >= 0 {
		panic("mpi: Run on a networked world; use RunLocal")
	}
	var wg sync.WaitGroup
	errs := make([]error, w.size)
	stopHB := w.startHeartbeat()
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			err := runBody(body, &Comm{world: w, rank: rank})
			if w.evict {
				// Eviction mode: a rank's death does not abort the world.
				// Record the exit; the heartbeat monitor (or an explicit
				// markFailed) declares failure, survivors Agree+Shrink.
				errs[rank] = err
				w.rankExited(rank, err)
				return
			}
			if err == nil {
				return
			}
			if errors.Is(err, ErrAborted) {
				// Cascade: this rank is unwinding because another died.
				errs[rank] = fmt.Errorf("mpi: rank %d: %w", rank, err)
				w.abortWith(&RankFailedError{Rank: rank, Err: err})
			} else {
				rf := &RankFailedError{Rank: rank, Err: err}
				errs[rank] = rf
				w.abortWith(rf)
			}
		}(r)
	}
	wg.Wait()
	if stopHB != nil {
		stopHB()
	}
	w.shutdown()
	if w.evict {
		return w.resolveEvicted(errs)
	}
	return errors.Join(errs...)
}

// runBody invokes the rank body, converting a panic into an error so
// eviction-mode accounting sees a uniform failure shape.
func runBody(body func(c *Comm) error, c *Comm) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	return body(c)
}

// abortWith marks the world failed; the first cause wins and is what every
// blocked receive returns. The cause is published before the aborted flag so
// a sender observing aborted==true always finds the root-cause
// *RankFailedError, never the bare ErrAborted sentinel.
func (w *World) abortWith(cause *RankFailedError) {
	w.cause.CompareAndSwap(nil, cause)
	if w.aborted.CompareAndSwap(false, true) {
		c := w.abortCause()
		for _, sub := range w.allWorlds() {
			for _, ib := range sub.boxes {
				ib.finish(c)
			}
		}
	}
}

// abortCause returns the recorded failure, or ErrAborted during the brief
// window before the CAS winner stores it.
func (w *World) abortCause() error {
	if c, ok := w.rootW().cause.Load().(error); ok {
		return c
	}
	return ErrAborted
}

// shutdown releases receives still pending after every rank has returned —
// on the root and on every sub-world Shrink created: no matching send can
// ever arrive, so letting them block would leak their goroutines for the
// process lifetime.
func (w *World) shutdown() {
	w.shut.Store(true)
	for _, sub := range w.allWorlds() {
		for _, ib := range sub.boxes {
			ib.finish(ErrShutdown)
		}
	}
}

// Comm is one rank's communication handle.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this rank's index in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

func (c *Comm) checkRank(r int) error {
	if r < 0 || r >= c.world.size {
		return fmt.Errorf("mpi: rank %d out of range [0,%d)", r, c.world.size)
	}
	return nil
}

func (c *Comm) checkUserTag(tag int) error {
	if tag < 0 || tag >= internalTagBase {
		return fmt.Errorf("mpi: user tag %d out of range [0,%d)", tag, internalTagBase)
	}
	return nil
}

// send delivers without tag validation (collectives use internal tags).
// Operation counters, the fault plan, and traffic totals live on the root
// world and are indexed by original rank, so a scripted "rank 2, send 500"
// stays the same event after a Shrink renumbers the survivors.
func (c *Comm) send(dst, tag int, payload any) error {
	if err := c.checkRank(dst); err != nil {
		return err
	}
	root := c.world.rootW()
	src := c.world.origOf(c.rank)
	if root.aborted.Load() {
		return c.world.abortCause()
	}
	// The fence outranks the revocation check so a send touching the dead
	// rank reports the specific poisoned endpoint, not just the revocation.
	if root.evict {
		if err := root.sendFence(src, c.world.origOf(dst)); err != nil {
			return err
		}
	}
	if err := c.world.revokeErr(); err != nil {
		return err
	}
	n := root.sendCounts[src].Add(1)
	if p := root.plan; p != nil {
		v := p.onSend(src, n)
		if v.kill {
			return fmt.Errorf("mpi: rank %d killed at send %d: %w", src, n, ErrInjectedFault)
		}
		if v.delay > 0 {
			time.Sleep(v.delay)
			if root.aborted.Load() {
				return c.world.abortCause()
			}
			if err := c.world.revokeErr(); err != nil {
				return err
			}
		}
		if v.drop {
			// The sender transmitted (counters reflect it); the network
			// lost the packet.
			root.accountSend(src, tag, payload)
			return nil
		}
	}
	root.accountSend(src, tag, payload)
	return root.tr.Deliver(c.world, c.rank, dst, tag, payload)
}

// Send delivers payload to dst with the given tag. It is buffered: it
// returns as soon as the message is enqueued. The payload is shared by
// reference; senders must not mutate it afterwards.
func (c *Comm) Send(dst, tag int, payload any) error {
	if err := c.checkUserTag(tag); err != nil {
		return err
	}
	return c.send(dst, tag, payload)
}

// Recv blocks until a message matching (src, tag) arrives. Use AnySource /
// AnyTag as wildcards. When the world has a default receive deadline
// (World.SetRecvTimeout), it applies.
func (c *Comm) Recv(src, tag int) (Message, error) {
	return c.RecvTimeout(src, tag, 0)
}

// RecvTimeout is Recv with an explicit deadline: if no matching message
// arrives within timeout it returns ErrRecvTimeout. A zero timeout falls
// back to the world's default deadline (unbounded when that is unset too).
func (c *Comm) RecvTimeout(src, tag int, timeout time.Duration) (Message, error) {
	if src != AnySource {
		if err := c.checkRank(src); err != nil {
			return Message{}, err
		}
	}
	if tag != AnyTag {
		if err := c.checkUserTag(tag); err != nil {
			return Message{}, err
		}
	}
	return c.recvDeadline(src, tag, timeout)
}

func (c *Comm) recv(src, tag int) (Message, error) {
	return c.recvDeadline(src, tag, 0)
}

func (c *Comm) recvDeadline(src, tag int, timeout time.Duration) (Message, error) {
	if timeout <= 0 {
		timeout = c.world.recvTimeout
	}
	e, err := c.world.boxes[c.rank].take(src, tag, timeout, nil)
	if err != nil {
		return Message{}, err
	}
	c.accountRecv(e)
	return Message{Source: e.source, Tag: e.tag, Payload: e.payload}, nil
}

// Request is a pending non-blocking operation.
type Request struct {
	done   chan struct{}
	msg    Message
	err    error
	cancel func()
}

// Wait blocks until the operation completes and returns its result. For
// completed Isends the Message is zero-valued.
func (r *Request) Wait() (Message, error) {
	<-r.done
	return r.msg, r.err
}

// Cancel aborts a pending Irecv: its goroutine stops waiting and Wait
// returns ErrRecvCancelled. Calling Cancel on a completed request, a
// request whose message already matched, or an Isend request is a no-op.
// Cancel is safe to call from any goroutine, any number of times.
func (r *Request) Cancel() {
	if r.cancel != nil {
		r.cancel()
	}
}

// Isend starts a non-blocking send. With this runtime's buffered sends it
// completes immediately; the Request form is kept so the algorithm code
// reads like its MPI original.
func (c *Comm) Isend(dst, tag int, payload any) *Request {
	r := &Request{done: make(chan struct{})}
	r.err = c.Send(dst, tag, payload)
	close(r.done)
	return r
}

// Irecv starts a non-blocking receive completed by Wait and abandoned by
// Cancel. An Irecv that never matches is also released when the world
// aborts or shuts down, so it cannot leak its goroutine past Run.
func (c *Comm) Irecv(src, tag int) *Request {
	r := &Request{done: make(chan struct{})}
	if src != AnySource {
		if err := c.checkRank(src); err != nil {
			r.err = err
			close(r.done)
			return r
		}
	}
	if tag != AnyTag {
		if err := c.checkUserTag(tag); err != nil {
			r.err = err
			close(r.done)
			return r
		}
	}
	// A request created on an already-revoked communicator fails fast with
	// the revocation cause rather than waiting out the receive deadline: no
	// matching send can ever complete on a revoked comm.
	if err := c.world.revokeErr(); err != nil {
		r.err = err
		close(r.done)
		return r
	}
	ib := c.world.boxes[c.rank]
	cancelled := new(bool)
	r.cancel = func() {
		ib.mu.Lock()
		*cancelled = true
		ib.mu.Unlock()
		ib.cond.Broadcast()
	}
	timeout := c.world.recvTimeout
	go func() {
		e, err := ib.take(src, tag, timeout, cancelled)
		if err != nil {
			r.err = err
		} else {
			c.accountRecv(e)
			r.msg = Message{Source: e.source, Tag: e.tag, Payload: e.payload}
		}
		close(r.done)
	}()
	return r
}

// payloadBytes estimates the wire size of a payload for the communication
// counters (and hence the perf model).
func payloadBytes(p any) uint64 {
	switch v := p.(type) {
	case nil:
		return 0
	case []byte:
		return uint64(len(v))
	case []uint64:
		return uint64(8 * len(v))
	case []float64:
		return uint64(8 * len(v))
	case []int:
		return uint64(8 * len(v))
	case []uint32:
		return uint64(4 * len(v))
	case []any:
		// Aggregate payloads (Gather results fed back through Bcast in
		// Allgather) cost the sum of their elements on the wire.
		var total uint64
		for _, e := range v {
			total += payloadBytes(e)
		}
		return total
	case string:
		return uint64(len(v))
	case float64, int, uint64, int64, uint32, int32:
		return 8
	case bool, uint8, int8:
		return 1
	case [2]int:
		return 16
	case Sizer:
		return v.WireBytes()
	default:
		unknownPayload(p)
		return 8
	}
}

// unknownPayloadSeen dedupes unknown-payload diagnostics by concrete type.
var unknownPayloadSeen sync.Map

// unknownPayload flags a payload type the wire-size model does not know:
// silently counting it as 8 bytes corrupts the communication counters the
// perf model projects from. In regular builds it logs once per type; under
// the mpistrict build tag (the strict test configuration) it panics so the
// gap cannot ship.
func unknownPayload(p any) {
	name := fmt.Sprintf("%T", p)
	if _, seen := unknownPayloadSeen.LoadOrStore(name, struct{}{}); seen {
		return
	}
	msg := fmt.Sprintf("mpi: payload type %s has no modelled wire size (counting 8 bytes); implement mpi.Sizer", name)
	if strictPayloadSizes {
		panic(msg)
	}
	log.Print(msg)
}

// Sizer lets payload types report their modelled wire size to the
// communication counters.
type Sizer interface {
	WireBytes() uint64
}
