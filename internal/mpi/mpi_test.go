package mpi

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestWorldSize(t *testing.T) {
	if NewWorld(4).Size() != 4 {
		t.Fatal("size mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewWorld(0) did not panic")
		}
	}()
	NewWorld(0)
}

func TestRunAllRanksExecute(t *testing.T) {
	var count atomic.Int64
	w := NewWorld(8)
	err := w.Run(func(c *Comm) error {
		count.Add(1)
		if c.Size() != 8 {
			return fmt.Errorf("size %d", c.Size())
		}
		if c.Rank() < 0 || c.Rank() >= 8 {
			return fmt.Errorf("rank %d", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 8 {
		t.Fatalf("%d ranks ran", count.Load())
	}
}

func TestSendRecvBasic(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, 42.0)
		}
		msg, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if msg.Source != 0 || msg.Tag != 7 || msg.Payload.(float64) != 42.0 {
			return fmt.Errorf("bad message %+v", msg)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvWildcards(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(c *Comm) error {
		switch c.Rank() {
		case 0:
			got := map[int]bool{}
			for i := 0; i < 2; i++ {
				msg, err := c.Recv(AnySource, AnyTag)
				if err != nil {
					return err
				}
				got[msg.Source] = true
			}
			if !got[1] || !got[2] {
				return fmt.Errorf("sources seen: %v", got)
			}
			return nil
		default:
			return c.Send(0, c.Rank()*10, c.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonOvertakingSameSourceTag(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		const n = 100
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, 3, i); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			msg, err := c.Recv(0, 3)
			if err != nil {
				return err
			}
			if msg.Payload.(int) != i {
				return fmt.Errorf("message %d overtaken by %d", i, msg.Payload)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvByTagSelectsAcrossQueue(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, "first"); err != nil {
				return err
			}
			return c.Send(1, 2, "second")
		}
		// Receive tag 2 first even though tag 1 arrived earlier.
		msg, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		if msg.Payload.(string) != "second" {
			return fmt.Errorf("tag-2 recv got %v", msg.Payload)
		}
		msg, err = c.Recv(0, 1)
		if err != nil {
			return err
		}
		if msg.Payload.(string) != "first" {
			return fmt.Errorf("tag-1 recv got %v", msg.Payload)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWildcardDoesNotStealCollectiveTraffic(t *testing.T) {
	// A wildcard receive posted while a broadcast is in flight must match
	// only user messages; collective packets live in their own context.
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			// Rank 1 broadcasts; its tree packet to rank 0 arrives before
			// the user message. The wildcard must skip it.
			if err := c.Send(1, 9, "ignored"); err != nil {
				return err
			}
			msg, err := c.Recv(AnySource, AnyTag)
			if err != nil {
				return err
			}
			if msg.Tag != 5 || msg.Payload.(string) != "user" {
				return fmt.Errorf("wildcard matched %d/%v", msg.Tag, msg.Payload)
			}
			// Now join the broadcast; the packet must still be there.
			v, err := c.Bcast(1, nil)
			if err != nil {
				return err
			}
			if v.(int) != 77 {
				return fmt.Errorf("bcast got %v", v)
			}
			return nil
		}
		// Rank 1: wait for the go signal, start the bcast (enqueues the
		// tree packet at rank 0), then send the user message.
		if _, err := c.Recv(0, 9); err != nil {
			return err
		}
		if _, err := c.Bcast(1, 77); err != nil {
			return err
		}
		return c.Send(0, 5, "user")
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecv(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			req := c.Isend(1, 4, []float64{1, 2, 3})
			_, err := req.Wait()
			return err
		}
		req := c.Irecv(0, 4)
		msg, err := req.Wait()
		if err != nil {
			return err
		}
		v := msg.Payload.([]float64)
		if len(v) != 3 || v[2] != 3 {
			return fmt.Errorf("bad payload %v", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvInvalidArguments(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		if _, err := c.Recv(5, 1); err == nil {
			return errors.New("recv from rank 5 accepted")
		}
		if _, err := c.Recv(-2, 1); err == nil {
			return errors.New("recv from rank -2 accepted")
		}
		if _, err := c.Recv(1, -5); err == nil {
			return errors.New("recv with tag -5 accepted")
		}
		if _, err := c.Recv(1, internalTagBase+1); err == nil {
			return errors.New("recv with internal tag accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveInvalidRoot(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		if _, err := c.Bcast(9, nil); err == nil {
			return errors.New("bcast root 9 accepted")
		}
		if _, err := c.Reduce(-1, 1, OpSum); err == nil {
			return errors.New("reduce root -1 accepted")
		}
		if _, err := c.ReduceSlice(7, []float64{1}, OpSum); err == nil {
			return errors.New("reduce-slice root 7 accepted")
		}
		if _, err := c.Gather(5, nil); err == nil {
			return errors.New("gather root 5 accepted")
		}
		if _, err := c.Scatter(4, nil); err == nil {
			return errors.New("scatter root 4 accepted")
		}
		if _, err := c.NaiveBcast(4, nil); err == nil {
			return errors.New("naive bcast root 4 accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendInvalidRank(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(5, 1, nil); err == nil { //egdlint:allow mpisession deliberate orphan: out-of-range rank must be rejected, not delivered
				return errors.New("send to rank 5 accepted")
			}
			if err := c.Send(-1, 1, nil); err == nil { //egdlint:allow mpisession deliberate orphan: negative rank must be rejected, not delivered
				return errors.New("send to rank -1 accepted")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUserTagRangeEnforced(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		if err := c.Send(1, -5, nil); err == nil {
			return errors.New("negative tag accepted")
		}
		if err := c.Send(1, internalTagBase, nil); err == nil {
			return errors.New("internal tag accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRankErrorAbortsWorld(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 2 {
			return errors.New("boom")
		}
		// Other ranks block on a Recv that will never be satisfied; the
		// abort must release them instead of deadlocking the test.
		_, err := c.Recv(AnySource, 9)
		if !errors.Is(err, ErrAborted) {
			return fmt.Errorf("expected ErrAborted, got %v", err)
		}
		return nil
	})
	if err == nil || !contains(err.Error(), "boom") {
		t.Fatalf("Run error = %v, want boom", err)
	}
}

func TestRankPanicAbortsWorld(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			panic("kaboom")
		}
		_, err := c.Recv(AnySource, 1)
		if !errors.Is(err, ErrAborted) {
			return fmt.Errorf("want ErrAborted, got %v", err)
		}
		return nil
	})
	if err == nil || !contains(err.Error(), "kaboom") {
		t.Fatalf("Run error = %v", err)
	}
}

// Regression: a Request.Wait pending across a world abort must surface the
// root-cause *RankFailedError — who died and why — not a generic
// closed-inbox error. The supervisor's restart/degrade decision depends on
// errors.As recovering the rank.
func TestWaitAfterAbortReturnsRootCause(t *testing.T) {
	w := NewWorld(3)
	boom := errors.New("boom")
	err := w.Run(func(c *Comm) error {
		switch c.Rank() {
		case 1:
			return boom
		case 0:
			// Irecv from rank 2, which never sends: only the abort can
			// complete this request.
			req := c.Irecv(2, 5) //egdlint:allow mpisession deliberate orphan: only the abort may complete this receive
			_, werr := req.Wait()
			var rf *RankFailedError
			if !errors.As(werr, &rf) {
				return fmt.Errorf("Wait returned %v, want a *RankFailedError", werr)
			}
			if rf.Rank != 1 || !errors.Is(rf.Err, boom) {
				return fmt.Errorf("Wait blamed rank %d (%v), want rank 1 (boom)", rf.Rank, rf.Err)
			}
			if !errors.Is(werr, ErrAborted) {
				return fmt.Errorf("Wait error does not match ErrAborted: %v", werr)
			}
			return nil
		default:
			return nil
		}
	})
	if err == nil || !contains(err.Error(), "boom") {
		t.Fatalf("Run error = %v, want boom", err)
	}
}

// Regression for the abort-publication race: a sender observing the aborted
// flag must find the cause already stored — never the bare ErrAborted
// sentinel — because abortWith publishes the cause before the flag.
func TestSendAfterAbortReturnsRootCause(t *testing.T) {
	for i := 0; i < 50; i++ {
		w := NewWorld(2)
		boom := errors.New("boom")
		err := w.Run(func(c *Comm) error {
			if c.Rank() == 0 {
				return boom
			}
			for {
				err := c.Send(0, 3, 1.0)
				if err == nil {
					continue
				}
				var rf *RankFailedError
				if !errors.As(err, &rf) || rf.Rank != 0 {
					return fmt.Errorf("send after abort returned %v, want RankFailedError{Rank:0}", err)
				}
				return nil
			}
		})
		if contains(err.Error(), "send after abort") {
			t.Fatal(err)
		}
	}
}

func TestStatsCounters(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, []float64{1, 2, 3, 4})
		}
		_, err := c.Recv(0, 1)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.PointToPointMessages != 1 {
		t.Errorf("messages = %d, want 1", st.PointToPointMessages)
	}
	if st.PointToPointBytes != 32 {
		t.Errorf("bytes = %d, want 32", st.PointToPointBytes)
	}
}

func TestPayloadBytes(t *testing.T) {
	type payloadCase struct {
		p    any
		want uint64
	}
	cases := []payloadCase{
		{nil, 0},
		{[]byte{1, 2, 3}, 3},
		{[]uint64{1, 2}, 16},
		{[]float64{1}, 8},
		{[]int{1, 2, 3}, 24},
		{[]uint32{1}, 4},
		{"hello", 5},
		{3.14, 8},
		{int(7), 8},
		{true, 1},
		{[2]int{1, 2}, 16},
		{[]any{3.14, "ab", []byte{1, 2, 3}}, 13},
		{sizedPayload{}, 99},
	}
	if !strictPayloadSizes {
		// Unknown types fall back to 8 bytes with a log-once diagnostic;
		// under -tags mpistrict the same call panics instead, so the case
		// only runs in regular builds.
		cases = append(cases, payloadCase{struct{}{}, 8})
	}
	for _, c := range cases {
		if got := payloadBytes(c.p); got != c.want {
			t.Errorf("payloadBytes(%T) = %d, want %d", c.p, got, c.want)
		}
	}
}

type sizedPayload struct{}

func (sizedPayload) WireBytes() uint64 { return 99 }

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
