package mpi

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// This file is the runtime's per-rank communication accounting: which
// tags each rank sent and received (messages and bytes), how often each
// collective ran and how long it took, and the liveness traffic the
// eviction layer generates. It is the measurement substrate for the
// paper's compute-vs-communication analysis (Tables V-VI): the world's
// coarse Stats() totals say how much traffic a run generated, the
// per-rank metrics say who generated it, on which channel, and when.
//
// Accounting is off by default and enabled with World.EnableMetrics;
// disabled, every hot path pays a single nil check. Sub-worlds created
// by Shrink route to the root's accounting indexed by original rank, so
// a rank keeps its identity across an eviction, like the fault-plan
// counters do.

// RankMetrics is one original rank's communication accounting. All
// methods are safe for concurrent use; snapshots are plain values.
type RankMetrics struct {
	rank int

	mu   sync.Mutex // guards the tag/op maps (not the counters within)
	sent map[int]*tagTraffic
	recv map[int]*tagTraffic
	coll map[string]*collStats

	heartbeats metrics.Counter
}

// tagTraffic counts one (rank, direction, tag) channel.
type tagTraffic struct {
	msgs  metrics.Counter
	bytes metrics.Counter
}

// collStats counts one (rank, collective op) pair: invocations and
// cumulative wall time inside the op.
type collStats struct {
	calls metrics.Counter
	nanos atomic.Int64
}

func newRankMetrics(rank int) *RankMetrics {
	return &RankMetrics{
		rank: rank,
		sent: make(map[int]*tagTraffic),
		recv: make(map[int]*tagTraffic),
		coll: make(map[string]*collStats),
	}
}

func (m *RankMetrics) sentTag(tag int) *tagTraffic { return getTraffic(&m.mu, m.sent, tag) }
func (m *RankMetrics) recvTag(tag int) *tagTraffic { return getTraffic(&m.mu, m.recv, tag) }

func getTraffic(mu *sync.Mutex, byTag map[int]*tagTraffic, tag int) *tagTraffic {
	mu.Lock()
	defer mu.Unlock()
	t, ok := byTag[tag]
	if !ok {
		t = &tagTraffic{}
		byTag[tag] = t
	}
	return t
}

func (m *RankMetrics) addSent(tag int, bytes uint64) {
	t := m.sentTag(tag)
	t.msgs.Inc()
	t.bytes.Add(bytes)
}

func (m *RankMetrics) addRecv(tag int, bytes uint64) {
	t := m.recvTag(tag)
	t.msgs.Inc()
	t.bytes.Add(bytes)
}

func (m *RankMetrics) collOp(op string) *collStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	cs, ok := m.coll[op]
	if !ok {
		cs = &collStats{}
		m.coll[op] = cs
	}
	return cs
}

// TagTraffic is one tag's message and byte totals in one direction.
type TagTraffic struct {
	Tag   int    `json:"tag"`
	Msgs  uint64 `json:"msgs"`
	Bytes uint64 `json:"bytes"`
}

// CollectiveStat is one collective operation's invocation count and
// cumulative wall time on one rank. Nanos is wall-clock derived and
// varies between otherwise identical runs; Calls is deterministic.
type CollectiveStat struct {
	Op    string `json:"op"`
	Calls uint64 `json:"calls"`
	Nanos int64  `json:"nanos"`
}

// RankCommSnapshot is one rank's communication accounting at a point in
// time: a plain value, safe to serialise and compare. Everything but
// the collective Nanos fields is deterministic for a deterministic
// program.
type RankCommSnapshot struct {
	// Rank is the original (root-world) rank.
	Rank int `json:"rank"`
	// Totals across all tags.
	SentMsgs  uint64 `json:"sent_msgs"`
	SentBytes uint64 `json:"sent_bytes"`
	RecvMsgs  uint64 `json:"recv_msgs"`
	RecvBytes uint64 `json:"recv_bytes"`
	// Per-tag breakdowns, sorted by tag (user tags first, then the
	// collective-protocol tags; see TagLabel).
	SentByTag []TagTraffic `json:"sent_by_tag,omitempty"`
	RecvByTag []TagTraffic `json:"recv_by_tag,omitempty"`
	// Collectives, sorted by op name.
	Collectives []CollectiveStat `json:"collectives,omitempty"`
	// Heartbeats is how many liveness beats this rank's emitter recorded
	// (eviction mode only). Wall-clock driven, hence nondeterministic.
	Heartbeats uint64 `json:"heartbeats,omitempty"`
	// Evicted reports whether the failure detector declared this rank
	// dead during the run.
	Evicted bool `json:"evicted,omitempty"`
}

// Snapshot captures the rank's accounting. The evicted flag comes from
// the owning world's failure record.
func (m *RankMetrics) snapshot(evicted bool) RankCommSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := RankCommSnapshot{Rank: m.rank, Heartbeats: m.heartbeats.Load(), Evicted: evicted}
	s.SentByTag, s.SentMsgs, s.SentBytes = trafficSlice(m.sent)
	s.RecvByTag, s.RecvMsgs, s.RecvBytes = trafficSlice(m.recv)
	for op, cs := range m.coll {
		s.Collectives = append(s.Collectives, CollectiveStat{Op: op, Calls: cs.calls.Load(), Nanos: cs.nanos.Load()})
	}
	sort.Slice(s.Collectives, func(i, j int) bool { return s.Collectives[i].Op < s.Collectives[j].Op })
	return s
}

func trafficSlice(byTag map[int]*tagTraffic) (out []TagTraffic, msgs, bytes uint64) {
	for tag, t := range byTag {
		tt := TagTraffic{Tag: tag, Msgs: t.msgs.Load(), Bytes: t.bytes.Load()}
		msgs += tt.Msgs
		bytes += tt.Bytes
		out = append(out, tt)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tag < out[j].Tag })
	return out, msgs, bytes
}

// Snapshot returns the rank's current accounting as a plain value.
func (m *RankMetrics) Snapshot() RankCommSnapshot {
	return m.snapshot(false)
}

// TagLabel names a tag for human-readable and exported output: the
// collective-protocol tags get symbolic names, user tags their decimal
// value.
func TagLabel(tag int) string {
	switch tag {
	case tagBcast:
		return "coll_bcast"
	case tagReduce:
		return "coll_reduce"
	case tagGather:
		return "coll_gather"
	case tagBarrierUp:
		return "coll_barrier_up"
	case tagBarrierDown:
		return "coll_barrier_down"
	case tagScatter:
		return "coll_scatter"
	case AnyTag:
		return "any"
	}
	return strconv.Itoa(tag)
}

// EnableMetrics switches on per-rank communication accounting. Must be
// called on the root world before Run; it is idempotent. The disabled
// runtime pays one nil check per operation; enabled, each send/receive
// additionally costs a map lookup under a per-rank mutex and two atomic
// adds.
func (w *World) EnableMetrics() {
	if w.root != nil {
		panic("mpi: EnableMetrics on a shrunk sub-world; enable on the root")
	}
	if w.commMetrics != nil {
		return
	}
	cm := make([]*RankMetrics, w.size)
	for i := range cm {
		cm[i] = newRankMetrics(i)
	}
	w.commMetrics = cm
}

// MetricsEnabled reports whether EnableMetrics was called on this
// world's root.
func (w *World) MetricsEnabled() bool { return w.rootW().commMetrics != nil }

// Metrics returns this rank's communication accounting handle, nil
// unless the root world called EnableMetrics. The handle survives
// Shrink: it is indexed by original rank.
func (c *Comm) Metrics() *RankMetrics {
	cm := c.world.rootW().commMetrics
	if cm == nil {
		return nil
	}
	return cm[c.world.origOf(c.rank)]
}

// CommMetricsSnapshot captures every rank's communication accounting,
// ordered by original rank. Nil unless EnableMetrics was called.
func (w *World) CommMetricsSnapshot() []RankCommSnapshot {
	r := w.rootW()
	if r.commMetrics == nil {
		return nil
	}
	out := make([]RankCommSnapshot, r.size)
	for i, m := range r.commMetrics {
		evicted := r.evict && r.failedP[i].Load() != nil
		out[i] = m.snapshot(evicted)
	}
	return out
}

// accountSend books one delivered (or injected-drop) message on the
// root world's totals and, when enabled, the sender's per-tag metrics.
// src is an original rank; w must be the root.
func (w *World) accountSend(src, tag int, payload any) {
	nb := payloadBytes(payload)
	w.p2pMsgs.Add(1)
	w.p2pByte.Add(nb)
	if w.commMetrics != nil {
		w.commMetrics[src].addSent(tag, nb)
	}
}

// accountRecv books one received message on the receiver's per-tag
// metrics when enabled.
func (c *Comm) accountRecv(e envelope) {
	root := c.world.rootW()
	if root.commMetrics == nil {
		return
	}
	root.commMetrics[c.world.origOf(c.rank)].addRecv(e.tag, payloadBytes(e.payload))
}

// collTimer starts timing one collective invocation; the returned stop
// function books the elapsed wall time. Nil when metrics are disabled —
// callers guard the defer, keeping the disabled path allocation-free.
func (c *Comm) collTimer(op string) func() {
	root := c.world.rootW()
	if root.commMetrics == nil {
		return nil
	}
	cs := root.commMetrics[c.world.origOf(c.rank)].collOp(op)
	cs.calls.Inc()
	start := time.Now()
	return func() { cs.nanos.Add(time.Since(start).Nanoseconds()) }
}

// noteHeartbeat counts one liveness beat for the rank's metrics.
func (w *World) noteHeartbeat(rank int) {
	if w.commMetrics != nil {
		w.commMetrics[rank].heartbeats.Inc()
	}
}
