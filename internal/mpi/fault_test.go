package mpi

import (
	"errors"
	"testing"
	"time"
)

func TestKillAfterNthSendIsDeterministic(t *testing.T) {
	// Rank 0 dies at its 3rd send on every run: the receiver must see
	// exactly the first two payloads, then the abort naming rank 0.
	for trial := 0; trial < 5; trial++ {
		w := NewWorld(2)
		w.InstallFaultPlan(NewFaultPlan().Kill(0, 3))
		var got []int
		err := w.Run(func(c *Comm) error {
			if c.Rank() == 0 {
				for i := 1; i <= 10; i++ {
					if err := c.Send(1, 1, i); err != nil {
						return err
					}
				}
				return nil
			}
			for {
				msg, err := c.Recv(0, 1)
				if err != nil {
					return err
				}
				got = append(got, msg.Payload.(int))
			}
		})
		if !errors.Is(err, ErrInjectedFault) {
			t.Fatalf("trial %d: err = %v, want ErrInjectedFault", trial, err)
		}
		var rf *RankFailedError
		if !errors.As(err, &rf) || rf.Rank != 0 {
			t.Fatalf("trial %d: errors.As RankFailedError = %v (rank %v)", trial, rf, rf)
		}
		if len(got) != 2 || got[0] != 1 || got[1] != 2 {
			t.Fatalf("trial %d: receiver saw %v, want [1 2]", trial, got)
		}
	}
}

func TestKillFiresOnceAcrossWorlds(t *testing.T) {
	// A supervisor restarting with the same plan must not be re-killed:
	// one-shot faults stay consumed.
	plan := NewFaultPlan().Kill(0, 1)
	run := func() error {
		w := NewWorld(2)
		w.InstallFaultPlan(plan)
		return w.Run(func(c *Comm) error {
			if c.Rank() == 0 {
				return c.Send(1, 1, "hello")
			}
			_, err := c.Recv(0, 1)
			return err
		})
	}
	if err := run(); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("first run err = %v, want ErrInjectedFault", err)
	}
	if !plan.Faults()[0].Fired() {
		t.Fatal("fault not marked fired")
	}
	if err := run(); err != nil {
		t.Fatalf("second run err = %v, want nil (fault already consumed)", err)
	}
}

func TestDropSendsPreservesOrderOfSurvivors(t *testing.T) {
	// Drop sends 3 and 4; the survivors must arrive complete and in order
	// (non-overtaking is about delivery order, not delivery guarantee).
	w := NewWorld(2)
	w.InstallFaultPlan(NewFaultPlan().Drop(0, 3, 2))
	err := w.Run(func(c *Comm) error {
		const n = 10
		if c.Rank() == 0 {
			for i := 1; i <= n; i++ {
				if err := c.Send(1, 1, i); err != nil {
					return err
				}
			}
			return nil
		}
		want := []int{1, 2, 5, 6, 7, 8, 9, 10}
		for _, w := range want {
			msg, err := c.Recv(0, 1)
			if err != nil {
				return err
			}
			if msg.Payload.(int) != w {
				return errors.New("out-of-order or wrong survivor payload")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Dropped messages still count as transmitted: the sender paid for them.
	if st := w.Stats(); st.PointToPointMessages != 10 {
		t.Fatalf("messages = %d, want 10 (drops count as sent)", st.PointToPointMessages)
	}
}

func TestDelaySendsStillDeliver(t *testing.T) {
	w := NewWorld(2)
	w.InstallFaultPlan(NewFaultPlan().Delay(0, 1, 1, 20*time.Millisecond))
	start := time.Now()
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, 42)
		}
		msg, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if msg.Payload.(int) != 42 {
			return errors.New("wrong payload")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("delay fault did not stall the send")
	}
}

func TestRecvTimeoutExpires(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		_, err := c.RecvTimeout(1, 1, 20*time.Millisecond)
		if !errors.Is(err, ErrRecvTimeout) {
			return errors.New("deadline did not expire")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTimeoutDeliversBeforeDeadline(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, "on time")
		}
		msg, err := c.RecvTimeout(0, 1, 5*time.Second)
		if err != nil {
			return err
		}
		if msg.Payload.(string) != "on time" {
			return errors.New("wrong payload")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorldRecvTimeoutDetectsDroppedCollectivePacket(t *testing.T) {
	// Losing a collective-internal packet deadlocks the collective in real
	// MPI; with a world receive deadline the stalled rank detects it
	// instead. Rank 1's first send is its barrier up-sweep packet.
	w := NewWorld(2)
	w.InstallFaultPlan(NewFaultPlan().Drop(1, 1, 1))
	w.SetRecvTimeout(50 * time.Millisecond)
	err := w.Run(func(c *Comm) error {
		return c.Barrier()
	})
	if !errors.Is(err, ErrRecvTimeout) {
		t.Fatalf("err = %v, want ErrRecvTimeout", err)
	}
	// Both ranks end up stalled receivers: rank 0 waits for the dropped
	// up-sweep packet, and rank 1 waits for the down-sweep that can then
	// never come. Their deadlines are nearly simultaneous, so scheduling
	// decides which one trips first and is attributed; either is correct.
	var rf *RankFailedError
	if !errors.As(err, &rf) || (rf.Rank != 0 && rf.Rank != 1) {
		t.Fatalf("failed rank = %+v, want one of the stalled receivers (rank 0 or 1)", rf)
	}
}

func TestFailCollective(t *testing.T) {
	w := NewWorld(4)
	w.InstallFaultPlan(NewFaultPlan().FailCollective(2, 1))
	err := w.Run(func(c *Comm) error {
		return c.Barrier()
	})
	if !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("err = %v, want ErrInjectedFault", err)
	}
	if !errors.Is(err, ErrAborted) {
		t.Fatal("rank failure must still match ErrAborted")
	}
	var rf *RankFailedError
	if !errors.As(err, &rf) || rf.Rank != 2 {
		t.Fatalf("failed rank = %+v, want rank 2", rf)
	}
}

func TestRunJoinsAllRankErrors(t *testing.T) {
	// Rank 1 is the root cause; ranks 0 and 2 unwind on the abort. The
	// joined error must surface the root cause even though rank 0's
	// cascade error sorts first.
	w := NewWorld(3)
	rootCause := errors.New("root cause")
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			return rootCause
		}
		_, err := c.Recv(AnySource, 9)
		return err // cascade: aborted by rank 1
	})
	if !errors.Is(err, rootCause) {
		t.Fatalf("joined error lost the root cause: %v", err)
	}
	var rf *RankFailedError
	if !errors.As(err, &rf) || rf.Rank != 1 {
		t.Fatalf("failed rank = %+v, want rank 1", rf)
	}
	if !contains(err.Error(), "rank 0") || !contains(err.Error(), "rank 2") {
		t.Fatalf("joined error dropped survivor context: %v", err)
	}
}

func TestIrecvCancel(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		req := c.Irecv(1, 5)
		req.Cancel()
		req.Cancel() // idempotent
		_, err := req.Wait()
		if !errors.Is(err, ErrRecvCancelled) {
			return errors.New("cancelled Irecv did not report ErrRecvCancelled")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIrecvReleasedAtShutdown(t *testing.T) {
	// An Irecv abandoned without Wait or Cancel must not leak its goroutine
	// past Run: world teardown completes it with ErrShutdown.
	w := NewWorld(2)
	var req *Request
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			req = c.Irecv(1, 5) //egdlint:allow mpisession deliberate orphan: the test asserts world teardown completes it
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := req.Wait()
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrShutdown) {
			t.Fatalf("leaked Irecv completed with %v, want ErrShutdown", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("leaked Irecv still pending after Run returned")
	}
}

func TestCancelAfterMatchIsNoOp(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 5, "payload")
		}
		req := c.Irecv(0, 5)
		msg, err := req.Wait()
		if err != nil {
			return err
		}
		req.Cancel() // completed: must not disturb the result
		if msg.Payload.(string) != "payload" {
			return errors.New("wrong payload")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRankOperationCounters(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, 1); err != nil {
				return err
			}
			if err := c.Send(1, 1, 2); err != nil {
				return err
			}
		} else {
			for i := 0; i < 2; i++ {
				if _, err := c.Recv(0, 1); err != nil {
					return err
				}
			}
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0's sends: 2 user messages + barrier down-sweep packet.
	if n := w.RankSends(0); n != 3 {
		t.Errorf("rank 0 sends = %d, want 3", n)
	}
	// Rank 1's sends: barrier up-sweep packet only.
	if n := w.RankSends(1); n != 1 {
		t.Errorf("rank 1 sends = %d, want 1", n)
	}
	if n := w.RankCollectives(0); n != 1 {
		t.Errorf("rank 0 collectives = %d, want 1", n)
	}
	if n := w.RankCollectives(1); n != 1 {
		t.Errorf("rank 1 collectives = %d, want 1", n)
	}
}

func TestParseFault(t *testing.T) {
	// A plain struct mirror of Fault's parsed fields: Fault itself embeds an
	// atomic.Bool, so table entries must not copy it.
	type parsed struct {
		rank  int
		kind  FaultKind
		after uint64
		count uint64
		delay time.Duration
	}
	cases := []struct {
		spec string
		want parsed
		err  bool
	}{
		{spec: "rank=3,after=500", want: parsed{rank: 3, kind: KillAfterSends, after: 500}},
		{spec: "rank=0", want: parsed{rank: 0, kind: KillAfterSends}},
		{spec: " rank=1 , after=10 , kind=drop , count=3 ", want: parsed{rank: 1, kind: DropSends, after: 10, count: 3}},
		{spec: "rank=2,after=5,kind=delay,delay=50ms", want: parsed{rank: 2, kind: DelaySends, after: 5, delay: 50 * time.Millisecond}},
		{spec: "rank=0,after=2,kind=collective", want: parsed{rank: 0, kind: FailCollective, after: 2}},
		{spec: "", err: true},                    // missing rank
		{spec: "after=5", err: true},             // missing rank
		{spec: "rank=-1", err: true},             // negative rank
		{spec: "rank=x", err: true},              // non-numeric rank
		{spec: "rank=1,after=-3", err: true},     // negative after
		{spec: "rank=1,count=0", err: true},      // zero count
		{spec: "rank=1,kind=explode", err: true}, // unknown kind
		{spec: "rank=1,kind=delay", err: true},   // delay kind needs delay=
		{spec: "rank=1,delay=banana", err: true}, // bad duration
		{spec: "rank=1,bogus=7", err: true},      // unknown key
		{spec: "rank", err: true},                // not key=value
	}
	for _, c := range cases {
		f, err := ParseFault(c.spec)
		if c.err {
			if err == nil {
				t.Errorf("ParseFault(%q) accepted, want error", c.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseFault(%q) = %v", c.spec, err)
			continue
		}
		got := parsed{rank: f.Rank, kind: f.Kind, after: f.After, count: f.Count, delay: f.Delay}
		if got != c.want {
			t.Errorf("ParseFault(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
}

func TestFaultKindString(t *testing.T) {
	if KillAfterSends.String() != "kill" || DropSends.String() != "drop" ||
		DelaySends.String() != "delay" || FailCollective.String() != "collective" {
		t.Fatal("FaultKind strings drifted from the ParseFault vocabulary")
	}
	if FaultKind(99).String() == "" {
		t.Fatal("unknown FaultKind must still stringify")
	}
}

func TestFaultStressNoHang(t *testing.T) {
	// Kill rank 2 at varying points while three workers stream messages at
	// rank 0. Whatever the interleaving, the run must terminate (no
	// deadlock) with the injected fault as the root cause. Run under -race
	// this doubles as a concurrency check on the fault/abort machinery.
	const perWorker = 50
	for _, killAt := range []uint64{1, 7, 25, perWorker} {
		w := NewWorld(4)
		w.InstallFaultPlan(NewFaultPlan().Kill(2, killAt))
		err := w.Run(func(c *Comm) error {
			if c.Rank() == 0 {
				for i := 0; i < 3*perWorker; i++ {
					if _, err := c.Recv(AnySource, 1); err != nil {
						return err
					}
				}
				return nil
			}
			for i := 0; i < perWorker; i++ {
				if err := c.Send(0, 1, i); err != nil {
					return err
				}
			}
			return nil
		})
		if !errors.Is(err, ErrInjectedFault) {
			t.Fatalf("killAt=%d: err = %v, want ErrInjectedFault", killAt, err)
		}
		var rf *RankFailedError
		if !errors.As(err, &rf) || rf.Rank != 2 {
			t.Fatalf("killAt=%d: failed rank = %+v, want rank 2", killAt, rf)
		}
	}
}
