package mpi

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// Heartbeat timings for tests: generous enough that a live goroutine cannot
// plausibly miss the deadline under -race scheduling jitter.
const (
	testBeat   = 20 * time.Millisecond
	testMisses = 5
)

// evictRecover is the canonical survivor-side recovery step: on an error
// caused by a rank failure (a revoked communicator or a poisoned endpoint),
// agree on the survivors and shrink onto them. Returns the new comm, or
// false when the error is not a rank failure (the caller's own fault fires,
// say) or this rank is not itself a survivor.
func evictRecover(c *Comm, err error) (*Comm, bool) {
	var rf *RankFailedError
	if !errors.Is(err, ErrRevoked) && !errors.As(err, &rf) {
		return nil, false
	}
	surv, err := c.Agree()
	if err != nil {
		return nil, false
	}
	nc, err := c.Shrink(surv)
	if err != nil {
		return nil, false
	}
	return nc, true
}

// The tentpole scenario at the mpi layer: a scripted kill takes a worker
// down mid-run; the survivors detect it by heartbeat, agree on the
// surviving set, shrink, and finish the remaining generations on the
// sub-communicator. Run returns nil — the failure was recovered live — and
// the eviction record names the dead rank.
func TestEvictionKilledWorkerRecoversLive(t *testing.T) {
	const gens = 8
	w := NewWorld(4)
	w.InstallFaultPlan(NewFaultPlan().Kill(2, 3))
	w.EnableEviction(testBeat, testMisses)

	var mu sync.Mutex
	groups := make(map[int][]int) // orig rank -> final group seen

	err := w.Run(func(c *Comm) error {
		g := 0
		for g < gens {
			var err error
			if c.Rank() == 0 {
				for i := 1; i < c.Size(); i++ {
					if _, err = c.Recv(AnySource, 7); err != nil {
						break
					}
				}
				if err == nil {
					for i := 1; i < c.Size(); i++ {
						if err = c.Send(i, 8, g); err != nil {
							break
						}
					}
				}
			} else {
				if err = c.Send(0, 7, float64(c.OrigRank())); err == nil {
					var msg Message
					if msg, err = c.Recv(0, 8); err == nil {
						g = msg.Payload.(int)
					}
				}
			}
			if err == nil {
				g++
				continue
			}
			nc, ok := evictRecover(c, err)
			if !ok {
				return err
			}
			c = nc
			// Resynchronise the generation on the new communicator, the
			// way the sim's resume broadcast does.
			v, berr := c.Bcast(0, g)
			if berr != nil {
				return berr
			}
			g = v.(int)
		}
		mu.Lock()
		groups[c.OrigRank()] = c.Group()
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("Run returned %v, want nil (live recovery)", err)
	}
	evs := w.Evictions()
	if len(evs) != 1 || evs[0].Rank != 2 {
		t.Fatalf("evictions = %+v, want exactly rank 2", evs)
	}
	if !errors.Is(evs[0].Err, ErrInjectedFault) {
		t.Errorf("eviction cause lost the injected fault: %v", evs[0].Err)
	}
	want := []int{0, 1, 3}
	for _, orig := range want {
		got := groups[orig]
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("rank %d finished with group %v, want %v", orig, got, want)
		}
	}
	if len(groups) != 3 {
		t.Errorf("%d ranks finished, want 3", len(groups))
	}
}

// Agree with no failures completes immediately with the full rank set,
// identically on every rank.
func TestAgreeNoFailuresReturnsEveryone(t *testing.T) {
	w := NewWorld(5)
	w.EnableEviction(testBeat, testMisses)
	var mu sync.Mutex
	var results [][]int
	err := w.Run(func(c *Comm) error {
		surv, err := c.Agree()
		if err != nil {
			return err
		}
		mu.Lock()
		results = append(results, surv)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprint([]int{0, 1, 2, 3, 4})
	for _, r := range results {
		if fmt.Sprint(r) != want {
			t.Fatalf("agreement diverged: %v, want %v", r, want)
		}
	}
	if len(results) != 5 {
		t.Fatalf("%d ranks agreed, want 5", len(results))
	}
}

// After a rank is declared failed, a Send naming it as destination fails
// fast with the recorded *RankFailedError — the poisoned endpoint — instead
// of buffering into a mailbox nobody will ever drain.
func TestSendToEvictedRankFailsFast(t *testing.T) {
	w := NewWorld(3)
	w.EnableEviction(testBeat, testMisses)
	boom := errors.New("boom")
	err := w.Run(func(c *Comm) error {
		switch c.Rank() {
		case 1:
			return boom
		case 0:
			for len(w.Evictions()) == 0 {
				time.Sleep(time.Millisecond)
			}
			err := c.Send(1, 9, 1.0) //egdlint:allow mpisession deliberate orphan: the test asserts sends to an evicted rank fail
			var rf *RankFailedError
			if !errors.As(err, &rf) || rf.Rank != 1 {
				return fmt.Errorf("send to dead rank returned %v, want RankFailedError{Rank:1}", err)
			}
			if !errors.Is(err, ErrAborted) {
				return fmt.Errorf("poisoned send does not match ErrAborted: %v", err)
			}
			return nil
		default:
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if evs := w.Evictions(); len(evs) != 1 || evs[0].Rank != 1 || !errors.Is(evs[0].Err, boom) {
		t.Fatalf("evictions = %+v, want rank 1 with cause boom", evs)
	}
}

// Revocation must release a blocked Irecv: a survivor parked on a receive
// from the dead rank unwinds with an error matching ErrRevoked (and still
// matching ErrAborted for pre-eviction unwind code), with errors.As naming
// the dead rank.
func TestRevokeReleasesBlockedIrecv(t *testing.T) {
	w := NewWorld(3)
	w.EnableEviction(testBeat, testMisses)
	err := w.Run(func(c *Comm) error {
		switch c.Rank() {
		case 1:
			return errors.New("crash")
		case 0:
			req := c.Irecv(1, 4) //egdlint:allow mpisession deliberate orphan: rank 1 crashes and revocation must release this receive
			_, err := req.Wait()
			if !errors.Is(err, ErrRevoked) {
				return fmt.Errorf("blocked Irecv returned %v, want ErrRevoked", err)
			}
			var rf *RankFailedError
			if !errors.As(err, &rf) || rf.Rank != 1 {
				return fmt.Errorf("revocation error does not name rank 1: %v", err)
			}
			return nil
		default:
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Shrink input validation: empty, out-of-range, and duplicated survivor
// lists are rejected; identical survivor sets share one cached sub-world.
func TestShrinkValidatesSurvivors(t *testing.T) {
	w := NewWorld(4)
	if _, err := w.Shrink(nil); err == nil {
		t.Error("empty survivor set accepted")
	}
	if _, err := w.Shrink([]int{0, 4}); err == nil {
		t.Error("out-of-range survivor accepted")
	}
	if _, err := w.Shrink([]int{1, 1}); err == nil {
		t.Error("duplicate survivor accepted")
	}
	a, err := w.Shrink([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Shrink([]int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same survivor set produced distinct sub-worlds")
	}
	if a.Size() != 2 {
		t.Errorf("shrunk size = %d, want 2", a.Size())
	}
}

// A shrunk communicator renumbers ranks densely, reports original ranks via
// OrigRank/Group, routes messages between new ranks, and keeps charging
// operation counters to original ranks on the root world.
func TestShrinkRemapsRanksAndCounters(t *testing.T) {
	w := NewWorld(4)
	base2 := w.RankSends(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 || c.Rank() == 3 {
			return nil // not survivors; just exit
		}
		nc, err := c.Shrink([]int{0, 2})
		if err != nil {
			return err
		}
		if nc.Size() != 2 {
			return fmt.Errorf("shrunk comm size %d", nc.Size())
		}
		switch c.Rank() {
		case 0:
			if nc.Rank() != 0 || nc.OrigRank() != 0 {
				return fmt.Errorf("orig 0 mapped to rank %d (orig %d)", nc.Rank(), nc.OrigRank())
			}
			msg, err := nc.Recv(1, 5)
			if err != nil {
				return err
			}
			if msg.Source != 1 || msg.Payload.(int) != 42 {
				return fmt.Errorf("got %+v", msg)
			}
		case 2:
			if nc.Rank() != 1 || nc.OrigRank() != 2 {
				return fmt.Errorf("orig 2 mapped to rank %d (orig %d)", nc.Rank(), nc.OrigRank())
			}
			if err := nc.Send(0, 5, 42); err != nil {
				return err
			}
			if g := fmt.Sprint(nc.Group()); g != fmt.Sprint([]int{0, 2}) {
				return fmt.Errorf("group = %s", g)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.RankSends(2); got != base2+1 {
		t.Errorf("orig rank 2 send counter advanced by %d, want 1", got-base2)
	}
	// The sub-world was registered: a non-survivor shrink call fails.
	err = w.Run(func(c *Comm) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
}

// A rank outside the survivor set cannot obtain a handle on the shrunk
// communicator.
func TestShrinkRejectsNonSurvivorCaller(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(c *Comm) error {
		nc, err := c.Shrink([]int{0, 2})
		if c.Rank() == 1 {
			if err == nil {
				return errors.New("non-survivor got a shrunk comm")
			}
			return nil
		}
		if err != nil {
			return err
		}
		return nc.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Collectives work on a shrunk communicator: the binomial trees span the
// new dense numbering.
func TestShrinkCollectives(t *testing.T) {
	w := NewWorld(5)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 2 {
			return nil
		}
		nc, err := c.Shrink([]int{0, 1, 3, 4})
		if err != nil {
			return err
		}
		v, err := nc.Bcast(0, float64(nc.Rank())*0+7.5)
		if err != nil {
			return err
		}
		if v.(float64) != 7.5 {
			return fmt.Errorf("bcast got %v", v)
		}
		sum, err := nc.Allreduce(float64(nc.OrigRank()), OpSum)
		if err != nil {
			return err
		}
		if sum != 0+1+3+4 {
			return fmt.Errorf("allreduce got %v, want 8", sum)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Two staggered worker deaths: recovery runs one epoch per failure, and the
// run still completes live with both evictions recorded.
func TestEvictionTwoStaggeredFailures(t *testing.T) {
	const gens = 12
	w := NewWorld(5)
	w.InstallFaultPlan(NewFaultPlan().Kill(2, 2).Kill(4, 6))
	w.EnableEviction(testBeat, testMisses)

	err := w.Run(func(c *Comm) error {
		g := 0
		for g < gens {
			var err error
			if c.Rank() == 0 {
				for i := 1; i < c.Size(); i++ {
					if _, err = c.Recv(AnySource, 7); err != nil {
						break
					}
				}
				if err == nil {
					for i := 1; i < c.Size(); i++ {
						if err = c.Send(i, 8, g); err != nil {
							break
						}
					}
				}
			} else {
				if err = c.Send(0, 7, 1.0); err == nil {
					var msg Message
					if msg, err = c.Recv(0, 8); err == nil {
						g = msg.Payload.(int)
					}
				}
			}
			if err == nil {
				g++
				continue
			}
			nc, ok := evictRecover(c, err)
			if !ok {
				return err
			}
			c = nc
			v, berr := c.Bcast(0, g)
			if berr != nil {
				// A second failure can land during resynchronisation;
				// run another recovery epoch.
				nc, ok = evictRecover(c, berr)
				if !ok {
					return berr
				}
				c = nc
				if v, berr = c.Bcast(0, g); berr != nil {
					return berr
				}
			}
			g = v.(int)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run returned %v, want nil", err)
	}
	evs := w.Evictions()
	if len(evs) != 2 {
		t.Fatalf("evictions = %+v, want 2", evs)
	}
	got := map[int]bool{evs[0].Rank: true, evs[1].Rank: true}
	if !got[2] || !got[4] {
		t.Fatalf("evicted ranks %v, want {2,4}", got)
	}
}

// EnableEviction on a sub-world is a programming error.
func TestEnableEvictionOnSubWorldPanics(t *testing.T) {
	w := NewWorld(3)
	sub, err := w.Shrink([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("EnableEviction on sub-world did not panic")
		}
	}()
	sub.EnableEviction(0, 0)
}

// Agree without EnableEviction reports a usable error instead of
// deadlocking on uninitialised detector state.
func TestAgreeRequiresEviction(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		_, err := c.Agree()
		if err == nil {
			return errors.New("Agree without eviction succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Regression: a request created on an already-revoked communicator must
// fail fast with ErrRevoked, not sit out the receive deadline waiting for
// a message that can never arrive.
func TestIrecvOnRevokedCommFailsFast(t *testing.T) {
	w := NewWorld(2)
	w.EnableEviction(testBeat, testMisses)
	w.SetRecvTimeout(10 * time.Second)
	boom := errors.New("boom")
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			return boom
		}
		// Wait for rank 1's failure to revoke this comm.
		for c.world.revokeErr() == nil {
			time.Sleep(time.Millisecond)
		}
		start := time.Now()
		r := c.Irecv(1, 3)
		_, rerr := r.Wait()
		if !errors.Is(rerr, ErrRevoked) {
			return fmt.Errorf("Irecv on revoked comm: %v, want ErrRevoked", rerr)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			return fmt.Errorf("Irecv on revoked comm took %v (hung toward the deadline)", elapsed)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Regression: a Shrink racing past the end of Run builds a sub-world no
// send can ever reach; a receive on it must fail fast with ErrShutdown
// instead of hanging until the receive deadline.
func TestShrinkAfterShutdownFailsFast(t *testing.T) {
	w := NewWorld(3)
	w.EnableEviction(testBeat, testMisses)
	w.SetRecvTimeout(10 * time.Second)
	if err := w.Run(func(c *Comm) error { return nil }); err != nil {
		t.Fatal(err)
	}
	sub, err := w.Shrink([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	r := (&Comm{world: sub, rank: 0}).Irecv(1, 3)
	_, rerr := r.Wait()
	if !errors.Is(rerr, ErrShutdown) {
		t.Fatalf("recv on post-shutdown shrink: %v, want ErrShutdown", rerr)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("recv on post-shutdown shrink took %v (hung toward the deadline)", elapsed)
	}
}
