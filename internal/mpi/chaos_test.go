package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// This file is the chaos harness: one rank of the mesh runs as a REAL child
// process (this test binary re-executed into TestChaosWorkerHelper), and the
// parent subjects it to the failures egdrun must survive — clean exit,
// error exit with a nonzero status, kill -9, and SIGSTOP/SIGCONT — while
// hosting the surviving ranks in-process. The assertions pin exit-status
// attribution end to end: what the child's process state reports must agree
// with how the survivors' eviction records diagnose the departure.

const chaosEnvGuard = "EGD_CHAOS_HELPER"

// chaosBody is the SPMD body every chaos rank runs: lockstep generations
// (gather at rank 0, then a barrier) with the canonical survivor-side
// recovery step on error. fail, when non-nil, is consulted each generation
// so a scripted rank can die on cue.
func chaosBody(gens int, fail func(g int, c *Comm) error) func(c *Comm) error {
	return func(c *Comm) error {
		g := 0
		for g < gens {
			if fail != nil {
				if err := fail(g, c); err != nil {
					return err
				}
			}
			var err error
			if c.Rank() == 0 {
				for i := 1; i < c.Size(); i++ {
					if _, err = c.Recv(AnySource, 7); err != nil {
						break
					}
				}
			} else {
				err = c.Send(0, 7, g)
			}
			if err == nil {
				err = c.Barrier()
			}
			if err != nil {
				nc, ok := evictRecover(c, err)
				if !ok {
					return err
				}
				c = nc
				continue
			}
			g++
		}
		return nil
	}
}

// TestChaosWorkerHelper is not a test: it is the main() of a chaos worker
// process, entered when the test binary is re-executed with the guard env
// var set. It hosts one rank of the mesh and exits 0 on success or 3 on any
// rank error, so the parent can assert real wait-status attribution.
func TestChaosWorkerHelper(t *testing.T) {
	if os.Getenv(chaosEnvGuard) == "" {
		t.Skip("helper process entry point; run only via re-exec")
	}
	rank, _ := strconv.Atoi(os.Getenv("EGD_CHAOS_RANK"))
	size, _ := strconv.Atoi(os.Getenv("EGD_CHAOS_SIZE"))
	gens, _ := strconv.Atoi(os.Getenv("EGD_CHAOS_GENS"))
	dir := os.Getenv("EGD_CHAOS_DIR")
	mode := os.Getenv("EGD_CHAOS_MODE")
	job := os.Getenv("EGD_CHAOS_JOB")

	addrs := make([]string, size)
	for i := range addrs {
		addrs[i] = filepath.Join(dir, fmt.Sprintf("r%d.sock", i))
	}
	tr, err := NewNetTransport(NetConfig{
		Self: rank, Size: size, Network: "unix", Addrs: addrs, Job: job,
		Linger: time.Second,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos worker transport: %v\n", err)
		os.Exit(3)
	}
	w := NewNetWorld(tr)
	w.EnableEviction(testBeat, testMisses)
	w.SetRecvTimeout(5 * time.Second)
	if err := tr.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "chaos worker start: %v\n", err)
		os.Exit(3)
	}
	var fail func(g int, c *Comm) error
	if mode == "error" {
		fail = func(g int, c *Comm) error {
			if g == 3 {
				return errors.New("worker exploded")
			}
			return nil
		}
	}
	if err := w.RunLocal(chaosBody(gens, fail)); err != nil {
		fmt.Fprintf(os.Stderr, "chaos worker rank %d: %v\n", rank, err)
		os.Exit(3)
	}
	fmt.Println("CHAOS_WORKER_DONE")
	os.Exit(0)
}

// chaosRun hosts ranks 0..size-2 in-process and rank size-1 as a child
// process in the given mode, runs gens lockstep generations, and returns
// the in-process errors, each survivor's transport (for eviction records),
// the finished child command, and its combined output. onGen, when non-nil,
// fires on rank 0 after each completed generation (the chaos trigger).
func chaosRun(t *testing.T, size, gens int, mode string, onGen func(g int, cmd *exec.Cmd)) ([]error, []*NetTransport, *exec.Cmd, string) {
	t.Helper()
	dir := t.TempDir()
	addrs := make([]string, size)
	for i := range addrs {
		addrs[i] = filepath.Join(dir, fmt.Sprintf("r%d.sock", i))
	}
	child := size - 1

	cmd := exec.Command(os.Args[0], "-test.run=TestChaosWorkerHelper$", "-test.count=1")
	cmd.Env = append(os.Environ(),
		chaosEnvGuard+"=1",
		"EGD_CHAOS_RANK="+strconv.Itoa(child),
		"EGD_CHAOS_SIZE="+strconv.Itoa(size),
		"EGD_CHAOS_GENS="+strconv.Itoa(gens),
		"EGD_CHAOS_DIR="+dir,
		"EGD_CHAOS_MODE="+mode,
		"EGD_CHAOS_JOB="+t.Name(),
	)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn chaos worker: %v", err)
	}

	trs := make([]*NetTransport, child)
	for i := 0; i < child; i++ {
		tr, err := NewNetTransport(NetConfig{
			Self: i, Size: size, Network: "unix", Addrs: addrs, Job: t.Name(),
			Linger: time.Second,
		})
		if err != nil {
			t.Fatalf("rank %d transport: %v", i, err)
		}
		trs[i] = tr
	}
	errs := make([]error, child)
	var wg sync.WaitGroup
	for i := 0; i < child; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			w := NewNetWorld(trs[rank])
			w.EnableEviction(testBeat, testMisses)
			if err := trs[rank].Start(); err != nil {
				errs[rank] = err
				trs[rank].Shutdown(err)
				return
			}
			var fail func(g int, c *Comm) error
			if rank == 0 && onGen != nil {
				fail = func(g int, c *Comm) error {
					onGen(g, cmd)
					return nil
				}
			}
			errs[rank] = w.RunLocal(chaosBody(gens, fail))
		}(i)
	}
	wg.Wait()

	// The child must exit on its own in every mode (a SIGKILLed child is
	// already gone; a SIGSTOP'd child is resumed by its onGen hook). Bound
	// the wait so a regression hangs the test with a diagnosis, not forever.
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		<-done
		t.Fatalf("chaos worker did not exit; output:\n%s", out.String())
	}
	return errs, trs, cmd, out.String()
}

// waitStatus digs the raw wait status out of the finished child.
func waitStatus(t *testing.T, cmd *exec.Cmd) syscall.WaitStatus {
	t.Helper()
	ws, ok := cmd.ProcessState.Sys().(syscall.WaitStatus)
	if !ok {
		t.Fatalf("no syscall.WaitStatus available (%T)", cmd.ProcessState.Sys())
	}
	return ws
}

// A worker process that finishes its generations and leaves cleanly: exit
// status 0, goodbye on the wire, and nobody evicts anybody.
func TestChaosProcessCleanExit(t *testing.T) {
	errs, trs, cmd, out := chaosRun(t, 3, 4, "clean", nil)
	for r, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
	}
	if code := cmd.ProcessState.ExitCode(); code != 0 {
		t.Fatalf("clean worker exit code %d; output:\n%s", code, out)
	}
	if !strings.Contains(out, "CHAOS_WORKER_DONE") {
		t.Fatalf("worker never reached completion; output:\n%s", out)
	}
	for _, tr := range trs {
		if evs := tr.world.Evictions(); len(evs) != 0 {
			t.Errorf("rank %d evicted someone on a clean run: %v", tr.Self(), evs)
		}
	}
}

// A worker process that dies of its own error: nonzero exit status, and the
// survivors' eviction records attribute the failure to the worker's actual
// error (carried by its goodbye frame), not to a liveness guess.
func TestChaosProcessErrorExit(t *testing.T) {
	errs, trs, cmd, out := chaosRun(t, 3, 8, "error", nil)
	for r, err := range errs {
		if err != nil {
			t.Errorf("survivor rank %d: %v", r, err)
		}
	}
	if code := cmd.ProcessState.ExitCode(); code != 3 {
		t.Fatalf("erroring worker exit code %d, want 3; output:\n%s", code, out)
	}
	for _, tr := range trs {
		evs := tr.world.Evictions()
		if len(evs) != 1 || evs[0].Rank != 2 {
			t.Fatalf("rank %d evictions: %v", tr.Self(), evs)
		}
		if msg := evs[0].Err.Error(); !strings.Contains(msg, "worker exploded") {
			t.Errorf("rank %d eviction cause %q does not carry the worker's error", tr.Self(), msg)
		}
	}
}

// kill -9 mid-run: the wait status reports SIGKILL, the survivors see only
// silence — stale heartbeats or a dead socket — and the eviction records
// say so.
func TestChaosProcessSIGKILL(t *testing.T) {
	var once sync.Once
	errs, trs, cmd, out := chaosRun(t, 3, 10, "clean", func(g int, cmd *exec.Cmd) {
		if g == 2 {
			once.Do(func() { cmd.Process.Signal(syscall.SIGKILL) })
		}
	})
	for r, err := range errs {
		if err != nil {
			t.Errorf("survivor rank %d: %v", r, err)
		}
	}
	ws := waitStatus(t, cmd)
	if !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("wait status %v, want SIGKILL; output:\n%s", ws, out)
	}
	for _, tr := range trs {
		evs := tr.world.Evictions()
		if len(evs) != 1 || evs[0].Rank != 2 {
			t.Fatalf("rank %d evictions: %v", tr.Self(), evs)
		}
		msg := evs[0].Err.Error()
		if !strings.Contains(msg, "heartbeat") && !strings.Contains(msg, "unreachable") {
			t.Errorf("rank %d eviction cause %q lacks a liveness diagnosis", tr.Self(), msg)
		}
	}
}

// SIGSTOP freezes the worker without killing it: the survivors must evict
// it on heartbeat staleness exactly as a kill, and when SIGCONT resumes the
// zombie it must discover its own eviction and exit with an error rather
// than rejoin or hang.
func TestChaosProcessSIGSTOPThenCont(t *testing.T) {
	var stop, cont sync.Once
	errs, trs, cmd, out := chaosRun(t, 3, 10, "clean", func(g int, cmd *exec.Cmd) {
		if g == 2 {
			stop.Do(func() { cmd.Process.Signal(syscall.SIGSTOP) })
		}
		if g == 8 {
			// By now the survivors have evicted the frozen rank (they could
			// not have passed gen 3's barrier otherwise). Resume it.
			cont.Do(func() { cmd.Process.Signal(syscall.SIGCONT) })
		}
	})
	cont.Do(func() { cmd.Process.Signal(syscall.SIGCONT) })
	for r, err := range errs {
		if err != nil {
			t.Errorf("survivor rank %d: %v", r, err)
		}
	}
	if ws := waitStatus(t, cmd); ws.Signaled() {
		t.Fatalf("resumed worker died of signal %v, want error exit; output:\n%s", ws.Signal(), out)
	}
	if code := cmd.ProcessState.ExitCode(); code != 3 {
		t.Fatalf("resumed worker exit code %d, want 3 (must discover its eviction); output:\n%s", code, out)
	}
	for _, tr := range trs {
		evs := tr.world.Evictions()
		if len(evs) != 1 || evs[0].Rank != 2 {
			t.Fatalf("rank %d evictions: %v", tr.Self(), evs)
		}
		msg := evs[0].Err.Error()
		if !strings.Contains(msg, "heartbeat") && !strings.Contains(msg, "unreachable") {
			t.Errorf("rank %d eviction cause %q lacks a liveness diagnosis", tr.Self(), msg)
		}
	}
}
