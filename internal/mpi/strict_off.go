//go:build !mpistrict

package mpi

// strictPayloadSizes is false in regular builds: payload types without a
// modelled wire size are logged once and counted as 8 bytes. Build with
// -tags mpistrict (the `make strict` target) to turn the gap into a panic.
const strictPayloadSizes = false
