package mpi

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// This file is the runtime's fault model: a deterministic, scripted
// injection plan standing in for the node failures, link stalls, and lost
// packets that an hours-long Blue Gene partition occupation makes an
// operational fact. Faults key off per-rank operation counters (the rank's
// Nth send, its Nth collective), which are deterministic for a deterministic
// SPMD program regardless of goroutine scheduling — so a scripted failure
// reproduces bit-for-bit across runs and under -race.

// ErrInjectedFault marks errors produced by a scripted fault plan.
var ErrInjectedFault = errors.New("mpi: injected fault")

// ErrRecvTimeout is returned by receives whose deadline expires before a
// matching message arrives.
var ErrRecvTimeout = errors.New("mpi: receive timed out")

// ErrRecvCancelled is returned by a pending Irecv after Request.Cancel.
var ErrRecvCancelled = errors.New("mpi: receive cancelled")

// ErrShutdown is returned by receives still pending after every rank has
// returned from Run (the world is torn down, so no matching send can ever
// arrive).
var ErrShutdown = errors.New("mpi: world shut down")

// RankFailedError reports that a specific rank failed, taking the world
// down with it. It satisfies errors.Is(err, ErrAborted) so existing abort
// handling keeps working, while errors.As recovers *who* died — which is
// what a supervisor needs to decide between restart and degradation.
type RankFailedError struct {
	Rank int
	Err  error // the rank's own error, when known
}

func (e *RankFailedError) Error() string {
	if e.Err == nil {
		return fmt.Sprintf("mpi: rank %d failed", e.Rank)
	}
	return fmt.Sprintf("mpi: rank %d failed: %v", e.Rank, e.Err)
}

func (e *RankFailedError) Unwrap() error { return e.Err }

// Is makes every rank failure match ErrAborted, preserving the pre-typed
// contract that surviving ranks unwind on errors.Is(err, ErrAborted).
func (e *RankFailedError) Is(target error) bool { return target == ErrAborted }

// FaultKind selects what a scripted fault does when it triggers.
type FaultKind int

const (
	// KillAfterSends fails the rank's After-th send with ErrInjectedFault;
	// the algorithm code propagates it and the rank dies, modelling a node
	// failure mid-run. Fires at most once per Fault value, even across
	// worlds — a supervisor restarting with the same plan does not re-kill.
	KillAfterSends FaultKind = iota
	// DropSends silently discards the rank's sends numbered
	// [After, After+Count): the message is counted as transmitted but never
	// delivered, modelling packet loss. Dropping collective-internal
	// packets deadlocks the collective (as in real MPI) unless a receive
	// deadline is set.
	DropSends
	// DelaySends sleeps for Delay before delivering the rank's sends
	// numbered [After, After+Count), modelling link congestion or a slow
	// node. Combined with receive deadlines this exercises timeout paths.
	DelaySends
	// FailCollective fails the rank's After-th collective operation entry
	// with ErrInjectedFault. Fires at most once per Fault value.
	FailCollective
)

func (k FaultKind) String() string {
	switch k {
	case KillAfterSends:
		return "kill"
	case DropSends:
		return "drop"
	case DelaySends:
		return "delay"
	case FailCollective:
		return "collective"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Fault is one scripted failure. The zero Count means 1 for Drop/Delay
// kinds. Counters are 1-based: After == 1 targets the rank's first
// operation (After == 0 is treated as 1).
type Fault struct {
	Rank  int
	Kind  FaultKind
	After uint64
	Count uint64
	Delay time.Duration

	fired atomic.Bool // kill/collective faults trigger once, ever
}

// Fired reports whether a one-shot fault (kill, collective) has triggered.
func (f *Fault) Fired() bool { return f.fired.Load() }

func (f *Fault) threshold() uint64 { return max(f.After, 1) }

func (f *Fault) span() uint64 { return max(f.Count, 1) }

// FaultPlan is an ordered set of scripted faults installed into a World
// before Run. The same plan value may be reused across successive worlds
// (supervisor restarts): one-shot faults stay consumed.
type FaultPlan struct {
	faults []*Fault
}

// NewFaultPlan creates an empty plan.
func NewFaultPlan() *FaultPlan { return &FaultPlan{} }

// Add appends a fault and returns the plan for chaining.
func (p *FaultPlan) Add(f *Fault) *FaultPlan {
	p.faults = append(p.faults, f)
	return p
}

// Kill scripts rank's death at its after-th send.
func (p *FaultPlan) Kill(rank int, after uint64) *FaultPlan {
	return p.Add(&Fault{Rank: rank, Kind: KillAfterSends, After: after})
}

// Drop scripts the loss of count consecutive sends from rank starting at
// its after-th.
func (p *FaultPlan) Drop(rank int, after, count uint64) *FaultPlan {
	return p.Add(&Fault{Rank: rank, Kind: DropSends, After: after, Count: count})
}

// Delay scripts a delivery delay of d on count consecutive sends from rank
// starting at its after-th.
func (p *FaultPlan) Delay(rank int, after, count uint64, d time.Duration) *FaultPlan {
	return p.Add(&Fault{Rank: rank, Kind: DelaySends, After: after, Count: count, Delay: d})
}

// FailCollective scripts a failure of rank's after-th collective entry.
func (p *FaultPlan) FailCollective(rank int, after uint64) *FaultPlan {
	return p.Add(&Fault{Rank: rank, Kind: FailCollective, After: after})
}

// Faults returns the scripted faults (shared, not a copy).
func (p *FaultPlan) Faults() []*Fault { return p.faults }

// sendVerdict is the plan's decision for one send.
type sendVerdict struct {
	kill  bool
	drop  bool
	delay time.Duration
}

// onSend evaluates the plan against rank's n-th send (1-based).
func (p *FaultPlan) onSend(rank int, n uint64) sendVerdict {
	var v sendVerdict
	for _, f := range p.faults {
		if f.Rank != rank {
			continue
		}
		switch f.Kind {
		case KillAfterSends:
			if n >= f.threshold() && f.fired.CompareAndSwap(false, true) {
				v.kill = true
			}
		case DropSends:
			if n >= f.threshold() && n < f.threshold()+f.span() {
				v.drop = true
			}
		case DelaySends:
			if n >= f.threshold() && n < f.threshold()+f.span() {
				v.delay += f.Delay
			}
		}
	}
	return v
}

// onCollective evaluates the plan against rank's n-th collective entry
// (1-based); true means the collective fails at this rank.
func (p *FaultPlan) onCollective(rank int, n uint64) bool {
	for _, f := range p.faults {
		if f.Rank != rank || f.Kind != FailCollective {
			continue
		}
		if n >= f.threshold() && f.fired.CompareAndSwap(false, true) {
			return true
		}
	}
	return false
}

// ParseFault parses a CLI fault spec of comma-separated key=value pairs:
//
//	rank=3,after=500                     kill rank 3 at its 500th send
//	rank=1,after=10,kind=drop,count=3    drop rank 1's sends 10..12
//	rank=2,after=5,kind=delay,delay=50ms stall rank 2's 5th send 50ms
//	rank=0,after=2,kind=collective       fail rank 0's 2nd collective
func ParseFault(spec string) (*Fault, error) {
	f := &Fault{Rank: -1, Kind: KillAfterSends}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, value, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("mpi: fault spec field %q is not key=value", field)
		}
		switch key {
		case "rank":
			n, err := strconv.Atoi(value)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("mpi: fault spec rank %q", value)
			}
			f.Rank = n
		case "after":
			n, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("mpi: fault spec after %q", value)
			}
			f.After = n
		case "count":
			n, err := strconv.ParseUint(value, 10, 64)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("mpi: fault spec count %q", value)
			}
			f.Count = n
		case "delay":
			d, err := time.ParseDuration(value)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("mpi: fault spec delay %q", value)
			}
			f.Delay = d
		case "kind":
			switch value {
			case "kill":
				f.Kind = KillAfterSends
			case "drop":
				f.Kind = DropSends
			case "delay":
				f.Kind = DelaySends
			case "collective":
				f.Kind = FailCollective
			default:
				return nil, fmt.Errorf("mpi: fault spec kind %q (want kill, drop, delay, or collective)", value)
			}
		default:
			return nil, fmt.Errorf("mpi: fault spec key %q", key)
		}
	}
	if f.Rank < 0 {
		return nil, fmt.Errorf("mpi: fault spec %q needs rank=N", spec)
	}
	if f.Kind == DelaySends && f.Delay <= 0 {
		return nil, fmt.Errorf("mpi: fault spec %q needs delay=DURATION for kind=delay", spec)
	}
	return f, nil
}

// InstallFaultPlan arms the plan for this world; it must be called before
// Run. A nil plan disarms injection.
func (w *World) InstallFaultPlan(p *FaultPlan) { w.plan = p }

// SetRecvTimeout sets a default deadline applied to every blocking receive
// in the world, including the point-to-point receives inside collectives.
// A rank whose receive outlives the deadline fails with ErrRecvTimeout,
// aborting the world — the detection half of worker-failure recovery. The
// deadline must comfortably exceed the longest legitimate compute phase
// between communications; zero (the default) disables it. Must be set
// before Run.
func (w *World) SetRecvTimeout(d time.Duration) { w.recvTimeout = d }

// RankSends returns how many sends rank has attempted (including
// collective-internal packets) — the counter fault plans key off. Rank is an
// original (root-world) rank; the counter persists across Shrink.
func (w *World) RankSends(rank int) uint64 { return w.rootW().sendCounts[rank].Load() }

// RankCollectives returns how many collective operations rank has entered.
func (w *World) RankCollectives(rank int) uint64 { return w.rootW().collCounts[rank].Load() }
