package mpi

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// TestStressMixedTraffic drives many ranks through interleaved
// point-to-point rings, wildcard receives, and collectives for many rounds;
// run under -race this shakes out ordering and matching bugs.
func TestStressMixedTraffic(t *testing.T) {
	const (
		size   = 12
		rounds = 60
	)
	w := NewWorld(size)
	err := w.Run(func(c *Comm) error {
		src := rng.New(uint64(c.Rank()) + 1)
		for r := 0; r < rounds; r++ {
			// Ring shift: everyone sends to the right, receives from the
			// left, with a payload that encodes (round, sender).
			right := (c.Rank() + 1) % size
			left := (c.Rank() - 1 + size) % size
			if err := c.Send(right, 10, [2]int{r, c.Rank()}); err != nil {
				return err
			}
			msg, err := c.Recv(left, 10)
			if err != nil {
				return err
			}
			got := msg.Payload.([2]int)
			if got[0] != r || got[1] != left {
				return fmt.Errorf("round %d: ring got %v from %d", r, got, msg.Source)
			}

			// Random extra traffic to rank 0 with wildcard receive there.
			if c.Rank() != 0 {
				if src.Bool() {
					if err := c.Send(0, 20, c.Rank()*1000+r); err != nil {
						return err
					}
				} else {
					if err := c.Send(0, 21, c.Rank()*1000+r); err != nil {
						return err
					}
				}
			} else {
				for i := 0; i < size-1; i++ {
					if _, err := c.Recv(AnySource, AnyTag); err != nil {
						return err
					}
				}
			}

			// A collective sequence with a rotating root.
			root := r % size
			var p any
			if c.Rank() == root {
				p = r * r
			}
			v, err := c.Bcast(root, p)
			if err != nil {
				return err
			}
			if v.(int) != r*r {
				return fmt.Errorf("round %d: bcast got %v", r, v)
			}
			sum, err := c.Allreduce(float64(c.Rank()), OpSum)
			if err != nil {
				return err
			}
			if sum != float64(size*(size-1))/2 {
				return fmt.Errorf("round %d: allreduce %v", r, sum)
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStressManyWorlds runs several independent worlds concurrently to
// verify complete isolation between them.
func TestStressManyWorlds(t *testing.T) {
	done := make(chan error, 8)
	for wi := 0; wi < 8; wi++ {
		go func(wi int) {
			w := NewWorld(4)
			done <- w.Run(func(c *Comm) error {
				for r := 0; r < 30; r++ {
					sum, err := c.Allreduce(float64(wi), OpSum)
					if err != nil {
						return err
					}
					if sum != float64(4*wi) {
						return fmt.Errorf("world %d leaked: sum %v", wi, sum)
					}
				}
				return nil
			})
		}(wi)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestIrecvOutstanding posts receives before the matching sends exist.
func TestIrecvOutstanding(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			// Post both receives first, then trigger the sends with a
			// barrier release.
			r1 := c.Irecv(1, 5) //egdlint:allow mpirequest on the Barrier error path world shutdown releases the posted receives
			r2 := c.Irecv(2, 5) //egdlint:allow mpirequest on the Barrier error path world shutdown releases the posted receives
			if err := c.Barrier(); err != nil {
				return err
			}
			m1, err := r1.Wait()
			if err != nil {
				return err
			}
			m2, err := r2.Wait()
			if err != nil {
				return err
			}
			if m1.Payload.(int) != 100 || m2.Payload.(int) != 200 {
				return fmt.Errorf("got %v %v", m1.Payload, m2.Payload)
			}
			return nil
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		return c.Send(0, 5, c.Rank()*100)
	})
	if err != nil {
		t.Fatal(err)
	}
}
