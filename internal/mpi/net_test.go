package mpi

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// netMesh builds the NetConfigs for an n-rank unix-socket mesh rooted in a
// test temp dir.
func netMesh(t *testing.T, n int) []NetConfig {
	t.Helper()
	dir := t.TempDir()
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = filepath.Join(dir, fmt.Sprintf("r%d.sock", i))
	}
	cfgs := make([]NetConfig, n)
	for i := range cfgs {
		cfgs[i] = NetConfig{
			Self:    i,
			Size:    n,
			Network: "unix",
			Addrs:   addrs,
			Job:     t.Name(),
			Linger:  time.Second,
		}
	}
	return cfgs
}

// newNetTransports builds one transport per rank of the mesh. Tests that
// need the transports inside rank bodies (severing, stats) create them
// first so the closures can capture the slice.
func newNetTransports(t *testing.T, cfgs []NetConfig) []*NetTransport {
	t.Helper()
	trs := make([]*NetTransport, len(cfgs))
	for i := range cfgs {
		tr, err := NewNetTransport(cfgs[i])
		if err != nil {
			t.Fatalf("rank %d transport: %v", i, err)
		}
		trs[i] = tr
	}
	return trs
}

// runNetWorlds hosts each rank of the mesh on its own goroutine — each with
// its own transport and world, communicating only over the sockets — and
// returns the per-rank RunLocal errors.
func runNetWorlds(t *testing.T, trs []*NetTransport, setup func(w *World), body func(c *Comm) error) []error {
	t.Helper()
	n := len(trs)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			w := NewNetWorld(trs[rank])
			if setup != nil {
				setup(w)
			}
			if err := trs[rank].Start(); err != nil {
				errs[rank] = err
				trs[rank].Shutdown(err)
				return
			}
			errs[rank] = w.RunLocal(body)
		}(i)
	}
	wg.Wait()
	return errs
}

// The transport parity baseline: point-to-point sends and every collective
// produce the same values over the wire as in-process.
func TestNetWorldPointToPointAndCollectives(t *testing.T) {
	trs := newNetTransports(t, netMesh(t, 3))
	errs := runNetWorlds(t, trs, nil, func(c *Comm) error {
		n := c.Size()
		// Ring exchange.
		if err := c.Send((c.Rank()+1)%n, 7, c.Rank()); err != nil {
			return fmt.Errorf("ring send: %w", err)
		}
		m, err := c.Recv((c.Rank()+n-1)%n, 7)
		if err != nil {
			return fmt.Errorf("ring recv: %w", err)
		}
		if m.Payload.(int) != (c.Rank()+n-1)%n {
			return fmt.Errorf("ring got %v", m.Payload)
		}
		// Broadcast.
		got, err := c.Bcast(0, "hello")
		if err != nil {
			return fmt.Errorf("bcast: %w", err)
		}
		if got.(string) != "hello" {
			return fmt.Errorf("bcast got %v", got)
		}
		// Reduction.
		sum, err := c.Reduce(0, float64(c.Rank()), OpSum)
		if err != nil {
			return fmt.Errorf("reduce: %w", err)
		}
		if c.Rank() == 0 && sum != 3 {
			return fmt.Errorf("reduce got %v", sum)
		}
		// Gather.
		vals, err := c.Gather(0, c.Rank())
		if err != nil {
			return fmt.Errorf("gather: %w", err)
		}
		if c.Rank() == 0 {
			for i, v := range vals {
				if v.(int) != i {
					return fmt.Errorf("gather got %v", vals)
				}
			}
		}
		// Allgather and barrier.
		all, err := c.Allgather(c.Rank() * 10)
		if err != nil {
			return fmt.Errorf("allgather: %w", err)
		}
		for i, v := range all {
			if v.(int) != i*10 {
				return fmt.Errorf("allgather got %v", all)
			}
		}
		return c.Barrier()
	})
	for r, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
	}
}

// Severing every connection mid-stream must be recovered transparently by
// the redial/resend machinery: all messages arrive, exactly once, in
// order, and the retry counters record the recovery.
func TestNetWorldSeverReconnectsAndResends(t *testing.T) {
	const msgs = 120
	trs := newNetTransports(t, netMesh(t, 2))
	errs := runNetWorlds(t, trs, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				if err := c.Send(1, 5, i); err != nil {
					return err
				}
				time.Sleep(time.Millisecond)
			}
			// Wait for the receiver's tally before tearing down.
			m, err := c.Recv(1, 6)
			if err != nil {
				return err
			}
			if m.Payload.(int) != msgs {
				return fmt.Errorf("receiver saw %v messages", m.Payload)
			}
			return nil
		}
		for i := 0; i < msgs; i++ {
			m, err := c.Recv(0, 5)
			if err != nil {
				return err
			}
			if m.Payload.(int) != i {
				return fmt.Errorf("message %d carried %v (reorder or loss)", i, m.Payload)
			}
			if i == msgs/3 || i == 2*msgs/3 {
				// Sever both directions without telling anyone.
				trs[0].DropConns()
				trs[1].DropConns()
			}
		}
		return c.Send(0, 6, msgs)
	})
	for r, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
	}
	var reconnects, resends, dups uint64
	for _, tr := range trs {
		s := tr.Stats().Snapshot()
		reconnects += s.Reconnects
		resends += s.Resends
		dups += s.DupsDropped
	}
	if reconnects == 0 {
		t.Error("no reconnects recorded after severing connections")
	}
	t.Logf("reconnects=%d resends=%d dups_dropped=%d", reconnects, resends, dups)
}

// A rank erroring out over the wire is detected (goodbye + stale beats),
// evicted, and the survivors recover live on a shrunk communicator — the
// in-process eviction protocol, across processes.
func TestNetWorldErrorExitEvictedSurvivorsRecover(t *testing.T) {
	const gens = 8
	boom := errors.New("boom")
	trs := newNetTransports(t, netMesh(t, 3))
	finals := make([][]int, 3)
	var mu sync.Mutex
	errs := runNetWorlds(t, trs,
		func(w *World) { w.EnableEviction(testBeat, testMisses) },
		func(c *Comm) error {
			g := 0
			for g < gens {
				if c.OrigRank() == 2 && g == 3 {
					return boom
				}
				var err error
				if c.Rank() == 0 {
					for i := 1; i < c.Size(); i++ {
						if _, err = c.Recv(AnySource, 7); err != nil {
							break
						}
					}
				} else {
					err = c.Send(0, 7, g)
				}
				if err == nil {
					// Lockstep: nobody races ahead of the failure epoch on
					// buffered sends.
					err = c.Barrier()
				}
				if err != nil {
					nc, ok := evictRecover(c, err)
					if !ok {
						return err
					}
					c = nc
					continue
				}
				g++
			}
			mu.Lock()
			finals[c.OrigRank()] = c.Group()
			mu.Unlock()
			return nil
		})
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("survivors errored: %v / %v", errs[0], errs[1])
	}
	if !errors.Is(errs[2], boom) {
		t.Fatalf("rank 2 exit: %v", errs[2])
	}
	for _, r := range []int{0, 1} {
		if got := fmt.Sprint(finals[r]); got != "[0 1]" {
			t.Errorf("rank %d final group %v", r, got)
		}
	}
}

// A peer that vanishes silently — transport torn down with no goodbye, as
// a kill -9 would leave it — is detected by heartbeat staleness on the
// survivors, who evict it and continue.
func TestNetWorldSilentVanishEvicted(t *testing.T) {
	const gens = 6
	trs := newNetTransports(t, netMesh(t, 3))
	errs := runNetWorlds(t, trs,
		func(w *World) { w.EnableEviction(testBeat, testMisses) },
		func(c *Comm) error {
			g := 0
			for g < gens {
				if c.OrigRank() == 2 && g == 2 {
					// Vanish: sever the mesh and leave without goodbye.
					trs[2].close()
					return errors.New("simulated hard crash")
				}
				var err error
				if c.Rank() == 0 {
					for i := 1; i < c.Size(); i++ {
						if _, err = c.Recv(AnySource, 7); err != nil {
							break
						}
					}
				} else {
					err = c.Send(0, 7, g)
				}
				if err == nil {
					err = c.Barrier()
				}
				if err != nil {
					nc, ok := evictRecover(c, err)
					if !ok {
						return err
					}
					c = nc
					continue
				}
				g++
			}
			return nil
		})
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("survivors errored: %v / %v", errs[0], errs[1])
	}
	// Both survivors must have recorded rank 2's eviction with a liveness
	// diagnosis (no goodbye arrived to attribute an error exit).
	for _, tr := range trs[:2] {
		evs := tr.world.Evictions()
		if len(evs) != 1 || evs[0].Rank != 2 {
			t.Fatalf("rank %d evictions: %v", tr.Self(), evs)
		}
		msg := evs[0].Err.Error()
		if !strings.Contains(msg, "heartbeat") && !strings.Contains(msg, "unreachable") {
			t.Errorf("rank %d eviction cause %q lacks liveness diagnosis", tr.Self(), msg)
		}
	}
}
