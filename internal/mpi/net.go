package mpi

import (
	"errors"
	"fmt"
	"time"
)

// This file is the world-side half of the networked runtime: where tcp.go
// moves frames between processes, the functions here decide what a frame
// means to the hosted rank's world — routing data frames into (possibly
// shrunk) sub-world inboxes, feeding wire heartbeats into the failure
// detector, attributing peer exits from goodbye frames, and turning an
// unreachable peer into the same rank-failure event an injected fault
// produces. A networked world hosts exactly one rank per process
// (World.self >= 0); everything else about the runtime — collectives,
// eviction, fault plans, metrics — is shared with the in-process path.

// maxPendingWire caps the frames buffered for a sub-world this process has
// not yet built with Shrink. The recovery protocol exchanges a handful of
// messages before both sides hold the sub-world, so a deep backlog means a
// diverged peer, not a slow one; excess frames are dropped.
const maxPendingWire = 4096

// pendingEnv is one buffered wire envelope awaiting its sub-world.
type pendingEnv struct {
	dst int
	e   envelope
}

// NewNetWorld builds the world a networked process hosts: full-size rank
// numbering (so ranks, tags, fault plans, and counters mean the same thing
// as in-process), but only rank t.Self() runs here — the rest live behind
// the transport. Wire the mesh with t.Start() after installing world
// options (EnableEviction, EnableMetrics, fault plan), then run the hosted
// rank with RunLocal.
func NewNetWorld(t *NetTransport) *World {
	w := NewWorld(t.cfg.Size)
	w.tr = t
	w.self = t.cfg.Self
	t.bind(w)
	return w
}

// RunLocal executes body on the hosted rank of a networked world and
// returns its error. It is Run's single-rank counterpart: heartbeats are
// emitted over the wire, the exit status is announced to every peer with a
// goodbye frame (so survivors attribute this rank's departure), and
// pending receives are released on the way out.
func (w *World) RunLocal(body func(c *Comm) error) error {
	if w.root != nil {
		panic("mpi: RunLocal on a shrunk sub-world; run the root world")
	}
	nt, ok := w.tr.(*NetTransport)
	if !ok || w.self < 0 {
		panic("mpi: RunLocal needs a networked world (NewNetWorld)")
	}
	stopHB := w.startLocalHeartbeat(nt)
	err := runBody(body, &Comm{world: w, rank: w.self})
	if w.evict {
		w.rankExited(w.self, err)
	}
	if stopHB != nil {
		stopHB()
	}
	nt.Shutdown(err)
	w.shutdown()
	return err
}

// startLocalHeartbeat is startHeartbeat's networked-world counterpart: one
// emitter for the hosted rank (which also broadcasts the beat over the
// wire) plus the shared failure monitor. Remote ranks' lastBeat entries
// are refreshed by noteRemoteBeat when their beats arrive; they are primed
// with a startup grace so a peer process that launches a moment later is
// not declared dead before its first beat can possibly arrive.
func (w *World) startLocalHeartbeat(nt *NetTransport) func() {
	if !w.evict {
		return nil
	}
	w.emu.Lock()
	w.hbStart = time.Now()
	w.emu.Unlock()
	deadline := time.Duration(w.hbMisses) * w.hbEvery
	grace := deadline
	if grace < time.Second {
		grace = time.Second
	}
	for r := 0; r < w.size; r++ {
		if r != w.self {
			w.lastBeat[r].Store(int64(grace))
		}
	}
	stop := make(chan struct{})
	done := make(chan struct{}, 2)
	go func() {
		defer func() { done <- struct{}{} }()
		t := time.NewTicker(w.hbEvery)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-w.exited[w.self]:
				return
			case <-t.C:
				w.lastBeat[w.self].Store(int64(time.Since(w.hbStart)))
				w.noteHeartbeat(w.self)
				nt.Beat()
			}
		}
	}()
	go func() {
		defer func() { done <- struct{}{} }()
		t := time.NewTicker(w.hbEvery)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				w.monitorTick(deadline)
			}
		}
	}()
	return func() {
		close(stop)
		<-done
		<-done
	}
}

// noteRemoteBeat feeds a wire heartbeat into the failure detector: receipt
// time, in the local monitor's clock, becomes the peer's last-seen beat.
func (w *World) noteRemoteBeat(orig int) {
	if !w.evict || orig < 0 || orig >= w.size {
		return
	}
	w.emu.Lock()
	started := !w.hbStart.IsZero()
	var off int64
	if started {
		off = int64(time.Since(w.hbStart))
	}
	w.emu.Unlock()
	if !started {
		return
	}
	w.lastBeat[orig].Store(off)
	w.noteHeartbeat(orig)
}

// rankFailedNow reports whether the original rank has been declared failed
// (the transport's redial loops stop chasing a peer the detector already
// evicted).
func (w *World) rankFailedNow(orig int) bool {
	return w.evict && orig >= 0 && orig < w.size && w.failedP[orig].Load() != nil
}

// peerLost turns a peer that stayed unreachable past the redial budget
// into a rank failure: eviction-mode worlds evict it (survivors
// Agree+Shrink and continue), abort-mode worlds tear down.
func (w *World) peerLost(orig int, cause error) {
	if orig < 0 || orig >= w.size {
		return
	}
	rf := &RankFailedError{Rank: orig, Err: cause}
	if w.evict {
		w.markFailed(orig, cause)
		return
	}
	w.abortWith(rf)
}

// peerExited attributes a peer's announced departure (its goodbye frame).
// A clean exit is a finished rank; an error exit is recorded and left for
// the failure monitor to declare once the peer's beats go stale — the same
// path a local rank's error exit takes — except that a cascade exit (the
// peer unwound on someone else's failure) is marked so the monitor does
// not evict it.
func (w *World) peerExited(orig int, ok bool, msg string, cascade bool) {
	if orig < 0 || orig >= w.size {
		return
	}
	if !w.evict {
		if !ok {
			w.abortWith(&RankFailedError{Rank: orig, Err: errors.New(msg)})
		}
		return
	}
	var err error
	if !ok {
		if cascade {
			err = fmt.Errorf("mpi: rank %d unwound on a peer failure: %s: %w", orig, msg, ErrAborted)
		} else {
			err = errors.New(msg)
		}
	}
	w.emu.Lock()
	already := w.done[orig]
	w.emu.Unlock()
	if already {
		return
	}
	w.rankExited(orig, err)
	w.netAgreeKick()
}

// deliverRemote routes a decoded data frame into the inbox of rank dst of
// the world named by key ("" is the root; otherwise a Shrink survivor
// list). A frame for a sub-world this process has not built yet is
// buffered and flushed when Shrink creates it — the sender ran Shrink
// first and may legitimately race ahead. A frame from a rank already
// declared failed is dropped, mirroring the send fence on the other side.
func (w *World) deliverRemote(key string, src, dst, tag int, payload any) {
	w.wmu.Lock()
	var target *World
	if key == "" {
		target = w
	} else {
		target = w.subs[key]
	}
	if target == nil {
		if w.pendingWire == nil {
			w.pendingWire = make(map[string][]pendingEnv)
		}
		if q := w.pendingWire[key]; len(q) < maxPendingWire {
			w.pendingWire[key] = append(q, pendingEnv{
				dst: dst,
				e:   envelope{source: src, tag: tag, payload: payload},
			})
		}
		w.wmu.Unlock()
		return
	}
	w.wmu.Unlock()
	if src < 0 || src >= target.size || dst < 0 || dst >= target.size {
		return
	}
	if w.evict && w.failedP[target.origOf(src)].Load() != nil {
		return
	}
	target.boxes[dst].put(envelope{source: src, tag: tag, payload: payload})
}

// flushPendingWire hands a new sub-world the frames that arrived before
// Shrink built it. Shrink calls it while holding the registry lock, so
// buffered frames land ahead of anything deliverRemote routes afterwards —
// per-(source, tag) arrival order is preserved across the handoff.
func (w *World) flushPendingWire(key string, sub *World) {
	q := w.pendingWire[key]
	if len(q) == 0 {
		return
	}
	delete(w.pendingWire, key)
	for _, pe := range q {
		if pe.dst >= 0 && pe.dst < sub.size {
			sub.boxes[pe.dst].put(pe.e)
		}
	}
}
