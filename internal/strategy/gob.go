package strategy

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/bitset"
)

// Gob support so strategies can cross process boundaries through the mpi
// wire transport. The encodings are self-describing (memory depth first)
// and strictly validated on decode: a corrupt or hostile body errors out,
// it never panics and never round-trips into an inconsistent strategy.

// GobEncode implements gob.GobEncoder: memory byte, then the response
// bitset's binary form.
func (p *Pure) GobEncode() ([]byte, error) {
	bits, err := p.bits.MarshalBinary()
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 1+len(bits))
	out = append(out, byte(p.space.Memory()))
	return append(out, bits...), nil
}

// GobDecode implements gob.GobDecoder.
func (p *Pure) GobDecode(data []byte) error {
	if len(data) < 1 {
		return fmt.Errorf("strategy: pure gob body %d bytes", len(data))
	}
	n := int(data[0])
	if n < 1 || n > MaxMemory {
		return fmt.Errorf("strategy: pure gob memory %d out of range [1,%d]", n, MaxMemory)
	}
	sp := NewSpace(n)
	b := new(bitset.Bitset)
	if err := b.UnmarshalBinary(data[1:]); err != nil {
		return err
	}
	if b.Len() != sp.NumStates() {
		return fmt.Errorf("strategy: pure gob bitset length %d != %d states", b.Len(), sp.NumStates())
	}
	p.space = sp
	p.bits = b
	return nil
}

// GobEncode implements gob.GobEncoder: memory byte, then each state's
// cooperation probability as big-endian float64 bits.
func (m *Mixed) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(1 + 8*len(m.p))
	buf.WriteByte(byte(m.space.Memory()))
	var w [8]byte
	for _, v := range m.p {
		binary.BigEndian.PutUint64(w[:], math.Float64bits(v))
		buf.Write(w[:])
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (m *Mixed) GobDecode(data []byte) error {
	if len(data) < 1 {
		return fmt.Errorf("strategy: mixed gob body %d bytes", len(data))
	}
	n := int(data[0])
	if n < 1 || n > MaxMemory {
		return fmt.Errorf("strategy: mixed gob memory %d out of range [1,%d]", n, MaxMemory)
	}
	sp := NewSpace(n)
	body := data[1:]
	if len(body) != 8*sp.NumStates() {
		return fmt.Errorf("strategy: mixed gob body %d bytes for %d states", len(body), sp.NumStates())
	}
	p := make([]float64, sp.NumStates())
	for i := range p {
		v := math.Float64frombits(binary.BigEndian.Uint64(body[8*i:]))
		if v != clamp01(v) || v != v {
			return fmt.Errorf("strategy: mixed gob probability %v out of [0,1]", v)
		}
		p[i] = v
	}
	m.space = sp
	m.p = p
	return nil
}
