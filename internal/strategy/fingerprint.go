package strategy

import "math"

// This file defines the canonical 128-bit behavioural fingerprint the
// strategy-pair payoff cache (internal/game.PairCache) keys on. Unlike the
// 64-bit Strategy.Fingerprint — a display/abundance hash that quantises
// mixed tables to 1e-6 — the canonical fingerprint hashes the exact
// behavioural content and is wide enough to key a correctness-critical
// memo: equal-behaviour strategies hash equal, and any observable
// difference in the response table changes the hash (collisions are
// 2^-128-grade events, not engineering concerns; see docs/KERNEL.md).
//
// Canonicalisation: a Mixed strategy whose every cooperation probability is
// exactly 0 or 1 behaves identically to the corresponding Pure strategy
// (Move is deterministic; rng.Bernoulli consumes no randomness at the
// extremes), so both representations hash to the same fingerprint.

// Fingerprint is a 128-bit content hash of a strategy's behaviour.
// The zero value is not a valid fingerprint of any strategy.
type Fingerprint struct {
	Hi, Lo uint64
}

// Domain-separation tags mixed into the hash so a pure table and a mixed
// table over the same bit pattern can never collide structurally.
const (
	fpKindPure  = 0x70757265 // "pure"
	fpKindMixed = 0x6D697865 // "mixe"
)

// fpLane is one 64-bit lane of the fingerprint: an FNV-style
// xor-multiply-shift mixer. The two lanes use different offsets and
// multipliers so they evolve independently.
type fpLane struct {
	h    uint64
	mult uint64
}

func (l *fpLane) mix(v uint64) {
	l.h ^= v
	l.h *= l.mult
	l.h ^= l.h >> 29
}

func fpLanes(kind, memory int) (fpLane, fpLane) {
	hi := fpLane{h: 0x9E3779B97F4A7C15, mult: 0x100000001B3}
	lo := fpLane{h: 0xD1B54A32D192ED03, mult: 0x9FB21C651E98DF25}
	hi.mix(uint64(kind))
	lo.mix(uint64(kind))
	hi.mix(uint64(memory))
	lo.mix(uint64(memory))
	return hi, lo
}

// IsDeterministic reports whether the strategy's next move is a
// deterministic function of the state: true for every Pure strategy and
// for Mixed strategies whose probabilities are all exactly 0 or 1.
// Deterministic strategies playing an error-free match always produce the
// same Result, which is what makes their pair payoff memoizable.
func IsDeterministic(s Strategy) bool {
	switch v := s.(type) {
	case *Pure:
		return true
	case *Mixed:
		for _, p := range v.p {
			if p != 0 && p != 1 {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// CanonicalFingerprint returns the 128-bit behavioural fingerprint of the
// strategy, canonicalising degenerate Mixed tables (all probabilities 0 or
// 1) to the equivalent Pure encoding. ok is false for strategy
// implementations the canonicaliser does not know, which callers must
// treat as uncacheable.
func CanonicalFingerprint(s Strategy) (fp Fingerprint, ok bool) {
	switch v := s.(type) {
	case *Pure:
		return pureFingerprint(v.space.Memory(), v.bits.Words()), true
	case *Mixed:
		if IsDeterministic(v) {
			return degenerateMixedFingerprint(v), true
		}
		hi, lo := fpLanes(fpKindMixed, v.space.Memory())
		for _, p := range v.p {
			b := math.Float64bits(p)
			hi.mix(b)
			lo.mix(b)
		}
		return Fingerprint{Hi: hi.h, Lo: lo.h}, true
	default:
		return Fingerprint{}, false
	}
}

func pureFingerprint(memory int, words []uint64) Fingerprint {
	hi, lo := fpLanes(fpKindPure, memory)
	for _, w := range words {
		hi.mix(w)
		lo.mix(w)
	}
	return Fingerprint{Hi: hi.h, Lo: lo.h}
}

// degenerateMixedFingerprint packs an all-0/1 probability table into pure
// response words (bit set = Defect, i.e. cooperation probability 0) and
// hashes those, so the degenerate Mixed and its Pure twin agree without
// allocating an intermediate strategy.
func degenerateMixedFingerprint(m *Mixed) Fingerprint {
	words := make([]uint64, (len(m.p)+63)/64)
	for i, p := range m.p {
		if p == 0 {
			words[i/64] |= 1 << uint(i%64)
		}
	}
	return pureFingerprint(m.space.Memory(), words)
}
