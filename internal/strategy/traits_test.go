package strategy

import (
	"testing"

	"repro/internal/rng"
)

func TestTraitsOfClassicsMemoryOne(t *testing.T) {
	sp := NewSpace(1)
	cases := []struct {
		name        string
		p           *Pure
		nice        bool
		retaliatory bool
		forgiveIn   int // -1 = never
	}{
		{"ALLC", AllC(sp), true, false, 0},
		{"ALLD", AllD(sp), false, true, -1},
		{"TFT", TFT(sp), true, true, 1},
		// WSLS is unforgiving by this probe — and that is the famous
		// property: against an opponent that keeps cooperating after the
		// incident, WSLS stays in the winning (T) state and exploits it
		// forever. Its cooperation recovery happens in self-play, where
		// the partner also shifts (see game tests).
		{"WSLS", WSLS(sp), true, true, -1},
		{"GRIM", Grim(sp), true, true, -1},
	}
	for _, c := range cases {
		tr := AnalyzeTraits(c.p)
		if tr.Nice != c.nice {
			t.Errorf("%s: nice = %v, want %v", c.name, tr.Nice, c.nice)
		}
		if tr.Retaliatory != c.retaliatory {
			t.Errorf("%s: retaliatory = %v, want %v", c.name, tr.Retaliatory, c.retaliatory)
		}
		if tr.ForgivenessRounds != c.forgiveIn {
			t.Errorf("%s: forgiveness = %d, want %d", c.name, tr.ForgivenessRounds, c.forgiveIn)
		}
		if tr.Forgiving != (c.forgiveIn >= 0) {
			t.Errorf("%s: forgiving flag inconsistent", c.name)
		}
	}
}

func TestTraitsFirstMoveAndDefectionRate(t *testing.T) {
	sp := NewSpace(1)
	tr := AnalyzeTraits(AllD(sp))
	if tr.FirstMove != Defect || tr.DefectionRate != 1 {
		t.Fatalf("ALLD traits: %+v", tr)
	}
	tr = AnalyzeTraits(TFT(sp))
	if tr.FirstMove != Cooperate || tr.DefectionRate != 0.5 {
		t.Fatalf("TFT traits: %+v", tr)
	}
}

func TestTraitsTF2TForgivesOneDefection(t *testing.T) {
	sp := NewSpace(2)
	tr := AnalyzeTraits(TF2T(sp))
	if !tr.Nice {
		t.Error("TF2T should be nice")
	}
	if tr.Retaliatory {
		t.Error("TF2T does not retaliate against a lone defection")
	}
	if tr.ForgivenessRounds != 0 {
		t.Errorf("TF2T forgives immediately, got %d", tr.ForgivenessRounds)
	}
}

func TestTraitsHigherMemoryClassics(t *testing.T) {
	for _, mem := range []int{2, 3, 6} {
		sp := NewSpace(mem)
		if tr := AnalyzeTraits(TFT(sp)); !tr.Nice || !tr.Retaliatory || tr.ForgivenessRounds != 1 {
			t.Errorf("memory %d TFT traits: %+v", mem, tr)
		}
		if tr := AnalyzeTraits(Grim(sp)); !tr.Nice || !tr.Retaliatory || tr.Forgiving {
			t.Errorf("memory %d GRIM traits: %+v", mem, tr)
		}
		if tr := AnalyzeTraits(WSLS(sp)); !tr.Nice || !tr.Retaliatory {
			t.Errorf("memory %d WSLS traits: %+v", mem, tr)
		}
	}
}

func TestTraitsString(t *testing.T) {
	sp := NewSpace(1)
	if got := AnalyzeTraits(TFT(sp)).String(); got != "nice retaliatory forgiving(1)" {
		t.Fatalf("TFT label %q", got)
	}
	if got := AnalyzeTraits(Grim(sp)).String(); got != "nice retaliatory unforgiving" {
		t.Fatalf("GRIM label %q", got)
	}
	if got := AnalyzeTraits(AllC(sp)).String(); got != "nice forgiving" {
		t.Fatalf("ALLC label %q", got)
	}
	if got := AnalyzeTraits(AllD(sp)).String(); got != "not-nice retaliatory unforgiving" {
		t.Fatalf("ALLD label %q", got)
	}
}

func TestTraitsRandomStrategiesConsistent(t *testing.T) {
	// Structural invariants over random strategies: forgiveness rounds in
	// [-1, horizon); defection rate in [0,1]; nice implies opening with C.
	src := rng.New(41)
	for _, mem := range []int{1, 2, 4} {
		sp := NewSpace(mem)
		horizon := forgiveProbeHorizon(sp)
		for i := 0; i < 50; i++ {
			p := RandomPure(sp, src)
			tr := AnalyzeTraits(p)
			if tr.ForgivenessRounds < -1 || tr.ForgivenessRounds >= horizon {
				t.Fatalf("forgiveness %d out of range", tr.ForgivenessRounds)
			}
			if tr.DefectionRate < 0 || tr.DefectionRate > 1 {
				t.Fatalf("defection rate %v", tr.DefectionRate)
			}
			if tr.Nice && tr.FirstMove != Cooperate {
				t.Fatal("nice strategy opening with D")
			}
		}
	}
}

func TestItoa(t *testing.T) {
	for n, want := range map[int]string{0: "0", 7: "7", 42: "42", 1234: "1234"} {
		if got := itoa(n); got != want {
			t.Errorf("itoa(%d) = %q", n, got)
		}
	}
}
