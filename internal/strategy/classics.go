package strategy

import "fmt"

// This file constructs the named strategies discussed in the paper
// (§I, §III-B, §III-E): Always-Cooperate, Always-Defect, Tit-For-Tat,
// Generous Tit-For-Tat, Win-Stay Lose-Shift, Grim trigger, and
// Tit-For-Two-Tats, each generalised to any memory depth n by conditioning
// only on the rounds the rule actually needs.
//
// State layout reminder: the most recent round occupies the two low bits,
// (myMove<<1 | oppMove).

func oppLast(state uint32) Move { return Move(state & 1) }
func myLast(state uint32) Move  { return Move((state >> 1) & 1) }

// AllC returns the unconditional cooperator.
func AllC(sp Space) *Pure { return NewPure(sp) }

// AllD returns the unconditional defector.
func AllD(sp Space) *Pure {
	p := NewPure(sp)
	p.bits.SetAll()
	return p
}

// TFT returns Tit-For-Tat: copy the opponent's previous move. With the
// all-cooperate initial view it opens with C, as in the paper.
func TFT(sp Space) *Pure {
	p := NewPure(sp)
	for s := uint32(0); s < uint32(sp.NumStates()); s++ {
		p.SetMove(s, oppLast(s))
	}
	return p
}

// WSLS returns Win-Stay Lose-Shift (Pavlov): repeat your move after R or T
// (a "win"), switch after S or P. Equivalently the next move is
// myLast XOR oppLast. At memory one in the paper's Gray-order row labels
// this is the [0101] strategy of Fig. 2; in our binary order it is 0110.
func WSLS(sp Space) *Pure {
	p := NewPure(sp)
	for s := uint32(0); s < uint32(sp.NumStates()); s++ {
		p.SetMove(s, myLast(s)^oppLast(s))
	}
	return p
}

// Grim returns the grim trigger: cooperate only while the remembered window
// is spotless; one defection by either side (the strategy's own defection
// keeps the trigger latched within the finite window) means defect.
func Grim(sp Space) *Pure {
	p := NewPure(sp)
	for s := uint32(1); s < uint32(sp.NumStates()); s++ {
		p.SetMove(s, Defect)
	}
	return p
}

// TF2T returns Tit-For-Two-Tats: defect only after the opponent defected in
// each of the last two rounds. It panics for memory one, which cannot see
// two rounds back.
func TF2T(sp Space) *Pure {
	if sp.Memory() < 2 {
		panic("strategy: TF2T needs memory >= 2")
	}
	p := NewPure(sp)
	for s := uint32(0); s < uint32(sp.NumStates()); s++ {
		oppPrev := Move((s >> 2) & 1) // opponent's move two rounds ago
		if oppLast(s) == Defect && oppPrev == Defect {
			p.SetMove(s, Defect)
		}
	}
	return p
}

// GTFT returns Generous Tit-For-Tat as a mixed strategy: always cooperate
// after the opponent's C; after a D, forgive (cooperate) with probability g.
// Nowak & Sigmund's canonical generosity for the standard payoffs is g=1/3.
func GTFT(sp Space, g float64) *Mixed {
	m := NewMixed(sp)
	for s := uint32(0); s < uint32(sp.NumStates()); s++ {
		if oppLast(s) == Cooperate {
			m.SetProb(s, 1)
		} else {
			m.SetProb(s, clamp01(g))
		}
	}
	return m
}

// RandomMix returns the uniformly random mixed strategy (cooperate with
// probability 1/2 in every state).
func RandomMix(sp Space) *Mixed { return NewMixed(sp) }

// Named builds a classic strategy by name in the given space. Recognised
// names (case-sensitive): ALLC, ALLD, TFT, WSLS, GRIM, TF2T, GTFT, RANDOM.
func Named(name string, sp Space) (Strategy, error) {
	switch name {
	case "ALLC":
		return AllC(sp), nil
	case "ALLD":
		return AllD(sp), nil
	case "TFT":
		return TFT(sp), nil
	case "WSLS":
		return WSLS(sp), nil
	case "GRIM":
		return Grim(sp), nil
	case "TF2T":
		if sp.Memory() < 2 {
			return nil, fmt.Errorf("strategy: TF2T needs memory >= 2, have %d", sp.Memory())
		}
		return TF2T(sp), nil
	case "GTFT":
		return GTFT(sp, 1.0/3.0), nil
	case "RANDOM":
		return RandomMix(sp), nil
	}
	return nil, fmt.Errorf("strategy: unknown name %q", name)
}

// ClassicNames lists the names accepted by Named, in a stable order.
func ClassicNames() []string {
	return []string{"ALLC", "ALLD", "TFT", "WSLS", "GRIM", "TF2T", "GTFT", "RANDOM"}
}
