package strategy

import (
	"fmt"
	"strings"

	"repro/internal/bitset"
	"repro/internal/rng"
)

// Strategy is a behavioural rule: given the current state it yields the next
// move. Pure strategies answer deterministically; mixed strategies sample.
type Strategy interface {
	// Space returns the memory-n space the strategy is defined over.
	Space() Space
	// CooperateProb returns the probability of cooperating in the state.
	CooperateProb(state uint32) float64
	// Move returns the next move for the state, drawing randomness from src
	// when the strategy is mixed. Pure strategies ignore src.
	Move(state uint32, src *rng.Source) Move
	// Clone returns a deep copy.
	Clone() Strategy
	// Equal reports structural equality with another strategy.
	Equal(Strategy) bool
	// Fingerprint returns a 64-bit content hash for fast dedup/abundance.
	Fingerprint() uint64
	// String renders the response table, state 0 first.
	String() string
}

// Pure is a deterministic strategy: one move per state, bit-packed.
type Pure struct {
	space Space
	bits  *bitset.Bitset // bit k set => Defect in state k
}

// NewPure returns the all-cooperate pure strategy in the given space.
func NewPure(sp Space) *Pure {
	return &Pure{space: sp, bits: bitset.New(sp.NumStates())}
}

// PureFromBits builds a pure strategy from a bitset whose length must equal
// the space's state count. The bitset is used directly (not copied).
func PureFromBits(sp Space, b *bitset.Bitset) *Pure {
	if b.Len() != sp.NumStates() {
		panic(fmt.Sprintf("strategy: bitset length %d != %d states", b.Len(), sp.NumStates()))
	}
	return &Pure{space: sp, bits: b}
}

// PureFromMoves builds a pure strategy from an explicit move table
// (len must equal NumStates).
func PureFromMoves(sp Space, moves []Move) *Pure {
	if len(moves) != sp.NumStates() {
		panic(fmt.Sprintf("strategy: %d moves for %d states", len(moves), sp.NumStates()))
	}
	p := NewPure(sp)
	for i, m := range moves {
		if m == Defect {
			p.bits.Set(i, true)
		}
	}
	return p
}

// ParsePure parses a 0/1 response string ("0101" = memory-one WSLS in the
// paper's binary order) into a pure strategy of the matching space.
func ParsePure(s string) (*Pure, error) {
	n := 0
	for n = 1; n <= MaxMemory; n++ {
		if 1<<uint(2*n) == len(s) {
			break
		}
	}
	if n > MaxMemory {
		return nil, fmt.Errorf("strategy: response length %d is not 4^n for n in [1,%d]", len(s), MaxMemory)
	}
	b, err := bitset.ParseBits(s)
	if err != nil {
		return nil, err
	}
	return PureFromBits(NewSpace(n), b), nil
}

// Space returns the strategy's space.
func (p *Pure) Space() Space { return p.space }

// MoveAt returns the deterministic move in the state.
func (p *Pure) MoveAt(state uint32) Move {
	if p.bits.Get(int(state)) {
		return Defect
	}
	return Cooperate
}

// Move implements Strategy.
func (p *Pure) Move(state uint32, _ *rng.Source) Move { return p.MoveAt(state) }

// CooperateProb implements Strategy: 0 or 1.
func (p *Pure) CooperateProb(state uint32) float64 {
	if p.bits.Get(int(state)) {
		return 0
	}
	return 1
}

// SetMove assigns the move for a state.
func (p *Pure) SetMove(state uint32, m Move) { p.bits.Set(int(state), m == Defect) }

// Bits exposes the underlying response bitset (bit set = Defect).
func (p *Pure) Bits() *bitset.Bitset { return p.bits }

// Clone implements Strategy.
func (p *Pure) Clone() Strategy { return &Pure{space: p.space, bits: p.bits.Clone()} }

// Equal implements Strategy.
func (p *Pure) Equal(o Strategy) bool {
	q, ok := o.(*Pure)
	return ok && p.space == q.space && p.bits.Equal(q.bits)
}

// Fingerprint implements Strategy.
func (p *Pure) Fingerprint() uint64 { return p.bits.Fingerprint() }

// String implements Strategy: "0" cooperate / "1" defect per state.
func (p *Pure) String() string { return p.bits.String() }

// Hamming returns the number of states on which two pure strategies differ.
func (p *Pure) Hamming(o *Pure) int { return p.bits.Hamming(o.bits) }

// Mixed is a probabilistic strategy: per-state cooperation probability.
type Mixed struct {
	space Space
	p     []float64 // probability of cooperating in state k
}

// NewMixed returns a mixed strategy cooperating with probability 0.5
// everywhere.
func NewMixed(sp Space) *Mixed {
	m := &Mixed{space: sp, p: make([]float64, sp.NumStates())}
	for i := range m.p {
		m.p[i] = 0.5
	}
	return m
}

// MixedFromProbs builds a mixed strategy from explicit cooperation
// probabilities (len must equal NumStates; values clamped to [0,1]).
func MixedFromProbs(sp Space, probs []float64) *Mixed {
	if len(probs) != sp.NumStates() {
		panic(fmt.Sprintf("strategy: %d probs for %d states", len(probs), sp.NumStates()))
	}
	m := &Mixed{space: sp, p: make([]float64, len(probs))}
	for i, v := range probs {
		m.p[i] = clamp01(v)
	}
	return m
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Space returns the strategy's space.
func (m *Mixed) Space() Space { return m.space }

// CooperateProb implements Strategy.
func (m *Mixed) CooperateProb(state uint32) float64 { return m.p[state] }

// SetProb assigns the cooperation probability for a state (clamped).
func (m *Mixed) SetProb(state uint32, p float64) { m.p[state] = clamp01(p) }

// Probs exposes the underlying probability table.
func (m *Mixed) Probs() []float64 { return m.p }

// Move implements Strategy.
func (m *Mixed) Move(state uint32, src *rng.Source) Move {
	if src.Bernoulli(m.p[state]) {
		return Cooperate
	}
	return Defect
}

// Clone implements Strategy.
func (m *Mixed) Clone() Strategy {
	q := &Mixed{space: m.space, p: make([]float64, len(m.p))}
	copy(q.p, m.p)
	return q
}

// Equal implements Strategy.
func (m *Mixed) Equal(o Strategy) bool {
	q, ok := o.(*Mixed)
	if !ok || m.space != q.space {
		return false
	}
	for i := range m.p {
		if m.p[i] != q.p[i] {
			return false
		}
	}
	return true
}

// Fingerprint implements Strategy.
func (m *Mixed) Fingerprint() uint64 {
	h := uint64(m.space.NumStates())*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	for _, v := range m.p {
		// Quantise to 1e-6 so fingerprints are stable across serialisation.
		q := uint64(v * 1e6)
		h ^= q
		h *= 0x100000001B3
		h ^= h >> 31
	}
	return h
}

// String implements Strategy: probabilities to two decimals.
func (m *Mixed) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, v := range m.p {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%.2f", v)
	}
	sb.WriteByte(']')
	return sb.String()
}

// Quantize snaps each probability to the nearest of levels equally spaced
// values in [0,1]; with levels == 2 this produces the nearest pure strategy.
// It returns m for chaining. It panics if levels < 2.
func (m *Mixed) Quantize(levels int) *Mixed {
	if levels < 2 {
		panic("strategy: Quantize needs levels >= 2")
	}
	step := 1.0 / float64(levels-1)
	for i, v := range m.p {
		k := int(v/step + 0.5)
		m.p[i] = float64(k) * step
	}
	return m
}

// NearestPure returns the pure strategy obtained by rounding each state's
// cooperation probability (ties, p == 0.5, round toward defection so the
// map is deterministic).
func (m *Mixed) NearestPure() *Pure {
	p := NewPure(m.space)
	for i, v := range m.p {
		if v <= 0.5 {
			p.bits.Set(i, true)
		}
	}
	return p
}

// RandomPure draws a uniform pure strategy: every state's move is an
// independent fair coin. This is the paper's gen_new_strat for pure runs.
func RandomPure(sp Space, src *rng.Source) *Pure {
	p := NewPure(sp)
	words := p.bits.Words()
	for i := range words {
		words[i] = src.Uint64()
	}
	// Clear tail bits beyond NumStates (none in practice: 4^n is a multiple
	// of 64 for n >= 3 and < 64 only for n in {1,2}).
	if sp.NumStates() < 64 {
		words[0] &= 1<<uint(sp.NumStates()) - 1
	}
	return p
}

// RandomMixed draws a mixed strategy with independent Uniform[0,1]
// cooperation probabilities per state, the probabilistic gen_new_strat.
func RandomMixed(sp Space, src *rng.Source) *Mixed {
	m := &Mixed{space: sp, p: make([]float64, sp.NumStates())}
	for i := range m.p {
		m.p[i] = src.Float64()
	}
	return m
}

// PointMutatePure flips the moves of k distinct uniformly chosen states and
// returns a new strategy. It panics if k exceeds the state count.
func PointMutatePure(p *Pure, k int, src *rng.Source) *Pure {
	n := p.space.NumStates()
	if k < 0 || k > n {
		panic(fmt.Sprintf("strategy: PointMutatePure k=%d of %d states", k, n))
	}
	q := p.Clone().(*Pure)
	if k == 0 {
		return q
	}
	// Floyd's algorithm for k distinct samples without O(n) memory.
	chosen := make(map[int]struct{}, k)
	for j := n - k; j < n; j++ {
		t := src.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		q.bits.Flip(t)
	}
	return q
}

// PerturbMixed adds Normal(0, sigma) noise to every state's cooperation
// probability (clamped), returning a new strategy.
func PerturbMixed(m *Mixed, sigma float64, src *rng.Source) *Mixed {
	q := m.Clone().(*Mixed)
	for i := range q.p {
		q.p[i] = clamp01(q.p[i] + sigma*src.Normal())
	}
	return q
}

// EnumeratePure yields every pure strategy in the space in lexicographic
// order. It panics if the space has more than 2^20 strategies (memory one
// and, with care, memory two only; Table III of the paper is memory one).
func EnumeratePure(sp Space) []*Pure {
	if sp.NumStates() > 20 {
		panic("strategy: EnumeratePure space too large")
	}
	total := 1 << uint(sp.NumStates())
	out := make([]*Pure, total)
	for code := 0; code < total; code++ {
		p := NewPure(sp)
		for s := 0; s < sp.NumStates(); s++ {
			if code&(1<<uint(s)) != 0 {
				p.bits.Set(s, true)
			}
		}
		out[code] = p
	}
	return out
}
