package strategy

import (
	"testing"
	"testing/quick"
)

func TestNewSpaceSizes(t *testing.T) {
	// Table IV of the paper: number of states 4^n, strategies 2^(4^n).
	want := map[int]int{1: 4, 2: 16, 3: 64, 4: 256, 5: 1024, 6: 4096}
	for n, states := range want {
		sp := NewSpace(n)
		if sp.NumStates() != states {
			t.Errorf("memory %d: NumStates = %d, want %d", n, sp.NumStates(), states)
		}
		if sp.NumPureStrategiesLog2() != states {
			t.Errorf("memory %d: log2(#strategies) = %d, want %d", n, sp.NumPureStrategiesLog2(), states)
		}
		if sp.Memory() != n {
			t.Errorf("memory %d: Memory() = %d", n, sp.Memory())
		}
	}
}

func TestNewSpaceRejectsOutOfRange(t *testing.T) {
	for _, n := range []int{0, -1, 7, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSpace(%d) did not panic", n)
				}
			}()
			NewSpace(n)
		}()
	}
}

func TestNextStateMemoryOne(t *testing.T) {
	sp := NewSpace(1)
	cases := []struct {
		my, opp Move
		want    uint32
	}{
		{Cooperate, Cooperate, 0},
		{Cooperate, Defect, 1},
		{Defect, Cooperate, 2},
		{Defect, Defect, 3},
	}
	for _, c := range cases {
		if got := sp.NextState(0, c.my, c.opp); got != c.want {
			t.Errorf("NextState(0,%v,%v) = %d, want %d", c.my, c.opp, got, c.want)
		}
	}
}

func TestNextStateShiftsWindow(t *testing.T) {
	sp := NewSpace(2)
	s := sp.InitialState()
	s = sp.NextState(s, Defect, Cooperate) // round 1: DC
	s = sp.NextState(s, Cooperate, Defect) // round 2: CD
	// Window should now be [DC, CD] with CD most recent: bits 10 01 = 9.
	if s != 9 {
		t.Fatalf("state = %d, want 9", s)
	}
	s = sp.NextState(s, Defect, Defect) // DC drops off: [CD, DD] = 01 11 = 7
	if s != 7 {
		t.Fatalf("state = %d, want 7", s)
	}
}

func TestNextStateStaysInRange(t *testing.T) {
	f := func(seed uint32, moves []byte) bool {
		for n := 1; n <= MaxMemory; n++ {
			sp := NewSpace(n)
			s := seed % uint32(sp.NumStates())
			for _, b := range moves {
				s = sp.NextState(s, Move(b>>1&1), Move(b&1))
				if s >= uint32(sp.NumStates()) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpposingIsInvolution(t *testing.T) {
	for n := 1; n <= MaxMemory; n++ {
		sp := NewSpace(n)
		limit := uint32(sp.NumStates())
		step := uint32(1)
		if limit > 4096 {
			step = 7
		}
		for s := uint32(0); s < limit; s += step {
			if got := sp.Opposing(sp.Opposing(s)); got != s {
				t.Fatalf("memory %d: Opposing(Opposing(%d)) = %d", n, s, got)
			}
		}
	}
}

func TestOpposingSwapsMoves(t *testing.T) {
	sp := NewSpace(1)
	// State CD (me C, opp D) = 1; opponent sees DC = 2.
	if got := sp.Opposing(1); got != 2 {
		t.Fatalf("Opposing(CD) = %d, want 2 (DC)", got)
	}
	if got := sp.Opposing(0); got != 0 {
		t.Fatalf("Opposing(CC) = %d, want 0", got)
	}
	if got := sp.Opposing(3); got != 3 {
		t.Fatalf("Opposing(DD) = %d, want 3", got)
	}
}

func TestOpposingConsistentWithPlay(t *testing.T) {
	// Whatever joint move sequence occurs, the two players' states must
	// always be each other's Opposing.
	sp := NewSpace(3)
	sA, sB := sp.InitialState(), sp.InitialState()
	seq := []struct{ a, b Move }{
		{Defect, Cooperate}, {Cooperate, Cooperate}, {Defect, Defect},
		{Cooperate, Defect}, {Defect, Cooperate}, {Cooperate, Cooperate},
	}
	for i, mv := range seq {
		sA = sp.NextState(sA, mv.a, mv.b)
		sB = sp.NextState(sB, mv.b, mv.a)
		if sp.Opposing(sA) != sB {
			t.Fatalf("round %d: states not opposing: %d vs %d", i, sA, sB)
		}
	}
}

func TestDescribeState(t *testing.T) {
	sp := NewSpace(2)
	// [DC older, CD recent] = 0b1001 = 9
	if got, want := sp.DescribeState(9), "DC,CD"; got != want {
		t.Fatalf("DescribeState(9) = %q, want %q", got, want)
	}
	sp1 := NewSpace(1)
	if got, want := sp1.DescribeState(3), "DD"; got != want {
		t.Fatalf("DescribeState(3) = %q, want %q", got, want)
	}
}

func TestStateTable(t *testing.T) {
	sp := NewSpace(1)
	tbl := sp.StateTable()
	if len(tbl) != 4 {
		t.Fatalf("state table has %d rows", len(tbl))
	}
	want := [][]Move{
		{Cooperate, Cooperate},
		{Cooperate, Defect},
		{Defect, Cooperate},
		{Defect, Defect},
	}
	for i, row := range want {
		if len(tbl[i]) != 2 || tbl[i][0] != row[0] || tbl[i][1] != row[1] {
			t.Errorf("state %d view = %v, want %v", i, tbl[i], row)
		}
	}
}

func TestStateTableMemorySix(t *testing.T) {
	sp := NewSpace(6)
	tbl := sp.StateTable()
	if len(tbl) != 4096 {
		t.Fatalf("memory-6 state table has %d rows, want 4096", len(tbl))
	}
	for i, view := range tbl {
		if len(view) != 12 {
			t.Fatalf("state %d: view length %d, want 12", i, len(view))
		}
	}
	// Reconstruct state id from view to validate layout (oldest first).
	reconstruct := func(view []Move) uint32 {
		var s uint32
		for i := 0; i < len(view); i += 2 {
			s = s<<2 | RoundBits(view[i], view[i+1])
		}
		return s
	}
	for _, id := range []uint32{0, 1, 4095, 2048, 1234} {
		if got := reconstruct(tbl[id]); got != id {
			t.Fatalf("view of state %d reconstructs to %d", id, got)
		}
	}
}

func TestMoveString(t *testing.T) {
	if Cooperate.String() != "C" || Defect.String() != "D" {
		t.Fatal("Move.String mismatch")
	}
}

func TestRoundBits(t *testing.T) {
	if RoundBits(Defect, Cooperate) != 2 || RoundBits(Cooperate, Defect) != 1 {
		t.Fatal("RoundBits layout mismatch")
	}
}
