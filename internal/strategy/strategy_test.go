package strategy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestPureDefaultCooperates(t *testing.T) {
	p := NewPure(NewSpace(2))
	for s := uint32(0); s < 16; s++ {
		if p.MoveAt(s) != Cooperate {
			t.Fatalf("state %d: default move not C", s)
		}
		if p.CooperateProb(s) != 1 {
			t.Fatalf("state %d: CooperateProb != 1", s)
		}
	}
}

func TestPureSetMove(t *testing.T) {
	p := NewPure(NewSpace(1))
	p.SetMove(2, Defect)
	if p.MoveAt(2) != Defect || p.CooperateProb(2) != 0 {
		t.Fatal("SetMove(Defect) not reflected")
	}
	p.SetMove(2, Cooperate)
	if p.MoveAt(2) != Cooperate {
		t.Fatal("SetMove(Cooperate) not reflected")
	}
}

func TestPureFromMoves(t *testing.T) {
	sp := NewSpace(1)
	p := PureFromMoves(sp, []Move{Cooperate, Defect, Defect, Cooperate})
	if p.String() != "0110" {
		t.Fatalf("String = %q, want 0110", p.String())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-length moves did not panic")
		}
	}()
	PureFromMoves(sp, []Move{Cooperate})
}

func TestParsePure(t *testing.T) {
	p, err := ParsePure("0110")
	if err != nil {
		t.Fatal(err)
	}
	if p.Space().Memory() != 1 {
		t.Fatalf("memory = %d, want 1", p.Space().Memory())
	}
	if !p.Equal(WSLS(NewSpace(1))) {
		t.Fatal("0110 should be memory-one WSLS")
	}
	if _, err := ParsePure("010"); err == nil {
		t.Fatal("length-3 accepted")
	}
	if _, err := ParsePure("01x0"); err == nil {
		t.Fatal("junk accepted")
	}
	// Memory-2: 16 states.
	p2, err := ParsePure("0110011001100110")
	if err != nil || p2.Space().Memory() != 2 {
		t.Fatalf("memory-2 parse failed: %v", err)
	}
}

func TestPureCloneEqual(t *testing.T) {
	src := rng.New(1)
	p := RandomPure(NewSpace(3), src)
	q := p.Clone().(*Pure)
	if !p.Equal(q) {
		t.Fatal("clone not equal")
	}
	q.SetMove(5, Cooperate)
	q.SetMove(5, Defect)
	q.bits.Flip(7)
	if p.Equal(q) {
		t.Fatal("mutated clone still equal")
	}
	if p.Equal(NewMixed(NewSpace(3))) {
		t.Fatal("pure equal to mixed")
	}
}

func TestMixedBasics(t *testing.T) {
	m := NewMixed(NewSpace(1))
	for s := uint32(0); s < 4; s++ {
		if m.CooperateProb(s) != 0.5 {
			t.Fatal("default mixed prob != 0.5")
		}
	}
	m.SetProb(0, 2.0)
	if m.CooperateProb(0) != 1 {
		t.Fatal("SetProb did not clamp high")
	}
	m.SetProb(1, -3)
	if m.CooperateProb(1) != 0 {
		t.Fatal("SetProb did not clamp low")
	}
}

func TestMixedMoveSampling(t *testing.T) {
	m := NewMixed(NewSpace(1))
	m.SetProb(0, 0.25)
	src := rng.New(2)
	const n = 100000
	coop := 0
	for i := 0; i < n; i++ {
		if m.Move(0, src) == Cooperate {
			coop++
		}
	}
	got := float64(coop) / n
	if math.Abs(got-0.25) > 0.01 {
		t.Fatalf("cooperation rate %v, want ~0.25", got)
	}
}

func TestMixedFromProbsClamps(t *testing.T) {
	m := MixedFromProbs(NewSpace(1), []float64{-1, 0.5, 2, 1})
	want := []float64{0, 0.5, 1, 1}
	for i, w := range want {
		if m.CooperateProb(uint32(i)) != w {
			t.Fatalf("state %d: prob %v, want %v", i, m.CooperateProb(uint32(i)), w)
		}
	}
}

func TestMixedEqualFingerprint(t *testing.T) {
	a := MixedFromProbs(NewSpace(1), []float64{0.1, 0.2, 0.3, 0.4})
	b := a.Clone().(*Mixed)
	if !a.Equal(b) || a.Fingerprint() != b.Fingerprint() {
		t.Fatal("clone mismatch")
	}
	b.SetProb(2, 0.9)
	if a.Equal(b) || a.Fingerprint() == b.Fingerprint() {
		t.Fatal("difference not detected")
	}
}

func TestQuantize(t *testing.T) {
	m := MixedFromProbs(NewSpace(1), []float64{0.1, 0.49, 0.51, 0.9})
	m.Quantize(2)
	want := []float64{0, 0, 1, 1}
	for i, w := range want {
		if m.CooperateProb(uint32(i)) != w {
			t.Fatalf("state %d quantized to %v, want %v", i, m.CooperateProb(uint32(i)), w)
		}
	}
	m2 := MixedFromProbs(NewSpace(1), []float64{0.1, 0.4, 0.6, 0.8})
	m2.Quantize(3)
	want2 := []float64{0, 0.5, 0.5, 1}
	for i, w := range want2 {
		if m2.CooperateProb(uint32(i)) != w {
			t.Fatalf("3-level state %d: %v, want %v", i, m2.CooperateProb(uint32(i)), w)
		}
	}
}

func TestNearestPure(t *testing.T) {
	m := MixedFromProbs(NewSpace(1), []float64{0.9, 0.1, 0.5, 0.51})
	p := m.NearestPure()
	if got, want := p.String(), "0110"; got != want {
		t.Fatalf("NearestPure = %q, want %q", got, want)
	}
}

func TestRandomPureUniform(t *testing.T) {
	src := rng.New(3)
	sp := NewSpace(4) // 256 states
	const trials = 200
	ones := 0
	for i := 0; i < trials; i++ {
		ones += RandomPure(sp, src).Bits().Count()
	}
	rate := float64(ones) / float64(trials*sp.NumStates())
	if math.Abs(rate-0.5) > 0.02 {
		t.Fatalf("random pure defect rate %v, want ~0.5", rate)
	}
}

func TestRandomPureSmallSpaceTailClear(t *testing.T) {
	src := rng.New(4)
	for i := 0; i < 100; i++ {
		p := RandomPure(NewSpace(1), src)
		if p.Bits().Len() != 4 {
			t.Fatal("wrong length")
		}
		if c := p.Bits().Count(); c > 4 {
			t.Fatalf("count %d > 4: tail bits leaked", c)
		}
	}
}

func TestRandomMixedRange(t *testing.T) {
	src := rng.New(5)
	m := RandomMixed(NewSpace(3), src)
	for s := uint32(0); s < 64; s++ {
		p := m.CooperateProb(s)
		if p < 0 || p >= 1 {
			t.Fatalf("prob out of range: %v", p)
		}
	}
}

func TestPointMutatePure(t *testing.T) {
	src := rng.New(6)
	p := AllC(NewSpace(3))
	for _, k := range []int{0, 1, 5, 64} {
		q := PointMutatePure(p, k, src)
		if got := p.Hamming(q); got != k {
			t.Fatalf("k=%d: hamming = %d", k, got)
		}
		if k > 0 && p.Equal(q) {
			t.Fatal("mutation produced identical strategy")
		}
	}
	if p.Bits().Count() != 0 {
		t.Fatal("PointMutatePure modified its input")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("k > states did not panic")
		}
	}()
	PointMutatePure(p, 65, src)
}

func TestPerturbMixed(t *testing.T) {
	src := rng.New(7)
	m := MixedFromProbs(NewSpace(1), []float64{0, 0.5, 1, 0.5})
	q := PerturbMixed(m, 0.1, src)
	if m.Equal(q) {
		t.Fatal("perturbation changed nothing")
	}
	for s := uint32(0); s < 4; s++ {
		if p := q.CooperateProb(s); p < 0 || p > 1 {
			t.Fatalf("perturbed prob out of range: %v", p)
		}
		if m.CooperateProb(s) != []float64{0, 0.5, 1, 0.5}[s] {
			t.Fatal("PerturbMixed modified its input")
		}
	}
}

func TestEnumeratePureMemoryOne(t *testing.T) {
	// Table III: exactly 16 memory-one pure strategies, all distinct.
	all := EnumeratePure(NewSpace(1))
	if len(all) != 16 {
		t.Fatalf("enumerated %d, want 16", len(all))
	}
	seen := map[string]bool{}
	for _, p := range all {
		seen[p.String()] = true
	}
	if len(seen) != 16 {
		t.Fatalf("only %d distinct strategies", len(seen))
	}
	// Strategy 1 in Table III is all-C; strategy 16 is all-D.
	if !all[0].Equal(AllC(NewSpace(1))) {
		t.Fatal("first enumerated strategy is not ALLC")
	}
	if !all[15].Equal(AllD(NewSpace(1))) {
		t.Fatal("last enumerated strategy is not ALLD")
	}
}

func TestEnumeratePureTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EnumeratePure(memory 3) did not panic")
		}
	}()
	EnumeratePure(NewSpace(3))
}

// Property: fingerprints of random pure strategies rarely collide and equal
// strategies always agree.
func TestFingerprintProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		p := RandomPure(NewSpace(3), src)
		q := p.Clone().(*Pure)
		r := RandomPure(NewSpace(3), src)
		if p.Fingerprint() != q.Fingerprint() {
			return false
		}
		if p.Equal(r) != (p.Fingerprint() == r.Fingerprint() && p.Hamming(r) == 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
