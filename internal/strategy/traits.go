package strategy

// Axelrod's tournament analysis characterised successful strategies by
// behavioural traits — niceness, retaliation, forgiveness. This file
// computes those traits for arbitrary memory-n pure strategies by direct
// inspection of the response table and by probing play sequences, giving
// the framework's users the vocabulary the literature (and the paper's
// introduction) uses to discuss evolved strategies.

// Traits summarises a pure strategy's behavioural character.
type Traits struct {
	// Nice reports that the strategy never defects first: it cooperates in
	// every state whose remembered window contains no opponent defection.
	Nice bool
	// Retaliatory reports that the strategy answers a lone opponent
	// defection (after a clean history) with an immediate defection.
	Retaliatory bool
	// Forgiving reports that, after a single opponent defection followed
	// by contrition (the opponent cooperating ever after), the strategy
	// returns to cooperation within ForgivenessRounds.
	Forgiving bool
	// ForgivenessRounds is the number of rounds after a lone defection
	// until the strategy cooperates again given a contrite opponent
	// (0 = immediate, -1 = never within the probe horizon).
	ForgivenessRounds int
	// FirstMove is the opening move from the all-cooperate initial view.
	FirstMove Move
	// DefectionRate is the fraction of states answered with defection.
	DefectionRate float64
}

// forgiveProbeHorizon bounds the contrition probe; a strategy that has not
// re-cooperated after this many rounds against a contrite opponent is
// unforgiving (memory-n strategies have at most 4^n reachable states, so
// 4^n rounds suffice to detect a defection lock-in cycle).
func forgiveProbeHorizon(sp Space) int { return sp.NumStates() + 2*sp.Memory() + 2 }

// AnalyzeTraits computes the behavioural traits of a pure strategy.
func AnalyzeTraits(p *Pure) Traits {
	sp := p.Space()
	t := Traits{
		FirstMove:     p.MoveAt(sp.InitialState()),
		DefectionRate: float64(p.Bits().Count()) / float64(sp.NumStates()),
	}
	t.Nice = isNice(p)
	t.Retaliatory = isRetaliatory(p)
	t.ForgivenessRounds = forgivenessRounds(p)
	t.Forgiving = t.ForgivenessRounds >= 0
	return t
}

// isNice checks cooperation in every state whose opponent-move bits are all
// C (the opponent has not defected within the remembered window) AND whose
// own-move bits are all C (the strategy itself has been cooperating — a
// state with own defections after a clean opponent history is unreachable
// for a strategy that satisfies the condition, so restricting to clean own
// history makes the trait well-defined per Axelrod: never the first to
// defect).
func isNice(p *Pure) bool {
	sp := p.Space()
	// The only state with both clean opponent and clean own history is the
	// all-cooperate state 0 — plus, transitively, every state reachable
	// from it while the opponent keeps cooperating. Walk that closure.
	visited := map[uint32]bool{}
	stack := []uint32{sp.InitialState()}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[s] {
			continue
		}
		visited[s] = true
		my := p.MoveAt(s)
		if my == Defect {
			return false
		}
		stack = append(stack, sp.NextState(s, my, Cooperate))
	}
	return true
}

// isRetaliatory plays a clean history, injects one opponent defection, and
// checks the strategy's immediate response.
func isRetaliatory(p *Pure) bool {
	sp := p.Space()
	s := settleCleanHistory(p)
	my := p.MoveAt(s)
	s = sp.NextState(s, my, Defect) // the opponent's lone defection
	return p.MoveAt(s) == Defect
}

// forgivenessRounds plays a clean history, injects one opponent defection,
// then has the opponent cooperate forever; it returns how many rounds pass
// before the strategy cooperates again, or -1 if it never does within the
// probe horizon.
func forgivenessRounds(p *Pure) int {
	sp := p.Space()
	s := settleCleanHistory(p)
	my := p.MoveAt(s)
	s = sp.NextState(s, my, Defect)
	for round := 0; round < forgiveProbeHorizon(sp); round++ {
		my = p.MoveAt(s)
		if my == Cooperate {
			return round
		}
		s = sp.NextState(s, my, Cooperate)
	}
	return -1
}

// settleCleanHistory advances play against an always-cooperating opponent
// until the state stops changing or a cycle forms, returning the settled
// state — the natural "history before the incident" for trait probes.
func settleCleanHistory(p *Pure) uint32 {
	sp := p.Space()
	s := sp.InitialState()
	seen := map[uint32]bool{}
	for !seen[s] {
		seen[s] = true
		s = sp.NextState(s, p.MoveAt(s), Cooperate)
	}
	return s
}

// TraitName returns a compact human label, e.g. "nice retaliatory
// forgiving(1)" for TFT.
func (t Traits) String() string {
	out := ""
	if t.Nice {
		out += "nice"
	} else {
		out += "not-nice"
	}
	if t.Retaliatory {
		out += " retaliatory"
	}
	if t.Forgiving {
		out += " forgiving"
		if t.ForgivenessRounds > 0 {
			out += "(" + itoa(t.ForgivenessRounds) + ")"
		}
	} else {
		out += " unforgiving"
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
