package strategy

import (
	"testing"

	"repro/internal/rng"
)

func TestCanonicalFingerprintStableAcrossClones(t *testing.T) {
	src := rng.New(1)
	for n := 1; n <= 3; n++ {
		sp := NewSpace(n)
		p := RandomPure(sp, src)
		fp1, ok1 := CanonicalFingerprint(p)
		fp2, ok2 := CanonicalFingerprint(p.Clone())
		if !ok1 || !ok2 {
			t.Fatalf("memory-%d pure not fingerprintable", n)
		}
		if fp1 != fp2 {
			t.Fatalf("memory-%d clone fingerprint differs: %x vs %x", n, fp1, fp2)
		}
		m := RandomMixed(sp, src)
		mf1, _ := CanonicalFingerprint(m)
		mf2, _ := CanonicalFingerprint(m.Clone())
		if mf1 != mf2 {
			t.Fatalf("memory-%d mixed clone fingerprint differs", n)
		}
	}
}

func TestCanonicalFingerprintDegenerateMixedEqualsPure(t *testing.T) {
	src := rng.New(2)
	for n := 1; n <= 3; n++ {
		sp := NewSpace(n)
		p := RandomPure(sp, src)
		probs := make([]float64, sp.NumStates())
		for i := range probs {
			probs[i] = p.CooperateProb(uint32(i))
		}
		m := MixedFromProbs(sp, probs)
		if !IsDeterministic(m) {
			t.Fatalf("memory-%d 0/1 mixed not deterministic", n)
		}
		pf, _ := CanonicalFingerprint(p)
		mf, _ := CanonicalFingerprint(m)
		if pf != mf {
			t.Fatalf("memory-%d degenerate mixed %x != pure twin %x", n, mf, pf)
		}
	}
}

func TestCanonicalFingerprintSeparatesMutations(t *testing.T) {
	src := rng.New(3)
	sp := NewSpace(2)
	p := RandomPure(sp, src)
	pf, _ := CanonicalFingerprint(p)
	for s := 0; s < sp.NumStates(); s++ {
		q := p.Clone().(*Pure)
		q.Bits().Flip(s)
		qf, _ := CanonicalFingerprint(q)
		if qf == pf {
			t.Fatalf("flipping state %d did not change the fingerprint", s)
		}
	}
	m := RandomMixed(sp, src)
	mf, _ := CanonicalFingerprint(m)
	q := m.Clone().(*Mixed)
	q.SetProb(3, q.CooperateProb(3)/2+0.25)
	if qf, _ := CanonicalFingerprint(q); qf == mf && !m.Equal(q) {
		t.Fatal("perturbing a mixed probability did not change the fingerprint")
	}
}

func TestCanonicalFingerprintSeparatesMemoryAndKind(t *testing.T) {
	// All-cooperate tables at different depths share the (empty) bit
	// pattern in the low words; the memory tag must still separate them.
	f1, _ := CanonicalFingerprint(NewPure(NewSpace(1)))
	f2, _ := CanonicalFingerprint(NewPure(NewSpace(2)))
	if f1 == f2 {
		t.Fatal("memory-1 and memory-2 AllC share a fingerprint")
	}
	// A non-degenerate mixed table must not collide with any pure table it
	// shadows bitwise.
	m := MixedFromProbs(NewSpace(1), []float64{0.5, 0.5, 0.5, 0.5})
	mf, _ := CanonicalFingerprint(m)
	pf, _ := CanonicalFingerprint(NewPure(NewSpace(1)))
	if mf == pf {
		t.Fatal("mixed table collides with AllC")
	}
}

func TestIsDeterministic(t *testing.T) {
	sp := NewSpace(1)
	if !IsDeterministic(NewPure(sp)) {
		t.Fatal("pure not deterministic")
	}
	if IsDeterministic(NewMixed(sp)) {
		t.Fatal("0.5-mixed reported deterministic")
	}
	if !IsDeterministic(MixedFromProbs(sp, []float64{0, 1, 1, 0})) {
		t.Fatal("0/1 mixed not deterministic")
	}
}

// FuzzFingerprint drives the cache-key determinism contract: equal
// behaviour hashes equal (pure table == degenerate mixed twin, clones ==
// originals) and observable mutations hash differently.
func FuzzFingerprint(f *testing.F) {
	f.Add(uint8(1), uint64(0), uint8(0))
	f.Add(uint8(2), uint64(0xDEADBEEF), uint8(7))
	f.Add(uint8(3), uint64(^uint64(0)), uint8(63))
	f.Fuzz(func(t *testing.T, mem uint8, word uint64, flip uint8) {
		n := int(mem)%3 + 1
		sp := NewSpace(n)
		p := NewPure(sp)
		for s := 0; s < sp.NumStates(); s++ {
			if word&(1<<uint(s%64)) != 0 {
				p.SetMove(uint32(s), Defect)
			}
			word = word*6364136223846793005 + 1442695040888963407
		}
		fp, ok := CanonicalFingerprint(p)
		if !ok {
			t.Fatal("pure strategy not fingerprintable")
		}
		if fp2, _ := CanonicalFingerprint(p.Clone()); fp2 != fp {
			t.Fatal("clone fingerprint differs")
		}
		// Equal behaviour, different representation: the degenerate mixed
		// twin must hash identically.
		probs := make([]float64, sp.NumStates())
		for i := range probs {
			probs[i] = p.CooperateProb(uint32(i))
		}
		if mf, _ := CanonicalFingerprint(MixedFromProbs(sp, probs)); mf != fp {
			t.Fatalf("degenerate mixed twin fingerprint %x != pure %x", mf, fp)
		}
		// A mutated table must hash differently.
		q := p.Clone().(*Pure)
		q.Bits().Flip(int(flip) % sp.NumStates())
		if qf, _ := CanonicalFingerprint(q); qf == fp {
			t.Fatal("mutated table fingerprint collides with original")
		}
	})
}
