// Package strategy implements memory-n behavioural strategies for the
// Iterated Prisoner's Dilemma.
//
// A *state* encodes the joint moves of the last n rounds. Each round
// contributes two bits, (myMove<<1 | oppMove), with the most recent round in
// the two low-order bits, so a memory-n space has 4^n states. (The paper's
// Table V lists memory-one states in the Gray-like order 00,01,11,10; we use
// the natural binary order 00,01,10,11 and document the mapping — the
// dynamics are identical, only row labels differ.)
//
// A *pure* strategy assigns a deterministic move to every state (a point in
// {C,D}^(4^n), stored as a bitset: 2^16 strategies at memory two, 2^4096 at
// memory six). A *mixed* strategy assigns each state a probability of
// cooperating.
package strategy

import "fmt"

// Move is a single play in the Prisoner's Dilemma.
type Move uint8

const (
	// Cooperate is move C, encoded 0 as in the paper.
	Cooperate Move = 0
	// Defect is move D, encoded 1 as in the paper.
	Defect Move = 1
)

// String returns "C" or "D".
func (m Move) String() string {
	if m == Cooperate {
		return "C"
	}
	return "D"
}

// MaxMemory is the largest supported memory depth. Memory six gives
// 4^6 = 4096 states and 2^4096 pure strategies, the paper's maximum.
const MaxMemory = 6

// Space describes a memory-n strategy space.
type Space struct {
	memory    int
	numStates int
	mask      uint32 // low 2n bits
}

// NewSpace returns the memory-n space. It panics unless 1 <= n <= MaxMemory.
func NewSpace(n int) Space {
	if n < 1 || n > MaxMemory {
		panic(fmt.Sprintf("strategy: memory %d out of range [1,%d]", n, MaxMemory))
	}
	return Space{memory: n, numStates: 1 << uint(2*n), mask: 1<<uint(2*n) - 1}
}

// Memory returns the number of remembered rounds n.
func (s Space) Memory() int { return s.memory }

// NumStates returns 4^n.
func (s Space) NumStates() int { return s.numStates }

// NumPureStrategiesLog2 returns log2 of the number of pure strategies,
// i.e. the number of states (Table IV of the paper: 2^4 at memory one up to
// 2^4096 at memory six).
func (s Space) NumPureStrategiesLog2() int { return s.numStates }

// RoundBits packs one round's pair of moves into two bits.
func RoundBits(my, opp Move) uint32 { return uint32(my)<<1 | uint32(opp) }

// NextState advances a state by one round: the oldest round's bits are
// shifted out, the new round (my, opp) enters the low bits.
func (s Space) NextState(state uint32, my, opp Move) uint32 {
	return ((state << 2) | RoundBits(my, opp)) & s.mask
}

// InitialState is the state before any round is played: the view is
// initialised to mutual cooperation for all n remembered rounds, matching
// the paper's current_view zero-initialisation (so TFT opens with C).
func (s Space) InitialState() uint32 { return 0 }

// Opposing converts a state seen by one player into the state seen by the
// opponent: within every round the two move bits swap.
func (s Space) Opposing(state uint32) uint32 {
	// Swap odd (my) and even (opp) bit lanes.
	my := (state >> 1) & 0x55555555
	opp := state & 0x55555555
	return ((opp<<1 | my) & s.mask)
}

// DescribeState renders a state as n rounds "my/opp", oldest first,
// e.g. memory-2 state for (CD then DC) -> "CD,DC".
func (s Space) DescribeState(state uint32) string {
	buf := make([]byte, 0, 3*s.memory)
	for r := s.memory - 1; r >= 0; r-- {
		pair := (state >> uint(2*r)) & 3
		my := Move(pair >> 1)
		opp := Move(pair & 1)
		buf = append(buf, my.String()[0], opp.String()[0])
		if r > 0 {
			buf = append(buf, ',')
		}
	}
	return string(buf)
}

// StateTable materialises the global `states` array of the paper: the view
// (as move pairs, oldest round first) for every state ID. It is the table
// the paper's find_state searches linearly each round; we expose it so the
// paper-faithful engine (and its cost profile) can be reproduced exactly.
func (s Space) StateTable() [][]Move {
	tbl := make([][]Move, s.numStates)
	for id := 0; id < s.numStates; id++ {
		view := make([]Move, 0, 2*s.memory)
		for r := s.memory - 1; r >= 0; r-- {
			pair := (uint32(id) >> uint(2*r)) & 3
			view = append(view, Move(pair>>1), Move(pair&1))
		}
		tbl[id] = view
	}
	return tbl
}
