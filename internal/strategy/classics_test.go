package strategy

import (
	"testing"

	"repro/internal/rng"
)

func TestAllCAllD(t *testing.T) {
	for n := 1; n <= MaxMemory; n++ {
		sp := NewSpace(n)
		c, d := AllC(sp), AllD(sp)
		if c.Bits().Count() != 0 {
			t.Fatalf("memory %d: ALLC defects somewhere", n)
		}
		if d.Bits().Count() != sp.NumStates() {
			t.Fatalf("memory %d: ALLD cooperates somewhere", n)
		}
	}
}

func TestTFTMemoryOne(t *testing.T) {
	p := TFT(NewSpace(1))
	// States: CC=0 -> C, CD=1 -> D, DC=2 -> C, DD=3 -> D.
	if got, want := p.String(), "0101"; got != want {
		t.Fatalf("TFT = %q, want %q", got, want)
	}
}

func TestTFTHigherMemoryIgnoresOlderRounds(t *testing.T) {
	sp := NewSpace(3)
	p := TFT(sp)
	for s := uint32(0); s < uint32(sp.NumStates()); s++ {
		want := Move(s & 1)
		if p.MoveAt(s) != want {
			t.Fatalf("TFT state %d: move %v, want %v", s, p.MoveAt(s), want)
		}
	}
}

func TestWSLSMemoryOne(t *testing.T) {
	p := WSLS(NewSpace(1))
	// Binary order CC,CD,DC,DD: stay C, shift to D, stay D, shift to C.
	if got, want := p.String(), "0110"; got != want {
		t.Fatalf("WSLS = %q, want %q", got, want)
	}
	// Table V of the paper lists states in order 00,01,11,10 with strategy
	// column 0,1,0,1 — verify our encoding matches under that reordering.
	paperOrder := []uint32{0, 1, 3, 2}
	paperMoves := []Move{Cooperate, Defect, Cooperate, Defect}
	for i, s := range paperOrder {
		if p.MoveAt(s) != paperMoves[i] {
			t.Fatalf("paper row %d (state %d): move %v, want %v", i, s, p.MoveAt(s), paperMoves[i])
		}
	}
}

func TestWSLSSelfPlayRecoversFromError(t *testing.T) {
	// The defining WSLS property (paper §III-E): after a single erroneous
	// defection, two WSLS players return to mutual cooperation.
	sp := NewSpace(1)
	p := WSLS(sp)
	sA := sp.NextState(sp.InitialState(), Defect, Cooperate) // A mis-played D
	sB := sp.Opposing(sA)
	// Next round: both shift/stay per WSLS.
	a, b := p.MoveAt(sA), p.MoveAt(sB)
	if a != Defect || b != Defect {
		t.Fatalf("round after error: %v,%v; WSLS should give D,D", a, b)
	}
	sA = sp.NextState(sA, a, b)
	sB = sp.NextState(sB, b, a)
	a, b = p.MoveAt(sA), p.MoveAt(sB)
	if a != Cooperate || b != Cooperate {
		t.Fatalf("two rounds after error: %v,%v; WSLS should restore C,C", a, b)
	}
}

func TestTFTSelfPlayLockedByError(t *testing.T) {
	// Contrast (paper §III-E): one error locks TFT pairs into alternation,
	// never returning to mutual cooperation.
	sp := NewSpace(1)
	p := TFT(sp)
	sA := sp.NextState(sp.InitialState(), Defect, Cooperate)
	sB := sp.Opposing(sA)
	mutualC := 0
	for r := 0; r < 50; r++ {
		a, b := p.MoveAt(sA), p.MoveAt(sB)
		if a == Cooperate && b == Cooperate {
			mutualC++
		}
		sA = sp.NextState(sA, a, b)
		sB = sp.NextState(sB, b, a)
	}
	if mutualC != 0 {
		t.Fatalf("TFT pair recovered to mutual cooperation %d times after error", mutualC)
	}
}

func TestGrim(t *testing.T) {
	sp := NewSpace(2)
	g := Grim(sp)
	if g.MoveAt(0) != Cooperate {
		t.Fatal("Grim defects on spotless history")
	}
	for s := uint32(1); s < uint32(sp.NumStates()); s++ {
		if g.MoveAt(s) != Defect {
			t.Fatalf("Grim cooperates in tainted state %d", s)
		}
	}
}

func TestTF2T(t *testing.T) {
	sp := NewSpace(2)
	p := TF2T(sp)
	// Opp defected only last round -> still cooperate.
	s := sp.NextState(sp.InitialState(), Cooperate, Defect)
	if p.MoveAt(s) != Cooperate {
		t.Fatal("TF2T defected after a single defection")
	}
	// Opp defected twice -> defect.
	s = sp.NextState(s, Cooperate, Defect)
	if p.MoveAt(s) != Defect {
		t.Fatal("TF2T did not defect after two defections")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("TF2T memory-1 did not panic")
		}
	}()
	TF2T(NewSpace(1))
}

func TestGTFT(t *testing.T) {
	sp := NewSpace(1)
	g := GTFT(sp, 1.0/3.0)
	if g.CooperateProb(0) != 1 || g.CooperateProb(2) != 1 {
		t.Fatal("GTFT does not always cooperate after opponent C")
	}
	for _, s := range []uint32{1, 3} {
		if p := g.CooperateProb(s); p < 0.33 || p > 0.34 {
			t.Fatalf("GTFT generosity = %v, want 1/3", p)
		}
	}
}

func TestNamed(t *testing.T) {
	sp := NewSpace(2)
	for _, name := range ClassicNames() {
		s, err := Named(name, sp)
		if err != nil {
			t.Fatalf("Named(%q): %v", name, err)
		}
		if s.Space() != sp {
			t.Fatalf("Named(%q) wrong space", name)
		}
	}
	if _, err := Named("BOGUS", sp); err == nil {
		t.Fatal("unknown name accepted")
	}
	if _, err := Named("TF2T", NewSpace(1)); err == nil {
		t.Fatal("TF2T at memory one accepted")
	}
}

func TestClassicsDistinct(t *testing.T) {
	sp := NewSpace(2)
	pures := []*Pure{AllC(sp), AllD(sp), TFT(sp), WSLS(sp), Grim(sp), TF2T(sp)}
	names := []string{"ALLC", "ALLD", "TFT", "WSLS", "GRIM", "TF2T"}
	for i := range pures {
		for j := i + 1; j < len(pures); j++ {
			if pures[i].Equal(pures[j]) {
				t.Errorf("%s == %s at memory 2", names[i], names[j])
			}
		}
	}
}

func TestClassicsOpenWithCooperationExceptAllD(t *testing.T) {
	src := rng.New(1)
	for n := 1; n <= 3; n++ {
		sp := NewSpace(n)
		for _, name := range []string{"ALLC", "TFT", "WSLS", "GRIM", "GTFT"} {
			s, err := Named(name, sp)
			if err != nil {
				t.Fatal(err)
			}
			if s.Move(sp.InitialState(), src) != Cooperate {
				t.Errorf("memory %d: %s opens with D", n, name)
			}
		}
		d, _ := Named("ALLD", sp)
		if d.Move(sp.InitialState(), src) != Defect {
			t.Errorf("memory %d: ALLD opens with C", n)
		}
	}
}
