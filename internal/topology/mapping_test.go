package topology

import "testing"

func allMappings(t Torus) []Mapping { return DefaultMappings(t) }

func TestMappingsAreBijections(t *testing.T) {
	tor, _ := NewTorus(4, 4, 4)
	for _, m := range allMappings(tor) {
		seen := map[Coord]bool{}
		for r := 0; r < tor.Nodes(); r++ {
			c := m.Coord(tor, r)
			if c.X < 0 || c.X >= tor.DX || c.Y < 0 || c.Y >= tor.DY || c.Z < 0 || c.Z >= tor.DZ {
				t.Fatalf("%s: rank %d mapped out of torus: %+v", m.Name(), r, c)
			}
			if seen[c] {
				t.Fatalf("%s: coordinate %+v assigned twice", m.Name(), c)
			}
			seen[c] = true
		}
		if len(seen) != tor.Nodes() {
			t.Fatalf("%s: %d coords for %d nodes", m.Name(), len(seen), tor.Nodes())
		}
	}
}

func TestMappingsPanicOutOfRange(t *testing.T) {
	tor, _ := NewTorus(2, 2, 2)
	for _, m := range allMappings(tor) {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: out-of-range rank did not panic", m.Name())
				}
			}()
			m.Coord(tor, tor.Nodes())
		}()
	}
}

func TestSnakeConsecutiveRanksAdjacent(t *testing.T) {
	tor, _ := NewTorus(4, 4, 4)
	m := SnakeMapping{}
	for r := 1; r < tor.Nodes(); r++ {
		a := m.Coord(tor, r-1)
		b := m.Coord(tor, r)
		d := axisDist(a.X, b.X, tor.DX) + axisDist(a.Y, b.Y, tor.DY) + axisDist(a.Z, b.Z, tor.DZ)
		if d != 1 {
			t.Fatalf("snake: ranks %d,%d are %d hops apart (%+v vs %+v)", r-1, r, d, a, b)
		}
	}
}

func TestZYXTransposesXYZ(t *testing.T) {
	tor, _ := NewTorus(3, 4, 5)
	a := XYZMapping{}.Coord(tor, 7)
	b := ZYXMapping{}.Coord(tor, 7)
	if a == b && tor.DX != tor.DZ {
		t.Fatal("zyx should differ from xyz on an asymmetric torus")
	}
	// zyx fills Z fastest: ranks 0..DZ-1 share X and Y.
	for r := 0; r < tor.DZ; r++ {
		c := ZYXMapping{}.Coord(tor, r)
		if c.X != 0 || c.Y != 0 || c.Z != r {
			t.Fatalf("zyx rank %d = %+v", r, c)
		}
	}
}

func TestBlockedMappingValidation(t *testing.T) {
	tor, _ := NewTorus(4, 4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("zero block dim did not panic")
		}
	}()
	BlockedMapping{BX: 0, BY: 2, BZ: 2}.Coord(tor, 0)
}

func TestNatureTrafficCostValidation(t *testing.T) {
	tor, _ := NewTorus(2, 2, 2)
	if _, err := NatureTrafficCost(tor, XYZMapping{}, 1); err == nil {
		t.Fatal("1 rank accepted")
	}
	if _, err := NatureTrafficCost(tor, XYZMapping{}, 9); err == nil {
		t.Fatal("oversubscribed partition accepted")
	}
	if _, err := NatureTrafficCost(tor, XYZMapping{}, 8); err != nil {
		t.Fatal(err)
	}
}

func TestMappingStudyPartialPartition(t *testing.T) {
	// The future-work scenario: a partition that does not fill the torus
	// (a non-power-of-two node count, the paper's 72-rack case). The study
	// machinery must rank the candidates; the empirical finding this test
	// pins down is itself informative: for THIS application's traffic
	// (worker -> Nature point-to-point plus binomial-tree collectives) the
	// lexicographic orders are already near-optimal, because the tree's
	// power-of-two partner strides align with row/plane sizes, while the
	// serpentine order's reversals *break* that alignment — so snake is
	// measurably worse here despite its consecutive-rank adjacency.
	tor, _ := NewTorus(8, 8, 8)
	ranks := 9 * 8 * 4 // 288 of 512 nodes: a "72-rack-like" partial fill
	xyz, err := NatureTrafficCost(tor, XYZMapping{}, ranks)
	if err != nil {
		t.Fatal(err)
	}
	snake, err := NatureTrafficCost(tor, SnakeMapping{}, ranks)
	if err != nil {
		t.Fatal(err)
	}
	if xyz > snake {
		t.Fatalf("expected xyz (%v) <= snake (%v) for tree-aligned traffic", xyz, snake)
	}
	// All candidates stay within a modest band — mappings shift constants,
	// not asymptotics.
	if snake > 1.25*xyz {
		t.Fatalf("snake/xyz ratio implausible: %v vs %v", snake, xyz)
	}
}

func TestCompareMappingsCoversCandidates(t *testing.T) {
	tor, _ := NewTorus(4, 4, 4)
	costs, err := CompareMappings(tor, 48, DefaultMappings(tor))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"xyz", "zyx", "snake", "blocked2x2x2"} {
		if _, ok := costs[name]; !ok {
			t.Fatalf("mapping %s missing from comparison", name)
		}
		if costs[name] <= 0 {
			t.Fatalf("mapping %s has non-positive cost", name)
		}
	}
}

func TestFullPartitionCostsEqualish(t *testing.T) {
	// On a full power-of-two partition all bijective mappings see the same
	// node set, so costs differ only through rank placement; sanity-check
	// they are within a small factor of each other.
	tor, _ := NewTorus(4, 4, 4)
	costs, err := CompareMappings(tor, tor.Nodes(), DefaultMappings(tor))
	if err != nil {
		t.Fatal(err)
	}
	min, max := 1e18, 0.0
	for _, c := range costs {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max > 3*min {
		t.Fatalf("full-partition mapping costs implausibly spread: %v", costs)
	}
}

func TestBitsLen(t *testing.T) {
	for v, want := range map[uint]int{1: 1, 2: 2, 3: 2, 4: 3, 255: 8, 256: 9} {
		if got := bitsLen(v); got != want {
			t.Errorf("bitsLen(%d) = %d, want %d", v, got, want)
		}
	}
}
