// Package topology models the interconnect geometry of Blue Gene-class
// machines: a 3D torus for point-to-point traffic plus a dedicated
// collective (tree) network, as described in the paper's §V and the Blue
// Gene overview papers it cites.
//
// The performance model uses this package to convert logical communication
// (messages between ranks) into physical cost (hops on the torus, levels of
// the collective tree), including the paper's observed penalty for
// non-power-of-two partitions (§VI-D: scaling from 64 to 72 racks cost 15%).
package topology

import (
	"fmt"
	"math"
)

// Coord is a location on the 3D torus.
type Coord struct {
	X, Y, Z int
}

// Torus is a 3D torus of dimensions X*Y*Z nodes.
type Torus struct {
	DX, DY, DZ int
}

// NewTorus constructs a torus; all dimensions must be positive.
func NewTorus(dx, dy, dz int) (Torus, error) {
	if dx < 1 || dy < 1 || dz < 1 {
		return Torus{}, fmt.Errorf("topology: invalid torus %dx%dx%d", dx, dy, dz)
	}
	return Torus{DX: dx, DY: dy, DZ: dz}, nil
}

// Nodes returns the node count.
func (t Torus) Nodes() int { return t.DX * t.DY * t.DZ }

// CoordOf maps a rank to its torus coordinate in XYZ order (X fastest),
// the default Blue Gene mapping. It panics if the rank is out of range.
func (t Torus) CoordOf(rank int) Coord {
	if rank < 0 || rank >= t.Nodes() {
		panic(fmt.Sprintf("topology: rank %d out of torus of %d nodes", rank, t.Nodes()))
	}
	return Coord{
		X: rank % t.DX,
		Y: (rank / t.DX) % t.DY,
		Z: rank / (t.DX * t.DY),
	}
}

// RankOf is the inverse of CoordOf. Coordinates are wrapped torus-style.
func (t Torus) RankOf(c Coord) int {
	x := mod(c.X, t.DX)
	y := mod(c.Y, t.DY)
	z := mod(c.Z, t.DZ)
	return x + t.DX*(y+t.DY*z)
}

func mod(a, n int) int {
	m := a % n
	if m < 0 {
		m += n
	}
	return m
}

// axisDist is the wrap-around distance along one torus axis.
func axisDist(a, b, dim int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if wrap := dim - d; wrap < d {
		return wrap
	}
	return d
}

// Hops returns the minimal hop count between two ranks under dimension-order
// routing on the torus.
func (t Torus) Hops(a, b int) int {
	ca, cb := t.CoordOf(a), t.CoordOf(b)
	return axisDist(ca.X, cb.X, t.DX) + axisDist(ca.Y, cb.Y, t.DY) + axisDist(ca.Z, cb.Z, t.DZ)
}

// Diameter returns the maximum hop distance between any two nodes.
func (t Torus) Diameter() int {
	return t.DX/2 + t.DY/2 + t.DZ/2
}

// MeanHops returns the expected hop distance between two uniformly random
// nodes — the quantity that prices the paper's random (teacher, learner)
// fitness returns to the Nature Agent. For even dimension d the mean
// per-axis distance is d/4; for odd d it is (d^2-1)/(4d).
func (t Torus) MeanHops() float64 {
	return meanAxis(t.DX) + meanAxis(t.DY) + meanAxis(t.DZ)
}

func meanAxis(d int) float64 {
	if d == 1 {
		return 0
	}
	if d%2 == 0 {
		return float64(d) / 4
	}
	return float64(d*d-1) / float64(4*d)
}

// TreeDepth returns the depth of the binomial/collective tree over n nodes:
// ceil(log2 n); 0 for a single node.
func TreeDepth(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// IsPowerOfTwo reports whether n is a power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// BalancedShape factors n nodes into the most cubic torus X>=Y>=Z
// achievable with integer factors, preferring near-equal dimensions —
// the shape machine partitions approximate. Works for any n >= 1.
func BalancedShape(n int) Torus {
	if n < 1 {
		panic("topology: BalancedShape needs n >= 1")
	}
	best := Torus{DX: n, DY: 1, DZ: 1}
	bestScore := shapeScore(best)
	for z := 1; z*z*z <= n; z++ {
		if n%z != 0 {
			continue
		}
		m := n / z
		for y := z; y*y <= m; y++ {
			if m%y != 0 {
				continue
			}
			cand := Torus{DX: m / y, DY: y, DZ: z}
			if s := shapeScore(cand); s < bestScore {
				best, bestScore = cand, s
			}
		}
	}
	return best
}

// shapeScore is lower for more cubic shapes (smaller surface/volume).
func shapeScore(t Torus) float64 {
	return float64(t.Diameter())
}

// MappingPenalty returns the multiplicative slowdown the paper attributes
// to partition shape: 1.0 for power-of-two node counts (which map cleanly
// onto the torus), rising toward the paper's observed 15% for the full
// 72-rack 294,912-processor system (§VI-D). The penalty scales with how far
// the count is from the next power of two below it.
func MappingPenalty(nodes int) float64 {
	if nodes < 1 {
		panic("topology: MappingPenalty needs nodes >= 1")
	}
	if IsPowerOfTwo(nodes) {
		return 1.0
	}
	lower := 1
	for lower*2 <= nodes {
		lower *= 2
	}
	// Fraction of the machine hanging beyond the clean power-of-two
	// sub-partition; 72 racks vs 64 gives 8/64 = 0.125 excess and the paper
	// reports ~15% degradation, so a slope of ~1.2 reproduces it.
	excess := float64(nodes-lower) / float64(lower)
	return 1.0 + 1.2*excess
}

// BlueGene partition catalogue (nodes per rack differs between L and P in
// cores; we model processor counts as the paper reports them).
const (
	// BGPProcsPerRack is Blue Gene/P: 1,024 quad-core nodes = 4,096
	// processors per rack.
	BGPProcsPerRack = 4096
	// BGLProcsPerRack is Blue Gene/L: 1,024 dual-core nodes = 2,048
	// processors per rack.
	BGLProcsPerRack = 2048
)

// RacksFor returns how many BG/P racks hold the given processor count
// (rounded up).
func RacksFor(procs, procsPerRack int) int {
	if procs < 1 || procsPerRack < 1 {
		panic("topology: RacksFor needs positive arguments")
	}
	return (procs + procsPerRack - 1) / procsPerRack
}
