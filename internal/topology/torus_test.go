package topology

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewTorusValidation(t *testing.T) {
	if _, err := NewTorus(0, 1, 1); err == nil {
		t.Fatal("zero dimension accepted")
	}
	tor, err := NewTorus(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tor.Nodes() != 32 {
		t.Fatalf("nodes = %d", tor.Nodes())
	}
}

func TestCoordRankRoundTrip(t *testing.T) {
	tor, _ := NewTorus(3, 5, 7)
	for r := 0; r < tor.Nodes(); r++ {
		if got := tor.RankOf(tor.CoordOf(r)); got != r {
			t.Fatalf("rank %d round-trips to %d", r, got)
		}
	}
}

func TestCoordOfPanics(t *testing.T) {
	tor, _ := NewTorus(2, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	tor.CoordOf(8)
}

func TestRankOfWraps(t *testing.T) {
	tor, _ := NewTorus(4, 4, 4)
	if tor.RankOf(Coord{X: -1, Y: 0, Z: 0}) != tor.RankOf(Coord{X: 3, Y: 0, Z: 0}) {
		t.Fatal("negative wrap failed")
	}
	if tor.RankOf(Coord{X: 5, Y: 4, Z: 4}) != tor.RankOf(Coord{X: 1, Y: 0, Z: 0}) {
		t.Fatal("positive wrap failed")
	}
}

func TestHopsBasics(t *testing.T) {
	tor, _ := NewTorus(8, 8, 8)
	if tor.Hops(0, 0) != 0 {
		t.Fatal("self distance nonzero")
	}
	// Neighbour along X.
	if got := tor.Hops(0, 1); got != 1 {
		t.Fatalf("adjacent hops = %d", got)
	}
	// Wrap-around: node 7 along X is 1 hop from node 0.
	if got := tor.Hops(0, 7); got != 1 {
		t.Fatalf("wrap hops = %d, want 1", got)
	}
	// Opposite corner.
	far := tor.RankOf(Coord{X: 4, Y: 4, Z: 4})
	if got := tor.Hops(0, far); got != 12 {
		t.Fatalf("diameter hops = %d, want 12", got)
	}
}

func TestHopsSymmetric(t *testing.T) {
	tor, _ := NewTorus(4, 6, 3)
	f := func(a, b uint16) bool {
		ra := int(a) % tor.Nodes()
		rb := int(b) % tor.Nodes()
		return tor.Hops(ra, rb) == tor.Hops(rb, ra)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHopsTriangleInequality(t *testing.T) {
	tor, _ := NewTorus(5, 4, 3)
	f := func(a, b, c uint16) bool {
		ra, rb, rc := int(a)%tor.Nodes(), int(b)%tor.Nodes(), int(c)%tor.Nodes()
		return tor.Hops(ra, rc) <= tor.Hops(ra, rb)+tor.Hops(rb, rc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiameter(t *testing.T) {
	tor, _ := NewTorus(8, 8, 8)
	if tor.Diameter() != 12 {
		t.Fatalf("diameter = %d", tor.Diameter())
	}
	// No pair exceeds the diameter.
	max := 0
	for a := 0; a < tor.Nodes(); a += 37 {
		for b := 0; b < tor.Nodes(); b += 41 {
			if h := tor.Hops(a, b); h > max {
				max = h
			}
		}
	}
	if max > tor.Diameter() {
		t.Fatalf("observed hops %d exceed diameter %d", max, tor.Diameter())
	}
}

func TestMeanHopsMatchesSampling(t *testing.T) {
	tor, _ := NewTorus(4, 6, 5)
	total, count := 0, 0
	for a := 0; a < tor.Nodes(); a++ {
		for b := 0; b < tor.Nodes(); b++ {
			total += tor.Hops(a, b)
			count++
		}
	}
	exact := float64(total) / float64(count)
	if math.Abs(tor.MeanHops()-exact) > 1e-9 {
		t.Fatalf("MeanHops = %v, exhaustive mean = %v", tor.MeanHops(), exact)
	}
}

func TestMeanHopsDegenerate(t *testing.T) {
	tor, _ := NewTorus(1, 1, 1)
	if tor.MeanHops() != 0 {
		t.Fatal("single node mean hops nonzero")
	}
}

func TestTreeDepth(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 262144: 18, 294912: 19}
	for n, want := range cases {
		if got := TreeDepth(n); got != want {
			t.Errorf("TreeDepth(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestIsPowerOfTwo(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024, 262144} {
		if !IsPowerOfTwo(n) {
			t.Errorf("%d should be a power of two", n)
		}
	}
	for _, n := range []int{0, -4, 3, 6, 294912} {
		if IsPowerOfTwo(n) {
			t.Errorf("%d should not be a power of two", n)
		}
	}
}

func TestBalancedShape(t *testing.T) {
	for _, n := range []int{1, 2, 8, 64, 512, 1024, 4096, 294912} {
		tor := BalancedShape(n)
		if tor.Nodes() != n {
			t.Fatalf("BalancedShape(%d) has %d nodes", n, tor.Nodes())
		}
	}
	// 64 should be 4x4x4, the perfectly cubic factorisation.
	tor := BalancedShape(64)
	if tor.DX != 4 || tor.DY != 4 || tor.DZ != 4 {
		t.Fatalf("BalancedShape(64) = %+v, want 4x4x4", tor)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("BalancedShape(0) did not panic")
		}
	}()
	BalancedShape(0)
}

func TestMappingPenalty(t *testing.T) {
	if MappingPenalty(1024) != 1.0 {
		t.Fatal("power-of-two penalised")
	}
	if MappingPenalty(262144) != 1.0 {
		t.Fatal("64 racks penalised")
	}
	// The paper's 72-rack observation: ~15% degradation.
	p := MappingPenalty(294912)
	if p < 1.10 || p > 1.20 {
		t.Fatalf("72-rack penalty = %v, want ~1.15", p)
	}
	// Monotone in the excess.
	if MappingPenalty(262144+4096) >= MappingPenalty(294912) {
		t.Fatal("penalty not monotone in excess nodes")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MappingPenalty(0) did not panic")
		}
	}()
	MappingPenalty(0)
}

func TestRacksFor(t *testing.T) {
	if RacksFor(262144, BGPProcsPerRack) != 64 {
		t.Fatal("64-rack count wrong")
	}
	if RacksFor(294912, BGPProcsPerRack) != 72 {
		t.Fatal("72-rack count wrong")
	}
	if RacksFor(2048, BGLProcsPerRack) != 1 {
		t.Fatal("BG/L rack count wrong")
	}
	if RacksFor(2049, BGLProcsPerRack) != 2 {
		t.Fatal("rounding up failed")
	}
}
