package topology

import "fmt"

// The paper's stated future work (§VI-E): "investigate custom mappings to
// help the performance for non-powers-of-2 partition sizes." This file
// implements that study's machinery: alternative rank→coordinate mappings
// and a cost functional for the application's actual communication pattern
// (all ranks exchange with the Nature Agent at rank 0, plus tree
// collectives), so mappings can be compared quantitatively.

// Mapping assigns torus coordinates to ranks.
type Mapping interface {
	// Name identifies the mapping in reports.
	Name() string
	// Coord returns the torus coordinate of a rank in [0, t.Nodes()).
	Coord(t Torus, rank int) Coord
}

// XYZMapping is the default lexicographic mapping (X fastest), Blue Gene's
// standard order.
type XYZMapping struct{}

// Name implements Mapping.
func (XYZMapping) Name() string { return "xyz" }

// Coord implements Mapping.
func (XYZMapping) Coord(t Torus, rank int) Coord { return t.CoordOf(rank) }

// ZYXMapping fills Z fastest — the transpose order, a common remap when
// the partition's long axis mismatches the traffic pattern.
type ZYXMapping struct{}

// Name implements Mapping.
func (ZYXMapping) Name() string { return "zyx" }

// Coord implements Mapping.
func (ZYXMapping) Coord(t Torus, rank int) Coord {
	if rank < 0 || rank >= t.Nodes() {
		panic(fmt.Sprintf("topology: rank %d out of torus", rank))
	}
	return Coord{
		Z: rank % t.DZ,
		Y: (rank / t.DZ) % t.DY,
		X: rank / (t.DZ * t.DY),
	}
}

// SnakeMapping is the boustrophedon (serpentine) order: consecutive ranks
// are always torus neighbours, which keeps blocks of consecutive ranks
// physically compact — the property that helps non-power-of-two partitions,
// where the trailing ranks of a lexicographic order end up far from rank 0.
type SnakeMapping struct{}

// Name implements Mapping.
func (SnakeMapping) Name() string { return "snake" }

// Coord implements Mapping.
func (SnakeMapping) Coord(t Torus, rank int) Coord {
	if rank < 0 || rank >= t.Nodes() {
		panic(fmt.Sprintf("topology: rank %d out of torus", rank))
	}
	plane := t.DX * t.DY
	z := rank / plane
	i := rank % plane
	// Odd Z slabs traverse the whole XY plane in reverse, so the last cell
	// of slab z and the first of slab z+1 are vertical neighbours.
	if z%2 == 1 {
		i = plane - 1 - i
	}
	y := i / t.DX
	x := i % t.DX
	// Odd rows run right-to-left.
	if y%2 == 1 {
		x = t.DX - 1 - x
	}
	return Coord{X: x, Y: y, Z: z}
}

// BlockedMapping groups ranks into bx*by*bz sub-blocks filled completely
// before moving on — the "custom mapping" shape vendors recommend for
// collective-heavy codes, keeping tree neighbours physically close.
type BlockedMapping struct {
	BX, BY, BZ int
}

// Name implements Mapping.
func (m BlockedMapping) Name() string {
	return fmt.Sprintf("blocked%dx%dx%d", m.BX, m.BY, m.BZ)
}

// Coord implements Mapping.
func (m BlockedMapping) Coord(t Torus, rank int) Coord {
	if m.BX < 1 || m.BY < 1 || m.BZ < 1 {
		panic("topology: blocked mapping needs positive block dims")
	}
	if rank < 0 || rank >= t.Nodes() {
		panic(fmt.Sprintf("topology: rank %d out of torus", rank))
	}
	// Number of blocks along each axis (dimensions must divide evenly for
	// a clean blocking; remainders fall back to clamping into the last
	// block).
	nbx := (t.DX + m.BX - 1) / m.BX
	nby := (t.DY + m.BY - 1) / m.BY
	blockSize := m.BX * m.BY * m.BZ
	block := rank / blockSize
	within := rank % blockSize
	bx := block % nbx
	by := (block / nbx) % nby
	bz := block / (nbx * nby)
	wx := within % m.BX
	wy := (within / m.BX) % m.BY
	wz := within / (m.BX * m.BY)
	return Coord{
		X: min(bx*m.BX+wx, t.DX-1),
		Y: min(by*m.BY+wy, t.DY-1),
		Z: min(bz*m.BZ+wz, t.DZ-1),
	}
}

// NatureTrafficCost evaluates a mapping for this application's dominant
// communication pattern on a partition of `ranks` nodes embedded in the
// torus (ranks <= t.Nodes()): the mean torus distance from every worker to
// the Nature Agent at rank 0 (point-to-point fitness returns) plus the mean
// distance between binomial-tree partners (broadcast/reduce hops). Lower is
// better.
func NatureTrafficCost(t Torus, m Mapping, ranks int) (float64, error) {
	if ranks < 2 || ranks > t.Nodes() {
		return 0, fmt.Errorf("topology: %d ranks do not fit torus of %d nodes", ranks, t.Nodes())
	}
	coords := make([]Coord, ranks)
	for r := 0; r < ranks; r++ {
		coords[r] = m.Coord(t, r)
	}
	dist := func(a, b Coord) float64 {
		return float64(axisDist(a.X, b.X, t.DX) + axisDist(a.Y, b.Y, t.DY) + axisDist(a.Z, b.Z, t.DZ))
	}
	// Point-to-point term: mean worker -> rank 0 distance.
	p2p := 0.0
	for r := 1; r < ranks; r++ {
		p2p += dist(coords[r], coords[0])
	}
	p2p /= float64(ranks - 1)
	// Collective term: mean distance over the binomial-tree edges
	// (vrank -> vrank - highest set bit), the hops a broadcast traverses.
	tree, edges := 0.0, 0
	for v := 1; v < ranks; v++ {
		parent := v &^ (1 << (bitsLen(uint(v)) - 1))
		tree += dist(coords[v], coords[parent])
		edges++
	}
	tree /= float64(edges)
	return p2p + tree, nil
}

func bitsLen(v uint) int {
	n := 0
	for v != 0 {
		v >>= 1
		n++
	}
	return n
}

// CompareMappings evaluates the candidate mappings on the given partition
// and returns name -> cost.
func CompareMappings(t Torus, ranks int, mappings []Mapping) (map[string]float64, error) {
	out := make(map[string]float64, len(mappings))
	for _, m := range mappings {
		c, err := NatureTrafficCost(t, m, ranks)
		if err != nil {
			return nil, err
		}
		out[m.Name()] = c
	}
	return out, nil
}

// DefaultMappings returns the candidate set the mapping study compares.
func DefaultMappings(t Torus) []Mapping {
	ms := []Mapping{XYZMapping{}, ZYXMapping{}, SnakeMapping{}}
	// A cubic-ish block that divides typical power-of-two torus dims.
	if t.DX >= 2 && t.DY >= 2 && t.DZ >= 2 {
		ms = append(ms, BlockedMapping{BX: 2, BY: 2, BZ: 2})
	}
	return ms
}
