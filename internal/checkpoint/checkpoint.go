// Package checkpoint serialises simulation state — the record-keeping role
// the paper assigns to the Nature Agent ("handles all file I/O to record
// the global variables across generations"). A Snapshot captures the
// generation number and every SSet's strategy; the binary codec is
// self-describing, versioned, and stdlib-only.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/bitset"
	"repro/internal/strategy"
)

// Magic and version identify the stream format. Version 2 appends the run
// counters after the fitness block; version 3 makes the counters block
// optional behind a presence byte and appends the sampled series. Write
// emits the lowest version that can represent the snapshot, so counter-less
// snapshots stay byte-identical to version 1 streams, series-less ones to
// version 2 streams, and Read accepts all three.
const (
	Magic           uint32 = 0x45474431 // "EGD1"
	Version         uint16 = 1
	VersionCounters uint16 = 2
	VersionSeries   uint16 = 3
)

// maxSeriesPoints bounds a decoded series block (a run samples ~1000
// points by default; the cap rejects implausible streams before the
// decoder commits a large allocation to them).
const maxSeriesPoints = 1 << 20

// Strategy kind tags in the stream.
const (
	kindPure  uint8 = 1
	kindMixed uint8 = 2
)

// Snapshot is a point-in-time capture of a run.
type Snapshot struct {
	// Generation is the number of completed generations.
	Generation uint64
	// Seed is the run's master seed (for provenance).
	Seed uint64
	// Memory is the strategy depth.
	Memory int
	// Strategies holds every SSet's strategy.
	Strategies []strategy.Strategy
	// Fitness optionally holds every SSet's fitness at the snapshot
	// (empty means not recorded).
	Fitness []float64
	// Counters optionally holds the run's cumulative event counters, so a
	// resumed run can report totals identical to an uninterrupted one. Nil
	// means not recorded (and the snapshot encodes as version 1).
	Counters *RunCounters
	// MeanFitness and Cooperation optionally carry the sampled series up to
	// the snapshot generation (sim.Config.CheckpointSeries), so a service
	// that resumes a crashed run from this snapshot can serve a stitched
	// series identical to an uninterrupted run's. Nil means not recorded
	// (and the snapshot encodes as version <= 2); non-nil but empty is
	// recorded and survives a round trip.
	MeanFitness []SeriesPoint
	Cooperation []SeriesPoint
}

// SeriesPoint is one retained sample of a per-generation series.
type SeriesPoint struct {
	Generation uint64
	Value      float64
}

// RunCounters mirrors sim.Counters without importing it (checkpoint is a
// leaf package): cumulative event totals at the snapshot generation.
type RunCounters struct {
	GamesPlayed uint64
	PCEvents    uint64
	Adoptions   uint64
	Mutations   uint64
}

// Validate checks internal consistency.
func (s *Snapshot) Validate() error {
	if s.Memory < 1 || s.Memory > strategy.MaxMemory {
		return fmt.Errorf("checkpoint: memory %d out of range", s.Memory)
	}
	if len(s.Strategies) == 0 {
		return errors.New("checkpoint: no strategies")
	}
	sp := strategy.NewSpace(s.Memory)
	for i, st := range s.Strategies {
		if st == nil {
			return fmt.Errorf("checkpoint: nil strategy %d", i)
		}
		if st.Space() != sp {
			return fmt.Errorf("checkpoint: strategy %d space mismatch", i)
		}
	}
	if len(s.Fitness) != 0 && len(s.Fitness) != len(s.Strategies) {
		return fmt.Errorf("checkpoint: %d fitness values for %d strategies", len(s.Fitness), len(s.Strategies))
	}
	return nil
}

// Write encodes the snapshot to w.
func Write(w io.Writer, s *Snapshot) error {
	if err := s.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	writeU32 := func(v uint32) { _ = binary.Write(bw, binary.LittleEndian, v) }
	writeU64 := func(v uint64) { _ = binary.Write(bw, binary.LittleEndian, v) }
	writeU32(Magic)
	version := Version
	if s.Counters != nil {
		version = VersionCounters
	}
	if s.MeanFitness != nil || s.Cooperation != nil {
		version = VersionSeries
	}
	_ = binary.Write(bw, binary.LittleEndian, version)
	_ = bw.WriteByte(byte(s.Memory))
	_ = bw.WriteByte(0) // reserved
	writeU64(s.Generation)
	writeU64(s.Seed)
	writeU32(uint32(len(s.Strategies)))
	hasFitness := uint8(0)
	if len(s.Fitness) > 0 {
		hasFitness = 1
	}
	_ = bw.WriteByte(hasFitness)
	for _, st := range s.Strategies {
		switch v := st.(type) {
		case *strategy.Pure:
			_ = bw.WriteByte(kindPure)
			data, err := v.Bits().MarshalBinary()
			if err != nil {
				return err
			}
			writeU32(uint32(len(data)))
			if _, err := bw.Write(data); err != nil {
				return err
			}
		case *strategy.Mixed:
			_ = bw.WriteByte(kindMixed)
			probs := v.Probs()
			writeU32(uint32(len(probs)))
			for _, p := range probs {
				writeU64(math.Float64bits(p))
			}
		default:
			return fmt.Errorf("checkpoint: unsupported strategy type %T", st)
		}
	}
	if hasFitness == 1 {
		for _, f := range s.Fitness {
			writeU64(math.Float64bits(f))
		}
	}
	if version >= VersionSeries {
		hasCounters := uint8(0)
		if s.Counters != nil {
			hasCounters = 1
		}
		_ = bw.WriteByte(hasCounters)
	}
	if s.Counters != nil {
		writeU64(s.Counters.GamesPlayed)
		writeU64(s.Counters.PCEvents)
		writeU64(s.Counters.Adoptions)
		writeU64(s.Counters.Mutations)
	}
	if version >= VersionSeries {
		for _, series := range [][]SeriesPoint{s.MeanFitness, s.Cooperation} {
			writeU32(uint32(len(series)))
			for _, p := range series {
				writeU64(p.Generation)
				writeU64(math.Float64bits(p.Value))
			}
		}
	}
	return bw.Flush()
}

// Read decodes a snapshot from r.
func Read(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("checkpoint: reading magic: %w", err)
	}
	if magic != Magic {
		return nil, fmt.Errorf("checkpoint: bad magic %#x", magic)
	}
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version < Version || version > VersionSeries {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", version)
	}
	memByte, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if _, err := br.ReadByte(); err != nil { // reserved
		return nil, err
	}
	s := &Snapshot{Memory: int(memByte)}
	if s.Memory < 1 || s.Memory > strategy.MaxMemory {
		return nil, fmt.Errorf("checkpoint: memory %d out of range", s.Memory)
	}
	if err := binary.Read(br, binary.LittleEndian, &s.Generation); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &s.Seed); err != nil {
		return nil, err
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	if count == 0 || count > 1<<28 {
		return nil, fmt.Errorf("checkpoint: implausible strategy count %d", count)
	}
	hasFitness, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	sp := strategy.NewSpace(s.Memory)
	s.Strategies = make([]strategy.Strategy, count)
	for i := range s.Strategies {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("checkpoint: strategy %d kind: %w", i, err)
		}
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
		switch kind {
		case kindPure:
			if n > 1<<20 {
				return nil, fmt.Errorf("checkpoint: pure strategy blob of %d bytes", n)
			}
			data := make([]byte, n)
			if _, err := io.ReadFull(br, data); err != nil {
				return nil, err
			}
			var b bitset.Bitset
			if err := b.UnmarshalBinary(data); err != nil {
				return nil, err
			}
			if b.Len() != sp.NumStates() {
				return nil, fmt.Errorf("checkpoint: strategy %d has %d states, want %d", i, b.Len(), sp.NumStates())
			}
			s.Strategies[i] = strategy.PureFromBits(sp, &b)
		case kindMixed:
			if int(n) != sp.NumStates() {
				return nil, fmt.Errorf("checkpoint: mixed strategy %d has %d probs, want %d", i, n, sp.NumStates())
			}
			probs := make([]float64, n)
			for j := range probs {
				var bits64 uint64
				if err := binary.Read(br, binary.LittleEndian, &bits64); err != nil {
					return nil, err
				}
				probs[j] = math.Float64frombits(bits64)
				if math.IsNaN(probs[j]) || probs[j] < 0 || probs[j] > 1 {
					return nil, fmt.Errorf("checkpoint: mixed strategy %d prob %d out of range", i, j)
				}
			}
			s.Strategies[i] = strategy.MixedFromProbs(sp, probs)
		default:
			return nil, fmt.Errorf("checkpoint: unknown strategy kind %d", kind)
		}
	}
	if hasFitness == 1 {
		s.Fitness = make([]float64, count)
		for i := range s.Fitness {
			var bits64 uint64
			if err := binary.Read(br, binary.LittleEndian, &bits64); err != nil {
				return nil, err
			}
			s.Fitness[i] = math.Float64frombits(bits64)
		}
	}
	hasCounters := version == VersionCounters
	if version >= VersionSeries {
		b, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("checkpoint: reading counters flag: %w", err)
		}
		if b > 1 {
			return nil, fmt.Errorf("checkpoint: bad counters flag %d", b)
		}
		hasCounters = b == 1
	}
	if hasCounters {
		s.Counters = &RunCounters{}
		for _, field := range []*uint64{
			&s.Counters.GamesPlayed, &s.Counters.PCEvents,
			&s.Counters.Adoptions, &s.Counters.Mutations,
		} {
			if err := binary.Read(br, binary.LittleEndian, field); err != nil {
				return nil, fmt.Errorf("checkpoint: reading counters: %w", err)
			}
		}
	}
	if version >= VersionSeries {
		for _, dst := range []*[]SeriesPoint{&s.MeanFitness, &s.Cooperation} {
			var n uint32
			if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
				return nil, fmt.Errorf("checkpoint: reading series length: %w", err)
			}
			if n > maxSeriesPoints {
				return nil, fmt.Errorf("checkpoint: implausible series length %d", n)
			}
			// Non-nil even when empty, so the round trip keeps version 3.
			pts := make([]SeriesPoint, n)
			for i := range pts {
				var bits64 uint64
				if err := binary.Read(br, binary.LittleEndian, &pts[i].Generation); err != nil {
					return nil, err
				}
				if err := binary.Read(br, binary.LittleEndian, &bits64); err != nil {
					return nil, err
				}
				pts[i].Value = math.Float64frombits(bits64)
			}
			*dst = pts
		}
	}
	return s, nil
}
