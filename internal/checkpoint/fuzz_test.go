package checkpoint

import (
	"bytes"
	"testing"

	"repro/internal/rng"
	"repro/internal/strategy"
)

// FuzzRead hardens the checkpoint decoder: arbitrary bytes must never
// panic, and any stream it accepts must re-encode to an equivalent
// snapshot.
func FuzzRead(f *testing.F) {
	// Seed with valid streams of both strategy kinds.
	sp := strategy.NewSpace(2)
	src := rng.New(1)
	pure := &Snapshot{Generation: 5, Seed: 9, Memory: 2,
		Strategies: []strategy.Strategy{strategy.RandomPure(sp, src), strategy.WSLS(sp)},
		Fitness:    []float64{1.5, 2.5}}
	var buf bytes.Buffer
	if err := Write(&buf, pure); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	buf.Reset()
	mixed := &Snapshot{Generation: 1, Memory: 1,
		Strategies: []strategy.Strategy{strategy.GTFT(strategy.NewSpace(1), 0.3)}}
	if err := Write(&buf, mixed); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	buf.Reset()
	series := &Snapshot{Generation: 8, Seed: 3, Memory: 1,
		Strategies:  []strategy.Strategy{strategy.WSLS(strategy.NewSpace(1))},
		Counters:    &RunCounters{GamesPlayed: 42},
		MeanFitness: []SeriesPoint{{Generation: 0, Value: 2.0}, {Generation: 4, Value: 2.25}},
		Cooperation: []SeriesPoint{{Generation: 0, Value: 0.5}}}
	if err := Write(&buf, series); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x44, 0x47, 0x45, 1, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must be internally valid and round-trip.
		if err := snap.Validate(); err != nil {
			t.Fatalf("accepted snapshot fails validation: %v", err)
		}
		var out bytes.Buffer
		if err := Write(&out, snap); err != nil {
			t.Fatalf("accepted snapshot does not re-encode: %v", err)
		}
		again, err := Read(&out)
		if err != nil {
			t.Fatalf("re-encoded snapshot does not decode: %v", err)
		}
		if len(again.Strategies) != len(snap.Strategies) || again.Generation != snap.Generation {
			t.Fatal("round trip changed the snapshot")
		}
		for i := range snap.Strategies {
			if !again.Strategies[i].Equal(snap.Strategies[i]) {
				t.Fatalf("strategy %d changed in round trip", i)
			}
		}
	})
}
