package checkpoint

import (
	"bytes"
	"testing"

	"repro/internal/rng"
	"repro/internal/strategy"
)

func pureSnapshot(t *testing.T, n, count int) *Snapshot {
	t.Helper()
	sp := strategy.NewSpace(n)
	src := rng.New(1)
	s := &Snapshot{Generation: 12345, Seed: 99, Memory: n}
	for i := 0; i < count; i++ {
		s.Strategies = append(s.Strategies, strategy.RandomPure(sp, src))
	}
	return s
}

func TestPureRoundTrip(t *testing.T) {
	for _, mem := range []int{1, 3, 6} {
		s := pureSnapshot(t, mem, 17)
		s.Fitness = make([]float64, 17)
		for i := range s.Fitness {
			s.Fitness[i] = float64(i) * 1.5
		}
		var buf bytes.Buffer
		if err := Write(&buf, s); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Generation != 12345 || got.Seed != 99 || got.Memory != mem {
			t.Fatalf("header mismatch: %+v", got)
		}
		if len(got.Strategies) != 17 {
			t.Fatalf("%d strategies", len(got.Strategies))
		}
		for i := range got.Strategies {
			if !got.Strategies[i].Equal(s.Strategies[i]) {
				t.Fatalf("strategy %d differs", i)
			}
		}
		for i := range got.Fitness {
			if got.Fitness[i] != s.Fitness[i] {
				t.Fatalf("fitness %d differs", i)
			}
		}
	}
}

func TestMixedRoundTrip(t *testing.T) {
	sp := strategy.NewSpace(2)
	src := rng.New(2)
	s := &Snapshot{Generation: 7, Seed: 1, Memory: 2}
	for i := 0; i < 5; i++ {
		s.Strategies = append(s.Strategies, strategy.RandomMixed(sp, src))
	}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Strategies {
		if !got.Strategies[i].Equal(s.Strategies[i]) {
			t.Fatalf("mixed strategy %d differs", i)
		}
	}
	if got.Fitness != nil {
		t.Fatal("fitness materialised from nothing")
	}
}

func TestMixedKindsRoundTrip(t *testing.T) {
	sp := strategy.NewSpace(1)
	s := &Snapshot{Generation: 1, Memory: 1}
	s.Strategies = []strategy.Strategy{
		strategy.WSLS(sp),
		strategy.GTFT(sp, 0.3),
		strategy.AllD(sp),
	}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Strategies {
		if !got.Strategies[i].Equal(s.Strategies[i]) {
			t.Fatalf("strategy %d differs", i)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	if (&Snapshot{Memory: 0, Strategies: nil}).Validate() == nil {
		t.Fatal("bad memory accepted")
	}
	if (&Snapshot{Memory: 1}).Validate() == nil {
		t.Fatal("empty strategies accepted")
	}
	sp1, sp2 := strategy.NewSpace(1), strategy.NewSpace(2)
	s := &Snapshot{Memory: 1, Strategies: []strategy.Strategy{strategy.AllC(sp2)}}
	_ = sp1
	if s.Validate() == nil {
		t.Fatal("space mismatch accepted")
	}
	s = &Snapshot{Memory: 1, Strategies: []strategy.Strategy{strategy.AllC(sp1)}, Fitness: []float64{1, 2}}
	if s.Validate() == nil {
		t.Fatal("fitness length mismatch accepted")
	}
	s = &Snapshot{Memory: 1, Strategies: []strategy.Strategy{nil}}
	if s.Validate() == nil {
		t.Fatal("nil strategy accepted")
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	s := pureSnapshot(t, 1, 3)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bad magic.
	bad := append([]byte{}, good...)
	bad[0] ^= 0xFF
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Bad version.
	bad = append([]byte{}, good...)
	bad[4] = 0xFF
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version accepted")
	}
	// Bad memory byte.
	bad = append([]byte{}, good...)
	bad[6] = 9
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad memory accepted")
	}
	// Truncations at every prefix length must error, not panic.
	for cut := 0; cut < len(good); cut += 3 {
		if _, err := Read(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Empty stream.
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestReadRejectsImplausibleCounts(t *testing.T) {
	s := pureSnapshot(t, 1, 2)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	// Strategy count lives at offset 24 (magic 4 + version 2 + memory 1 +
	// reserved 1 + generation 8 + seed 8), little-endian uint32.
	zeroCount := append([]byte{}, good...)
	zeroCount[24], zeroCount[25], zeroCount[26], zeroCount[27] = 0, 0, 0, 0
	if _, err := Read(bytes.NewReader(zeroCount)); err == nil {
		t.Fatal("zero strategy count accepted")
	}
	hugeCount := append([]byte{}, good...)
	hugeCount[24], hugeCount[25], hugeCount[26], hugeCount[27] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, err := Read(bytes.NewReader(hugeCount)); err == nil {
		t.Fatal("implausible strategy count accepted")
	}
	// The first strategy's blob length sits after count (4) and the
	// has-fitness byte (1) and the kind byte (1): offset 30.
	hugeBlob := append([]byte{}, good...)
	hugeBlob[30], hugeBlob[31], hugeBlob[32], hugeBlob[33] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, err := Read(bytes.NewReader(hugeBlob)); err == nil {
		t.Fatal("oversized pure blob accepted")
	}
	// Unknown strategy kind at offset 29.
	badKind := append([]byte{}, good...)
	badKind[29] = 99
	if _, err := Read(bytes.NewReader(badKind)); err == nil {
		t.Fatal("unknown strategy kind accepted")
	}
}

func TestReadRejectsWrongStateCount(t *testing.T) {
	// A memory-2 snapshot whose header claims memory-1 must be rejected
	// because the strategy tables have the wrong state count.
	s := pureSnapshot(t, 2, 1)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[6] = 1 // memory byte
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("state-count mismatch accepted")
	}
}

func TestReadRejectsOutOfRangeProbs(t *testing.T) {
	sp := strategy.NewSpace(1)
	s := &Snapshot{Generation: 1, Memory: 1,
		Strategies: []strategy.Strategy{strategy.GTFT(sp, 0.5)}}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The last 8 bytes of the stream are the final probability; set them to
	// the bit pattern of 2.0 (out of range).
	for i := 0; i < 8; i++ {
		data[len(data)-8+i] = 0
	}
	data[len(data)-2] = 0x00
	data[len(data)-1] = 0x40 // float64(2.0) high byte
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("out-of-range probability accepted")
	}
}

func TestCountersRoundTrip(t *testing.T) {
	s := pureSnapshot(t, 2, 5)
	s.Counters = &RunCounters{GamesPlayed: 123456, PCEvents: 77, Adoptions: 42, Mutations: 9}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	// Counters force the version-2 stream format.
	if v := buf.Bytes()[4]; v != byte(VersionCounters) {
		t.Fatalf("stream version = %d, want %d", v, VersionCounters)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counters == nil || *got.Counters != *s.Counters {
		t.Fatalf("counters round trip: got %+v, want %+v", got.Counters, s.Counters)
	}
	// Truncating the counter block must error, not silently drop it.
	buf.Reset()
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data[:len(data)-8])); err == nil {
		t.Fatal("truncated counter block accepted")
	}
}

func TestVersion1StreamStaysVersion1(t *testing.T) {
	// A snapshot without counters must encode byte-identically to the
	// pre-counter format: existing checkpoint files and the offset-based
	// corruption tests depend on the version-1 layout.
	s := pureSnapshot(t, 1, 3)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	if v := buf.Bytes()[4]; v != byte(Version) {
		t.Fatalf("stream version = %d, want %d", v, Version)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counters != nil {
		t.Fatalf("counters materialised from a version-1 stream: %+v", got.Counters)
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Snapshot{Memory: 1}); err == nil {
		t.Fatal("invalid snapshot written")
	}
}

func TestSeriesRoundTrip(t *testing.T) {
	s := pureSnapshot(t, 2, 5)
	s.Counters = &RunCounters{GamesPlayed: 10, PCEvents: 2, Adoptions: 1, Mutations: 3}
	s.MeanFitness = []SeriesPoint{{Generation: 0, Value: 1.25}, {Generation: 7, Value: 2.5}}
	s.Cooperation = []SeriesPoint{{Generation: 0, Value: 0.5}}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	if v := buf.Bytes()[4]; v != byte(VersionSeries) {
		t.Fatalf("stream version = %d, want %d", v, VersionSeries)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.MeanFitness) != 2 || got.MeanFitness[1] != s.MeanFitness[1] {
		t.Fatalf("mean fitness series: got %+v, want %+v", got.MeanFitness, s.MeanFitness)
	}
	if len(got.Cooperation) != 1 || got.Cooperation[0] != s.Cooperation[0] {
		t.Fatalf("cooperation series: got %+v, want %+v", got.Cooperation, s.Cooperation)
	}
	if got.Counters == nil || *got.Counters != *s.Counters {
		t.Fatalf("counters: got %+v, want %+v", got.Counters, s.Counters)
	}

	// A truncated series block errors instead of silently shortening.
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data[:len(data)-4])); err == nil {
		t.Fatal("truncated series block accepted")
	}
}

func TestSeriesEmptyButRecordedSurvivesRoundTrip(t *testing.T) {
	// Non-nil empty series mark "recorded, nothing sampled yet" and must
	// keep the version-3 encoding through a round trip (the fuzz target's
	// re-encode check depends on it). Counters stay absent.
	s := pureSnapshot(t, 1, 2)
	s.MeanFitness = []SeriesPoint{}
	s.Cooperation = []SeriesPoint{}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.MeanFitness == nil || got.Cooperation == nil {
		t.Fatal("recorded-but-empty series decoded as nil")
	}
	if got.Counters != nil {
		t.Fatalf("counters materialised without a counter block: %+v", got.Counters)
	}
	var again bytes.Buffer
	if err := Write(&again, got); err != nil {
		t.Fatal(err)
	}
	if v := again.Bytes()[4]; v != byte(VersionSeries) {
		t.Fatalf("re-encoded version = %d, want %d", v, VersionSeries)
	}
}

func TestSeriesRejectsImplausibleLength(t *testing.T) {
	s := pureSnapshot(t, 1, 2)
	s.MeanFitness = []SeriesPoint{}
	s.Cooperation = []SeriesPoint{}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Overwrite the mean-fitness series length (last 8 bytes are the two
	// u32 counts) with a value over the cap.
	data[len(data)-8] = 0xff
	data[len(data)-7] = 0xff
	data[len(data)-6] = 0xff
	data[len(data)-5] = 0x7f
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("implausible series length accepted")
	}
}
