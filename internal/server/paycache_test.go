package server

import (
	"testing"

	"repro/internal/sim"
)

// TestCostModelCacheDiscount: enabling the payoff cache on a memoizable
// full-recompute job must cut the modelled cost by at least the 10x the
// kernel targets, while non-memoizable jobs keep the undiscounted price.
func TestCostModelCacheDiscount(t *testing.T) {
	m := DefaultCostModel()
	base := sim.DefaultConfig(2, 32)
	base.Generations = 5000
	base.FullRecompute = true
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	uncached := m.EstimateSeconds(base)

	cached := base
	cached.PayoffCache = true
	discounted := m.EstimateSeconds(cached)
	if discounted <= 0 {
		t.Fatalf("discounted estimate %v, want > 0", discounted)
	}
	if discounted > uncached/10 {
		t.Fatalf("cache discount too small: %v vs %v uncached (want >= 10x)", discounted, uncached)
	}

	// Mixed strategies with noise are not memoizable: no discount.
	noisy := cached
	noisy.Kind = sim.MixedStrategies
	noisy.Rules.ErrorRate = 0.01
	if got := m.EstimateSeconds(noisy); got != m.EstimateSeconds(func() sim.Config {
		c := noisy
		c.PayoffCache = false
		return c
	}()) {
		t.Fatalf("non-memoizable job got a cache discount: %v", got)
	}

	// Exact mode is memoizable even for mixed strategies.
	exact := base
	exact.Kind = sim.MixedStrategies
	exact.ExactPayoffs = true
	exact.PayoffCache = true
	exactOff := exact
	exactOff.PayoffCache = false
	if m.EstimateSeconds(exact) >= m.EstimateSeconds(exactOff) {
		t.Fatal("exact-mode job got no cache discount")
	}
}

// TestJobSpecPayoffCacheFields: the wire fields reach the engine config.
func TestJobSpecPayoffCacheFields(t *testing.T) {
	spec := JobSpec{
		Memory:          1,
		SSets:           8,
		Generations:     10,
		Seed:            1,
		PayoffCache:     true,
		PayoffCacheSize: 512,
	}
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.PayoffCache || cfg.PayoffCacheSize != 512 {
		t.Fatalf("cache fields lost in translation: %+v", cfg)
	}
	spec.PayoffCacheSize = -1
	if _, err := spec.Config(); err == nil {
		t.Fatal("negative payoff_cache_size validated")
	}
}

// TestServiceRunsCachedJob: a cached job submitted over HTTP completes and
// its folded metrics include the cache series.
func TestServiceRunsCachedJob(t *testing.T) {
	ts := newTestServer(t, Options{})
	id := submit(t, ts, "",
		`{"memory":1,"ssets":8,"generations":30,"rounds":10,"seed":4,"full_recompute":true,"payoff_cache":true,"metrics":true}`)
	waitState(t, ts, id, StateDone)
}
