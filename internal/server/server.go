// Package server implements the egdserve daemon: a multi-tenant HTTP/JSON
// job service over the simulation engines. Tenants POST sim.Config-shaped
// specs, a bounded worker pool runs them on the sequential or parallel
// engine, progress streams out as Server-Sent Events, and pause/resume/
// cancel ride on the engine's Control hook and checkpoint machinery — a
// paused job resumes from its snapshot bit-identically (pure strategies).
// A perfmodel-driven admission controller prices every submission and
// rejects or defers work that exceeds the configured budgets; per-tenant
// quotas and token-bucket rate limits keep one tenant from starving the
// rest. The daemon's own counters and every finished run's egd_* catalog
// are served in Prometheus text format at /metrics.
//
// With a data directory configured the job table is durable: every
// lifecycle transition is journaled to an fsync'd append-only JSONL
// write-ahead log and resume snapshots go to per-job checkpoint files, so
// a daemon killed mid-job recovers on the next boot and finishes every
// interrupted trajectory bit-identically (see docs/SERVICE.md).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Options configures a Server. Zero values select workable defaults.
type Options struct {
	// Workers is the number of concurrent simulation workers (0 selects 2).
	Workers int
	// QueueDepth bounds the pending-job queue (0 selects 64).
	QueueDepth int
	// MaxJobSeconds rejects any single job whose modelled cost exceeds this
	// ceiling with 422 (0 = no per-job ceiling).
	MaxJobSeconds float64
	// MaxOutstandingSeconds bounds the modelled cost of all non-terminal
	// jobs; submissions over it get 429 + Retry-After (0 = unbounded).
	MaxOutstandingSeconds float64
	// Tenant bounds each tenant's concurrency and submission rate.
	Tenant TenantLimits
	// Cost prices submissions; the zero value uses the deterministic paper
	// calibration.
	Cost CostModel
	// Now overrides the rate limiter's clock (tests); nil uses wall time.
	Now func() int64
	// DataDir enables the durable job store: a write-ahead journal of every
	// lifecycle transition plus per-job checkpoint files under this
	// directory. A daemon restarted over the same DataDir replays the
	// journal, re-queues interrupted jobs, and finishes each trajectory
	// bit-identically. Empty keeps the ephemeral in-memory store.
	DataDir string
	// CheckpointEvery is the durable-mode snapshot cadence (generations)
	// applied to jobs whose spec sets none (0 selects 250). Ignored without
	// DataDir.
	CheckpointEvery int
	// SSEWriteTimeout bounds each Server-Sent-Event write; a client that
	// cannot drain an event within it is disconnected (it reconnects with
	// Last-Event-ID and replays what it missed) instead of pinning the
	// daemon's connection. 0 selects 30s; negative disables the deadline.
	SSEWriteTimeout time.Duration
	// Log receives operational messages (recovery summary, journal errors);
	// nil discards them.
	Log func(format string, args ...any)
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return 2
}

func (o Options) queueDepth() int {
	if o.QueueDepth > 0 {
		return o.QueueDepth
	}
	return 64
}

func (o Options) checkpointEvery() int {
	if o.CheckpointEvery > 0 {
		return o.CheckpointEvery
	}
	return 250
}

func (o Options) sseWriteTimeout() time.Duration {
	if o.SSEWriteTimeout == 0 {
		return 30 * time.Second
	}
	if o.SSEWriteTimeout < 0 {
		return 0
	}
	return o.SSEWriteTimeout
}

func (o Options) logf() func(format string, args ...any) {
	if o.Log != nil {
		return o.Log
	}
	return func(string, ...any) {}
}

// Server is the HTTP front end over a job Manager.
type Server struct {
	mgr        *Manager
	reg        *metrics.Registry
	mux        *http.ServeMux
	sseTimeout time.Duration
}

// New builds a server and starts its worker pool. With Options.DataDir set
// it opens the durable job store first, replaying the journal and
// re-queuing interrupted jobs; an unopenable store is the only error.
func New(opts Options) (*Server, error) {
	reg := metrics.NewRegistry()
	mgr, err := newManager(opts, reg)
	if err != nil {
		return nil, err
	}
	s := &Server{reg: reg, mgr: mgr, mux: http.NewServeMux(), sseTimeout: opts.sseWriteTimeout()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("POST /api/v1/jobs/{id}/pause", s.handleTransition(s.mgr.Pause))
	s.mux.HandleFunc("POST /api/v1/jobs/{id}/resume", s.handleTransition(s.mgr.Resume))
	s.mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.handleTransition(s.mgr.Cancel))
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close cancels running jobs and stops the worker pool.
func (s *Server) Close() { s.mgr.Close() }

// Drain parks the service for restart: running jobs stop at the next
// generation boundary with durable snapshots and are journaled queued, so
// the next boot resumes them bit-identically. See Manager.Drain.
func (s *Server) Drain(timeout time.Duration) error { return s.mgr.Drain(timeout) }

// tenantOf extracts the caller's tenant from the X-Tenant header; absent
// means the shared default tenant.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone mid-write is not actionable
}

// writeError maps the manager's typed errors onto HTTP semantics: 400 for
// malformed specs, 409 for invalid transitions, 422/429 (+ Retry-After and
// the modelled cost) for admission, 429 (+ Retry-After) for quotas.
func writeError(w http.ResponseWriter, err error) {
	var se *specError
	var ste *stateError
	var ae *admissionError
	var qe *quotaError
	switch {
	case errors.As(err, &se):
		writeJSON(w, http.StatusBadRequest, map[string]string{"reason": "invalid_spec", "detail": se.Detail})
	case errors.As(err, &ste):
		writeJSON(w, http.StatusConflict, map[string]string{"reason": "invalid_state", "detail": ste.Detail})
	case errors.As(err, &ae):
		status := ae.Status
		if status == 0 {
			status = http.StatusTooManyRequests
		}
		if ae.RetryAfterSeconds > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(ae.RetryAfterSeconds))
		}
		writeJSON(w, status, ae)
	case errors.As(err, &qe):
		if qe.RetryAfterSeconds > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(qe.RetryAfterSeconds))
		}
		writeJSON(w, http.StatusTooManyRequests, qe)
	default:
		writeJSON(w, http.StatusInternalServerError, map[string]string{"reason": "internal", "detail": err.Error()})
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	metrics.WritePrometheus(w, s.reg.Snapshot()) //nolint:errcheck // client gone mid-write
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := parseSpec(r.Body)
	if err != nil {
		writeError(w, &specError{Detail: err.Error()})
		return
	}
	job, err := s.mgr.Submit(tenantOf(r), spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.mgr.list()})
}

// jobFor resolves the {id} path parameter, writing the 404 itself when the
// job does not exist.
func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	job, ok := s.mgr.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"reason": "unknown_job", "detail": r.PathValue("id")})
	}
	return job, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if job, ok := s.jobFor(w, r); ok {
		writeJSON(w, http.StatusOK, job.status())
	}
}

func (s *Server) handleTransition(f func(*Job) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.jobFor(w, r)
		if !ok {
			return
		}
		if err := f(job); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, job.status())
	}
}

// samplePoint is one retained series observation.
type samplePoint struct {
	Generation int     `json:"generation"`
	Value      float64 `json:"value"`
}

// jobResult is the wire form of a finished run. ElapsedSeconds is the only
// non-deterministic field; parity checks compare everything else.
type jobResult struct {
	ID             string        `json:"id"`
	FinalFitness   []float64     `json:"final_fitness"`
	Fingerprints   []string      `json:"fingerprints"`
	Counters       sim.Counters  `json:"counters"`
	MeanFitness    []samplePoint `json:"mean_fitness"`
	Cooperation    []samplePoint `json:"cooperation"`
	Ranks          int           `json:"ranks"`
	Restarts       int           `json:"restarts"`
	ElapsedSeconds float64       `json:"elapsed_seconds"`
}

func seriesPoints(s *stats.Series) []samplePoint {
	if s == nil {
		return nil
	}
	out := make([]samplePoint, s.Len())
	for i := range out {
		g, v := s.At(i)
		out[i] = samplePoint{Generation: g, Value: v}
	}
	return out
}

// stitchPoints joins the series of pause-terminated segments with the final
// segment's. The segments sample disjoint generation ranges on the same
// pinned stride, so the concatenation is exactly an uninterrupted run's
// series.
func stitchPoints(prior []samplePoint, s *stats.Series) []samplePoint {
	pts := append(append([]samplePoint(nil), prior...), seriesPoints(s)...)
	if len(pts) == 0 {
		return nil
	}
	return pts
}

// buildWireLocked materialises a finished run's wire result; the caller
// holds job.mu. Built once at settle time and retained (and journaled in
// durable mode), so a restarted daemon serves done jobs' results without
// re-running them.
func buildWireLocked(job *Job, res *sim.Result) *jobResult {
	out := &jobResult{
		ID:             job.ID,
		FinalFitness:   res.FinalFitness,
		Fingerprints:   make([]string, len(res.Final)),
		Counters:       res.Counters,
		MeanFitness:    stitchPoints(job.priorFitness, res.MeanFitness),
		Cooperation:    stitchPoints(job.priorCoop, res.Cooperation),
		Ranks:          res.Ranks,
		Restarts:       res.Restarts,
		ElapsedSeconds: res.Elapsed.Seconds(),
	}
	for i, st := range res.Final {
		out.Fingerprints[i] = fmt.Sprintf("%016x", st.Fingerprint())
	}
	return out
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	job.mu.Lock()
	state, wire := job.state, job.wire
	job.mu.Unlock()
	if state != StateDone || wire == nil {
		writeError(w, &stateError{Detail: fmt.Sprintf("job %s is %s; results exist only for done jobs", job.ID, state)})
		return
	}
	writeJSON(w, http.StatusOK, wire)
}

// handleEvents streams a job's timeline as Server-Sent Events: the backlog
// after the client's Last-Event-ID (0 when absent), then live events until
// the job settles or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeJSON(w, http.StatusNotImplemented, map[string]string{"reason": "no_streaming", "detail": "response writer cannot stream"})
		return
	}
	afterID := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			afterID = n
		}
	}
	backlog, live, cancel := job.hub.subscribe(afterID)
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// Each event gets its own write deadline: a client that stops reading
	// stalls the TCP send buffer, the deadline expires, the write fails,
	// and the stream ends — instead of this handler (and the job's hub
	// slot) hanging on one stalled peer forever. The dropped client
	// reconnects with Last-Event-ID and replays what it missed.
	rc := http.NewResponseController(w)
	writeSSE := func(ev sseEvent) bool {
		if s.sseTimeout > 0 {
			deadline := time.Now().Add(s.sseTimeout) //egdlint:allow determinism SSE write deadline; never feeds a trajectory
			rc.SetWriteDeadline(deadline)            //nolint:errcheck // unsupported writers (test recorders) just skip the deadline
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Kind, ev.Data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	for _, ev := range backlog {
		if !writeSSE(ev) {
			return
		}
	}
	for {
		select {
		case ev, open := <-live:
			if !open {
				return // job settled (or subscriber dropped): stream ends
			}
			if !writeSSE(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
