package server

import (
	"fmt"
	"sync"
	"time"
)

// TenantLimits bounds what one tenant may have in flight.
type TenantLimits struct {
	// MaxActive caps a tenant's queued+running+paused jobs (0 = unlimited).
	MaxActive int
	// RatePerSec refills the tenant's submission token bucket (0 disables
	// rate limiting).
	RatePerSec float64
	// Burst is the bucket capacity (0 with RatePerSec > 0 means 1).
	Burst int
}

// quotaError is a structured quota rejection carrying the Retry-After hint.
type quotaError struct {
	Reason            string `json:"reason"`
	Detail            string `json:"detail"`
	RetryAfterSeconds int    `json:"retry_after_seconds"`
}

func (e *quotaError) Error() string {
	return fmt.Sprintf("server: quota rejected (%s): %s", e.Reason, e.Detail)
}

type tenantState struct {
	active    int
	tokens    float64
	lastNanos int64
}

// quotaTable enforces per-tenant active-job caps and token-bucket rate
// limits. All wall-clock reads go through nowNanos so tests can inject a
// fake clock and the rest of the package stays deterministic.
type quotaTable struct {
	mu      sync.Mutex
	limits  TenantLimits
	tenants map[string]*tenantState
	nowFn   func() int64
}

func newQuotaTable(limits TenantLimits, nowFn func() int64) *quotaTable {
	if nowFn == nil {
		nowFn = nowNanos
	}
	return &quotaTable{limits: limits, tenants: make(map[string]*tenantState), nowFn: nowFn}
}

// nowNanos is the quota layer's single wall-clock site.
func nowNanos() int64 {
	return time.Now().UnixNano() //egdlint:allow determinism token-bucket refill clock; never feeds a trajectory
}

func (q *quotaTable) state(tenant string) *tenantState {
	st, ok := q.tenants[tenant]
	if !ok {
		st = &tenantState{tokens: q.burst(), lastNanos: q.nowFn()}
		q.tenants[tenant] = st
	}
	return st
}

func (q *quotaTable) burst() float64 {
	if q.limits.Burst > 0 {
		return float64(q.limits.Burst)
	}
	return 1
}

// admit charges one submission against the tenant's rate bucket and active
// cap, reserving an active slot on success. A nil error means the caller
// must eventually release the slot with release().
func (q *quotaTable) admit(tenant string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := q.state(tenant)
	if q.limits.MaxActive > 0 && st.active >= q.limits.MaxActive {
		return &quotaError{
			Reason:            "tenant_active_limit",
			Detail:            fmt.Sprintf("tenant %q already has %d active jobs (limit %d)", tenant, st.active, q.limits.MaxActive),
			RetryAfterSeconds: 5,
		}
	}
	if q.limits.RatePerSec > 0 {
		now := q.nowFn()
		elapsed := float64(now-st.lastNanos) / 1e9
		st.lastNanos = now
		st.tokens += elapsed * q.limits.RatePerSec
		if b := q.burst(); st.tokens > b {
			st.tokens = b
		}
		if st.tokens < 1 {
			wait := (1 - st.tokens) / q.limits.RatePerSec
			retry := int(wait)
			if float64(retry) < wait {
				retry++
			}
			if retry < 1 {
				retry = 1
			}
			return &quotaError{
				Reason:            "tenant_rate_limit",
				Detail:            fmt.Sprintf("tenant %q exceeded %.3g submissions/s (burst %.0f)", tenant, q.limits.RatePerSec, q.burst()),
				RetryAfterSeconds: retry,
			}
		}
		st.tokens--
	}
	st.active++
	return nil
}

// restore re-reserves an active slot for a tenant's job recovered from the
// journal at boot. Unlike admit it charges no rate tokens: the submission
// was already paid for in the previous process's lifetime.
func (q *quotaTable) restore(tenant string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.state(tenant).active++
}

// release frees one of the tenant's active slots (job reached a terminal
// state).
func (q *quotaTable) release(tenant string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if st, ok := q.tenants[tenant]; ok && st.active > 0 {
		st.active--
	}
}
