package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
)

// newTestServer starts a daemon behind an httptest listener. The Server is
// closed before the listener so in-flight SSE streams end (hub close) before
// httptest waits on connections.
func newTestServer(t *testing.T, opts Options) *httptest.Server {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Close()
		ts.Close()
	})
	return ts
}

// doJSON issues one request and decodes the response body into a generic map.
func doJSON(t *testing.T, method, url, tenant, body string) (*http.Response, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatalf("building request: %v", err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	var m map[string]any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("decoding response %q: %v", raw, err)
		}
	}
	return resp, m
}

// submit POSTs a spec and asserts 202, returning the job id.
func submit(t *testing.T, ts *httptest.Server, tenant, spec string) string {
	t.Helper()
	resp, m := doJSON(t, "POST", ts.URL+"/api/v1/jobs", tenant, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: got %d, body %v", resp.StatusCode, m)
	}
	id, _ := m["id"].(string)
	if id == "" {
		t.Fatalf("submit: no job id in %v", m)
	}
	return id
}

func status(t *testing.T, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	resp, m := doJSON(t, "GET", ts.URL+"/api/v1/jobs/"+id, "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: got %d, body %v", id, resp.StatusCode, m)
	}
	return m
}

// waitUntil polls a job's status until pred accepts it, failing after ~30s.
func waitUntil(t *testing.T, ts *httptest.Server, id string, what string, pred func(map[string]any) bool) map[string]any {
	t.Helper()
	for i := 0; i < 15000; i++ {
		m := status(t, ts, id)
		if pred(m) {
			return m
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s; last status %v", id, what, status(t, ts, id))
	return nil
}

func waitState(t *testing.T, ts *httptest.Server, id string, want State) map[string]any {
	t.Helper()
	return waitUntil(t, ts, id, string(want), func(m map[string]any) bool {
		got, _ := m["state"].(string)
		if State(got).terminal() && got != string(want) {
			t.Fatalf("job %s settled as %s (error %v), want %s", id, got, m["error"], want)
		}
		return got == string(want)
	})
}

func result(t *testing.T, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	resp, m := doJSON(t, "GET", ts.URL+"/api/v1/jobs/"+id+"/result", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: got %d, body %v", id, resp.StatusCode, m)
	}
	return m
}

func TestSubmitRunsToDone(t *testing.T) {
	ts := newTestServer(t, Options{})
	spec := `{"memory":1,"ssets":8,"generations":60,"rounds":20,"seed":7}`
	id := submit(t, ts, "", spec)
	waitState(t, ts, id, StateDone)
	res := result(t, ts, id)

	fitness, _ := res["final_fitness"].([]any)
	if len(fitness) != 8 {
		t.Fatalf("final_fitness has %d entries, want 8", len(fitness))
	}
	prints, _ := res["fingerprints"].([]any)
	if len(prints) != 8 {
		t.Fatalf("fingerprints has %d entries, want 8", len(prints))
	}

	// The HTTP result must match a direct engine run of the same spec bit
	// for bit: the service adds scheduling, not simulation semantics.
	var js JobSpec
	if err := json.Unmarshal([]byte(spec), &js); err != nil {
		t.Fatal(err)
	}
	cfg, err := js.Config()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sim.RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range direct.Final {
		want := fmt.Sprintf("%016x", st.Fingerprint())
		if prints[i] != want {
			t.Fatalf("fingerprint[%d]: HTTP %v != direct %s", i, prints[i], want)
		}
	}
	for i, f := range direct.FinalFitness {
		if fitness[i].(float64) != f {
			t.Fatalf("final_fitness[%d]: HTTP %v != direct %v", i, fitness[i], f)
		}
	}
}

// stripNondeterministic removes the only fields allowed to differ between a
// paused+resumed run and an uninterrupted one.
func stripNondeterministic(m map[string]any) {
	delete(m, "id")
	delete(m, "elapsed_seconds")
}

func TestPauseResumeBitIdenticalOverHTTP(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 2})
	spec := `{"memory":1,"ssets":12,"generations":3000,"rounds":100,"seed":99,"full_recompute":true}`

	// Job A: pause mid-run, then resume.
	a := submit(t, ts, "", spec)
	waitUntil(t, ts, a, "generation >= 100", func(m map[string]any) bool {
		if s, _ := m["state"].(string); State(s).terminal() {
			t.Fatalf("job %s finished before it could be paused: %v", a, m)
		}
		g, _ := m["generation"].(float64)
		return g >= 100
	})
	if resp, m := doJSON(t, "POST", ts.URL+"/api/v1/jobs/"+a+"/pause", "", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("pause: got %d, body %v", resp.StatusCode, m)
	}
	st := waitState(t, ts, a, StatePaused)
	pausedAt, _ := st["generation"].(float64)
	if pausedAt <= 0 || pausedAt >= 3000 {
		t.Fatalf("paused at generation %v, want strictly mid-run", pausedAt)
	}
	if resp, m := doJSON(t, "POST", ts.URL+"/api/v1/jobs/"+a+"/resume", "", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("resume: got %d, body %v", resp.StatusCode, m)
	}
	waitState(t, ts, a, StateDone)
	resA := result(t, ts, a)

	// Job B: the same spec, uninterrupted.
	b := submit(t, ts, "", spec)
	waitState(t, ts, b, StateDone)
	resB := result(t, ts, b)

	stripNondeterministic(resA)
	stripNondeterministic(resB)
	if !reflect.DeepEqual(resA, resB) {
		t.Fatalf("paused+resumed result diverges from uninterrupted run\npaused:   %v\nstraight: %v", resA, resB)
	}
}

func TestLoadManyConcurrentJobs(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 4})
	var ids []string
	for i := 0; i < 50; i++ {
		ids = append(ids, submit(t, ts, "",
			fmt.Sprintf(`{"memory":1,"ssets":8,"generations":40,"rounds":10,"seed":%d}`, i+1)))
	}
	// Two large jobs ride along: one full-recompute sequential, one parallel.
	ids = append(ids, submit(t, ts, "",
		`{"memory":1,"ssets":16,"generations":300,"rounds":50,"seed":500,"full_recompute":true}`))
	ids = append(ids, submit(t, ts, "",
		`{"memory":1,"ssets":16,"generations":300,"rounds":50,"seed":501,"ranks":3}`))

	for _, id := range ids {
		waitState(t, ts, id, StateDone)
	}
	resp, m := doJSON(t, "GET", ts.URL+"/api/v1/jobs", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: got %d", resp.StatusCode)
	}
	jobs, _ := m["jobs"].([]any)
	if len(jobs) != 52 {
		t.Fatalf("list has %d jobs, want 52", len(jobs))
	}
	for _, j := range jobs {
		jm := j.(map[string]any)
		if jm["state"] != string(StateDone) {
			t.Fatalf("job %v is %v, want done", jm["id"], jm["state"])
		}
	}
}

// longSpec runs long enough that control-plane requests land mid-run.
const longSpec = `{"memory":1,"ssets":16,"generations":200000,"rounds":200,"seed":1,"full_recompute":true}`

func TestTenantActiveLimit(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1, Tenant: TenantLimits{MaxActive: 1}})
	a := submit(t, ts, "alice", longSpec)

	resp, m := doJSON(t, "POST", ts.URL+"/api/v1/jobs", "alice", longSpec)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit submit: got %d, want 429; body %v", resp.StatusCode, m)
	}
	if m["reason"] != "tenant_active_limit" {
		t.Fatalf("reason = %v, want tenant_active_limit", m["reason"])
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}

	// Another tenant is not affected by alice's cap.
	b := submit(t, ts, "bob", `{"memory":1,"ssets":8,"generations":20,"rounds":10,"seed":2}`)

	// Cancelling alice's job frees her slot.
	if resp, m := doJSON(t, "POST", ts.URL+"/api/v1/jobs/"+a+"/cancel", "", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: got %d, body %v", resp.StatusCode, m)
	}
	waitState(t, ts, a, StateCanceled)
	c := submit(t, ts, "alice", `{"memory":1,"ssets":8,"generations":20,"rounds":10,"seed":3}`)
	waitState(t, ts, b, StateDone)
	waitState(t, ts, c, StateDone)
}

func TestTenantRateLimit(t *testing.T) {
	var clock atomic.Int64
	ts := newTestServer(t, Options{
		Tenant: TenantLimits{RatePerSec: 1, Burst: 2},
		Now:    clock.Load,
	})
	small := `{"memory":1,"ssets":8,"generations":10,"rounds":10,"seed":5}`
	submit(t, ts, "alice", small)
	submit(t, ts, "alice", small)

	resp, m := doJSON(t, "POST", ts.URL+"/api/v1/jobs", "alice", small)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("burst-exhausted submit: got %d, body %v", resp.StatusCode, m)
	}
	if m["reason"] != "tenant_rate_limit" {
		t.Fatalf("reason = %v, want tenant_rate_limit", m["reason"])
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want >= 1", ra)
	}

	// One refill interval later the bucket has a token again.
	clock.Add(int64(time.Second))
	submit(t, ts, "alice", small)
	// An untouched tenant still has its full burst.
	submit(t, ts, "bob", small)
}

func TestAdmissionPerJobCeiling(t *testing.T) {
	ts := newTestServer(t, Options{MaxJobSeconds: 0.5})
	resp, m := doJSON(t, "POST", ts.URL+"/api/v1/jobs", "",
		`{"memory":3,"ssets":64,"generations":1000000,"seed":1,"full_recompute":true}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("over-budget submit: got %d, body %v", resp.StatusCode, m)
	}
	if m["reason"] != "job_over_budget" {
		t.Fatalf("reason = %v, want job_over_budget", m["reason"])
	}
	modelled, _ := m["modelled_seconds"].(float64)
	if modelled <= 0.5 {
		t.Fatalf("modelled_seconds = %v, want > ceiling 0.5", modelled)
	}
	if budget, _ := m["budget_seconds"].(float64); budget != 0.5 {
		t.Fatalf("budget_seconds = %v, want 0.5", budget)
	}

	// A small job still fits under the same ceiling.
	id := submit(t, ts, "", `{"memory":1,"ssets":8,"generations":20,"rounds":10,"seed":1}`)
	waitState(t, ts, id, StateDone)
}

func TestAdmissionOutstandingBudget(t *testing.T) {
	var js JobSpec
	if err := json.Unmarshal([]byte(longSpec), &js); err != nil {
		t.Fatal(err)
	}
	cfg, err := js.Config()
	if err != nil {
		t.Fatal(err)
	}
	est := DefaultCostModel().EstimateSeconds(cfg)
	if est <= 0 {
		t.Fatalf("estimate %v, want > 0", est)
	}

	ts := newTestServer(t, Options{Workers: 1, MaxOutstandingSeconds: 1.5 * est})
	a := submit(t, ts, "", longSpec) // fits; occupies the budget while non-terminal

	resp, m := doJSON(t, "POST", ts.URL+"/api/v1/jobs", "", longSpec)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: got %d, body %v", resp.StatusCode, m)
	}
	if m["reason"] != "capacity" {
		t.Fatalf("reason = %v, want capacity", m["reason"])
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("capacity 429 without a Retry-After header")
	}

	// Terminal jobs release their reservation.
	if resp, m := doJSON(t, "POST", ts.URL+"/api/v1/jobs/"+a+"/cancel", "", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: got %d, body %v", resp.StatusCode, m)
	}
	waitState(t, ts, a, StateCanceled)
	b := submit(t, ts, "", longSpec)
	doJSON(t, "POST", ts.URL+"/api/v1/jobs/"+b+"/cancel", "", "")
	waitState(t, ts, b, StateCanceled)
}

// sseEventRec is one parsed SSE frame.
type sseEventRec struct {
	id   int
	kind string
	data string
}

func parseSSE(t *testing.T, r io.Reader) []sseEventRec {
	t.Helper()
	var events []sseEventRec
	var cur sseEventRec
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.kind != "" {
				events = append(events, cur)
			}
			cur = sseEventRec{}
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line, "id: %d", &cur.id) //nolint:errcheck
		case strings.HasPrefix(line, "event: "):
			cur.kind = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	return events
}

func TestSSELiveStreamAndReplay(t *testing.T) {
	ts := newTestServer(t, Options{})
	id := submit(t, ts, "", `{"memory":1,"ssets":8,"generations":500,"rounds":50,"seed":11,"sample_stride":10,"full_recompute":true}`)

	// Attach while the job runs: the stream delivers backlog + live events
	// and ends when the job settles.
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events := parseSSE(t, resp.Body)
	resp.Body.Close()
	if len(events) < 3 {
		t.Fatalf("stream had %d events, want at least state+samples+state", len(events))
	}
	for i, ev := range events {
		if ev.id != events[0].id+i {
			t.Fatalf("event ids not dense: %v", events)
		}
	}
	samples := 0
	for _, ev := range events {
		if ev.kind == "sample" {
			samples++
			var se sampleEvent
			if err := json.Unmarshal([]byte(ev.data), &se); err != nil {
				t.Fatalf("sample payload %q: %v", ev.data, err)
			}
			if se.Cooperation < 0 || se.Cooperation > 1 {
				t.Fatalf("cooperation %v out of [0,1]", se.Cooperation)
			}
		}
	}
	if samples == 0 {
		t.Fatal("stream carried no sample events")
	}
	last := events[len(events)-1]
	if last.kind != "state" || !strings.Contains(last.data, string(StateDone)) {
		t.Fatalf("stream ended with %s %q, want done state", last.kind, last.data)
	}

	// Reconnecting with Last-Event-ID replays only the tail of the retained
	// timeline, even after the job settled.
	req, _ := http.NewRequest("GET", ts.URL+"/api/v1/jobs/"+id+"/events", nil)
	req.Header.Set("Last-Event-ID", fmt.Sprint(last.id-1))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	tail := parseSSE(t, resp2.Body)
	resp2.Body.Close()
	if len(tail) != 1 || tail[0].id != last.id || tail[0].kind != last.kind {
		t.Fatalf("replay after id %d returned %v, want exactly the final event", last.id-1, tail)
	}
}

func TestSpecAndTransitionErrors(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})

	badSpecs := []string{
		`{"memory":1,"ssets":8,"generations":10,"generatoins":10}`, // unknown field
		`{"memory":0,"ssets":8,"generations":10}`,                  // memory out of range
		`{"memory":1,"ssets":8,"generations":10,"ranks":1}`,        // 1 rank is not a parallel run
		`{"memory":1,"ssets":2,"generations":10,"ranks":4}`,        // more workers than games
		`not json`,
	}
	for _, spec := range badSpecs {
		resp, m := doJSON(t, "POST", ts.URL+"/api/v1/jobs", "", spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("spec %q: got %d (%v), want 400", spec, resp.StatusCode, m)
		}
		if m["reason"] != "invalid_spec" {
			t.Fatalf("spec %q: reason %v, want invalid_spec", spec, m["reason"])
		}
	}

	if resp, _ := doJSON(t, "GET", ts.URL+"/api/v1/jobs/j-999999", "", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: got %d, want 404", resp.StatusCode)
	}

	id := submit(t, ts, "", `{"memory":1,"ssets":8,"generations":20,"rounds":10,"seed":1}`)
	waitState(t, ts, id, StateDone)
	if resp, m := doJSON(t, "POST", ts.URL+"/api/v1/jobs/"+id+"/pause", "", ""); resp.StatusCode != http.StatusConflict {
		t.Fatalf("pause done job: got %d (%v), want 409", resp.StatusCode, m)
	}
	if resp, m := doJSON(t, "POST", ts.URL+"/api/v1/jobs/"+id+"/resume", "", ""); resp.StatusCode != http.StatusConflict {
		t.Fatalf("resume done job: got %d (%v), want 409", resp.StatusCode, m)
	}
	if resp, m := doJSON(t, "POST", ts.URL+"/api/v1/jobs/"+id+"/cancel", "", ""); resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel done job: got %d (%v), want 409", resp.StatusCode, m)
	}

	long := submit(t, ts, "", longSpec)
	if resp, m := doJSON(t, "GET", ts.URL+"/api/v1/jobs/"+long+"/result", "", ""); resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of running job: got %d (%v), want 409", resp.StatusCode, m)
	}
	doJSON(t, "POST", ts.URL+"/api/v1/jobs/"+long+"/cancel", "", "")
	waitState(t, ts, long, StateCanceled)
}

func TestCancelQueuedAndRunning(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	running := submit(t, ts, "", longSpec)
	queued := submit(t, ts, "", `{"memory":1,"ssets":8,"generations":20,"rounds":10,"seed":9}`)

	// The queued job never starts: its cancel flag is seen at dequeue.
	if resp, m := doJSON(t, "POST", ts.URL+"/api/v1/jobs/"+queued+"/cancel", "", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued: got %d, body %v", resp.StatusCode, m)
	}
	if resp, m := doJSON(t, "POST", ts.URL+"/api/v1/jobs/"+running+"/cancel", "", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel running: got %d, body %v", resp.StatusCode, m)
	}
	waitState(t, ts, running, StateCanceled)
	waitState(t, ts, queued, StateCanceled)
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t, Options{})
	id := submit(t, ts, "", `{"memory":1,"ssets":8,"generations":40,"rounds":10,"seed":3,"metrics":true}`)
	waitState(t, ts, id, StateDone)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"egd_server_jobs_submitted_total 1",
		`egd_server_jobs_finished_total{state="done"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
	// The finished run's own egd_* counters folded into the registry.
	if !strings.Contains(text, "egd_games_played_total") {
		t.Fatalf("/metrics did not fold run counters:\n%s", text)
	}
}
