package server

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// durableSpec is a job long enough to interrupt mid-run: full_recompute
// makes every generation cost the same, so the copy/drain points below land
// well inside the trajectory.
const durableSpec = `{"memory":1,"ssets":8,"generations":8000,"rounds":100,"seed":1234,"full_recompute":true}`

// durableOpts is the durable-mode test configuration: one worker keeps
// scheduling deterministic, a short checkpoint cadence gives crashes
// something recent to resume from.
func durableOpts(dir string) Options {
	return Options{Workers: 1, DataDir: dir, CheckpointEvery: 200}
}

// newDurableServer boots a daemon over dir and returns both handles (the
// *Server for Drain, the httptest server for requests). Close order matches
// newTestServer.
func newDurableServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(durableOpts(dir))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Close()
		ts.Close()
	})
	return s, ts
}

// resultMinusElapsed fetches a done job's result with the one wall-clock
// field removed, leaving only trajectory-determined data.
func resultMinusElapsed(t *testing.T, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	m := result(t, ts, id)
	delete(m, "elapsed_seconds")
	return m
}

// runDurableBaseline runs durableSpec to completion on a fresh durable
// daemon and returns its deterministic result.
func runDurableBaseline(t *testing.T) map[string]any {
	t.Helper()
	_, ts := newDurableServer(t, t.TempDir())
	id := submit(t, ts, "", durableSpec)
	waitState(t, ts, id, StateDone)
	return resultMinusElapsed(t, ts, id)
}

// copyDir snapshots a data directory mid-run — the moral equivalent of the
// filesystem image a kill -9 leaves behind (journal appends and checkpoint
// renames are each atomic, so any instant is a valid crash image).
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatalf("reading %s: %v", src, err)
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatalf("mkdir %s: %v", dst, err)
	}
	for _, e := range entries {
		sp, dp := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			copyDir(t, sp, dp)
			continue
		}
		data, err := os.ReadFile(sp)
		if err != nil {
			t.Fatalf("reading %s: %v", sp, err)
		}
		if err := os.WriteFile(dp, data, 0o644); err != nil {
			t.Fatalf("writing %s: %v", dp, err)
		}
	}
}

// TestRecoveryFromCrashImageBitIdentical interrupts a durable job by
// snapshotting its data directory mid-run (journal says running, checkpoint
// mid-trajectory) and boots a fresh daemon over the image: recovery must
// re-queue the job, resume it from the checkpoint, and serve a /result
// equal to an uninterrupted run's in every trajectory-determined field.
func TestRecoveryFromCrashImageBitIdentical(t *testing.T) {
	want := runDurableBaseline(t)

	liveDir, crashDir := t.TempDir(), filepath.Join(t.TempDir(), "image")
	_, ts := newDurableServer(t, liveDir)
	id := submit(t, ts, "", durableSpec)
	waitUntil(t, ts, id, "mid-run past a checkpoint", func(m map[string]any) bool {
		gen, _ := m["generation"].(float64)
		return m["state"] == string(StateRunning) && gen >= 1000
	})
	copyDir(t, liveDir, crashDir)
	// The live daemon is irrelevant now; stop its job so cleanup is quick.
	doJSON(t, "POST", ts.URL+"/api/v1/jobs/"+id+"/cancel", "", "")

	_, ts2 := newDurableServer(t, crashDir)
	st := status(t, ts2, id)
	if st["state"] != string(StateQueued) && st["state"] != string(StateRunning) && st["state"] != string(StateDone) {
		t.Fatalf("recovered job state = %v, want queued/running/done", st["state"])
	}
	waitState(t, ts2, id, StateDone)
	got := resultMinusElapsed(t, ts2, id)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("recovered result differs from uninterrupted run\n got: %v\nwant: %v", got, want)
	}
}

// TestDrainParksAndResumesBitIdentical drains a daemon mid-job (the SIGTERM
// path): the job must come back journaled queued with a durable snapshot,
// and a second daemon over the same directory must finish it with an
// uninterrupted-run result.
func TestDrainParksAndResumesBitIdentical(t *testing.T) {
	want := runDurableBaseline(t)

	dir := t.TempDir()
	s, ts := newDurableServer(t, dir)
	id := submit(t, ts, "", durableSpec)
	waitUntil(t, ts, id, "mid-run", func(m map[string]any) bool {
		gen, _ := m["generation"].(float64)
		return m["state"] == string(StateRunning) && gen >= 500
	})
	if err := s.Drain(30 * time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatalf("reading journal: %v", err)
	}
	js := replayJournal(data)
	if !js.clean {
		t.Errorf("journal not marked clean after drain")
	}
	if rj := js.jobs[id]; rj == nil || rj.state != StateQueued {
		t.Errorf("drained job journaled as %+v, want queued", js.jobs[id])
	}
	ts.Close() // release the listener; the manager is already drained

	_, ts2 := newDurableServer(t, dir)
	waitState(t, ts2, id, StateDone)
	got := resultMinusElapsed(t, ts2, id)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("drained+resumed result differs from uninterrupted run\n got: %v\nwant: %v", got, want)
	}
}

// TestRecoveryServesTerminalResults proves done jobs survive restarts
// without re-running: the journal carries the wire result.
func TestRecoveryServesTerminalResults(t *testing.T) {
	dir := t.TempDir()
	spec := `{"memory":1,"ssets":8,"generations":60,"rounds":20,"seed":7}`
	s, ts := newDurableServer(t, dir)
	id := submit(t, ts, "", spec)
	waitState(t, ts, id, StateDone)
	want := resultMinusElapsed(t, ts, id)
	if err := s.Drain(30 * time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	ts.Close()

	_, ts2 := newDurableServer(t, dir)
	got := resultMinusElapsed(t, ts2, id)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("recovered terminal result differs\n got: %v\nwant: %v", got, want)
	}
	// The elapsed field must also survive (journaled verbatim, not re-run).
	if _, ok := result(t, ts2, id)["elapsed_seconds"]; !ok {
		t.Errorf("recovered result lost elapsed_seconds")
	}
}

// TestEpochIDsStayUniqueAcrossRestarts checks the journal-persisted epoch:
// each boot mints IDs under a fresh epoch, so IDs never collide and sort in
// submission order across restarts.
func TestEpochIDsStayUniqueAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	spec := `{"memory":1,"ssets":8,"generations":40,"rounds":20,"seed":3}`
	s, ts := newDurableServer(t, dir)
	id1 := submit(t, ts, "", spec)
	waitState(t, ts, id1, StateDone)
	if err := s.Drain(time.Minute); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	ts.Close()

	_, ts2 := newDurableServer(t, dir)
	id2 := submit(t, ts2, "", spec)
	if id1 == id2 {
		t.Fatalf("job IDs collide across restarts: %s", id1)
	}
	if !(id1 < id2) {
		t.Errorf("IDs not submission-ordered across restarts: %s then %s", id1, id2)
	}
	if id1 != "j-0001-000001" || id2 != "j-0002-000001" {
		t.Errorf("unexpected epoch-counter IDs: %s, %s", id1, id2)
	}
	waitState(t, ts2, id2, StateDone)
}

// TestJournalTailDamageTolerated truncates and garbles the journal tail:
// replay must keep every intact record and report (not fail on) the tail.
func TestJournalTailDamageTolerated(t *testing.T) {
	dir := t.TempDir()
	spec := `{"memory":1,"ssets":8,"generations":40,"rounds":20,"seed":9}`
	s, ts := newDurableServer(t, dir)
	id := submit(t, ts, "", spec)
	waitState(t, ts, id, StateDone)
	s.Close()
	ts.Close()

	path := filepath.Join(dir, journalName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading journal: %v", err)
	}
	for _, tc := range []struct {
		name      string
		tail      []byte
		wantClean bool // blank-line padding is benign, real damage is not
	}{
		{"truncated-record", []byte(`{"kind":"state","job":"` + id + `","sta`), false},
		{"garbage", []byte("\x00\xffnot json at all"), false},
		{"empty-lines", []byte("\n\n\n"), true},
	} {
		damaged := append(append([]byte(nil), data...), tc.tail...)
		js := replayJournal(damaged)
		rj := js.jobs[id]
		if rj == nil || rj.state != StateDone || rj.result == nil {
			t.Errorf("%s: intact records lost: %+v", tc.name, rj)
		}
		if js.clean != tc.wantClean {
			t.Errorf("%s: clean = %v, want %v", tc.name, js.clean, tc.wantClean)
		}
		// A daemon must boot over the damaged journal and keep serving.
		dmgDir := t.TempDir()
		if err := os.MkdirAll(filepath.Join(dmgDir, checkpointsDir), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dmgDir, journalName), damaged, 0o644); err != nil {
			t.Fatal(err)
		}
		_, ts2 := newDurableServer(t, dmgDir)
		if got := status(t, ts2, id); got["state"] != string(StateDone) {
			t.Errorf("%s: recovered state = %v, want done", tc.name, got["state"])
		}
	}
}

// TestJournalCompaction drives enough appends to trigger compaction and
// checks the journal shrinks to live state while still replaying correctly.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	st, js, err := openStore(dir)
	if err != nil {
		t.Fatalf("openStore: %v", err)
	}
	defer st.close()
	if js.epoch != 0 || len(js.jobs) != 0 {
		t.Fatalf("fresh store not empty: %+v", js)
	}
	for i := 0; i < compactEvery+10; i++ {
		if err := st.append(journalRecord{Kind: recState, Job: "j-0001-000001", State: StateRunning, Gen: i}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	before, _ := os.Stat(filepath.Join(dir, journalName))
	spec := JobSpec{Memory: 1, SSets: 8, Generations: 10}
	compacted := []journalRecord{
		{Kind: recMeta, Epoch: 3},
		{Kind: recSubmit, Job: "j-0001-000001", Tenant: "default", Spec: &spec, Est: 1},
		{Kind: recState, Job: "j-0001-000001", State: StateDone, Gen: 10},
	}
	if err := st.maybeCompact(func() []journalRecord { return compacted }); err != nil {
		t.Fatalf("maybeCompact: %v", err)
	}
	after, _ := os.Stat(filepath.Join(dir, journalName))
	if after.Size() >= before.Size() {
		t.Errorf("compaction did not shrink journal: %d -> %d bytes", before.Size(), after.Size())
	}
	// Appends keep working on the swapped handle and replay sees both.
	if err := st.append(journalRecord{Kind: recClean}); err != nil {
		t.Fatalf("append after compaction: %v", err)
	}
	data, _ := os.ReadFile(filepath.Join(dir, journalName))
	got := replayJournal(data)
	if got.epoch != 3 || !got.clean || got.jobs["j-0001-000001"].state != StateDone {
		t.Errorf("replay after compaction: epoch=%d clean=%v jobs=%+v", got.epoch, got.clean, got.jobs)
	}
}

// FuzzJournalTail feeds arbitrary bytes (seeded with real journals plus
// damaged variants) through replay: it must never panic, and its outputs
// must stay internally consistent.
func FuzzJournalTail(f *testing.F) {
	var lines []string
	spec := `{"memory":1,"ssets":4,"generations":10,"seed":1}`
	lines = append(lines,
		`{"kind":"meta","epoch":2}`,
		`{"kind":"submit","job":"j-0002-000001","tenant":"default","spec":`+spec+`,"estimated_seconds":0.5}`,
		`{"kind":"state","job":"j-0002-000001","state":"running","generation":5,"event_id":3}`,
		`{"kind":"state","job":"j-0002-000001","state":"done","generation":10,"event_id":7,"result":{"id":"j-0002-000001","final_fitness":[1,2],"fingerprints":["a"],"counters":{"GamesPlayed":1,"PCEvents":0,"Adoptions":0,"Mutations":0},"mean_fitness":null,"cooperation":null,"ranks":1,"restarts":0,"elapsed_seconds":0.1}`,
		`{"kind":"clean"}`,
	)
	full := strings.Join(lines, "\n") + "\n"
	f.Add([]byte(full))
	f.Add([]byte(full + `{"kind":"state","job":"j-0002-0000`)) // torn tail
	f.Add([]byte(full + "\x00\x01garbage"))
	f.Add([]byte(""))
	f.Add([]byte("{}\n{}\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		js := replayJournal(data)
		if js.skippedTail < 0 || js.skippedTail > len(data) {
			t.Fatalf("skippedTail %d out of range for %d bytes", js.skippedTail, len(data))
		}
		seen := make(map[string]bool)
		for _, id := range js.order {
			if seen[id] {
				t.Fatalf("duplicate id %q in order", id)
			}
			seen[id] = true
			if js.jobs[id] == nil {
				t.Fatalf("ordered id %q missing from table", id)
			}
		}
		if len(js.order) != len(js.jobs) {
			t.Fatalf("order/table size mismatch: %d vs %d", len(js.order), len(js.jobs))
		}
	})
}

// TestSubmitRejectedAfterDrain pins the shutdown contract: a draining
// daemon refuses new work instead of accepting jobs it will never run.
func TestSubmitRejectedAfterDrain(t *testing.T) {
	dir := t.TempDir()
	s, ts := newDurableServer(t, dir)
	if err := s.Drain(time.Minute); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	resp, m := doJSON(t, "POST", ts.URL+"/api/v1/jobs", "", durableSpec)
	if resp.StatusCode == 202 {
		t.Fatalf("drained daemon accepted a job: %v", m)
	}
}

// TestDurableResultMatchesEphemeral guards against durable mode perturbing
// the trajectory: the same spec must produce identical results with and
// without a store (checkpointing is pure output).
func TestDurableResultMatchesEphemeral(t *testing.T) {
	spec := `{"memory":1,"ssets":8,"generations":400,"rounds":20,"seed":21,"sample_stride":10}`
	tsEphemeral := newTestServer(t, Options{Workers: 1})
	id1 := submit(t, tsEphemeral, "", spec)
	waitState(t, tsEphemeral, id1, StateDone)
	em := resultMinusElapsed(t, tsEphemeral, id1)

	_, tsDurable := newDurableServer(t, t.TempDir())
	id2 := submit(t, tsDurable, "", spec)
	waitState(t, tsDurable, id2, StateDone)
	dm := resultMinusElapsed(t, tsDurable, id2)

	// IDs differ by epoch (ephemeral 0, durable 1); everything else must not.
	delete(em, "id")
	delete(dm, "id")
	if !reflect.DeepEqual(em, dm) {
		t.Errorf("durable mode changed the trajectory\nephemeral: %v\n  durable: %v", em, dm)
	}
}

// TestRecoveredSSEIDsMonotonic checks the hub base: events published after
// a restart continue above the journal-persisted high-water mark.
func TestRecoveredSSEIDsMonotonic(t *testing.T) {
	dir := t.TempDir()
	s, ts := newDurableServer(t, dir)
	id := submit(t, ts, "", durableSpec)
	waitUntil(t, ts, id, "mid-run", func(m map[string]any) bool {
		gen, _ := m["generation"].(float64)
		return m["state"] == string(StateRunning) && gen >= 500
	})
	if err := s.Drain(30 * time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	ts.Close()

	srv2, ts2 := newDurableServer(t, dir)
	job, ok := srv2.mgr.get(id)
	if !ok {
		t.Fatalf("job %s not recovered", id)
	}
	base := job.hub.highWater()
	if base <= 0 {
		t.Fatalf("recovered hub base = %d, want the pre-restart high-water (> 0)", base)
	}
	waitState(t, ts2, id, StateDone)
	if hw := job.hub.highWater(); hw <= base {
		t.Errorf("post-restart events did not advance past base: %d -> %d", base, hw)
	}
}
