package server

import (
	"fmt"

	"repro/internal/game"
	"repro/internal/perfmodel"
	"repro/internal/sim"
)

// CostModel prices a job before it runs, reusing the perfmodel calibration
// machinery: a calibration gives the cost of one full match at each memory
// depth, and the model scales it by the job's match count and match length.
// The default (paper-fitted) calibration makes admission decisions
// deterministic; a daemon wanting host-accurate pricing can install a
// HostCalibration instead.
type CostModel struct {
	// Cal is the per-match cost table; zero value selects PaperCalibration.
	Cal perfmodel.Calibration
	// CalRounds is the match length Cal was measured/fitted at (0 selects
	// the paper's 200); per-match cost scales linearly with rounds.
	CalRounds int
}

// DefaultCostModel prices jobs with the deterministic paper calibration.
func DefaultCostModel() CostModel {
	return CostModel{Cal: perfmodel.PaperCalibration(), CalRounds: game.DefaultRounds}
}

func (m CostModel) normalised() CostModel {
	if m.Cal.ClockHz == 0 {
		m.Cal = perfmodel.PaperCalibration()
	}
	if m.CalRounds == 0 {
		m.CalRounds = game.DefaultRounds
	}
	return m
}

// EstimateSeconds models a job's sequential compute cost from its validated
// configuration:
//
//   - full recompute plays G × S × (S-1) matches;
//   - incremental mode replays only rows touched by a PC adoption or a
//     mutation: the first generation's S × (S-1) warm-up plus, per later
//     generation, at most one changed SSet's row and column (2 × (S-1)
//     matches) at the combined churn rate min(1, pc+mu);
//   - a match costs Cal.GameSeconds[memory] × rounds / CalRounds; exact
//     mode replaces the sampled match with the Markov solve, whose sparse
//     iteration is priced like a 4^memory-round match;
//   - with the pair-payoff cache on (and the config memoizable — exact
//     mode, or error-free deterministic strategies), the match count is
//     replaced by perfmodel.CacheAdjustedGames: warm-up and churn misses at
//     full price, recurring pairs at PairCacheHitCostRatio.
//
// The estimate is an admission heuristic, not a promise — it ignores rank
// parallelism (a queued job may run on any engine) and mixing effects.
func (m CostModel) EstimateSeconds(cfg sim.Config) float64 {
	m = m.normalised()
	s := float64(cfg.NumSSets)
	gens := float64(cfg.Generations)
	churn := cfg.PCRate + cfg.Mu
	if churn > 1 {
		churn = 1
	}
	var games float64
	switch {
	case cfg.PayoffCache && cacheablePayoffs(cfg):
		games = perfmodel.CacheAdjustedGames(cfg.Generations, cfg.NumSSets, churn, cfg.FullRecompute)
	case cfg.FullRecompute:
		games = gens * s * (s - 1)
	default:
		games = s * (s - 1)
		if gens > 1 {
			games += (gens - 1) * churn * 2 * (s - 1)
		}
	}
	rounds := float64(cfg.Rules.Rounds)
	if cfg.ExactPayoffs {
		rounds = float64(int64(1) << uint(2*cfg.Memory)) // 4^n state sweep
	}
	perMatch := m.Cal.GameSeconds[cfg.Memory] * rounds / float64(m.CalRounds)
	return games * perMatch
}

// cacheablePayoffs mirrors the engine's cacheability contract
// (docs/KERNEL.md) at the config level: exact-mode payoffs are always
// memoizable; sampled matches are memoizable when error-free and the
// strategy kind is deterministic. Mixed runs can still enable the cache —
// degenerate tables hit — but admission must not assume a discount for
// pairs the engine will bypass.
func cacheablePayoffs(cfg sim.Config) bool {
	return cfg.ExactPayoffs || (cfg.Kind == sim.PureStrategies && cfg.Rules.ErrorRate == 0)
}

// admissionError is a structured rejection: the HTTP layer maps Status to
// the response code and serialises the whole struct as the body, so the
// tenant sees the modelled cost that produced the decision.
type admissionError struct {
	Status            int     `json:"-"`
	Reason            string  `json:"reason"`
	Detail            string  `json:"detail"`
	ModelledSeconds   float64 `json:"modelled_seconds"`
	BudgetSeconds     float64 `json:"budget_seconds,omitempty"`
	RetryAfterSeconds int     `json:"retry_after_seconds,omitempty"`
}

func (e *admissionError) Error() string {
	return fmt.Sprintf("server: admission rejected (%s): %s", e.Reason, e.Detail)
}
