package server

import (
	"fmt"
	"sort"
)

// recoverJobs rebuilds the manager's job table, tenant quotas, and
// outstanding-work budget from a replayed journal, returning the jobs that
// must be re-queued (journaled queued, plus journaled running — a job the
// previous process died under resumes from its latest durable checkpoint,
// or from generation 0 when it never reached one; either way the finished
// trajectory is bit-identical). Must run before the worker pool starts.
func (m *Manager) recoverJobs(js *journalState) []*Job {
	var pending []*Job
	requeued, paused, terminal, failed := 0, 0, 0, 0
	for _, id := range js.order {
		rj := js.jobs[id]
		job := m.rebuildJob(rj)
		m.jobs[id] = job
		switch {
		case job.state.terminal():
			m.store.removeCheckpoint(id)
			terminal++
			if job.state == StateFailed && !rj.state.terminal() {
				failed++ // recovery itself failed this one (lost checkpoint, stale spec)
			}
		case job.state == StatePaused:
			m.quotas.restore(job.Tenant)
			m.outstanding += job.EstimatedSeconds
			paused++
		default:
			m.quotas.restore(job.Tenant)
			m.outstanding += job.EstimatedSeconds
			pending = append(pending, job)
			requeued++
		}
	}
	m.logf("egdserve: recovered %d jobs from journal (%d re-queued, %d paused, %d terminal, %d unrecoverable); epoch %d, clean shutdown %v, %d bytes of journal tail skipped",
		len(js.order), requeued, paused, terminal, failed, m.epoch, js.clean, js.skippedTail)
	return pending
}

// rebuildJob materialises one journal-replayed job. Non-terminal jobs whose
// on-disk state is unusable (a paused job with a lost checkpoint, a spec
// that no longer validates) come back failed with the reason recorded
// rather than poisoning the boot.
func (m *Manager) rebuildJob(rj *recoveredJob) *Job {
	job := &Job{
		ID:               rj.id,
		Tenant:           rj.tenant,
		Spec:             rj.spec,
		EstimatedSeconds: rj.est,
		hub:              newHubAt(rj.eventID),
		gen:              rj.gen,
	}
	job.sink = newDurableSink(job, m.store.checkpointPath(rj.id))
	if rj.state.terminal() {
		job.state = rj.state
		job.errMsg = rj.errMsg
		job.wire = rj.result
		job.hub.close()
		return job
	}
	cfg, err := rj.spec.Config()
	if err != nil {
		job.state = StateFailed
		job.errMsg = "journaled spec no longer validates: " + err.Error()
		job.hub.close()
		return job
	}
	job.cfg = cfg
	snap, serr := job.sink.Latest()
	if rj.state == StatePaused {
		if serr != nil || snap == nil {
			job.state = StateFailed
			job.errMsg = fmt.Sprintf("paused job lost its resume checkpoint across restart: %v", serr)
			job.hub.close()
			return job
		}
		job.state = StatePaused
	} else {
		// Journaled queued or running: either way the next segment runs
		// when a worker picks it up. A checkpoint read error is not fatal
		// here — the job simply restarts from generation 0.
		job.state = StateQueued
	}
	if snap != nil && serr == nil {
		job.snap = snap
		job.gen = int(snap.Generation)
		job.priorFitness = pointsFromSnapshot(snap.MeanFitness)
		job.priorCoop = pointsFromSnapshot(snap.Cooperation)
	}
	return job
}

// snapshotRecords serialises the live job table as a compacted journal: the
// epoch marker, then each job's submit and latest state in ID order. Called
// by the store under its own lock, so it must not call back into it.
func (m *Manager) snapshotRecords() []journalRecord {
	m.mu.Lock()
	ids := make([]string, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()

	recs := make([]journalRecord, 0, 1+2*len(jobs))
	recs = append(recs, journalRecord{Kind: recMeta, Epoch: m.epoch})
	for _, job := range jobs {
		job.mu.Lock()
		spec := job.Spec
		recs = append(recs,
			journalRecord{Kind: recSubmit, Job: job.ID, Tenant: job.Tenant, Spec: &spec, Est: job.EstimatedSeconds},
			journalRecord{Kind: recState, Job: job.ID, State: job.state, Gen: job.gen, Error: job.errMsg, EventID: job.hub.highWater(), Result: job.wire})
		job.mu.Unlock()
	}
	return recs
}

// persistState appends a job's current lifecycle state to the journal and
// compacts when due. A no-op without a store; append failures are counted
// and logged, not propagated — the in-memory job keeps running and the
// next transition retries durability.
func (m *Manager) persistState(job *Job) {
	if m.store == nil {
		return
	}
	job.mu.Lock()
	rec := journalRecord{Kind: recState, Job: job.ID, State: job.state, Gen: job.gen, Error: job.errMsg, EventID: job.hub.highWater(), Result: job.wire}
	job.mu.Unlock()
	if err := m.store.append(rec); err != nil {
		m.reg.Counter("egd_server_journal_errors_total").Inc()
		m.logf("egdserve: journal append for job %s: %v", job.ID, err)
	}
	if err := m.store.maybeCompact(m.snapshotRecords); err != nil {
		m.reg.Counter("egd_server_journal_errors_total").Inc()
		m.logf("egdserve: journal compaction: %v", err)
	}
}
