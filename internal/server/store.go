package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// The durable job store is an append-only JSONL write-ahead journal plus one
// checkpoint file per job. Every lifecycle transition is journaled with an
// fsync'd append before the daemon acknowledges it, so a kill -9 at any
// point loses at most the events since the last completed append — and
// recovery replays the journal to rebuild the job table, tenant quotas, and
// outstanding-work budget exactly. The journal is compacted (rewritten from
// the live job table through the same tmp+fsync+rename+dir-fsync path the
// checkpoint sink uses) every compactEvery appends, so it stays proportional
// to the job table rather than to the daemon's lifetime.

const (
	journalName    = "journal.jsonl"
	checkpointsDir = "checkpoints"
	// compactEvery bounds journal growth: after this many appends the
	// journal is rewritten from live state.
	compactEvery = 256
	// maxJournalLine bounds a single record (results carry final-population
	// arrays and sampled series; 32 MiB is far above any real job).
	maxJournalLine = 32 << 20
)

// Journal record kinds.
const (
	recMeta   = "meta"   // epoch high-water: written once per process boot
	recSubmit = "submit" // a job's immutable identity: spec, tenant, price
	recState  = "state"  // a lifecycle transition; terminal done carries the result
	recClean  = "clean"  // clean-shutdown marker: every job is durably settled or parked
)

// journalRecord is one JSONL line of the write-ahead journal. Exactly one
// kind-specific field group is populated per record.
type journalRecord struct {
	Kind string `json:"kind"`
	// meta
	Epoch int `json:"epoch,omitempty"`
	// submit / state
	Job    string   `json:"job,omitempty"`
	Tenant string   `json:"tenant,omitempty"`
	Spec   *JobSpec `json:"spec,omitempty"`
	Est    float64  `json:"estimated_seconds,omitempty"`
	// state
	State   State      `json:"state,omitempty"`
	Gen     int        `json:"generation,omitempty"`
	Error   string     `json:"error,omitempty"`
	EventID int        `json:"event_id,omitempty"`
	Result  *jobResult `json:"result,omitempty"`
}

// recoveredJob is one job's journal-replayed state: the submit record's
// identity merged with its last state record.
type recoveredJob struct {
	id      string
	tenant  string
	spec    JobSpec
	est     float64
	state   State
	gen     int
	errMsg  string
	eventID int
	result  *jobResult
}

// journalState is the outcome of replaying a journal: the per-job table in
// submission order, the epoch high-water mark, whether the previous process
// shut down cleanly, and how much undecodable tail was skipped.
type journalState struct {
	epoch       int
	clean       bool
	skippedTail int // bytes of truncated/garbage tail tolerated, 0 on a healthy journal
	jobs        map[string]*recoveredJob
	order       []string
}

// store owns the journal file handle and the checkpoint directory. All
// appends and compactions serialise on mu; append call sites must not hold
// the manager or job locks (compaction acquires them under mu to snapshot
// live state, so the lock order is store.mu → Manager.mu → Job.mu).
type store struct {
	dir string

	mu      sync.Mutex
	f       *os.File
	appends int
}

// openStore opens (creating if needed) the data directory, replays the
// existing journal, and returns the store positioned to append. A missing
// journal is a fresh store; a journal with a truncated or garbage tail is
// replayed up to the damage and the tail size reported, never fatal.
func openStore(dir string) (*store, *journalState, error) {
	if err := os.MkdirAll(filepath.Join(dir, checkpointsDir), 0o755); err != nil {
		return nil, nil, fmt.Errorf("server: creating data dir: %w", err)
	}
	path := filepath.Join(dir, journalName)
	js := emptyJournalState()
	if data, err := os.ReadFile(path); err == nil {
		js = replayJournal(data)
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("server: reading journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("server: opening journal: %w", err)
	}
	if err := syncServerDir(dir); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &store{dir: dir, f: f}, js, nil
}

func emptyJournalState() *journalState {
	return &journalState{jobs: make(map[string]*recoveredJob)}
}

// replayJournal rebuilds the job table from journal bytes. Decoding stops at
// the first undecodable line: with fsync'd appends any damage is a torn
// final write, so everything after it is treated as garbage tail and
// skipped rather than failing recovery.
func replayJournal(data []byte) *journalState {
	js := emptyJournalState()
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64<<10), maxJournalLine)
	consumed := 0
	lastKind := ""
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			consumed += len(line) + 1
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Kind == "" {
			break // torn tail: everything from here is skipped
		}
		consumed += len(line) + 1
		lastKind = rec.Kind
		js.apply(&rec)
	}
	if consumed > len(data) {
		consumed = len(data) // final line had no trailing newline
	}
	js.skippedTail = len(data) - consumed
	js.clean = lastKind == recClean && js.skippedTail == 0
	return js
}

// apply folds one record into the replay state; records for unknown kinds
// or unknown job IDs are ignored (forward compatibility and tail damage).
func (js *journalState) apply(rec *journalRecord) {
	switch rec.Kind {
	case recMeta:
		if rec.Epoch > js.epoch {
			js.epoch = rec.Epoch
		}
	case recSubmit:
		if rec.Job == "" || rec.Spec == nil {
			return
		}
		if _, ok := js.jobs[rec.Job]; !ok {
			js.order = append(js.order, rec.Job)
		}
		js.jobs[rec.Job] = &recoveredJob{
			id:     rec.Job,
			tenant: rec.Tenant,
			spec:   *rec.Spec,
			est:    rec.Est,
			state:  StateQueued,
		}
	case recState:
		rj, ok := js.jobs[rec.Job]
		if !ok {
			return
		}
		rj.state = rec.State
		rj.gen = rec.Gen
		rj.errMsg = rec.Error
		if rec.EventID > rj.eventID {
			rj.eventID = rec.EventID
		}
		if rec.Result != nil {
			rj.result = rec.Result
		}
	}
}

// append durably writes one record: marshal, write the line, fsync. The
// record is on disk when append returns.
func (st *store) append(rec journalRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("server: encoding journal record: %w", err)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil {
		return fmt.Errorf("server: journal closed")
	}
	if _, err := st.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("server: journal append: %w", err)
	}
	if err := st.f.Sync(); err != nil {
		return fmt.Errorf("server: journal fsync: %w", err)
	}
	st.appends++
	return nil
}

// maybeCompact rewrites the journal from collect()'s records once enough
// appends have accumulated. collect runs under the store lock, so no append
// can interleave between the state snapshot and the rewrite (it must not
// call store methods).
func (st *store) maybeCompact(collect func() []journalRecord) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil || st.appends < compactEvery {
		return nil
	}
	return st.compactLocked(collect())
}

// compact unconditionally rewrites the journal from recs (boot-time reset
// to the recovered state under the new epoch).
func (st *store) compact(recs []journalRecord) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil {
		return fmt.Errorf("server: journal closed")
	}
	return st.compactLocked(recs)
}

// compactLocked writes recs to a temp file, fsyncs, renames over the
// journal, fsyncs the directory, and swaps the append handle — the same
// torn-write-safe sequence sim.FileSink uses, so a crash mid-compaction
// leaves either the old journal or the new one, never a mix.
func (st *store) compactLocked(recs []journalRecord) error {
	path := filepath.Join(st.dir, journalName)
	tmp, err := os.CreateTemp(st.dir, journalName+".tmp*")
	if err != nil {
		return fmt.Errorf("server: journal compact temp: %w", err)
	}
	w := bufio.NewWriter(tmp)
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("server: encoding journal record: %w", err)
		}
		w.Write(line)     //nolint:errcheck // surfaced by Flush below
		w.WriteByte('\n') //nolint:errcheck // surfaced by Flush below
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("server: journal compact write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("server: journal compact fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("server: journal compact rename: %w", err)
	}
	if err := syncServerDir(st.dir); err != nil {
		return err
	}
	old := st.f
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("server: reopening compacted journal: %w", err)
	}
	old.Close()
	st.f = f
	st.appends = 0
	return nil
}

// checkpointPath is where a job's durable resume snapshot lives.
func (st *store) checkpointPath(jobID string) string {
	return filepath.Join(st.dir, checkpointsDir, jobID+".ckpt")
}

// removeCheckpoint deletes a settled job's snapshot file (best effort).
func (st *store) removeCheckpoint(jobID string) {
	os.Remove(st.checkpointPath(jobID)) //nolint:errcheck // absent file is the goal
}

// close releases the journal handle. Appends after close fail.
func (st *store) close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil {
		return nil
	}
	err := st.f.Close()
	st.f = nil
	return err
}

// syncServerDir fsyncs a directory so renamed/created entries survive a
// crash (mirrors the checkpoint sink's directory sync).
func syncServerDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("server: data dir open: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("server: data dir fsync: %w", err)
	}
	return nil
}
