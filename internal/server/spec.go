package server

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/game"
	"repro/internal/sim"
)

// JobSpec is the JSON body of a job submission: the subset of sim.Config a
// remote tenant may set, with zero values selecting the paper's defaults.
// Pointer fields distinguish "omitted" (default applies) from an explicit
// zero (kept), so a tenant can run a mutation-free trajectory by sending
// `"mu": 0` while plain omission still selects the paper's 0.05.
type JobSpec struct {
	// Memory is the strategy memory depth n in [1,6].
	Memory int `json:"memory"`
	// SSets is the number of Strategy Sets S.
	SSets int `json:"ssets"`
	// Generations is the evolution length.
	Generations int `json:"generations"`
	// Rounds is the IPD match length (0 selects the paper's 200).
	Rounds int `json:"rounds,omitempty"`
	// ErrorRate is the per-player per-round execution error probability.
	ErrorRate float64 `json:"error_rate,omitempty"`
	// Mixed selects probabilistic strategies instead of pure bit tables.
	Mixed bool `json:"mixed,omitempty"`
	// Seed drives every random decision; equal seeds give equal trajectories.
	Seed uint64 `json:"seed"`
	// PCRate, Mu, Beta override the paper's 0.10 / 0.05 / 1.0 when present.
	PCRate *float64 `json:"pc_rate,omitempty"`
	Mu     *float64 `json:"mu,omitempty"`
	Beta   *float64 `json:"beta,omitempty"`
	// FullRecompute replays every match every generation (the paper's
	// timing-study mode); off, the engine replays only dirty pairs.
	FullRecompute bool `json:"full_recompute,omitempty"`
	// ExactPayoffs replaces sampled matches with the exact Markov payoff.
	ExactPayoffs bool `json:"exact_payoffs,omitempty"`
	// SearchEngine selects the paper-faithful linear find_state lookup.
	SearchEngine bool `json:"search_engine,omitempty"`
	// PayoffCache enables the strategy-pair payoff memo (docs/KERNEL.md):
	// bit-identical results, recurring matches served from a bounded LRU.
	// Memoizable jobs are also priced with the cache-aware cost model, so a
	// full-recompute job the admission controller would otherwise reject can
	// clear the budget with the cache on.
	PayoffCache bool `json:"payoff_cache,omitempty"`
	// PayoffCacheSize bounds the cache entries per rank (0 selects the
	// engine default).
	PayoffCacheSize int `json:"payoff_cache_size,omitempty"`
	// Ranks selects the parallel engine with that many ranks (>= 2); 0 or 1
	// runs the sequential reference engine.
	Ranks int `json:"ranks,omitempty"`
	// SampleStride keeps every k-th generation in the recorded series
	// (0 selects the automatic ~1000-point stride).
	SampleStride int `json:"sample_stride,omitempty"`
	// CheckpointEvery persists a resume snapshot every k generations on top
	// of the pause-time snapshot the service always keeps (0 disables).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// Metrics enables the run's observability aggregate; its counters fold
	// into the daemon's /metrics registry at completion.
	Metrics bool `json:"metrics,omitempty"`
}

// parseSpec decodes a submission body strictly: unknown fields are rejected
// so a typo ("generatoins") fails loudly instead of silently running the
// default.
func parseSpec(r io.Reader) (JobSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		return JobSpec{}, fmt.Errorf("server: decoding job spec: %w", err)
	}
	return spec, nil
}

// Config materialises the spec into a validated engine configuration. The
// returned Config has its defaults normalised — in particular SampleStride
// is pinned to a concrete value, so a later resume (which shrinks
// Generations) samples on the submission-time schedule and a paused+resumed
// job's series stay bit-identical to an uninterrupted run's.
func (s JobSpec) Config() (sim.Config, error) {
	if s.Ranks == 1 || s.Ranks < 0 {
		return sim.Config{}, fmt.Errorf("server: ranks must be 0 (sequential) or >= 2, got %d", s.Ranks)
	}
	cfg := sim.Config{
		Memory:          s.Memory,
		NumSSets:        s.SSets,
		Generations:     s.Generations,
		Rules:           game.DefaultRules(),
		PCRate:          sim.DefaultPCRate,
		Mu:              sim.DefaultMu,
		Beta:            sim.DefaultBeta,
		Seed:            s.Seed,
		FullRecompute:   s.FullRecompute,
		ExactPayoffs:    s.ExactPayoffs,
		UseSearchEngine: s.SearchEngine,
		PayoffCache:     s.PayoffCache,
		PayoffCacheSize: s.PayoffCacheSize,
		SampleStride:    s.SampleStride,
		CheckpointEvery: s.CheckpointEvery,
		Metrics:         s.Metrics,
	}
	if s.Rounds > 0 {
		cfg.Rules.Rounds = s.Rounds
	}
	cfg.Rules.ErrorRate = s.ErrorRate
	if s.Mixed {
		cfg.Kind = sim.MixedStrategies
	}
	if s.PCRate != nil {
		cfg.PCRate = *s.PCRate
	}
	if s.Mu != nil {
		cfg.Mu = *s.Mu
	}
	if s.Beta != nil {
		cfg.Beta = *s.Beta
	}
	if err := cfg.Validate(); err != nil {
		return sim.Config{}, err
	}
	if s.Ranks >= 2 && s.Ranks-1 > s.SSets*(s.SSets-1) {
		return sim.Config{}, fmt.Errorf("server: %d workers exceed %d games per generation",
			s.Ranks-1, s.SSets*(s.SSets-1))
	}
	return cfg, nil
}
