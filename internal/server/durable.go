package server

import (
	"repro/internal/checkpoint"
	"repro/internal/sim"
)

// durableSink is a job's checkpoint sink in durable mode: a sim.FileSink
// (tmp+fsync+rename+dir-fsync, so a crash never leaves a torn snapshot)
// wrapped to merge the job's prior-segment series into every snapshot
// before it hits disk. The engine only samples the series of the segment it
// is running; a job that paused or crashed mid-way has earlier segments'
// points only in the job table. Folding them in here means the checkpoint
// file is self-contained: recovery reads one file and gets the resume
// point plus the complete series from generation 0, which is what makes a
// post-crash /result bit-identical to an uninterrupted run's.
type durableSink struct {
	job  *Job
	file *sim.FileSink
}

func newDurableSink(job *Job, path string) *durableSink {
	return &durableSink{job: job, file: &sim.FileSink{Path: path}}
}

// Save implements sim.CheckpointSink. s arrives with the current segment's
// series (the engine runs with CheckpointSeries set in durable mode) and is
// written with the full-history series.
func (d *durableSink) Save(s *checkpoint.Snapshot) error {
	d.job.mu.Lock()
	priorFitness := append([]samplePoint(nil), d.job.priorFitness...)
	priorCoop := append([]samplePoint(nil), d.job.priorCoop...)
	d.job.mu.Unlock()
	s.MeanFitness = mergeSeries(priorFitness, s.MeanFitness)
	s.Cooperation = mergeSeries(priorCoop, s.Cooperation)
	return d.file.Save(s)
}

// Latest implements sim.CheckpointSink.
func (d *durableSink) Latest() (*checkpoint.Snapshot, error) {
	return d.file.Latest()
}

// mergeSeries prepends prior-segment points to the current segment's. The
// segments sample disjoint generation ranges on the same pinned stride, so
// the concatenation is exactly an uninterrupted run's series so far.
func mergeSeries(prior []samplePoint, seg []checkpoint.SeriesPoint) []checkpoint.SeriesPoint {
	out := make([]checkpoint.SeriesPoint, 0, len(prior)+len(seg))
	for _, p := range prior {
		out = append(out, checkpoint.SeriesPoint{Generation: uint64(p.Generation), Value: p.Value})
	}
	return append(out, seg...)
}

// pointsFromSnapshot converts a recovered snapshot's series back to the job
// table's form; the result becomes the job's prior-segment series (the
// resumed segment starts at the snapshot generation, so every stored point
// precedes it).
func pointsFromSnapshot(ps []checkpoint.SeriesPoint) []samplePoint {
	if len(ps) == 0 {
		return nil
	}
	out := make([]samplePoint, len(ps))
	for i, p := range ps {
		out[i] = samplePoint{Generation: int(p.Generation), Value: p.Value}
	}
	return out
}
