package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// State is a job's lifecycle position. Transitions:
//
//	queued → running → done | failed | canceled
//	running → paused → queued (resume) | canceled
//	queued → canceled
type State string

// Job lifecycle states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StatePaused   State = "paused"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// terminal reports whether a state is final.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Control-request values for Job.ctrl.
const (
	ctrlRun int32 = iota
	ctrlPause
	ctrlCancel
	// ctrlDrain parks a job for shutdown: running segments stop at the next
	// generation boundary with a durable snapshot and go back to queued, so
	// the next boot's recovery re-queues them.
	ctrlDrain
)

var (
	errPauseRequested  = errors.New("server: pause requested")
	errCancelRequested = errors.New("server: cancel requested")
	errDrainRequested  = errors.New("server: drain requested")
)

// Job is one simulation run owned by the daemon: the tenant's spec, the
// normalised engine configuration, the live control/progress state, and —
// across a pause — the checkpoint the next segment resumes from.
type Job struct {
	ID     string
	Tenant string
	Spec   JobSpec
	// cfg is the validated, default-normalised configuration. SampleStride
	// is pinned here at submission, so resumed segments keep the original
	// sampling schedule (bit-identical series across pause/resume).
	cfg sim.Config
	// EstimatedSeconds is the admission controller's modelled cost.
	EstimatedSeconds float64

	hub *hub
	// sink holds the job's resume snapshots: an in-memory sink by default,
	// a durableSink (on-disk, crash-safe, series-carrying) under -data-dir.
	sink sim.CheckpointSink
	ctrl atomic.Int32

	mu     sync.Mutex
	state  State
	gen    int // last generation boundary reached
	errMsg string
	result *sim.Result
	// wire is the finished run's serialisable result, built once at settle;
	// it is what /result serves and what the journal persists, so a
	// recovered daemon answers for done jobs without re-running them.
	wire *jobResult
	snap *checkpoint.Snapshot // resume point while paused (or recovered)
	// priorFitness/priorCoop accumulate the series sampled by segments that
	// ended in a pause; the final segment's series appended to them equals an
	// uninterrupted run's series exactly (same stride, disjoint generations).
	priorFitness []samplePoint
	priorCoop    []samplePoint
}

// jobStatus is the wire form of a job's state.
type jobStatus struct {
	ID               string  `json:"id"`
	Tenant           string  `json:"tenant"`
	State            State   `json:"state"`
	Generation       int     `json:"generation"`
	Generations      int     `json:"generations"`
	EstimatedSeconds float64 `json:"estimated_seconds"`
	Error            string  `json:"error,omitempty"`
}

func (j *Job) status() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobStatus{
		ID:               j.ID,
		Tenant:           j.Tenant,
		State:            j.state,
		Generation:       j.gen,
		Generations:      j.cfg.Generations,
		EstimatedSeconds: j.EstimatedSeconds,
		Error:            j.errMsg,
	}
}

func (j *Job) setState(s State) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
	j.hub.publish("state", map[string]any{"id": j.ID, "state": s})
}

func (j *Job) setGen(gen int) {
	j.mu.Lock()
	j.gen = gen
	j.mu.Unlock()
}

func (j *Job) resumePoint() *checkpoint.Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snap
}

// sampleEvent is the SSE payload for a sampled generation. Mean fitness is
// omitted because only the sequential engine's Nature view can compute it
// in the observer; cooperation derives from strategies alone and is valid
// on both engines.
type sampleEvent struct {
	Generation  int     `json:"generation"`
	Cooperation float64 `json:"cooperation"`
	Adopted     bool    `json:"adopted,omitempty"`
	Mutated     bool    `json:"mutated,omitempty"`
}

// Manager owns the job table, the bounded queue, and the worker pool — and,
// in durable mode, the write-ahead journal and checkpoint files that let a
// restarted daemon carry on where the previous process stopped.
type Manager struct {
	queue           chan *Job
	reg             *metrics.Registry
	quotas          *quotaTable
	cost            CostModel
	workers         int
	maxJobSeconds   float64
	maxOutstanding  float64
	store           *store // nil in ephemeral (in-memory) mode
	epoch           int    // journal-persisted boot counter; 0 when ephemeral
	checkpointEvery int    // durable snapshot cadence for jobs without their own
	logf            func(format string, args ...any)

	mu          sync.Mutex
	jobs        map[string]*Job
	nextID      int
	outstanding float64 // modelled seconds of non-terminal jobs
	closed      bool

	wg sync.WaitGroup
}

func newManager(opts Options, reg *metrics.Registry) (*Manager, error) {
	m := &Manager{
		reg:             reg,
		quotas:          newQuotaTable(opts.Tenant, opts.Now),
		cost:            opts.Cost.normalised(),
		workers:         opts.workers(),
		maxJobSeconds:   opts.MaxJobSeconds,
		maxOutstanding:  opts.MaxOutstandingSeconds,
		checkpointEvery: opts.checkpointEvery(),
		logf:            opts.logf(),
		jobs:            make(map[string]*Job),
	}
	queueCap := opts.queueDepth()
	var pending []*Job
	if opts.DataDir != "" {
		st, js, err := openStore(opts.DataDir)
		if err != nil {
			return nil, err
		}
		m.store = st
		m.epoch = js.epoch + 1
		pending = m.recoverJobs(js)
		// Recovered jobs must all fit the queue regardless of the
		// configured depth: they were admitted by the previous process.
		if len(pending) > queueCap {
			queueCap = len(pending)
		}
	}
	m.queue = make(chan *Job, queueCap)
	for _, job := range pending {
		m.queue <- job
	}
	if m.store != nil {
		// Boot compaction: rewrite the journal as the recovered state under
		// the new epoch, dropping the previous process's transition history
		// (and its clean marker — the journal is "dirty" until we shut down).
		if err := m.store.compact(m.snapshotRecords()); err != nil {
			m.store.close()
			return nil, err
		}
	}
	for i := 0; i < m.workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// Close stops the pool: no new submissions are accepted, running jobs are
// cancelled, and Close returns once every worker has drained. In durable
// mode every job settles terminally, so the journal gets a clean marker.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	ids := make([]string, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		m.jobs[id].ctrl.Store(ctrlCancel)
	}
	close(m.queue)
	m.mu.Unlock()
	m.wg.Wait()
	m.markCleanAndClose()
}

// Drain parks the service for restart: submissions stop, queued jobs stay
// queued, running jobs stop at the next generation boundary with a durable
// snapshot and return to queued — all journaled, so the next boot re-queues
// them and finishes each trajectory bit-identically. Once every worker is
// idle the journal gets its clean-shutdown marker. If workers do not settle
// within timeout, Drain returns an error and writes no marker; the journal
// then still recovers correctly, it just reports an unclean shutdown.
func (m *Manager) Drain(timeout time.Duration) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return nil
	}
	m.closed = true
	ids := make([]string, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		// Only park jobs with no competing request: an in-flight pause or
		// cancel still wins, and its outcome is journaled as usual.
		m.jobs[id].ctrl.CompareAndSwap(ctrlRun, ctrlDrain)
	}
	close(m.queue)
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		return fmt.Errorf("server: drain timed out after %s; journal left unclean (recovery will resume interrupted jobs)", timeout)
	}
	// End every open event stream so the HTTP server can finish its own
	// shutdown; parked jobs' timelines stay readable for late replays.
	m.mu.Lock()
	ids = ids[:0]
	for id := range m.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		m.jobs[id].hub.close()
	}
	m.mu.Unlock()
	m.markCleanAndClose()
	return nil
}

// markCleanAndClose finalises the journal after the pool has drained.
func (m *Manager) markCleanAndClose() {
	if m.store == nil {
		return
	}
	if err := m.store.append(journalRecord{Kind: recClean}); err != nil {
		m.logf("egdserve: journal clean marker: %v", err)
	}
	if err := m.store.close(); err != nil {
		m.logf("egdserve: closing journal: %v", err)
	}
}

func (m *Manager) get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	return job, ok
}

// list returns all job statuses sorted by ID (submission order: IDs are
// zero-padded sequence numbers).
func (m *Manager) list() []jobStatus {
	m.mu.Lock()
	ids := make([]string, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	jobs := make([]*Job, 0, len(ids))
	sort.Strings(ids)
	for _, id := range ids {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]jobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	return out
}

// drainSeconds estimates how long the current backlog needs to clear: the
// outstanding modelled work divided across the pool, clamped to [1s, 600s]
// for a usable Retry-After.
func (m *Manager) drainSeconds() int {
	s := int(m.outstanding / float64(m.workers))
	if s < 1 {
		s = 1
	}
	if s > 600 {
		s = 600
	}
	return s
}

// Submit validates, prices, and admits a job, returning it in StateQueued.
// Errors are *specError (malformed), *admissionError (over budget), or
// *quotaError (tenant limits); the HTTP layer maps each to its status.
func (m *Manager) Submit(tenant string, spec JobSpec) (*Job, error) {
	cfg, err := spec.Config()
	if err != nil {
		m.reject("invalid_spec")
		return nil, &specError{Detail: err.Error()}
	}
	est := m.cost.EstimateSeconds(cfg)
	if m.maxJobSeconds > 0 && est > m.maxJobSeconds {
		m.reject("job_over_budget")
		return nil, &admissionError{
			Status:          422,
			Reason:          "job_over_budget",
			Detail:          fmt.Sprintf("modelled cost %.3g s exceeds the per-job ceiling %.3g s; shrink the job or split it", est, m.maxJobSeconds),
			ModelledSeconds: est,
			BudgetSeconds:   m.maxJobSeconds,
		}
	}
	if err := m.quotas.admit(tenant); err != nil {
		var qe *quotaError
		if errors.As(err, &qe) {
			m.reject(qe.Reason)
		}
		return nil, err
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.quotas.release(tenant)
		return nil, &specError{Detail: "server shutting down"}
	}
	if m.maxOutstanding > 0 && m.outstanding+est > m.maxOutstanding {
		retry := m.drainSeconds()
		m.mu.Unlock()
		m.quotas.release(tenant)
		m.reject("capacity")
		return nil, &admissionError{
			Status:            429,
			Reason:            "capacity",
			Detail:            fmt.Sprintf("modelled cost %.3g s does not fit the outstanding-work budget %.3g s", est, m.maxOutstanding),
			ModelledSeconds:   est,
			BudgetSeconds:     m.maxOutstanding,
			RetryAfterSeconds: retry,
		}
	}
	m.nextID++
	// IDs are epoch-counter pairs: the epoch is a journal-persisted boot
	// counter, so IDs stay unique and lexicographically submission-ordered
	// across daemon restarts (epoch 0 is the ephemeral, storeless mode).
	job := &Job{
		ID:               fmt.Sprintf("j-%04d-%06d", m.epoch, m.nextID),
		Tenant:           tenant,
		Spec:             spec,
		cfg:              cfg,
		EstimatedSeconds: est,
		hub:              newHub(),
		state:            StateQueued,
	}
	job.sink = m.newSink(job)
	m.jobs[job.ID] = job
	m.outstanding += est
	m.mu.Unlock()

	// Journal the admission before acknowledging it: once the tenant sees
	// 202, the job survives a crash.
	if m.store != nil {
		if err := m.store.append(journalRecord{Kind: recSubmit, Job: job.ID, Tenant: job.Tenant, Spec: &spec, Est: est}); err != nil {
			m.reg.Counter("egd_server_journal_errors_total").Inc()
			m.logf("egdserve: journal submit for job %s: %v", job.ID, err)
		}
	}
	m.persistState(job)

	if err := m.enqueue(job); err != nil {
		m.settle(job, StateCanceled, nil, "")
		return nil, err
	}
	m.reg.Counter("egd_server_jobs_submitted_total").Inc()
	return job, nil
}

// newSink selects a job's checkpoint sink: durable on-disk snapshots when a
// store is configured, in-memory otherwise.
func (m *Manager) newSink(job *Job) sim.CheckpointSink {
	if m.store == nil {
		return sim.NewMemorySink()
	}
	return newDurableSink(job, m.store.checkpointPath(job.ID))
}

// enqueue places a queued job on the worker queue without blocking; a full
// queue is a capacity rejection with a drain-time Retry-After. The send
// happens under the manager lock so it can never race the queue close in
// Close/Drain (which also hold the lock).
func (m *Manager) enqueue(job *Job) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return &specError{Detail: "server shutting down"}
	}
	select {
	case m.queue <- job:
		m.mu.Unlock()
		m.reg.Gauge("egd_server_queue_depth").Set(int64(len(m.queue)))
		return nil
	default:
		retry := m.drainSeconds()
		m.mu.Unlock()
		m.reject("queue_full")
		return &admissionError{
			Status:            429,
			Reason:            "queue_full",
			Detail:            fmt.Sprintf("job queue is full (%d entries)", cap(m.queue)),
			ModelledSeconds:   job.EstimatedSeconds,
			RetryAfterSeconds: retry,
		}
	}
}

func (m *Manager) reject(reason string) {
	m.reg.Counter(metrics.Name("egd_server_jobs_rejected_total", "reason", reason)).Inc()
}

// Pause asks a queued or running job to stop at the next generation
// boundary and persist its resume snapshot.
func (m *Manager) Pause(job *Job) error {
	job.mu.Lock()
	defer job.mu.Unlock()
	if job.state != StateRunning && job.state != StateQueued {
		return &stateError{Detail: fmt.Sprintf("job %s is %s; only queued or running jobs pause", job.ID, job.state)}
	}
	job.ctrl.Store(ctrlPause)
	return nil
}

// Resume re-queues a paused job; its next segment starts from the pause
// snapshot.
func (m *Manager) Resume(job *Job) error {
	job.mu.Lock()
	if job.state != StatePaused {
		job.mu.Unlock()
		return &stateError{Detail: fmt.Sprintf("job %s is %s; only paused jobs resume", job.ID, job.state)}
	}
	job.state = StateQueued
	job.ctrl.Store(ctrlRun)
	job.mu.Unlock()
	job.hub.publish("state", map[string]any{"id": job.ID, "state": StateQueued})
	m.persistState(job)
	if err := m.enqueue(job); err != nil {
		job.mu.Lock()
		job.state = StatePaused
		job.mu.Unlock()
		m.persistState(job)
		return err
	}
	return nil
}

// Cancel terminates a job: running jobs stop at the next generation
// boundary; queued and paused jobs are cancelled immediately.
func (m *Manager) Cancel(job *Job) error {
	job.mu.Lock()
	state := job.state
	job.mu.Unlock()
	switch state {
	case StateRunning, StateQueued:
		// A queued job's worker sees the flag at dequeue and settles it.
		job.ctrl.Store(ctrlCancel)
		return nil
	case StatePaused:
		m.settle(job, StateCanceled, nil, "")
		return nil
	default:
		return &stateError{Detail: fmt.Sprintf("job %s is already %s", job.ID, state)}
	}
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for job := range m.queue {
		m.reg.Gauge("egd_server_queue_depth").Set(int64(len(m.queue)))
		m.runJob(job)
	}
}

// runJob executes one segment of a job: from its spec configuration, or
// from the pause snapshot when resuming. It ends in done/failed/canceled,
// or in paused with a fresh resume snapshot.
func (m *Manager) runJob(job *Job) {
	switch job.ctrl.Load() {
	case ctrlCancel:
		m.settle(job, StateCanceled, nil, "")
		return
	case ctrlDrain:
		// Draining: the job stays queued (already journaled as such); the
		// next boot's recovery re-queues it.
		return
	}
	job.setState(StateRunning)
	m.persistState(job)
	m.reg.Gauge("egd_server_jobs_running").Add(1)
	defer m.reg.Gauge("egd_server_jobs_running").Add(-1)

	cfg := job.cfg
	end := job.cfg.StartGeneration + job.cfg.Generations
	if snap := job.resumePoint(); snap != nil {
		cfg.InitialStrategies = snap.Strategies
		cfg.StartGeneration = int(snap.Generation)
		cfg.Generations = end - int(snap.Generation)
		if rc := snap.Counters; rc != nil {
			cfg.BaseCounters = sim.Counters{
				GamesPlayed: rc.GamesPlayed,
				PCEvents:    rc.PCEvents,
				Adoptions:   rc.Adoptions,
				Mutations:   rc.Mutations,
			}
		}
	}
	cfg.CheckpointSink = job.sink
	if m.store != nil {
		// Durable mode: snapshots carry the sampled series (so a recovered
		// /result keeps pre-crash points), and every job checkpoints on the
		// server cadence even when its spec asked for none — otherwise a
		// crash would replay the whole trajectory from generation 0.
		cfg.CheckpointSeries = true
		if cfg.CheckpointEvery == 0 {
			cfg.CheckpointEvery = m.checkpointEvery
		}
	}
	cfg.Control = func(gen int) error {
		job.setGen(gen)
		switch job.ctrl.Load() {
		case ctrlPause:
			return errPauseRequested
		case ctrlCancel:
			return errCancelRequested
		case ctrlDrain:
			return errDrainRequested
		}
		return nil
	}
	stride := cfg.SampleStride
	cfg.Observer = sim.ObserverFunc(func(gen int, pop *sim.Population, ev sim.Events) {
		job.setGen(gen + 1)
		if gen%stride == 0 {
			job.hub.publish("sample", sampleEvent{
				Generation:  gen,
				Cooperation: pop.MeanCooperationProb(),
				Adopted:     ev.Adopted,
				Mutated:     ev.MutationOccurred,
			})
		}
	})

	var res *sim.Result
	var err error
	if job.Spec.Ranks >= 2 {
		res, err = sim.RunParallel(cfg, job.Spec.Ranks)
	} else {
		res, err = sim.RunSequential(cfg)
	}
	switch {
	case err == nil:
		m.settle(job, StateDone, res, "")
	case errors.Is(err, sim.ErrStopped) && job.ctrl.Load() == ctrlPause:
		snap, serr := job.sink.Latest()
		if serr != nil || snap == nil {
			m.settle(job, StateFailed, nil, fmt.Sprintf("pause snapshot unavailable: %v", serr))
			return
		}
		job.mu.Lock()
		job.snap = snap
		job.gen = int(snap.Generation)
		job.state = StatePaused
		if res != nil { // partial result: series observed before the cut
			job.priorFitness = append(job.priorFitness, seriesPoints(res.MeanFitness)...)
			job.priorCoop = append(job.priorCoop, seriesPoints(res.Cooperation)...)
		}
		job.mu.Unlock()
		job.ctrl.Store(ctrlRun)
		job.hub.publish("state", map[string]any{"id": job.ID, "state": StatePaused, "generation": snap.Generation})
		m.persistState(job)
	case errors.Is(err, sim.ErrStopped) && job.ctrl.Load() == ctrlDrain:
		// Shutdown drain: the engine persisted a durable snapshot before
		// stopping; park the job as queued so recovery resumes it from
		// exactly this boundary.
		snap, serr := job.sink.Latest()
		if serr != nil || snap == nil {
			m.settle(job, StateFailed, nil, fmt.Sprintf("drain snapshot unavailable: %v", serr))
			return
		}
		job.mu.Lock()
		job.snap = snap
		job.gen = int(snap.Generation)
		job.state = StateQueued
		if res != nil {
			job.priorFitness = append(job.priorFitness, seriesPoints(res.MeanFitness)...)
			job.priorCoop = append(job.priorCoop, seriesPoints(res.Cooperation)...)
		}
		job.mu.Unlock()
		job.hub.publish("state", map[string]any{"id": job.ID, "state": StateQueued, "generation": snap.Generation})
		m.persistState(job)
	case errors.Is(err, sim.ErrStopped):
		m.settle(job, StateCanceled, nil, "")
	default:
		m.settle(job, StateFailed, nil, err.Error())
	}
}

// settle moves a job to a terminal state exactly once: records the outcome,
// releases its budget reservation and tenant slot, folds its metrics into
// the daemon registry, and closes its event stream.
func (m *Manager) settle(job *Job, state State, res *sim.Result, errMsg string) {
	job.mu.Lock()
	if job.state.terminal() {
		job.mu.Unlock()
		return
	}
	job.state = state
	job.result = res
	job.errMsg = errMsg
	if res != nil {
		job.gen = job.cfg.StartGeneration + job.cfg.Generations
		if state == StateDone {
			job.wire = buildWireLocked(job, res)
		}
	}
	job.mu.Unlock()

	m.mu.Lock()
	m.outstanding -= job.EstimatedSeconds
	if m.outstanding < 0 {
		m.outstanding = 0
	}
	m.mu.Unlock()
	m.quotas.release(job.Tenant)
	m.reg.Counter(metrics.Name("egd_server_jobs_finished_total", "state", string(state))).Inc()
	if res != nil {
		if runReg := res.MetricsRegistry(); runReg != nil {
			foldCounters(m.reg, runReg)
		}
	}
	job.hub.publish("state", map[string]any{"id": job.ID, "state": state, "error": errMsg})
	job.hub.close()
	m.persistState(job)
	if m.store != nil {
		m.store.removeCheckpoint(job.ID)
	}
}

// foldCounters accumulates a finished run's counters into the daemon
// registry (snapshots are name-sorted, so the fold order is deterministic).
func foldCounters(dst, src *metrics.Registry) {
	snap := src.Snapshot()
	for _, c := range snap.Counters {
		dst.Counter(c.Name).Add(c.Value)
	}
}

// specError is a malformed-submission rejection (HTTP 400).
type specError struct {
	Detail string `json:"detail"`
}

func (e *specError) Error() string { return "server: invalid job spec: " + e.Detail }

// stateError is an invalid lifecycle transition (HTTP 409).
type stateError struct {
	Detail string `json:"detail"`
}

func (e *stateError) Error() string { return "server: invalid state transition: " + e.Detail }
