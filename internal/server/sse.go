package server

import (
	"encoding/json"
	"sync"
)

// sseEvent is one entry on a job's event timeline. IDs are 1-based and
// dense, so a reconnecting client's Last-Event-ID maps directly to an index
// into the retained timeline for replay.
type sseEvent struct {
	ID   int
	Kind string
	Data []byte // one JSON object, no newlines
}

// hub is a per-job event fan-out: publishers append to a retained timeline,
// subscribers receive the backlog (after their Last-Event-ID) plus live
// events. Slow subscribers are dropped rather than blocking the engine —
// they reconnect with Last-Event-ID and replay what they missed.
//
// base offsets the ID sequence: a hub rebuilt after a daemon restart starts
// at the journal-persisted high-water mark, so IDs stay monotonic across
// restarts even though the pre-restart timeline itself is not retained (a
// reconnecting client with a pre-restart Last-Event-ID replays the whole
// post-restart timeline instead).
type hub struct {
	mu     sync.Mutex
	base   int
	events []sseEvent
	subs   []chan sseEvent
	closed bool
}

func newHub() *hub { return &hub{} }

// newHubAt creates a hub whose first event gets ID base+1.
func newHubAt(base int) *hub {
	if base < 0 {
		base = 0
	}
	return &hub{base: base}
}

// highWater returns the highest event ID issued so far (base when none).
func (h *hub) highWater() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.base + len(h.events)
}

// publish appends one event and fans it out. v is serialised to JSON;
// serialisation failures are impossible for the value types the server
// publishes (plain structs of numbers and strings), so publish is infallible
// by design.
func (h *hub) publish(kind string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte(`{"error":"unencodable event"}`)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	ev := sseEvent{ID: h.base + len(h.events) + 1, Kind: kind, Data: data}
	h.events = append(h.events, ev)
	live := h.subs[:0]
	for _, ch := range h.subs {
		select {
		case ch <- ev:
			live = append(live, ch)
		default:
			close(ch) // lagging subscriber: drop; it replays via Last-Event-ID
		}
	}
	h.subs = live
}

// subscribe registers a listener. backlog holds every retained event with
// ID > afterID; ch then carries live events until cancel is called, the
// subscriber lags, or the hub closes (channel closed in all three cases).
func (h *hub) subscribe(afterID int) (backlog []sseEvent, ch chan sseEvent, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	idx := afterID - h.base
	if idx < 0 {
		idx = 0
	}
	if idx < len(h.events) {
		backlog = append(backlog, h.events[idx:]...)
	}
	ch = make(chan sseEvent, 64)
	if h.closed {
		close(ch)
		return backlog, ch, func() {}
	}
	h.subs = append(h.subs, ch)
	cancel = func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		for i, c := range h.subs {
			if c == ch {
				h.subs = append(h.subs[:i], h.subs[i+1:]...)
				close(c)
				return
			}
		}
	}
	return backlog, ch, cancel
}

// close ends the stream: subscribers' channels are closed after any events
// already queued, and later publishes are ignored. The timeline stays
// readable for Last-Event-ID replays of finished jobs.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for _, ch := range h.subs {
		close(ch)
	}
	h.subs = nil
}
