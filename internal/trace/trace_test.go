package trace

import (
	"bytes"
	"strings"
	"testing"
)

func rec(gen int) Record {
	return Record{Generation: gen, MeanFitness: float64(gen) * 0.1, Cooperation: 0.5, Distinct: gen % 7, PC: gen%2 == 0, Adopted: gen%4 == 0, Mutated: gen%3 == 0}
}

func TestRecorderUnbounded(t *testing.T) {
	r := NewRecorder(0)
	for g := 0; g < 100; g++ {
		r.Add(rec(g))
	}
	if r.Len() != 100 || r.Seen() != 100 {
		t.Fatalf("len %d seen %d", r.Len(), r.Seen())
	}
	if r.Stride() != 1 {
		t.Fatal("unbounded recorder thinned")
	}
}

func TestRecorderThinning(t *testing.T) {
	r := NewRecorder(64)
	for g := 0; g < 10000; g++ {
		r.Add(rec(g))
	}
	if r.Len() > 64 {
		t.Fatalf("kept %d records over cap 64", r.Len())
	}
	if r.Seen() != 10000 {
		t.Fatalf("seen %d", r.Seen())
	}
	if r.Stride() < 2 {
		t.Fatal("no thinning occurred")
	}
	// Kept generations must respect the stride and stay ordered.
	last := -1
	for _, kept := range r.Records() {
		if kept.Generation%r.Stride() != 0 {
			t.Fatalf("generation %d kept at stride %d", kept.Generation, r.Stride())
		}
		if kept.Generation <= last {
			t.Fatal("records out of order")
		}
		last = kept.Generation
	}
	// Early and late trajectory both survive thinning.
	if r.Records()[0].Generation > 1000 {
		t.Fatalf("early trajectory lost: first kept gen %d", r.Records()[0].Generation)
	}
	if last < 8000 {
		t.Fatalf("late trajectory lost: last kept gen %d", last)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := NewRecorder(0)
	for g := 0; g < 25; g++ {
		r.Add(rec(g))
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 25 {
		t.Fatalf("parsed %d records", len(got))
	}
	for i, g := range got {
		if g != rec(i) {
			t.Fatalf("record %d = %+v, want %+v", i, g, rec(i))
		}
	}
}

func TestJSONOutput(t *testing.T) {
	r := NewRecorder(0)
	r.Add(rec(3))
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, `"generation":3`) || !strings.Contains(s, `"mean_fitness"`) {
		t.Fatalf("JSON output missing fields: %s", s)
	}
}

func TestParseCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"not,a,header\n1,2,3",
		"generation,mean_fitness,cooperation,distinct_strategies,pc_event,adopted,mutated\n1,2",
		"generation,mean_fitness,cooperation,distinct_strategies,pc_event,adopted,mutated\nx,1,1,1,true,true,true",
		"generation,mean_fitness,cooperation,distinct_strategies,pc_event,adopted,mutated\n1,x,1,1,true,true,true",
		"generation,mean_fitness,cooperation,distinct_strategies,pc_event,adopted,mutated\n1,1,1,x,true,true,true",
		"generation,mean_fitness,cooperation,distinct_strategies,pc_event,adopted,mutated\n1,1,1,1,maybe,true,true",
	}
	for i, c := range cases {
		if _, err := ParseCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: bad CSV accepted", i)
		}
	}
}

func TestParseCSVHeaderOnly(t *testing.T) {
	got, err := ParseCSV(strings.NewReader("generation,mean_fitness,cooperation,distinct_strategies,pc_event,adopted,mutated\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed %d records from header-only CSV", len(got))
	}
}
