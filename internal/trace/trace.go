// Package trace records per-generation simulation events and exports them
// as CSV or JSON — the observability layer sitting where the paper's Nature
// Agent "handles all file I/O to record the global variables across
// generations".
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Record is one generation's logged state.
type Record struct {
	Generation  int     `json:"generation"`
	MeanFitness float64 `json:"mean_fitness"`
	Cooperation float64 `json:"cooperation"`
	Distinct    int     `json:"distinct_strategies"`
	PC          bool    `json:"pc_event"`
	Adopted     bool    `json:"adopted"`
	Mutated     bool    `json:"mutated"`
}

// Recorder accumulates records with an optional cap; when full, the oldest
// half is compacted away by doubling the keep-stride (reservoir-style
// thinning that preserves trajectory shape for arbitrarily long runs).
type Recorder struct {
	records []Record
	cap     int
	stride  int
	seen    int
}

// NewRecorder creates a recorder keeping at most capacity records
// (capacity <= 0 means unbounded).
func NewRecorder(capacity int) *Recorder {
	return &Recorder{cap: capacity, stride: 1}
}

// Add appends a record, thinning when over capacity.
func (r *Recorder) Add(rec Record) {
	r.seen++
	if r.stride > 1 && rec.Generation%r.stride != 0 {
		return
	}
	r.records = append(r.records, rec)
	if r.cap > 0 && len(r.records) > r.cap {
		r.stride *= 2
		kept := r.records[:0]
		for _, old := range r.records {
			if old.Generation%r.stride == 0 {
				kept = append(kept, old)
			}
		}
		r.records = kept
	}
}

// Len returns the number of kept records.
func (r *Recorder) Len() int { return len(r.records) }

// Seen returns the number of records ever offered.
func (r *Recorder) Seen() int { return r.seen }

// Records returns the kept records (not a copy).
func (r *Recorder) Records() []Record { return r.records }

// Stride returns the current keep-stride.
func (r *Recorder) Stride() int { return r.stride }

// WriteCSV writes the kept records as CSV with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("generation,mean_fitness,cooperation,distinct_strategies,pc_event,adopted,mutated\n")
	for _, rec := range r.records {
		sb.WriteString(strconv.Itoa(rec.Generation))
		sb.WriteByte(',')
		sb.WriteString(strconv.FormatFloat(rec.MeanFitness, 'g', -1, 64))
		sb.WriteByte(',')
		sb.WriteString(strconv.FormatFloat(rec.Cooperation, 'g', -1, 64))
		sb.WriteByte(',')
		sb.WriteString(strconv.Itoa(rec.Distinct))
		sb.WriteByte(',')
		sb.WriteString(strconv.FormatBool(rec.PC))
		sb.WriteByte(',')
		sb.WriteString(strconv.FormatBool(rec.Adopted))
		sb.WriteByte(',')
		sb.WriteString(strconv.FormatBool(rec.Mutated))
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteJSON writes the kept records as a JSON array.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r.records)
}

// ParseCSV reads records written by WriteCSV.
func ParseCSV(rd io.Reader) ([]Record, error) {
	data, err := io.ReadAll(rd)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	if !strings.HasPrefix(lines[0], "generation,") {
		return nil, fmt.Errorf("trace: missing CSV header")
	}
	out := make([]Record, 0, len(lines)-1)
	for ln, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != 7 {
			return nil, fmt.Errorf("trace: line %d has %d fields", ln+2, len(fields))
		}
		var rec Record
		if rec.Generation, err = strconv.Atoi(fields[0]); err != nil {
			return nil, fmt.Errorf("trace: line %d generation: %w", ln+2, err)
		}
		if rec.MeanFitness, err = strconv.ParseFloat(fields[1], 64); err != nil {
			return nil, fmt.Errorf("trace: line %d mean_fitness: %w", ln+2, err)
		}
		if rec.Cooperation, err = strconv.ParseFloat(fields[2], 64); err != nil {
			return nil, fmt.Errorf("trace: line %d cooperation: %w", ln+2, err)
		}
		if rec.Distinct, err = strconv.Atoi(fields[3]); err != nil {
			return nil, fmt.Errorf("trace: line %d distinct: %w", ln+2, err)
		}
		if rec.PC, err = strconv.ParseBool(fields[4]); err != nil {
			return nil, fmt.Errorf("trace: line %d pc: %w", ln+2, err)
		}
		if rec.Adopted, err = strconv.ParseBool(fields[5]); err != nil {
			return nil, fmt.Errorf("trace: line %d adopted: %w", ln+2, err)
		}
		if rec.Mutated, err = strconv.ParseBool(fields[6]); err != nil {
			return nil, fmt.Errorf("trace: line %d mutated: %w", ln+2, err)
		}
		out = append(out, rec)
	}
	return out, nil
}
