package trace

import (
	"strings"
	"testing"
)

// FuzzParseCSV hardens the trace parser: arbitrary text must never panic,
// and accepted input must re-serialise losslessly.
func FuzzParseCSV(f *testing.F) {
	f.Add("generation,mean_fitness,cooperation,distinct_strategies,pc_event,adopted,mutated\n" +
		"0,2.5,0.5,3,true,false,true\n1,2.6,0.51,2,false,false,false\n")
	f.Add("generation,mean_fitness,cooperation,distinct_strategies,pc_event,adopted,mutated\n")
	f.Add("")
	f.Add("garbage\n1,2,3")

	f.Fuzz(func(t *testing.T, data string) {
		recs, err := ParseCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		r := NewRecorder(0)
		for _, rec := range recs {
			r.Add(rec)
		}
		var sb strings.Builder
		if err := r.WriteCSV(&sb); err != nil {
			t.Fatalf("accepted records do not re-serialise: %v", err)
		}
		again, err := ParseCSV(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("re-serialised records do not parse: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count %d -> %d", len(recs), len(again))
		}
		for i := range recs {
			if recs[i] != again[i] {
				t.Fatalf("record %d changed: %+v -> %+v", i, recs[i], again[i])
			}
		}
	})
}
