package trace

import (
	"encoding/json"
	"io"
	"sync"
)

// EventKind classifies a fault-tolerance event.
type EventKind string

// Fault-tolerance event kinds.
const (
	// EventFault: a rank failure was detected (injected or organic).
	EventFault EventKind = "fault"
	// EventCheckpoint: the Nature Agent persisted a snapshot.
	EventCheckpoint EventKind = "checkpoint"
	// EventRecovery: the supervisor restarted the run from a snapshot.
	EventRecovery EventKind = "recovery"
	// EventDegrade: the supervisor restarted with fewer ranks.
	EventDegrade EventKind = "degrade"
	// EventGiveUp: the restart budget was exhausted.
	EventGiveUp EventKind = "give_up"
	// EventEviction: a failed rank was evicted live — the world shrank onto
	// the survivors and the run continued without a restart.
	EventEviction EventKind = "eviction"
	// EventEvictionFailed: live eviction was not possible (the Nature rank
	// died, or survivors fell below the configured floor); the run falls
	// back to checkpoint-restart.
	EventEvictionFailed EventKind = "eviction_failed"
	// EventMetrics: the engine aggregated the run's observability metrics
	// (Config.Metrics); Detail carries a deterministic one-line summary.
	EventMetrics EventKind = "metrics"
)

// Event is one fault-tolerance occurrence on a run's timeline.
type Event struct {
	Kind EventKind `json:"kind"`
	// Generation is the absolute generation the event refers to: the
	// snapshot generation for checkpoints, the resume generation for
	// recoveries. -1 when unknown (e.g. a failure before any checkpoint).
	Generation int `json:"generation"`
	// Rank is the rank involved: the failed rank for faults, the writing
	// rank for checkpoints. -1 when not rank-specific.
	Rank int `json:"rank"`
	// Attempt is the supervisor's restart attempt number (0 for the first
	// run); meaningful for recovery/degrade/give-up events.
	Attempt int `json:"attempt"`
	// Detail is a human-readable elaboration (e.g. the failure error).
	Detail string `json:"detail,omitempty"`
}

// EventLog is a concurrency-safe append-only fault-tolerance event log. The
// Nature Agent appends checkpoint events from inside the world while the
// supervisor appends recovery events between worlds, so appends are
// mutex-guarded.
type EventLog struct {
	mu     sync.Mutex
	events []Event
}

// NewEventLog creates an empty log.
func NewEventLog() *EventLog { return &EventLog{} }

// Append adds an event.
func (l *EventLog) Append(e Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

// Events returns a copy of the log in append order.
func (l *EventLog) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Count returns how many events of the given kind were logged.
func (l *EventLog) Count(kind EventKind) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// Len returns the total number of events.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// WriteJSON writes the log as a JSON array.
func (l *EventLog) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(l.Events())
}
