package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestEventLogAppendAndCount(t *testing.T) {
	l := NewEventLog()
	l.Append(Event{Kind: EventCheckpoint, Generation: 100, Rank: 0})
	l.Append(Event{Kind: EventFault, Generation: -1, Rank: 2, Detail: "injected"})
	l.Append(Event{Kind: EventRecovery, Generation: 100, Rank: 2, Attempt: 1})
	l.Append(Event{Kind: EventCheckpoint, Generation: 200, Rank: 0})
	if l.Len() != 4 {
		t.Fatalf("len = %d, want 4", l.Len())
	}
	if n := l.Count(EventCheckpoint); n != 2 {
		t.Fatalf("checkpoint count = %d, want 2", n)
	}
	if n := l.Count(EventGiveUp); n != 0 {
		t.Fatalf("give-up count = %d, want 0", n)
	}
	ev := l.Events()
	if ev[0].Kind != EventCheckpoint || ev[1].Kind != EventFault || ev[2].Attempt != 1 {
		t.Fatalf("events out of order: %+v", ev)
	}
	// Events returns a copy: mutating it must not corrupt the log.
	ev[0].Kind = EventGiveUp
	if l.Events()[0].Kind != EventCheckpoint {
		t.Fatal("Events leaked internal storage")
	}
}

func TestEventLogConcurrentAppend(t *testing.T) {
	l := NewEventLog()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Append(Event{Kind: EventCheckpoint, Generation: i})
			}
		}()
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Fatalf("len = %d, want 800", l.Len())
	}
}

func TestEventLogWriteJSON(t *testing.T) {
	l := NewEventLog()
	l.Append(Event{Kind: EventRecovery, Generation: 300, Rank: 1, Attempt: 2, Detail: "rank 1 died"})
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got []Event
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != l.Events()[0] {
		t.Fatalf("JSON round trip: %+v", got)
	}
}
