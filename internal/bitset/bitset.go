// Package bitset implements a dense, fixed-length bit vector.
//
// Pure memory-n strategies are points in {C,D}^(4^n); for memory-six that is
// a 4096-bit vector. The simulation stores, copies, mutates, compares, and
// serializes millions of these, so the representation is 64-bit words with
// O(words) bulk operations.
package bitset

import (
	"encoding/hex"
	"errors"
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Bitset is a fixed-length sequence of bits. The zero value is an empty
// (length-0) bitset; use New for a sized one.
type Bitset struct {
	n     int
	words []uint64
}

// New returns a Bitset of n bits, all zero. It panics if n < 0.
func New(n int) *Bitset {
	if n < 0 {
		panic("bitset: negative length")
	}
	return &Bitset{n: n, words: make([]uint64, wordsFor(n))}
}

func wordsFor(n int) int { return (n + wordBits - 1) / wordBits }

// FromWords builds a Bitset of n bits from the given word slice (copied).
// Bits beyond n in the last word are cleared. It panics if the slice is too
// short for n bits.
func FromWords(n int, words []uint64) *Bitset {
	if len(words) < wordsFor(n) {
		panic("bitset: FromWords slice too short")
	}
	b := New(n)
	copy(b.words, words[:wordsFor(n)])
	b.trim()
	return b
}

// trim clears any bits beyond the logical length in the last word so that
// Equal, Hamming, and Count stay exact.
func (b *Bitset) trim() {
	if b.n%wordBits != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << uint(b.n%wordBits)) - 1
	}
}

// Len returns the number of bits.
func (b *Bitset) Len() int { return b.n }

// Words returns the underlying words (not a copy). The caller must not
// modify bits beyond Len.
func (b *Bitset) Words() []uint64 { return b.words }

// Get reports whether bit i is set. It panics if i is out of range.
func (b *Bitset) Get(i int) bool {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitset: Get(%d) out of range [0,%d)", i, b.n))
	}
	return b.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Set sets bit i to v. It panics if i is out of range.
func (b *Bitset) Set(i int, v bool) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitset: Set(%d) out of range [0,%d)", i, b.n))
	}
	if v {
		b.words[i/wordBits] |= 1 << uint(i%wordBits)
	} else {
		b.words[i/wordBits] &^= 1 << uint(i%wordBits)
	}
}

// Flip inverts bit i. It panics if i is out of range.
func (b *Bitset) Flip(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitset: Flip(%d) out of range [0,%d)", i, b.n))
	}
	b.words[i/wordBits] ^= 1 << uint(i%wordBits)
}

// Clone returns a deep copy.
func (b *Bitset) Clone() *Bitset {
	c := &Bitset{n: b.n, words: make([]uint64, len(b.words))}
	copy(c.words, b.words)
	return c
}

// CopyFrom overwrites b with src. Both must have the same length.
func (b *Bitset) CopyFrom(src *Bitset) {
	if b.n != src.n {
		panic("bitset: CopyFrom length mismatch")
	}
	copy(b.words, src.words)
}

// Equal reports whether the two bitsets have identical length and bits.
func (b *Bitset) Equal(o *Bitset) bool {
	if b.n != o.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Hamming returns the number of positions at which b and o differ.
// It panics on length mismatch.
func (b *Bitset) Hamming(o *Bitset) int {
	if b.n != o.n {
		panic("bitset: Hamming length mismatch")
	}
	d := 0
	for i := range b.words {
		d += bits.OnesCount64(b.words[i] ^ o.words[i])
	}
	return d
}

// SetAll sets every bit.
func (b *Bitset) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trim()
}

// ClearAll zeroes every bit.
func (b *Bitset) ClearAll() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Fingerprint returns a 64-bit mixing hash of the contents, usable as a map
// key component for deduplicating strategies.
func (b *Bitset) Fingerprint() uint64 {
	h := uint64(b.n)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	for _, w := range b.words {
		h ^= w
		h *= 0x100000001B3
		h ^= h >> 29
	}
	return h
}

// String renders the bits as a 0/1 string, bit 0 first (matching the paper's
// strategy tables, where column k is the move in state k).
func (b *Bitset) String() string {
	var sb strings.Builder
	sb.Grow(b.n)
	for i := 0; i < b.n; i++ {
		if b.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// ParseBits parses a 0/1 string produced by String.
func ParseBits(s string) (*Bitset, error) {
	b := New(len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
		case '1':
			b.Set(i, true)
		default:
			return nil, fmt.Errorf("bitset: invalid character %q at %d", s[i], i)
		}
	}
	return b, nil
}

// MarshalBinary encodes the bitset as 8 bytes of little-endian length
// followed by the words in little-endian order.
func (b *Bitset) MarshalBinary() ([]byte, error) {
	out := make([]byte, 8+8*len(b.words))
	putU64(out, uint64(b.n))
	for i, w := range b.words {
		putU64(out[8+8*i:], w)
	}
	return out, nil
}

// UnmarshalBinary decodes data produced by MarshalBinary.
func (b *Bitset) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return errors.New("bitset: truncated header")
	}
	n := getU64(data)
	if n > 1<<32 {
		return fmt.Errorf("bitset: implausible length %d", n)
	}
	nw := wordsFor(int(n))
	if len(data) < 8+8*nw {
		return errors.New("bitset: truncated payload")
	}
	b.n = int(n)
	b.words = make([]uint64, nw)
	for i := range b.words {
		b.words[i] = getU64(data[8+8*i:])
	}
	b.trim()
	return nil
}

// Hex returns the words as a hex string (low word first), a compact codec
// for logs and checkpoints.
func (b *Bitset) Hex() string {
	raw := make([]byte, 8*len(b.words))
	for i, w := range b.words {
		putU64(raw[8*i:], w)
	}
	return hex.EncodeToString(raw)
}

func putU64(p []byte, v uint64) {
	_ = p[7]
	p[0] = byte(v)
	p[1] = byte(v >> 8)
	p[2] = byte(v >> 16)
	p[3] = byte(v >> 24)
	p[4] = byte(v >> 32)
	p[5] = byte(v >> 40)
	p[6] = byte(v >> 48)
	p[7] = byte(v >> 56)
}

func getU64(p []byte) uint64 {
	_ = p[7]
	return uint64(p[0]) | uint64(p[1])<<8 | uint64(p[2])<<16 | uint64(p[3])<<24 |
		uint64(p[4])<<32 | uint64(p[5])<<40 | uint64(p[6])<<48 | uint64(p[7])<<56
}
