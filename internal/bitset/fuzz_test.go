package bitset

import "testing"

// FuzzUnmarshalBinary hardens the bitset decoder against arbitrary input.
func FuzzUnmarshalBinary(f *testing.F) {
	good, _ := New(130).MarshalBinary()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		var b Bitset
		if err := b.UnmarshalBinary(data); err != nil {
			return
		}
		// Accepted input must round-trip exactly.
		out, err := b.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted bitset does not marshal: %v", err)
		}
		var c Bitset
		if err := c.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-marshalled bitset does not decode: %v", err)
		}
		if !b.Equal(&c) {
			t.Fatal("round trip changed the bitset")
		}
		// Count must respect the logical length (tail bits clear).
		if b.Count() > b.Len() {
			t.Fatalf("count %d exceeds length %d", b.Count(), b.Len())
		}
	})
}

// FuzzParseBits hardens the 0/1 string parser.
func FuzzParseBits(f *testing.F) {
	f.Add("0110")
	f.Add("")
	f.Add("01x0")
	f.Fuzz(func(t *testing.T, s string) {
		b, err := ParseBits(s)
		if err != nil {
			return
		}
		if b.String() != s {
			t.Fatalf("round trip %q -> %q", s, b.String())
		}
	})
}
