package bitset

import (
	"testing"
	"testing/quick"
)

func TestNewAllZero(t *testing.T) {
	b := New(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d", b.Len())
	}
	if b.Count() != 0 {
		t.Fatalf("new bitset has %d set bits", b.Count())
	}
	for i := 0; i < 130; i++ {
		if b.Get(i) {
			t.Fatalf("bit %d set in new bitset", i)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetGetFlip(t *testing.T) {
	b := New(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		b.Set(i, true)
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
		b.Set(i, false)
		if b.Get(i) {
			t.Fatalf("bit %d not cleared", i)
		}
		b.Flip(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not flipped on", i)
		}
		b.Flip(i)
		if b.Get(i) {
			t.Fatalf("bit %d not flipped off", i)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	b := New(10)
	for name, f := range map[string]func(){
		"Get(-1)":  func() { b.Get(-1) },
		"Get(10)":  func() { b.Get(10) },
		"Set(10)":  func() { b.Set(10, true) },
		"Flip(10)": func() { b.Flip(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCount(t *testing.T) {
	b := New(100)
	for i := 0; i < 100; i += 3 {
		b.Set(i, true)
	}
	if got, want := b.Count(), 34; got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
}

func TestSetAllRespectsLength(t *testing.T) {
	b := New(70)
	b.SetAll()
	if b.Count() != 70 {
		t.Fatalf("SetAll count = %d, want 70 (tail bits must stay clear)", b.Count())
	}
	b.ClearAll()
	if b.Count() != 0 {
		t.Fatalf("ClearAll left %d bits", b.Count())
	}
}

func TestCloneIndependent(t *testing.T) {
	b := New(64)
	b.Set(5, true)
	c := b.Clone()
	c.Set(6, true)
	if b.Get(6) {
		t.Fatal("Clone shares storage")
	}
	if !c.Get(5) {
		t.Fatal("Clone lost bits")
	}
}

func TestCopyFrom(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(42, true)
	b.CopyFrom(a)
	if !b.Get(42) || b.Count() != 1 {
		t.Fatal("CopyFrom failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom length mismatch did not panic")
		}
	}()
	New(10).CopyFrom(New(11))
}

func TestEqual(t *testing.T) {
	a, b := New(100), New(100)
	if !a.Equal(b) {
		t.Fatal("empty bitsets not equal")
	}
	a.Set(99, true)
	if a.Equal(b) {
		t.Fatal("different bitsets reported equal")
	}
	b.Set(99, true)
	if !a.Equal(b) {
		t.Fatal("identical bitsets reported unequal")
	}
	if a.Equal(New(101)) {
		t.Fatal("different lengths reported equal")
	}
}

func TestHamming(t *testing.T) {
	a, b := New(128), New(128)
	a.Set(0, true)
	a.Set(64, true)
	b.Set(64, true)
	b.Set(127, true)
	if got := a.Hamming(b); got != 2 {
		t.Fatalf("Hamming = %d, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Hamming length mismatch did not panic")
		}
	}()
	a.Hamming(New(64))
}

func TestStringParseRoundTrip(t *testing.T) {
	b := New(9)
	b.Set(1, true)
	b.Set(3, true)
	if got, want := b.String(), "010100000"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	p, err := ParseBits(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(b) {
		t.Fatal("ParseBits round trip failed")
	}
}

func TestParseBitsRejectsJunk(t *testing.T) {
	if _, err := ParseBits("0102"); err == nil {
		t.Fatal("ParseBits accepted invalid character")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	b := New(130)
	b.Set(0, true)
	b.Set(129, true)
	b.Set(77, true)
	data, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var c Bitset
	if err := c.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !c.Equal(b) {
		t.Fatal("binary round trip failed")
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	var b Bitset
	if err := b.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Fatal("accepted truncated header")
	}
	good, _ := New(128).MarshalBinary()
	if err := b.UnmarshalBinary(good[:12]); err == nil {
		t.Fatal("accepted truncated payload")
	}
}

func TestFromWords(t *testing.T) {
	b := FromWords(70, []uint64{^uint64(0), ^uint64(0)})
	if b.Count() != 70 {
		t.Fatalf("FromWords did not trim: count = %d", b.Count())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FromWords short slice did not panic")
		}
	}()
	FromWords(129, []uint64{0, 0})
}

func TestFingerprintDistinguishes(t *testing.T) {
	a := New(4096)
	b := New(4096)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("equal bitsets have different fingerprints")
	}
	b.Set(2048, true)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("single-bit difference not reflected in fingerprint")
	}
}

func TestHexLength(t *testing.T) {
	b := New(64)
	if got := len(b.Hex()); got != 16 {
		t.Fatalf("Hex length = %d, want 16", got)
	}
}

// Property: String/ParseBits round trip for arbitrary bit patterns.
func TestStringRoundTripProperty(t *testing.T) {
	f := func(words []uint64, nBits uint16) bool {
		n := int(nBits % 300)
		if len(words) < wordsFor(n) {
			grown := make([]uint64, wordsFor(n))
			copy(grown, words)
			words = grown
		}
		b := FromWords(n, words)
		p, err := ParseBits(b.String())
		return err == nil && p.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Hamming distance is a metric w.r.t. Count of XOR and symmetry.
func TestHammingSymmetryProperty(t *testing.T) {
	f := func(a, b [4]uint64) bool {
		x := FromWords(256, a[:])
		y := FromWords(256, b[:])
		return x.Hamming(y) == y.Hamming(x) && x.Hamming(x) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHamming4096(b *testing.B) {
	x, y := New(4096), New(4096)
	for i := 0; i < 4096; i += 7 {
		x.Set(i, true)
	}
	for i := 0; i < 4096; i += 5 {
		y.Set(i, true)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Hamming(y)
	}
}

func BenchmarkClone4096(b *testing.B) {
	x := New(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Clone()
	}
}
