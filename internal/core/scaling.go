package core

import (
	"fmt"
	"runtime"

	"repro/internal/perfmodel"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Paper experiment constants (§VI-B): the small-scale studies fix 1,024
// SSets, 1,000 generations, and a 0.01 PC rate on Blue Gene/L.
const (
	SmallStudySSets       = 1024
	SmallStudyGenerations = 1000
	SmallStudyPCRate      = 0.01
)

// SmallStudyProcs are Table VI/VII's processor columns.
func SmallStudyProcs() []int { return []int{128, 256, 512, 1024, 2048} }

// TableVI models the paper's Table VI: full-simulation seconds for 1,024
// SSets at memory one through six across the processor columns, priced on
// Blue Gene/L with the given calibration.
func TableVI(cal perfmodel.Calibration) (*Table, error) {
	procs := SmallStudyProcs()
	t := &Table{Title: fmt.Sprintf("Table VI: modelled runtime (s), %d SSets, %d generations [calibration %s]",
		SmallStudySSets, SmallStudyGenerations, cal.Name)}
	t.Columns = append(t.Columns, "Memory")
	for _, p := range procs {
		t.Columns = append(t.Columns, fmt.Sprintf("P=%d", p))
	}
	for mem := 1; mem <= 6; mem++ {
		spec := perfmodel.StrongScalingSpec{
			SSets:       SmallStudySSets,
			Memory:      mem,
			Generations: SmallStudyGenerations,
			PCRate:      SmallStudyPCRate,
			Machine:     perfmodel.BlueGeneL(),
			Cal:         cal,
		}
		row := []string{fmt.Sprintf("memory-%d", mem)}
		for _, p := range procs {
			sec, err := spec.Runtime(p)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.4g", sec))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig3 models the paper's Figure 3: strong-scaling parallel efficiency per
// memory depth (relative to the 128-processor column).
func Fig3(cal perfmodel.Calibration) (*Table, error) {
	procs := SmallStudyProcs()
	t := &Table{Title: "Figure 3: strong-scaling efficiency vs memory depth (base P=128)"}
	t.Columns = append(t.Columns, "Memory")
	for _, p := range procs {
		t.Columns = append(t.Columns, fmt.Sprintf("P=%d", p))
	}
	for mem := 1; mem <= 6; mem++ {
		spec := perfmodel.StrongScalingSpec{
			SSets: SmallStudySSets, Memory: mem, Generations: SmallStudyGenerations,
			PCRate: SmallStudyPCRate, Machine: perfmodel.BlueGeneL(), Cal: cal,
		}
		base, err := spec.Runtime(procs[0])
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("memory-%d", mem)}
		for _, p := range procs {
			sec, err := spec.Runtime(p)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.3f", perfmodel.Efficiency(procs[0], base, p, sec)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig4 models the paper's Figure 4: runtime versus memory depth at a fixed
// processor count (the state-lookup cost growth mechanism).
func Fig4(cal perfmodel.Calibration, procs int) (*Table, error) {
	t := &Table{Title: fmt.Sprintf("Figure 4: modelled runtime vs memory depth at P=%d", procs)}
	t.Columns = []string{"Memory", "Runtime(s)", "xMemory-1"}
	var base float64
	for mem := 1; mem <= 6; mem++ {
		spec := perfmodel.StrongScalingSpec{
			SSets: SmallStudySSets, Memory: mem, Generations: SmallStudyGenerations,
			PCRate: SmallStudyPCRate, Machine: perfmodel.BlueGeneL(), Cal: cal,
		}
		sec, err := spec.Runtime(procs)
		if err != nil {
			return nil, err
		}
		if mem == 1 {
			base = sec
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", mem), fmt.Sprintf("%.4g", sec), fmt.Sprintf("%.1f", sec/base),
		})
	}
	return t, nil
}

// TableVIISSets are Table VII's population rows.
func TableVIISSets() []int { return []int{1024, 2048, 4096, 8192, 16384, 32768} }

// TableVII models the paper's Table VII: runtime as the SSet count grows
// (memory one, the paper's population study), across processor columns.
func TableVII(cal perfmodel.Calibration) (*Table, error) {
	procs := []int{256, 512, 1024, 2048}
	t := &Table{Title: fmt.Sprintf("Table VII: modelled runtime (s) vs population size [calibration %s]", cal.Name)}
	t.Columns = append(t.Columns, "SSets")
	for _, p := range procs {
		t.Columns = append(t.Columns, fmt.Sprintf("P=%d", p))
	}
	for _, s := range TableVIISSets() {
		row := []string{fmt.Sprintf("%d", s)}
		for _, p := range procs {
			spec := perfmodel.StrongScalingSpec{
				SSets: s, Memory: 1, Generations: SmallStudyGenerations,
				PCRate: SmallStudyPCRate, Machine: perfmodel.BlueGeneL(), Cal: cal,
			}
			sec, err := spec.Runtime(p)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.4g", sec))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig5 models the paper's Figure 5: strong-scaling efficiency as the SSet
// count grows (base P=256).
func Fig5(cal perfmodel.Calibration) (*Table, error) {
	procs := []int{256, 512, 1024, 2048}
	t := &Table{Title: "Figure 5: strong-scaling efficiency vs population size (base P=256)"}
	t.Columns = append(t.Columns, "SSets")
	for _, p := range procs {
		t.Columns = append(t.Columns, fmt.Sprintf("P=%d", p))
	}
	for _, s := range TableVIISSets() {
		spec := perfmodel.StrongScalingSpec{
			SSets: s, Memory: 1, Generations: SmallStudyGenerations,
			PCRate: SmallStudyPCRate, Machine: perfmodel.BlueGeneL(), Cal: cal,
		}
		base, err := spec.Runtime(procs[0])
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", s)}
		for _, p := range procs {
			sec, err := spec.Runtime(p)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.3f", perfmodel.Efficiency(procs[0], base, p, sec)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig6Procs are the weak-scaling processor counts (1,024 up to the 64-rack
// 262,144 of Jugene).
func Fig6Procs() []int { return []int{1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072, 262144} }

// Fig6 models the paper's Figure 6: weak scaling at 4,096 SSets per
// processor on Blue Gene/P (memory six).
func Fig6(cal perfmodel.Calibration) (*Table, error) {
	t := &Table{Title: "Figure 6: weak scaling, 4,096 SSets/processor, memory six, BG/P"}
	t.Columns = []string{"Procs", "SSets", "Agents", "Runtime(s)", "WeakEff"}
	w := perfmodel.WeakScalingSpec{
		SSetsPerProc: 4096, GamesPerSSet: 1, Memory: 6,
		Generations: SmallStudyGenerations, PCRate: SmallStudyPCRate,
		Machine: perfmodel.BlueGeneP(), Cal: cal,
	}
	var base float64
	for i, p := range Fig6Procs() {
		sec, err := w.Runtime(p)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			base = sec
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%d", w.TotalSSets(p)),
			fmt.Sprintf("%.3g", w.TotalAgents(p)),
			fmt.Sprintf("%.4g", sec),
			fmt.Sprintf("%.4f", perfmodel.WeakEfficiency(base, sec)),
		})
	}
	return t, nil
}

// Fig7Procs are the paper's large strong-scaling points (system
// availability limited it to these), optionally with the full 72-rack
// system appended.
func Fig7Procs(fullSystem bool) []int {
	p := []int{1024, 2048, 8192, 16384, 262144}
	if fullSystem {
		p = append(p, 294912)
	}
	return p
}

// Fig7 models the paper's Figure 7: strong scaling on Blue Gene/P up to
// 262,144 processors (and, with fullSystem, the 72-rack 294,912 point whose
// non-power-of-two mapping costs ~15%).
func Fig7(cal perfmodel.Calibration, fullSystem bool) (*Table, error) {
	t := &Table{Title: "Figure 7: strong scaling, memory six, BG/P (base P=1024)"}
	t.Columns = []string{"Procs", "Runtime(s)", "Speedup", "Efficiency"}
	spec := perfmodel.StrongScalingSpec{
		SSets: 1 << 21, Memory: 6, Generations: 100,
		PCRate: SmallStudyPCRate, Machine: perfmodel.BlueGeneP(), Cal: cal,
	}
	procs := Fig7Procs(fullSystem)
	base, err := spec.Runtime(procs[0])
	if err != nil {
		return nil, err
	}
	for _, p := range procs {
		sec, err := spec.Runtime(p)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%.4g", sec),
			fmt.Sprintf("%.1f", perfmodel.Speedup(base, sec)),
			fmt.Sprintf("%.3f", perfmodel.Efficiency(procs[0], base, p, sec)),
		})
	}
	return t, nil
}

// MappingStudy evaluates the paper's §VI-E future work: candidate
// rank-to-torus mappings compared on the application's Nature-centric
// traffic pattern, for a full power-of-two partition and a partial
// (non-power-of-two, "72-rack-like") partition of the same torus.
func MappingStudy() (*Table, error) {
	tor, err := topology.NewTorus(16, 16, 16) // a 4,096-node machine slice
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Mapping study (paper future work): Nature-traffic cost per mapping (mean hops; lower is better)",
		Columns: []string{"Partition", "xyz", "zyx", "snake", "blocked2x2x2"},
	}
	for _, part := range []struct {
		name  string
		ranks int
	}{
		{"full 4096 (power of two)", 4096},
		{"partial 3600 (non-power-of-two)", 3600},
		{"partial 2304 (non-power-of-two)", 2304},
	} {
		costs, err := topology.CompareMappings(tor, part.ranks, topology.DefaultMappings(tor))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			part.name,
			fmt.Sprintf("%.3f", costs["xyz"]),
			fmt.Sprintf("%.3f", costs["zyx"]),
			fmt.Sprintf("%.3f", costs["snake"]),
			fmt.Sprintf("%.3f", costs["blocked2x2x2"]),
		})
	}
	return t, nil
}

// HostScalingRow is one measured (not modelled) scaling point: the actual
// parallel engine on goroutine ranks.
type HostScalingRow struct {
	Ranks   int
	Seconds float64
}

// HostStrongScaling measures the real parallel engine's strong scaling on
// this host for the given configuration across rank counts. Rank counts are
// capped at NumCPU+1 more ranks than SSets never being requested is the
// caller's concern; invalid counts are skipped.
func HostStrongScaling(cfg sim.Config, rankCounts []int) ([]HostScalingRow, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var out []HostScalingRow
	for _, r := range rankCounts {
		if r < 2 || r-1 > cfg.NumSSets*(cfg.NumSSets-1) {
			continue
		}
		res, err := sim.RunParallel(cfg, r)
		if err != nil {
			return nil, err
		}
		out = append(out, HostScalingRow{Ranks: r, Seconds: res.Elapsed.Seconds()})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no valid rank counts in %v", rankCounts)
	}
	return out, nil
}

// DefaultHostRankCounts returns sensible rank counts for this host: powers
// of two from 2 up to the CPU count plus one Nature rank.
func DefaultHostRankCounts() []int {
	max := runtime.NumCPU()
	var out []int
	for w := 1; w <= max; w *= 2 {
		out = append(out, w+1)
	}
	return out
}
