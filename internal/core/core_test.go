package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/strategy"
)

func TestTableIValues(t *testing.T) {
	tbl := TableI()
	if len(tbl.Rows) != 2 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	if tbl.Rows[0][1] != "3,3" || tbl.Rows[0][2] != "0,4" ||
		tbl.Rows[1][1] != "4,0" || tbl.Rows[1][2] != "1,1" {
		t.Fatalf("payoff cells wrong: %v", tbl.Rows)
	}
}

func TestTableIIIComplete(t *testing.T) {
	tbl := TableIII()
	if len(tbl.Rows) != 16 {
		t.Fatalf("%d strategies enumerated", len(tbl.Rows))
	}
	named := map[string]bool{}
	for _, row := range tbl.Rows {
		if row[5] != "" {
			named[row[5]] = true
		}
	}
	for _, want := range []string{"ALLC", "ALLD", "TFT", "WSLS", "GRIM"} {
		if !named[want] {
			t.Errorf("classic %s not identified in Table III", want)
		}
	}
}

func TestTableIV(t *testing.T) {
	tbl := TableIV()
	if len(tbl.Rows) != 6 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	if tbl.Rows[0][2] != "16" {
		t.Errorf("memory-1 strategies = %s", tbl.Rows[0][2])
	}
	if tbl.Rows[5][1] != "4096" || tbl.Rows[5][2] != "2^4096" {
		t.Errorf("memory-6 row = %v", tbl.Rows[5])
	}
}

func TestTableVIII(t *testing.T) {
	tbl := TableVIII([]int{1024, 16384}, []int{256, 1024})
	if tbl.Rows[0][1] != "4096" {
		t.Errorf("1024 SSets / 256 procs = %s agents, want 4096", tbl.Rows[0][1])
	}
	if tbl.Rows[1][1] != "1048576" {
		t.Errorf("16384 SSets / 256 procs = %s, want 1048576", tbl.Rows[1][1])
	}
}

func TestTableFormatAndCSV(t *testing.T) {
	tbl := TableI()
	text := tbl.Format()
	if !strings.Contains(text, "Table I") || !strings.Contains(text, "3,3") {
		t.Fatalf("Format output: %s", text)
	}
	csv := tbl.CSV()
	if !strings.HasPrefix(csv, "Agent\\Opp,C,D\n") {
		t.Fatalf("CSV output: %s", csv)
	}
}

func TestModelTablesGenerate(t *testing.T) {
	cal := DefaultCalibration()
	vi, err := TableVI(cal)
	if err != nil {
		t.Fatal(err)
	}
	if len(vi.Rows) != 6 || len(vi.Columns) != 6 {
		t.Fatalf("Table VI shape %dx%d", len(vi.Rows), len(vi.Columns))
	}
	vii, err := TableVII(cal)
	if err != nil {
		t.Fatal(err)
	}
	if len(vii.Rows) != 6 {
		t.Fatalf("Table VII rows %d", len(vii.Rows))
	}
	for _, gen := range []func() (*Table, error){
		func() (*Table, error) { return Fig3(cal) },
		func() (*Table, error) { return Fig4(cal, 2048) },
		func() (*Table, error) { return Fig5(cal) },
		func() (*Table, error) { return Fig6(cal) },
		func() (*Table, error) { return Fig7(cal, true) },
	} {
		tbl, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			t.Fatalf("%s: empty", tbl.Title)
		}
	}
}

func TestMappingStudy(t *testing.T) {
	tbl, err := MappingStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 || len(tbl.Columns) != 5 {
		t.Fatalf("shape %dx%d", len(tbl.Rows), len(tbl.Columns))
	}
	for _, row := range tbl.Rows {
		for _, cell := range row[1:] {
			if cell == "" || cell == "0.000" {
				t.Fatalf("empty cost cell in %v", row)
			}
		}
	}
}

func TestFig7FullSystemDegrades(t *testing.T) {
	tbl, err := Fig7(DefaultCalibration(), true)
	if err != nil {
		t.Fatal(err)
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	prev := tbl.Rows[len(tbl.Rows)-2]
	if last[0] != "294912" {
		t.Fatalf("last row %v", last)
	}
	if last[3] >= prev[3] {
		t.Errorf("72-rack efficiency %s should drop below 64-rack %s", last[3], prev[3])
	}
}

func smallWSLSConfig() sim.Config {
	cfg := WSLSValidationConfig(24, 400, 7)
	cfg.Rules.Rounds = 30
	cfg.SampleStride = 50
	return cfg
}

func TestRunWSLSValidationSmoke(t *testing.T) {
	out, err := RunWSLSValidation(smallWSLSConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if out.WSLSFraction < 0 || out.WSLSFraction > 1 {
		t.Fatalf("WSLS fraction %v", out.WSLSFraction)
	}
	if out.DominantFraction <= 0 {
		t.Fatalf("dominant fraction %v", out.DominantFraction)
	}
	if out.Result == nil || len(out.Result.Final) != 24 {
		t.Fatal("result missing")
	}
}

func TestRunWSLSValidationParallelMatches(t *testing.T) {
	cfg := smallWSLSConfig()
	seqOut, err := RunWSLSValidation(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	parOut, err := RunWSLSValidationParallel(cfg, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if seqOut.WSLSFraction != parOut.WSLSFraction {
		t.Fatalf("WSLS fraction differs: %v vs %v", seqOut.WSLSFraction, parOut.WSLSFraction)
	}
	if seqOut.DominantIsWSLS != parOut.DominantIsWSLS {
		t.Fatal("cluster readout differs between engines")
	}
}

func TestSortedAbundanceNames(t *testing.T) {
	sp := strategy.NewSpace(1)
	res := &sim.Result{Final: []strategy.Strategy{
		strategy.WSLS(sp), strategy.WSLS(sp), strategy.AllD(sp),
		strategy.GTFT(sp, 0.3),
	}}
	names := SortedAbundanceNames(res, 10)
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	if !strings.HasPrefix(names[0], "0110 x2") {
		t.Fatalf("top entry = %q, want WSLS x2", names[0])
	}
	if !strings.Contains(strings.Join(names, " "), "~") {
		t.Fatal("mixed strategy not marked with ~")
	}
	short := SortedAbundanceNames(res, 1)
	if len(short) != 1 {
		t.Fatal("top cap ignored")
	}
}

func TestHostStrongScaling(t *testing.T) {
	cfg := sim.DefaultConfig(1, 8)
	cfg.Generations = 10
	cfg.Rules.Rounds = 10
	cfg.Seed = 1
	rows, err := HostStrongScaling(cfg, []int{2, 3, 100000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows (oversized rank count should be skipped)", len(rows))
	}
	for _, r := range rows {
		if r.Seconds <= 0 {
			t.Fatalf("non-positive time for %d ranks", r.Ranks)
		}
	}
	if _, err := HostStrongScaling(cfg, []int{1}); err == nil {
		t.Fatal("all-invalid rank counts accepted")
	}
	bad := cfg
	bad.Memory = 0
	if _, err := HostStrongScaling(bad, []int{2}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestDefaultHostRankCounts(t *testing.T) {
	counts := DefaultHostRankCounts()
	if len(counts) == 0 || counts[0] != 2 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestAsciiMap(t *testing.T) {
	sp := strategy.NewSpace(1)
	out := AsciiMap([]strategy.Strategy{
		strategy.AllC(sp),
		strategy.AllD(sp),
		strategy.MixedFromProbs(sp, []float64{0.5, 0.5, 0.5, 0.5}),
	}, 0)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines", len(lines))
	}
	if lines[0] != "...." || lines[1] != "####" || lines[2] != "5555" {
		t.Fatalf("map = %q", lines)
	}
	capped := AsciiMap([]strategy.Strategy{strategy.AllC(sp), strategy.AllD(sp)}, 1)
	if strings.Count(capped, "\n") != 1 {
		t.Fatal("maxRows ignored")
	}
}

func TestWritePPM(t *testing.T) {
	sp := strategy.NewSpace(1)
	var buf bytes.Buffer
	err := WritePPM(&buf, []strategy.Strategy{strategy.AllC(sp), strategy.AllD(sp)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if !bytes.HasPrefix(data, []byte("P6\n8 4\n255\n")) {
		t.Fatalf("PPM header: %q", data[:16])
	}
	wantLen := len("P6\n8 4\n255\n") + 3*8*4
	if len(data) != wantLen {
		t.Fatalf("PPM size %d, want %d", len(data), wantLen)
	}
	// First pixel: cooperate -> yellow-ish (high red+green, zero blue).
	px := data[len("P6\n8 4\n255\n"):]
	if px[0] != 255 || px[1] != 220 || px[2] != 0 {
		t.Fatalf("cooperate pixel = %v", px[:3])
	}
	if err := WritePPM(&buf, nil, 1); err == nil {
		t.Fatal("empty strategies accepted")
	}
	if err := WritePPM(&buf, []strategy.Strategy{strategy.AllC(sp)}, 0); err == nil {
		t.Fatal("cell 0 accepted")
	}
	mixed := []strategy.Strategy{strategy.AllC(sp), strategy.AllC(strategy.NewSpace(2))}
	if err := WritePPM(&buf, mixed, 1); err == nil {
		t.Fatal("mismatched spaces accepted")
	}
}
