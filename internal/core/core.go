// Package core assembles the framework's pieces into the paper's
// experiments: it builds the configurations behind every table and figure,
// runs them (really, on goroutine ranks) or models them (on the Blue Gene
// machine descriptions), and formats the resulting rows and series the way
// the paper reports them.
//
// Each Table*/Fig* function corresponds to one artefact of the paper's
// evaluation section; cmd/egdscale and the repository-root benchmarks are
// thin wrappers around this package.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/game"
	"repro/internal/perfmodel"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/strategy"
)

// Table is a generic labelled grid for report output.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	sb.WriteString(t.Title)
	sb.WriteByte('\n')
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// CSV renders the table as CSV.
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Columns, ","))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		sb.WriteString(strings.Join(row, ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TableI renders the Prisoner's Dilemma payoff matrix (paper Table I).
func TableI() *Table {
	p := game.StandardPayoff()
	tbl := p.Table()
	f := func(cell [2]float64) string { return fmt.Sprintf("%g,%g", cell[0], cell[1]) }
	return &Table{
		Title:   "Table I: Prisoner's Dilemma payoff matrix (agent,opponent)",
		Columns: []string{"Agent\\Opp", "C", "D"},
		Rows: [][]string{
			{"C", f(tbl[0][0]), f(tbl[0][1])},
			{"D", f(tbl[1][0]), f(tbl[1][1])},
		},
	}
}

// TableIII enumerates all 16 memory-one pure strategies (paper Table III),
// annotated with classic names where they coincide.
func TableIII() *Table {
	sp := strategy.NewSpace(1)
	names := map[uint64]string{
		strategy.AllC(sp).Fingerprint(): "ALLC",
		strategy.AllD(sp).Fingerprint(): "ALLD",
		strategy.TFT(sp).Fingerprint():  "TFT",
		strategy.WSLS(sp).Fingerprint(): "WSLS",
		strategy.Grim(sp).Fingerprint(): "GRIM",
	}
	t := &Table{
		Title:   "Table III: all memory-one pure strategies (state order CC,CD,DC,DD; 0=C 1=D)",
		Columns: []string{"Strategy", "CC", "CD", "DC", "DD", "Name"},
	}
	for i, p := range strategy.EnumeratePure(sp) {
		s := p.String()
		row := []string{fmt.Sprintf("%d", i+1), s[0:1], s[1:2], s[2:3], s[3:4], names[p.Fingerprint()]}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// TableIV reports the strategy-space sizes per memory depth (paper
// Table IV): 4^n states and 2^(4^n) pure strategies.
func TableIV() *Table {
	t := &Table{
		Title:   "Table IV: number of pure strategies per memory depth",
		Columns: []string{"Memory", "States", "Strategies"},
	}
	exact := map[int]string{1: "16", 2: "65536", 3: "1.84e19", 4: "1.16e77"}
	for n := 1; n <= 6; n++ {
		sp := strategy.NewSpace(n)
		count, ok := exact[n]
		if !ok {
			count = fmt.Sprintf("2^%d", sp.NumStates())
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", sp.NumStates()),
			count,
		})
	}
	return t
}

// TableVIII reports agents per processor for the paper's a = S convention
// (population S^2 spread over P processors).
func TableVIII(ssets []int, procs []int) *Table {
	t := &Table{Title: "Table VIII: agents per processor (agents per SSet = #SSets)"}
	t.Columns = append(t.Columns, "SSets")
	for _, p := range procs {
		t.Columns = append(t.Columns, fmt.Sprintf("P=%d", p))
	}
	for _, s := range ssets {
		row := []string{fmt.Sprintf("%d", s)}
		for _, p := range procs {
			agents := uint64(s) * uint64(s) / uint64(p)
			row = append(row, fmt.Sprintf("%d", agents))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// WSLSValidationConfig is the scaled Fig. 2 experiment: mixed memory-one
// strategies under execution errors evolve toward Win-Stay Lose-Shift. The
// paper ran 5,000 SSets for 10^7 generations on 2,048 BG/L processors; this
// configuration reproduces the result at workstation scale (e.g. 32 SSets
// over 2×10^6 generations reach >90% WSLS; the paper reports 85%).
//
// Two deliberate parameter choices, documented in DESIGN.md: adoption uses
// the unconditional Fermi rule of the paper's citation [15] (Traulsen et
// al.) rather than the strictly-better gate of the paper's pseudo-code —
// the near-neutral drift it permits is what lets reciprocators bootstrap
// out of all-defect populations at all; and the pairwise-comparison rate is
// 1.0 rather than 0.1, which only rescales the evolution clock (0.1 would
// need ~10× the generations, matching the paper's 10^7). Selection is
// strong (beta 50 on per-round payoffs), so only near-ties drift.
func WSLSValidationConfig(ssets, generations int, seed uint64) sim.Config {
	cfg := sim.DefaultConfig(1, ssets)
	cfg.Generations = generations
	cfg.Kind = sim.MixedStrategies
	cfg.Rules.ErrorRate = 0.01 // errors are what make WSLS beat TFT
	cfg.PCRate = 1.0
	cfg.Mu = sim.DefaultMu
	cfg.Beta = 50
	cfg.AllowWorseAdoption = true
	cfg.Seed = seed
	return cfg
}

// WSLSOutcome summarises a Fig. 2 validation run.
type WSLSOutcome struct {
	// WSLSFraction is the share of final SSets whose strategy rounds to
	// WSLS (paper: 85%).
	WSLSFraction float64
	// DominantFraction is the largest k-means cluster's population share.
	DominantFraction float64
	// DominantIsWSLS reports whether that cluster's centroid rounds to
	// WSLS.
	DominantIsWSLS bool
	// Result carries the full simulation output.
	Result *sim.Result
}

// RunWSLSValidation executes the scaled Fig. 2 experiment and the paper's
// k-means readout (Lloyd clustering of the final strategies).
func RunWSLSValidation(cfg sim.Config, kClusters int) (*WSLSOutcome, error) {
	res, err := sim.RunSequential(cfg)
	if err != nil {
		return nil, err
	}
	return summariseWSLS(cfg, res, kClusters)
}

// RunWSLSValidationParallel is RunWSLSValidation on the parallel engine.
func RunWSLSValidationParallel(cfg sim.Config, kClusters, ranks int) (*WSLSOutcome, error) {
	res, err := sim.RunParallel(cfg, ranks)
	if err != nil {
		return nil, err
	}
	return summariseWSLS(cfg, res, kClusters)
}

func summariseWSLS(cfg sim.Config, res *sim.Result, kClusters int) (*WSLSOutcome, error) {
	sp := strategy.NewSpace(cfg.Memory)
	wsls := strategy.WSLS(sp)
	out := &WSLSOutcome{Result: res, WSLSFraction: res.FractionNear(wsls)}
	if kClusters > len(res.Final) {
		kClusters = len(res.Final)
	}
	km, err := cluster.KMeans(cluster.StrategyVectors(res.Final), kClusters, 100, rng.New(cfg.Seed^0xC1))
	if err != nil {
		return nil, err
	}
	idx, frac := km.DominantCluster()
	out.DominantFraction = frac
	rounded, err := cluster.RoundCentroid(km.Centroids[idx], sp)
	if err != nil {
		return nil, err
	}
	out.DominantIsWSLS = rounded.Equal(wsls)
	return out, nil
}

// SortedAbundanceNames returns the final population's strategies ranked by
// abundance, labelled by their response string (pure) or nearest pure
// (mixed), for report output.
func SortedAbundanceNames(res *sim.Result, top int) []string {
	type entry struct {
		label string
		count int
	}
	counts := map[string]int{}
	for _, s := range res.Final {
		var label string
		switch v := s.(type) {
		case *strategy.Pure:
			label = v.String()
		case *strategy.Mixed:
			label = "~" + v.NearestPure().String()
		}
		counts[label]++
	}
	entries := make([]entry, 0, len(counts))
	for l, c := range counts {
		entries = append(entries, entry{l, c})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].count != entries[j].count {
			return entries[i].count > entries[j].count
		}
		return entries[i].label < entries[j].label
	})
	if top < len(entries) {
		entries = entries[:top]
	}
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = fmt.Sprintf("%s x%d", e.label, e.count)
	}
	return out
}

// DefaultCalibration returns the paper-anchored calibration used when the
// caller does not measure one on the host.
func DefaultCalibration() perfmodel.Calibration { return perfmodel.PaperCalibration() }
