package core

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/strategy"
)

// This file renders the paper's Fig. 2 population view: each row is one
// SSet's strategy, each column one state; yellow marks a cooperative move
// and blue a defection. Two backends are provided — ASCII for terminals and
// binary PPM (P6) for image files — both stdlib-only.

// AsciiMap renders the strategy table as text: one row per SSet, one
// character per state ('.' cooperate, '#' defect, digits for intermediate
// mixed probabilities). maxRows caps the output (0 = all rows).
func AsciiMap(strategies []strategy.Strategy, maxRows int) string {
	if maxRows <= 0 || maxRows > len(strategies) {
		maxRows = len(strategies)
	}
	var sb strings.Builder
	for i := 0; i < maxRows; i++ {
		s := strategies[i]
		n := s.Space().NumStates()
		for st := 0; st < n; st++ {
			p := s.CooperateProb(uint32(st))
			switch {
			case p >= 0.9:
				sb.WriteByte('.')
			case p <= 0.1:
				sb.WriteByte('#')
			default:
				// Digit 1..8 for the cooperation decile.
				sb.WriteByte(byte('0' + int(p*10)))
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// WritePPM renders the strategy table as a binary PPM image, scaled by the
// given integer cell size: cooperation maps to yellow, defection to blue,
// intermediate probabilities interpolate — the paper's Fig. 2 colour
// scheme.
func WritePPM(w io.Writer, strategies []strategy.Strategy, cell int) error {
	if len(strategies) == 0 {
		return fmt.Errorf("core: no strategies to render")
	}
	if cell < 1 {
		return fmt.Errorf("core: cell size %d < 1", cell)
	}
	states := strategies[0].Space().NumStates()
	for i, s := range strategies {
		if s.Space().NumStates() != states {
			return fmt.Errorf("core: strategy %d has %d states, want %d", i, s.Space().NumStates(), states)
		}
	}
	width := states * cell
	height := len(strategies) * cell
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", width, height); err != nil {
		return err
	}
	// Yellow (255,220,0) for cooperate, blue (20,60,200) for defect.
	row := make([]byte, 3*width)
	for _, s := range strategies {
		for st := 0; st < states; st++ {
			p := s.CooperateProb(uint32(st))
			r := byte(20 + p*(255-20))
			g := byte(60 + p*(220-60))
			b := byte(200 - p*200)
			for cx := 0; cx < cell; cx++ {
				off := 3 * (st*cell + cx)
				row[off], row[off+1], row[off+2] = r, g, b
			}
		}
		for cy := 0; cy < cell; cy++ {
			if _, err := w.Write(row); err != nil {
				return err
			}
		}
	}
	return nil
}
