package replicator

import (
	"math"
	"testing"

	"repro/internal/game"
	"repro/internal/strategy"
)

func sp1() strategy.Space { return strategy.NewSpace(1) }

func baseConfig() Config {
	return Config{
		Atoms:       8,
		Generations: 100,
		MutantFreq:  0.01,
		MutateEvery: 10,
		Seed:        1,
	}
}

func freqSum(p *Population) float64 {
	s := 0.0
	for _, a := range p.Atoms() {
		s += a.Freq
	}
	return s
}

func TestValidateDefaults(t *testing.T) {
	cfg := baseConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Payoff != game.StandardPayoff() {
		t.Fatal("payoff not defaulted")
	}
	if cfg.Selection != 1 || cfg.ExtinctBelow != 1e-6 {
		t.Fatal("defaults not applied")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Atoms = 1 },
		func(c *Config) { c.Generations = -1 },
		func(c *Config) { c.MutantFreq = 1 },
		func(c *Config) { c.MutantFreq = -0.1 },
		func(c *Config) { c.MutateEvery = -1 },
		func(c *Config) { c.ErrorRate = 2 },
		func(c *Config) { c.ExtinctBelow = 0.5 },
		func(c *Config) { c.Selection = -1 },
		func(c *Config) { c.Payoff = game.Payoff{R: 1, S: 2, T: 3, P: 4} },
	}
	for i, mutate := range cases {
		cfg := baseConfig()
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestNewUniformFrequencies(t *testing.T) {
	p, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Atoms()) != 8 {
		t.Fatalf("%d atoms", len(p.Atoms()))
	}
	for _, a := range p.Atoms() {
		if math.Abs(a.Freq-0.125) > 1e-12 {
			t.Fatalf("freq %v", a.Freq)
		}
	}
	if math.Abs(freqSum(p)-1) > 1e-12 {
		t.Fatal("frequencies do not sum to 1")
	}
}

func TestFrequenciesStayNormalised(t *testing.T) {
	cfg := baseConfig()
	cfg.ErrorRate = 0.01
	cfg.Generations = 200
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = p.Run(func(gen int, pop *Population) {
		if s := freqSum(pop); math.Abs(s-1) > 1e-9 {
			t.Fatalf("gen %d: frequency mass %v", gen, s)
		}
		for _, a := range pop.Atoms() {
			if a.Freq < 0 {
				t.Fatalf("gen %d: negative frequency", gen)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Generation() != 200 {
		t.Fatalf("generation = %d", p.Generation())
	}
}

func TestSelectionDrivesOutDefectorsAmongReciprocators(t *testing.T) {
	// TFT + WSLS vs ALLD with no errors: the reciprocators earn R against
	// each other while ALLD earns P-ish against them, so ALLD's frequency
	// must collapse.
	cfg := baseConfig()
	cfg.MutateEvery = 0 // pure selection
	cfg.Generations = 400
	p, err := NewFromStrategies(cfg, []strategy.Strategy{
		strategy.TFT(sp1()), strategy.WSLS(sp1()), strategy.AllD(sp1()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(nil); err != nil {
		t.Fatal(err)
	}
	allDFreq := 0.0
	for _, a := range p.Atoms() {
		if a.Strategy.Equal(strategy.AllD(sp1())) {
			allDFreq = a.Freq
		}
	}
	if allDFreq > 0.01 {
		t.Fatalf("ALLD frequency %v, want near extinction", allDFreq)
	}
	if p.MeanFitness() < 2.9 {
		t.Fatalf("mean fitness %v, want near R=3", p.MeanFitness())
	}
}

func TestALLDInvadesUnconditionalCooperators(t *testing.T) {
	// ALLC + ALLD: defectors must take over (the basic PD logic).
	cfg := baseConfig()
	cfg.MutateEvery = 0
	cfg.Generations = 300
	p, err := NewFromStrategies(cfg, []strategy.Strategy{
		strategy.AllC(sp1()), strategy.AllD(sp1()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(nil); err != nil {
		t.Fatal(err)
	}
	dom := p.DominantAtom()
	if !dom.Strategy.Equal(strategy.AllD(sp1())) {
		t.Fatal("ALLD did not dominate ALLC")
	}
	if dom.Freq < 0.99 {
		t.Fatalf("ALLD frequency %v", dom.Freq)
	}
}

func TestWSLSBeatsTFTUnderErrors(t *testing.T) {
	// The Fig. 2 mechanism in its analytic form: from equal TFT/WSLS/GTFT
	// shares under errors, WSLS ends on top (it exploits neither but
	// recovers fastest, and exploits ALLC drift — here directly via its
	// higher noisy self-play payoff against the field).
	cfg := baseConfig()
	cfg.MutateEvery = 0
	cfg.ErrorRate = 0.05
	cfg.Generations = 2000
	p, err := NewFromStrategies(cfg, []strategy.Strategy{
		strategy.TFT(sp1()), strategy.WSLS(sp1()), strategy.AllC(sp1()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(nil); err != nil {
		t.Fatal(err)
	}
	if got := p.FractionNear(strategy.WSLS(sp1())); got < 0.5 {
		t.Fatalf("WSLS frequency %v after noisy competition, want > 0.5", got)
	}
}

func TestMutationInjectsAndPrunes(t *testing.T) {
	cfg := baseConfig()
	cfg.Generations = 500
	cfg.MutateEvery = 5
	cfg.MutantFreq = 0.02
	cfg.ExtinctBelow = 1e-4
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	maxAtoms := 0
	err = p.Run(func(gen int, pop *Population) {
		if n := len(pop.Atoms()); n > maxAtoms {
			maxAtoms = n
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Injection grows the atom set; extinction keeps it bounded.
	if maxAtoms <= 8 {
		t.Fatal("no mutants were injected")
	}
	if len(p.Atoms()) > 8+500/5 {
		t.Fatal("extinction never pruned")
	}
	if math.Abs(freqSum(p)-1) > 1e-9 {
		t.Fatal("mass not conserved through injection/pruning")
	}
}

func TestNewFromStrategiesRejectsWrongMemory(t *testing.T) {
	cfg := baseConfig()
	_, err := NewFromStrategies(cfg, []strategy.Strategy{
		strategy.AllC(strategy.NewSpace(2)), strategy.AllD(strategy.NewSpace(2)),
	})
	if err == nil {
		t.Fatal("memory-2 strategies accepted")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []Atom {
		cfg := baseConfig()
		cfg.Generations = 150
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Run(nil); err != nil {
			t.Fatal(err)
		}
		return p.Atoms()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("atom counts differ")
	}
	for i := range a {
		if a[i].Freq != b[i].Freq || !a[i].Strategy.Equal(b[i].Strategy) {
			t.Fatalf("atom %d differs between identical runs", i)
		}
	}
}

func TestMeanCooperationBounds(t *testing.T) {
	p, err := NewFromStrategies(baseConfig(), []strategy.Strategy{
		strategy.AllC(sp1()), strategy.AllD(sp1()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.MeanCooperation(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("mean cooperation %v, want 0.5", got)
	}
}
