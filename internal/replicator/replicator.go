// Package replicator implements frequency-based evolutionary dynamics over
// a finite set of strategy atoms with exact Markov payoffs — the method of
// the original Nowak-Sigmund Win-Stay Lose-Shift study that the paper's
// Fig. 2 validates against.
//
// Where the agent simulation (internal/sim) tracks which SSet holds which
// strategy and samples finite games, this engine tracks the *frequency* of
// each distinct strategy and evolves the distribution deterministically by
// discrete-time replicator dynamics, with occasional uniform-random mutant
// strategies injected at low frequency. Payoffs come from the exact
// memory-one Markov analysis (internal/analysis), so there is no sampling
// noise at all: an independent cross-check of the agent-based results.
package replicator

import (
	"fmt"
	"math"

	"repro/internal/analysis"
	"repro/internal/game"
	"repro/internal/rng"
	"repro/internal/strategy"
)

// Atom is one strategy with its population frequency.
type Atom struct {
	Strategy strategy.Strategy
	Freq     float64
}

// Config parameterises a replicator run.
type Config struct {
	// Payoff is the PD matrix (zero selects the paper's standard payoff).
	Payoff game.Payoff
	// ErrorRate is the per-move execution error folded into the exact
	// payoff computation.
	ErrorRate float64
	// Atoms is the number of strategy atoms kept in the population.
	Atoms int
	// Generations is the number of replicator steps.
	Generations int
	// MutantFreq is the frequency at which a new random mutant enters,
	// replacing the lowest-frequency atom (Nowak-Sigmund inject rare
	// mutants and let selection decide).
	MutantFreq float64
	// MutateEvery injects one mutant every this many generations
	// (0 disables mutation).
	MutateEvery int
	// ExtinctBelow removes atoms whose frequency falls below this
	// threshold, renormalising the rest (0 selects 1e-6).
	ExtinctBelow float64
	// Selection scales payoff differences in the replicator update:
	// growth factor = 1 + Selection*(pi_i - meanPi). Zero selects 1.
	Selection float64
	// Seed drives mutant generation.
	Seed uint64
}

// Validate normalises defaults and checks the configuration.
func (c *Config) Validate() error {
	if c.Payoff == (game.Payoff{}) {
		c.Payoff = game.StandardPayoff()
	}
	if err := c.Payoff.Validate(); err != nil {
		return err
	}
	if c.ErrorRate < 0 || c.ErrorRate > 1 {
		return fmt.Errorf("replicator: error rate %v out of [0,1]", c.ErrorRate)
	}
	if c.Atoms < 2 {
		return fmt.Errorf("replicator: need >= 2 atoms, got %d", c.Atoms)
	}
	if c.Generations < 0 {
		return fmt.Errorf("replicator: negative generations")
	}
	if c.MutantFreq < 0 || c.MutantFreq >= 1 {
		return fmt.Errorf("replicator: mutant frequency %v out of [0,1)", c.MutantFreq)
	}
	if c.MutateEvery < 0 {
		return fmt.Errorf("replicator: negative MutateEvery")
	}
	if c.ExtinctBelow == 0 {
		c.ExtinctBelow = 1e-6
	}
	if c.ExtinctBelow < 0 || c.ExtinctBelow > 0.1 {
		return fmt.Errorf("replicator: extinction threshold %v out of (0,0.1]", c.ExtinctBelow)
	}
	if c.Selection == 0 {
		c.Selection = 1
	}
	if c.Selection < 0 {
		return fmt.Errorf("replicator: negative selection %v", c.Selection)
	}
	return nil
}

// Population is the evolving frequency distribution.
type Population struct {
	cfg   Config
	atoms []Atom
	// payoff[i][j] caches the exact per-round payoff of atom i vs atom j.
	payoff [][]float64
	src    *rng.Source
	gen    int
}

// New creates a population of cfg.Atoms uniform-random mixed memory-one
// strategies at equal frequency.
func New(cfg Config) (*Population, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Population{cfg: cfg, src: rng.New(cfg.Seed)}
	sp := strategy.NewSpace(1)
	for i := 0; i < cfg.Atoms; i++ {
		p.atoms = append(p.atoms, Atom{
			Strategy: strategy.RandomMixed(sp, p.src),
			Freq:     1.0 / float64(cfg.Atoms),
		})
	}
	if err := p.rebuildPayoffs(); err != nil {
		return nil, err
	}
	return p, nil
}

// NewFromStrategies creates a population from explicit memory-one
// strategies at equal frequency.
func NewFromStrategies(cfg Config, strategies []strategy.Strategy) (*Population, error) {
	cfg.Atoms = len(strategies)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Population{cfg: cfg, src: rng.New(cfg.Seed)}
	for _, s := range strategies {
		if s.Space().Memory() != 1 {
			return nil, fmt.Errorf("replicator: needs memory-one strategies")
		}
		p.atoms = append(p.atoms, Atom{Strategy: s.Clone(), Freq: 1.0 / float64(len(strategies))})
	}
	if err := p.rebuildPayoffs(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Population) rebuildPayoffs() error {
	n := len(p.atoms)
	p.payoff = make([][]float64, n)
	for i := range p.payoff {
		p.payoff[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			pi, pj, err := analysis.MarkovPayoff(p.cfg.Payoff, p.atoms[i].Strategy, p.atoms[j].Strategy, p.cfg.ErrorRate)
			if err != nil {
				return err
			}
			p.payoff[i][j] = pi
			p.payoff[j][i] = pj
		}
	}
	return nil
}

// payoffRow recomputes row and column k after atom k changed.
func (p *Population) payoffRow(k int) error {
	for j := range p.atoms {
		pi, pj, err := analysis.MarkovPayoff(p.cfg.Payoff, p.atoms[k].Strategy, p.atoms[j].Strategy, p.cfg.ErrorRate)
		if err != nil {
			return err
		}
		p.payoff[k][j] = pi
		p.payoff[j][k] = pj
	}
	return nil
}

// Atoms returns the current atoms (shared slice; do not modify).
func (p *Population) Atoms() []Atom { return p.atoms }

// Generation returns the number of completed steps.
func (p *Population) Generation() int { return p.gen }

// Fitness returns atom i's frequency-weighted expected payoff.
func (p *Population) Fitness(i int) float64 {
	f := 0.0
	for j, a := range p.atoms {
		f += a.Freq * p.payoff[i][j]
	}
	return f
}

// MeanFitness returns the population's mean payoff.
func (p *Population) MeanFitness() float64 {
	m := 0.0
	for i, a := range p.atoms {
		m += a.Freq * p.Fitness(i)
	}
	return m
}

// Step advances one generation: replicator update, extinction pruning, and
// scheduled mutant injection.
func (p *Population) Step() error {
	// Discrete replicator: freq_i <- freq_i * (1 + s*(pi_i - mean)) / Z.
	// Fitness must be evaluated against the pre-update frequencies for
	// every atom, so snapshot it before touching any frequency.
	fit := make([]float64, len(p.atoms))
	for i := range p.atoms {
		fit[i] = p.Fitness(i)
	}
	mean := 0.0
	for i, a := range p.atoms {
		mean += a.Freq * fit[i]
	}
	total := 0.0
	for i := range p.atoms {
		g := 1 + p.cfg.Selection*(fit[i]-mean)
		if g < 0 {
			g = 0
		}
		p.atoms[i].Freq *= g
		total += p.atoms[i].Freq
	}
	if total <= 0 {
		return fmt.Errorf("replicator: population mass collapsed at generation %d", p.gen)
	}
	for i := range p.atoms {
		p.atoms[i].Freq /= total
	}
	// Extinction: prune tiny atoms (keep at least two).
	p.prune()
	// Mutation: replace the weakest atom with a fresh mutant.
	p.gen++
	if p.cfg.MutateEvery > 0 && p.gen%p.cfg.MutateEvery == 0 {
		if err := p.injectMutant(); err != nil {
			return err
		}
	}
	return nil
}

func (p *Population) prune() {
	for len(p.atoms) > 2 {
		weakest, wf := -1, math.Inf(1)
		for i, a := range p.atoms {
			if a.Freq < wf {
				weakest, wf = i, a.Freq
			}
		}
		if wf >= p.cfg.ExtinctBelow {
			return
		}
		p.removeAtom(weakest)
	}
}

func (p *Population) removeAtom(k int) {
	lost := p.atoms[k].Freq
	p.atoms = append(p.atoms[:k], p.atoms[k+1:]...)
	p.payoff = append(p.payoff[:k], p.payoff[k+1:]...)
	for i := range p.payoff {
		p.payoff[i] = append(p.payoff[i][:k], p.payoff[i][k+1:]...)
	}
	if lost > 0 && len(p.atoms) > 0 {
		scale := 1.0 / (1.0 - lost)
		for i := range p.atoms {
			p.atoms[i].Freq *= scale
		}
	}
}

func (p *Population) injectMutant() error {
	sp := strategy.NewSpace(1)
	mutant := Atom{Strategy: strategy.RandomMixed(sp, p.src), Freq: p.cfg.MutantFreq}
	// Make room by scaling everyone down.
	scale := 1.0 - p.cfg.MutantFreq
	for i := range p.atoms {
		p.atoms[i].Freq *= scale
	}
	p.atoms = append(p.atoms, mutant)
	for i := range p.payoff {
		p.payoff[i] = append(p.payoff[i], 0)
	}
	p.payoff = append(p.payoff, make([]float64, len(p.atoms)))
	return p.payoffRow(len(p.atoms) - 1)
}

// Run advances the configured number of generations, invoking observe (if
// non-nil) after each step.
func (p *Population) Run(observe func(gen int, pop *Population)) error {
	for i := 0; i < p.cfg.Generations; i++ {
		if err := p.Step(); err != nil {
			return err
		}
		if observe != nil {
			observe(p.gen, p)
		}
	}
	return nil
}

// DominantAtom returns the highest-frequency atom.
func (p *Population) DominantAtom() Atom {
	best := 0
	for i, a := range p.atoms {
		if a.Freq > p.atoms[best].Freq {
			best = i
		}
	}
	return p.atoms[best]
}

// FractionNear returns the total frequency of atoms whose strategy rounds
// to the pure strategy ref.
func (p *Population) FractionNear(ref *strategy.Pure) float64 {
	total := 0.0
	for _, a := range p.atoms {
		switch v := a.Strategy.(type) {
		case *strategy.Pure:
			if v.Equal(ref) {
				total += a.Freq
			}
		case *strategy.Mixed:
			if v.NearestPure().Equal(ref) {
				total += a.Freq
			}
		}
	}
	return total
}

// MeanCooperation returns the frequency-weighted mean cooperation
// probability over all states.
func (p *Population) MeanCooperation() float64 {
	total := 0.0
	for _, a := range p.atoms {
		states := a.Strategy.Space().NumStates()
		s := 0.0
		for st := 0; st < states; st++ {
			s += a.Strategy.CooperateProb(uint32(st))
		}
		total += a.Freq * s / float64(states)
	}
	return total
}
