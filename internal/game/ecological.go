package game

import (
	"fmt"

	"repro/internal/rng"
)

// Ecological tournament: Axelrod's follow-up analysis to the round robin.
// Instead of a single scored tournament, the entrant mix evolves — each
// "generation" every entrant's population share grows in proportion to the
// score it earns against the current mix. Strategies that prey on weak
// entrants fade once their prey disappears, which is how Axelrod showed
// TFT's success was robust rather than parasitic. It complements the
// paper's pairwise-comparison dynamics with the classic frequency-weighted
// view over a fixed strategy set.

// EcoResult is the outcome of an ecological tournament.
type EcoResult struct {
	// Names are the entrants, in input order.
	Names []string
	// Shares[g][e] is entrant e's population share at generation g
	// (generation 0 is the initial uniform mix).
	Shares [][]float64
	// Generations is the number of evolution steps run.
	Generations int
}

// FinalShares returns the last generation's population shares.
func (r *EcoResult) FinalShares() []float64 {
	return r.Shares[len(r.Shares)-1]
}

// Winner returns the name and share of the most abundant final entrant.
func (r *EcoResult) Winner() (string, float64) {
	final := r.FinalShares()
	best := 0
	for i, s := range final {
		if s > final[best] {
			best = i
		}
	}
	return r.Names[best], final[best]
}

// Ecological runs the frequency-weighted tournament: the pairwise payoff
// matrix is computed once (mean per-round payoffs under rules), then shares
// evolve for the given generations with growth proportional to expected
// score against the current mix. Randomness (mixed strategies, errors) is
// seeded; shares are deterministic given the matrix.
func Ecological(rules Rules, entrants []Entrant, generations int, seed uint64) (*EcoResult, error) {
	if err := rules.Validate(); err != nil {
		return nil, err
	}
	if len(entrants) < 2 {
		return nil, fmt.Errorf("game: ecological tournament needs >= 2 entrants")
	}
	if generations < 1 {
		return nil, fmt.Errorf("game: generations %d < 1", generations)
	}
	n := len(entrants)
	for i := range entrants {
		if entrants[i].Strategy.Space() != entrants[0].Strategy.Space() {
			return nil, fmt.Errorf("game: entrant %q has mismatched space", entrants[i].Name)
		}
	}
	payoff := make([][]float64, n)
	master := rng.New(seed)
	for i := range payoff {
		payoff[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			src := master.Derive(uint64(i), uint64(j))
			res := Play(rules, entrants[i].Strategy, entrants[j].Strategy, src)
			payoff[i][j] = res.Mean0()
			payoff[j][i] = res.Mean1()
		}
	}

	out := &EcoResult{Generations: generations}
	for _, e := range entrants {
		out.Names = append(out.Names, e.Name)
	}
	shares := make([]float64, n)
	for i := range shares {
		shares[i] = 1.0 / float64(n)
	}
	record := func() {
		snap := make([]float64, n)
		copy(snap, shares)
		out.Shares = append(out.Shares, snap)
	}
	record()
	next := make([]float64, n)
	for g := 0; g < generations; g++ {
		total := 0.0
		for i := 0; i < n; i++ {
			score := 0.0
			for j := 0; j < n; j++ {
				score += shares[j] * payoff[i][j]
			}
			next[i] = shares[i] * score
			total += next[i]
		}
		if total <= 0 {
			return nil, fmt.Errorf("game: ecological mass collapsed at generation %d", g)
		}
		for i := range shares {
			shares[i] = next[i] / total
		}
		record()
	}
	return out, nil
}
