package game

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/strategy"
)

// DefaultRounds is the paper's rounds-per-generation (Smith & Price's 200).
const DefaultRounds = 200

// Rules bundles the fixed parameters of an IPD match.
type Rules struct {
	Payoff Payoff
	Rounds int
	// ErrorRate is the probability, per player per round, of executing the
	// opposite of the intended move (the paper's §III-E error model).
	ErrorRate float64
}

// DefaultRules returns the paper's standard match configuration:
// f[R,S,T,P]=[3,0,4,1], 200 rounds, no errors.
func DefaultRules() Rules {
	return Rules{Payoff: StandardPayoff(), Rounds: DefaultRounds}
}

// Validate checks the rule set.
func (r Rules) Validate() error {
	if err := r.Payoff.Validate(); err != nil {
		return err
	}
	if r.Rounds <= 0 {
		return fmt.Errorf("game: rounds must be positive, got %d", r.Rounds)
	}
	// Negated comparison so NaN (for which both x < 0 and x > 1 are false)
	// is rejected too.
	if !(r.ErrorRate >= 0 && r.ErrorRate <= 1) {
		return fmt.Errorf("game: error rate %v out of [0,1]", r.ErrorRate)
	}
	return nil
}

// Result summarises one IPD match from player 0's perspective.
type Result struct {
	Fitness0 float64 // total payoff accumulated by player 0
	Fitness1 float64 // total payoff accumulated by player 1
	Coop0    int     // rounds in which player 0 cooperated
	Coop1    int     // rounds in which player 1 cooperated
	Rounds   int
}

// CooperationRate returns the fraction of all moves that were cooperative.
func (r Result) CooperationRate() float64 {
	if r.Rounds == 0 {
		return 0
	}
	return float64(r.Coop0+r.Coop1) / float64(2*r.Rounds)
}

// Mean0 returns player 0's mean per-round payoff.
func (r Result) Mean0() float64 {
	if r.Rounds == 0 {
		return 0
	}
	return r.Fitness0 / float64(r.Rounds)
}

// Mean1 returns player 1's mean per-round payoff.
func (r Result) Mean1() float64 {
	if r.Rounds == 0 {
		return 0
	}
	return r.Fitness1 / float64(r.Rounds)
}

// Play runs one Iterated Prisoner's Dilemma match between s0 and s1 using
// the optimised O(1) state indexing. Both strategies must share a space.
// src supplies all randomness (mixed-strategy sampling and execution
// errors); pass any source for pure, error-free play — it is not consumed.
//
// This is the IPD() function of the paper's agent pseudo-code: the view
// starts at all-cooperate, each round both players choose via their strategy
// table, errors flip the executed move, payoffs accumulate.
func Play(rules Rules, s0, s1 strategy.Strategy, src *rng.Source) Result {
	sp := s0.Space()
	if s1.Space() != sp {
		panic(fmt.Sprintf("game: mismatched spaces (memory %d vs %d)", sp.Memory(), s1.Space().Memory()))
	}
	res := Result{Rounds: rules.Rounds}
	st0 := sp.InitialState()
	st1 := sp.InitialState() // == Opposing(st0) at the start
	for r := 0; r < rules.Rounds; r++ {
		m0 := s0.Move(st0, src)
		m1 := s1.Move(st1, src)
		if rules.ErrorRate > 0 {
			if src.Bernoulli(rules.ErrorRate) {
				m0 ^= 1
			}
			if src.Bernoulli(rules.ErrorRate) {
				m1 ^= 1
			}
		}
		f0, f1 := rules.Payoff.Score(m0, m1)
		res.Fitness0 += f0
		res.Fitness1 += f1
		if m0 == strategy.Cooperate {
			res.Coop0++
		}
		if m1 == strategy.Cooperate {
			res.Coop1++
		}
		st0 = sp.NextState(st0, m0, m1)
		st1 = sp.NextState(st1, m1, m0)
	}
	return res
}

// SearchEngine is the paper-faithful IPD engine: it maintains an explicit
// current_view slice of moves and locates the state ID each round by linear
// search over the global state table, exactly as the paper's find_state
// does. Its per-round cost grows with the state-table size (O(4^n * n)),
// which is the mechanism behind the paper's Fig. 4 runtime growth.
type SearchEngine struct {
	space strategy.Space
	table [][]strategy.Move // global `states` array
	view0 []strategy.Move   // player 0's current_view, oldest round first
	view1 []strategy.Move
}

// NewSearchEngine builds the global state table for the space.
func NewSearchEngine(sp strategy.Space) *SearchEngine {
	return &SearchEngine{
		space: sp,
		table: sp.StateTable(),
		view0: make([]strategy.Move, 2*sp.Memory()),
		view1: make([]strategy.Move, 2*sp.Memory()),
	}
}

// findState linearly scans the state table for the view, returning its ID.
// This is intentionally O(numStates * viewLen): it reproduces the paper's
// lookup cost. It panics if the view is not found (impossible by
// construction).
func (e *SearchEngine) findState(view []strategy.Move) uint32 {
scan:
	for id, cand := range e.table {
		for i := range cand {
			if cand[i] != view[i] {
				continue scan
			}
		}
		return uint32(id)
	}
	panic("game: view not present in state table")
}

// Play runs one match with the linear-search state lookup. Semantics are
// identical to Play; only the lookup cost differs.
func (e *SearchEngine) Play(rules Rules, s0, s1 strategy.Strategy, src *rng.Source) Result {
	if s0.Space() != e.space || s1.Space() != e.space {
		panic("game: strategy space does not match engine")
	}
	res := Result{Rounds: rules.Rounds}
	for i := range e.view0 {
		e.view0[i] = strategy.Cooperate
		e.view1[i] = strategy.Cooperate
	}
	for r := 0; r < rules.Rounds; r++ {
		st0 := e.findState(e.view0)
		st1 := e.findState(e.view1)
		m0 := s0.Move(st0, src)
		m1 := s1.Move(st1, src)
		if rules.ErrorRate > 0 {
			if src.Bernoulli(rules.ErrorRate) {
				m0 ^= 1
			}
			if src.Bernoulli(rules.ErrorRate) {
				m1 ^= 1
			}
		}
		f0, f1 := rules.Payoff.Score(m0, m1)
		res.Fitness0 += f0
		res.Fitness1 += f1
		if m0 == strategy.Cooperate {
			res.Coop0++
		}
		if m1 == strategy.Cooperate {
			res.Coop1++
		}
		// Shift the views: drop the oldest round, append the new one.
		shiftView(e.view0, m0, m1)
		shiftView(e.view1, m1, m0)
	}
	return res
}

func shiftView(view []strategy.Move, my, opp strategy.Move) {
	copy(view, view[2:])
	view[len(view)-2] = my
	view[len(view)-1] = opp
}

// MovesTrace replays a match and records the joint move sequence; used by
// tests and by the visualiser. It uses the optimised engine.
func MovesTrace(rules Rules, s0, s1 strategy.Strategy, src *rng.Source) (moves0, moves1 []strategy.Move) {
	sp := s0.Space()
	st0, st1 := sp.InitialState(), sp.InitialState()
	moves0 = make([]strategy.Move, rules.Rounds)
	moves1 = make([]strategy.Move, rules.Rounds)
	for r := 0; r < rules.Rounds; r++ {
		m0 := s0.Move(st0, src)
		m1 := s1.Move(st1, src)
		if rules.ErrorRate > 0 {
			if src.Bernoulli(rules.ErrorRate) {
				m0 ^= 1
			}
			if src.Bernoulli(rules.ErrorRate) {
				m1 ^= 1
			}
		}
		moves0[r], moves1[r] = m0, m1
		st0 = sp.NextState(st0, m0, m1)
		st1 = sp.NextState(st1, m1, m0)
	}
	return moves0, moves1
}
