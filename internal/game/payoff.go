// Package game implements the two-player Iterated Prisoner's Dilemma engine
// at the heart of the framework: the payoff matrix (Table I of the paper),
// the per-round state tracking (current_view), the execution-error model
// (§III-E), and the generation-level match loop (200 rounds by default).
//
// Two state-lookup engines are provided:
//
//   - the optimised engine keeps the state as a packed integer and indexes
//     the strategy table directly (O(1) per round);
//   - the paper-faithful engine maintains an explicit current_view move list
//     and linearly searches the global state table each round (find_state in
//     the paper's pseudo-code) — this is the code path whose cost growth
//     with memory depth produces the paper's Fig. 4, and we reproduce it as
//     an ablation.
package game

import (
	"fmt"

	"repro/internal/strategy"
)

// Payoff holds the four Prisoner's Dilemma outcomes. The paper uses
// f[R,S,T,P] = [3,0,4,1].
type Payoff struct {
	R float64 // reward: both cooperate
	S float64 // sucker: I cooperate, opponent defects
	T float64 // temptation: I defect, opponent cooperates
	P float64 // punishment: both defect
}

// StandardPayoff is the paper's payoff vector f[R,S,T,P] = [3,0,4,1].
func StandardPayoff() Payoff { return Payoff{R: 3, S: 0, T: 4, P: 1} }

// Validate checks the strict Prisoner's Dilemma ordering T > R > P > S and
// the iterated-game condition 2R > T + S (mutual cooperation beats
// alternating exploitation).
func (p Payoff) Validate() error {
	if !(p.T > p.R && p.R > p.P && p.P > p.S) {
		return fmt.Errorf("game: payoff violates T > R > P > S: %+v", p)
	}
	if 2*p.R <= p.T+p.S {
		return fmt.Errorf("game: payoff violates 2R > T+S: %+v", p)
	}
	return nil
}

// Score returns the payoffs to (me, opponent) for a joint move.
func (p Payoff) Score(my, opp strategy.Move) (mine, theirs float64) {
	switch {
	case my == strategy.Cooperate && opp == strategy.Cooperate:
		return p.R, p.R
	case my == strategy.Cooperate && opp == strategy.Defect:
		return p.S, p.T
	case my == strategy.Defect && opp == strategy.Cooperate:
		return p.T, p.S
	default:
		return p.P, p.P
	}
}

// Table renders the 2x2 payoff matrix (rows = my move, cols = opponent's),
// reproducing the paper's Table I.
func (p Payoff) Table() [2][2][2]float64 {
	var t [2][2][2]float64
	for _, my := range []strategy.Move{strategy.Cooperate, strategy.Defect} {
		for _, opp := range []strategy.Move{strategy.Cooperate, strategy.Defect} {
			a, b := p.Score(my, opp)
			t[my][opp] = [2]float64{a, b}
		}
	}
	return t
}
