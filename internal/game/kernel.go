package game

import (
	"fmt"

	"repro/internal/strategy"
)

// PlayPure runs one error-free IPD match between two pure strategies with a
// bit-packed inner loop: moves are read straight out of the strategies'
// response bitset words (bit set = Defect) and the per-joint-move payoffs
// come from a precomputed 4-entry table, so a round is a handful of shifts
// and two float additions regardless of memory depth. At memory six the
// strategy table is 4096 bits; this path touches only the one word holding
// the current state instead of dispatching through the Strategy interface.
//
// The result is bit-identical to Play(rules, s0, s1, ·) with ErrorRate == 0:
// the payoffs added each round are the exact Score values and the
// accumulation order is the same round order, so Fitness0/Fitness1 match to
// the last ULP (pinned by TestPlayPureBitIdentical). It panics if rules
// carry a positive error rate — noisy matches consume randomness and must go
// through Play.
func PlayPure(rules Rules, s0, s1 *strategy.Pure) Result {
	sp := s0.Space()
	if s1.Space() != sp {
		panic(fmt.Sprintf("game: mismatched spaces (memory %d vs %d)", sp.Memory(), s1.Space().Memory()))
	}
	if rules.ErrorRate > 0 {
		panic("game: PlayPure requires ErrorRate == 0")
	}
	// score[m0<<1|m1] holds the exact Score values Play would add, so the
	// accumulation below is bit-identical to the interface path.
	var score0, score1 [4]float64
	for m0 := strategy.Move(0); m0 <= 1; m0++ {
		for m1 := strategy.Move(0); m1 <= 1; m1++ {
			f0, f1 := rules.Payoff.Score(m0, m1)
			score0[m0<<1|m1] = f0
			score1[m0<<1|m1] = f1
		}
	}
	w0 := s0.Bits().Words()
	w1 := s1.Bits().Words()
	mask := uint32(sp.NumStates() - 1)
	st0 := sp.InitialState()
	st1 := sp.InitialState()
	res := Result{Rounds: rules.Rounds}
	for r := 0; r < rules.Rounds; r++ {
		m0 := uint32(w0[st0>>6]>>(st0&63)) & 1 // 1 = Defect, matching the bitset convention
		m1 := uint32(w1[st1>>6]>>(st1&63)) & 1
		jm := m0<<1 | m1
		res.Fitness0 += score0[jm]
		res.Fitness1 += score1[jm]
		res.Coop0 += int(m0 ^ 1)
		res.Coop1 += int(m1 ^ 1)
		st0 = ((st0 << 2) | jm) & mask
		st1 = ((st1 << 2) | (m1<<1 | m0)) & mask
	}
	return res
}
