package game

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/strategy"
)

// TestPlayPureBitIdentical pins the kernel's determinism contract: for every
// memory depth the bit-packed path must reproduce Play (and the
// paper-faithful SearchEngine) bit for bit, fitness included — the cache
// stores these numbers, so any ULP drift would make cache-on and cache-off
// runs diverge.
func TestPlayPureBitIdentical(t *testing.T) {
	src := rng.New(42)
	rules := DefaultRules()
	for n := 1; n <= strategy.MaxMemory; n++ {
		sp := strategy.NewSpace(n)
		eng := NewSearchEngine(sp)
		for trial := 0; trial < 20; trial++ {
			s0 := strategy.RandomPure(sp, src)
			s1 := strategy.RandomPure(sp, src)
			want := Play(rules, s0, s1, src)
			got := PlayPure(rules, s0, s1)
			if got != want {
				t.Fatalf("memory %d trial %d: PlayPure %+v != Play %+v", n, trial, got, want)
			}
			if n <= 3 { // linear search is O(4^n·n) per round; keep it tractable
				se := eng.Play(rules, s0, s1, src)
				if se != want {
					t.Fatalf("memory %d trial %d: SearchEngine %+v != Play %+v", n, trial, se, want)
				}
			}
		}
	}
}

// TestPayoffAccumulationOrder is the float-sensitivity regression: with
// payoff values that are not exactly representable in binary (0.1-style
// decimals) any reassociation of the per-round additions — vectorising,
// cycle extrapolation, pairwise summation — would change the low bits of
// Fitness. The kernel must add the identical values in the identical round
// order as Play.
func TestPayoffAccumulationOrder(t *testing.T) {
	rules := Rules{
		// T > R > P > S and 2R > T+S, every value a repeating binary fraction.
		Payoff: Payoff{R: 0.3, S: 0.1, T: 0.4, P: 0.2},
		Rounds: 1001, // odd and > any cycle length, so extrapolation shortcuts would show
	}
	if err := rules.Validate(); err != nil {
		t.Fatal(err)
	}
	src := rng.New(7)
	for n := 1; n <= 3; n++ {
		sp := strategy.NewSpace(n)
		for trial := 0; trial < 50; trial++ {
			s0 := strategy.RandomPure(sp, src)
			s1 := strategy.RandomPure(sp, src)
			want := Play(rules, s0, s1, src)
			got := PlayPure(rules, s0, s1)
			if got.Fitness0 != want.Fitness0 || got.Fitness1 != want.Fitness1 {
				t.Fatalf("memory %d trial %d: fitness drifted: PlayPure (%v,%v) != Play (%v,%v)",
					n, trial, got.Fitness0, got.Fitness1, want.Fitness0, want.Fitness1)
			}
			if got.Mean0() != want.Mean0() || got.Mean1() != want.Mean1() {
				t.Fatalf("memory %d trial %d: mean payoff drifted", n, trial)
			}
		}
	}
}

func TestPlayPureRejectsNoise(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PlayPure accepted ErrorRate > 0")
		}
	}()
	sp := strategy.NewSpace(1)
	rules := DefaultRules()
	rules.ErrorRate = 0.01
	PlayPure(rules, strategy.NewPure(sp), strategy.NewPure(sp))
}

func TestPlayPureRejectsMismatchedSpaces(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PlayPure accepted mismatched spaces")
		}
	}()
	PlayPure(DefaultRules(), strategy.NewPure(strategy.NewSpace(1)), strategy.NewPure(strategy.NewSpace(2)))
}

func BenchmarkPlayPureVsPlay(b *testing.B) {
	src := rng.New(9)
	rules := DefaultRules()
	for _, n := range []int{1, 3, 6} {
		sp := strategy.NewSpace(n)
		s0 := strategy.RandomPure(sp, src)
		s1 := strategy.RandomPure(sp, src)
		b.Run("interface/m"+string(rune('0'+n)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Play(rules, s0, s1, src)
			}
		})
		b.Run("bitpacked/m"+string(rune('0'+n)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				PlayPure(rules, s0, s1)
			}
		})
	}
}
