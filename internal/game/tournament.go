package game

import (
	"fmt"
	"sort"

	"repro/internal/rng"
	"repro/internal/strategy"
)

// Entrant is one tournament participant.
type Entrant struct {
	Name     string
	Strategy strategy.Strategy
}

// Standing is an entrant's final tournament record.
type Standing struct {
	Name        string
	TotalScore  float64 // payoff summed over all matches and repeats
	MeanPayoff  float64 // per-round mean across all matches
	Cooperation float64 // fraction of the entrant's own moves that were C
	Matches     int
}

// Tournament runs an Axelrod-style round robin (paper §III-B): every
// entrant plays every other entrant (and itself, as in Axelrod's original)
// `repeats` times under the given rules. Randomness derives from seed so
// results are reproducible.
func Tournament(rules Rules, entrants []Entrant, repeats int, seed uint64) ([]Standing, error) {
	if err := rules.Validate(); err != nil {
		return nil, err
	}
	if len(entrants) < 2 {
		return nil, fmt.Errorf("game: tournament needs >= 2 entrants, got %d", len(entrants))
	}
	if repeats <= 0 {
		return nil, fmt.Errorf("game: repeats must be positive, got %d", repeats)
	}
	sp := entrants[0].Strategy.Space()
	for _, e := range entrants {
		if e.Strategy.Space() != sp {
			return nil, fmt.Errorf("game: entrant %q has mismatched space", e.Name)
		}
	}
	master := rng.New(seed)
	score := make([]float64, len(entrants))
	coop := make([]int, len(entrants))
	ownMoves := make([]int, len(entrants))
	matches := make([]int, len(entrants))
	for i := range entrants {
		for j := i; j < len(entrants); j++ {
			for r := 0; r < repeats; r++ {
				src := master.Derive(uint64(i), uint64(j), uint64(r))
				res := Play(rules, entrants[i].Strategy, entrants[j].Strategy, src)
				score[i] += res.Fitness0
				coop[i] += res.Coop0
				ownMoves[i] += res.Rounds
				matches[i]++
				if j != i {
					score[j] += res.Fitness1
					coop[j] += res.Coop1
					ownMoves[j] += res.Rounds
					matches[j]++
				}
			}
		}
	}
	out := make([]Standing, len(entrants))
	for i, e := range entrants {
		out[i] = Standing{
			Name:        e.Name,
			TotalScore:  score[i],
			MeanPayoff:  score[i] / float64(ownMoves[i]),
			Cooperation: float64(coop[i]) / float64(ownMoves[i]),
			Matches:     matches[i],
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].TotalScore > out[b].TotalScore })
	return out, nil
}

// PairwiseMatrix plays every ordered pair once and returns the payoff matrix
// m[i][j] = mean per-round payoff of entrant i against entrant j. Diagonal
// entries are self-play. Used by the abundance analysis and examples.
func PairwiseMatrix(rules Rules, entrants []Entrant, seed uint64) ([][]float64, error) {
	if err := rules.Validate(); err != nil {
		return nil, err
	}
	if len(entrants) == 0 {
		return nil, fmt.Errorf("game: no entrants")
	}
	master := rng.New(seed)
	m := make([][]float64, len(entrants))
	for i := range m {
		m[i] = make([]float64, len(entrants))
	}
	for i := range entrants {
		for j := i; j < len(entrants); j++ {
			src := master.Derive(uint64(i), uint64(j))
			res := Play(rules, entrants[i].Strategy, entrants[j].Strategy, src)
			m[i][j] = res.Mean0()
			m[j][i] = res.Mean1()
			if i == j {
				m[i][j] = (res.Mean0() + res.Mean1()) / 2
			}
		}
	}
	return m, nil
}
