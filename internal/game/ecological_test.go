package game

import (
	"math"
	"testing"

	"repro/internal/strategy"
)

func TestEcologicalSharesNormalised(t *testing.T) {
	res, err := Ecological(DefaultRules(), classicEntrants(t, 1), 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shares) != 51 {
		t.Fatalf("%d share snapshots", len(res.Shares))
	}
	for g, shares := range res.Shares {
		sum := 0.0
		for _, s := range shares {
			if s < 0 {
				t.Fatalf("gen %d: negative share", g)
			}
			sum += s
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("gen %d: share mass %v", g, sum)
		}
	}
}

func TestEcologicalAxelrodStory(t *testing.T) {
	// Axelrod's ecological finding: in a field rich in exploitable
	// cooperators, ALLD blooms early on its prey, then starves as the prey
	// vanishes, while reciprocators inherit the population.
	sp := strategy.NewSpace(1)
	entrants := []Entrant{
		{Name: "ALLC-a", Strategy: strategy.AllC(sp)},
		{Name: "ALLC-b", Strategy: strategy.AllC(sp)},
		{Name: "ALLC-c", Strategy: strategy.AllC(sp)},
		{Name: "ALLC-d", Strategy: strategy.AllC(sp)},
		{Name: "ALLD", Strategy: strategy.AllD(sp)},
		{Name: "TFT", Strategy: strategy.TFT(sp)},
	}
	res, err := Ecological(DefaultRules(), entrants, 600, 2)
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string]int{}
	for i, n := range res.Names {
		idx[n] = i
	}
	final := res.FinalShares()
	if final[idx["ALLD"]] > 0.02 {
		t.Errorf("ALLD final share %v, want near extinction", final[idx["ALLD"]])
	}
	// ALLD must have grown above its initial share at some point (the prey
	// phase) before collapsing.
	peak := 0.0
	for _, shares := range res.Shares {
		if s := shares[idx["ALLD"]]; s > peak {
			peak = s
		}
	}
	if peak <= 1.0/float64(len(res.Names))+1e-9 {
		t.Errorf("ALLD never bloomed: peak %v", peak)
	}
	// The reciprocator inherits the population.
	name, share := res.Winner()
	if name != "TFT" {
		t.Errorf("winner %s (%v), want TFT", name, share)
	}
}

func TestEcologicalWithNoiseFavoursErrorTolerant(t *testing.T) {
	rules := DefaultRules()
	rules.ErrorRate = 0.05
	res, err := Ecological(rules, classicEntrants(t, 1), 600, 3)
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string]int{}
	for i, n := range res.Names {
		idx[n] = i
	}
	final := res.FinalShares()
	// Under errors the forgiving/correcting strategies (GTFT, WSLS) must
	// out-hold plain TFT in the long run.
	if final[idx["GTFT"]]+final[idx["WSLS"]] < final[idx["TFT"]] {
		t.Errorf("error-tolerant strategies (%v) below TFT (%v)",
			final[idx["GTFT"]]+final[idx["WSLS"]], final[idx["TFT"]])
	}
}

func TestEcologicalValidation(t *testing.T) {
	es := classicEntrants(t, 1)
	if _, err := Ecological(DefaultRules(), es[:1], 10, 1); err == nil {
		t.Fatal("single entrant accepted")
	}
	if _, err := Ecological(DefaultRules(), es, 0, 1); err == nil {
		t.Fatal("zero generations accepted")
	}
	bad := DefaultRules()
	bad.Rounds = 0
	if _, err := Ecological(bad, es, 10, 1); err == nil {
		t.Fatal("bad rules accepted")
	}
	mixed := append([]Entrant{}, es...)
	mixed[0].Strategy = strategy.AllC(strategy.NewSpace(2))
	if _, err := Ecological(DefaultRules(), mixed, 10, 1); err == nil {
		t.Fatal("mismatched spaces accepted")
	}
}

func TestEcologicalDeterministic(t *testing.T) {
	a, err := Ecological(DefaultRules(), classicEntrants(t, 1), 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Ecological(DefaultRules(), classicEntrants(t, 1), 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	for g := range a.Shares {
		for i := range a.Shares[g] {
			if a.Shares[g][i] != b.Shares[g][i] {
				t.Fatal("identical seeds diverged")
			}
		}
	}
}
