package game

import (
	"container/list"
	"math"

	"repro/internal/strategy"
)

// DefaultPairCacheSize is the default entry bound for PairCache. At 24 bytes
// of payload per entry (plus map/list overhead) 65536 entries stay well under
// 10 MB while covering every ordered pair of a 256-strategy population.
const DefaultPairCacheSize = 1 << 16

// PairKey identifies one memoizable ordered match: the canonical
// fingerprints of both strategies plus every Rules parameter that influences
// the payoff. ErrorRate enters as its exact bit pattern so distinct noise
// levels can never alias.
type PairKey struct {
	A, B      strategy.Fingerprint
	Rounds    int
	ErrorBits uint64
	// Exact distinguishes the Markov stationary-distribution payoff
	// (sim -exact) from the sampled-match payoff: the two paths produce
	// different numbers for the same pair and must never share an entry.
	Exact bool
}

// NewPairKey builds the cache key for an ordered match of the strategies
// fingerprinted a (player 0) and b (player 1) under the given rules.
func NewPairKey(a, b strategy.Fingerprint, rules Rules, exact bool) PairKey {
	return PairKey{
		A:         a,
		B:         b,
		Rounds:    rules.Rounds,
		ErrorBits: math.Float64bits(rules.ErrorRate),
		Exact:     exact,
	}
}

// CacheStats is a point-in-time snapshot of PairCache counters. It is
// attached to the per-rank metrics snapshot gathered by the engines and
// exported through the egd_* registry (see docs/KERNEL.md for the catalog).
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// Merge folds another snapshot into s (counters add; Entries/Capacity add
// too, since ranks hold disjoint caches).
func (s *CacheStats) Merge(o CacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Entries += o.Entries
	s.Capacity += o.Capacity
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// pairEntry is the list payload: the key (needed again at eviction time) and
// player 0's mean per-round payoff for the match.
type pairEntry struct {
	key PairKey
	pay float64
}

// PairCache is a bounded LRU memo from PairKey to player 0's mean per-round
// payoff. It is content-addressed: because the key is a behavioural
// fingerprint, an entry survives the strategies that produced it being
// mutated, copied, or re-created — any later pair with identical behaviour
// hits. Not safe for concurrent use; each rank owns its own cache.
type PairCache struct {
	cap       int
	ll        *list.List // front = most recently used
	idx       map[PairKey]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

// NewPairCache returns an empty cache bounded to capacity entries
// (DefaultPairCacheSize if capacity <= 0). The index map grows on demand
// rather than pre-allocating the full bound: near-fixation workloads hold
// a handful of behaviour pairs, and zeroing a 64 Ki-slot map up front
// would dominate short runs.
func NewPairCache(capacity int) *PairCache {
	if capacity <= 0 {
		capacity = DefaultPairCacheSize
	}
	hint := capacity
	if hint > 1024 {
		hint = 1024
	}
	return &PairCache{
		cap: capacity,
		ll:  list.New(),
		idx: make(map[PairKey]*list.Element, hint),
	}
}

// Get looks up the memoized payoff for the key, refreshing its recency on a
// hit. Every call counts as exactly one hit or one miss. The front entry is
// checked before the index: near fixation one behaviour pair dominates the
// schedule, and a plain struct compare beats hashing the 56-byte key.
func (c *PairCache) Get(k PairKey) (pay float64, ok bool) {
	if front := c.ll.Front(); front != nil {
		if e := front.Value.(*pairEntry); e.key == k {
			c.hits++
			return e.pay, true
		}
	}
	if el, found := c.idx[k]; found {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*pairEntry).pay, true
	}
	c.misses++
	return 0, false
}

// Put stores the payoff for the key, evicting the least recently used entry
// if the cache is full. Re-putting an existing key updates it in place.
func (c *PairCache) Put(k PairKey, pay float64) {
	if el, found := c.idx[k]; found {
		el.Value.(*pairEntry).pay = pay
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.idx, oldest.Value.(*pairEntry).key)
		c.evictions++
	}
	c.idx[k] = c.ll.PushFront(&pairEntry{key: k, pay: pay})
}

// Len returns the number of live entries.
func (c *PairCache) Len() int { return c.ll.Len() }

// Cap returns the entry bound.
func (c *PairCache) Cap() int { return c.cap }

// Stats snapshots the counters.
func (c *PairCache) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Capacity:  c.cap,
	}
}
