package game

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/strategy"
)

func sp(n int) strategy.Space { return strategy.NewSpace(n) }

func TestRulesValidate(t *testing.T) {
	if err := DefaultRules().Validate(); err != nil {
		t.Fatal(err)
	}
	r := DefaultRules()
	r.Rounds = 0
	if r.Validate() == nil {
		t.Fatal("zero rounds accepted")
	}
	r = DefaultRules()
	r.ErrorRate = 1.5
	if r.Validate() == nil {
		t.Fatal("error rate > 1 accepted")
	}
	r = DefaultRules()
	r.Payoff = Payoff{R: 1, S: 2, T: 3, P: 4}
	if r.Validate() == nil {
		t.Fatal("non-PD payoff accepted")
	}
}

func TestAllCvsAllD(t *testing.T) {
	rules := DefaultRules()
	src := rng.New(1)
	res := Play(rules, strategy.AllC(sp(1)), strategy.AllD(sp(1)), src)
	// AllC gets S=0 every round; AllD gets T=4 every round.
	if res.Fitness0 != 0 {
		t.Errorf("ALLC fitness = %v, want 0", res.Fitness0)
	}
	if res.Fitness1 != 4*float64(rules.Rounds) {
		t.Errorf("ALLD fitness = %v, want %v", res.Fitness1, 4*rules.Rounds)
	}
	if res.Coop0 != rules.Rounds || res.Coop1 != 0 {
		t.Errorf("coop counts %d,%d", res.Coop0, res.Coop1)
	}
}

func TestMutualCooperation(t *testing.T) {
	rules := DefaultRules()
	src := rng.New(2)
	res := Play(rules, strategy.TFT(sp(1)), strategy.AllC(sp(1)), src)
	want := 3 * float64(rules.Rounds)
	if res.Fitness0 != want || res.Fitness1 != want {
		t.Fatalf("TFT vs ALLC = %v,%v want %v each", res.Fitness0, res.Fitness1, want)
	}
	if res.CooperationRate() != 1 {
		t.Fatalf("cooperation rate %v, want 1", res.CooperationRate())
	}
}

func TestTFTvsAllD(t *testing.T) {
	rules := DefaultRules()
	src := rng.New(3)
	res := Play(rules, strategy.TFT(sp(1)), strategy.AllD(sp(1)), src)
	// TFT cooperates once (S=0), then defects (P=1) for rounds-1.
	wantTFT := float64(rules.Rounds-1) * 1
	wantAllD := 4 + float64(rules.Rounds-1)*1
	if res.Fitness0 != wantTFT {
		t.Errorf("TFT fitness %v, want %v", res.Fitness0, wantTFT)
	}
	if res.Fitness1 != wantAllD {
		t.Errorf("ALLD fitness %v, want %v", res.Fitness1, wantAllD)
	}
	if res.Coop0 != 1 {
		t.Errorf("TFT cooperated %d times, want 1", res.Coop0)
	}
}

func TestWSLSvsAllD(t *testing.T) {
	// WSLS against ALLD alternates C,D,C,D,... (shift after every loss).
	rules := DefaultRules()
	src := rng.New(4)
	res := Play(rules, strategy.WSLS(sp(1)), strategy.AllD(sp(1)), src)
	if res.Coop0 != rules.Rounds/2 {
		t.Fatalf("WSLS cooperated %d times vs ALLD, want %d", res.Coop0, rules.Rounds/2)
	}
}

func TestGrimPunishesForever(t *testing.T) {
	rules := DefaultRules()
	rules.Rounds = 50
	// Opponent: defect only on round 1 then always cooperate — build as a
	// mixed-deterministic impossible with memory 1, so use trace over an
	// error: simpler — Grim vs TFT with a single forced initial defection is
	// not expressible; instead test Grim vs ALLD: defects from round 2 on.
	src := rng.New(5)
	res := Play(rules, strategy.Grim(sp(1)), strategy.AllD(sp(1)), src)
	if res.Coop0 != 1 {
		t.Fatalf("Grim cooperated %d times vs ALLD, want 1", res.Coop0)
	}
}

func TestPlayMismatchedSpacesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched spaces did not panic")
		}
	}()
	Play(DefaultRules(), strategy.AllC(sp(1)), strategy.AllC(sp(2)), rng.New(1))
}

func TestErrorsDisruptTFT(t *testing.T) {
	// Paper §III-E: with errors, TFT self-play cooperation collapses while
	// WSLS self-play stays highly cooperative.
	rules := DefaultRules()
	rules.Rounds = 2000
	rules.ErrorRate = 0.01
	src := rng.New(6)
	tft := Play(rules, strategy.TFT(sp(1)), strategy.TFT(sp(1)), src)
	wsls := Play(rules, strategy.WSLS(sp(1)), strategy.WSLS(sp(1)), src)
	if wsls.CooperationRate() <= tft.CooperationRate() {
		t.Fatalf("WSLS coop %v should exceed TFT coop %v under errors",
			wsls.CooperationRate(), tft.CooperationRate())
	}
	if wsls.CooperationRate() < 0.9 {
		t.Fatalf("WSLS self-play coop %v, want > 0.9 at 1%% errors", wsls.CooperationRate())
	}
}

func TestErrorRateOneInvertsAll(t *testing.T) {
	rules := DefaultRules()
	rules.ErrorRate = 1
	src := rng.New(7)
	res := Play(rules, strategy.AllC(sp(1)), strategy.AllC(sp(1)), src)
	if res.Coop0 != 0 || res.Coop1 != 0 {
		t.Fatalf("error rate 1 should flip every move: coop %d,%d", res.Coop0, res.Coop1)
	}
}

func TestMixedStrategyPlayStatistics(t *testing.T) {
	rules := DefaultRules()
	rules.Rounds = 50000
	m := strategy.MixedFromProbs(sp(1), []float64{0.7, 0.7, 0.7, 0.7})
	src := rng.New(8)
	res := Play(rules, m, strategy.AllC(sp(1)), src)
	rate := float64(res.Coop0) / float64(rules.Rounds)
	if math.Abs(rate-0.7) > 0.01 {
		t.Fatalf("mixed coop rate %v, want ~0.7", rate)
	}
}

func TestPlayDeterministicGivenSeed(t *testing.T) {
	rules := DefaultRules()
	rules.ErrorRate = 0.05
	a := Play(rules, strategy.WSLS(sp(2)), strategy.TFT(sp(2)), rng.New(99))
	b := Play(rules, strategy.WSLS(sp(2)), strategy.TFT(sp(2)), rng.New(99))
	if a != b {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
}

func TestSearchEngineMatchesDirectEngine(t *testing.T) {
	// The paper-faithful linear-search engine must produce identical results
	// to the optimised engine for identical random streams.
	for _, mem := range []int{1, 2, 3} {
		space := sp(mem)
		rules := DefaultRules()
		rules.Rounds = 100
		rules.ErrorRate = 0.02
		eng := NewSearchEngine(space)
		for seed := uint64(0); seed < 10; seed++ {
			master := rng.New(seed)
			s0 := strategy.RandomPure(space, master)
			s1 := strategy.RandomPure(space, master)
			direct := Play(rules, s0, s1, rng.New(seed+1000))
			searched := eng.Play(rules, s0, s1, rng.New(seed+1000))
			if direct != searched {
				t.Fatalf("memory %d seed %d: direct %+v != searched %+v", mem, seed, direct, searched)
			}
		}
	}
}

func TestSearchEngineReusableAcrossMatches(t *testing.T) {
	// The engine's current_view buffers must reset between matches: a
	// reused engine must reproduce a fresh engine's results exactly.
	space := sp(2)
	rules := DefaultRules()
	rules.Rounds = 60
	master := rng.New(77)
	s0 := strategy.RandomPure(space, master)
	s1 := strategy.RandomPure(space, master)
	s2 := strategy.RandomPure(space, master)
	reused := NewSearchEngine(space)
	first := reused.Play(rules, s0, s1, rng.New(1))
	second := reused.Play(rules, s0, s2, rng.New(2))
	if fresh := NewSearchEngine(space).Play(rules, s0, s2, rng.New(2)); fresh != second {
		t.Fatalf("reused engine diverged: %+v vs %+v", second, fresh)
	}
	if again := reused.Play(rules, s0, s1, rng.New(1)); again != first {
		t.Fatalf("replay on reused engine diverged: %+v vs %+v", again, first)
	}
}

func TestSearchEngineSpaceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSearchEngine(sp(1)).Play(DefaultRules(), strategy.AllC(sp(2)), strategy.AllC(sp(2)), rng.New(1))
}

func TestMovesTraceConsistentWithPlay(t *testing.T) {
	rules := DefaultRules()
	rules.Rounds = 64
	s0 := strategy.WSLS(sp(1))
	s1 := strategy.AllD(sp(1))
	m0, m1 := MovesTrace(rules, s0, s1, rng.New(1))
	res := Play(rules, s0, s1, rng.New(1))
	c0, c1 := 0, 0
	var f0, f1 float64
	for r := range m0 {
		if m0[r] == strategy.Cooperate {
			c0++
		}
		if m1[r] == strategy.Cooperate {
			c1++
		}
		a, b := rules.Payoff.Score(m0[r], m1[r])
		f0 += a
		f1 += b
	}
	if c0 != res.Coop0 || c1 != res.Coop1 || f0 != res.Fitness0 || f1 != res.Fitness1 {
		t.Fatal("MovesTrace disagrees with Play")
	}
}

func TestResultHelpers(t *testing.T) {
	r := Result{Fitness0: 300, Fitness1: 100, Coop0: 50, Coop1: 150, Rounds: 100}
	if r.Mean0() != 3 || r.Mean1() != 1 {
		t.Fatal("mean payoffs wrong")
	}
	if r.CooperationRate() != 1.0 {
		t.Fatalf("coop rate %v, want 1.0", r.CooperationRate())
	}
	var zero Result
	if zero.Mean0() != 0 || zero.CooperationRate() != 0 {
		t.Fatal("zero-round result should report zeros")
	}
}

// Property: total fitness of both players is bounded by the extreme joint
// payoffs, and cooperation counts never exceed rounds.
func TestPlayBoundsProperty(t *testing.T) {
	rules := DefaultRules()
	rules.Rounds = 40
	f := func(seed uint64, mem uint8) bool {
		space := sp(int(mem%3) + 1)
		master := rng.New(seed)
		s0 := strategy.RandomPure(space, master)
		s1 := strategy.RandomPure(space, master)
		res := Play(rules, s0, s1, master)
		maxJoint := (rules.Payoff.T + rules.Payoff.S) // 4
		if 2*rules.Payoff.R > rules.Payoff.T+rules.Payoff.S {
			maxJoint = 2 * rules.Payoff.R // 6
		}
		total := res.Fitness0 + res.Fitness1
		if total < 2*rules.Payoff.P*float64(rules.Rounds)*0 || total > maxJoint*float64(rules.Rounds) {
			return false
		}
		return res.Coop0 <= rules.Rounds && res.Coop1 <= rules.Rounds && res.Coop0 >= 0 && res.Coop1 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Play is symmetric — swapping players swaps the result fields —
// for pure strategies (no shared randomness asymmetry).
func TestPlaySymmetryProperty(t *testing.T) {
	rules := DefaultRules()
	rules.Rounds = 30
	f := func(seed uint64) bool {
		space := sp(2)
		master := rng.New(seed)
		s0 := strategy.RandomPure(space, master)
		s1 := strategy.RandomPure(space, master)
		a := Play(rules, s0, s1, master)
		b := Play(rules, s1, s0, master)
		return a.Fitness0 == b.Fitness1 && a.Fitness1 == b.Fitness0 &&
			a.Coop0 == b.Coop1 && a.Coop1 == b.Coop0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPlayMemory1(b *testing.B) { benchPlay(b, 1) }
func BenchmarkPlayMemory3(b *testing.B) { benchPlay(b, 3) }
func BenchmarkPlayMemory6(b *testing.B) { benchPlay(b, 6) }

func benchPlay(b *testing.B, mem int) {
	space := sp(mem)
	master := rng.New(1)
	s0 := strategy.RandomPure(space, master)
	s1 := strategy.RandomPure(space, master)
	rules := DefaultRules()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Play(rules, s0, s1, master)
	}
}

func BenchmarkSearchPlayMemory1(b *testing.B) { benchSearchPlay(b, 1) }
func BenchmarkSearchPlayMemory3(b *testing.B) { benchSearchPlay(b, 3) }
func BenchmarkSearchPlayMemory6(b *testing.B) { benchSearchPlay(b, 6) }

func benchSearchPlay(b *testing.B, mem int) {
	space := sp(mem)
	master := rng.New(1)
	s0 := strategy.RandomPure(space, master)
	s1 := strategy.RandomPure(space, master)
	rules := DefaultRules()
	eng := NewSearchEngine(space)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Play(rules, s0, s1, master)
	}
}
