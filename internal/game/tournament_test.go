package game

import (
	"testing"

	"repro/internal/strategy"
)

func classicEntrants(t *testing.T, mem int) []Entrant {
	t.Helper()
	space := strategy.NewSpace(mem)
	names := []string{"ALLC", "ALLD", "TFT", "WSLS", "GRIM", "GTFT"}
	out := make([]Entrant, 0, len(names))
	for _, n := range names {
		s, err := strategy.Named(n, space)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, Entrant{Name: n, Strategy: s})
	}
	return out
}

func TestTournamentAxelrodShape(t *testing.T) {
	// In a noise-free field with nice reciprocators and ALLD, TFT-family
	// strategies finish ahead of ALLD (Axelrod's headline result) and
	// nobody scores below zero.
	standings, err := Tournament(DefaultRules(), classicEntrants(t, 1), 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	rank := map[string]int{}
	for i, s := range standings {
		rank[s.Name] = i
		if s.TotalScore < 0 {
			t.Errorf("%s scored %v < 0", s.Name, s.TotalScore)
		}
		if s.Matches == 0 {
			t.Errorf("%s played no matches", s.Name)
		}
	}
	if rank["TFT"] > rank["ALLD"] {
		t.Errorf("ALLD (rank %d) finished ahead of TFT (rank %d)", rank["ALLD"], rank["TFT"])
	}
	if rank["ALLC"] == 0 {
		t.Error("ALLC should not win a field containing ALLD")
	}
}

func TestTournamentWithNoiseFavoursWSLSOverTFT(t *testing.T) {
	// Paper §III-E: WSLS outperforms TFT in the presence of errors.
	rules := DefaultRules()
	rules.ErrorRate = 0.05
	entrants := classicEntrants(t, 1)
	standings, err := Tournament(rules, entrants, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	var wsls, tft float64
	for _, s := range standings {
		switch s.Name {
		case "WSLS":
			wsls = s.TotalScore
		case "TFT":
			tft = s.TotalScore
		}
	}
	if wsls <= tft {
		t.Fatalf("with 5%% errors WSLS (%v) should outscore TFT (%v)", wsls, tft)
	}
}

func TestTournamentSortedDescending(t *testing.T) {
	standings, err := Tournament(DefaultRules(), classicEntrants(t, 2), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(standings); i++ {
		if standings[i].TotalScore > standings[i-1].TotalScore {
			t.Fatal("standings not sorted by score")
		}
	}
}

func TestTournamentDeterministic(t *testing.T) {
	a, err := Tournament(DefaultRules(), classicEntrants(t, 1), 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Tournament(DefaultRules(), classicEntrants(t, 1), 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("standings differ at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestTournamentValidation(t *testing.T) {
	es := classicEntrants(t, 1)
	if _, err := Tournament(DefaultRules(), es[:1], 1, 1); err == nil {
		t.Fatal("single entrant accepted")
	}
	if _, err := Tournament(DefaultRules(), es, 0, 1); err == nil {
		t.Fatal("zero repeats accepted")
	}
	bad := DefaultRules()
	bad.Rounds = -1
	if _, err := Tournament(bad, es, 1, 1); err == nil {
		t.Fatal("bad rules accepted")
	}
	mixed := append([]Entrant{}, es...)
	mixed[0].Strategy = strategy.AllC(strategy.NewSpace(2))
	if _, err := Tournament(DefaultRules(), mixed, 1, 1); err == nil {
		t.Fatal("mismatched spaces accepted")
	}
}

func TestPairwiseMatrix(t *testing.T) {
	es := classicEntrants(t, 1)
	m, err := PairwiseMatrix(DefaultRules(), es, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != len(es) {
		t.Fatalf("matrix has %d rows", len(m))
	}
	idx := map[string]int{}
	for i, e := range es {
		idx[e.Name] = i
	}
	// ALLD vs ALLC: exploiter earns T=4 per round, victim earns S=0.
	if got := m[idx["ALLD"]][idx["ALLC"]]; got != 4 {
		t.Errorf("ALLD vs ALLC mean = %v, want 4", got)
	}
	if got := m[idx["ALLC"]][idx["ALLD"]]; got != 0 {
		t.Errorf("ALLC vs ALLD mean = %v, want 0", got)
	}
	// TFT self-play: mutual cooperation, R=3.
	if got := m[idx["TFT"]][idx["TFT"]]; got != 3 {
		t.Errorf("TFT self-play mean = %v, want 3", got)
	}
	if _, err := PairwiseMatrix(DefaultRules(), nil, 1); err == nil {
		t.Fatal("empty entrants accepted")
	}
}
