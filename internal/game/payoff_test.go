package game

import (
	"testing"

	"repro/internal/strategy"
)

func TestStandardPayoffMatchesTableI(t *testing.T) {
	p := StandardPayoff()
	if p.R != 3 || p.S != 0 || p.T != 4 || p.P != 1 {
		t.Fatalf("standard payoff = %+v, want [3,0,4,1]", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScoreAllOutcomes(t *testing.T) {
	p := StandardPayoff()
	cases := []struct {
		my, opp      strategy.Move
		mine, theirs float64
	}{
		{strategy.Cooperate, strategy.Cooperate, 3, 3},
		{strategy.Cooperate, strategy.Defect, 0, 4},
		{strategy.Defect, strategy.Cooperate, 4, 0},
		{strategy.Defect, strategy.Defect, 1, 1},
	}
	for _, c := range cases {
		m, o := p.Score(c.my, c.opp)
		if m != c.mine || o != c.theirs {
			t.Errorf("Score(%v,%v) = %v,%v want %v,%v", c.my, c.opp, m, o, c.mine, c.theirs)
		}
	}
}

func TestScoreSymmetry(t *testing.T) {
	p := StandardPayoff()
	for _, my := range []strategy.Move{strategy.Cooperate, strategy.Defect} {
		for _, opp := range []strategy.Move{strategy.Cooperate, strategy.Defect} {
			a, b := p.Score(my, opp)
			c, d := p.Score(opp, my)
			if a != d || b != c {
				t.Errorf("asymmetric payoff for (%v,%v)", my, opp)
			}
		}
	}
}

func TestValidateRejectsNonPD(t *testing.T) {
	bad := []Payoff{
		{R: 3, S: 0, T: 2, P: 1}, // T < R
		{R: 1, S: 0, T: 4, P: 3}, // P > R
		{R: 3, S: 5, T: 4, P: 1}, // S > P
		{R: 2, S: 0, T: 5, P: 1}, // 2R < T+S
		{R: 2, S: 0, T: 4, P: 1}, // 2R == T+S boundary
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid payoff %+v accepted", i, p)
		}
	}
}

func TestTable(t *testing.T) {
	tbl := StandardPayoff().Table()
	// Row C, col C -> (R,R); row D col C -> (T,S).
	if tbl[0][0] != [2]float64{3, 3} {
		t.Errorf("CC cell = %v", tbl[0][0])
	}
	if tbl[1][0] != [2]float64{4, 0} {
		t.Errorf("DC cell = %v", tbl[1][0])
	}
	if tbl[0][1] != [2]float64{0, 4} {
		t.Errorf("CD cell = %v", tbl[0][1])
	}
	if tbl[1][1] != [2]float64{1, 1} {
		t.Errorf("DD cell = %v", tbl[1][1])
	}
}
