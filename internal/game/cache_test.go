package game

import (
	"testing"

	"repro/internal/strategy"
)

func fpOf(t *testing.T, s strategy.Strategy) strategy.Fingerprint {
	t.Helper()
	fp, ok := strategy.CanonicalFingerprint(s)
	if !ok {
		t.Fatalf("strategy %v not fingerprintable", s)
	}
	return fp
}

func testKey(i int) PairKey {
	return PairKey{A: strategy.Fingerprint{Hi: uint64(i)}, B: strategy.Fingerprint{Lo: uint64(i)}, Rounds: 200}
}

func TestPairCacheHitMissUpdate(t *testing.T) {
	c := NewPairCache(8)
	k := testKey(1)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, 2.5)
	if v, ok := c.Get(k); !ok || v != 2.5 {
		t.Fatalf("got (%v,%v), want (2.5,true)", v, ok)
	}
	c.Put(k, 3.5) // update in place, no growth
	if v, ok := c.Get(k); !ok || v != 3.5 {
		t.Fatalf("after update got (%v,%v), want (3.5,true)", v, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("len %d after re-put, want 1", c.Len())
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Evictions != 0 {
		t.Fatalf("stats %+v, want 2 hits / 1 miss / 0 evictions", st)
	}
	if got := st.HitRate(); got != 2.0/3.0 {
		t.Fatalf("hit rate %v, want 2/3", got)
	}
}

func TestPairCacheEvictsLRU(t *testing.T) {
	c := NewPairCache(3)
	for i := 0; i < 3; i++ {
		c.Put(testKey(i), float64(i))
	}
	// Touch key 0 so key 1 becomes the LRU victim.
	if _, ok := c.Get(testKey(0)); !ok {
		t.Fatal("key 0 missing before eviction")
	}
	c.Put(testKey(3), 3)
	if c.Len() != 3 {
		t.Fatalf("len %d after eviction, want 3 (cap)", c.Len())
	}
	if _, ok := c.Get(testKey(1)); ok {
		t.Fatal("LRU key 1 survived eviction")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := c.Get(testKey(i)); !ok {
			t.Fatalf("key %d evicted unexpectedly", i)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions %d, want 1", st.Evictions)
	}
}

func TestPairCacheStaysBounded(t *testing.T) {
	c := NewPairCache(16)
	for i := 0; i < 1000; i++ {
		c.Put(testKey(i), float64(i))
		if c.Len() > c.Cap() {
			t.Fatalf("len %d exceeds cap %d at insert %d", c.Len(), c.Cap(), i)
		}
	}
	st := c.Stats()
	if st.Entries != 16 || st.Evictions != 1000-16 {
		t.Fatalf("stats %+v, want 16 entries and %d evictions", st, 1000-16)
	}
}

func TestPairCacheDefaultCapacity(t *testing.T) {
	for _, capacity := range []int{0, -5} {
		if got := NewPairCache(capacity).Cap(); got != DefaultPairCacheSize {
			t.Fatalf("NewPairCache(%d).Cap() = %d, want %d", capacity, got, DefaultPairCacheSize)
		}
	}
}

func TestPairKeySeparatesParameters(t *testing.T) {
	a := strategy.Fingerprint{Hi: 1, Lo: 2}
	b := strategy.Fingerprint{Hi: 3, Lo: 4}
	base := NewPairKey(a, b, Rules{Rounds: 200}, false)
	variants := []PairKey{
		NewPairKey(b, a, Rules{Rounds: 200}, false),                  // order matters
		NewPairKey(a, b, Rules{Rounds: 100}, false),                  // rounds
		NewPairKey(a, b, Rules{Rounds: 200, ErrorRate: 0.01}, false), // noise
		NewPairKey(a, b, Rules{Rounds: 200}, true),                   // exact mode
	}
	for i, v := range variants {
		if v == base {
			t.Fatalf("variant %d collides with base key", i)
		}
	}
}

func TestCacheStatsMerge(t *testing.T) {
	s := CacheStats{Hits: 1, Misses: 2, Evictions: 3, Entries: 4, Capacity: 8}
	s.Merge(CacheStats{Hits: 10, Misses: 20, Evictions: 30, Entries: 5, Capacity: 8})
	want := CacheStats{Hits: 11, Misses: 22, Evictions: 33, Entries: 9, Capacity: 16}
	if s != want {
		t.Fatalf("merged %+v, want %+v", s, want)
	}
}

func TestPairCacheContentAddressing(t *testing.T) {
	// An entry stored under the fingerprint of one Strategy value must be
	// served to a behaviourally identical but distinct value — that is what
	// lets cached payoffs survive mutation churn.
	sp := strategy.NewSpace(1)
	tft, err := strategy.ParsePure("0101")
	if err != nil {
		t.Fatal(err)
	}
	alld, err := strategy.ParsePure("1111")
	if err != nil {
		t.Fatal(err)
	}
	rules := DefaultRules()
	c := NewPairCache(8)
	k1 := NewPairKey(fpOf(t, tft), fpOf(t, alld), rules, false)
	c.Put(k1, 0.995)
	// Same behaviour, fresh values — including a degenerate mixed twin.
	tft2 := tft.Clone()
	alldMixed := strategy.MixedFromProbs(sp, []float64{0, 0, 0, 0})
	k2 := NewPairKey(fpOf(t, tft2), fpOf(t, alldMixed), rules, false)
	if k1 != k2 {
		t.Fatalf("behaviourally equal pairs got distinct keys:\n%+v\n%+v", k1, k2)
	}
	if v, ok := c.Get(k2); !ok || v != 0.995 {
		t.Fatalf("content-addressed lookup got (%v,%v), want (0.995,true)", v, ok)
	}
}
