package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("step %d: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds collided %d/100 times", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	s := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[s.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero-seeded stream produced duplicates: %d unique of 100", len(seen))
	}
}

func TestDeriveIsPure(t *testing.T) {
	m := New(7)
	a := m.Derive(3, 5)
	b := m.Derive(3, 5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Derive with identical keys gave different streams")
		}
	}
}

func TestDeriveDoesNotAdvanceParent(t *testing.T) {
	m1 := New(7)
	m2 := New(7)
	_ = m1.Derive(1)
	_ = m1.Derive(2, 3)
	for i := 0; i < 10; i++ {
		if m1.Uint64() != m2.Uint64() {
			t.Fatal("Derive advanced the parent stream")
		}
	}
}

func TestDeriveKeysIndependent(t *testing.T) {
	m := New(9)
	a := m.Derive(0)
	b := m.Derive(1)
	c := m.Derive(0, 0)
	streams := []*Source{a, b, c}
	outs := make([][]uint64, len(streams))
	for i, s := range streams {
		for j := 0; j < 50; j++ {
			outs[i] = append(outs[i], s.Uint64())
		}
	}
	for i := 0; i < len(outs); i++ {
		for j := i + 1; j < len(outs); j++ {
			same := 0
			for k := range outs[i] {
				if outs[i][k] == outs[j][k] {
					same++
				}
			}
			if same > 0 {
				t.Errorf("streams %d and %d collide at %d positions", i, j, same)
			}
		}
	}
}

func TestDeriveKeyOrderMatters(t *testing.T) {
	m := New(11)
	a := m.Derive(1, 2)
	b := m.Derive(2, 1)
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("key order should distinguish derived streams")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	s := New(6)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Uint64n(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d deviates from %v", i, c, want)
		}
	}
}

func TestPairDistinct(t *testing.T) {
	s := New(8)
	for i := 0; i < 10000; i++ {
		a, b := s.Pair(5)
		if a == b {
			t.Fatal("Pair returned equal indices")
		}
		if a < 0 || a >= 5 || b < 0 || b >= 5 {
			t.Fatalf("Pair out of range: %d,%d", a, b)
		}
	}
}

func TestPairCoversAllOrderedPairs(t *testing.T) {
	s := New(9)
	seen := map[[2]int]int{}
	const n = 4
	for i := 0; i < 50000; i++ {
		a, b := s.Pair(n)
		seen[[2]int{a, b}]++
	}
	if len(seen) != n*(n-1) {
		t.Fatalf("Pair covered %d ordered pairs, want %d", len(seen), n*(n-1))
	}
	want := 50000.0 / float64(n*(n-1))
	for p, c := range seen {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("pair %v count %d deviates from %v", p, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(10)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n%50) + 2
		s := New(seed)
		vals := make([]int, m)
		for i := range vals {
			vals[i] = i
		}
		s.Shuffle(m, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		seen := make([]bool, m)
		for _, v := range vals {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	s := New(11)
	for i := 0; i < 1000; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if s.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !s.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(12)
	const p, n = 0.3, 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) rate = %v", p, got)
	}
}

func TestStateRoundTrip(t *testing.T) {
	s := New(13)
	for i := 0; i < 10; i++ {
		s.Uint64()
	}
	st := s.State()
	want := make([]uint64, 20)
	for i := range want {
		want[i] = s.Uint64()
	}
	var r Source
	r.SetState(st)
	for i := range want {
		if got := r.Uint64(); got != want[i] {
			t.Fatalf("restored stream diverged at %d", i)
		}
	}
}

func TestSetStateZeroGuard(t *testing.T) {
	var s Source
	s.SetState([4]uint64{0, 0, 0, 0})
	if s.Uint64() == 0 && s.Uint64() == 0 && s.Uint64() == 0 {
		t.Fatal("all-zero state not repaired")
	}
}

func TestJumpDisjoint(t *testing.T) {
	a := New(14)
	b := New(14)
	b.Jump()
	// After a jump the two streams should not collide over a short window.
	outs := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		outs[a.Uint64()] = true
	}
	for i := 0; i < 1000; i++ {
		if outs[b.Uint64()] {
			t.Fatal("jumped stream collided with base stream")
		}
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(15)
	const lambda, n = 2.0, 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Exponential(lambda)
		if v < 0 {
			t.Fatal("negative exponential variate")
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/lambda) > 0.01 {
		t.Fatalf("Exponential mean %v, want %v", mean, 1/lambda)
	}
}

func TestExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exponential(0) did not panic")
		}
	}()
	New(1).Exponential(0)
}

func TestNormalMoments(t *testing.T) {
	s := New(16)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("Normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("Normal variance %v, want ~1", variance)
	}
}

func TestBoolBalance(t *testing.T) {
	s := New(17)
	const n = 100000
	trues := 0
	for i := 0; i < n; i++ {
		if s.Bool() {
			trues++
		}
	}
	if math.Abs(float64(trues)/n-0.5) > 0.01 {
		t.Fatalf("Bool true-rate %v", float64(trues)/n)
	}
}

// Property: Uint64n(n) < n for arbitrary positive n.
func TestUint64nProperty(t *testing.T) {
	f := func(seed, n uint64) bool {
		if n == 0 {
			n = 1
		}
		s := New(seed)
		for i := 0; i < 20; i++ {
			if s.Uint64n(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var x uint64
	for i := 0; i < b.N; i++ {
		x = s.Uint64()
	}
	_ = x
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	var x int
	for i := 0; i < b.N; i++ {
		x = s.Intn(1000)
	}
	_ = x
}

func BenchmarkDerive(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Derive(uint64(i), uint64(i*3))
	}
}
