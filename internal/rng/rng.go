// Package rng provides deterministic, splittable pseudo-random number
// generation for reproducible parallel simulation.
//
// The evolutionary game dynamics framework runs the same logical simulation
// on one rank or on thousands; for validation the trajectory must not depend
// on the rank count. rng therefore offers two layers:
//
//   - Source: a xoshiro256** generator seeded through SplitMix64, the basic
//     high-quality stream.
//   - Splitting: any stream can derive an arbitrary number of statistically
//     independent child streams keyed by integers (rank, generation, SSet
//     index, ...). Derivation is pure: the same (seed, keys...) always yields
//     the same stream, no matter which rank asks for it.
package rng

import (
	"math"
	"math/bits"
)

// Source is a xoshiro256** pseudo-random generator. The zero value is not a
// valid generator; construct one with New or Derive.
type Source struct {
	s0, s1, s2, s3 uint64
}

// golden is the SplitMix64 increment (2^64/phi, odd).
const golden = 0x9E3779B97F4A7C15

// splitmix64 advances *x by the SplitMix64 step and returns the next output.
// It is used both for seeding xoshiro state and for key mixing in Derive.
func splitmix64(x *uint64) uint64 {
	*x += golden
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// mix64 hashes a single value through the SplitMix64 finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed via SplitMix64, as recommended by
// the xoshiro authors. Any seed, including 0, is valid.
func New(seed uint64) *Source {
	var s Source
	s.reseed(seed)
	return &s
}

func (s *Source) reseed(seed uint64) {
	x := seed
	s.s0 = splitmix64(&x)
	s.s1 = splitmix64(&x)
	s.s2 = splitmix64(&x)
	s.s3 = splitmix64(&x)
	// xoshiro256** requires not-all-zero state; SplitMix64 output of four
	// consecutive steps is never all zero, but guard anyway.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = golden
	}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	r := bits.RotateLeft64(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = bits.RotateLeft64(s.s3, 45)
	return r
}

// Derive returns a new Source whose state is a pure function of s's original
// seed material and the given keys. Deriving does not advance s. Typical use:
//
//	rankStream := master.Derive(uint64(rank))
//	genStream  := master.Derive(uint64(gen), uint64(sset))
//
// Distinct key tuples give statistically independent streams.
func (s *Source) Derive(keys ...uint64) *Source {
	h := s.s0 ^ bits.RotateLeft64(s.s1, 13) ^ bits.RotateLeft64(s.s2, 29) ^ bits.RotateLeft64(s.s3, 43)
	for i, k := range keys {
		h = mix64(h ^ (k + golden*uint64(i+1)))
	}
	return New(h)
}

// Jump advances the generator 2^128 steps, equivalent to that many calls to
// Uint64. It can be used to generate 2^128 non-overlapping subsequences.
func (s *Source) Jump() {
	jump := [4]uint64{0x180EC6D33CFD0ABA, 0xD5A61266F0C9392C, 0xA9582618E03FC9AA, 0x39ABDC4529B1661C}
	var t0, t1, t2, t3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				t0 ^= s.s0
				t1 ^= s.s1
				t2 ^= s.s2
				t3 ^= s.s3
			}
			s.Uint64()
		}
	}
	s.s0, s.s1, s.s2, s.s3 = t0, t1, t2, t3
}

// State returns the four state words, for checkpointing.
func (s *Source) State() [4]uint64 { return [4]uint64{s.s0, s.s1, s.s2, s.s3} }

// SetState restores state saved by State.
func (s *Source) SetState(st [4]uint64) {
	s.s0, s.s1, s.s2, s.s3 = st[0], st[1], st[2], st[3]
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = golden
	}
}

// Float64 returns a uniform float64 in [0,1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform int in [0,n). It panics if n <= 0.
// It uses Lemire's nearly-divisionless unbiased bounded generation.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0,n). It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// Bool returns true with probability 1/2.
func (s *Source) Bool() bool { return s.Uint64()&1 == 1 }

// Bernoulli returns true with probability p (clamped to [0,1]).
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Perm returns a uniformly random permutation of [0,n), Fisher-Yates.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Pair returns two distinct uniform indices in [0,n). It panics if n < 2.
// It is used by the Nature Agent to choose (teacher, learner) SSets.
func (s *Source) Pair(n int) (a, b int) {
	if n < 2 {
		panic("rng: Pair needs n >= 2")
	}
	a = s.Intn(n)
	b = s.Intn(n - 1)
	if b >= a {
		b++
	}
	return a, b
}

// Exponential returns an exponentially distributed value with rate lambda.
// It panics if lambda <= 0.
func (s *Source) Exponential(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: Exponential with non-positive rate")
	}
	// Inverse CDF on (0,1]: avoid log(0) by flipping the open side.
	u := 1.0 - s.Float64()
	return -math.Log(u) / lambda
}

// Normal returns a standard normal variate (Marsaglia polar method).
func (s *Source) Normal() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}
