package perfmodel

import (
	"fmt"
	"math"

	"repro/internal/topology"
)

// StrongScalingSpec is a fixed-size problem whose runtime is modelled
// across processor counts (the paper's Tables VI-VII, Figures 3, 5, 7).
type StrongScalingSpec struct {
	// SSets is the population size S; every generation plays S×(S-1)
	// matches (full recompute, as the paper's timing studies do).
	SSets int
	// Memory is the strategy depth n in [1,6].
	Memory int
	// Generations is the evolution length.
	Generations int
	// PCRate is the pairwise-comparison rate (prices the point-to-point
	// fitness returns).
	PCRate float64
	// Machine supplies the communication and clock parameters.
	Machine Machine
	// Cal supplies per-game compute cost; it is rescaled to the machine's
	// clock automatically.
	Cal Calibration
}

// Validate checks the spec.
func (s StrongScalingSpec) Validate() error {
	if s.SSets < 2 {
		return fmt.Errorf("perfmodel: SSets %d < 2", s.SSets)
	}
	if s.Memory < 1 || s.Memory > 6 {
		return fmt.Errorf("perfmodel: memory %d out of [1,6]", s.Memory)
	}
	if s.Generations < 1 {
		return fmt.Errorf("perfmodel: generations %d < 1", s.Generations)
	}
	if s.PCRate < 0 || s.PCRate > 1 {
		return fmt.Errorf("perfmodel: PC rate %v out of [0,1]", s.PCRate)
	}
	return s.Cal.Validate()
}

// maxGamesPerWorker is the per-generation match count of the busiest
// worker: ceil(S / workers) rows × (S-1) opponents. Load imbalance from the
// ceiling is the model's (and the engine's) source of sawtooth speedup.
func maxGamesPerWorker(ssets, procs int) float64 {
	workers := procs - 1
	if workers < 1 {
		workers = 1
	}
	rows := (ssets + workers - 1) / workers
	return float64(rows) * float64(ssets-1)
}

// commPerGeneration prices one generation's communication on the machine:
// two collective broadcasts (selection announcement and strategy update)
// down the collective tree, plus — at the PC rate — two point-to-point
// fitness returns across the torus.
func commPerGeneration(m Machine, procs int, memory int, pcRate float64) float64 {
	depth := float64(topology.TreeDepth(procs))
	// Selection bcast: 24 bytes. Update bcast: header + (rarely) a strategy
	// table; price the header plus the expected mutation payload.
	states := float64(int64(1) << uint(2*memory))
	updateBytes := 48 + 0.05*states/8
	bcast := func(bytes float64) float64 {
		return depth*m.TreeLatencyPerLevel + m.MsgOverhead + bytes/m.LinkBandwidth
	}
	total := bcast(24) + bcast(updateBytes)
	// Fitness returns over the torus at the PC rate: two 8-byte messages
	// across the mean hop distance of a balanced partition.
	tor := topology.BalancedShape(procs)
	p2p := m.MsgOverhead + tor.MeanHops()*m.LinkLatency + 8/m.LinkBandwidth
	total += pcRate * 2 * p2p
	return total
}

// Runtime returns the modelled wall-clock seconds on procs processors
// (procs >= 2: one Nature Agent plus workers).
func (s StrongScalingSpec) Runtime(procs int) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if procs < 2 {
		return 0, fmt.Errorf("perfmodel: procs %d < 2", procs)
	}
	cal := s.Cal.Scaled(s.Machine)
	compute := maxGamesPerWorker(s.SSets, procs) * cal.GameSeconds[s.Memory]
	comm := commPerGeneration(s.Machine, procs, s.Memory, s.PCRate)
	t := float64(s.Generations) * (compute + comm)
	return t * topology.MappingPenalty(procs), nil
}

// Sweep returns Runtime at each processor count.
func (s StrongScalingSpec) Sweep(procs []int) ([]float64, error) {
	out := make([]float64, len(procs))
	for i, p := range procs {
		t, err := s.Runtime(p)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// WeakScalingSpec grows the problem with the machine: each processor keeps
// a fixed number of SSets whose hosted agents play a fixed number of
// matches per generation (the paper's Fig. 6 construction, 4,096 SSets per
// processor, which by design holds per-processor game work constant).
type WeakScalingSpec struct {
	// SSetsPerProc is the per-processor SSet load (paper: 4,096).
	SSetsPerProc int
	// GamesPerSSet is the per-generation matches each hosted SSet's local
	// agents play (paper: one per agent hosted here).
	GamesPerSSet int
	// Memory, Generations, PCRate, Machine, Cal as in StrongScalingSpec.
	Memory      int
	Generations int
	PCRate      float64
	Machine     Machine
	Cal         Calibration
}

// Validate checks the spec.
func (w WeakScalingSpec) Validate() error {
	if w.SSetsPerProc < 1 {
		return fmt.Errorf("perfmodel: SSets/proc %d < 1", w.SSetsPerProc)
	}
	if w.GamesPerSSet < 1 {
		return fmt.Errorf("perfmodel: games/SSet %d < 1", w.GamesPerSSet)
	}
	if w.Memory < 1 || w.Memory > 6 {
		return fmt.Errorf("perfmodel: memory %d out of [1,6]", w.Memory)
	}
	if w.Generations < 1 {
		return fmt.Errorf("perfmodel: generations %d < 1", w.Generations)
	}
	if w.PCRate < 0 || w.PCRate > 1 {
		return fmt.Errorf("perfmodel: PC rate %v out of [0,1]", w.PCRate)
	}
	return w.Cal.Validate()
}

// Runtime returns the modelled wall-clock seconds on procs processors. The
// compute term is constant by construction; the communication term grows
// only logarithmically (the ≤1 s drift the paper reports across 1,024 to
// 262,144 processors).
func (w WeakScalingSpec) Runtime(procs int) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	if procs < 2 {
		return 0, fmt.Errorf("perfmodel: procs %d < 2", procs)
	}
	cal := w.Cal.Scaled(w.Machine)
	compute := float64(w.SSetsPerProc) * float64(w.GamesPerSSet) * cal.GameSeconds[w.Memory]
	comm := commPerGeneration(w.Machine, procs, w.Memory, w.PCRate)
	t := float64(w.Generations) * (compute + comm)
	return t * topology.MappingPenalty(procs), nil
}

// TotalSSets returns the population the weak-scaled run reaches at procs
// processors (the paper's 1,073,741,824 SSets at 262,144 procs).
func (w WeakScalingSpec) TotalSSets(procs int) uint64 {
	return uint64(w.SSetsPerProc) * uint64(procs)
}

// TotalAgents returns the agent population with the paper's agents-per-SSet
// = total-SSets convention, the O(10^18) headline number.
func (w WeakScalingSpec) TotalAgents(procs int) float64 {
	s := float64(w.TotalSSets(procs))
	return s * s
}

// Speedup returns t(baseProcs)/t(procs) given the two runtimes.
func Speedup(baseTime, t float64) float64 {
	if t <= 0 {
		return math.Inf(1)
	}
	return baseTime / t
}

// Efficiency returns the parallel efficiency of scaling from baseProcs to
// procs: speedup divided by the ideal procs/baseProcs.
func Efficiency(baseProcs int, baseTime float64, procs int, t float64) float64 {
	if procs <= 0 || baseProcs <= 0 || t <= 0 {
		return 0
	}
	return (baseTime / t) / (float64(procs) / float64(baseProcs))
}

// WeakEfficiency returns baseTime/t, the weak-scaling efficiency (ideal
// weak scaling keeps runtime constant).
func WeakEfficiency(baseTime, t float64) float64 {
	if t <= 0 {
		return 0
	}
	return baseTime / t
}
