package perfmodel

import (
	"fmt"
	"time"

	"repro/internal/game"
	"repro/internal/rng"
	"repro/internal/strategy"
)

// Calibration holds the per-game compute cost at each memory depth on a
// particular machine. GameSeconds[n] is the wall-clock cost of one full
// match (Rules.Rounds rounds) between two memory-n strategies; index 0 is
// unused.
type Calibration struct {
	// Name records the calibration's provenance for reports.
	Name string
	// ClockHz is the clock the costs were measured or fitted at.
	ClockHz float64
	// GameSeconds[n] is the per-match cost at memory n, n in [1,6].
	GameSeconds [7]float64
}

// Scaled converts the calibration to a machine with a different clock,
// assuming cycle counts carry over (the simple frequency-scaling model the
// shape analysis needs).
func (c Calibration) Scaled(to Machine) Calibration {
	out := c
	out.Name = c.Name + "→" + to.Name
	ratio := c.ClockHz / to.ClockHz
	for n := 1; n <= 6; n++ {
		out.GameSeconds[n] *= ratio
	}
	out.ClockHz = to.ClockHz
	return out
}

// Validate checks that the calibration covers all memory depths with
// positive, monotonically non-decreasing costs (more memory never makes a
// game cheaper).
func (c Calibration) Validate() error {
	prev := 0.0
	for n := 1; n <= 6; n++ {
		if c.GameSeconds[n] <= 0 {
			return fmt.Errorf("perfmodel: calibration %q has non-positive cost at memory %d", c.Name, n)
		}
		if c.GameSeconds[n] < prev {
			return fmt.Errorf("perfmodel: calibration %q not monotone at memory %d", c.Name, n)
		}
		prev = c.GameSeconds[n]
	}
	return nil
}

// PaperCalibration returns per-game costs fitted to the paper's own
// Table VI (memory-one through memory-six at 128 processors, 1,024 SSets,
// 1,000 generations): gameSeconds[n] = T_paper(n) / (generations ×
// maxGamesPerWorker), with maxGamesPerWorker = ceil(1024/127) × 1023.
// Projections built on this calibration regenerate the paper's tables by
// construction and are labelled as such; use HostCalibration for
// measurements that reflect this repository's engine.
func PaperCalibration() Calibration {
	// Table VI column "128" in seconds.
	paperT := [7]float64{0, 26.5, 2207, 2401, 3079, 7903, 8690}
	const generations = 1000
	games := float64(9 * 1023) // ceil(1024/127)=9 rows × 1023 opponents
	c := Calibration{Name: "paper-tableVI", ClockHz: BlueGeneL().ClockHz}
	for n := 1; n <= 6; n++ {
		c.GameSeconds[n] = paperT[n] / (generations * games)
	}
	return c
}

// HostCalibration measures the actual per-match cost of this repository's
// engine on the local host, for each memory depth, by timing samples
// matches between random pure strategies. useSearch selects the
// paper-faithful linear-search engine (the one whose cost profile Fig. 4
// reflects); otherwise the optimised engine is timed.
func HostCalibration(rules game.Rules, samples int, useSearch bool, seed uint64) (Calibration, error) {
	if err := rules.Validate(); err != nil {
		return Calibration{}, err
	}
	if samples < 1 {
		return Calibration{}, fmt.Errorf("perfmodel: need >= 1 sample, got %d", samples)
	}
	name := "host-direct"
	if useSearch {
		name = "host-search"
	}
	c := Calibration{Name: name, ClockHz: Host(0).ClockHz}
	master := rng.New(seed)
	for n := 1; n <= 6; n++ {
		sp := strategy.NewSpace(n)
		s0 := strategy.RandomPure(sp, master)
		s1 := strategy.RandomPure(sp, master)
		var eng *game.SearchEngine
		if useSearch {
			eng = game.NewSearchEngine(sp)
		}
		// Warm up once, then time.
		runMatch(rules, eng, s0, s1, master)
		start := time.Now()
		for i := 0; i < samples; i++ {
			runMatch(rules, eng, s0, s1, master)
		}
		c.GameSeconds[n] = time.Since(start).Seconds() / float64(samples)
		if c.GameSeconds[n] <= 0 {
			// Timer resolution floor; a 200-round game is never free.
			c.GameSeconds[n] = 1e-9
		}
	}
	// Enforce monotonicity against timing jitter: a deeper memory never
	// costs less than a shallower one in this engine.
	for n := 2; n <= 6; n++ {
		if c.GameSeconds[n] < c.GameSeconds[n-1] {
			c.GameSeconds[n] = c.GameSeconds[n-1]
		}
	}
	return c, nil
}

func runMatch(rules game.Rules, eng *game.SearchEngine, s0, s1 strategy.Strategy, src *rng.Source) {
	if eng != nil {
		eng.Play(rules, s0, s1, src)
		return
	}
	game.Play(rules, s0, s1, src)
}

// AnalyticSearchCalibration derives per-game costs from first principles
// for the paper-faithful engine: each round, each player linearly scans the
// 4^n-entry state table comparing 2n-move views, so the expected per-round
// cost is cyclesPerCompare × 4^n/2 × 2n per player plus a fixed per-round
// overhead. It makes the Fig. 4 growth mechanism explicit and is used by
// the ablation bench.
func AnalyticSearchCalibration(m Machine, rounds int, cyclesPerCompare, cyclesPerRound float64) Calibration {
	c := Calibration{Name: "analytic-search@" + m.Name, ClockHz: m.ClockHz}
	for n := 1; n <= 6; n++ {
		states := float64(int64(1) << uint(2*n))
		perPlayerScan := cyclesPerCompare * states / 2 * float64(2*n)
		cycles := float64(rounds) * (2*perPlayerScan + cyclesPerRound)
		c.GameSeconds[n] = cycles / m.ClockHz
	}
	return c
}
