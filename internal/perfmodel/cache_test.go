package perfmodel

import "testing"

func TestCacheAdjustedGamesFullRecompute(t *testing.T) {
	// 100 generations, 10 SSets, no churn: warm-up misses once, everything
	// after is a hit at the discounted ratio.
	got := CacheAdjustedGames(100, 10, 0, true)
	warm := 90.0
	scheduled := 100 * 90.0
	want := warm + (scheduled-warm)*PairCacheHitCostRatio
	if got != want {
		t.Fatalf("CacheAdjustedGames = %v, want %v", got, want)
	}
	uncached := scheduled
	if got >= uncached/10 {
		t.Fatalf("cache-adjusted cost %v not at least 10x below uncached %v", got, uncached)
	}
}

func TestCacheAdjustedGamesIncrementalNoDiscount(t *testing.T) {
	// Incremental mode already skips repeats: adjusted == scheduled.
	churn := 0.15
	got := CacheAdjustedGames(100, 10, churn, false)
	want := 90.0 + 99*churn*2*9
	if got != want {
		t.Fatalf("incremental adjusted = %v, want scheduled %v", got, want)
	}
}

func TestCacheAdjustedGamesMonotoneInChurn(t *testing.T) {
	prev := -1.0
	for _, churn := range []float64{0, 0.1, 0.5, 1, 2} {
		v := CacheAdjustedGames(50, 8, churn, true)
		if v < prev {
			t.Fatalf("adjusted games decreased with churn %v: %v < %v", churn, v, prev)
		}
		prev = v
	}
	// Churn is clamped to 1: values above do not increase the estimate.
	if CacheAdjustedGames(50, 8, 1, true) != CacheAdjustedGames(50, 8, 5, true) {
		t.Fatal("churn clamp missing")
	}
}

func TestCacheAdjustedGamesBounds(t *testing.T) {
	if got := CacheAdjustedGames(0, 10, 0.1, true); got != 0 {
		t.Fatalf("zero generations priced %v", got)
	}
	if got := CacheAdjustedGames(10, 1, 0.1, true); got != 0 {
		t.Fatalf("single SSet priced %v", got)
	}
	// Misses can never exceed the schedule: at churn 1 and 2 SSets the
	// modelled misses would pass the tiny schedule without the cap.
	sched := 5.0 * 2 * 1
	if got := CacheAdjustedGames(5, 2, 1, true); got > sched {
		t.Fatalf("adjusted %v exceeds scheduled %v", got, sched)
	}
}
