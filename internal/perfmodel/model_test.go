package perfmodel

import (
	"math"
	"testing"

	"repro/internal/game"
)

func paperSpec(memory int) StrongScalingSpec {
	return StrongScalingSpec{
		SSets:       1024,
		Memory:      memory,
		Generations: 1000,
		PCRate:      0.01,
		Machine:     BlueGeneL(),
		Cal:         PaperCalibration(),
	}
}

func TestMachineDescriptions(t *testing.T) {
	l, p := BlueGeneL(), BlueGeneP()
	if l.ClockHz != 700e6 || p.ClockHz != 850e6 {
		t.Fatal("clock speeds wrong")
	}
	if l.MemPerNodeBytes != 512<<20 || p.MemPerNodeBytes != 2<<30 {
		t.Fatal("node memory wrong")
	}
	if p.ProcsPerRack != 4096 || l.ProcsPerRack != 2048 {
		t.Fatal("procs per rack wrong")
	}
	if Host(0).ClockHz != 3e9 {
		t.Fatal("host default clock wrong")
	}
	if Host(2e9).ClockHz != 2e9 {
		t.Fatal("host explicit clock ignored")
	}
}

func TestStateTableBytes(t *testing.T) {
	if StateTableBytes(1) != 8 {
		t.Fatalf("memory-1 table = %d bytes", StateTableBytes(1))
	}
	if StateTableBytes(6) != 4096*12 {
		t.Fatalf("memory-6 table = %d bytes", StateTableBytes(6))
	}
}

func TestMaxMemoryFor(t *testing.T) {
	if got := MaxMemoryFor(BlueGeneL(), 1024); got != 6 {
		t.Fatalf("BG/L with 1024 SSets supports memory %d, want 6", got)
	}
	// A tiny hypothetical node cannot hold memory six tables for a large
	// strategy view.
	tiny := BlueGeneL()
	tiny.MemPerNodeBytes = 1 << 16
	if got := MaxMemoryFor(tiny, 1<<20); got >= 6 {
		t.Fatalf("64KB node claims memory %d", got)
	}
}

func TestPaperCalibrationShape(t *testing.T) {
	c := PaperCalibration()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Table VI's signature jumps: memory-two ≫ memory-one; memory-five ≫
	// memory-four; memory-three only slightly above memory-two.
	if c.GameSeconds[2]/c.GameSeconds[1] < 20 {
		t.Errorf("mem2/mem1 cost ratio %v, want large", c.GameSeconds[2]/c.GameSeconds[1])
	}
	if r := c.GameSeconds[3] / c.GameSeconds[2]; r < 1.0 || r > 1.3 {
		t.Errorf("mem3/mem2 ratio %v, want slight", r)
	}
	if r := c.GameSeconds[5] / c.GameSeconds[4]; r < 2 {
		t.Errorf("mem5/mem4 ratio %v, want > 2", r)
	}
}

func TestCalibrationScaled(t *testing.T) {
	c := PaperCalibration()
	s := c.Scaled(BlueGeneP())
	// Faster clock -> cheaper games, by the clock ratio.
	want := c.GameSeconds[3] * 700e6 / 850e6
	if math.Abs(s.GameSeconds[3]-want) > 1e-15 {
		t.Fatalf("scaled cost %v, want %v", s.GameSeconds[3], want)
	}
	if s.ClockHz != 850e6 {
		t.Fatal("scaled clock wrong")
	}
}

func TestCalibrationValidate(t *testing.T) {
	var bad Calibration
	if bad.Validate() == nil {
		t.Fatal("zero calibration accepted")
	}
	c := PaperCalibration()
	c.GameSeconds[4] = c.GameSeconds[3] / 2
	if c.Validate() == nil {
		t.Fatal("non-monotone calibration accepted")
	}
}

func TestHostCalibrationMeasures(t *testing.T) {
	rules := game.DefaultRules()
	rules.Rounds = 50
	c, err := HostCalibration(rules, 3, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// The search engine's memory-six games must be far costlier than
	// memory-one (the Fig. 4 mechanism).
	if c.GameSeconds[6] < 10*c.GameSeconds[1] {
		t.Errorf("search cost mem6 %v vs mem1 %v: growth too small", c.GameSeconds[6], c.GameSeconds[1])
	}
	if _, err := HostCalibration(rules, 0, false, 1); err == nil {
		t.Fatal("zero samples accepted")
	}
	bad := rules
	bad.Rounds = 0
	if _, err := HostCalibration(bad, 1, false, 1); err == nil {
		t.Fatal("bad rules accepted")
	}
}

func TestAnalyticSearchCalibrationShape(t *testing.T) {
	c := AnalyticSearchCalibration(BlueGeneL(), 200, 2, 50)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Scan cost grows as 4^n * n: each +1 memory step costs > 4x once the
	// scan dominates.
	if c.GameSeconds[6]/c.GameSeconds[5] < 4 {
		t.Errorf("analytic mem6/mem5 = %v, want >= 4", c.GameSeconds[6]/c.GameSeconds[5])
	}
}

func TestStrongScalingMonotoneDecreasing(t *testing.T) {
	s := paperSpec(6)
	prev := math.Inf(1)
	for _, p := range []int{128, 256, 512, 1024, 2048} {
		tm, err := s.Runtime(p)
		if err != nil {
			t.Fatal(err)
		}
		if tm >= prev {
			t.Fatalf("runtime not decreasing at P=%d: %v >= %v", p, tm, prev)
		}
		prev = tm
	}
}

func TestStrongScalingRegeneratesTableVIAnchor(t *testing.T) {
	// The paper calibration is fitted at 128 processors, so the model must
	// reproduce Table VI's 128-processor column nearly exactly, and the
	// rest of the row within a small factor (shape, not absolute match).
	paper128 := map[int]float64{1: 26.5, 2: 2207, 3: 2401, 4: 3079, 5: 7903, 6: 8690}
	for mem, want := range paper128 {
		tm, err := paperSpec(mem).Runtime(128)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(tm-want)/want > 0.05 {
			t.Errorf("memory %d at 128 procs: model %v s, paper %v s", mem, tm, want)
		}
	}
	// Paper's 2048-processor column, within a factor of 3 (the paper's own
	// speedups here are strongly imbalance-dominated).
	paper2048 := map[int]float64{1: 4.04, 2: 277, 6: 1097}
	for mem, want := range paper2048 {
		tm, err := paperSpec(mem).Runtime(2048)
		if err != nil {
			t.Fatal(err)
		}
		if tm > want*3 || tm < want/3 {
			t.Errorf("memory %d at 2048 procs: model %v s, paper %v s (>3x off)", mem, tm, want)
		}
	}
}

func TestStrongScalingEfficiencyRoughlyFlatInMemory(t *testing.T) {
	// Fig. 3: memory depth has only a small impact on efficiency.
	for _, mem := range []int{2, 4, 6} {
		s := paperSpec(mem)
		t128, _ := s.Runtime(128)
		t1024, _ := s.Runtime(1024)
		eff := Efficiency(128, t128, 1024, t1024)
		if eff < 0.5 || eff > 1.05 {
			t.Errorf("memory %d: efficiency at 1024 procs = %v", mem, eff)
		}
	}
}

func TestPopulationEfficiencyGrowsWithSSets(t *testing.T) {
	// Fig. 5: more SSets per processor -> better strong scaling.
	effFor := func(ssets int) float64 {
		s := StrongScalingSpec{
			SSets: ssets, Memory: 1, Generations: 1000, PCRate: 0.01,
			Machine: BlueGeneL(), Cal: PaperCalibration(),
		}
		t256, err := s.Runtime(256)
		if err != nil {
			t.Fatal(err)
		}
		t2048, err := s.Runtime(2048)
		if err != nil {
			t.Fatal(err)
		}
		return Efficiency(256, t256, 2048, t2048)
	}
	small := effFor(1024)
	large := effFor(32768)
	if large <= small {
		t.Fatalf("efficiency should grow with population: %v (1k SSets) vs %v (32k)", small, large)
	}
	if large < 0.9 {
		t.Errorf("32k-SSet efficiency %v, want near-ideal", large)
	}
}

func TestTableVIIQuadraticGrowth(t *testing.T) {
	// Table VII: runtime grows ~quadratically with the SSet count.
	base := StrongScalingSpec{
		SSets: 1024, Memory: 1, Generations: 1000, PCRate: 0.01,
		Machine: BlueGeneL(), Cal: PaperCalibration(),
	}
	t1, _ := base.Runtime(256)
	base.SSets = 2048
	t2, _ := base.Runtime(256)
	base.SSets = 4096
	t4, _ := base.Runtime(256)
	if r := t2 / t1; r < 3.5 || r > 4.5 {
		t.Errorf("2x SSets gave %vx runtime, want ~4x", r)
	}
	if r := t4 / t2; r < 3.5 || r > 4.5 {
		t.Errorf("2x SSets gave %vx runtime, want ~4x", r)
	}
}

func TestWeakScalingFlat(t *testing.T) {
	// Fig. 6: runtime drift across 1,024 -> 262,144 processors stays tiny.
	w := WeakScalingSpec{
		SSetsPerProc: 4096, GamesPerSSet: 1, Memory: 6, Generations: 1000,
		PCRate: 0.01, Machine: BlueGeneP(), Cal: PaperCalibration(),
	}
	t1k, err := w.Runtime(1024)
	if err != nil {
		t.Fatal(err)
	}
	t262k, err := w.Runtime(262144)
	if err != nil {
		t.Fatal(err)
	}
	drift := t262k - t1k
	if drift < 0 {
		t.Fatalf("weak scaling improved with procs? drift %v", drift)
	}
	if drift > 1.0 {
		t.Fatalf("weak scaling drift %v s, paper reports <= 1 s", drift)
	}
	if eff := WeakEfficiency(t1k, t262k); eff < 0.95 {
		t.Fatalf("weak efficiency %v", eff)
	}
}

func TestWeakScalingHeadlineNumbers(t *testing.T) {
	w := WeakScalingSpec{
		SSetsPerProc: 4096, GamesPerSSet: 1, Memory: 6, Generations: 1000,
		PCRate: 0.01, Machine: BlueGeneP(), Cal: PaperCalibration(),
	}
	if got := w.TotalSSets(262144); got != 1073741824 {
		t.Fatalf("total SSets = %d, paper says 1,073,741,824", got)
	}
	// O(10^18) agents.
	agents := w.TotalAgents(262144)
	if agents < 1e18 || agents >= 1.2e18 {
		t.Fatalf("agents = %v, want ~1.15e18", agents)
	}
}

func TestFig7StrongScalingLargeSystems(t *testing.T) {
	// Fig. 7's shape: ~99% efficiency through 16,384 procs, >= ~75% at
	// 262,144, and a further drop at the non-power-of-two 294,912.
	// The population must exceed the largest processor count so every
	// worker owns at least one SSet row (the paper notes the 64-rack run
	// was already at a low SSets-per-processor ratio).
	s := StrongScalingSpec{
		SSets: 1 << 21, Memory: 6, Generations: 100, PCRate: 0.01,
		Machine: BlueGeneP(), Cal: PaperCalibration(),
	}
	t1k, err := s.Runtime(1024)
	if err != nil {
		t.Fatal(err)
	}
	t16k, _ := s.Runtime(16384)
	t262k, _ := s.Runtime(262144)
	t294k, _ := s.Runtime(294912)
	if eff := Efficiency(1024, t1k, 16384, t16k); eff < 0.97 {
		t.Errorf("16k efficiency %v, paper ~0.99", eff)
	}
	eff262 := Efficiency(1024, t1k, 262144, t262k)
	if eff262 < 0.70 || eff262 > 0.95 {
		t.Errorf("262k efficiency %v, paper ~0.82", eff262)
	}
	eff294 := Efficiency(1024, t1k, 294912, t294k)
	if eff294 >= eff262 {
		t.Errorf("non-power-of-two should degrade: %v vs %v", eff294, eff262)
	}
	if rel := eff294 / eff262; rel > 0.95 || rel < 0.75 {
		t.Errorf("72-rack relative degradation %v, paper ~15%%", 1-rel)
	}
}

func TestRuntimeValidation(t *testing.T) {
	s := paperSpec(1)
	if _, err := s.Runtime(1); err == nil {
		t.Fatal("1 proc accepted")
	}
	s.Memory = 9
	if _, err := s.Runtime(128); err == nil {
		t.Fatal("memory 9 accepted")
	}
	w := WeakScalingSpec{SSetsPerProc: 0}
	if _, err := w.Runtime(4); err == nil {
		t.Fatal("0 SSets/proc accepted")
	}
	var bad StrongScalingSpec
	if bad.Validate() == nil {
		t.Fatal("zero spec accepted")
	}
}

func TestSweep(t *testing.T) {
	s := paperSpec(1)
	ts, err := s.Sweep([]int{128, 256, 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 || ts[0] <= ts[2] {
		t.Fatalf("sweep = %v", ts)
	}
	if _, err := s.Sweep([]int{128, 1}); err == nil {
		t.Fatal("bad proc count accepted in sweep")
	}
}

func TestSpeedupAndEfficiencyHelpers(t *testing.T) {
	if Speedup(10, 2) != 5 {
		t.Fatal("speedup wrong")
	}
	if !math.IsInf(Speedup(10, 0), 1) {
		t.Fatal("zero-time speedup not inf")
	}
	if Efficiency(128, 100, 256, 50) != 1.0 {
		t.Fatal("perfect efficiency wrong")
	}
	if Efficiency(128, 100, 256, 100) != 0.5 {
		t.Fatal("half efficiency wrong")
	}
	if Efficiency(0, 1, 1, 1) != 0 || Efficiency(1, 1, 1, 0) != 0 {
		t.Fatal("degenerate efficiency not zero")
	}
	if WeakEfficiency(5, 10) != 0.5 || WeakEfficiency(5, 0) != 0 {
		t.Fatal("weak efficiency wrong")
	}
}
