package perfmodel

// This file models the strategy-pair payoff cache (sim.Config.PayoffCache,
// docs/KERNEL.md): with memoization on, most scheduled matches of a
// full-recompute run are served from the cache at a tiny fraction of a
// match's cost, so admission pricing that ignored the cache would turn away
// jobs the daemon can easily run.

// PairCacheHitCostRatio is the modelled cost of serving one memoized pair
// payoff relative to recomputing the match: two fingerprint lookups and an
// LRU touch against rounds of table-driven play. Measured hit service is
// two to three orders of magnitude cheaper than a 200-round match; 0.01 is
// deliberately conservative so the model never underprices.
const PairCacheHitCostRatio = 0.01

// CacheAdjustedGames returns the effective full-cost match count of a run
// with the pair-payoff cache enabled, in units of one uncached match.
//
// The miss model: the warm-up generation computes every ordered pair once
// (S×(S-1) misses), and thereafter each strategy change — at most one per
// generation, occurring at the combined churn rate min(1, pc+mu) — can
// introduce one behaviourally new strategy whose 2×(S-1) ordered pairings
// are cold. Every other scheduled match repeats a known behaviour pair and
// hits, costing PairCacheHitCostRatio of a match. This is an upper bound on
// misses: churn that re-creates a previously seen strategy (common near
// fixation, where mutants die out and the resident returns) hits instead.
//
// In incremental mode the dirty-row machinery already skips repeated
// matches, so scheduled == modelled misses and the cache offers no modelled
// discount (its real benefit there — mutants recreating known strategies —
// is left as safety margin).
func CacheAdjustedGames(gens, ssets int, churn float64, fullRecompute bool) float64 {
	if gens <= 0 || ssets < 2 {
		return 0
	}
	if churn < 0 {
		churn = 0
	}
	if churn > 1 {
		churn = 1
	}
	s := float64(ssets)
	g := float64(gens)
	warm := s * (s - 1)
	churnMisses := 0.0
	if g > 1 {
		churnMisses = (g - 1) * churn * 2 * (s - 1)
	}
	misses := warm + churnMisses
	scheduled := misses
	if fullRecompute {
		scheduled = g * s * (s - 1)
	}
	if misses > scheduled {
		misses = scheduled
	}
	return misses + (scheduled-misses)*PairCacheHitCostRatio
}
