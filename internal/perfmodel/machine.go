// Package perfmodel projects the simulation's computation and communication
// counts onto Blue Gene-class machines, regenerating the paper's scaling
// tables and figures (Tables VI-VIII, Figures 3-7) at processor counts far
// beyond what one host can run.
//
// The model is deliberately simple and auditable:
//
//	T(P) = generations × ( maxGamesPerWorker(P) × gameSeconds
//	                       + commPerGeneration(P) ) × mappingPenalty(P)
//
// Computation follows the engine's actual work decomposition (block
// distribution of SSet rows over P-1 workers, the Nature Agent on rank 0);
// communication follows the engine's actual per-generation pattern (two
// collective broadcasts, rate-limited point-to-point fitness returns) priced
// on the machine's collective-tree and torus parameters. gameSeconds comes
// from a Calibration: either measured on the host and rescaled by clock
// ratio, or the constants fitted to the paper's own Table VI.
package perfmodel

import "repro/internal/topology"

// Machine describes the hardware the model prices communication and clock
// scaling against.
type Machine struct {
	// Name identifies the machine in reports.
	Name string
	// ClockHz is the core clock (BG/L 700 MHz, BG/P 850 MHz).
	ClockHz float64
	// MemPerNodeBytes bounds the state table (the paper's §VI-B reason for
	// stopping at memory six on BG/L's 512 MB nodes).
	MemPerNodeBytes uint64
	// LinkLatency is the per-hop torus latency in seconds.
	LinkLatency float64
	// LinkBandwidth is the torus link bandwidth in bytes/second.
	LinkBandwidth float64
	// TreeLatencyPerLevel is the collective-network per-level latency in
	// seconds.
	TreeLatencyPerLevel float64
	// MsgOverhead is the per-message software overhead in seconds.
	MsgOverhead float64
	// ProcsPerRack converts processor counts to rack counts.
	ProcsPerRack int
}

// BlueGeneL returns the Blue Gene/L description used for the paper's
// validation and small-scale studies (§VI-A/B).
func BlueGeneL() Machine {
	return Machine{
		Name:                "BlueGene/L",
		ClockHz:             700e6,
		MemPerNodeBytes:     512 << 20,
		LinkLatency:         100e-9,
		LinkBandwidth:       175e6,
		TreeLatencyPerLevel: 1.0e-6,
		MsgOverhead:         3.0e-6,
		ProcsPerRack:        topology.BGLProcsPerRack,
	}
}

// BlueGeneP returns the Blue Gene/P (Jugene) description used for the
// paper's large-scale studies (§VI-C).
func BlueGeneP() Machine {
	return Machine{
		Name:                "BlueGene/P",
		ClockHz:             850e6,
		MemPerNodeBytes:     2 << 30,
		LinkLatency:         64e-9,
		LinkBandwidth:       425e6,
		TreeLatencyPerLevel: 0.8e-6,
		MsgOverhead:         2.5e-6,
		ProcsPerRack:        topology.BGPProcsPerRack,
	}
}

// Host returns a machine description for the local host, used when
// reporting real (non-projected) scaling runs. clockHz of 0 selects a
// nominal 3 GHz.
func Host(clockHz float64) Machine {
	if clockHz == 0 {
		clockHz = 3e9
	}
	return Machine{
		Name:                "host",
		ClockHz:             clockHz,
		MemPerNodeBytes:     8 << 30,
		LinkLatency:         20e-9,
		LinkBandwidth:       10e9,
		TreeLatencyPerLevel: 100e-9,
		MsgOverhead:         200e-9,
		ProcsPerRack:        64,
	}
}

// StateTableBytes returns the memory footprint of the global state table at
// memory depth n as the paper's search engine stores it: 4^n views of 2n
// one-byte moves.
func StateTableBytes(memory int) uint64 {
	states := uint64(1) << uint(2*memory)
	return states * uint64(2*memory)
}

// MaxMemoryFor returns the largest memory depth whose state table (plus a
// same-sized working copy per strategy view) fits in the node memory —
// the paper's §VI-B observation that BG/L's 512 MB bounded it to memory
// six applies to its strategy-space bookkeeping; the state table itself is
// small, so we bound by the strategy table of all SSets a node must hold:
// ssets × 4^n bits for pure strategies.
func MaxMemoryFor(m Machine, ssetsPerNode int) int {
	best := 0
	for n := 1; n <= 6; n++ {
		states := uint64(1) << uint(2*n)
		perSSet := states / 8 // pure strategy bit-table bytes
		need := StateTableBytes(n) + uint64(ssetsPerNode)*perSSet
		if need <= m.MemPerNodeBytes {
			best = n
		}
	}
	return best
}
