package perfmodel

import (
	"fmt"
	"math"
)

// The paper's Fig. 5 discussion distils to a rule of thumb: below a certain
// per-processor workload, "the computation per processor starts to be less
// than the communication overhead involved in the population dynamics" and
// efficiency decays. GamesKnee computes that threshold analytically for any
// machine and calibration, in the model's natural work unit: IPD matches
// per worker per generation.
//
// With per-generation compute g×gameSec on each worker and communication
// cost comm, a processor-count doubling (halving g) has efficiency
//
//	eff(g) = (g·c + comm) / (g·c + 2·comm)
//
// so the minimum workload sustaining eff ≥ target is
//
//	g ≥ comm · (2·target − 1) / (c · (1 − target)).

// GamesKnee returns the minimum matches per worker per generation for a
// processor-count doubling to retain at least targetEff parallel
// efficiency, on the given machine at the given memory depth.
func GamesKnee(m Machine, cal Calibration, memory int, pcRate float64, targetEff float64) (float64, error) {
	if err := cal.Validate(); err != nil {
		return 0, err
	}
	if memory < 1 || memory > 6 {
		return 0, fmt.Errorf("perfmodel: memory %d out of [1,6]", memory)
	}
	if targetEff <= 0.5 || targetEff >= 1 {
		return 0, fmt.Errorf("perfmodel: target efficiency %v out of (0.5,1)", targetEff)
	}
	scaled := cal.Scaled(m)
	c := scaled.GameSeconds[memory]
	// Representative partition for the communication term.
	const procs = 4096
	comm := commPerGeneration(m, procs, memory, pcRate)
	g := comm * (2*targetEff - 1) / (c * (1 - targetEff))
	return math.Max(g, 0), nil
}

// SSetsForGames converts a games-per-worker workload into the
// SSets-per-worker load that produces it at population size S (each owned
// SSet plays S-1 opponents per generation).
func SSetsForGames(games float64, ssets int) float64 {
	if ssets < 2 {
		return 0
	}
	return games / float64(ssets-1)
}
