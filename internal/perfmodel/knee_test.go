package perfmodel

import "testing"

func TestGamesKneeBasics(t *testing.T) {
	cal := PaperCalibration()
	knee1, err := GamesKnee(BlueGeneL(), cal, 1, 0.01, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if knee1 <= 0 {
		t.Fatalf("knee %v <= 0", knee1)
	}
	// Deeper memory makes each match costlier, so fewer matches are needed
	// to hide the same communication: the knee must shrink.
	knee6, err := GamesKnee(BlueGeneL(), cal, 6, 0.01, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if knee6 >= knee1 {
		t.Fatalf("memory-6 knee %v not below memory-1 knee %v", knee6, knee1)
	}
}

func TestGamesKneeMonotoneInTarget(t *testing.T) {
	cal := PaperCalibration()
	prev := 0.0
	for _, target := range []float64{0.6, 0.8, 0.95, 0.99} {
		k, err := GamesKnee(BlueGeneP(), cal, 1, 0.01, target)
		if err != nil {
			t.Fatal(err)
		}
		if k <= prev && target > 0.6 {
			t.Fatalf("knee not increasing in target: %v after %v", k, prev)
		}
		prev = k
	}
}

func TestGamesKneeClosedFormSemantics(t *testing.T) {
	// Verify the defining property: at the knee workload, the modelled
	// doubling efficiency equals the target (within float noise).
	cal := PaperCalibration()
	m := BlueGeneL()
	const memory, pcRate, target = 1, 0.01, 0.9
	g, err := GamesKnee(m, cal, memory, pcRate, target)
	if err != nil {
		t.Fatal(err)
	}
	c := cal.Scaled(m).GameSeconds[memory]
	comm := commPerGeneration(m, 4096, memory, pcRate)
	eff := (g*c + comm) / (g*c + 2*comm)
	if diff := eff - target; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("efficiency at knee = %v, want %v", eff, target)
	}
}

func TestGamesKneeValidation(t *testing.T) {
	cal := PaperCalibration()
	if _, err := GamesKnee(BlueGeneL(), Calibration{}, 1, 0.01, 0.9); err == nil {
		t.Fatal("invalid calibration accepted")
	}
	if _, err := GamesKnee(BlueGeneL(), cal, 0, 0.01, 0.9); err == nil {
		t.Fatal("memory 0 accepted")
	}
	if _, err := GamesKnee(BlueGeneL(), cal, 1, 0.01, 0.4); err == nil {
		t.Fatal("target below 0.5 accepted")
	}
	if _, err := GamesKnee(BlueGeneL(), cal, 1, 0.01, 1); err == nil {
		t.Fatal("target 1 accepted")
	}
}

func TestSSetsForGames(t *testing.T) {
	if got := SSetsForGames(1023, 1024); got != 1 {
		t.Fatalf("SSetsForGames = %v, want 1", got)
	}
	if SSetsForGames(10, 1) != 0 {
		t.Fatal("degenerate population not zero")
	}
}
