// Package stats provides the numerical accumulators the simulation uses to
// summarise evolution trajectories: streaming mean/variance (Welford),
// histograms, time series with fixed-stride sampling, and strategy-abundance
// tracking used for the paper's Fig. 2 analysis.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates streaming mean and variance. The zero value is ready
// to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds a value into the accumulator.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean (0 with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 with < 2 samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest sample (0 with no samples).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest sample (0 with no samples).
func (w *Welford) Max() float64 { return w.max }

// Merge folds another accumulator into w (parallel Welford combination).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	mean := w.mean + d*float64(o.n)/float64(n)
	m2 := w.m2 + o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n, w.mean, w.m2 = n, mean, m2
}

// Histogram counts values into uniform bins over [lo, hi); out-of-range
// values clamp to the end bins.
type Histogram struct {
	lo, hi float64
	counts []int
	total  int
}

// NewHistogram creates a histogram with the given range and bin count.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("stats: histogram needs >= 1 bin, got %d", bins)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: histogram range [%v,%v) empty", lo, hi)
	}
	return &Histogram{lo: lo, hi: hi, counts: make([]int, bins)}, nil
}

// Add counts one value.
func (h *Histogram) Add(x float64) {
	i := int(float64(len(h.counts)) * (x - h.lo) / (h.hi - h.lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i]++
	h.total++
}

// Counts returns the per-bin counts (not a copy).
func (h *Histogram) Counts() []int { return h.counts }

// Total returns the number of added values.
func (h *Histogram) Total() int { return h.total }

// Quantile returns the approximate q-quantile (by bin midpoint), q in [0,1].
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.total)
	cum := 0.0
	width := (h.hi - h.lo) / float64(len(h.counts))
	for i, c := range h.counts {
		cum += float64(c)
		if cum >= target {
			return h.lo + (float64(i)+0.5)*width
		}
	}
	return h.hi - width/2
}

// Series is a time series sampled at a fixed generation stride, bounding
// memory for the paper's 10^7-generation runs.
type Series struct {
	stride int
	gens   []int
	vals   []float64
}

// NewSeries creates a series that keeps every stride-th observation
// (stride >= 1).
func NewSeries(stride int) (*Series, error) {
	if stride < 1 {
		return nil, fmt.Errorf("stats: series stride %d < 1", stride)
	}
	return &Series{stride: stride}, nil
}

// Observe records the value at a generation if it falls on the stride.
func (s *Series) Observe(gen int, v float64) {
	if gen%s.stride != 0 {
		return
	}
	s.gens = append(s.gens, gen)
	s.vals = append(s.vals, v)
}

// Len returns the number of kept samples.
func (s *Series) Len() int { return len(s.gens) }

// At returns the i-th kept (generation, value) pair.
func (s *Series) At(i int) (int, float64) { return s.gens[i], s.vals[i] }

// Last returns the most recent kept pair; ok is false when empty.
func (s *Series) Last() (gen int, v float64, ok bool) {
	if len(s.gens) == 0 {
		return 0, 0, false
	}
	return s.gens[len(s.gens)-1], s.vals[len(s.vals)-1], true
}

// Values returns the kept values (not a copy).
func (s *Series) Values() []float64 { return s.vals }

// Truncate discards all samples past the first n, rolling the series back to
// an earlier observation point — used when a recovered run replays
// generations that had already been observed, so the replay cannot
// double-record them. Out-of-range n is a no-op.
func (s *Series) Truncate(n int) {
	if n < 0 || n >= len(s.gens) {
		return
	}
	s.gens = s.gens[:n]
	s.vals = s.vals[:n]
}

// Abundance tracks how many SSets hold each distinct strategy, keyed by the
// strategy's content fingerprint. It answers the paper's Fig. 2 question:
// what fraction of the population has adopted a given strategy.
type Abundance struct {
	counts map[uint64]int
	total  int
}

// NewAbundance returns an empty tracker.
func NewAbundance() *Abundance {
	return &Abundance{counts: make(map[uint64]int)}
}

// Add counts one SSet holding the strategy with the given fingerprint.
func (a *Abundance) Add(fingerprint uint64) {
	a.counts[fingerprint]++
	a.total++
}

// Total returns the number of SSets counted.
func (a *Abundance) Total() int { return a.total }

// Distinct returns the number of distinct strategies present.
func (a *Abundance) Distinct() int { return len(a.counts) }

// Fraction returns the share of SSets holding the fingerprinted strategy.
func (a *Abundance) Fraction(fingerprint uint64) float64 {
	if a.total == 0 {
		return 0
	}
	return float64(a.counts[fingerprint]) / float64(a.total)
}

// Entry is one row of an abundance ranking.
type Entry struct {
	Fingerprint uint64
	Count       int
	Fraction    float64
}

// Top returns the k most abundant strategies, descending (ties broken by
// fingerprint for determinism).
func (a *Abundance) Top(k int) []Entry {
	out := make([]Entry, 0, len(a.counts))
	for f, c := range a.counts {
		out = append(out, Entry{Fingerprint: f, Count: c, Fraction: float64(c) / float64(max(1, a.total))})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Entropy returns the Shannon entropy (bits) of the strategy distribution —
// high at random initialisation, collapsing as one strategy fixates.
func (a *Abundance) Entropy() float64 {
	if a.total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range a.counts {
		p := float64(c) / float64(a.total)
		h -= p * math.Log2(p)
	}
	return h
}
