package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if w.Mean() != 5 {
		t.Fatalf("mean = %v", w.Mean())
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if math.Abs(w.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("variance = %v", w.Variance())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdDev() != 0 {
		t.Fatal("empty accumulator not zero")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Variance() != 0 {
		t.Fatal("single sample stats wrong")
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	f := func(seed uint64, split uint8) bool {
		src := rng.New(seed)
		n := 50 + int(split%50)
		k := int(split) % n
		var all, a, b Welford
		for i := 0; i < n; i++ {
			x := src.Normal()*3 + 1
			all.Add(x)
			if i < k {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		return a.N() == all.N() &&
			math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.Variance()-all.Variance()) < 1e-9 &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeEmptyCases(t *testing.T) {
	var a, b Welford
	a.Merge(b)
	if a.N() != 0 {
		t.Fatal("merging empties changed N")
	}
	b.Add(5)
	a.Merge(b)
	if a.N() != 1 || a.Mean() != 5 {
		t.Fatal("merge into empty failed")
	}
	var c Welford
	a.Merge(c)
	if a.N() != 1 {
		t.Fatal("merge of empty changed N")
	}
}

func TestHistogramBasics(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i, c := range h.Counts() {
		if c != 1 {
			t.Fatalf("bin %d count %d", i, c)
		}
	}
	if h.Total() != 10 {
		t.Fatalf("total %d", h.Total())
	}
}

func TestHistogramClamping(t *testing.T) {
	h, _ := NewHistogram(0, 1, 4)
	h.Add(-100)
	h.Add(100)
	h.Add(1.0) // exactly hi clamps into last bin
	if h.Counts()[0] != 1 || h.Counts()[3] != 2 {
		t.Fatalf("clamping wrong: %v", h.Counts())
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Fatal("zero bins accepted")
	}
	if _, err := NewHistogram(1, 1, 4); err == nil {
		t.Fatal("empty range accepted")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h, _ := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	med := h.Quantile(0.5)
	if math.Abs(med-50) > 1.5 {
		t.Fatalf("median = %v", med)
	}
	if !math.IsNaN(NewEmptyHist(t).Quantile(0.5)) {
		t.Fatal("empty quantile not NaN")
	}
	if h.Quantile(-1) > h.Quantile(2) {
		t.Fatal("clamped quantiles out of order")
	}
}

func NewEmptyHist(t *testing.T) *Histogram {
	t.Helper()
	h, err := NewHistogram(0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestSeriesStride(t *testing.T) {
	s, err := NewSeries(10)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 100; g++ {
		s.Observe(g, float64(g))
	}
	if s.Len() != 10 {
		t.Fatalf("kept %d samples", s.Len())
	}
	g, v := s.At(3)
	if g != 30 || v != 30 {
		t.Fatalf("At(3) = %d,%v", g, v)
	}
	lg, lv, ok := s.Last()
	if !ok || lg != 90 || lv != 90 {
		t.Fatalf("Last = %d,%v,%v", lg, lv, ok)
	}
	if len(s.Values()) != 10 {
		t.Fatal("Values length mismatch")
	}
}

// Truncate rolls the series back to an earlier observation point, and
// re-observing from there reproduces the uninterrupted series — the
// roll-back a live-evicted run performs before replaying a generation.
func TestSeriesTruncate(t *testing.T) {
	s, err := NewSeries(5)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 40; g++ {
		s.Observe(g, float64(g))
	}
	if s.Len() != 8 {
		t.Fatalf("kept %d samples, want 8", s.Len())
	}
	s.Truncate(4) // roll back to before generation 20
	if s.Len() != 4 {
		t.Fatalf("after truncate kept %d, want 4", s.Len())
	}
	for g := 20; g < 40; g++ {
		s.Observe(g, float64(g))
	}
	if s.Len() != 8 {
		t.Fatalf("after replay kept %d, want 8", s.Len())
	}
	for i := 0; i < 8; i++ {
		if g, v := s.At(i); g != i*5 || v != float64(i*5) {
			t.Fatalf("At(%d) = %d,%v after truncate+replay", i, g, v)
		}
	}
	// Out-of-range truncations are no-ops.
	s.Truncate(-1)
	s.Truncate(8)
	s.Truncate(100)
	if s.Len() != 8 {
		t.Fatalf("no-op truncate changed length to %d", s.Len())
	}
	s.Truncate(0)
	if s.Len() != 0 {
		t.Fatalf("Truncate(0) kept %d samples", s.Len())
	}
}

func TestSeriesValidationAndEmpty(t *testing.T) {
	if _, err := NewSeries(0); err == nil {
		t.Fatal("stride 0 accepted")
	}
	s, _ := NewSeries(1)
	if _, _, ok := s.Last(); ok {
		t.Fatal("empty Last ok")
	}
}

func TestAbundance(t *testing.T) {
	a := NewAbundance()
	for i := 0; i < 85; i++ {
		a.Add(111)
	}
	for i := 0; i < 10; i++ {
		a.Add(222)
	}
	for i := 0; i < 5; i++ {
		a.Add(333)
	}
	if a.Total() != 100 || a.Distinct() != 3 {
		t.Fatalf("total %d distinct %d", a.Total(), a.Distinct())
	}
	if a.Fraction(111) != 0.85 {
		t.Fatalf("fraction = %v", a.Fraction(111))
	}
	if a.Fraction(999) != 0 {
		t.Fatal("absent fingerprint nonzero")
	}
	top := a.Top(2)
	if len(top) != 2 || top[0].Fingerprint != 111 || top[1].Fingerprint != 222 {
		t.Fatalf("Top = %+v", top)
	}
	if top[0].Fraction != 0.85 {
		t.Fatalf("top fraction = %v", top[0].Fraction)
	}
}

func TestAbundanceTopDeterministicTies(t *testing.T) {
	a := NewAbundance()
	a.Add(5)
	a.Add(3)
	a.Add(9)
	top := a.Top(3)
	if top[0].Fingerprint != 3 || top[1].Fingerprint != 5 || top[2].Fingerprint != 9 {
		t.Fatalf("tie order not by fingerprint: %+v", top)
	}
}

func TestAbundanceEntropy(t *testing.T) {
	a := NewAbundance()
	if a.Entropy() != 0 {
		t.Fatal("empty entropy nonzero")
	}
	a.Add(1)
	a.Add(2)
	if math.Abs(a.Entropy()-1) > 1e-12 {
		t.Fatalf("two-way entropy = %v, want 1 bit", a.Entropy())
	}
	b := NewAbundance()
	for i := 0; i < 50; i++ {
		b.Add(7)
	}
	if b.Entropy() != 0 {
		t.Fatalf("fixated entropy = %v", b.Entropy())
	}
}

func TestAbundanceFractionEmpty(t *testing.T) {
	if NewAbundance().Fraction(1) != 0 {
		t.Fatal("empty fraction nonzero")
	}
}
