package sim

import (
	"strings"
	"testing"

	"repro/internal/game"
	"repro/internal/strategy"
)

// assertBitIdentical is the cache-parity comparator: unlike
// assertSameTrajectory (which tolerates reduction-order float drift between
// engines) it demands exact equality everywhere, because cache-on and
// cache-off runs of the SAME engine share every accumulation order.
func assertBitIdentical(t *testing.T, a, b *Result) {
	t.Helper()
	if a.Counters != b.Counters {
		t.Fatalf("counters differ: %+v vs %+v", a.Counters, b.Counters)
	}
	if len(a.Final) != len(b.Final) {
		t.Fatalf("final population sizes differ: %d vs %d", len(a.Final), len(b.Final))
	}
	for i := range a.Final {
		if !a.Final[i].Equal(b.Final[i]) {
			t.Fatalf("final strategy %d differs", i)
		}
	}
	for i := range a.FinalFitness {
		if a.FinalFitness[i] != b.FinalFitness[i] {
			t.Fatalf("final fitness %d differs: %v vs %v", i, a.FinalFitness[i], b.FinalFitness[i])
		}
	}
	for _, pair := range []struct {
		name string
		sa   interface {
			Len() int
			At(int) (int, float64)
		}
		sb interface {
			Len() int
			At(int) (int, float64)
		}
	}{{"mean fitness", a.MeanFitness, b.MeanFitness}, {"cooperation", a.Cooperation, b.Cooperation}} {
		if pair.sa.Len() != pair.sb.Len() {
			t.Fatalf("%s series lengths differ: %d vs %d", pair.name, pair.sa.Len(), pair.sb.Len())
		}
		for i := 0; i < pair.sa.Len(); i++ {
			ga, va := pair.sa.At(i)
			gb, vb := pair.sb.At(i)
			if ga != gb || va != vb {
				t.Fatalf("%s sample %d: (%d,%v) vs (%d,%v)", pair.name, i, ga, va, gb, vb)
			}
		}
	}
}

// TestPayoffCacheBitParity is the tentpole's acceptance test: for both
// engines and all three evaluation modes, enabling the cache changes
// nothing observable about the trajectory.
func TestPayoffCacheBitParity(t *testing.T) {
	modes := []struct {
		name  string
		apply func(*Config)
	}{
		{"incremental", func(*Config) {}},
		{"full", func(c *Config) { c.FullRecompute = true }},
		{"exact", func(c *Config) { c.ExactPayoffs = true }},
		{"search", func(c *Config) { c.UseSearchEngine = true }},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			base := testConfig(1, 10, 60)
			base.Seed = 314
			mode.apply(&base)

			cached := base
			cached.PayoffCache = true

			seqOff, err := RunSequential(base)
			if err != nil {
				t.Fatal(err)
			}
			seqOn, err := RunSequential(cached)
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, seqOff, seqOn)

			parOff, err := RunParallel(base, 3)
			if err != nil {
				t.Fatal(err)
			}
			parOn, err := RunParallel(cached, 3)
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, parOff, parOn)
			// And across engines, the usual sequential/parallel parity.
			assertSameTrajectory(t, seqOn, parOn)
		})
	}
}

// TestPayoffCacheParityMixedNoise: with non-degenerate mixed strategies and
// execution errors every match depends on the (gen,i,j) random stream, so
// the cache must stand aside entirely — parity still holds and the counters
// prove nothing was memoized.
func TestPayoffCacheParityMixedNoise(t *testing.T) {
	base := testConfig(1, 8, 40)
	base.Seed = 99
	base.Kind = MixedStrategies
	base.Rules.ErrorRate = 0.05
	base.Metrics = true

	cached := base
	cached.PayoffCache = true

	off, err := RunSequential(base)
	if err != nil {
		t.Fatal(err)
	}
	on, err := RunSequential(cached)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, off, on)
	cs := on.Metrics.Phases[0].Cache
	if cs == nil {
		t.Fatal("cache stats missing from cached run's snapshot")
	}
	if cs.Hits != 0 || cs.Misses != 0 || cs.Entries != 0 {
		t.Fatalf("uncacheable run touched the cache: %+v", cs)
	}
	if off.Metrics.Phases[0].Cache != nil {
		t.Fatal("cache-off run carries cache stats")
	}
}

// TestPayoffCacheHitsSurviveMutations: near fixation (tiny mutation space,
// full recompute) the same behavioural pairs recur constantly even though
// strategy *objects* churn through adoptions and mutations — the
// content-addressed cache must convert that recurrence into hits.
func TestPayoffCacheHitsSurviveMutations(t *testing.T) {
	cfg := testConfig(1, 10, 120)
	cfg.Seed = 7
	cfg.FullRecompute = true
	cfg.PayoffCache = true
	cfg.Metrics = true

	res, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cs := res.Metrics.Phases[0].Cache
	if cs == nil {
		t.Fatal("no cache stats collected")
	}
	if res.Counters.Mutations == 0 || res.Counters.Adoptions == 0 {
		t.Fatalf("test needs churn to be meaningful: %+v", res.Counters)
	}
	if cs.Hits == 0 {
		t.Fatalf("no cache hits across %d full-recompute generations: %+v", cfg.Generations, cs)
	}
	if cs.Hits+cs.Misses != res.Counters.GamesPlayed {
		t.Fatalf("lookup total %d != games played %d (every deterministic pair should consult the cache)",
			cs.Hits+cs.Misses, res.Counters.GamesPlayed)
	}
	// Memory-one has only 2^4 pure strategies: the working set fits easily,
	// so the vast majority of scheduled games must be memo hits.
	if cs.HitRate() < 0.9 {
		t.Fatalf("hit rate %.3f < 0.9 at near-fixation workload: %+v", cs.HitRate(), cs)
	}
}

// TestPayoffCacheMetricsExport: the egd_* registry carries the per-rank
// cache series, on both engines.
func TestPayoffCacheMetricsExport(t *testing.T) {
	cfg := testConfig(1, 8, 30)
	cfg.Seed = 21
	cfg.FullRecompute = true
	cfg.PayoffCache = true
	cfg.PayoffCacheSize = 128
	cfg.Metrics = true

	res, err := RunParallel(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	var workers int
	var total game.CacheStats
	for _, rs := range res.Metrics.Phases {
		if rs.Rank == 0 {
			if rs.Cache != nil {
				t.Fatal("Nature rank plays no games but carries cache stats")
			}
			continue
		}
		if rs.Cache == nil {
			t.Fatalf("worker rank %d missing cache stats", rs.Rank)
		}
		workers++
		total.Merge(*rs.Cache)
	}
	if workers != 2 {
		t.Fatalf("cache stats from %d workers, want 2", workers)
	}
	if total.Hits == 0 {
		t.Fatalf("parallel run recorded no hits: %+v", total)
	}

	snap := res.MetricsRegistry().Snapshot()
	for _, want := range []string{
		"egd_payoff_cache_hits_total",
		"egd_payoff_cache_misses_total",
		"egd_payoff_cache_evictions_total",
	} {
		present := false
		for _, c := range snap.Counters {
			if strings.HasPrefix(c.Name, want) {
				present = true
			}
		}
		if !present {
			t.Fatalf("registry missing %s series", want)
		}
	}
	var entries bool
	for _, g := range snap.Gauges {
		if strings.HasPrefix(g.Name, "egd_payoff_cache_entries") {
			entries = true
		}
	}
	if !entries {
		t.Fatal("registry missing egd_payoff_cache_entries gauge")
	}
}

// TestPayoffCacheTinyCapacityStillExact: a pathologically small cache must
// thrash (evict constantly) yet never change results.
func TestPayoffCacheTinyCapacityStillExact(t *testing.T) {
	base := testConfig(1, 8, 50)
	base.Seed = 5
	base.FullRecompute = true

	cached := base
	cached.PayoffCache = true
	cached.PayoffCacheSize = 2
	cached.Metrics = true

	off, err := RunSequential(base)
	if err != nil {
		t.Fatal(err)
	}
	on, err := RunSequential(cached)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, off, on)
	cs := on.Metrics.Phases[0].Cache
	if cs == nil || cs.Evictions == 0 {
		t.Fatalf("2-entry cache should thrash: %+v", cs)
	}
	if cs.Entries > 2 {
		t.Fatalf("cache exceeded its bound: %+v", cs)
	}
}

func TestConfigRejectsNegativeCacheSize(t *testing.T) {
	cfg := testConfig(1, 4, 1)
	cfg.PayoffCacheSize = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative PayoffCacheSize validated")
	}
}

func TestPayoffKernelFingerprintMemoBounded(t *testing.T) {
	cfg := testConfig(1, 4, 0)
	cfg.PayoffCache = true
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	kern := newPayoffKernel(&cfg)
	sp := strategy.NewSpace(1)
	for i := 0; i < 1000; i++ {
		s := strategy.NewPure(sp) // fresh pointer each time: distinct memo key
		if _, ok := kern.fingerprint(s); !ok {
			t.Fatal("pure strategy not fingerprintable")
		}
		if len(kern.fps) > kern.fpCap {
			t.Fatalf("fingerprint memo grew to %d, cap %d", len(kern.fps), kern.fpCap)
		}
	}
}
