package sim

import (
	"testing"

	"repro/internal/game"
)

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig(1, 64)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.PCRate != 0.10 || cfg.Mu != 0.05 {
		t.Fatalf("paper defaults wrong: PC %v mu %v", cfg.PCRate, cfg.Mu)
	}
	if cfg.AgentsPerSSet != 64 {
		t.Fatalf("agents per SSet defaulted to %d, want NumSSets", cfg.AgentsPerSSet)
	}
	if cfg.Rules.Rounds != 200 {
		t.Fatalf("rounds = %d", cfg.Rules.Rounds)
	}
}

func TestValidateRejections(t *testing.T) {
	base := DefaultConfig(1, 16)
	cases := []func(*Config){
		func(c *Config) { c.Memory = 0 },
		func(c *Config) { c.Memory = 7 },
		func(c *Config) { c.NumSSets = 1 },
		func(c *Config) { c.Generations = -1 },
		func(c *Config) { c.PCRate = 1.5 },
		func(c *Config) { c.PCRate = -0.1 },
		func(c *Config) { c.Mu = 2 },
		func(c *Config) { c.Beta = -1 },
		func(c *Config) { c.AgentsPerSSet = -3 },
		func(c *Config) { c.SampleStride = -1 },
		func(c *Config) { c.Rules = game.Rules{Payoff: game.Payoff{R: 1, S: 2, T: 3, P: 4}, Rounds: 10} },
	}
	for i, mutate := range cases {
		cfg := base
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestValidateDefaults(t *testing.T) {
	cfg := Config{Memory: 2, NumSSets: 8, Generations: 5000}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Rules.Rounds != 200 {
		t.Fatal("rules not defaulted")
	}
	if cfg.AgentsPerSSet != 8 {
		t.Fatal("agents not defaulted")
	}
	if cfg.SampleStride != 6 {
		t.Fatalf("stride = %d, want 6 for 5000 gens", cfg.SampleStride)
	}
}

func TestPopulationSizeAndGames(t *testing.T) {
	cfg := DefaultConfig(1, 1024)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Paper: agents per SSet = #SSets, so the population is S^2.
	if cfg.PopulationSize() != 1024*1024 {
		t.Fatalf("population = %d", cfg.PopulationSize())
	}
	if cfg.GamesPerGeneration() != 1024*1023 {
		t.Fatalf("games = %d", cfg.GamesPerGeneration())
	}
	if cfg.OpponentsPerAgent() >= 1.0001 || cfg.OpponentsPerAgent() < 0.99 {
		t.Fatalf("opponents per agent = %v, want ~1", cfg.OpponentsPerAgent())
	}
}

func TestAgentsPerProcessorTableVIII(t *testing.T) {
	// Table VIII's structure: with a = S the load is S^2 / P.
	cfg := DefaultConfig(1, 16384)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := cfg.AgentsPerProcessor(256); got != 1048576 {
		t.Fatalf("16384 SSets on 256 procs = %v agents/proc, want 1048576", got)
	}
	cfg2 := DefaultConfig(1, 1024)
	_ = cfg2.Validate()
	if got := cfg2.AgentsPerProcessor(256); got != 4096 {
		t.Fatalf("1024 SSets on 256 procs = %v, want 4096", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("procs 0 did not panic")
		}
	}()
	cfg.AgentsPerProcessor(0)
}

func TestObserverFunc(t *testing.T) {
	called := 0
	var obs Observer = ObserverFunc(func(gen int, pop *Population, ev Events) { called++ })
	obs.Generation(0, nil, Events{})
	if called != 1 {
		t.Fatal("ObserverFunc not invoked")
	}
}
